package xqgo

import (
	"bytes"
	"context"
	"io"
	"sync/atomic"
	"time"

	"xqgo/internal/projection"
	"xqgo/internal/runtime"
	"xqgo/internal/store"
	"xqgo/internal/streamexec"
	"xqgo/internal/tokens"
	"xqgo/internal/xmlparse"
)

// Subscriber registers any number of compiled queries as continuous queries
// over one live XML feed and evaluates them all in a single parse pass.
// Streamable queries (see Query.Streamability) run on the event-driven
// evaluator and deliver each result item as soon as its window of the input
// completes; store-required queries transparently fall back — the feed is
// materialized once, under the union of their static projections, and they
// evaluate when the feed ends.
//
// A Subscriber is single-use: register subscriptions, call Run once.
// Delivery callbacks run on Run's goroutine; Subscription.Close is safe from
// any goroutine.
type Subscriber struct {
	prof   *Profile
	trace  *Trace
	budget *MemoryBudget
	subs   []*Subscription
}

// NewSubscriber creates an empty subscriber.
func NewSubscriber() *Subscriber { return &Subscriber{} }

// WithProfile attaches a profile collecting the feed's engine counters
// (stream windows/results, buffer high-water mark, fallbacks).
func (s *Subscriber) WithProfile(p *Profile) *Subscriber {
	s.prof = p
	return s
}

// WithTrace attaches a trace to the feed: Run records a "feed" span with the
// first windows of each streamable subscription as live child spans.
func (s *Subscriber) WithTrace(t *Trace) *Subscriber {
	s.trace = t
	return s
}

// WithBudget attaches a memory budget to the feed: window buffers, any
// fallback materialization of the feed, and fallback evaluation all charge
// it, so one runaway feed trips a structured budget error instead of
// growing without bound. The caller releases the budget (ReleaseAll) when
// the feed ends.
func (s *Subscriber) WithBudget(b *MemoryBudget) *Subscriber {
	s.budget = b
	return s
}

// Subscribe registers a continuous query. deliver receives each result item
// as a serialized XML fragment, in result order, on Run's goroutine; a
// non-nil error cancels this subscription only (the feed keeps flowing to
// the others). Queries requiring external variables are not supported as
// subscriptions.
func (s *Subscriber) Subscribe(q *Query, deliver func(xml []byte) error) *Subscription {
	sub := &Subscription{query: q, prog: q.streamProgram(), deliver: deliver}
	s.subs = append(s.subs, sub)
	return sub
}

// Subscriptions returns the registered subscriptions in registration order.
func (s *Subscriber) Subscriptions() []*Subscription { return s.subs }

// Run consumes the feed to EOF, dispatching tokens to every subscription in
// one pass. It returns the feed's error (parse failure, context
// cancellation); per-subscription evaluation errors are recorded on their
// Subscription (Err) and do not stop the feed.
func (s *Subscriber) Run(ctx context.Context, r io.Reader, uri string) error {
	env := streamexec.Env{Prof: s.prof, Trace: s.trace, Budget: s.budget}
	if s.trace != nil {
		feed := s.trace.StartSpan("feed", nil).
			SetAttr("uri", uri).SetAttr("subscriptions", len(s.subs))
		env.TraceSpan = feed
		defer feed.End()
	}
	if ctx != nil && ctx.Done() != nil {
		env.Interrupt = func() error { return ctx.Err() }
	}

	d := &streamexec.Dispatcher{}
	var fallback []*Subscription
	proj := projection.New()
	for _, sub := range s.subs {
		if sub.prog.Streamable() {
			sub.runner = streamexec.NewResultRunner(sub.prog, env, sub.safeDeliver)
			sub.tap = d.Add(sub.runner.Token, sub.runner.Finish)
			continue
		}
		s.prof.AddStreamFallback()
		sub.fellBack = true
		fallback = append(fallback, sub)
		proj = unionProjection(proj, sub.query.ro.Projection)
	}
	if len(fallback) == 0 {
		// No store needed: tokenize the whole feed, materialize nothing.
		proj = projection.New()
	}

	popts := xmlparse.Options{
		URI:        uri,
		Projection: proj,
		Tap:        d.Token,
	}
	if s.budget != nil {
		popts.Charge = s.budget.Charge
	}
	p := xmlparse.ParseIncremental(r, popts)
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		done, err := p.Advance()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	d.Finish()

	// Store-required subscriptions evaluate over the materialized feed.
	for _, sub := range fallback {
		if sub.closed.Load() {
			continue
		}
		if err := sub.evalStore(p.Document(), env); err != nil {
			sub.storeErr.Store(&errBox{err})
		}
	}
	return nil
}

// unionProjection merges one query's static projection into the shared
// fallback projection (nil or keep-all poisons the union: the whole feed is
// materialized).
func unionProjection(acc, p *projection.Paths) *projection.Paths {
	if acc.KeepAll {
		return acc
	}
	if p == nil || p.KeepAll {
		return projection.KeepEverything()
	}
	for _, path := range p.List {
		acc.Add(path)
	}
	return acc
}

// Subscription is one continuous query registered on a Subscriber.
type Subscription struct {
	query   *Query
	prog    *streamexec.Program
	deliver func([]byte) error

	// Streamable subscriptions.
	runner *streamexec.Runner
	tap    *streamexec.Tap

	// Fallback subscriptions.
	fellBack     bool
	closed       atomic.Bool
	storeResults atomic.Int64
	lastResult   atomic.Int64 // unix nanos of the last store-path delivery
	storeErr     atomic.Pointer[errBox]
}

type errBox struct{ err error }

// Class returns the subscription query's streamability class.
func (s *Subscription) Class() StreamClass { return s.prog.Class() }

// Reason explains a store-required class (empty otherwise).
func (s *Subscription) Reason() string { return s.prog.Reason() }

// Close cancels the subscription: no further results are delivered, the
// feed continues for other subscriptions. Idempotent, safe from any
// goroutine.
func (s *Subscription) Close() {
	s.closed.Store(true)
	if s.tap != nil {
		s.tap.Close()
	}
}

// Err returns the error that ended this subscription early, if any (a
// delivery error or a per-window evaluation error).
func (s *Subscription) Err() error {
	if s.tap != nil {
		return s.tap.Err()
	}
	if b := s.storeErr.Load(); b != nil {
		return b.err
	}
	return nil
}

// SubscriptionStats are one subscription's lifetime totals.
type SubscriptionStats struct {
	// Class is the streamability class ("fully-streamable",
	// "bounded-buffers", "store-required").
	Class string `json:"class"`
	// FellBack marks a store-required subscription (evaluated at feed end).
	FellBack bool `json:"fellBack"`
	// Windows opened by the spine automaton (0 for fallbacks).
	Windows int64 `json:"windows"`
	// Results delivered.
	Results int64 `json:"results"`
	// PeakBufferBytes is the buffer high-water mark (0 for fully-streamable
	// plans and fallbacks).
	PeakBufferBytes int64 `json:"peakBufferBytes"`
	// LastResultUnixNano is the wall clock of the most recent delivery
	// (0 before the first) — the basis for per-handle lag gauges.
	LastResultUnixNano int64 `json:"lastResultUnixNano,omitempty"`
}

// Stats snapshots the subscription's totals. Safe from any goroutine while
// the feed runs (the service's live introspection endpoint polls it), from
// delivery callbacks, and after Run returns.
func (s *Subscription) Stats() SubscriptionStats {
	st := SubscriptionStats{Class: s.prog.Class().String(), FellBack: s.fellBack}
	if s.runner != nil {
		rs := s.runner.Stats()
		st.Windows, st.Results, st.PeakBufferBytes = rs.Windows, rs.Results, rs.PeakBufferBytes
		st.LastResultUnixNano = rs.LastResultUnixNano
		return st
	}
	st.Results = s.storeResults.Load()
	st.LastResultUnixNano = s.lastResult.Load()
	return st
}

// safeDeliver drops results after Close without erroring the runner.
func (s *Subscription) safeDeliver(xml []byte) error {
	if s.closed.Load() {
		return nil
	}
	return s.deliver(xml)
}

// evalStore runs a fallback subscription over the materialized feed,
// framing each result item exactly like the streaming path (token
// serialization per item). Panics (in evaluation or in the delivery
// callback) are converted at this boundary so one poisoned subscription
// never takes down its feed's siblings.
func (s *Subscription) evalStore(doc *store.Document, env streamexec.Env) (err error) {
	defer runtime.RecoverXQ(&err)
	dyn := &runtime.Dynamic{
		ContextItem: doc.RootNode(),
		Interrupt:   env.Interrupt,
		Now:         env.Now,
		Budget:      env.Budget,
	}
	// The fallback runs this subscription's own plan, which need not match
	// the plan env.Prof was sized for (operator ids are plan-specific —
	// sharing the profile would index out of range). Profile under a
	// plan-sized profile and fold the counters back.
	if env.Prof != nil {
		prof := s.query.prepared.NewProfile(false)
		dyn.Prof = prof
		defer func() { env.Prof.Merge(prof.Report().Counters) }()
	}
	it, err := s.query.prepared.RunIterator(dyn)
	if err != nil {
		return err
	}
	defer it.Close()
	var buf bytes.Buffer
	sw := tokens.NewStreamWriter(&buf)
	for {
		item, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok || s.closed.Load() {
			return nil
		}
		if err := runtime.EmitItemTokens(item, sw.WriteToken); err != nil {
			return err
		}
		if err := sw.Close(); err != nil {
			return err
		}
		out := append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		sw = tokens.NewStreamWriter(&buf)
		s.storeResults.Add(1)
		s.lastResult.Store(time.Now().UnixNano())
		env.Prof.AddStreamResults(1)
		if err := s.deliver(out); err != nil {
			return err
		}
	}
}
