module xqgo

go 1.22
