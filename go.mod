module xqgo

go 1.23
