package xqgo_test

// Table-driven F&O edge-case conformance tests for the fixes of PR 3:
// fn:substring NaN/rounding semantics, fn:codepoints-to-string FOCH0001
// validation, fn:abs negative zero, and the xs:yearMonthDuration /
// xs:dayTimeDuration constructor functions — plus the NaN, negative-zero
// and surrogate neighbors around each fix.

import (
	"testing"

	"xqgo"
	"xqgo/internal/xdm"
)

func TestFandOConformance(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  string // expected serialized result when wantErr is empty
		// wantErr, when set, is the required err: code.
		wantErr string
	}{
		// fn:substring: round/NaN rules. round(NaN) is NaN and every
		// position comparison against NaN is false, so the result is "".
		{"substring/nan-start", `substring("hello", 0 div 0e0)`, "", ""},
		{"substring/nan-length", `substring("hello", 2, 0 div 0e0)`, "", ""},
		{"substring/basic", `substring("motor car", 6)`, " car", ""},
		{"substring/basic-length", `substring("metadata", 4, 7)`, "adata", ""},
		{"substring/rounding", `substring("12345", 1.5, 2.6)`, "234", ""},
		{"substring/zero-start", `substring("12345", 0, 3)`, "12", ""},
		{"substring/negative-length", `substring("12345", 5, -3)`, "", ""},
		{"substring/negative-start", `substring("12345", -3, 5)`, "1", ""},
		{"substring/inf-length", `substring("12345", -42, 1 div 0e0)`, "12345", ""},
		{"substring/inf-both", `substring("12345", -1 div 0e0, 1 div 0e0)`, "", ""},

		// fn:codepoints-to-string: invalid XML characters raise FOCH0001.
		{"codepoints/basic", `codepoints-to-string((65, 98, 99))`, "Abc", ""},
		{"codepoints/zero", `codepoints-to-string(0)`, "", "FOCH0001"},
		{"codepoints/control", `codepoints-to-string(8)`, "", "FOCH0001"},
		{"codepoints/high-surrogate", `codepoints-to-string(55296)`, "", "FOCH0001"},
		{"codepoints/low-surrogate-end", `codepoints-to-string(57343)`, "", "FOCH0001"},
		{"codepoints/fffe", `codepoints-to-string(65534)`, "", "FOCH0001"},
		{"codepoints/above-max", `codepoints-to-string(1114112)`, "", "FOCH0001"},
		{"codepoints/tab-valid", `string-length(codepoints-to-string(9))`, "1", ""},
		{"codepoints/surrogate-neighbor-valid",
			`string-length(codepoints-to-string(55295))`, "1", ""}, // 0xD7FF
		{"codepoints/max-valid", `string-length(codepoints-to-string(1114111))`, "1", ""},

		// fn:abs: negative zero maps to positive zero; sign-sensitive
		// division makes the sign observable.
		{"abs/negative-zero", `1e0 div abs(-0.0e0)`, "INF", ""},
		{"abs/integer", `abs(-3)`, "3", ""},
		{"abs/decimal", `abs(-3.2)`, "3.2", ""},
		{"abs/nan", `abs(0 div 0e0)`, "NaN", ""},
		{"abs/negative-inf", `abs(-1 div 0e0)`, "INF", ""},

		// Duration constructor functions (cast-as-T? semantics).
		{"duration/ym-constructor",
			`xs:yearMonthDuration("P1Y2M") eq xs:yearMonthDuration("P14M")`, "true", ""},
		{"duration/dt-constructor",
			`xs:dayTimeDuration("P1DT2H") + xs:dayTimeDuration("PT22H") eq xs:dayTimeDuration("P2D")`,
			"true", ""},
		{"duration/ym-order",
			`xs:yearMonthDuration("P1Y") lt xs:yearMonthDuration("P13M")`, "true", ""},
		{"duration/ym-empty", `count(xs:yearMonthDuration(()))`, "0", ""},
		{"duration/ym-invalid-lexical", `xs:yearMonthDuration("P1D")`, "", "FORG0001"},
		{"duration/dt-invalid-lexical", `xs:dayTimeDuration("P1Y")`, "", "FORG0001"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compiled, err := xqgo.Compile(tc.query, nil)
			if err != nil {
				t.Fatalf("compile %q: %v", tc.query, err)
			}
			got, err := compiled.EvalString(xqgo.NewContext())
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("%q: expected err:%s, got %q", tc.query, tc.wantErr, got)
				}
				if !xdm.IsCode(err, tc.wantErr) {
					t.Fatalf("%q: expected err:%s, got %v", tc.query, tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("eval %q: %v", tc.query, err)
			}
			if got != tc.want {
				t.Errorf("%q = %q, want %q", tc.query, got, tc.want)
			}
		})
	}
}
