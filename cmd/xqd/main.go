// Command xqd is the XQuery daemon: it serves the engine over HTTP with a
// shared document catalog, a compiled-plan LRU cache, and admission
// control (bounded workers + bounded queue, fast 503s under overload).
//
// Usage:
//
//	xqd [flags]
//
//	xqd -addr :8090 -doc orders=orders.xml -joins
//	curl -X PUT --data-binary @bib.xml localhost:8090/documents/bib
//	curl -d '{"query":"count(/bib/book)","doc":"bib"}' localhost:8090/query
//	curl -d '{"query":"count(/bib/book)","doc":"bib"}' 'localhost:8090/query?explain=1'
//	curl -H 'Content-Type: application/xml' --data-binary @bib.xml \
//	     'localhost:8090/query?query=/bib/book/title'   # streamed ingestion
//	curl localhost:8090/stats
//	curl localhost:8090/metrics   # Prometheus text exposition
//	curl localhost:8090/slow      # slow-query log with execution profiles
//
// With -pprof 127.0.0.1:6060, net/http/pprof is served on that separate
// address only — never on the public listener.
//
// The bound address is printed on startup (use -addr 127.0.0.1:0 to pick a
// free port).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xqgo"
	"xqgo/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8090", "listen address")
		workers   = flag.Int("workers", 0, "max concurrent query executions (0 = GOMAXPROCS)")
		qWorkers  = flag.Int("query-workers", 0, "morsel workers per query, leased from idle executor slots (0 = off, -1 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth before rejecting with 503")
		planCache = flag.Int("plan-cache", 256, "compiled-plan LRU capacity")
		timeout   = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxResult = flag.Int64("max-result-bytes", 32<<20, "per-request serialized result cap (-1 = unlimited)")
		maxQuery  = flag.Int64("max-query-bytes", 0, "per-query tracked-memory budget in bytes; overage fails the query with err:XQGO0001 (0 = unlimited)")
		maxProc   = flag.Int64("max-process-bytes", 0, "process memory soft cap in bytes: sets the Go runtime soft limit and sheds new work with 503 when tracked bytes near it (0 = unlimited)")
		strategy  = flag.String("strategy", "auto", "join strategy for //a//b chains: auto (cost-based), navigation, binary-join, twig-join")
		joins     = flag.Bool("joins", false, "deprecated: alias for -strategy binary-join")
		memo      = flag.Bool("memo", false, "memoize pure user-function calls within each execution")
		stripWS   = flag.Bool("strip-ws", false, "drop whitespace-only text nodes when parsing documents")
		poolText  = flag.Bool("pool-text", false, "dictionary-pool repeated text values when parsing documents")
		slowAfter = flag.Duration("slow-threshold", 250*time.Millisecond, "log queries slower than this to GET /slow (0 = default, negative = disabled)")
		slowSize  = flag.Int("slow-log", 64, "slow-query log ring capacity")
		noProf    = flag.Bool("no-profiling", false, "disable background engine-counter profiling (explain=1 still profiles)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
		maxSubs   = flag.Int("max-subscriptions", 0, "continuous queries per /subscribe request (0 = default 16)")
		maxFeeds  = flag.Int("max-subscribers", 0, "concurrent subscriber feeds before 503 (0 = default 64)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. 127.0.0.1:6060); never exposed on the public listener")
		noTrace   = flag.Bool("no-tracing", false, "disable per-request trace capture (GET /traces, slow-log links, exemplars)")
		traceRing = flag.Int("trace-ring", 0, "completed traces retained for GET /traces (0 = default 256)")
		logFormat = flag.String("log-format", "", "structured access/lifecycle logging: text or json (empty = legacy plain stderr)")
	)
	var docs multiFlag
	flag.Var(&docs, "doc", "preload document: name=file.xml (repeatable)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: xqd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// -log-format switches on structured logging: lifecycle events and one
	// access-log record per request, each carrying the request's trace id so
	// log lines correlate with GET /traces/{id}.
	var logger *slog.Logger
	switch *logFormat {
	case "":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fatal(fmt.Errorf("-log-format %q: want text or json", *logFormat))
	}

	svc := service.New(service.Config{
		Workers:               *workers,
		QueryWorkers:          *qWorkers,
		QueueDepth:            *queue,
		PlanCacheSize:         *planCache,
		DefaultTimeout:        *timeout,
		MaxResultBytes:        *maxResult,
		MaxQueryBytes:         *maxQuery,
		ProcessSoftLimitBytes: *maxProc,
		SlowQueryThreshold:    *slowAfter,
		SlowLogSize:           *slowSize,
		DisableProfiling:      *noProf,
		MaxSubscriptions:      *maxSubs,
		MaxSubscribers:        *maxFeeds,
		DisableTracing:        *noTrace,
		TraceRingSize:         *traceRing,
		Options: xqgo.Options{
			Strategy:         parseStrategy(*strategy, *joins),
			MemoizeFunctions: *memo,
		},
		ParseOptions: xqgo.ParseOptions{
			StripWhitespace: *stripWS,
			PoolText:        *poolText,
		},
	})

	for _, spec := range docs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("-doc %q: want name=file.xml", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		info, err := svc.RegisterDocument(name, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("-doc %s: %v", spec, err))
		}
		if logger != nil {
			logger.Info("document loaded", "name", name, "bytes", info.Bytes, "nodes", info.Nodes)
		} else {
			fmt.Fprintf(os.Stderr, "xqd: loaded %s: %d bytes, %d nodes\n", name, info.Bytes, info.Nodes)
		}
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own (typically loopback) listener so
		// profiling endpoints are never reachable through the public address.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("-pprof: %v", err))
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "xqd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: pmux}
			if err := psrv.Serve(pln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "xqd: pprof server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announce the bound address on stdout so callers using :0 (tests,
	// scripts) can discover the port.
	fmt.Printf("xqd listening on %s\n", ln.Addr())
	handler := service.NewHTTPHandler(svc)
	if logger != nil {
		logger.Info("listening", "addr", ln.Addr().String())
		handler = service.AccessLog(logger, handler)
	}
	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		if logger != nil {
			logger.Info("shutting down", "drain", *drain)
		} else {
			fmt.Fprintf(os.Stderr, "xqd: shutting down (drain %v)\n", *drain)
		}
		// End live subscriber feeds first — each gets a terminal "goodbye"
		// SSE event — so http.Server.Shutdown (which waits for in-flight
		// requests but never cancels them) can actually drain.
		svc.Shutdown()
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "xqd: drain deadline exceeded, closing:", err)
			srv.Close()
		}
		fmt.Println("xqd shut down")
	}
}

// parseStrategy maps the -strategy flag (and the deprecated -joins bool)
// to a join strategy. An explicit -strategy wins over -joins.
func parseStrategy(name string, legacyJoins bool) xqgo.Strategy {
	switch name {
	case "", "auto":
		if legacyJoins {
			return xqgo.ForceBinaryJoin
		}
		return xqgo.StrategyAuto
	case "navigation":
		return xqgo.ForceNavigation
	case "binary-join":
		return xqgo.ForceBinaryJoin
	case "twig-join":
		return xqgo.ForceTwig
	default:
		fatal(fmt.Errorf("-strategy %q: want auto, navigation, binary-join or twig-join", name))
		return xqgo.StrategyAuto // unreachable
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xqd:", err)
	os.Exit(1)
}
