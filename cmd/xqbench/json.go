package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"xqgo"
	"xqgo/internal/workload"
)

// benchRow is one machine-readable benchmark result (ns per full operation).
type benchRow struct {
	Name   string `json:"name"`
	NsPerOp int64 `json:"nsPerOp"`
}

// benchReport is the JSON artifact written by -json (BENCH_PR3.json in CI).
type benchReport struct {
	GoVersion  string     `json:"goVersion"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Reps       int        `json:"reps"`
	Rows       []benchRow `json:"rows"`
	// Batch holds the batched-vs-item comparison: the same plan timed with
	// the vectorized NextBatch path (default) and with DisableBatching.
	Batch []batchRow `json:"batchVsItem"`
}

// batchRow is one batched-vs-item comparison measurement.
type batchRow struct {
	Name      string  `json:"name"`
	BatchedNs int64   `json:"batchedNsPerOp"`
	ItemNs    int64   `json:"itemNsPerOp"`
	Speedup   float64 `json:"speedup"` // itemNs / batchedNs
}

// runJSON runs the benchmark smoke suite — the paper-query workload at CI-
// friendly sizes — and writes ns/op rows as JSON to path. Unlike the E1..E13
// tables it is meant for artifact diffing across commits, so names are
// stable identifiers.
func (r *runner) runJSON(path string) error {
	paperQ := `for $line in /Order/OrderLine
	           where $line/SellersID eq "1"
	           return <lineItem>{string($line/Item/ID)}</lineItem>`
	orders := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 10000, Sellers: 50, Seed: 1}))
	deepStore := workload.Deep(workload.DeepConfig{Nodes: 30000, Seed: 2})
	deep := xqgo.FromStore(deepStore)

	stream := mustCompile(paperQ, nil)
	eager := mustCompile(paperQ, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	pathQ := mustCompile(`/Order/OrderLine/Item/ID`, nil)
	descQ := mustCompile(`count(//a//b)`, nil)
	joinQ := mustCompile(`count(//a//b)`, &xqgo.Options{UseStructuralJoins: true})

	// Warm the structural-join index cache so the row measures the join.
	joinCtx := ctxFor(deep)
	mustEval(joinQ, joinCtx)

	bench := []struct {
		name string
		fn   func()
	}{
		{"paper-query/stream-full", func() { mustEval(stream, ctxFor(orders)) }},
		{"paper-query/eager-full", func() { mustEval(eager, ctxFor(orders)) }},
		{"paper-query/stream-serialize", func() {
			if err := stream.Execute(ctxFor(orders), io.Discard); err != nil {
				panic(err)
			}
		}},
		{"paper-query/first-10", func() {
			it, err := stream.Iterator(ctxFor(orders))
			if err != nil {
				panic(err)
			}
			for i := 0; i < 10; i++ {
				if _, ok, err := it.Next(); err != nil || !ok {
					break
				}
			}
		}},
		{"path/child-steps", func() { mustEval(pathQ, ctxFor(orders)) }},
		{"path/descendant-nav", func() { mustEval(descQ, ctxFor(deep)) }},
		{"path/descendant-structjoin", func() { mustEval(joinQ, joinCtx) }},
	}

	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       r.reps,
	}
	for _, b := range bench {
		d := r.timeIt(b.fn)
		rep.Rows = append(rep.Rows, benchRow{Name: b.name, NsPerOp: d.Nanoseconds()})
		fmt.Fprintf(os.Stderr, "xqbench: %-32s %12d ns/op\n", b.name, d.Nanoseconds())
	}

	// Batched-vs-item comparison: each query compiled twice, once on the
	// default vectorized pull path and once with DisableBatching (the exact
	// item-at-a-time engine of PR 2). CI gates on Speedup so a batching
	// regression fails the build.
	compare := []struct {
		name string
		q    string
		opts xqgo.Options
		doc  *xqgo.Document
	}{
		{"paper-query/full", paperQ, xqgo.Options{}, orders},
		{"paper-query/serialize", paperQ, xqgo.Options{}, orders},
		{"path/child-steps", `/Order/OrderLine/Item/ID`, xqgo.Options{}, orders},
		{"pipeline/range-filter-count",
			`count((1 to 200000)[. mod 7 = 0])`, xqgo.Options{}, orders},
		{"pipeline/sum-range", `sum(1 to 1000000)`, xqgo.Options{}, orders},
		{"pipeline/count-range", `count(1 to 1000000)`, xqgo.Options{}, orders},
	}
	var worst float64 = 1e18
	for _, c := range compare {
		bOpts := c.opts
		iOpts := c.opts
		iOpts.DisableBatching = true
		qb := mustCompile(c.q, &bOpts)
		qi := mustCompile(c.q, &iOpts)
		run := func(q *xqgo.Query) func() {
			if c.name == "paper-query/serialize" {
				return func() {
					if err := q.Execute(ctxFor(c.doc), io.Discard); err != nil {
						panic(err)
					}
				}
			}
			return func() { mustEval(q, ctxFor(c.doc)) }
		}
		db := r.timeIt(run(qb))
		di := r.timeIt(run(qi))
		speedup := float64(di.Nanoseconds()) / float64(db.Nanoseconds())
		if speedup < worst {
			worst = speedup
		}
		rep.Batch = append(rep.Batch, batchRow{
			Name:      c.name,
			BatchedNs: db.Nanoseconds(),
			ItemNs:    di.Nanoseconds(),
			Speedup:   speedup,
		})
		fmt.Fprintf(os.Stderr, "xqbench: batch-vs-item %-24s batched %10d ns/op  item %10d ns/op  speedup %.2fx\n",
			c.name, db.Nanoseconds(), di.Nanoseconds(), speedup)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Regression gate: batching must never make a compared query more than
	// 15% slower than the item-at-a-time baseline (median-of-reps timing
	// keeps CI noise below that).
	if worst < 0.85 {
		return fmt.Errorf("batching regression: worst batched/item speedup %.2fx < 0.85x", worst)
	}
	return nil
}
