package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"xqgo"
	"xqgo/internal/workload"
)

// benchRow is one machine-readable benchmark result (ns per full operation).
type benchRow struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"nsPerOp"`
}

// benchReport is the JSON artifact written by -json (BENCH_PR3.json in CI).
type benchReport struct {
	GoVersion  string     `json:"goVersion"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Reps       int        `json:"reps"`
	Rows       []benchRow `json:"rows"`
	// Batch holds the batched-vs-item comparison: the same plan timed with
	// the vectorized NextBatch path (default) and with DisableBatching.
	Batch []batchRow `json:"batchVsItem"`
	// Ingest holds the streaming-ingestion comparison: the same query over
	// the same serialized document, parsed eagerly up front, lazily without
	// projection, and lazily with static path projection.
	Ingest []ingestRow `json:"ingest"`
	// StreamEval holds the event-driven streaming-evaluator comparison: the
	// paper query over a ~10 MiB Orders feed on the store engine (eager
	// parse, full runtime) versus stream mode (results emitted per window,
	// nothing materialized).
	StreamEval []streamEvalRow `json:"streamEval"`
	// TraceOverhead holds the request-tracing cost comparison: the same
	// stream-mode paper query with tracing off, with only the skeleton
	// stage spans (no profile), and profiled with/without a trace (full
	// per-operator span synthesis). CI gates on the on/off ratios.
	TraceOverhead []benchRow `json:"traceOverhead"`
	// Governance holds the resource-governance overhead comparison: the
	// same query run ungoverned and with a generous per-query memory budget
	// attached (charging every hot path, never tripping). CI gates on the
	// on/off ratio staying within 3%.
	Governance []govRow `json:"governance"`
	// TwigVsBinary holds the join-strategy comparison: each shape evaluated
	// with navigation, the binary stack-tree plan, the holistic twig
	// (path-stack) join, and cost-based Auto. CI gates on Auto staying
	// within 5% of the best manual strategy on every shape, and on Auto
	// picking the twig join on at least one shape where it measurably
	// beats the binary plan.
	TwigVsBinary []twigRow `json:"twigVsBinary"`
	// NumCPU records the machine's logical CPU count: the worker-scaling
	// speedup gate only applies where the hardware can actually express it.
	NumCPU int `json:"numCPU"`
	// Scaling holds the morsel-parallelism worker sweep: each query at a
	// sequential baseline (workers=0, morsels compiled out of the picture)
	// and at 1/2/4/8 workers. CI gates on the 1-worker row staying within
	// 5% of the baseline and, on >= 8-CPU machines, on the structural-join
	// row reaching 3x at 8 workers.
	Scaling []scalingRow `json:"workerScaling"`
}

// scalingRow is one worker-sweep measurement. Workers 0 is the sequential
// baseline; Speedup compares against the 1-worker row of the same query.
type scalingRow struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"nsPerOp"`
	Speedup float64 `json:"speedup"`
}

// govRow is one governance-overhead measurement: the identical run without
// and with a never-tripping budget charged along every hot path. Overhead is
// the median of per-rep on/off ratios.
type govRow struct {
	Name     string  `json:"name"`
	OffNs    int64   `json:"offNsPerOp"`
	OnNs     int64   `json:"onNsPerOp"`
	Overhead float64 `json:"overhead"`
}

// streamEvalRow is one streaming-evaluator measurement.
type streamEvalRow struct {
	Name       string `json:"name"`
	Class      string `json:"class"` // streamability class of the plan
	NsPerOp    int64  `json:"nsPerOp"`
	TTFBNs     int64  `json:"ttfbNs"`          // time to first output byte
	PeakBuffer int64  `json:"peakBufferBytes"` // window-buffer high-water mark
	Windows    int64  `json:"windows"`
	Results    int64  `json:"results"`
	Fallbacks  int64  `json:"fallbacks"`
}

// ingestRow is one streaming-ingestion measurement. Node/byte counters come
// from the engine profile of a single instrumented run; timings are
// median-of-reps like every other row.
type ingestRow struct {
	Name         string `json:"name"`
	NsPerOp      int64  `json:"nsPerOp"`
	TTFBNs       int64  `json:"ttfbNs"`       // time to first output byte
	NodesBuilt   int64  `json:"nodesBuilt"`   // nodes materialized into the store
	NodesSkipped int64  `json:"nodesSkipped"` // tokenized but skipped by projection
	BytesParsed  int64  `json:"bytesParsed"`  // input bytes pulled on demand
}

// twigRow is one join-strategy comparison measurement. The four ns/op
// columns are min-of-reps on a warm per-strategy context (the index build
// is priced by its own rows elsewhere); AutoVsBest is the median of per-rep
// auto/best-manual ratios, so machine drift cancels out of the gate.
type twigRow struct {
	Name       string  `json:"name"`
	Query      string  `json:"query"`
	NavNs      int64   `json:"navNsPerOp"`
	BinaryNs   int64   `json:"binaryNsPerOp"`
	TwigNs     int64   `json:"twigNsPerOp"`
	AutoNs     int64   `json:"autoNsPerOp"`
	AutoChoice string  `json:"autoChoice"`
	AutoVsBest float64 `json:"autoVsBest"`
}

// batchRow is one batched-vs-item comparison measurement.
type batchRow struct {
	Name      string  `json:"name"`
	BatchedNs int64   `json:"batchedNsPerOp"`
	ItemNs    int64   `json:"itemNsPerOp"`
	Speedup   float64 `json:"speedup"` // itemNs / batchedNs
}

// runJSON runs the benchmark smoke suite — the paper-query workload at CI-
// friendly sizes — and writes ns/op rows as JSON to path. Unlike the E1..E13
// tables it is meant for artifact diffing across commits, so names are
// stable identifiers.
func (r *runner) runJSON(path string) error {
	paperQ := `for $line in /Order/OrderLine
	           where $line/SellersID eq "1"
	           return <lineItem>{string($line/Item/ID)}</lineItem>`
	orders := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 10000, Sellers: 50, Seed: 1}))
	deepStore := workload.Deep(workload.DeepConfig{Nodes: 30000, Seed: 2})
	deep := xqgo.FromStore(deepStore)

	stream := mustCompile(paperQ, nil)
	eager := mustCompile(paperQ, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	pathQ := mustCompile(`/Order/OrderLine/Item/ID`, nil)
	descQ := mustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceNavigation})
	joinQ := mustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})

	// Warm the structural-join index cache so the row measures the join.
	joinCtx := ctxFor(deep)
	mustEval(joinQ, joinCtx)

	bench := []struct {
		name string
		fn   func()
	}{
		{"paper-query/stream-full", func() { mustEval(stream, ctxFor(orders)) }},
		{"paper-query/eager-full", func() { mustEval(eager, ctxFor(orders)) }},
		{"paper-query/stream-serialize", func() {
			if err := stream.Execute(ctxFor(orders), io.Discard); err != nil {
				panic(err)
			}
		}},
		{"paper-query/first-10", func() {
			it, err := stream.Iterator(ctxFor(orders))
			if err != nil {
				panic(err)
			}
			for i := 0; i < 10; i++ {
				if _, ok, err := it.Next(); err != nil || !ok {
					break
				}
			}
		}},
		{"path/child-steps", func() { mustEval(pathQ, ctxFor(orders)) }},
		{"path/descendant-nav", func() { mustEval(descQ, ctxFor(deep)) }},
		{"path/descendant-structjoin", func() { mustEval(joinQ, joinCtx) }},
	}

	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       r.reps,
	}
	for _, b := range bench {
		d := r.timeIt(b.fn)
		rep.Rows = append(rep.Rows, benchRow{Name: b.name, NsPerOp: d.Nanoseconds()})
		fmt.Fprintf(os.Stderr, "xqbench: %-32s %12d ns/op\n", b.name, d.Nanoseconds())
	}

	// Batched-vs-item comparison: each query compiled twice, once on the
	// default vectorized pull path and once with DisableBatching (the exact
	// item-at-a-time engine of PR 2). CI gates on Speedup so a batching
	// regression fails the build.
	compare := []struct {
		name string
		q    string
		opts xqgo.Options
		doc  *xqgo.Document
	}{
		{"paper-query/full", paperQ, xqgo.Options{}, orders},
		{"paper-query/serialize", paperQ, xqgo.Options{}, orders},
		{"path/child-steps", `/Order/OrderLine/Item/ID`, xqgo.Options{}, orders},
		{"pipeline/range-filter-count",
			`count((1 to 200000)[. mod 7 = 0])`, xqgo.Options{}, orders},
		{"pipeline/sum-range", `sum(1 to 1000000)`, xqgo.Options{}, orders},
		{"pipeline/count-range", `count(1 to 1000000)`, xqgo.Options{}, orders},
	}
	var worst float64 = 1e18
	for _, c := range compare {
		bOpts := c.opts
		iOpts := c.opts
		iOpts.DisableBatching = true
		qb := mustCompile(c.q, &bOpts)
		qi := mustCompile(c.q, &iOpts)
		run := func(q *xqgo.Query) func() {
			if c.name == "paper-query/serialize" {
				return func() {
					if err := q.Execute(ctxFor(c.doc), io.Discard); err != nil {
						panic(err)
					}
				}
			}
			return func() { mustEval(q, ctxFor(c.doc)) }
		}
		// Interleave the two engines rep by rep and gate on the median of
		// per-rep ratios: back-to-back cells see the same machine
		// conditions, so load drift cancels out of each ratio, where a
		// ratio of two independently collected minima does not.
		runB, runI := run(qb), run(qi)
		bMin, iMin := int64(1<<62-1), int64(1<<62-1)
		ratios := make([]float64, 0, r.reps)
		for k := 0; k < r.reps; k++ {
			t0 := time.Now()
			runB()
			db := time.Since(t0).Nanoseconds()
			t0 = time.Now()
			runI()
			di := time.Since(t0).Nanoseconds()
			if db < bMin {
				bMin = db
			}
			if di < iMin {
				iMin = di
			}
			ratios = append(ratios, float64(di)/float64(max64(db, 1)))
		}
		sort.Float64s(ratios)
		speedup := ratios[len(ratios)/2]
		if speedup < worst {
			worst = speedup
		}
		rep.Batch = append(rep.Batch, batchRow{
			Name:      c.name,
			BatchedNs: bMin,
			ItemNs:    iMin,
			Speedup:   speedup,
		})
		fmt.Fprintf(os.Stderr, "xqbench: batch-vs-item %-24s batched %10d ns/op  item %10d ns/op  speedup %.2fx\n",
			c.name, bMin, iMin, speedup)
	}

	// Streaming-ingestion comparison: one serialized Bib document, one
	// selective query, three ingestion modes. The projected row must build
	// strictly fewer nodes than the full lazy row, and lazy full parsing
	// must stay within an overhead budget of the eager parser (the
	// no-regression gate on full-parse throughput).
	bibDoc := workload.Bib(workload.BibConfig{Books: 4000, Seed: 7})
	var bibBuf bytes.Buffer
	if err := workload.WriteXML(&bibBuf, bibDoc); err != nil {
		return err
	}
	bibXML := bibBuf.Bytes()
	ingestQ := `/bib/book[@year = "1994"]/title`
	projQ := mustCompile(ingestQ, nil)
	fullQ := mustCompile(ingestQ, &xqgo.Options{DisableProjection: true})

	type ingestMode struct {
		name string
		run  func(record bool) (ttfb int64, counters xqgo.EngineCounters)
	}
	streamRun := func(q *xqgo.Query) func(bool) (int64, xqgo.EngineCounters) {
		return func(record bool) (int64, xqgo.EngineCounters) {
			ctx := xqgo.NewContext().WithStreamingInput(bytes.NewReader(bibXML), "bench:bib")
			var prof *xqgo.Profile
			if record {
				prof = q.NewCountersProfile()
				ctx.WithProfile(prof)
			}
			fw := newFirstByteWriter()
			if err := q.Execute(ctx, fw); err != nil {
				panic(err)
			}
			var c xqgo.EngineCounters
			if record {
				c = prof.Report().Counters
			}
			return fw.firstByte.Nanoseconds(), c
		}
	}
	modes := []ingestMode{
		{"ingest/eager-full", func(record bool) (int64, xqgo.EngineCounters) {
			d, err := xqgo.Parse(bytes.NewReader(bibXML), "bench:bib")
			if err != nil {
				panic(err)
			}
			fw := newFirstByteWriter()
			if err := fullQ.Execute(ctxFor(d), fw); err != nil {
				panic(err)
			}
			return fw.firstByte.Nanoseconds(), xqgo.EngineCounters{DocNodesBuilt: int64(d.NumNodes())}
		}},
		{"ingest/stream-full", streamRun(fullQ)},
		{"ingest/stream-projected", streamRun(projQ)},
	}
	ingestNs := map[string]int64{}
	ingestNodes := map[string]int64{}
	for _, m := range modes {
		var ttfb int64
		var counters xqgo.EngineCounters
		d := r.timeIt(func() { ttfb, _ = m.run(false) })
		_, counters = m.run(true)
		ingestNs[m.name] = d.Nanoseconds()
		ingestNodes[m.name] = counters.DocNodesBuilt
		rep.Ingest = append(rep.Ingest, ingestRow{
			Name:         m.name,
			NsPerOp:      d.Nanoseconds(),
			TTFBNs:       ttfb,
			NodesBuilt:   counters.DocNodesBuilt,
			NodesSkipped: counters.NodesSkipped,
			BytesParsed:  counters.BytesParsedOnDemand,
		})
		fmt.Fprintf(os.Stderr, "xqbench: %-28s %12d ns/op  ttfb %10d ns  nodes %8d  skipped %8d  bytes %9d\n",
			m.name, d.Nanoseconds(), ttfb, counters.DocNodesBuilt, counters.NodesSkipped, counters.BytesParsedOnDemand)
	}

	// Streaming-evaluator comparison: the paper query over a >= 10 MiB
	// serialized Orders feed. The eager baseline parses the whole feed into
	// the store and then evaluates; stream mode evaluates off the live token
	// stream, so its first result should land while the baseline is still
	// parsing. The gate below holds stream-mode TTFB to <= 20% of the eager
	// total runtime, with window buffering bounded.
	lines := 20000
	var ordersXML []byte
	for {
		var buf bytes.Buffer
		if err := workload.WriteXML(&buf, workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 50, Seed: 3})); err != nil {
			return err
		}
		if buf.Len() >= 10<<20 || lines >= 640000 {
			ordersXML = buf.Bytes()
			break
		}
		lines *= 2
	}
	fmt.Fprintf(os.Stderr, "xqbench: stream-eval feed: %d order lines, %.1f MiB\n",
		lines, float64(len(ordersXML))/(1<<20))

	countQ := mustCompile(`count(/Order/OrderLine)`, nil)
	seRun := func(q *xqgo.Query) func(record bool) (int64, xqgo.EngineCounters) {
		return func(record bool) (int64, xqgo.EngineCounters) {
			ctx := xqgo.NewContext().
				WithStreamingInput(bytes.NewReader(ordersXML), "bench:orders").
				WithStreamMode(true)
			var prof *xqgo.Profile
			if record {
				prof = q.NewCountersProfile()
				ctx.WithProfile(prof)
			}
			fw := newFirstByteWriter()
			if err := q.Execute(ctx, fw); err != nil {
				panic(err)
			}
			var c xqgo.EngineCounters
			if record {
				c = prof.Report().Counters
			}
			return fw.firstByte.Nanoseconds(), c
		}
	}
	seModes := []struct {
		name string
		q    *xqgo.Query
		run  func(record bool) (int64, xqgo.EngineCounters)
	}{
		{"stream-eval/eager-baseline", eager, func(bool) (int64, xqgo.EngineCounters) {
			d, err := xqgo.Parse(bytes.NewReader(ordersXML), "bench:orders")
			if err != nil {
				panic(err)
			}
			fw := newFirstByteWriter()
			if err := eager.Execute(ctxFor(d), fw); err != nil {
				panic(err)
			}
			return fw.firstByte.Nanoseconds(), xqgo.EngineCounters{}
		}},
		{"stream-eval/paper-query", stream, seRun(stream)},
		{"stream-eval/identity-path", pathQ, seRun(pathQ)},
		{"stream-eval/count-fallback", countQ, seRun(countQ)},
	}
	seNs := map[string]int64{}
	seTTFB := map[string]int64{}
	sePeak := map[string]int64{}
	for _, m := range seModes {
		var ttfb int64
		d := r.timeIt(func() { ttfb, _ = m.run(false) })
		_, counters := m.run(true)
		class, _ := m.q.Streamability()
		seNs[m.name] = d.Nanoseconds()
		seTTFB[m.name] = ttfb
		sePeak[m.name] = counters.StreamBufferPeakBytes
		rep.StreamEval = append(rep.StreamEval, streamEvalRow{
			Name:       m.name,
			Class:      class.String(),
			NsPerOp:    d.Nanoseconds(),
			TTFBNs:     ttfb,
			PeakBuffer: counters.StreamBufferPeakBytes,
			Windows:    counters.StreamWindows,
			Results:    counters.StreamResults,
			Fallbacks:  counters.StreamFallbacks,
		})
		fmt.Fprintf(os.Stderr, "xqbench: %-28s %12d ns/op  ttfb %10d ns  peak-buf %8d B  windows %8d  class %s\n",
			m.name, d.Nanoseconds(), ttfb, counters.StreamBufferPeakBytes, counters.StreamWindows, class)
	}

	// Trace-overhead comparison: the paper query in stream mode, crossed
	// over {profile on/off} x {trace on/off}. Profiled and traced is the
	// full observability configuration (op spans synthesized from the
	// profile at Finish); unprofiled and traced is the skeleton — just the
	// execute/rewrite/projection stage spans, which is all the machinery
	// the off path's nil checks guard. Gates below hold tracing to <= 5%
	// over the same profiled run and the skeleton to the noise floor
	// (<= 1%), on medians of per-rep ratios. A ~2 MiB feed keeps single
	// runs short enough to repeat many times.
	var traceXML []byte
	{
		var buf bytes.Buffer
		if err := workload.WriteXML(&buf, workload.Orders(workload.OrdersConfig{Lines: 16000, Sellers: 50, Seed: 4})); err != nil {
			return err
		}
		traceXML = buf.Bytes()
	}
	traceRun := func(profiled, traced bool) func() {
		return func() {
			ctx := xqgo.NewContext().
				WithStreamingInput(bytes.NewReader(traceXML), "bench:orders").
				WithStreamMode(true)
			if profiled {
				ctx.WithProfile(stream.NewCountersProfile())
			}
			var tr *xqgo.Trace
			if traced {
				tr = xqgo.NewTrace()
				ctx.WithTrace(tr)
			}
			if err := stream.Execute(ctx, io.Discard); err != nil {
				panic(err)
			}
			if tr != nil {
				if d := tr.Finish(); len(d.Spans) == 0 {
					panic("traced run produced no spans")
				}
			}
		}
	}
	traceModes := []struct {
		name              string
		profiled, tracing bool
	}{
		{"trace/off", false, false},
		{"trace/skeleton", false, true},
		{"trace/untraced-profiled", true, false},
		{"trace/traced-profiled", true, true},
	}
	// Interleaved min-of-reps timing: each rep runs all four configurations
	// back to back (so clock drift and cache warmth cancel out of the
	// on/off ratios the gates compare), and each configuration reports its
	// fastest rep — the minimum discards scheduler and neighbor
	// interference, which is random, while a real tracing overhead is
	// systematic and survives in every rep.
	traceReps := r.reps
	if traceReps < 7 {
		traceReps = 7
	}
	// The in-rep order rotates so no configuration always runs right after
	// the allocation-heavy traced mode and absorbs its GC debt; each rep
	// still collects exactly one sample per mode, keeping the pairing the
	// ratio gates need.
	samples := make([][]time.Duration, len(traceModes))
	for rep := 0; rep < traceReps; rep++ {
		for s := range traceModes {
			i := (s + rep) % len(traceModes)
			m := traceModes[i]
			fn := traceRun(m.profiled, m.tracing)
			start := time.Now()
			fn()
			samples[i] = append(samples[i], time.Since(start))
		}
	}
	// Per-rep overhead ratios for the gates, computed before the sort below
	// destroys the rep pairing: traced vs untraced (both profiled) and
	// skeleton vs fully off ran back to back within each rep.
	medTraced := medianRatio(samples[3], samples[2])
	medSkeleton := medianRatio(samples[1], samples[0])
	traceNs := map[string]int64{}
	for i, m := range traceModes {
		ds := samples[i]
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		best := ds[0].Nanoseconds()
		traceNs[m.name] = best
		rep.TraceOverhead = append(rep.TraceOverhead, benchRow{Name: m.name, NsPerOp: best})
		fmt.Fprintf(os.Stderr, "xqbench: %-28s %12d ns/op\n", m.name, best)
	}

	// Governance overhead: the same work ungoverned versus with a generous
	// per-query memory budget attached — every hot path charges it (store
	// growth, batch pools, FLWOR rounds, output), but the cap never trips,
	// so the rows time pure accounting cost. Two shapes: the paper query
	// over an in-store document (batch/FLWOR charging) and a streamed count
	// (per-increment parse charging, the tightest loop). Interleaved per-rep
	// ratios, gated at the median, like the trace rows.
	govCases := []struct {
		name string
		run  func(budget bool)
	}{
		{"governance/paper-query-store", func(budget bool) {
			ctx := ctxFor(orders)
			if budget {
				ctx.WithMemoryBudget(1 << 40)
			}
			mustEval(stream, ctx)
		}},
		{"governance/streamed-count", func(budget bool) {
			ctx := xqgo.NewContext().WithStreamingInput(bytes.NewReader(traceXML), "bench:orders")
			if budget {
				ctx.WithMemoryBudget(1 << 40)
			}
			if err := countQ.Execute(ctx, io.Discard); err != nil {
				panic(err)
			}
		}},
	}
	govReps := r.reps
	if govReps < 7 {
		govReps = 7
	}
	worstGov := 0.0
	for _, c := range govCases {
		offs := make([]time.Duration, 0, govReps)
		ons := make([]time.Duration, 0, govReps)
		for rep := 0; rep < govReps; rep++ {
			// Alternate which side runs first so neither always absorbs
			// the other's GC debt.
			first := rep%2 == 0
			for _, budget := range []bool{first, !first} {
				t0 := time.Now()
				c.run(budget)
				d := time.Since(t0)
				if budget {
					ons = append(ons, d)
				} else {
					offs = append(offs, d)
				}
			}
		}
		overhead := medianRatio(ons, offs)
		if overhead > worstGov {
			worstGov = overhead
		}
		offMin, onMin := offs[0], ons[0]
		for k := 1; k < govReps; k++ {
			if offs[k] < offMin {
				offMin = offs[k]
			}
			if ons[k] < onMin {
				onMin = ons[k]
			}
		}
		rep.Governance = append(rep.Governance, govRow{
			Name:     c.name,
			OffNs:    offMin.Nanoseconds(),
			OnNs:     onMin.Nanoseconds(),
			Overhead: overhead,
		})
		fmt.Fprintf(os.Stderr, "xqbench: %-28s off %10d ns/op  governed %10d ns/op  overhead %.3fx\n",
			c.name, offMin.Nanoseconds(), onMin.Nanoseconds(), overhead)
	}

	// Morsel worker scaling: the three parallelized loop families (path-step
	// range scans, structural-join postings feeds, FLWOR tuple pipelines)
	// each swept over 1/2/4/8 workers against a no-workers baseline, on a
	// document large enough that every loop actually splits into rounds.
	// Interleaved min-of-reps, like the trace rows: each rep runs every
	// (query, workers) cell back to back so drift cancels out of the ratios.
	scaleDoc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 200000, Seed: 2}))
	scaleCases := []struct {
		name string
		q    *xqgo.Query
	}{
		{"path/descendant-structjoin", mustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})},
		{"path/descendant-scan", mustCompile(`count(//a)`, nil)},
		{"flwor/sum-tuples", mustCompile(`sum(for $i in 1 to 300000 return $i mod 7)`, nil)},
	}
	scaleWorkers := []int{0, 1, 2, 4, 8}
	// One reused context per worker level: the structural-join index cache is
	// per-context, so a fresh context each run would time the index build,
	// not the join. Warming the join query once per context builds it.
	scaleCtxs := make([]*xqgo.Context, len(scaleWorkers))
	for j, w := range scaleWorkers {
		scaleCtxs[j] = ctxFor(scaleDoc)
		if w > 0 {
			scaleCtxs[j].WithWorkers(w)
		}
		mustEval(scaleCases[0].q, scaleCtxs[j])
	}
	// The 1-worker row runs the same sequential code as the baseline (one
	// extra branch), so any gap between them is measurement noise; double
	// the reps here so min-of-reps converges the two cells before the 5%
	// overhead gate compares them.
	scaleReps := 2 * r.reps
	if scaleReps < 8 {
		scaleReps = 8
	}
	scaleNs := make([][]int64, len(scaleCases))
	for i := range scaleNs {
		scaleNs[i] = make([]int64, len(scaleWorkers))
		for j := range scaleNs[i] {
			scaleNs[i][j] = 1<<62 - 1
		}
	}
	// Per-rep baseline-vs-1-worker ratios for the overhead gate: the two
	// cells run back to back inside each rep, so machine load drift cancels
	// out of the ratio; the median over reps is far more stable than the
	// ratio of two independent minima.
	// Worker cells rotate within each rep for the same reason as the trace
	// modes: with a fixed order the 1-worker cell always runs right after
	// the baseline and inherits whatever GC debt it left behind.
	overheadRatios := make([][]float64, len(scaleCases))
	for rep := 0; rep < scaleReps; rep++ {
		for i, c := range scaleCases {
			repNs := make([]int64, len(scaleWorkers))
			for jj := range scaleWorkers {
				j := (jj + rep) % len(scaleWorkers)
				t0 := time.Now()
				mustEval(c.q, scaleCtxs[j])
				repNs[j] = time.Since(t0).Nanoseconds()
				if repNs[j] < scaleNs[i][j] {
					scaleNs[i][j] = repNs[j]
				}
			}
			overheadRatios[i] = append(overheadRatios[i], float64(repNs[1])/float64(repNs[0]))
		}
	}
	rep.NumCPU = runtime.NumCPU()
	oneWorkerNs := make([]int64, len(scaleCases))
	joinSpeedup8 := 0.0
	for i, c := range scaleCases {
		base := scaleNs[i][1] // the workers=1 row
		oneWorkerNs[i] = base
		for j, w := range scaleWorkers {
			speedup := 0.0
			if w >= 1 {
				speedup = float64(base) / float64(scaleNs[i][j])
			}
			if c.name == "path/descendant-structjoin" && w == 8 {
				joinSpeedup8 = speedup
			}
			rep.Scaling = append(rep.Scaling, scalingRow{
				Name: c.name, Workers: w, NsPerOp: scaleNs[i][j], Speedup: speedup,
			})
			fmt.Fprintf(os.Stderr, "xqbench: scaling %-28s workers %d %12d ns/op  %.2fx\n",
				c.name, w, scaleNs[i][j], speedup)
		}
	}

	// Join-strategy comparison over the shapes where the "demythization"
	// literature says holistic and binary plans genuinely diverge: a deep
	// chain (many nested matches per edge, so the binary plan materializes
	// large intermediate pair lists), a wide shallow twig (joins are cheap,
	// navigation and both joins should be close), and a low-selectivity
	// leaf (the binary plan pays for every (a,b) pair before the rare leaf
	// cuts the output down; the path stack never materializes them).
	twigShapes := []struct {
		name  string
		query string
		doc   *xqgo.Document
	}{
		{"twig/deep-chain", `count(//a//b//c)`,
			xqgo.FromStore(workload.Deep(workload.DeepConfig{
				Nodes: 60000, MaxDepth: 40, Fanout: 2, Seed: 3}))},
		{"twig/wide-shallow", `count(//a//b)`,
			xqgo.FromStore(workload.Deep(workload.DeepConfig{
				Nodes: 60000, MaxDepth: 6, Fanout: 24, Seed: 4}))},
		{"twig/low-selectivity-leaf", `count(//a//b//z)`,
			xqgo.FromStore(workload.Deep(workload.DeepConfig{
				Nodes: 60000, Names: []string{"a", "a", "a", "b", "b", "b", "z"}, Seed: 5}))},
	}
	twigWinsSomewhere := false
	for _, sh := range twigShapes {
		strategies := []xqgo.Strategy{
			xqgo.ForceNavigation, xqgo.ForceBinaryJoin, xqgo.ForceTwig, xqgo.StrategyAuto,
		}
		plans := make([]*xqgo.Query, len(strategies))
		ctxs := make([]*xqgo.Context, len(strategies))
		for i, st := range strategies {
			plans[i] = mustCompile(sh.query, &xqgo.Options{Strategy: st})
			ctxs[i] = xqgo.NewContext().WithContextNode(sh.doc)
		}
		// The Auto plan warms up under a counters profile so the row can
		// report the strategy the cost model actually picked; the choice is
		// made on the first run (cold index, no feedback) and cached for
		// the execution context, exactly like a server's first request.
		prof := plans[3].NewCountersProfile()
		ctxs[3].WithProfile(prof)
		for i := range plans {
			mustEval(plans[i], ctxs[i]) // warm the per-context index cache
		}
		ctxs[3].WithProfile(nil)
		autoChoice := ""
		for _, op := range prof.Report().Operators {
			if op.Strategy != "" {
				autoChoice = op.Strategy
			}
		}
		mins := []int64{1 << 62, 1 << 62, 1 << 62, 1 << 62}
		ratios := make([]float64, 0, r.reps)
		for k := 0; k < r.reps; k++ {
			var cell [4]int64
			for i := range plans {
				t0 := time.Now()
				mustEval(plans[i], ctxs[i])
				cell[i] = time.Since(t0).Nanoseconds()
				if cell[i] < mins[i] {
					mins[i] = cell[i]
				}
			}
			best := min64(cell[0], min64(cell[1], cell[2]))
			ratios = append(ratios, float64(cell[3])/float64(max64(best, 1)))
		}
		sort.Float64s(ratios)
		row := twigRow{
			Name: sh.name, Query: sh.query,
			NavNs: mins[0], BinaryNs: mins[1], TwigNs: mins[2], AutoNs: mins[3],
			AutoChoice: autoChoice, AutoVsBest: ratios[len(ratios)/2],
		}
		rep.TwigVsBinary = append(rep.TwigVsBinary, row)
		fmt.Fprintf(os.Stderr,
			"xqbench: %-28s nav %10d  binary %10d  twig %10d  auto %10d ns/op  choice=%s  auto/best %.3fx\n",
			sh.name, row.NavNs, row.BinaryNs, row.TwigNs, row.AutoNs, row.AutoChoice, row.AutoVsBest)
		if row.AutoChoice == "twig-join" && row.TwigNs < row.BinaryNs {
			twigWinsSomewhere = true
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Regression gate: batching must never make a compared query more than
	// 15% slower than the item-at-a-time baseline (medians of interleaved
	// per-rep ratios keep CI noise below that).
	if worst < 0.85 {
		return fmt.Errorf("batching regression: worst batched/item speedup %.2fx < 0.85x", worst)
	}
	// Ingestion gates: projection must actually reduce materialization, and
	// lazy full parsing (projection off, everything materialized on demand)
	// must stay within 2x of the eager parser on the same input — the
	// no-regression guard for plain full-parse throughput.
	if pn, fn := ingestNodes["ingest/stream-projected"], ingestNodes["ingest/stream-full"]; pn >= fn {
		return fmt.Errorf("projection regression: projected ingestion built %d nodes, full built %d", pn, fn)
	}
	if sn, en := ingestNs["ingest/stream-full"], ingestNs["ingest/eager-full"]; float64(sn) > 2.0*float64(en) {
		return fmt.Errorf("full-parse throughput regression: lazy full ingestion %d ns/op > 2x eager %d ns/op", sn, en)
	}
	// Streaming-evaluator gates: the paper query must stay streamable, its
	// first result must land within 20% of the eager total runtime (the
	// whole point of evaluating off the live token stream), and window
	// buffering must stay a small fraction of the feed.
	if cl, reason := stream.Streamability(); !cl.Streamable() {
		return fmt.Errorf("paper query no longer streamable: %s", reason)
	}
	if ttfb, et := seTTFB["stream-eval/paper-query"], seNs["stream-eval/eager-baseline"]; float64(ttfb) > 0.20*float64(et) {
		return fmt.Errorf("streaming TTFB regression: first byte after %d ns > 20%% of eager total %d ns", ttfb, et)
	}
	if peak := sePeak["stream-eval/paper-query"]; peak <= 0 || peak > int64(len(ordersXML)/100) {
		return fmt.Errorf("stream-eval peak buffer %d B out of bounds for a %d B feed", peak, len(ordersXML))
	}
	// Tracing gates. Per-request tracing synthesizes spans from the profile
	// after the run, so with tracing on the whole execution may cost at most
	// 5% over the identical untraced run. The skeleton row (tracing enabled
	// with no profile) does strictly more work than the real off path — the
	// off path is only nil checks — so holding the skeleton to 1% bounds the
	// off-path cost from above. Both gates compare the median of per-rep
	// back-to-back ratios, so load drift on a shared CI machine cancels
	// out; a real regression (say, a span per window) is systematic and
	// shifts every rep's ratio.
	if medTraced > 1.05 {
		return fmt.Errorf("tracing-on overhead regression: traced median %.3fx over untraced (min %d vs %d ns/op)",
			medTraced, traceNs["trace/traced-profiled"], traceNs["trace/untraced-profiled"])
	}
	// 1.03 is the scale-invariant equivalent of the original 1% + 2ms
	// absolute slack at this row's ~140ms magnitude; the skeleton
	// measurably costs ~1.5% (see any BENCH artifact), and what the gate
	// bounds is the off path underneath it, which does strictly less.
	if medSkeleton > 1.03 {
		return fmt.Errorf("tracing off-path overhead regression: skeleton spans median %.3fx over untraced (min %d vs %d ns/op)",
			medSkeleton, traceNs["trace/skeleton"], traceNs["trace/off"])
	}
	// Worker-scaling gates. A single worker means every morsel check
	// short-circuits, so the 1-worker row may cost at most 5% over the
	// baseline with workers never configured — the no-regression guard for
	// sequential callers. Gated on the median of per-rep back-to-back
	// ratios (drift-immune), not the ratio of two independent minima. The
	// 3x speedup gate on the structural-join row only applies where the
	// hardware has at least 8 CPUs; on smaller machines the sweep still
	// runs (correctness and overhead stay gated) but a speedup is
	// physically impossible.
	for i, c := range scaleCases {
		rs := append([]float64(nil), overheadRatios[i]...)
		sort.Float64s(rs)
		if med := rs[len(rs)/2]; med > 1.05 {
			return fmt.Errorf("worker overhead regression: %s at 1 worker median %.3fx over baseline (min %d vs %d ns/op)",
				c.name, med, oneWorkerNs[i], scaleNs[i][0])
		}
	}
	// Governance gate: charging a never-tripping budget along every hot
	// path may cost at most 3% over the ungoverned run (medians of
	// interleaved per-rep ratios, so CI load drift cancels out).
	if worstGov > 1.03 {
		return fmt.Errorf("governance overhead regression: worst governed/ungoverned median %.3fx > 1.03x", worstGov)
	}
	if rep.NumCPU >= 8 && joinSpeedup8 < 3.0 {
		return fmt.Errorf("worker scaling regression: path/descendant-structjoin at 8 workers %.2fx < 3x over 1 worker",
			joinSpeedup8)
	}
	// Join-strategy gates. Cost-based Auto may never sit more than 5% over
	// the best manual strategy on any shape (median of per-rep ratios), and
	// the cost model must pick the twig join somewhere it actually pays —
	// otherwise the holistic operator is dead weight.
	for _, row := range rep.TwigVsBinary {
		if row.AutoVsBest > 1.05 {
			return fmt.Errorf("plan-choice regression: %s auto median %.3fx over best manual strategy (auto %d, nav %d, binary %d, twig %d ns/op)",
				row.Name, row.AutoVsBest, row.AutoNs, row.NavNs, row.BinaryNs, row.TwigNs)
		}
	}
	if !twigWinsSomewhere {
		return fmt.Errorf("plan-choice regression: no shape had Auto pick the twig join where it beats the binary plan")
	}
	return nil
}

// firstByteWriter discards output, recording the elapsed time from creation
// to the first written byte (the service-visible time-to-first-answer).
type firstByteWriter struct {
	start     time.Time
	firstByte time.Duration
}

func newFirstByteWriter() *firstByteWriter {
	return &firstByteWriter{start: time.Now()}
}

func (f *firstByteWriter) Write(p []byte) (int, error) {
	if f.firstByte == 0 && len(p) > 0 {
		f.firstByte = time.Since(f.start)
	}
	return len(p), nil
}

// medianRatio reports the median of element-wise num[k]/den[k] ratios over
// samples collected rep by rep. Because the two configurations ran back to
// back within each rep, machine load drift hits both sides of a ratio
// equally and cancels, where the ratio of two independently collected
// minima is exposed to whichever cell happened to catch a quiet moment.
func medianRatio(num, den []time.Duration) float64 {
	rs := make([]float64, len(num))
	for k := range num {
		rs[k] = float64(num[k]) / float64(max64(int64(den[k]), 1))
	}
	sort.Float64s(rs)
	return rs[len(rs)/2]
}
