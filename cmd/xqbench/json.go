package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"xqgo"
	"xqgo/internal/workload"
)

// benchRow is one machine-readable benchmark result (ns per full operation).
type benchRow struct {
	Name   string `json:"name"`
	NsPerOp int64 `json:"nsPerOp"`
}

// benchReport is the JSON artifact written by -json (BENCH_PR2.json in CI).
type benchReport struct {
	GoVersion  string     `json:"goVersion"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Reps       int        `json:"reps"`
	Rows       []benchRow `json:"rows"`
}

// runJSON runs the benchmark smoke suite — the paper-query workload at CI-
// friendly sizes — and writes ns/op rows as JSON to path. Unlike the E1..E13
// tables it is meant for artifact diffing across commits, so names are
// stable identifiers.
func (r *runner) runJSON(path string) error {
	paperQ := `for $line in /Order/OrderLine
	           where $line/SellersID eq "1"
	           return <lineItem>{string($line/Item/ID)}</lineItem>`
	orders := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 10000, Sellers: 50, Seed: 1}))
	deepStore := workload.Deep(workload.DeepConfig{Nodes: 30000, Seed: 2})
	deep := xqgo.FromStore(deepStore)

	stream := mustCompile(paperQ, nil)
	eager := mustCompile(paperQ, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	pathQ := mustCompile(`/Order/OrderLine/Item/ID`, nil)
	descQ := mustCompile(`count(//a//b)`, nil)
	joinQ := mustCompile(`count(//a//b)`, &xqgo.Options{UseStructuralJoins: true})

	// Warm the structural-join index cache so the row measures the join.
	joinCtx := ctxFor(deep)
	mustEval(joinQ, joinCtx)

	bench := []struct {
		name string
		fn   func()
	}{
		{"paper-query/stream-full", func() { mustEval(stream, ctxFor(orders)) }},
		{"paper-query/eager-full", func() { mustEval(eager, ctxFor(orders)) }},
		{"paper-query/stream-serialize", func() {
			if err := stream.Execute(ctxFor(orders), io.Discard); err != nil {
				panic(err)
			}
		}},
		{"paper-query/first-10", func() {
			it, err := stream.Iterator(ctxFor(orders))
			if err != nil {
				panic(err)
			}
			for i := 0; i < 10; i++ {
				if _, ok, err := it.Next(); err != nil || !ok {
					break
				}
			}
		}},
		{"path/child-steps", func() { mustEval(pathQ, ctxFor(orders)) }},
		{"path/descendant-nav", func() { mustEval(descQ, ctxFor(deep)) }},
		{"path/descendant-structjoin", func() { mustEval(joinQ, joinCtx) }},
	}

	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       r.reps,
	}
	for _, b := range bench {
		d := r.timeIt(b.fn)
		rep.Rows = append(rep.Rows, benchRow{Name: b.name, NsPerOp: d.Nanoseconds()})
		fmt.Fprintf(os.Stderr, "xqbench: %-32s %12d ns/op\n", b.name, d.Nanoseconds())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
