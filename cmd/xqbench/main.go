// Command xqbench regenerates the experiment tables of EXPERIMENTS.md: one
// sub-table per claim of the paper (E1..E12), printed as aligned text. Run
// a single experiment with -only e5, everything with no flags.
//
// Absolute numbers are hardware-dependent; the shapes (who wins, how the
// gap scales) are what reproduce the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"xqgo"
	"xqgo/internal/structjoin"
	"xqgo/internal/tokens"
	"xqgo/internal/workload"
	"xqgo/internal/xdm"
)

func main() {
	var (
		only     = flag.String("only", "", "run one experiment: e1..e13")
		reps     = flag.Int("reps", 3, "timing repetitions (median reported)")
		jsonPath = flag.String("json", "", "run the benchmark smoke suite and write ns/op rows as JSON to this file (skips the experiment tables)")
	)
	flag.Parse()
	r := &runner{reps: *reps, w: os.Stdout}
	if *jsonPath != "" {
		if err := r.runJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "xqbench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"e1", "streaming vs eager evaluation", r.e1},
		{"e2", "time to first answer", r.e2},
		{"e3", "lazy evaluation early exit", r.e3},
		{"e4", "skip() for positional access", r.e4},
		{"e5", "structural join vs navigation", r.e5},
		{"e6", "holistic twig vs binary joins", r.e6},
		{"e7", "on-demand node identifiers", r.e7},
		{"e8", "doc-order sort/dedup elision", r.e8},
		{"e9", "dictionary pooling", r.e9},
		{"e10", "rewrite-rule ablation", r.e10},
		{"e11", "memory footprint", r.e11},
		{"e12", "intra-query memoization", r.e12},
		{"e13", "parallel subexpression execution", r.e13},
	}
	ran := false
	for _, e := range experiments {
		if *only != "" && e.id != *only {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s ==\n", strings.ToUpper(e.id), e.name)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "xqbench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

type runner struct {
	reps int
	w    io.Writer
}

// timeIt reports the median wall time of fn over r.reps runs.
func (r *runner) timeIt(fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < r.reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func (r *runner) table(header string, rows [][]string) {
	tw := tabwriter.NewWriter(r.w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, header)
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

func mustCompile(src string, opts *xqgo.Options) *xqgo.Query {
	q, err := xqgo.Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return q
}

func mustEval(q *xqgo.Query, ctx *xqgo.Context) xqgo.Sequence {
	out, err := q.Eval(ctx)
	if err != nil {
		panic(err)
	}
	return out
}

func ctxFor(doc *xqgo.Document) *xqgo.Context {
	return xqgo.NewContext().WithContextNode(doc)
}

// ---- E1: streaming vs eager ----

func (r *runner) e1() {
	query := `for $line in /Order/OrderLine
	          where $line/SellersID eq "1"
	          return <lineItem>{string($line/Item/ID)}</lineItem>`
	stream := mustCompile(query, nil)
	eager := mustCompile(query, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	firstK := func(q *xqgo.Query, doc *xqgo.Document, k int) {
		it, err := q.Iterator(ctxFor(doc))
		if err != nil {
			panic(err)
		}
		for i := 0; i < k; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				break
			}
		}
	}
	var rows [][]string
	for _, lines := range []int{1000, 10000, 100000} {
		doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 50, Seed: 1}))
		ts := r.timeIt(func() { mustEval(stream, ctxFor(doc)) })
		te := r.timeIt(func() { mustEval(eager, ctxFor(doc)) })
		// The message-processing scenario: the consumer needs the first 10
		// results. The eager baseline still computes everything.
		tsK := r.timeIt(func() { firstK(stream, doc, 10) })
		teK := r.timeIt(func() { firstK(eager, doc, 10) })
		rows = append(rows, []string{
			fmt.Sprint(lines), ts.String(), te.String(),
			fmt.Sprintf("%.1fx", float64(te)/float64(ts)),
			tsK.String(), teK.String(),
			fmt.Sprintf("%.0fx", float64(teK)/float64(max64(int64(tsK), 1))),
		})
	}
	r.table("OrderLines\tstream full\teager full\tfull speedup\tstream first-10\teager first-10\tfirst-10 speedup", rows)
}

// ---- E2: time to first answer ----

func (r *runner) e2() {
	query := `/Order/OrderLine/Item/ID`
	q := mustCompile(query, nil)
	var rows [][]string
	for _, lines := range []int{1000, 10000, 100000} {
		doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 50, Seed: 1}))
		tFirst := r.timeIt(func() {
			it, err := q.Iterator(ctxFor(doc))
			if err != nil {
				panic(err)
			}
			if _, ok, err := it.Next(); err != nil || !ok {
				panic("no first item")
			}
		})
		tAll := r.timeIt(func() { mustEval(q, ctxFor(doc)) })
		rows = append(rows, []string{
			fmt.Sprint(lines), tFirst.String(), tAll.String(),
			fmt.Sprintf("%.0fx", float64(tAll)/float64(max64(int64(tFirst), 1))),
		})
	}
	r.table("OrderLines\tfirst answer\tfull result\tratio", rows)
}

// ---- E3: lazy early exit ----

func (r *runner) e3() {
	cases := []struct{ name, q string }{
		{"some..satisfies", `some $x in /Order/OrderLine/SellersID satisfies $x eq "1"`},
		{"positional [3]", `(/Order/OrderLine)[3]/Item/ID/text()`},
		{"subsequence 1..5", `subsequence(/Order/OrderLine, 1, 5)/Note/text()`},
	}
	doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 100000, Sellers: 3, Seed: 1}))
	var rows [][]string
	for _, c := range cases {
		lazy := mustCompile(c.q, nil)
		eager := mustCompile(c.q, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
		tl := r.timeIt(func() { mustEval(lazy, ctxFor(doc)) })
		te := r.timeIt(func() { mustEval(eager, ctxFor(doc)) })
		rows = append(rows, []string{c.name, tl.String(), te.String(),
			fmt.Sprintf("%.0fx", float64(te)/float64(max64(int64(tl), 1)))})
	}
	r.table("query\tlazy\teager\tspeedup", rows)
}

// ---- E4: skip() ----

func (r *runner) e4() {
	doc := workload.Orders(workload.OrdersConfig{Lines: 50000, Sellers: 10, Seed: 1})
	var rows [][]string
	for _, k := range []int{1, 10, 100} {
		// Token-level: find the k-th OrderLine subtree, with and without Skip.
		withSkip := r.timeIt(func() {
			sc := tokens.NewDocScanner(doc, 0)
			sc.Open()
			seen := 0
			for {
				t, ok, err := sc.Next()
				if err != nil || !ok {
					break
				}
				if t.Kind == tokens.KindStartElement && t.Name.Local == "OrderLine" {
					seen++
					if seen == k {
						break
					}
					sc.Skip() // jump the whole subtree in O(1)
				}
			}
		})
		withoutSkip := r.timeIt(func() {
			sc := tokens.NewDocScanner(doc, 0)
			sc.Open()
			seen := 0
			depthTarget := -1
			for {
				t, ok, err := sc.Next()
				if err != nil || !ok {
					break
				}
				_ = depthTarget
				if t.Kind == tokens.KindStartElement && t.Name.Local == "OrderLine" {
					seen++
					if seen == k {
						break
					}
				}
			}
		})
		rows = append(rows, []string{fmt.Sprint(k), withSkip.String(), withoutSkip.String(),
			fmt.Sprintf("%.1fx", float64(withoutSkip)/float64(max64(int64(withSkip), 1)))})
	}
	r.table("k-th OrderLine\twith skip()\tnext() only\tspeedup", rows)
}

// ---- E5: structural joins ----

func (r *runner) e5() {
	var rows [][]string
	for _, nodes := range []int{10000, 100000} {
		doc := workload.Deep(workload.DeepConfig{Nodes: nodes, Seed: 2})
		idx := structjoin.BuildIndex(doc)
		a := idx.Elements(localName("a"))
		b := idx.Elements(localName("b"))
		tStack := r.timeIt(func() { structjoin.StackTreeDesc(a, b, false) })
		tMerge := r.timeIt(func() { structjoin.TreeMergeDesc(a, b, false) })
		tNav := r.timeIt(func() { structjoin.NavigationDesc(doc, localName("a"), localName("b"), false) })
		engineQ := mustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceNavigation})
		indexedQ := mustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})
		wrapped := xqgo.FromStore(doc)
		tEngine := r.timeIt(func() { mustEval(engineQ, ctxFor(wrapped)) })
		// Warm the per-document index cache so the row measures the join,
		// matching the raw-algorithm columns (index build is reported by E5b).
		ctxIdx := ctxFor(wrapped)
		mustEval(indexedQ, ctxIdx)
		tIndexed := r.timeIt(func() { mustEval(indexedQ, ctxIdx) })
		pairs := len(structjoin.StackTreeDesc(a, b, false))
		rows = append(rows, []string{
			fmt.Sprint(nodes), fmt.Sprint(pairs),
			tStack.String(), tMerge.String(), tNav.String(), tEngine.String(), tIndexed.String(),
		})
	}
	r.table("nodes\ta//b pairs\tstack-tree\ttree-merge\tnavigation\tengine nav //a//b\tengine indexed //a//b", rows)
}

// ---- E6: twig joins ----

func (r *runner) e6() {
	doc := workload.Deep(workload.DeepConfig{Nodes: 100000, Seed: 2})
	idx := structjoin.BuildIndex(doc)
	var rows [][]string
	for _, pat := range []string{"a//b", "a//b//c", "a[b]//c", "a[b//c]//d"} {
		twig, err := structjoin.ParseTwig(pat)
		if err != nil {
			panic(err)
		}
		var st structjoin.TwigStats
		tTwig := r.timeIt(func() { st = structjoin.TwigStack(twig, idx) })
		var binPairs int64
		tBin := r.timeIt(func() { binPairs = structjoin.BinaryPlanStats(twig, idx) })
		rows = append(rows, []string{
			pat, fmt.Sprint(st.PathSolutions), fmt.Sprint(binPairs),
			tTwig.String(), tBin.String(),
		})
	}
	r.table("twig\tholistic intermediates\tbinary-plan pairs\tTwigStack\tbinary plan", rows)
}

// ---- E7: node ids on demand ----

func (r *runner) e7() {
	query := `for $line in /Order/OrderLine
	          return <lineItem seller="{$line/SellersID}">{string($line/Item/ID)}</lineItem>`
	withIDs := mustCompile(query, &xqgo.Options{DisableRules: []string{xqgo.RuleNoNodeIDs}})
	noIDs := mustCompile(query, nil)
	var rows [][]string
	for _, lines := range []int{10000, 100000} {
		doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 10, Seed: 1}))
		tWith := r.timeIt(func() {
			if err := withIDs.Execute(ctxFor(doc), io.Discard); err != nil {
				panic(err)
			}
		})
		tNo := r.timeIt(func() {
			if err := noIDs.Execute(ctxFor(doc), io.Discard); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{fmt.Sprint(lines), tNo.String(), tWith.String(),
			fmt.Sprintf("%.2fx", float64(tWith)/float64(max64(int64(tNo), 1)))})
	}
	r.table("OrderLines\tno node ids\twith node ids\tspeedup", rows)
}

// ---- E8: sort/dedup elision ----

func (r *runner) e8() {
	doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 100000, Sellers: 10, Seed: 1}))
	var rows [][]string
	for _, c := range []struct{ name, q string }{
		{"/Order/OrderLine/Item/ID", `/Order/OrderLine/Item/ID`},
		{"//Item/ID", `//Item/ID`},
	} {
		elided := mustCompile(c.q, nil)
		kept := mustCompile(c.q, &xqgo.Options{DisableRules: []string{xqgo.RulePathOrder}})
		tE := r.timeIt(func() { mustEval(elided, ctxFor(doc)) })
		tK := r.timeIt(func() { mustEval(kept, ctxFor(doc)) })
		rows = append(rows, []string{c.name, tE.String(), tK.String(),
			fmt.Sprintf("%.2fx", float64(tK)/float64(max64(int64(tE), 1)))})
	}
	r.table("path\telision on\telision off\tspeedup", rows)
}

// ---- E9: pooling ----

func (r *runner) e9() {
	doc := workload.Repetitive(20000, 1)
	scan := func() tokens.Iterator { return tokens.NewDocScanner(doc, 0) }
	size := func(opts tokens.EncodeOptions) int {
		var sb countWriter
		enc := tokens.NewEncoder(&sb, opts)
		if err := enc.EncodeStream(scan()); err != nil {
			panic(err)
		}
		return sb.n
	}
	raw := size(tokens.EncodeOptions{})
	pooledNames := size(tokens.EncodeOptions{PoolNames: true})
	pooledAll := size(tokens.EncodeOptions{PoolNames: true, PoolValues: true})
	r.table("encoding\tbytes\tvs raw", [][]string{
		{"unpooled", fmt.Sprint(raw), "1.00x"},
		{"pooled names", fmt.Sprint(pooledNames), fmt.Sprintf("%.2fx", float64(raw)/float64(pooledNames))},
		{"pooled names+values", fmt.Sprint(pooledAll), fmt.Sprintf("%.2fx", float64(raw)/float64(pooledAll))},
	})
}

// ---- E10: rewrite ablation ----

func (r *runner) e10() {
	// Each query exercises one rule family; the "key rule off" column shows
	// that rule's isolated contribution, "no optimizer" the combined one.
	tpDoc := xqgo.FromStore(workload.TradingPartners(workload.TPConfig{Partners: 300, Seed: 42}))
	deepDoc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 30000, Seed: 2}))

	cases := []struct {
		name    string
		src     string
		keyRule string
		ctx     func() *xqgo.Context
	}{
		{
			"trading-partner", workload.TradingPartnerQuery, xqgo.RulePathOrder,
			func() *xqgo.Context { return xqgo.NewContext().Bind("wlc", tpDoc) },
		},
		{
			"cse-heavy",
			`declare variable $d external;
			 for $x in $d/root/a return count($x//b//c) + count($x//b//c)`,
			xqgo.RuleCSE,
			func() *xqgo.Context { return xqgo.NewContext().Bind("d", deepDoc) },
		},
		{
			"const-in-loop",
			`declare variable $d external;
			 count($d//a[2 + 3 eq 5])`,
			xqgo.RuleConstFold,
			func() *xqgo.Context { return xqgo.NewContext().Bind("d", deepDoc) },
		},
		{
			"inline-in-loop",
			`declare variable $d external;
			 declare function local:deep($x) { count($x/b) + count($x/c) };
			 sum(for $x in $d//a return local:deep($x))`,
			xqgo.RuleFnInline,
			func() *xqgo.Context { return xqgo.NewContext().Bind("d", deepDoc) },
		},
		{
			"path-order",
			`declare variable $d external; count($d//c/b)`,
			xqgo.RulePathOrder,
			func() *xqgo.Context { return xqgo.NewContext().Bind("d", deepDoc) },
		},
	}
	var rows [][]string
	for _, c := range cases {
		full := mustCompile(c.src, nil)
		keyOff := mustCompile(c.src, &xqgo.Options{DisableRules: []string{c.keyRule}})
		none := mustCompile(c.src, &xqgo.Options{NoOptimize: true})
		tFull := r.timeIt(func() { mustEval(full, c.ctx()) })
		tKey := r.timeIt(func() { mustEval(keyOff, c.ctx()) })
		tNone := r.timeIt(func() { mustEval(none, c.ctx()) })
		rows = append(rows, []string{
			c.name, c.keyRule, tFull.String(),
			fmt.Sprintf("%.2fx", float64(tKey)/float64(max64(int64(tFull), 1))),
			fmt.Sprintf("%.2fx", float64(tNone)/float64(max64(int64(tFull), 1))),
		})
	}
	r.table("query\tkey rule\tall rules\tkey rule off\tno optimizer", rows)
}

// ---- E11: memory footprint ----

func (r *runner) e11() {
	// A selective query that a lazy engine answers from a prefix of the
	// input: the streaming engine's working set stays flat with document
	// size while the eager engine materializes every intermediate.
	query := `some $x in /Order/OrderLine satisfies $x/SellersID eq "1"`
	stream := mustCompile(query, nil)
	eager := mustCompile(query, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	var rows [][]string
	for _, lines := range []int{10000, 100000} {
		doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 50, Seed: 1}))
		ms := allocBytes(func() { mustEval(stream, ctxFor(doc)) })
		me := allocBytes(func() { mustEval(eager, ctxFor(doc)) })
		rows = append(rows, []string{fmt.Sprint(lines),
			fmt.Sprintf("%.1f KB", float64(ms)/1024),
			fmt.Sprintf("%.1f KB", float64(me)/1024),
			fmt.Sprintf("%.0fx", float64(me)/float64(max64(int64(ms), 1)))})
	}
	r.table("OrderLines\tstreaming allocs\teager allocs\tratio", rows)
}

// ---- E12: memoization ----

func (r *runner) e12() {
	fib := func(n int) string {
		return fmt.Sprintf(`
		  declare function local:fib($n as xs:integer) as xs:integer {
		    if ($n le 1) then $n else local:fib($n - 1) + local:fib($n - 2)
		  };
		  local:fib(%d)`, n)
	}
	var rows [][]string
	for _, n := range []int{20, 24, 26} {
		plain := mustCompile(fib(n), nil)
		memo := mustCompile(fib(n), &xqgo.Options{MemoizeFunctions: true})
		tp := r.timeIt(func() { mustEval(plain, xqgo.NewContext()) })
		tm := r.timeIt(func() { mustEval(memo, xqgo.NewContext()) })
		rows = append(rows, []string{fmt.Sprintf("fib(%d)", n), tp.String(), tm.String(),
			fmt.Sprintf("%.0fx", float64(tp)/float64(max64(int64(tm), 1)))})
	}
	r.table("query	plain	memoized	speedup", rows)
}

// ---- E13: parallel execution ----

func (r *runner) e13() {
	query := `declare variable $d external;
	  (count($d//a//b), count($d//b//c), count($d//c//d), count($d//a//d),
	   count($d//b//d), count($d//c//a), count($d//d//b), count($d//d//a))`
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 80000, Seed: 2}))
	seq := mustCompile(query, nil)
	par := mustCompile(query, &xqgo.Options{Parallel: true})
	ctx := func() *xqgo.Context { return xqgo.NewContext().Bind("d", doc) }
	a := mustEval(seq, ctx())
	b := mustEval(par, ctx())
	if len(a) != len(b) {
		panic("parallel result mismatch")
	}
	ts := r.timeIt(func() { mustEval(seq, ctx()) })
	tp := r.timeIt(func() { mustEval(par, ctx()) })
	r.table("branches	sequential	parallel	speedup	GOMAXPROCS", [][]string{{
		"8", ts.String(), tp.String(),
		fmt.Sprintf("%.1fx", float64(ts)/float64(max64(int64(tp), 1))),
		fmt.Sprint(runtime.GOMAXPROCS(0)),
	}})
}

func allocBytes(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) { c.n += len(p); return len(p), nil }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func localName(s string) xdm.QName { return xdm.LocalName(s) }
