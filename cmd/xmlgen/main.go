// Command xmlgen emits the synthetic datasets used by the experiments.
//
// Usage:
//
//	xmlgen -kind bib -n 1000 > bib.xml
//	xmlgen -kind orders -n 100000 -sellers 50 > orders.xml
//	xmlgen -kind tp -n 200 > wlc.xml
//	xmlgen -kind deep -n 50000 > deep.xml
//	xmlgen -kind repetitive -n 10000 > rep.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xqgo/internal/store"
	"xqgo/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "bib", "dataset: bib | orders | tp | deep | repetitive")
		n       = flag.Int("n", 1000, "size parameter (books / lines / partners / nodes / records)")
		sellers = flag.Int("sellers", 10, "distinct SellersID values (orders)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var doc *store.Document
	switch *kind {
	case "bib":
		doc = workload.Bib(workload.BibConfig{Books: *n, Seed: *seed})
	case "orders":
		doc = workload.Orders(workload.OrdersConfig{Lines: *n, Sellers: *sellers, Seed: *seed})
	case "tp":
		doc = workload.TradingPartners(workload.TPConfig{Partners: *n, Seed: *seed})
	case "deep":
		doc = workload.Deep(workload.DeepConfig{Nodes: *n, Seed: *seed})
	case "repetitive":
		doc = workload.Repetitive(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := workload.WriteXML(os.Stdout, doc); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	fmt.Println()
}
