// Command xq runs an XQuery against XML documents.
//
// Usage:
//
//	xq [flags] <query | -f query.xq>
//
//	xq -doc bib.xml 'for $b in /bib/book return $b/title'
//	xq -var wlc=config.xml -f transform.xq
//	xq -engine eager -no-opt 'count(//item)'   # baseline engine
//	xq -explain -doc bib.xml -f q1.xq          # EXPLAIN ANALYZE report
//
// The document given with -doc becomes the context item; -var name=file
// binds external variables to parsed documents; -var name:=value binds
// strings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xqgo"
)

func main() {
	var (
		docPath   = flag.String("doc", "", "XML document bound as the context item")
		queryFile = flag.String("f", "", "read the query from a file")
		engine    = flag.String("engine", "streaming", "engine: streaming | eager")
		noOpt     = flag.Bool("no-opt", false, "disable the rewriting optimizer")
		disable   = flag.String("disable-rules", "", "comma-separated optimizer rules to disable")
		plan      = flag.Bool("plan", false, "print the optimized expression tree and exit")
		explain   = flag.Bool("explain", false, "run the query, then print the plan, optimizer rewrites, per-operator execution stats and engine counters (subsumes -plan and -time)")
		timing    = flag.Bool("time", false, "print compile/evaluate timings to stderr")
		stream    = flag.Bool("stream", true, "serialize the result incrementally")
	)
	var vars multiFlag
	flag.Var(&vars, "var", "bind external variable: name=docfile or name:=stringvalue (repeatable)")
	flag.Parse()

	src := ""
	switch {
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	case flag.NArg() == 1:
		src = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: xq [flags] <query | -f query.xq>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := &xqgo.Options{NoOptimize: *noOpt}
	switch *engine {
	case "streaming":
	case "eager":
		opts.Engine = xqgo.Eager
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if *disable != "" {
		opts.DisableRules = strings.Split(*disable, ",")
	}

	t0 := time.Now()
	q, err := xqgo.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	compileTime := time.Since(t0)
	if *plan {
		fmt.Println(q.Plan())
		return
	}

	ctx := xqgo.NewContext().AllowFilesystem()
	var prof *xqgo.Profile
	if *explain {
		prof = q.NewProfile()
		ctx.WithProfile(prof)
	}
	if *docPath != "" {
		f, err := os.Open(*docPath)
		if err != nil {
			fatal(err)
		}
		doc, err := xqgo.Parse(f, *docPath)
		f.Close()
		if err != nil {
			fatal(err)
		}
		ctx.WithContextNode(doc).RegisterDocument(*docPath, doc)
	}
	for _, v := range vars {
		name, val, isString, err := splitVar(v)
		if err != nil {
			fatal(err)
		}
		if isString {
			ctx.Bind(name, val)
			continue
		}
		f, err := os.Open(val)
		if err != nil {
			fatal(err)
		}
		doc, err := xqgo.Parse(f, val)
		f.Close()
		if err != nil {
			fatal(err)
		}
		ctx.Bind(name, doc)
	}

	t1 := time.Now()
	if *stream {
		err = q.Execute(ctx, os.Stdout)
	} else {
		var out string
		out, err = q.EvalString(ctx)
		if err == nil {
			_, err = os.Stdout.WriteString(out)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stdout)
		fatal(err)
	}
	fmt.Println()
	execTime := time.Since(t1)
	if *explain {
		fmt.Println()
		printExplain(os.Stdout, q, prof, compileTime, execTime)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "compile %v  evaluate %v\n", compileTime, execTime)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func splitVar(s string) (name, val string, isString bool, err error) {
	if i := strings.Index(s, ":="); i >= 0 {
		return s[:i], s[i+2:], true, nil
	}
	if i := strings.IndexByte(s, '='); i >= 0 {
		return s[:i], s[i+1:], false, nil
	}
	return "", "", false, fmt.Errorf("bad -var %q: want name=docfile or name:=value", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
