package main

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"xqgo"
)

// printExplain renders the EXPLAIN ANALYZE report: the optimized plan, the
// optimizer rewrite trace, the per-operator execution statistics collected
// by the profile, the engine-wide counters, and the phase timings.
func printExplain(w io.Writer, q *xqgo.Query, prof *xqgo.Profile, compileTime, execTime time.Duration) {
	rep := prof.Report()

	fmt.Fprintln(w, "-- plan --")
	fmt.Fprintln(w, q.Plan())

	fmt.Fprintln(w, "\n-- rewrites --")
	fires := q.RuleFires()
	if len(fires) == 0 {
		fmt.Fprintln(w, "(no rules fired)")
	} else {
		rules := make([]string, 0, len(fires))
		for r := range fires {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		for _, r := range rules {
			fmt.Fprintf(w, "%s x%d\n", r, fires[r])
		}
		const maxEvents = 20
		for i, ev := range q.RewriteTrace() {
			if i == maxEvents {
				fmt.Fprintf(w, "  ... (%d more)\n", len(q.RewriteTrace())-maxEvents)
				break
			}
			fmt.Fprintf(w, "  [%s] %s => %s\n", ev.Rule, ev.Before, ev.After)
		}
	}

	fmt.Fprintln(w, "\n-- operators --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\top\tsource\tstarts\titems\ttime")
	for _, op := range rep.Operators {
		detail := op.Kind
		if op.Detail != "" {
			detail += "  " + op.Detail
		}
		fmt.Fprintf(tw, "%d\t%s\t%d:%d\t%d\t%d\t%v\n",
			op.ID, detail, op.Line, op.Col, op.Starts, op.Items,
			time.Duration(op.Nanos).Round(time.Microsecond))
	}
	tw.Flush()
	if len(rep.Operators) == 0 {
		fmt.Fprintln(w, "(no operators ran)")
	}
	fmt.Fprintln(w, "(times are inclusive of nested operators)")

	fmt.Fprintln(w, "\n-- engine counters --")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	c := rep.Counters
	fmt.Fprintf(tw, "xml-tokens\t%d\n", c.XMLTokens)
	fmt.Fprintf(tw, "nodes-materialized\t%d\n", c.NodesMaterialized)
	fmt.Fprintf(tw, "memo-hits\t%d\n", c.MemoHits)
	fmt.Fprintf(tw, "memo-misses\t%d\n", c.MemoMisses)
	fmt.Fprintf(tw, "index-hits\t%d\n", c.IndexHits)
	fmt.Fprintf(tw, "index-builds\t%d\n", c.IndexBuilds)
	fmt.Fprintf(tw, "struct-joins\t%d\n", c.StructJoins)
	fmt.Fprintf(tw, "interrupt-polls\t%d\n", c.InterruptPolls)
	tw.Flush()

	fmt.Fprintln(w, "\n-- timings --")
	fmt.Fprintf(w, "compile %v  execute %v\n",
		compileTime.Round(time.Microsecond), execTime.Round(time.Microsecond))
}
