package xqgo_test

// Chaos differential: the paper query suite runs with deterministic faults
// fired at each of the engine's named injection points, asserting that every
// failure surfaces as a structured error on the calling goroutine — never a
// process crash, a hang, or a leaked goroutine — and that sibling work keeps
// flowing.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xqgo"
	"xqgo/internal/faultinject"
	"xqgo/internal/leakcheck"
	"xqgo/internal/workload"
)

// chaosQueries is the streamed slice of the paper suite: each runs over the
// orders feed through demand-driven ingestion, so parser- and store-level
// faults fire mid-query.
var chaosQueries = []string{
	`count(/Order/OrderLine)`,
	`/Order/OrderLine[SellersID = "1"]/Item/ID`,
	paperQuery,
	`sum(for $l in /Order/OrderLine return count($l/Item))`,
}

func TestChaosDifferentialStreamedIngestion(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	doc := ordersXML(300)
	gov := xqgo.NewMemoryGovernor(0)

	faults := []struct {
		point faultinject.Point
		fault faultinject.Fault
	}{
		// Transport failure partway into the feed.
		{faultinject.ParserRead, faultinject.Fault{After: 2}},
		// Producer dies mid-token: the feed truncates to a clean EOF.
		{faultinject.FeedTruncate, faultinject.Fault{After: 2}},
		// Store-level parse abort after a token committed.
		{faultinject.StoreAbort, faultinject.Fault{After: 8}},
	}
	for _, f := range faults {
		for _, src := range chaosQueries {
			t.Run(string(f.point)+"/"+src[:min(20, len(src))], func(t *testing.T) {
				q := xqgo.MustCompile(src, nil)
				budget := gov.Governed(0)
				faultinject.Enable(f.point, f.fault)
				defer faultinject.Reset()

				ctx := xqgo.NewContext().
					WithStreamingInput(strings.NewReader(doc), "mem:feed").
					WithBudget(budget)
				_, err := q.EvalString(ctx)
				if err == nil {
					t.Fatalf("fault at %s did not surface", f.point)
				}
				// No panic escaped (we are still running) and the budget's
				// books balance: releasing returns the governor to zero.
				budget.ReleaseAll()
				if got := gov.InUse(); got != 0 {
					t.Fatalf("governor holds %d bytes after release", got)
				}

				// The same plan immediately works again — no poisoned
				// shared state.
				faultinject.Reset()
				want, werr := q.EvalString(xqgo.NewContext().
					WithStreamingInput(strings.NewReader(doc), "mem:feed"))
				if werr != nil {
					t.Fatalf("post-fault rerun: %v", werr)
				}
				if want == "" {
					t.Fatal("post-fault rerun produced no output")
				}
			})
		}
	}
}

// An injected read error must carry through to the caller identifiably, so
// operators can tell transport failures from query bugs.
func TestChaosParserReadErrorIsIdentifiable(t *testing.T) {
	defer faultinject.Reset()
	doc := ordersXML(100)
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)
	faultinject.Enable(faultinject.ParserRead, faultinject.Fault{After: 1})
	_, err := q.EvalString(xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed"))
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) || ie.Point != faultinject.ParserRead {
		t.Fatalf("error %v, want injected %s in the chain", err, faultinject.ParserRead)
	}
}

// A panic inside a morsel worker goroutine must surface as an error on the
// pulling goroutine, and the plan must stay healthy for the next execution.
func TestChaosMorselWorkerPanic(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 60000, Seed: 2}))
	q := xqgo.MustCompile(`count(//a)`, nil)
	want, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.MorselPanic, faultinject.Fault{})
	ctx := xqgo.NewContext().WithContextNode(doc).
		WithWorkers(8).WithWorkerLimiter(grantAll{})
	_, err = q.EvalString(ctx)
	if hits := faultinject.Hits(faultinject.MorselPanic); hits == 0 {
		t.Fatal("no morsel worker ran — parallel round never activated")
	}
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) || ie.Point != faultinject.MorselPanic {
		t.Fatalf("worker panic surfaced as %v, want injected %s", err, faultinject.MorselPanic)
	}

	faultinject.Reset()
	ctx2 := xqgo.NewContext().WithContextNode(doc).
		WithWorkers(8).WithWorkerLimiter(grantAll{})
	got, err := q.EvalString(ctx2)
	if err != nil || got != want {
		t.Fatalf("post-panic rerun = %q, %v; want %q, nil", got, err, want)
	}
}

// A panic during a single-flight document load must release every waiter
// with the error — a stranded waiter here deadlocks all future loads of the
// URI.
func TestChaosDocLoadPanicReleasesWaiters(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte(`<r><v>7</v></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	q := xqgo.MustCompile(`string(document("`+path+`")/r/v)`, nil)

	faultinject.Enable(faultinject.DocLoadPanic, faultinject.Fault{Count: 1})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = q.EvalString(xqgo.NewContext().AllowFilesystem())
		}(i)
	}
	wg.Wait() // a stranded waiter would hang the test here
	var failures int
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no query observed the injected load panic")
	}

	// Registry is not poisoned: the next load succeeds (fault exhausted).
	got, err := q.EvalString(xqgo.NewContext().AllowFilesystem())
	if err != nil || got != "7" {
		t.Fatalf("post-panic load = %q, %v; want 7, nil", got, err)
	}
}

// A panic while evaluating one subscription's window must error that
// subscription only: the feed keeps flowing and siblings deliver everything.
func TestChaosWindowPanicIsolatesSiblings(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	doc := ordersXML(120)
	qa := xqgo.MustCompile(`/Order/OrderLine[SellersID = "1"]`, nil)
	qb := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)

	faultinject.Enable(faultinject.WindowPanic, faultinject.Fault{Count: 1})
	sub := xqgo.NewSubscriber()
	var aN, bN int
	sa := sub.Subscribe(qa, func([]byte) error { aN++; return nil })
	sb := sub.Subscribe(qb, func([]byte) error { bN++; return nil })
	if err := sub.Run(context.Background(), strings.NewReader(doc), "mem:feed"); err != nil {
		t.Fatalf("feed must survive a window panic, got %v", err)
	}

	// Exactly one subscription took the injected panic (whichever window
	// evaluated first); the other ran to completion.
	aErr, bErr := sa.Err(), sb.Err()
	if (aErr == nil) == (bErr == nil) {
		t.Fatalf("want exactly one errored subscription, got a=%v b=%v", aErr, bErr)
	}
	failed := aErr
	if failed == nil {
		failed = bErr
	}
	var ie *faultinject.InjectedError
	if !errors.As(failed, &ie) {
		t.Fatalf("subscription error %v, want injected error", failed)
	}
	if bErr == nil && bN != 120 {
		t.Fatalf("healthy sibling delivered %d/120", bN)
	}
	if aErr == nil && aN == 0 {
		t.Fatal("healthy sibling delivered nothing")
	}
}

// A panic inside one dispatcher tap (subscription token handler) is
// contained by the dispatcher: the feed and sibling taps continue.
func TestChaosSubscriberFeedSurvivesTapError(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	doc := ordersXML(60)
	qa := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)
	qb := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)

	sub := xqgo.NewSubscriber()
	bad := sub.Subscribe(qa, func([]byte) error { panic("delivery callback exploded") })
	var n int
	good := sub.Subscribe(qb, func([]byte) error { n++; return nil })
	if err := sub.Run(context.Background(), strings.NewReader(doc), "mem:feed"); err != nil {
		t.Fatalf("feed died with a panicking delivery callback: %v", err)
	}
	if bad.Err() == nil {
		t.Fatal("panicking subscription recorded no error")
	}
	if good.Err() != nil || n != 60 {
		t.Fatalf("sibling: err=%v delivered=%d, want nil/60", good.Err(), n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
