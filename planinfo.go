package xqgo

import (
	"xqgo/internal/expr"
	"xqgo/internal/runtime"
)

// Structured plan introspection: the compiled operator tree with the same
// stable operator ids that profile rows (OpProfile.ID) and trace spans
// carry, the join-strategy policy per path branch, and the static
// cardinality estimates the cost model starts from. The old string-only
// Plan() remains as a deprecated wrapper returning PlanInfo().Text.

// PlanOperator is one tagged operator of the compiled plan.
type PlanOperator struct {
	// ID is the stable operator id, matching profile rows and trace spans.
	ID int `json:"id"`
	// Kind is the operator kind ("path", "flwor", "filter", …).
	Kind string `json:"kind"`
	// Detail is a compact rendering of the operator's source expression.
	Detail string `json:"detail,omitempty"`
	// Line/Col locate the operator in the query source.
	Line int `json:"line"`
	Col  int `json:"col"`
	// EstItems is the static per-instantiation cardinality estimate.
	EstItems int64 `json:"estItems"`
	// Strategy is the join-strategy policy of a path operator: "auto" for
	// cost-based selection, a concrete strategy when forced, "navigation"
	// for paths that are not join-eligible. Empty for non-path operators.
	// The strategy actually chosen at run time appears on the execution's
	// profile rows (OpProfile.Strategy).
	Strategy string `json:"strategy,omitempty"`
	// Children are the tagged operators of this operator's sub-expressions.
	Children []*PlanOperator `json:"children,omitempty"`
}

// PlanInfo is the structured form of a compiled plan.
type PlanInfo struct {
	// Text is the rendered optimized expression tree (what the deprecated
	// Plan() returns).
	Text string `json:"text"`
	// Strategy is the plan-level join-strategy policy ("auto" unless the
	// compile options forced one).
	Strategy string `json:"strategy"`
	// Operators is the tagged operator tree: global-variable initializers,
	// then function bodies, then the query body.
	Operators []*PlanOperator `json:"operators,omitempty"`
}

// PlanInfo returns the structured plan of the compiled query.
func (q *Query) PlanInfo() PlanInfo {
	return PlanInfo{
		Text:      expr.String(q.plan.Body),
		Strategy:  q.ro.Strategy.String(),
		Operators: planOperators(q.prepared.PlanTree()),
	}
}

func planOperators(nodes []*runtime.PlanNode) []*PlanOperator {
	if len(nodes) == 0 {
		return nil
	}
	out := make([]*PlanOperator, len(nodes))
	for i, n := range nodes {
		out[i] = &PlanOperator{
			ID:       n.ID,
			Kind:     n.Kind,
			Detail:   n.Detail,
			Line:     n.Line,
			Col:      n.Col,
			EstItems: n.EstItems,
			Strategy: n.Strategy,
			Children: planOperators(n.Children),
		}
	}
	return out
}
