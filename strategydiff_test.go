package xqgo_test

// Differential test for the join-strategy redesign: every query of the
// paper suite plus join-shaped chains over a 60k-node deep document is
// evaluated under all three forced strategies (navigation, binary
// stack-tree join, holistic twig join) and under cost-based Auto,
// asserting identical results and identical error identity. The deep-doc
// queries also run with 8 morsel workers; CI runs this under -race at
// GOMAXPROCS=8, so the per-chunk path-stack runs and the shared plan-choice
// cache get real scheduler pressure.

import (
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

var strategyOptSets = []struct {
	name string
	opts xqgo.Options
}{
	{"navigation", xqgo.Options{Strategy: xqgo.ForceNavigation}},
	{"binary-join", xqgo.Options{Strategy: xqgo.ForceBinaryJoin}},
	{"twig-join", xqgo.Options{Strategy: xqgo.ForceTwig}},
	{"auto", xqgo.Options{Strategy: xqgo.StrategyAuto}},
}

// TestStrategyDifferential: the paper suite (including its error-path
// queries) must be strategy-invariant. Navigation is the reference.
func TestStrategyDifferential(t *testing.T) {
	for _, q := range batchDiffQueries {
		var wantOut string
		var wantErr string
		for i, os := range strategyOptSets {
			compiled, err := xqgo.Compile(q, &os.opts)
			if err != nil {
				t.Fatalf("compile (%s) %q: %v", os.name, q, err)
			}
			ctx, _ := paperCtx(t)
			out, evalErr := compiled.EvalString(ctx)
			if i == 0 {
				wantOut, wantErr = out, errCode(evalErr)
				continue
			}
			if got := errCode(evalErr); got != wantErr {
				t.Errorf("%q: %s error %q != navigation error %q", q, os.name, got, wantErr)
				continue
			}
			if evalErr == nil && out != wantOut {
				t.Errorf("%q: %s result mismatch:\n  navigation: %.120q\n  %s: %.120q",
					q, os.name, wantOut, os.name, out)
			}
		}
	}
}

// TestStrategyDifferentialDeep: join-shaped chains over a document deep
// enough that all three strategies take genuinely different code paths,
// sequentially and with 8 morsel workers per execution.
func TestStrategyDifferentialDeep(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 60000, Seed: 10}))
	queries := []string{
		`count(//a//b)`,
		`count(//a//b//c)`,
		`count(//a//b/c)`,
		`count(/root//a//b)`,
		`count(//a//a)`, // self-chain: strict containment must hold everywhere
		`string-join(for $n in //a//b//c return local-name($n), "")`,
		`(//a//b)[17]/local-name(.)`,
		`count(//a//b[1 idiv 0])`, // error identity through every join path
	}
	for _, q := range queries {
		var wantOut string
		var wantErr string
		for i, os := range strategyOptSets {
			compiled, err := xqgo.Compile(q, &os.opts)
			if err != nil {
				t.Fatalf("compile (%s) %q: %v", os.name, q, err)
			}
			for _, workers := range []int{0, 8} {
				ctx := xqgo.NewContext().WithContextNode(doc)
				if workers > 0 {
					ctx.WithWorkers(workers)
				}
				out, evalErr := compiled.EvalString(ctx)
				if i == 0 && workers == 0 {
					wantOut, wantErr = out, errCode(evalErr)
					continue
				}
				if got := errCode(evalErr); got != wantErr {
					t.Errorf("%q (%s, workers=%d): error %q != reference %q",
						q, os.name, workers, got, wantErr)
					continue
				}
				if evalErr == nil && out != wantOut {
					t.Errorf("%q (%s, workers=%d): result mismatch:\n  reference: %.120q\n  got:       %.120q",
						q, os.name, workers, wantOut, out)
				}
			}
		}
	}
}
