package xqgo_test

// testing.B benchmarks, one family per experiment of EXPERIMENTS.md
// (E1..E12). cmd/xqbench prints the same comparisons as formatted tables;
// these versions integrate with `go test -bench` and -benchmem.

import (
	"io"
	"testing"

	"xqgo"
	"xqgo/internal/structjoin"
	"xqgo/internal/tokens"
	"xqgo/internal/workload"
	"xqgo/internal/xdm"
)

func mustEvalB(b *testing.B, q *xqgo.Query, ctx *xqgo.Context) xqgo.Sequence {
	out, err := q.Eval(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func ordersDoc(lines, sellers int) *xqgo.Document {
	return xqgo.FromStore(workload.Orders(workload.OrdersConfig{
		Lines: lines, Sellers: sellers, Seed: 1,
	}))
}

// ---- E1: streaming vs eager on the Q1 transformation ----

const q1 = `for $line in /Order/OrderLine
            where $line/SellersID eq "1"
            return <lineItem>{string($line/Item/ID)}</lineItem>`

func BenchmarkE1StreamingVsEager(b *testing.B) {
	// The paper's scenario is a transformation whose output is serialized
	// (a message processor), so both engines drive Execute; the streaming
	// engine's node-id-free construction then engages (E7).
	run := func(b *testing.B, q *xqgo.Query, doc *xqgo.Document) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := q.Execute(xqgo.NewContext().WithContextNode(doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, lines := range []int{1000, 10000} {
		doc := ordersDoc(lines, 50)
		stream := xqgo.MustCompile(q1, nil)
		eager := xqgo.MustCompile(q1, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
		b.Run("streaming/"+itoa(lines), func(b *testing.B) { run(b, stream, doc) })
		b.Run("eager/"+itoa(lines), func(b *testing.B) { run(b, eager, doc) })
	}
}

// ---- E2: time to first answer ----

func BenchmarkE2TimeToFirst(b *testing.B) {
	doc := ordersDoc(100000, 50)
	q := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)
	b.Run("first-item", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it, err := q.Iterator(xqgo.NewContext().WithContextNode(doc))
			if err != nil {
				b.Fatal(err)
			}
			if _, ok, err := it.Next(); err != nil || !ok {
				b.Fatal("no first item")
			}
		}
	})
	b.Run("full-result", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEvalB(b, q, xqgo.NewContext().WithContextNode(doc))
		}
	})
}

// ---- E3: lazy early exit ----

func BenchmarkE3LazyEarlyExit(b *testing.B) {
	doc := ordersDoc(100000, 3)
	for _, c := range []struct{ name, q string }{
		{"some-satisfies", `some $x in /Order/OrderLine/SellersID satisfies $x eq "1"`},
		{"positional", `(/Order/OrderLine)[3]/Item/ID/text()`},
	} {
		lazy := xqgo.MustCompile(c.q, nil)
		eager := xqgo.MustCompile(c.q, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
		b.Run(c.name+"/lazy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, lazy, xqgo.NewContext().WithContextNode(doc))
			}
		})
		b.Run(c.name+"/eager", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, eager, xqgo.NewContext().WithContextNode(doc))
			}
		})
	}
}

// ---- E4: skip() for positional access over token streams ----

func BenchmarkE4Skip(b *testing.B) {
	doc := workload.Orders(workload.OrdersConfig{Lines: 50000, Sellers: 10, Seed: 1})
	find := func(b *testing.B, useSkip bool) {
		for i := 0; i < b.N; i++ {
			sc := tokens.NewDocScanner(doc, 0)
			if err := sc.Open(); err != nil {
				b.Fatal(err)
			}
			seen := 0
			for {
				t, ok, err := sc.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				if t.Kind == tokens.KindStartElement && t.Name.Local == "OrderLine" {
					seen++
					if seen == 100 {
						break
					}
					if useSkip {
						if err := sc.Skip(); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	}
	b.Run("with-skip", func(b *testing.B) { find(b, true) })
	b.Run("next-only", func(b *testing.B) { find(b, false) })
}

// ---- E5: structural join algorithms ----

func BenchmarkE5StructuralJoin(b *testing.B) {
	doc := workload.Deep(workload.DeepConfig{Nodes: 100000, Seed: 2})
	idx := structjoin.BuildIndex(doc)
	a := idx.Elements(xdm.LocalName("a"))
	d := idx.Elements(xdm.LocalName("b"))
	b.Run("stack-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			structjoin.StackTreeDesc(a, d, false)
		}
	})
	b.Run("tree-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			structjoin.TreeMergeDesc(a, d, false)
		}
	})
	b.Run("navigation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			structjoin.NavigationDesc(doc, xdm.LocalName("a"), xdm.LocalName("b"), false)
		}
	})
	engine := xqgo.MustCompile(`count(//a//b)`, nil)
	wrapped := xqgo.FromStore(doc)
	b.Run("engine-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEvalB(b, engine, xqgo.NewContext().WithContextNode(wrapped))
		}
	})
	indexed := xqgo.MustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})
	idxCtx := xqgo.NewContext().WithContextNode(wrapped)
	mustEvalB(b, indexed, idxCtx) // warm the per-document index cache
	b.Run("engine-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEvalB(b, indexed, idxCtx)
		}
	})
}

// ---- E6: holistic twig join vs binary-join plan ----

func BenchmarkE6TwigJoin(b *testing.B) {
	doc := workload.Deep(workload.DeepConfig{Nodes: 100000, Seed: 2})
	idx := structjoin.BuildIndex(doc)
	for _, pat := range []string{"a//b//c", "a[b//c]//d"} {
		twig, err := structjoin.ParseTwig(pat)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("twigstack/"+pat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				structjoin.TwigStack(twig, idx)
			}
		})
		b.Run("binary-plan/"+pat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				structjoin.BinaryPlanStats(twig, idx)
			}
		})
	}
}

// ---- E7: on-demand node identifiers ----

func BenchmarkE7NodeIDs(b *testing.B) {
	doc := ordersDoc(10000, 10)
	query := `for $line in /Order/OrderLine
	          return <lineItem seller="{$line/SellersID}">{string($line/Item/ID)}</lineItem>`
	noIDs := xqgo.MustCompile(query, nil)
	withIDs := xqgo.MustCompile(query, &xqgo.Options{DisableRules: []string{xqgo.RuleNoNodeIDs}})
	b.Run("streamed-no-ids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := noIDs.Execute(xqgo.NewContext().WithContextNode(doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized-ids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := withIDs.Execute(xqgo.NewContext().WithContextNode(doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E8: doc-order sort/dedup elision ----

func BenchmarkE8SortDedupElision(b *testing.B) {
	doc := ordersDoc(100000, 10)
	for _, c := range []struct{ name, q string }{
		{"child-path", `/Order/OrderLine/Item/ID`},
		{"descendant-path", `//Item/ID`},
	} {
		on := xqgo.MustCompile(c.q, nil)
		off := xqgo.MustCompile(c.q, &xqgo.Options{DisableRules: []string{xqgo.RulePathOrder}})
		b.Run(c.name+"/elided", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, on, xqgo.NewContext().WithContextNode(doc))
			}
		})
		b.Run(c.name+"/sorted", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, off, xqgo.NewContext().WithContextNode(doc))
			}
		})
	}
}

// ---- E9: dictionary pooling in the binary token stream ----

func BenchmarkE9Pooling(b *testing.B) {
	doc := workload.Repetitive(20000, 1)
	encode := func(b *testing.B, opts tokens.EncodeOptions) {
		for i := 0; i < b.N; i++ {
			enc := tokens.NewEncoder(io.Discard, opts)
			if err := enc.EncodeStream(tokens.NewDocScanner(doc, 0)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unpooled", func(b *testing.B) { encode(b, tokens.EncodeOptions{}) })
	b.Run("pooled", func(b *testing.B) {
		encode(b, tokens.EncodeOptions{PoolNames: true, PoolValues: true})
	})
}

// ---- E10: rewrite-rule ablation on the trading-partner query ----

func BenchmarkE10RewriteAblation(b *testing.B) {
	doc := xqgo.FromStore(workload.TradingPartners(workload.TPConfig{Partners: 150, Seed: 42}))
	run := func(b *testing.B, q *xqgo.Query) {
		for i := 0; i < b.N; i++ {
			if err := q.Execute(xqgo.NewContext().Bind("wlc", doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("all-rules", func(b *testing.B) {
		run(b, xqgo.MustCompile(workload.TradingPartnerQuery, nil))
	})
	for _, rule := range []string{xqgo.RulePathOrder, xqgo.RuleNoNodeIDs, xqgo.RuleLetFold} {
		rule := rule
		b.Run("without-"+rule, func(b *testing.B) {
			run(b, xqgo.MustCompile(workload.TradingPartnerQuery,
				&xqgo.Options{DisableRules: []string{rule}}))
		})
	}
	b.Run("no-optimizer", func(b *testing.B) {
		run(b, xqgo.MustCompile(workload.TradingPartnerQuery, &xqgo.Options{NoOptimize: true}))
	})
}

// ---- E11: memory footprint (streaming flat, eager linear; see B/op) ----

func BenchmarkE11Memory(b *testing.B) {
	query := `some $x in /Order/OrderLine satisfies $x/SellersID eq "1"`
	stream := xqgo.MustCompile(query, nil)
	eager := xqgo.MustCompile(query, &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	for _, lines := range []int{10000, 100000} {
		doc := ordersDoc(lines, 50)
		b.Run("streaming/"+itoa(lines), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEvalB(b, stream, xqgo.NewContext().WithContextNode(doc))
			}
		})
		b.Run("eager/"+itoa(lines), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEvalB(b, eager, xqgo.NewContext().WithContextNode(doc))
			}
		})
	}
}

// ---- E12: intra-query function memoization ----

func BenchmarkE12Memoization(b *testing.B) {
	const fib = `
	  declare function local:fib($n as xs:integer) as xs:integer {
	    if ($n le 1) then $n else local:fib($n - 1) + local:fib($n - 2)
	  };
	  local:fib(20)`
	plain := xqgo.MustCompile(fib, nil)
	memo := xqgo.MustCompile(fib, &xqgo.Options{MemoizeFunctions: true})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEvalB(b, plain, xqgo.NewContext())
		}
	})
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEvalB(b, memo, xqgo.NewContext())
		}
	})
}
