package xqgo_test

import (
	"strings"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

// TestTradingPartnerQuery runs the scaled-down customer transformation over
// generated trading-partner data on both engines and checks the outputs
// match.
func TestTradingPartnerQuery(t *testing.T) {
	doc := xqgo.FromStore(workload.TradingPartners(workload.TPConfig{Partners: 8, Seed: 42}))

	stream, err := xqgo.Compile(workload.TradingPartnerQuery, nil)
	if err != nil {
		t.Fatalf("compile (streaming): %v", err)
	}
	eager, err := xqgo.Compile(workload.TradingPartnerQuery,
		&xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	if err != nil {
		t.Fatalf("compile (eager): %v", err)
	}

	ctx := func() *xqgo.Context { return xqgo.NewContext().Bind("wlc", doc) }
	got1, err := stream.EvalString(ctx())
	if err != nil {
		t.Fatalf("streaming eval: %v", err)
	}
	got2, err := eager.EvalString(ctx())
	if err != nil {
		t.Fatalf("eager eval: %v", err)
	}
	if got1 != got2 {
		t.Errorf("engines disagree:\nstreaming: %.400s\neager:     %.400s", got1, got2)
	}
	if !strings.Contains(got1, `name="partner-0000"`) {
		t.Errorf("missing partner-0000 in output: %.400s", got1)
	}
	if !strings.Contains(got1, "<transport") {
		t.Errorf("missing transport binding in output")
	}

	// The streamed Execute path must agree too (modulo it not re-sorting,
	// which this query doesn't rely on).
	var sb strings.Builder
	if err := stream.Execute(ctx(), &sb); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if sb.String() != got1 {
		a, b := sb.String(), got1
		t.Errorf("Execute output differs from Eval output:\nexec: %.300s\neval: %.300s", a, b)
	}
}

func TestWorkloadGeneratorsDeterministic(t *testing.T) {
	a := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 20, Seed: 7}))
	b := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 20, Seed: 7}))
	if a != b {
		t.Error("Bib generator is not deterministic for equal seeds")
	}
	c := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 20, Seed: 8}))
	if a == c {
		t.Error("Bib generator ignores the seed")
	}

	orders := workload.Orders(workload.OrdersConfig{Lines: 50, Sellers: 5, Seed: 1})
	if n := orders.NumNodes(); n < 300 {
		t.Errorf("orders document too small: %d nodes", n)
	}
	deep := workload.Deep(workload.DeepConfig{Nodes: 500, Seed: 3})
	if n := deep.NumNodes(); n < 500 {
		t.Errorf("deep document too small: %d nodes", n)
	}
}

func TestOrdersQ1(t *testing.T) {
	doc := xqgo.FromStore(workload.Orders(workload.OrdersConfig{Lines: 200, Sellers: 10, Seed: 9}))
	q := xqgo.MustCompile(`
	  for $line in /Order/OrderLine
	  where $line/SellersID eq "1"
	  return <lineItem>{string($line/Item/ID)}</lineItem>`, nil)
	out, err := q.Eval(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 60 {
		t.Errorf("unexpected selectivity: %d matching lines of 200", len(out))
	}
	count := xqgo.MustCompile(`count(/Order/OrderLine[SellersID eq "1"])`, nil)
	cnt, err := count.EvalString(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cnt != itoa(len(out)) {
		t.Errorf("predicate count %s != FLWOR count %d", cnt, len(out))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
