package xqgo_test

// Context cancellation during streamed ingestion: an execution blocked on
// Body.Read must unblock when its context is canceled, and the abort must
// surface as the cancellation error — not get dressed up as a parse error.

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"xqgo"
	"xqgo/internal/leakcheck"
)

func TestStreamedIngestionCancelUnblocksPendingRead(t *testing.T) {
	leakcheck.Check(t)
	pr, pw := io.Pipe()
	defer pw.Close()
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		c := xqgo.NewContext().WithStreamingInput(pr, "mem:feed")
		_, err := q.EvalContext(ctx, c)
		done <- err
	}()

	// Feed a partial document so the parse genuinely starts, then stall:
	// the execution is now blocked inside a Read on a silent producer.
	if _, err := pw.Write([]byte(`<Order><OrderLine><SellersID>1</SellersID>`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled streamed execution returned %v, want context.Canceled in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("execution still blocked on the streamed input after cancel")
	}
}

func TestStreamedIngestionDeadlineSurfacesAsDeadline(t *testing.T) {
	leakcheck.Check(t)
	pr, pw := io.Pipe()
	defer pw.Close()
	q := xqgo.MustCompile(`count(/r/x)`, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Feed a partial document from aside (a pipe write blocks until the
	// evaluation reads it), then go silent so the deadline expires mid-read.
	go func() { _, _ = pw.Write([]byte(`<r><x/>`)) }()
	c := xqgo.NewContext().WithStreamingInput(pr, "mem:feed")
	_, err := q.EvalContext(ctx, c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired streamed execution returned %v, want context.DeadlineExceeded in the chain", err)
	}
}
