package xqgo

import (
	"io"

	"xqgo/internal/projection"
	"xqgo/internal/runtime"
	"xqgo/internal/streamexec"
	"xqgo/internal/tokens"
	"xqgo/internal/xmlparse"
)

// StreamClass classifies a query's streamability (see Query.Streamability):
// whether the event-driven evaluator can run it directly off the parser's
// token stream, and with what buffering.
type StreamClass = streamexec.Class

const (
	// StreamStoreRequired: the plan needs random access to the document;
	// stream-mode executions fall back to the store engine transparently.
	StreamStoreRequired = streamexec.StoreRequired
	// StreamBoundedBuffer: streams with buffering bounded by one window
	// subtree at a time.
	StreamBoundedBuffer = streamexec.BoundedBuffer
	// StreamFullyStreamable: tokens are forwarded as they arrive with
	// near-zero buffering.
	StreamFullyStreamable = streamexec.FullyStreamable
)

// Streamability reports how the event-driven evaluator classifies this
// query, with the analysis's reason when it is store-required. The streaming
// form is compiled lazily on first use and cached on the Query.
func (q *Query) Streamability() (StreamClass, string) {
	p := q.streamProgram()
	return p.Class(), p.Reason()
}

func (q *Query) streamProgram() *streamexec.Program {
	q.streamOnce.Do(func() { q.sprog = streamexec.Compile(q.plan, q.ro) })
	return q.sprog
}

// WithStreamMode asks Execute/ExecuteContext to evaluate on the event-driven
// streaming evaluator when possible: the query must be streamable (see
// Streamability), the context must carry a streaming input
// (WithStreamingInput) and no explicit context item. Results are emitted as
// soon as each window of the input completes, the document is never
// materialized, and peak buffer bytes are bounded by one window subtree.
// When the conditions do not hold the execution silently uses the regular
// engine (counted as a stream fallback in the profile); results are
// identical either way.
func (c *Context) WithStreamMode(on bool) *Context {
	c.streamMode = on
	return c
}

// tryExecuteStream runs the streaming evaluator when the plan and context
// allow it. handled=false means the caller must run the store path.
func (q *Query) tryExecuteStream(c *Context, w io.Writer) (bool, error) {
	prog := q.streamProgram()
	if !prog.Streamable() || c.streamR == nil || c.dyn.ContextItem != nil {
		c.dyn.Prof.AddStreamFallback()
		return false, nil
	}
	sw := tokens.NewStreamWriter(w)
	r := streamexec.NewWriterRunner(prog, streamexec.Env{
		Vars:      c.dyn.Vars,
		Interrupt: c.dyn.Interrupt,
		Now:       c.dyn.Now,
		Prof:      c.dyn.Prof,
		Trace:     c.dyn.Trace,
		TraceSpan: c.dyn.TraceSpan,
		Budget:    c.dyn.Budget,
	}, sw)
	in := c.streamR
	if c.dyn.Stream != nil {
		// Context-wrapped when bindContext ran, so a canceled execution
		// unblocks a pending feed read here too.
		in = c.dyn.Stream.Reader()
	}
	p := xmlparse.ParseIncremental(in, xmlparse.Options{
		URI:        c.streamURI,
		Projection: projection.New(), // tokenize everything, build nothing
		Stats:      runtime.IngestStats(c.dyn),
		Tap:        r.Token,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			return true, err
		}
		if done {
			break
		}
	}
	if err := r.Finish(); err != nil {
		return true, err
	}
	return true, sw.Close()
}
