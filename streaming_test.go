package xqgo_test

// End-to-end tests of lazy streaming ingestion with static path projection:
// time-to-first-answer over a pipe, projection on/off differentials across
// the paper-query shapes, and the materialization budget on a multi-megabyte
// document.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xqgo"
	"xqgo/internal/workload"
)

// signalWriter closes signal on the first written byte.
type signalWriter struct {
	w      io.Writer
	signal chan struct{}
	once   sync.Once
}

func (s *signalWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		s.once.Do(func() { close(s.signal) })
	}
	return s.w.Write(p)
}

// TestStreamingFirstOutputBeforeEOF is the acceptance test for pipelined
// ingestion: Execute over an io.Pipe must produce output while the producer
// still holds the write end open. The producer only finishes the document
// after observing the first output byte — if the engine needed EOF before
// emitting, the test would time out instead of passing vacuously.
func TestStreamingFirstOutputBeforeEOF(t *testing.T) {
	pr, pw := io.Pipe()
	firstByte := make(chan struct{})
	var firstBeforeEOF atomic.Bool

	const preGate, postGate = 400, 10
	go func() {
		write := func(s string) {
			if _, err := io.WriteString(pw, s); err != nil {
				pw.CloseWithError(err)
			}
		}
		write("<bib>")
		for i := 0; i < preGate; i++ {
			write(fmt.Sprintf("<book><title>Book %d</title><price>9</price></book>", i))
		}
		select {
		case <-firstByte:
			firstBeforeEOF.Store(true)
		case <-time.After(30 * time.Second):
			// Fall through and finish the document so Execute can return and
			// the test can fail with a useful message instead of deadlocking.
		}
		for i := 0; i < postGate; i++ {
			write(fmt.Sprintf("<book><title>Late %d</title><price>9</price></book>", i))
		}
		write("</bib>")
		pw.Close()
	}()

	q := xqgo.MustCompile(`/bib/book/title`, nil)
	ctx := xqgo.NewContext().WithStreamingInput(pr, "stream.xml")
	var out bytes.Buffer
	if err := q.Execute(ctx, &signalWriter{w: &out, signal: firstByte}); err != nil {
		t.Fatal(err)
	}
	if !firstBeforeEOF.Load() {
		t.Fatal("no output was produced before the input reached EOF")
	}
	if got := strings.Count(out.String(), "<title>"); got != preGate+postGate {
		t.Errorf("result has %d titles, want %d", got, preGate+postGate)
	}
	if !strings.Contains(out.String(), "<title>Late 9</title>") {
		t.Error("post-gate content missing from the result")
	}
}

// streamRun executes src over a streamed copy of xml and returns the
// serialized output, the error, and the ingestion counters.
func streamRun(t *testing.T, src, xml string, disableProjection bool) (string, error, xqgo.EngineCounters) {
	t.Helper()
	q, err := xqgo.Compile(src, &xqgo.Options{DisableProjection: disableProjection})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	prof := q.NewCountersProfile()
	ctx := xqgo.NewContext().
		WithStreamingInput(strings.NewReader(xml), "stream.xml").
		WithProfile(prof)
	var out bytes.Buffer
	execErr := q.Execute(ctx, &out)
	return out.String(), execErr, prof.Report().Counters
}

// TestProjectionDifferential runs the paper-query shapes over the same
// streamed document with projection on and off: results and errors must be
// identical, and the selective queries must actually skip nodes.
func TestProjectionDifferential(t *testing.T) {
	xml := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 500, Seed: 11}))

	cases := []struct {
		query      string
		wantSkips  bool // projection must skip at least one node
		mayBeError bool // evaluation error expected (parity still required)
	}{
		{query: `/bib/book/title`, wantSkips: true},
		{query: `//title`, wantSkips: true},
		{query: `count(//author)`, wantSkips: true},
		{query: `for $b in /bib/book where $b/@year = "1994" return $b/title`, wantSkips: true},
		{query: `/bib/book[price > 50]/title`, wantSkips: true},
		{query: `for $b in /bib/book return <r y="{$b/@year}">{$b/title}</r>`, wantSkips: true},
		{query: `/bib/book/author/last`, wantSkips: true},
		{query: `doc("stream.xml")/bib/book/publisher`, wantSkips: true},
		{query: `count(/bib/book[author/last = "Suciu"])`, wantSkips: true},
		{query: `/bib/book/title/..`},              // parent axis: keep-all
		{query: `.`},                               // whole document
		{query: `1 + /bib/book`, mayBeError: true}, // XPTY0004 parity
		{query: `sum(/bib/book/xs:integer(@year))`},
		{query: `xs:integer(/bib/book[1]/title)`, mayBeError: true}, // FORG0001 parity
	}
	for _, c := range cases {
		projOut, projErr, projC := streamRun(t, c.query, xml, false)
		fullOut, fullErr, fullC := streamRun(t, c.query, xml, true)
		if projOut != fullOut {
			t.Errorf("%s: output diverged with projection\n proj %q\n full %q",
				c.query, clip(projOut), clip(fullOut))
		}
		if (projErr == nil) != (fullErr == nil) ||
			(projErr != nil && projErr.Error() != fullErr.Error()) {
			t.Errorf("%s: error diverged with projection\n proj %v\n full %v", c.query, projErr, fullErr)
		}
		if c.mayBeError && fullErr == nil {
			t.Errorf("%s: expected an evaluation error, got none", c.query)
		}
		if c.wantSkips && projC.NodesSkipped == 0 {
			t.Errorf("%s: projection skipped no nodes", c.query)
		}
		if fullC.NodesSkipped != 0 {
			t.Errorf("%s: projection-off run skipped %d nodes", c.query, fullC.NodesSkipped)
		}
	}
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

// TestProjectionMaterializationBudget is the acceptance criterion: on a
// >=10 MB document and a query selecting a small fraction of it, projected
// ingestion must materialize at most 25% of the nodes a full parse does,
// with byte-identical output.
func TestProjectionMaterializationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte parse")
	}
	xml := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 46000, Seed: 3}))
	if len(xml) < 10<<20 {
		t.Fatalf("generated document is %d bytes, want >= 10 MiB", len(xml))
	}
	const query = `/bib/book[@year = "1994"]/title`

	fullOut, fullErr, fullC := streamRun(t, query, xml, true)
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	projOut, projErr, projC := streamRun(t, query, xml, false)
	if projErr != nil {
		t.Fatal(projErr)
	}
	if projOut != fullOut {
		t.Fatal("projected output differs from full-parse output")
	}
	if projOut == "" || !strings.Contains(projOut, "<title>") {
		t.Fatalf("suspicious empty result: %q", clip(projOut))
	}
	if fullC.DocNodesBuilt == 0 || projC.DocNodesBuilt == 0 {
		t.Fatalf("counters missing: full %d proj %d", fullC.DocNodesBuilt, projC.DocNodesBuilt)
	}
	limit := fullC.DocNodesBuilt / 4
	if projC.DocNodesBuilt > limit {
		t.Errorf("projection materialized %d nodes, budget is 25%% of %d (= %d)",
			projC.DocNodesBuilt, fullC.DocNodesBuilt, limit)
	}
	if projC.NodesSkipped == 0 {
		t.Error("projection skipped no nodes")
	}
	if projC.BytesParsedOnDemand < int64(len(xml)) {
		t.Errorf("projected run pulled %d bytes of %d; skipped subtrees still cost tokenization",
			projC.BytesParsedOnDemand, len(xml))
	}
}

// TestStreamingEngineCountersInProfile checks that ingestion counters flow
// into the public profile report (and from there to EXPLAIN and /metrics).
func TestStreamingEngineCountersInProfile(t *testing.T) {
	xml := workload.DocToXML(workload.Bib(workload.BibConfig{Books: 100, Seed: 5}))
	out, err, c := streamRun(t, `/bib/book/title`, xml, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>") {
		t.Fatalf("no titles in %q", clip(out))
	}
	if c.DocNodesBuilt == 0 || c.NodesSkipped == 0 || c.BytesParsedOnDemand != int64(len(xml)) {
		t.Errorf("counters = built %d skipped %d bytes %d (doc is %d bytes)",
			c.DocNodesBuilt, c.NodesSkipped, c.BytesParsedOnDemand, len(xml))
	}
}
