// Message broker: the paper's "XML message brokers" use case — simple path
// predicates over a stream of small transient messages, no indexes, compile
// once / run per message. The broker routes each order message to a
// destination decided by an XQuery predicate and rewrites it with a
// transformation query.
package main

import (
	"fmt"
	"log"
	"strings"

	"xqgo"
	"xqgo/internal/workload"
)

// route pairs a name with a compiled routing predicate.
type route struct {
	name string
	pred *xqgo.Query
}

func main() {
	// Routing table: compiled once, evaluated per message.
	routes := []route{
		{"priority", xqgo.MustCompile(`exists(/Order/OrderLine[Item/Quantity > 15])`, nil)},
		{"bulk", xqgo.MustCompile(`count(/Order/OrderLine) >= 40`, nil)},
		{"default", xqgo.MustCompile(`true()`, nil)},
	}
	// Rewriting transformation applied to routed messages.
	rewrite := xqgo.MustCompile(`
	  <routedOrder id="{/Order/@id}" lines="{count(/Order/OrderLine)}">
	    { for $l in /Order/OrderLine
	      where $l/Item/Quantity > 15
	      return <hot sku="{$l/Item/ID}" qty="{$l/Item/Quantity}"/> }
	  </routedOrder>`, nil)

	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		// Each message is a small transient document.
		msg := xqgo.FromStore(workload.Orders(workload.OrdersConfig{
			Lines: 5 + i%50, Sellers: 10, Seed: int64(i),
		}))
		dest := routeMessage(routes, msg)
		counts[dest]++
		if dest == "priority" && counts[dest] <= 2 {
			var sb strings.Builder
			if err := rewrite.Execute(xqgo.NewContext().WithContextNode(msg), &sb); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("priority message %d -> %.120s...\n", i, sb.String())
		}
	}
	fmt.Println("\nrouted message counts:")
	for _, r := range routes {
		fmt.Printf("  %-8s %d\n", r.name, counts[r.name])
	}
}

func routeMessage(routes []route, msg *xqgo.Document) string {
	for _, r := range routes {
		out, err := r.pred.Eval(xqgo.NewContext().WithContextNode(msg))
		if err != nil {
			log.Fatal(err)
		}
		if len(out) == 1 {
			if b, ok := out[0].(xqgo.Atomic); ok && b.B {
				return r.name
			}
		}
	}
	return "default"
}
