// Trading partner: the paper's "fraction of a real customer" workload — a
// large Web-Services configuration transformation (WebLogic Integration
// trading-partner management): one outer FOR, nested FLWORs per
// certificate kind, a three-way join of delivery channels, document
// exchanges and transports, and conditional attribute construction.
//
// The example also contrasts the two engines on the same query.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"xqgo"
	"xqgo/internal/workload"
)

func main() {
	doc := xqgo.FromStore(workload.TradingPartners(workload.TPConfig{
		Partners: 100, Seed: 42,
	}))
	fmt.Printf("input: trading-partner configuration, %d nodes\n\n", doc.NumNodes())

	streaming, err := xqgo.Compile(workload.TradingPartnerQuery, nil)
	if err != nil {
		log.Fatal(err)
	}
	eager, err := xqgo.Compile(workload.TradingPartnerQuery,
		&xqgo.Options{Engine: xqgo.Eager, NoOptimize: true})
	if err != nil {
		log.Fatal(err)
	}

	ctx := func() *xqgo.Context { return xqgo.NewContext().Bind("wlc", doc) }

	// Print the first transformed partner.
	out, err := streaming.Eval(ctx())
	if err != nil {
		log.Fatal(err)
	}
	first, _ := xqgo.ItemString(out[0])
	fmt.Printf("first of %d transformed partners:\n%s\n\n", len(out), first)

	// Compare engines.
	t0 := time.Now()
	if err := streaming.Execute(ctx(), io.Discard); err != nil {
		log.Fatal(err)
	}
	tStream := time.Since(t0)

	t0 = time.Now()
	if err := eager.Execute(ctx(), io.Discard); err != nil {
		log.Fatal(err)
	}
	tEager := time.Since(t0)

	fmt.Printf("streaming engine: %v\n", tStream)
	fmt.Printf("eager baseline:   %v  (%.1fx slower)\n",
		tEager, float64(tEager)/float64(tStream))
}
