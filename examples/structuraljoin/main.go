// Structural joins: the second pillar of the reproduction — region-labeled
// name indexes and stack-based join algorithms versus navigation, plus the
// engine-integrated join strategies (Options.Strategy).
package main

import (
	"fmt"
	"log"
	"time"

	"xqgo"
	"xqgo/internal/workload"
)

func main() {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 50000, Seed: 2}))
	fmt.Printf("recursive document: %d nodes\n\n", doc.NumNodes())

	// Build the name index once (one scan of the document).
	t0 := time.Now()
	idx := doc.BuildIndex()
	fmt.Printf("index build: %v\n\n", time.Since(t0))

	// The same a//b join with three algorithms.
	for _, alg := range []struct {
		name string
		kind xqgo.JoinAlgorithm
	}{
		{"stack-tree ", xqgo.StackTree},
		{"tree-merge ", xqgo.TreeMerge},
		{"navigation ", xqgo.Navigation},
	} {
		t0 = time.Now()
		nodes := idx.Descendants("a", "b", alg.kind)
		fmt.Printf("a//b via %s %6d nodes in %v\n", alg.name, len(nodes), time.Since(t0))
	}

	// Holistic twig joins bound their intermediate results by construction.
	fmt.Println()
	for _, pat := range []string{"a//b", "a//b//c", "a[b]//c", "a[b//c]//d"} {
		stats, err := idx.CountTwig(pat)
		if err != nil {
			log.Fatal(err)
		}
		tw := fmt.Sprintf("twig %-12s path solutions %8d", pat, stats.PathSolutions)
		if pat == "a//b" || pat == "a//b//c" {
			// For linear patterns, path solutions equal full embeddings.
			nav, _ := idx.CountTwigNavigation(pat)
			tw += fmt.Sprintf("  (navigation ground truth: %d)", nav)
		}
		fmt.Println(tw)
	}

	// The engine-level integration: the same XQuery, navigation vs indexed.
	fmt.Println()
	query := `count(//a//b)`
	nav := xqgo.MustCompile(query, &xqgo.Options{Strategy: xqgo.ForceNavigation})
	indexed := xqgo.MustCompile(query, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})

	ctx := xqgo.NewContext().WithContextNode(doc)
	t0 = time.Now()
	out, err := nav.EvalString(ctx)
	if err != nil {
		log.Fatal(err)
	}
	tNav := time.Since(t0)

	ctxIdx := xqgo.NewContext().WithContextNode(doc)
	indexed.Eval(ctxIdx) // first run builds + caches the index
	t0 = time.Now()
	out2, err := indexed.EvalString(ctxIdx)
	if err != nil {
		log.Fatal(err)
	}
	tIdx := time.Since(t0)

	if out != out2 {
		log.Fatalf("engines disagree: %s vs %s", out, out2)
	}
	fmt.Printf("engine %s = %s\n", query, out)
	fmt.Printf("  navigation: %v\n", tNav)
	fmt.Printf("  indexed:    %v  (%.0fx faster, index cached per document)\n",
		tIdx, float64(tNav)/float64(tIdx))
}
