// Data integration: the paper's "Data Integration" use case — a FLWOR join
// across two external data sources (a bibliography and a publisher
// directory), with aggregation and ordered output.
package main

import (
	"fmt"
	"log"

	"xqgo"
	"xqgo/internal/workload"
)

const publishers = `
<publishers>
  <publisher><name>Addison-Wesley</name><city>Boston</city><founded>1942</founded></publisher>
  <publisher><name>Morgan Kaufmann</name><city>Burlington</city><founded>1984</founded></publisher>
  <publisher><name>Springer Verlag</name><city>Berlin</city><founded>1842</founded></publisher>
  <publisher><name>O'Reilly</name><city>Sebastopol</city><founded>1978</founded></publisher>
  <publisher><name>Prentice Hall</name><city>Hoboken</city><founded>1913</founded></publisher>
</publishers>`

// The join query: books grouped under their publisher's directory entry.
const query = `
declare variable $bib external;
declare variable $pubs external;

for $p in $pubs/publishers/publisher
let $books := $bib/bib/book[publisher = $p/name]
where exists($books)
order by count($books) descending, $p/name
return
  <publisher name="{$p/name}" city="{$p/city}" books="{count($books)}">
    { for $b in $books
      order by xs:decimal($b/price) descending
      return <book year="{$b/@year}" price="{$b/price}">{string($b/title)}</book> }
  </publisher>`

func main() {
	bib := xqgo.FromStore(workload.Bib(workload.BibConfig{Books: 24, Seed: 11}))
	pubs, err := xqgo.ParseString(publishers, "publishers.xml")
	if err != nil {
		log.Fatal(err)
	}

	q, err := xqgo.Compile(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := xqgo.NewContext().Bind("bib", bib).Bind("pubs", pubs)

	out, err := q.Eval(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d publishers with books:\n\n", len(out))
	for _, item := range out {
		s, _ := xqgo.ItemString(item)
		fmt.Println(s)
	}
}
