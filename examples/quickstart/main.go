// Quickstart: parse a document, compile a query, evaluate it three ways
// (materialized, streamed to a writer, item by item).
package main

import (
	"fmt"
	"log"
	"os"

	"xqgo"
)

const bib = `
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology for Digital TV</title>
    <author><last>Gerbarg</last><first>Darcy</first></author>
    <publisher>Kluwer</publisher>
    <price>129.95</price>
  </book>
</bib>`

func main() {
	doc, err := xqgo.ParseString(bib, "bib.xml")
	if err != nil {
		log.Fatal(err)
	}

	// A FLWOR with a where clause and element construction.
	query := `
	  for $b in /bib/book
	  where xs:decimal($b/price) < 100
	  order by $b/title
	  return <cheap year="{$b/@year}">{string($b/title)}</cheap>`

	q, err := xqgo.Compile(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := xqgo.NewContext().WithContextNode(doc)

	// 1. Materialize the whole result.
	out, err := q.EvalString(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("materialized:")
	fmt.Println(out)

	// 2. Stream the serialized result to a writer (first bytes appear
	// before the evaluation finishes).
	fmt.Println("\nstreamed:")
	if err := q.Execute(ctx, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// 3. Pull items one at a time.
	fmt.Println("\nitem by item:")
	it, err := q.Iterator(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for {
		item, ok, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		s, _ := xqgo.ItemString(item)
		fmt.Println(" -", s)
	}
}
