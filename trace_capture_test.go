package xqgo_test

// End-to-end tests of the request-tracing surface through the public API:
// concurrent trace capture (run under -race in CI — each goroutine owns a
// trace, all share one query), span-tree well-formedness, and the
// store-fallback subscription profile regression (a fallback plan larger
// than the profile's creating plan must not index out of range).

import (
	"context"
	"strings"
	"sync"
	"testing"

	"xqgo"
)

// traceSpanNames collects span names of a finished trace keyed by count.
func traceSpanNames(d xqgo.TraceData) map[string]int {
	names := make(map[string]int)
	for _, sp := range d.Spans {
		names[sp.Name]++
	}
	return names
}

// checkSpanTree asserts structural well-formedness: unique ids, every
// parent resolves to another span in the same trace (or the adopted remote
// parent), and exactly one root matching Data.Root.
func checkSpanTree(t *testing.T, d xqgo.TraceData) {
	t.Helper()
	ids := make(map[string]bool, len(d.Spans))
	for _, sp := range d.Spans {
		if ids[sp.ID] {
			t.Errorf("duplicate span id %s", sp.ID)
		}
		ids[sp.ID] = true
	}
	roots := 0
	for _, sp := range d.Spans {
		switch {
		case sp.Parent == "":
			roots++
			if sp.ID != d.Root {
				t.Errorf("parentless span %s (%s) is not the recorded root %s", sp.ID, sp.Name, d.Root)
			}
		case !ids[sp.Parent] && sp.Parent != d.Remote:
			t.Errorf("span %s (%s) has unknown parent %s", sp.ID, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}
}

// TestConcurrentTraceCapture runs one compiled query from parallel
// goroutines, each execution under its own trace and profile, and checks
// every resulting span tree independently: well-formed, and carrying the
// execute, optimizer, projection, ingestion and per-operator stages.
func TestConcurrentTraceCapture(t *testing.T) {
	doc, err := xqgo.Parse(strings.NewReader(explainBib), "bib.xml")
	if err != nil {
		t.Fatal(err)
	}
	q := xqgo.MustCompile(explainQuery, nil)

	const workers = 8
	datas := make([]xqgo.TraceData, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := xqgo.NewTrace()
			ctx := xqgo.NewContext().
				WithContextNode(doc).
				WithProfile(q.NewCountersProfile()).
				WithTrace(tr)
			if _, err := q.EvalString(ctx); err != nil {
				errs[i] = err
				return
			}
			datas[i] = tr.Finish()
		}(i)
	}
	wg.Wait()

	seen := make(map[string]bool, workers)
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		d := datas[i]
		if seen[d.TraceID] {
			t.Errorf("worker %d: trace id %s reused across goroutines", i, d.TraceID)
		}
		seen[d.TraceID] = true
		checkSpanTree(t, d)
		names := traceSpanNames(d)
		for _, want := range []string{"execute", "optimize", "projection", "ingest"} {
			if names[want] == 0 {
				t.Errorf("worker %d: trace missing %q span: %v", i, want, names)
			}
		}
		ops := 0
		for name, n := range names {
			if strings.HasPrefix(name, "op:") {
				ops += n
			}
		}
		if ops < 3 {
			t.Errorf("worker %d: trace has %d op: spans, want >= 3 (%v)", i, ops, names)
		}
	}
}

// TestSubscriptionFallbackProfileIsolation: a store-required subscription
// whose plan has more operators than the feed profile's creating plan must
// evaluate cleanly — the fallback runs under its own plan-sized profile and
// folds counters back, instead of indexing the shared profile out of range.
func TestSubscriptionFallbackProfileIsolation(t *testing.T) {
	small := xqgo.MustCompile(`/Order/OrderLine`, nil)
	big := xqgo.MustCompile(
		`for $x in //OrderLine let $y := $x/Item where $y/ID = "L1" `+
			`order by $x/SellersID return <r>{$y/ID/text()}{$x/SellersID/text()}</r>`, nil)
	prof := small.NewCountersProfile()
	sub := xqgo.NewSubscriber().WithProfile(prof)
	var bigResults int
	sub.Subscribe(small, func([]byte) error { return nil })
	bigSub := sub.Subscribe(big, func([]byte) error { bigResults++; return nil })

	feed := `<Order><OrderLine><SellersID>1</SellersID><Item><ID>L1</ID></Item></OrderLine></Order>`
	if err := sub.Run(context.Background(), strings.NewReader(feed), "orders.xml"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bigSub.Class() != xqgo.StreamStoreRequired {
		t.Fatalf("big subscription class = %v, want store-required", bigSub.Class())
	}
	if err := bigSub.Err(); err != nil {
		t.Fatalf("store-fallback subscription errored: %v", err)
	}
	if bigResults != 1 {
		t.Errorf("store-fallback results = %d, want 1", bigResults)
	}
	if rep := prof.Report(); rep.Counters.StreamResults == 0 {
		t.Errorf("fallback counters not folded into the feed profile: %+v", rep.Counters)
	}
}
