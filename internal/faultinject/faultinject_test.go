package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Fire(ParserRead); err != nil {
		t.Fatalf("disarmed Fire: %v", err)
	}
}

func TestFireDefaultInjectedError(t *testing.T) {
	Reset()
	defer Reset()
	Enable(StoreAbort, Fault{})
	err := Fire(StoreAbort)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != StoreAbort {
		t.Fatalf("Fire = %v, want *InjectedError at %q", err, StoreAbort)
	}
	if got := Hits(StoreAbort); got != 1 {
		t.Errorf("Hits = %d, want 1", got)
	}
}

func TestFireCustomError(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("boom")
	Enable(ParserRead, Fault{Err: boom})
	if err := Fire(ParserRead); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
}

func TestAfterAndCount(t *testing.T) {
	Reset()
	defer Reset()
	// Skip the first 2 firings, then fire exactly once.
	Enable(SSEWrite, Fault{After: 2, Count: 1})
	var fired int
	for i := 0; i < 5; i++ {
		if Fire(SSEWrite) != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if got := Hits(SSEWrite); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
}

func TestDelayOnlyFaultReturnsNil(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SSESlow, Fault{Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := Fire(SSESlow); err != nil {
		t.Fatalf("delay-only Fire = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("Fire returned after %v, want >= 5ms", elapsed)
	}
}

func TestFirePanic(t *testing.T) {
	Reset()
	defer Reset()
	Enable(MorselPanic, Fault{PanicValue: "chaos"})
	defer func() {
		if r := recover(); r != "chaos" {
			t.Errorf("recovered %v, want chaos", r)
		}
	}()
	FirePanic(MorselPanic)
	t.Fatal("FirePanic did not panic")
}

func TestDisableAndReset(t *testing.T) {
	Reset()
	Enable(ParserRead, Fault{})
	Enable(StoreAbort, Fault{})
	Disable(ParserRead)
	if err := Fire(ParserRead); err != nil {
		t.Errorf("disabled point fired: %v", err)
	}
	if err := Fire(StoreAbort); err == nil {
		t.Error("still-enabled point did not fire")
	}
	Reset()
	if err := Fire(StoreAbort); err != nil {
		t.Errorf("Fire after Reset: %v", err)
	}
}

func TestPointsRegistry(t *testing.T) {
	pts := Points()
	if len(pts) < 6 {
		t.Fatalf("Points() = %d entries, want >= 6", len(pts))
	}
	seen := map[Point]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate point %q", p)
		}
		seen[p] = true
	}
	for _, want := range []Point{ParserRead, FeedTruncate, StoreAbort, MorselPanic, WindowPanic, SSEWrite, SSESlow, DocLoadPanic} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}
