// Package faultinject is a deterministic, build-tag-free chaos harness.
// Production code calls Fire/FirePanic at named injection points; the
// calls cost one atomic load while nothing is armed, and tests arm
// specific points (Enable) with an error, a panic value, or a stall to
// prove the engine degrades gracefully — structured error out, no
// goroutine leaks, budgets released, sibling subscriptions unharmed.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site in the engine.
type Point string

// The wired injection points. Each constant appears at exactly one call
// site; the chaos differential (chaos_test.go at the repo root) iterates
// this set against the paper query suite.
const (
	// ParserRead fails the streamed-input reader with an I/O error.
	ParserRead Point = "parser.read-error"
	// FeedTruncate ends the streamed input mid-token (premature EOF).
	FeedTruncate Point = "parser.feed-truncate"
	// StoreAbort fails the incremental parse after a successful token,
	// modeling a store-side append failure.
	StoreAbort Point = "store.parse-abort"
	// MorselPanic panics inside a morsel worker's chunk closure.
	MorselPanic Point = "morsel.worker-panic"
	// DocLoadPanic panics inside the single-flight fn:doc loader.
	DocLoadPanic Point = "docload.panic"
	// WindowPanic panics inside a streamexec window evaluation.
	WindowPanic Point = "stream.window-panic"
	// SSEWrite fails a subscriber SSE event write.
	SSEWrite Point = "sse.write-error"
	// SSESlow stalls a subscriber SSE event write (slow consumer).
	SSESlow Point = "sse.slow-consumer"
)

// Points lists every wired injection point, for matrix-style tests.
func Points() []Point {
	return []Point{ParserRead, FeedTruncate, StoreAbort, MorselPanic,
		DocLoadPanic, WindowPanic, SSEWrite, SSESlow}
}

// Fault describes what an armed point does when hit.
type Fault struct {
	// Err is returned by Fire. Nil with a Delay makes a pure stall;
	// nil otherwise substitutes a generic *InjectedError.
	Err error
	// PanicValue makes FirePanic panic with this value. Nil substitutes
	// a generic *InjectedError (so recover boundaries see an error).
	PanicValue any
	// After skips the first After hits before triggering.
	After int64
	// Count fires at most Count times once triggering (0 = every hit).
	Count int64
	// Delay stalls the hit before returning or panicking.
	Delay time.Duration
}

// InjectedError is the default fault payload.
type InjectedError struct{ Point Point }

func (e *InjectedError) Error() string {
	return "faultinject: injected fault at " + string(e.Point)
}

type entry struct {
	f    Fault
	hits atomic.Int64
}

var (
	armed atomic.Int32 // number of enabled points: the fast-path gate
	mu    sync.Mutex
	table map[Point]*entry
)

// Enable arms a point. Re-enabling replaces the fault and resets its hit
// count.
func Enable(p Point, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[Point]*entry)
	}
	if _, ok := table[p]; !ok {
		armed.Add(1)
	}
	table[p] = &entry{f: f}
}

// Disable disarms a point.
func Disable(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := table[p]; ok {
		delete(table, p)
		armed.Add(-1)
	}
}

// Reset disarms everything.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(table)))
	table = nil
}

// Hits returns how many times an armed point was reached (0 if disarmed).
func Hits(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := table[p]; ok {
		return e.hits.Load()
	}
	return 0
}

// lookup returns the point's fault if this hit should trigger.
func lookup(p Point) (Fault, bool) {
	mu.Lock()
	e, ok := table[p]
	mu.Unlock()
	if !ok {
		return Fault{}, false
	}
	h := e.hits.Add(1)
	if h <= e.f.After {
		return Fault{}, false
	}
	if e.f.Count > 0 && h > e.f.After+e.f.Count {
		return Fault{}, false
	}
	return e.f, true
}

// Fire triggers an error-style fault at p: nil when the point is
// disarmed (the common case — one atomic load), the fault's Err when it
// triggers (a generic *InjectedError if unset, nil for delay-only
// faults after the stall).
func Fire(p Point) error {
	if armed.Load() == 0 {
		return nil
	}
	f, ok := lookup(p)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Err != nil {
		return f.Err
	}
	if f.Delay > 0 {
		return nil
	}
	return &InjectedError{Point: p}
}

// FirePanic triggers a panic-style fault at p: a no-op when disarmed,
// otherwise it panics with the fault's PanicValue (a generic
// *InjectedError if unset).
func FirePanic(p Point) {
	if armed.Load() == 0 {
		return
	}
	f, ok := lookup(p)
	if !ok {
		return
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.PanicValue != nil {
		panic(f.PanicValue)
	}
	panic(&InjectedError{Point: p})
}
