package store

import (
	"sync/atomic"

	"xqgo/internal/labeling"
	"xqgo/internal/xdm"
)

// docSeq hands out global document-order sequence numbers: nodes in
// different trees are ordered by the creation order of their trees, which
// satisfies the data model's "stable, implementation-defined" requirement.
var docSeq atomic.Uint64

// NSDecl records a namespace declaration (xmlns[:prefix]="uri") on an
// element, used by the serializer to re-create in-scope bindings.
type NSDecl struct {
	Elem   int32
	Prefix string // empty for the default namespace
	URI    string
}

// Document is one tree (a parsed document or a constructed fragment) stored
// as parallel arrays indexed by node id = pre-order position. Attribute
// nodes occupy the ids immediately after their owner element, so id order is
// exactly document order and the pair (id, endID) is a region label.
type Document struct {
	Seq     uint64 // global ordering sequence
	URI     string // base/document URI, may be empty
	HasRoot bool   // true when node 0 is a document node (parsed documents)

	Names *NamePool

	kind       []xdm.NodeKind
	name       []int32 // index into Names; -1 for unnamed kinds
	parent     []int32 // -1 at node 0
	endID      []int32 // id of last node in the subtree (== own id for leaves)
	nextSib    []int32 // next sibling id, -1
	firstChild []int32 // first non-attribute child id, -1
	value      []string
	level      []int32

	NS []NSDecl
}

// NumNodes returns the number of nodes (of all kinds) in the document.
func (d *Document) NumNodes() int { return len(d.kind) }

// Node returns the node with the given id.
func (d *Document) Node(id int32) *Node { return &Node{D: d, ID: id} }

// RootNode returns node 0: the document node for parsed documents, the
// constructed node itself for fragments.
func (d *Document) RootNode() *Node { return d.Node(0) }

// Region returns the region label of a node: Start = id, End = last
// descendant id, plus the depth. This is the labeling scheme consumed by the
// structural-join algorithms.
func (d *Document) Region(id int32) labeling.Region {
	return labeling.Region{Start: int64(id), End: int64(d.endID[id]), Level: d.level[id]}
}

// Dewey computes the Dewey label of a node by walking to the root
// (O(depth) — provided for the labeling experiments, not the hot path).
func (d *Document) Dewey(id int32) labeling.Dewey {
	var rev []uint32
	for cur := id; cur >= 0; cur = d.parent[cur] {
		p := d.parent[cur]
		if p < 0 {
			rev = append(rev, 1)
			break
		}
		ord := uint32(1)
		for sib := d.firstSibling(cur); sib != cur; sib = d.nextSib[sib] {
			ord++
		}
		rev = append(rev, ord)
	}
	out := make(labeling.Dewey, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func (d *Document) firstSibling(id int32) int32 {
	p := d.parent[id]
	if p < 0 {
		return id
	}
	if d.kind[id] == xdm.AttributeNode {
		return p + 1 // first attribute follows the element
	}
	return d.firstChild[p]
}

// Kind returns the kind of node id.
func (d *Document) Kind(id int32) xdm.NodeKind { return d.kind[id] }

// NameOf returns the QName of node id (zero for unnamed kinds).
func (d *Document) NameOf(id int32) xdm.QName {
	if n := d.name[id]; n >= 0 {
		return d.Names.Name(n)
	}
	return xdm.QName{}
}

// NameIndex returns the name-pool index of node id, or -1.
func (d *Document) NameIndex(id int32) int32 { return d.name[id] }

// Value returns the stored value of node id (text content for leaves,
// attribute value, PI data; empty for elements/documents).
func (d *Document) Value(id int32) string { return d.value[id] }

// ParentID returns the parent id of node id, or -1.
func (d *Document) ParentID(id int32) int32 { return d.parent[id] }

// EndID returns the id of the last node in the subtree of id.
func (d *Document) EndID(id int32) int32 { return d.endID[id] }

// FirstChildID returns the first non-attribute child, or -1.
func (d *Document) FirstChildID(id int32) int32 { return d.firstChild[id] }

// NextSiblingID returns the next sibling, or -1.
func (d *Document) NextSiblingID(id int32) int32 { return d.nextSib[id] }

// Level returns the depth of node id (0 at node 0).
func (d *Document) Level(id int32) int32 { return d.level[id] }

// AttrRange returns the half-open id range of the attribute nodes of an
// element (empty range if none).
func (d *Document) AttrRange(elem int32) (from, to int32) {
	from = elem + 1
	to = from
	for int(to) < len(d.kind) && d.kind[to] == xdm.AttributeNode && d.parent[to] == elem {
		to++
	}
	return from, to
}
