package store

import (
	"sync/atomic"

	"xqgo/internal/labeling"
	"xqgo/internal/xdm"
)

// docSeq hands out global document-order sequence numbers: nodes in
// different trees are ordered by the creation order of their trees, which
// satisfies the data model's "stable, implementation-defined" requirement.
var docSeq atomic.Uint64

// NSDecl records a namespace declaration (xmlns[:prefix]="uri") on an
// element, used by the serializer to re-create in-scope bindings.
type NSDecl struct {
	Elem   int32
	Prefix string // empty for the default namespace
	URI    string
}

// Document is one tree (a parsed document or a constructed fragment) stored
// as parallel arrays indexed by node id = pre-order position. Attribute
// nodes occupy the ids immediately after their owner element, so id order is
// exactly document order and the pair (id, endID) is a region label.
//
// A document may be under construction (see lazy.go): accessors that could
// read past the parse frontier drive the frontier forward, and all array
// reads synchronize with the frontier mutex until construction finishes.
// Finished documents (feed == nil, the common case) read lock-free.
type Document struct {
	Seq     uint64 // global ordering sequence
	URI     string // base/document URI, may be empty
	HasRoot bool   // true when node 0 is a document node (parsed documents)

	Names *NamePool

	kind       []xdm.NodeKind
	name       []int32 // index into Names; -1 for unnamed kinds
	parent     []int32 // -1 at node 0
	endID      []int32 // id of last node in the subtree (== own id for leaves)
	nextSib    []int32 // next sibling id, -1
	firstChild []int32 // first non-attribute child id, -1
	value      []string
	level      []int32

	NS []NSDecl

	// feed is the parse frontier while the document is under construction
	// (lazy.go); nil once complete.
	feed atomic.Pointer[frontier]

	// stats caches the per-document statistics (stats.go). Computed at most
	// once per completed document; racing computations are idempotent.
	stats atomic.Pointer[DocStats]
}

// NumNodes returns the number of nodes (of all kinds) in the document,
// driving an in-progress parse to completion first.
func (d *Document) NumNodes() int {
	if d.feed.Load() != nil {
		if err := d.Complete(); err != nil {
			panic(Abort{Err: err})
		}
	}
	return len(d.kind)
}

// Node returns the node with the given id.
func (d *Document) Node(id int32) *Node { return &Node{D: d, ID: id} }

// RootNode returns node 0: the document node for parsed documents, the
// constructed node itself for fragments.
func (d *Document) RootNode() *Node { return d.Node(0) }

// Region returns the region label of a node: Start = id, End = last
// descendant id, plus the depth. This is the labeling scheme consumed by the
// structural-join algorithms.
func (d *Document) Region(id int32) labeling.Region {
	return labeling.Region{Start: int64(id), End: int64(d.EndID(id)), Level: d.Level(id)}
}

// Dewey computes the Dewey label of a node by walking to the root
// (O(depth) — provided for the labeling experiments, not the hot path).
func (d *Document) Dewey(id int32) labeling.Dewey {
	f := d.rlock()
	var rev []uint32
	for cur := id; cur >= 0; cur = d.parent[cur] {
		p := d.parent[cur]
		if p < 0 {
			rev = append(rev, 1)
			break
		}
		ord := uint32(1)
		for sib := d.firstSibling(cur); sib != cur; sib = d.nextSib[sib] {
			ord++
		}
		rev = append(rev, ord)
	}
	d.runlock(f)
	out := make(labeling.Dewey, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// firstSibling walks to the first sibling of id. Callers must hold the
// frontier lock for in-progress documents; everything it reads (the chain
// up to an existing node) is final once id exists.
func (d *Document) firstSibling(id int32) int32 {
	p := d.parent[id]
	if p < 0 {
		return id
	}
	if d.kind[id] == xdm.AttributeNode {
		return p + 1 // first attribute follows the element
	}
	return d.firstChild[p]
}

// Kind returns the kind of node id.
func (d *Document) Kind(id int32) xdm.NodeKind {
	f := d.rlock()
	k := d.kind[id]
	d.runlock(f)
	return k
}

// NameOf returns the QName of node id (zero for unnamed kinds).
func (d *Document) NameOf(id int32) xdm.QName {
	if n := d.NameIndex(id); n >= 0 {
		return d.Names.Name(n)
	}
	return xdm.QName{}
}

// NameIndex returns the name-pool index of node id, or -1.
func (d *Document) NameIndex(id int32) int32 {
	f := d.rlock()
	n := d.name[id]
	d.runlock(f)
	return n
}

// Value returns the stored value of node id (text content for leaves,
// attribute value, PI data; empty for elements/documents).
func (d *Document) Value(id int32) string {
	f := d.rlock()
	v := d.value[id]
	d.runlock(f)
	return v
}

// ParentID returns the parent id of node id, or -1.
func (d *Document) ParentID(id int32) int32 {
	f := d.rlock()
	p := d.parent[id]
	d.runlock(f)
	return p
}

// EndID returns the id of the last node in the subtree of id, parsing the
// rest of the subtree on demand for in-progress documents.
func (d *Document) EndID(id int32) int32 {
	f := d.rlock()
	if f != nil {
		f.require(func() bool { return f.closed(id) })
	}
	v := d.endID[id]
	d.runlock(f)
	return v
}

// FirstChildID returns the first non-attribute child, or -1, parsing far
// enough to know which for in-progress documents.
func (d *Document) FirstChildID(id int32) int32 {
	f := d.rlock()
	if f != nil {
		f.require(func() bool { return d.firstChild[id] >= 0 || f.closed(id) })
	}
	v := d.firstChild[id]
	d.runlock(f)
	return v
}

// NextSiblingID returns the next sibling, or -1, parsing far enough to know
// which for in-progress documents. Attribute runs are complete as soon as
// their owner element exists, so attribute siblings never wait.
func (d *Document) NextSiblingID(id int32) int32 {
	f := d.rlock()
	if f != nil && d.kind[id] != xdm.AttributeNode {
		f.require(func() bool {
			if d.nextSib[id] >= 0 {
				return true
			}
			p := d.parent[id]
			return p < 0 || f.closed(p)
		})
	}
	v := d.nextSib[id]
	d.runlock(f)
	return v
}

// Level returns the depth of node id (0 at node 0).
func (d *Document) Level(id int32) int32 {
	f := d.rlock()
	v := d.level[id]
	d.runlock(f)
	return v
}

// AttrRange returns the half-open id range of the attribute nodes of an
// element (empty range if none). Attributes land in the same parse
// increment as their owner, so the range is final once the element exists.
func (d *Document) AttrRange(elem int32) (from, to int32) {
	f := d.rlock()
	from = elem + 1
	to = from
	for int(to) < len(d.kind) && d.kind[to] == xdm.AttributeNode && d.parent[to] == elem {
		to++
	}
	d.runlock(f)
	return from, to
}

// NSDecls returns the namespace declarations recorded on elem (usually
// zero or one small slice; allocated per call for in-progress documents).
func (d *Document) NSDecls(elem int32) []NSDecl {
	f := d.rlock()
	var out []NSDecl
	for _, ns := range d.NS {
		if ns.Elem == elem {
			out = append(out, ns)
		}
	}
	d.runlock(f)
	return out
}

// textContent concatenates the descendant text of an element or document
// node: the string-value computation, frontier-aware.
func (d *Document) textContent(id int32) string {
	f := d.rlock()
	if f != nil {
		f.require(func() bool { return f.closed(id) })
	}
	end := d.endID[id]
	// Fast path: single text child (no builder allocation).
	single := ""
	first := true
	var parts []string
	for i := id + 1; i <= end; i++ {
		if d.kind[i] == xdm.TextNode {
			if first {
				single = d.value[i]
				first = false
			} else {
				if parts == nil {
					parts = append(parts, single)
				}
				parts = append(parts, d.value[i])
			}
		}
	}
	d.runlock(f)
	if parts != nil {
		n := 0
		for _, p := range parts {
			n += len(p)
		}
		b := make([]byte, 0, n)
		for _, p := range parts {
			b = append(b, p...)
		}
		return string(b)
	}
	return single
}
