package store

import (
	"xqgo/internal/xdm"
)

// Node is a reference to one node of a Document; it implements xdm.Node.
// Nodes are value-like: two Node values referring to the same (Document, id)
// are the same node.
type Node struct {
	D  *Document
	ID int32
}

var _ xdm.Node = (*Node)(nil)

// IsNode marks Node as the node kind of item.
func (n *Node) IsNode() bool { return true }

// Kind returns the node kind.
func (n *Node) Kind() xdm.NodeKind { return n.D.Kind(n.ID) }

// NodeName returns the node's expanded name.
func (n *Node) NodeName() xdm.QName { return n.D.NameOf(n.ID) }

// StringValue returns the string value: for elements and documents the
// concatenation of all descendant text nodes, for other kinds the stored
// value.
func (n *Node) StringValue() string {
	d, id := n.D, n.ID
	switch d.Kind(id) {
	case xdm.ElementNode, xdm.DocumentNode:
		return d.textContent(id)
	default:
		return d.Value(id)
	}
}

// TypedValue returns the typed value; without schema validation every node
// is untyped, so this is xs:untypedAtomic of the string value (attributes
// likewise, per "type(year attribute) = xdt:untypedAtomic").
func (n *Node) TypedValue() xdm.Atomic { return xdm.NewUntyped(n.StringValue()) }

// Parent returns the parent node, or nil at the tree root.
func (n *Node) Parent() xdm.Node {
	p := n.D.ParentID(n.ID)
	if p < 0 {
		return nil
	}
	return &Node{D: n.D, ID: p}
}

// ChildrenOf returns the child nodes (attributes excluded) in document order.
func (n *Node) ChildrenOf() []xdm.Node {
	var out []xdm.Node
	for c := n.D.FirstChildID(n.ID); c >= 0; c = n.D.NextSiblingID(c) {
		out = append(out, &Node{D: n.D, ID: c})
	}
	return out
}

// AttributesOf returns the attribute nodes of an element.
func (n *Node) AttributesOf() []xdm.Node {
	from, to := n.D.AttrRange(n.ID)
	if n.Kind() != xdm.ElementNode || from == to {
		return nil
	}
	out := make([]xdm.Node, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, &Node{D: n.D, ID: i})
	}
	return out
}

// BaseURI returns the document URI.
func (n *Node) BaseURI() string { return n.D.URI }

// SameNode reports node identity.
func (n *Node) SameNode(o xdm.Node) bool {
	so, ok := o.(*Node)
	return ok && so.D == n.D && so.ID == n.ID
}

// OrderKey returns the global document-order key.
func (n *Node) OrderKey() (uint64, int64) { return n.D.Seq, int64(n.ID) }

// Root returns node 0 of the containing tree.
func (n *Node) Root() xdm.Node { return &Node{D: n.D, ID: 0} }
