package store

import (
	"fmt"

	"xqgo/internal/xdm"
)

// BuilderOptions configure document construction.
type BuilderOptions struct {
	// PoolText deduplicates repeated text/attribute values (the paper's
	// dictionary-pooling optimization). Off by default.
	PoolText bool
	// Names, when non-nil, is a shared name pool; otherwise the document
	// gets a private pool.
	Names *NamePool
	// URI sets the document/base URI.
	URI string
}

// Builder assembles a Document from a stream of events (the push side of
// the token-stream model). It is used by the XML parser and by the
// runtime's node constructors.
type Builder struct {
	doc   *Document
	texts *TextPool

	// open element stack
	stack []int32
	// last child id per open element (parallel to stack), -1 if none yet
	lastChild []int32
	// last attribute id of the innermost open element, -1 if none
	lastAttr int32
	// content seen for innermost open element (attributes no longer allowed)
	contentSeen bool
	// pending text accumulates adjacent text so the tree has merged text nodes
	pendingText []byte
	havePending bool
	done        bool
}

// NewBuilder creates a builder.
func NewBuilder(opts BuilderOptions) *Builder {
	names := opts.Names
	if names == nil {
		names = NewNamePool()
	}
	b := &Builder{
		doc: &Document{
			Seq:   docSeq.Add(1),
			URI:   opts.URI,
			Names: names,
		},
		lastAttr: -1,
	}
	if opts.PoolText {
		b.texts = NewTextPool()
	}
	return b
}

func (b *Builder) appendNode(kind xdm.NodeKind, name int32, value string) int32 {
	d := b.doc
	id := int32(len(d.kind))
	parent := int32(-1)
	level := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		level = d.level[parent] + 1
	}
	d.kind = append(d.kind, kind)
	d.name = append(d.name, name)
	d.parent = append(d.parent, parent)
	d.endID = append(d.endID, id)
	d.nextSib = append(d.nextSib, -1)
	d.firstChild = append(d.firstChild, -1)
	d.value = append(d.value, value)
	d.level = append(d.level, level)
	return id
}

// linkChild attaches id as the next child of the innermost open node.
func (b *Builder) linkChild(id int32) {
	if len(b.stack) == 0 {
		return
	}
	parent := b.stack[len(b.stack)-1]
	if prev := b.lastChild[len(b.lastChild)-1]; prev >= 0 {
		b.doc.nextSib[prev] = id
	} else {
		b.doc.firstChild[parent] = id
	}
	b.lastChild[len(b.lastChild)-1] = id
}

// StartDocument begins a tree rooted at a document node. Optional: fragments
// built without it are rooted directly at their first node.
func (b *Builder) StartDocument() {
	id := b.appendNode(xdm.DocumentNode, -1, "")
	b.doc.HasRoot = true
	b.stack = append(b.stack, id)
	b.lastChild = append(b.lastChild, -1)
}

// StartElement opens an element.
func (b *Builder) StartElement(q xdm.QName) {
	b.flushText()
	id := b.appendNode(xdm.ElementNode, b.doc.Names.Intern(q), "")
	b.linkChild(id)
	b.stack = append(b.stack, id)
	b.lastChild = append(b.lastChild, -1)
	b.lastAttr = -1
	b.contentSeen = false
}

// Attr adds an attribute to the innermost open element. It is an error to
// add attributes after content, or with no open element (except when
// building a standalone attribute fragment at the root).
func (b *Builder) Attr(q xdm.QName, value string) error {
	if len(b.stack) == 0 {
		// standalone attribute node fragment
		b.appendNode(xdm.AttributeNode, b.doc.Names.Intern(q), b.texts.Intern(value))
		return nil
	}
	owner := b.stack[len(b.stack)-1]
	if b.doc.kind[owner] != xdm.ElementNode {
		return fmt.Errorf("store: attribute %s outside an element", q)
	}
	if b.contentSeen {
		return fmt.Errorf("store: attribute %s after element content", q)
	}
	// Duplicate check comparing interned name indexes directly: the builder
	// may be running under the frontier lock of a lazy parse, so it must not
	// re-enter the locking Document accessors.
	nameIdx := b.doc.Names.Intern(q)
	from, to := owner+1, int32(len(b.doc.kind))
	for i := from; i < to; i++ {
		if b.doc.kind[i] == xdm.AttributeNode && b.doc.name[i] == nameIdx {
			return fmt.Errorf("store: duplicate attribute %s", q)
		}
	}
	id := b.appendNode(xdm.AttributeNode, nameIdx, b.texts.Intern(value))
	if b.lastAttr >= 0 {
		b.doc.nextSib[b.lastAttr] = id
	}
	b.lastAttr = id
	return nil
}

// NSDecl records a namespace declaration on the innermost open element.
func (b *Builder) NSDecl(prefix, uri string) {
	if len(b.stack) == 0 {
		return
	}
	b.doc.NS = append(b.doc.NS, NSDecl{Elem: b.stack[len(b.stack)-1], Prefix: prefix, URI: uri})
}

// Text adds character content; adjacent Text calls merge into one text node
// and zero-length text produces no node, per the data model.
func (b *Builder) Text(s string) {
	if s == "" {
		return
	}
	b.contentSeen = true
	b.pendingText = append(b.pendingText, s...)
	b.havePending = true
}

func (b *Builder) flushText() {
	if !b.havePending {
		return
	}
	s := string(b.pendingText)
	b.pendingText = b.pendingText[:0]
	b.havePending = false
	id := b.appendNode(xdm.TextNode, -1, b.texts.Intern(s))
	b.linkChild(id)
	b.contentSeen = true
}

// Comment adds a comment node.
func (b *Builder) Comment(s string) {
	b.flushText()
	id := b.appendNode(xdm.CommentNode, -1, s)
	b.linkChild(id)
	b.contentSeen = true
}

// PI adds a processing-instruction node; target becomes the node name.
func (b *Builder) PI(target, data string) {
	b.flushText()
	id := b.appendNode(xdm.PINode, b.doc.Names.Intern(xdm.LocalName(target)), data)
	b.linkChild(id)
	b.contentSeen = true
}

// EndElement closes the innermost open element.
func (b *Builder) EndElement() {
	b.flushText()
	id := b.stack[len(b.stack)-1]
	b.doc.endID[id] = int32(len(b.doc.kind)) - 1
	b.stack = b.stack[:len(b.stack)-1]
	b.lastChild = b.lastChild[:len(b.lastChild)-1]
	b.lastAttr = -1
	b.contentSeen = true // parent has now seen content
}

// Done finalizes and returns the document. The builder must not be reused.
func (b *Builder) Done() (*Document, error) {
	b.flushText()
	if b.done {
		return nil, fmt.Errorf("store: builder already finalized")
	}
	// Close an optional document-node root.
	if len(b.stack) == 1 && b.doc.kind[b.stack[0]] == xdm.DocumentNode {
		b.doc.endID[b.stack[0]] = int32(len(b.doc.kind)) - 1
		b.stack = b.stack[:0]
		b.lastChild = b.lastChild[:0]
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("store: %d unclosed element(s)", len(b.stack))
	}
	if len(b.doc.kind) == 0 {
		// An empty fragment: a document node with no content.
		b.StartDocument()
		b.doc.endID[0] = 0
		b.stack = b.stack[:0]
		b.lastChild = b.lastChild[:0]
	}
	b.done = true
	return b.doc, nil
}

// isOpen reports whether element id is still on the open stack. The stack
// holds strictly increasing ids (pre-order), so binary search applies.
func (b *Builder) isOpen(id int32) bool {
	lo, hi := 0, len(b.stack)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case b.stack[mid] == id:
			return true
		case b.stack[mid] < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// NodeCount returns the number of nodes appended so far (valid mid-build;
// used for materialization accounting).
func (b *Builder) NodeCount() int32 { return int32(len(b.doc.kind)) }

// CopyNode deep-copies a node (from any document) into the current build
// position, giving the copy a fresh identity — the semantics of including an
// existing node in a constructor's content. Document nodes are replaced by
// their children, per the element-content rules.
func (b *Builder) CopyNode(n xdm.Node) error {
	if sn, ok := n.(*Node); ok {
		return b.copyStoreTree(sn.D, sn.ID)
	}
	return b.copyGeneric(n)
}

// copyStoreTree copies via the frontier-aware accessors: the source may be
// an in-progress lazy document (the destination never is — it belongs to
// this builder).
func (b *Builder) copyStoreTree(d *Document, id int32) error {
	switch d.Kind(id) {
	case xdm.DocumentNode:
		for c := d.FirstChildID(id); c >= 0; c = d.NextSiblingID(c) {
			if err := b.copyStoreTree(d, c); err != nil {
				return err
			}
		}
	case xdm.ElementNode:
		b.StartElement(d.NameOf(id))
		for _, ns := range d.NSDecls(id) {
			b.NSDecl(ns.Prefix, ns.URI)
		}
		from, to := d.AttrRange(id)
		for i := from; i < to; i++ {
			if err := b.Attr(d.NameOf(i), d.Value(i)); err != nil {
				return err
			}
		}
		for c := d.FirstChildID(id); c >= 0; c = d.NextSiblingID(c) {
			if err := b.copyStoreTree(d, c); err != nil {
				return err
			}
		}
		b.EndElement()
	case xdm.AttributeNode:
		return b.Attr(d.NameOf(id), d.Value(id))
	case xdm.TextNode:
		b.Text(d.Value(id))
	case xdm.CommentNode:
		b.Comment(d.Value(id))
	case xdm.PINode:
		b.PI(d.NameOf(id).Local, d.Value(id))
	}
	return nil
}

func (b *Builder) copyGeneric(n xdm.Node) error {
	switch n.Kind() {
	case xdm.DocumentNode:
		for _, c := range n.ChildrenOf() {
			if err := b.copyGeneric(c); err != nil {
				return err
			}
		}
	case xdm.ElementNode:
		b.StartElement(n.NodeName())
		for _, a := range n.AttributesOf() {
			if err := b.Attr(a.NodeName(), a.StringValue()); err != nil {
				return err
			}
		}
		for _, c := range n.ChildrenOf() {
			if err := b.copyGeneric(c); err != nil {
				return err
			}
		}
		b.EndElement()
	case xdm.AttributeNode:
		return b.Attr(n.NodeName(), n.StringValue())
	case xdm.TextNode:
		b.Text(n.StringValue())
	case xdm.CommentNode:
		b.Comment(n.StringValue())
	case xdm.PINode:
		b.PI(n.NodeName().Local, n.StringValue())
	}
	return nil
}
