package store

import (
	"xqgo/internal/xdm"
)

// Per-document statistics for the cost-based planner: document size, tag
// selectivity (per-name element counts — exactly the posting-list lengths a
// structural index would hold), and depth/fanout shape. Collected in one
// O(nodes) pass over the parsed arrays and cached on the document, so the
// planner can cost index-based strategies without building the index first.

// DocStats summarizes one document for planning purposes.
type DocStats struct {
	Nodes     int64   // nodes of all kinds
	Elements  int64   // element nodes
	MaxLevel  int32   // deepest node level
	AvgDepth  float64 // mean element level (region-label depth)
	AvgFanout float64 // mean element children per non-leaf element

	names     *NamePool
	nameCount []int64 // element count per name-pool index
}

// ElementCount returns the number of elements named q (the posting-list
// length of q in a structural index over this document).
func (s *DocStats) ElementCount(q xdm.QName) int64 {
	if s == nil || s.names == nil {
		return 0
	}
	if i := s.names.Lookup(q); i >= 0 && int(i) < len(s.nameCount) {
		return s.nameCount[i]
	}
	return 0
}

// Stats returns the document's statistics, computing and caching them on
// first use. An in-progress (lazy) document is driven to completion first —
// planners that must not force the parse check Lazy() before calling.
func (d *Document) Stats() *DocStats {
	if s := d.stats.Load(); s != nil {
		return s
	}
	n := d.NumNodes() // completes a lazy parse; arrays are final below
	s := &DocStats{Nodes: int64(n), names: d.Names, nameCount: make([]int64, d.Names.Len())}
	var levelSum int64
	var withChildren int64
	for id := 0; id < n; id++ {
		if lv := d.level[id]; lv > s.MaxLevel {
			s.MaxLevel = lv
		}
		if d.kind[id] != xdm.ElementNode {
			continue
		}
		s.Elements++
		levelSum += int64(d.level[id])
		if ni := d.name[id]; ni >= 0 && int(ni) < len(s.nameCount) {
			s.nameCount[ni]++
		}
		if d.firstChild[id] >= 0 {
			withChildren++
		}
	}
	if s.Elements > 0 {
		s.AvgDepth = float64(levelSum) / float64(s.Elements)
	}
	if withChildren > 0 {
		// Every non-root element is someone's child: mean children per
		// interior element ~ elements / elements-with-children.
		s.AvgFanout = float64(s.Elements) / float64(withChildren)
	}
	d.stats.Store(s)
	return s
}
