package store

import (
	"sync"
	"testing"

	"xqgo/internal/xdm"
)

// TestDocStats pins the planner-facing statistics on the buildSample
// document:
//
//	<book year="1967">              level 1
//	  <title>…</title>              level 2
//	  <author>                      level 2
//	    <first>…</first>            level 3
//	    <last>…</last>              level 3
//	  </author>
//	</book>
func TestDocStats(t *testing.T) {
	doc := buildSample(t)
	s := doc.Stats()
	if s.Nodes != 10 {
		t.Errorf("Nodes = %d, want 10", s.Nodes)
	}
	if s.Elements != 5 {
		t.Errorf("Elements = %d, want 5 (book, title, author, first, last)", s.Elements)
	}
	// Element levels: 1 + 2 + 2 + 3 + 3 = 11 over 5 elements.
	if want := 11.0 / 5.0; s.AvgDepth != want {
		t.Errorf("AvgDepth = %g, want %g", s.AvgDepth, want)
	}
	// Text nodes sit at level 4 under first/last.
	if s.MaxLevel != 4 {
		t.Errorf("MaxLevel = %d, want 4", s.MaxLevel)
	}
	// Elements with element-or-text children: book, title, author, first,
	// last all have children here, so fanout = 5/5.
	if s.AvgFanout != 1.0 {
		t.Errorf("AvgFanout = %g, want 1", s.AvgFanout)
	}
	counts := map[string]int64{
		"book": 1, "title": 1, "author": 1, "first": 1, "last": 1,
		"nosuch": 0,
	}
	for name, want := range counts {
		if got := s.ElementCount(xdm.LocalName(name)); got != want {
			t.Errorf("ElementCount(%s) = %d, want %d", name, got, want)
		}
	}
	// Attribute names are in the pool but are not elements.
	if got := s.ElementCount(xdm.LocalName("year")); got != 0 {
		t.Errorf("ElementCount(year) = %d, want 0 (attribute)", got)
	}
}

// Stats are computed once and shared: concurrent first calls must agree and
// later calls must return the cached pointer.
func TestDocStatsCachedAndConcurrent(t *testing.T) {
	doc := buildSample(t)
	const goroutines = 16
	results := make([]*DocStats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = doc.Stats()
		}(i)
	}
	wg.Wait()
	for i, s := range results {
		if s.Nodes != 10 || s.Elements != 5 {
			t.Errorf("goroutine %d: Nodes=%d Elements=%d", i, s.Nodes, s.Elements)
		}
	}
	if doc.Stats() != doc.Stats() {
		t.Error("Stats not cached: two calls returned different pointers")
	}
}

func TestDocStatsNilSafety(t *testing.T) {
	var s *DocStats
	if got := s.ElementCount(xdm.LocalName("a")); got != 0 {
		t.Errorf("nil DocStats ElementCount = %d, want 0", got)
	}
}
