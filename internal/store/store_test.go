package store

import (
	"testing"
	"testing/quick"

	"xqgo/internal/xdm"
)

// buildSample constructs:
//
//	<book year="1967">
//	  <title>The politics of experience</title>
//	  <author><first>Ronald</first><last>Laing</last></author>
//	</book>
func buildSample(t *testing.T) *Document {
	t.Helper()
	b := NewBuilder(BuilderOptions{URI: "book.xml"})
	b.StartDocument()
	b.StartElement(xdm.LocalName("book"))
	if err := b.Attr(xdm.LocalName("year"), "1967"); err != nil {
		t.Fatal(err)
	}
	b.StartElement(xdm.LocalName("title"))
	b.Text("The politics of experience")
	b.EndElement()
	b.StartElement(xdm.LocalName("author"))
	b.StartElement(xdm.LocalName("first"))
	b.Text("Ronald")
	b.EndElement()
	b.StartElement(xdm.LocalName("last"))
	b.Text("Laing")
	b.EndElement()
	b.EndElement()
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBuilderShape(t *testing.T) {
	doc := buildSample(t)
	// document, book, @year, title, text, author, first, text, last, text
	if doc.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", doc.NumNodes())
	}
	root := doc.RootNode()
	if root.Kind() != xdm.DocumentNode {
		t.Fatal("node 0 must be the document node")
	}
	kids := root.ChildrenOf()
	if len(kids) != 1 || kids[0].NodeName().Local != "book" {
		t.Fatalf("document children = %v", kids)
	}
	book := kids[0]
	attrs := book.AttributesOf()
	if len(attrs) != 1 || attrs[0].NodeName().Local != "year" || attrs[0].StringValue() != "1967" {
		t.Fatalf("attributes = %v", attrs)
	}
	if got := book.StringValue(); got != "The politics of experienceRonaldLaing" {
		t.Errorf("book string value = %q", got)
	}
	if tv := book.TypedValue(); tv.T != xdm.TUntyped {
		t.Errorf("untyped data model: typed value is %v", tv.T)
	}
	bc := book.ChildrenOf()
	if len(bc) != 2 || bc[0].NodeName().Local != "title" || bc[1].NodeName().Local != "author" {
		t.Fatalf("book children = %v", bc)
	}
	if bc[0].StringValue() != "The politics of experience" {
		t.Error("title string value")
	}
	if bc[0].Parent() == nil || !bc[0].Parent().SameNode(book) {
		t.Error("parent link")
	}
	if root.Parent() != nil {
		t.Error("document node has no parent")
	}
	if attrs[0].Parent() == nil || !attrs[0].Parent().SameNode(book) {
		t.Error("attribute parent is the element")
	}
	if root.BaseURI() != "book.xml" {
		t.Error("base URI")
	}
}

func TestDocumentOrderAndIdentity(t *testing.T) {
	doc := buildSample(t)
	// ids are pre-order: every child id > parent id; OrderKey monotone.
	var prevDoc uint64
	var prevPre int64 = -1
	walk := func(n xdm.Node) {}
	_ = walk
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		d, p := doc.Node(id).OrderKey()
		if d < prevDoc || p <= prevPre && id > 0 {
			t.Fatalf("order key not monotone at id %d", id)
		}
		prevDoc, prevPre = d, p
	}
	a := doc.Node(3)
	b := doc.Node(3)
	if !a.SameNode(b) {
		t.Error("same (doc,id) is the same node")
	}
	if a.SameNode(doc.Node(4)) {
		t.Error("distinct ids are distinct nodes")
	}
	other := buildSample(t)
	if doc.Node(1).SameNode(other.Node(1)) {
		t.Error("nodes of different documents are distinct")
	}
	if doc.Seq == other.Seq {
		t.Error("documents get distinct sequence numbers")
	}
}

func TestRegions(t *testing.T) {
	doc := buildSample(t)
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		r := doc.Region(id)
		p := doc.ParentID(id)
		if p >= 0 {
			pr := doc.Region(p)
			if !pr.Contains(r) {
				t.Errorf("parent region %v must contain child %v (id %d)", pr, r, id)
			}
			if pr.Level+1 != r.Level {
				t.Errorf("level chain broken at %d", id)
			}
		}
	}
	// Root region spans everything.
	if doc.Region(0).End != int64(doc.NumNodes()-1) {
		t.Error("root region end")
	}
}

func TestDewey(t *testing.T) {
	doc := buildSample(t)
	// title (first child of book): root=1, book=1, title=1 -> [1 1 1]
	var titleID int32 = -1
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		if doc.Kind(id) == xdm.ElementNode && doc.NameOf(id).Local == "title" {
			titleID = id
		}
	}
	d := doc.Dewey(titleID)
	if len(d) != 3 || d[2] != 1 {
		t.Errorf("title Dewey = %v", d)
	}
	var lastID int32 = -1
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		if doc.Kind(id) == xdm.ElementNode && doc.NameOf(id).Local == "last" {
			lastID = id
		}
	}
	ld := doc.Dewey(lastID)
	// last is the 2nd child of author, author the 2nd child of book.
	if len(ld) != 4 || ld[3] != 2 || ld[2] != 2 {
		t.Errorf("last Dewey = %v", ld)
	}
	if !doc.Dewey(doc.ParentID(lastID)).IsParentOf(ld) {
		t.Error("Dewey parent relation")
	}
}

func TestTextMerging(t *testing.T) {
	b := NewBuilder(BuilderOptions{})
	b.StartElement(xdm.LocalName("a"))
	b.Text("one")
	b.Text(" two")
	b.Text("") // empty text produces nothing
	b.Text(" three")
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	root := doc.RootNode()
	kids := root.ChildrenOf()
	if len(kids) != 1 {
		t.Fatalf("adjacent text must merge: %d children", len(kids))
	}
	if kids[0].StringValue() != "one two three" {
		t.Errorf("merged text = %q", kids[0].StringValue())
	}
}

func TestFragmentRoots(t *testing.T) {
	// Element fragment: no document node.
	b := NewBuilder(BuilderOptions{})
	b.StartElement(xdm.LocalName("frag"))
	b.Text("x")
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if doc.HasRoot {
		t.Error("fragment must not claim a document node")
	}
	if doc.RootNode().Kind() != xdm.ElementNode {
		t.Error("fragment root is the element")
	}
	if doc.RootNode().Parent() != nil {
		t.Error("constructed element has no parent")
	}

	// Standalone attribute fragment.
	b2 := NewBuilder(BuilderOptions{})
	if err := b2.Attr(xdm.LocalName("a"), "v"); err != nil {
		t.Fatal(err)
	}
	doc2, err := b2.Done()
	if err != nil {
		t.Fatal(err)
	}
	if doc2.RootNode().Kind() != xdm.AttributeNode || doc2.RootNode().StringValue() != "v" {
		t.Error("attribute fragment")
	}

	// Text fragment.
	b3 := NewBuilder(BuilderOptions{})
	b3.Text("just text")
	doc3, err := b3.Done()
	if err != nil {
		t.Fatal(err)
	}
	if doc3.RootNode().Kind() != xdm.TextNode {
		t.Error("text fragment")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(BuilderOptions{})
	b.StartElement(xdm.LocalName("e"))
	b.Text("content")
	if err := b.Attr(xdm.LocalName("late"), "v"); err == nil {
		t.Error("attribute after content must fail")
	}
	b.EndElement()
	if _, err := b.Done(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Done(); err == nil {
		t.Error("double Done must fail")
	}

	b2 := NewBuilder(BuilderOptions{})
	b2.StartElement(xdm.LocalName("open"))
	if _, err := b2.Done(); err == nil {
		t.Error("unclosed element must fail")
	}

	b3 := NewBuilder(BuilderOptions{})
	b3.StartElement(xdm.LocalName("e"))
	if err := b3.Attr(xdm.LocalName("dup"), "1"); err != nil {
		t.Fatal(err)
	}
	if err := b3.Attr(xdm.LocalName("dup"), "2"); err == nil {
		t.Error("duplicate attribute must fail")
	}
}

func TestCopyNode(t *testing.T) {
	src := buildSample(t)
	book := src.RootNode().ChildrenOf()[0]

	b := NewBuilder(BuilderOptions{})
	b.StartElement(xdm.LocalName("wrapper"))
	if err := b.CopyNode(book); err != nil {
		t.Fatal(err)
	}
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	w := doc.RootNode()
	copied := w.ChildrenOf()[0]
	if copied.NodeName().Local != "book" {
		t.Fatal("copied element name")
	}
	if copied.SameNode(book) {
		t.Error("copy must have a fresh identity")
	}
	if copied.StringValue() != book.StringValue() {
		t.Error("copy preserves content")
	}
	if len(copied.AttributesOf()) != 1 {
		t.Error("copy preserves attributes")
	}
	// Copying a document node splices in its children.
	b2 := NewBuilder(BuilderOptions{})
	b2.StartElement(xdm.LocalName("w"))
	if err := b2.CopyNode(src.RootNode()); err != nil {
		t.Fatal(err)
	}
	b2.EndElement()
	doc2, _ := b2.Done()
	if doc2.RootNode().ChildrenOf()[0].NodeName().Local != "book" {
		t.Error("document copy splices children")
	}
}

func TestNamePool(t *testing.T) {
	p := NewNamePool()
	i1 := p.Intern(xdm.Name("u", "a"))
	i2 := p.Intern(xdm.Name("u", "a"))
	i3 := p.Intern(xdm.Name("u", "b"))
	if i1 != i2 || i1 == i3 {
		t.Error("interning")
	}
	if p.Len() != 2 {
		t.Error("pool size")
	}
	if p.Lookup(xdm.Name("u", "a")) != i1 || p.Lookup(xdm.Name("v", "a")) != -1 {
		t.Error("lookup")
	}
	if !p.Name(i3).Equal(xdm.Name("u", "b")) {
		t.Error("name by index")
	}
}

func TestTextPool(t *testing.T) {
	var nilPool *TextPool
	if nilPool.Intern("x") != "x" || nilPool.Len() != 0 {
		t.Error("nil pool passes through")
	}
	p := NewTextPool()
	a := p.Intern("hello")
	b := p.Intern("hello")
	if a != b || p.Len() != 1 {
		t.Error("text interning")
	}
	// Builder with pooling shares storage for equal values.
	bld := NewBuilder(BuilderOptions{PoolText: true})
	bld.StartElement(xdm.LocalName("r"))
	for i := 0; i < 5; i++ {
		bld.StartElement(xdm.LocalName("x"))
		bld.Text("same")
		bld.EndElement()
	}
	bld.EndElement()
	doc, _ := bld.Done()
	if doc.NumNodes() != 11 {
		t.Fatalf("nodes = %d", doc.NumNodes())
	}
}

func TestSharedNamePool(t *testing.T) {
	shared := NewNamePool()
	mk := func() *Document {
		b := NewBuilder(BuilderOptions{Names: shared})
		b.StartElement(xdm.LocalName("shared"))
		b.EndElement()
		d, _ := b.Done()
		return d
	}
	d1, d2 := mk(), mk()
	if d1.Names != d2.Names {
		t.Error("documents must share the pool")
	}
	if shared.Len() != 1 {
		t.Errorf("shared pool has %d names, want 1", shared.Len())
	}
}

// Property: for random small trees, the region of every node contains
// exactly its subtree ids (endID invariant).
func TestEndIDInvariantQuick(t *testing.T) {
	f := func(shape []uint8) bool {
		if len(shape) > 40 {
			shape = shape[:40]
		}
		b := NewBuilder(BuilderOptions{})
		b.StartDocument()
		b.StartElement(xdm.LocalName("root"))
		depth := 1
		for _, op := range shape {
			switch op % 3 {
			case 0:
				b.StartElement(xdm.LocalName("n"))
				depth++
			case 1:
				if depth > 1 {
					b.EndElement()
					depth--
				}
			case 2:
				b.Text("t")
			}
		}
		for depth > 0 {
			b.EndElement()
			depth--
		}
		doc, err := b.Done()
		if err != nil {
			return false
		}
		for id := int32(0); id < int32(doc.NumNodes()); id++ {
			end := doc.EndID(id)
			if end < id {
				return false
			}
			// Every node in (id, end] must have an ancestor chain reaching id.
			for c := id + 1; c <= end; c++ {
				p := c
				for p > id && p >= 0 {
					p = doc.ParentID(p)
				}
				if p != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
