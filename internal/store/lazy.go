package store

import (
	"sync"

	"xqgo/internal/xdm"
)

// Lazy (demand-driven) documents. An under-construction document carries a
// frontier: the builder-side state of an incremental parse plus the advance
// hook that parses one more increment. Accessors that could observe
// not-yet-final array slots drive the frontier forward before reading —
// navigation pulls expand the document exactly as far as the query demands
// (the paper's "parse on demand" ingestion).
//
// Invariants:
//
//   - A node id that exists (id < len(kind)) has final kind, name, value,
//     parent and level: those fields are written once at append time.
//   - An element's endID, firstChild and a node's nextSib are final only
//     once the element (resp. the parent) is closed; until then reading
//     them requires advancing the parse.
//   - Attributes are appended in the same increment as their owner element,
//     so an element that exists has its full attribute range.
//   - All array mutation happens with the frontier mutex held; readers
//     either observe feed == nil (construction finished, arrays immutable —
//     the lock-free fast path) or take the same mutex. The feed pointer is
//     cleared with an atomic store after the final mutation, so fast-path
//     readers are properly ordered.
//
// A parse failure is sticky: the first error aborts the increment, and
// every subsequent demand that cannot be satisfied from already-built
// nodes panics with Abort wrapping it. The runtime's engine boundaries
// recover Abort (it implements error) and surface it as the execution
// error — identical to how streamed-construction errors already travel.

// Abort is panicked out of lazy-document accessors when demand-driven
// parsing fails.
type Abort struct{ Err error }

func (a Abort) Error() string { return a.Err.Error() }
func (a Abort) Unwrap() error { return a.Err }

// frontier is the parse frontier of an under-construction document.
type frontier struct {
	mu   sync.Mutex
	d    *Document
	b    *Builder
	adv  func() (done bool, err error) // parse one increment
	done bool
	err  error // sticky
}

// BeginLazy marks the builder's document as under construction: advance is
// called (one increment at a time) whenever an accessor needs more of the
// document. The returned document is usable immediately; advance must
// finalize the build (Builder.Done) on its last increment.
func BeginLazy(b *Builder, advance func() (done bool, err error)) *Document {
	f := &frontier{d: b.doc, b: b, adv: advance}
	b.doc.feed.Store(f)
	return b.doc
}

// step parses one increment. Must hold f.mu. Returns the sticky error.
func (f *frontier) step() error {
	if f.err != nil {
		return f.err
	}
	if f.done {
		return nil
	}
	done, err := f.adv()
	if err != nil {
		f.err = err
		return err
	}
	if done {
		f.done = true
		// Publish completion: fast-path readers that load nil are ordered
		// after every array write above.
		f.d.feed.Store(nil)
	}
	return nil
}

// require advances until cond holds (cond is evaluated under f.mu).
func (f *frontier) require(cond func() bool) {
	for !cond() {
		if f.done {
			return // fully parsed; cond is as true as it will get
		}
		if err := f.step(); err != nil {
			panic(Abort{Err: err})
		}
	}
}

// closed reports whether node id's subtree is complete. Must hold f.mu.
func (f *frontier) closed(id int32) bool {
	if f.done {
		return true
	}
	if k := f.d.kind[id]; k != xdm.ElementNode && k != xdm.DocumentNode {
		return true // leaves are final at append
	}
	return !f.b.isOpen(id)
}

// ---- lock helpers used by the Document accessors ----

// rlock takes the frontier lock when the document is still under
// construction; returns nil (no unlock needed) once it is complete.
func (d *Document) rlock() *frontier {
	if f := d.feed.Load(); f != nil {
		f.mu.Lock()
		return f
	}
	return nil
}

func (d *Document) runlock(f *frontier) {
	if f != nil {
		f.mu.Unlock()
	}
}

// Complete drives the parse to the end of the input and returns the parse
// error, if any. Unlike the ensure* accessors it reports failure as an
// ordinary error instead of panicking (it is the eager-parse entry point).
func (d *Document) Complete() error {
	f := d.feed.Load()
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		if err := f.step(); err != nil {
			return err
		}
	}
	return nil
}

// Advance parses one increment of an in-progress document, reporting
// whether the end of input was reached. Complete documents return (true,
// nil). Errors are returned (not panicked) and are sticky.
func (d *Document) Advance() (bool, error) {
	f := d.feed.Load()
	if f == nil {
		return true, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return false, err
	}
	return f.done, nil
}

// Lazy reports whether the document is still under construction.
func (d *Document) Lazy() bool { return d.feed.Load() != nil }
