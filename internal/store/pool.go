// Package store implements the document store: an array-based ("TokenStream
// style", not pointer-tree) representation of XML documents. Nodes are rows
// in parallel arrays indexed by pre-order position, so a node's id doubles
// as the Start of its region label and the id of its last descendant as the
// End — structural predicates (ancestor/descendant, document order) are
// integer comparisons, which is the substrate both the streaming runtime and
// the structural-join algorithms rely on.
//
// QNames and (optionally) text values are dictionary-pooled, reproducing the
// paper's "store strings only once" TokenStream optimization.
package store

import "xqgo/internal/xdm"

// NamePool is a dictionary of QNames: each distinct (URI, local) pair is
// stored once and referenced by index. Pools may be shared across documents.
type NamePool struct {
	names []xdm.QName
	index map[nameKey]int32
}

type nameKey struct{ space, local string }

// NewNamePool creates an empty pool.
func NewNamePool() *NamePool {
	return &NamePool{index: make(map[nameKey]int32)}
}

// Intern returns the pool index for the name, adding it if absent. The
// prefix of the first interning wins (prefixes are informational).
func (p *NamePool) Intern(q xdm.QName) int32 {
	k := nameKey{q.Space, q.Local}
	if i, ok := p.index[k]; ok {
		return i
	}
	i := int32(len(p.names))
	p.names = append(p.names, q)
	p.index[k] = i
	return i
}

// Lookup returns the index of a name without interning, or -1.
func (p *NamePool) Lookup(q xdm.QName) int32 {
	if i, ok := p.index[nameKey{q.Space, q.Local}]; ok {
		return i
	}
	return -1
}

// Name returns the QName at index i.
func (p *NamePool) Name(i int32) xdm.QName { return p.names[i] }

// Len returns the number of distinct names in the pool.
func (p *NamePool) Len() int { return len(p.names) }

// TextPool deduplicates text/attribute values when enabled; when disabled it
// is a nil pointer and values are stored verbatim.
type TextPool struct {
	index map[string]string
}

// NewTextPool creates an empty text pool.
func NewTextPool() *TextPool { return &TextPool{index: make(map[string]string)} }

// Intern returns a canonical copy of s, deduplicating repeated values.
func (p *TextPool) Intern(s string) string {
	if p == nil {
		return s
	}
	if c, ok := p.index[s]; ok {
		return c
	}
	p.index[s] = s
	return s
}

// Len returns the number of distinct strings in the pool (0 for nil).
func (p *TextPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.index)
}
