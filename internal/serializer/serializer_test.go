package serializer

import (
	"strings"
	"testing"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

func elemDoc(t *testing.T, build func(b *store.Builder)) xdm.Node {
	t.Helper()
	b := store.NewBuilder(store.BuilderOptions{})
	build(b)
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc.RootNode()
}

func TestSerializeBasics(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("a"))
		if err := b.Attr(xdm.LocalName("x"), "1"); err != nil {
			t.Fatal(err)
		}
		b.StartElement(xdm.LocalName("b"))
		b.Text("hello")
		b.EndElement()
		b.StartElement(xdm.LocalName("empty"))
		b.EndElement()
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	want := `<a x="1"><b>hello</b><empty/></a>`
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestEscaping(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("a"))
		if err := b.Attr(xdm.LocalName("q"), `he said "5 < 6 & 7 > 2"`); err != nil {
			t.Fatal(err)
		}
		b.Text(`text with < & >`)
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `q="he said &quot;5 &lt; 6 &amp; 7 &gt; 2&quot;"`) {
		t.Errorf("attribute escaping: %q", out)
	}
	if !strings.Contains(out, `text with &lt; &amp; &gt;`) {
		t.Errorf("text escaping: %q", out)
	}
}

func TestSequenceSerialization(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("e"))
		b.EndElement()
	})
	// Adjacent atomics joined by a space; nodes break the run.
	out, err := SequenceToString(xdm.Sequence{
		xdm.NewInteger(1), xdm.NewInteger(2), n, xdm.NewString("x"), xdm.NewString("y"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "1 2<e/>x y" {
		t.Errorf("sequence output = %q", out)
	}
}

func TestNamespaceSerialization(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.Name("urn:d", "root"))
		b.StartElement(xdm.Name("urn:d", "child"))
		b.EndElement()
		b.StartElement(xdm.Name("urn:other", "foreign"))
		b.EndElement()
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	// The default namespace is claimed once; the foreign element re-binds.
	if !strings.HasPrefix(out, `<root xmlns="urn:d">`) {
		t.Errorf("default ns binding: %q", out)
	}
	if strings.Count(out, `xmlns="urn:d"`) != 1 {
		t.Errorf("default ns declared once: %q", out)
	}
	if !strings.Contains(out, `xmlns="urn:other"`) && !strings.Contains(out, `xmlns:`) {
		t.Errorf("foreign element needs a binding: %q", out)
	}
}

func TestPrefixedAttributeNamespace(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("a"))
		if err := b.Attr(xdm.QName{Space: "urn:x", Local: "attr", Prefix: "x"}, "v"); err != nil {
			t.Fatal(err)
		}
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	// Attributes cannot use the default namespace: a prefix must appear.
	if !strings.Contains(out, `xmlns:x="urn:x"`) || !strings.Contains(out, `x:attr="v"`) {
		t.Errorf("prefixed attribute: %q", out)
	}
}

func TestCommentPIDocSerialization(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartDocument()
		b.StartElement(xdm.LocalName("r"))
		b.Comment(" note ")
		b.PI("go", "fmt")
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	if out != `<r><!-- note --><?go fmt?></r>` {
		t.Errorf("got %q", out)
	}
}

func TestIndent(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("a"))
		b.StartElement(xdm.LocalName("b"))
		b.Text("x")
		b.EndElement()
		b.EndElement()
	})
	var sb strings.Builder
	s := New(&sb, Options{Indent: "  ", OmitXMLDecl: true})
	if err := s.Sequence(xdm.Sequence{n}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "\n  <b>x</b>\n") {
		t.Errorf("indented output = %q", out)
	}
}

func TestXMLDecl(t *testing.T) {
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("a"))
		b.EndElement()
	})
	var sb strings.Builder
	if err := New(&sb, Options{}).Sequence(xdm.Sequence{n}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), `<?xml version="1.0"`) {
		t.Errorf("missing XML declaration: %q", sb.String())
	}
}

func TestPrefixCollisionGetsFreshPrefix(t *testing.T) {
	// Two different URIs whose hinted prefixes collide: the second must get
	// a generated prefix, not silently reuse the first binding.
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.LocalName("r"))
		if err := b.Attr(xdm.QName{Space: "urn:one", Local: "a", Prefix: "p"}, "1"); err != nil {
			t.Fatal(err)
		}
		if err := b.Attr(xdm.QName{Space: "urn:two", Local: "b", Prefix: "p"}, "2"); err != nil {
			t.Fatal(err)
		}
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `xmlns:p="urn:one"`) {
		t.Errorf("first hint should win: %q", out)
	}
	if !strings.Contains(out, `="urn:two"`) {
		t.Errorf("second URI must be bound: %q", out)
	}
	if strings.Count(out, `xmlns:p=`) != 1 {
		t.Errorf("prefix p bound twice: %q", out)
	}
}

func TestDefaultNamespaceUndeclare(t *testing.T) {
	// A no-namespace child under a default-namespaced parent needs
	// xmlns="" to round-trip.
	n := elemDoc(t, func(b *store.Builder) {
		b.StartElement(xdm.Name("urn:d", "outer"))
		b.StartElement(xdm.LocalName("inner"))
		b.EndElement()
		b.EndElement()
	})
	out, err := NodeToString(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `<inner xmlns=""`) && !strings.Contains(out, `xmlns=""`) {
		t.Errorf("default namespace must be undeclared for inner: %q", out)
	}
}
