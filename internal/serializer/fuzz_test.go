package serializer_test

import (
	"os"
	"path/filepath"
	"testing"

	"xqgo/internal/serializer"
	"xqgo/internal/xmlparse"
)

// FuzzSerialize round-trips every parseable input: serialize the parsed
// document, then re-parse the serializer's output. The serializer must never
// panic, and whatever it emits for a well-formed document must itself be
// well-formed XML describing a tree of the same size.
func FuzzSerialize(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "seed_*.xml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		`<a/>`,
		`<a k="&quot;&lt;">x &amp; y</a>`,
		`<a xmlns="urn:d" xmlns:p="urn:p"><p:b p:k="v"/></a>`,
		`<a><!--c--><?pi d?><![CDATA[<raw>]]></a>`,
		"<a>\t\n mixed <b/> tail </a>",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<20 {
			t.Skip("oversized input")
		}
		doc, err := xmlparse.ParseString(src, xmlparse.Options{URI: "fuzz:doc"})
		if err != nil {
			t.Skip("not well-formed")
		}
		out, err := serializer.NodeToString(doc.RootNode())
		if err != nil {
			t.Fatalf("serializing a parsed document: %v", err)
		}
		re, err := xmlparse.ParseString(out, xmlparse.Options{URI: "fuzz:redoc"})
		if err != nil {
			t.Fatalf("serializer emitted ill-formed XML: %v\ninput: %q\noutput: %q", err, src, out)
		}
		// A second round trip must be a fixed point: once through the
		// serializer, the representation is canonical.
		out2, err := serializer.NodeToString(re.RootNode())
		if err != nil {
			t.Fatal(err)
		}
		if out != out2 {
			t.Fatalf("round trip is not stable:\nfirst:  %q\nsecond: %q", out, out2)
		}
	})
}
