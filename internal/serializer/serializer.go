// Package serializer writes XDM instances back to XML text (the "serialize"
// edge of the data-model life cycle). Sequences are serialized by the
// XML-output rules: adjacent atomic values are joined with single spaces,
// nodes are written as markup.
package serializer

import (
	"fmt"
	"io"
	"strings"

	"xqgo/internal/xdm"
)

// Options configure serialization.
type Options struct {
	// Indent, when non-empty, pretty-prints element content using the given
	// unit (e.g. "  ").
	Indent string
	// OmitXMLDecl suppresses the <?xml ...?> declaration.
	OmitXMLDecl bool
}

// Serializer writes items to an io.Writer.
type Serializer struct {
	w    io.Writer
	opts Options
	err  error
}

// New creates a Serializer.
func New(w io.Writer, opts Options) *Serializer { return &Serializer{w: w, opts: opts} }

// SequenceToString renders a sequence with default options.
func SequenceToString(seq xdm.Sequence) (string, error) {
	var b strings.Builder
	s := New(&b, Options{OmitXMLDecl: true})
	if err := s.Sequence(seq); err != nil {
		return "", err
	}
	return b.String(), nil
}

// NodeToString renders one node with default options.
func NodeToString(n xdm.Node) (string, error) {
	return SequenceToString(xdm.Sequence{n})
}

// Sequence serializes a whole sequence.
func (s *Serializer) Sequence(seq xdm.Sequence) error {
	if !s.opts.OmitXMLDecl {
		s.str(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	}
	prevAtomic := false
	for _, it := range seq {
		if n, ok := it.(xdm.Node); ok {
			s.node(n, nil, 0)
			prevAtomic = false
			continue
		}
		if prevAtomic {
			s.str(" ")
		}
		s.text(it.(xdm.Atomic).Lexical())
		prevAtomic = true
	}
	return s.err
}

// nsBinding is one link of the in-scope prefix->URI environment; nil is the
// empty environment.
type nsBinding struct {
	parent *nsBinding
	prefix string
	uri    string
}

func (e *nsBinding) lookup(prefix string) (string, bool) {
	for p := e; p != nil; p = p.parent {
		if p.prefix == prefix {
			return p.uri, true
		}
	}
	if prefix == "xml" {
		return "http://www.w3.org/XML/1998/namespace", true
	}
	return "", false
}

func (e *nsBinding) prefixFor(uri string) (string, bool) {
	seen := map[string]bool{}
	for p := e; p != nil; p = p.parent {
		if !seen[p.prefix] {
			seen[p.prefix] = true
			if p.uri == uri {
				return p.prefix, true
			}
		}
	}
	return "", false
}

func (s *Serializer) node(n xdm.Node, env *nsBinding, depth int) {
	switch n.Kind() {
	case xdm.DocumentNode:
		for _, c := range n.ChildrenOf() {
			s.node(c, env, depth)
		}
	case xdm.ElementNode:
		s.element(n, env, depth)
	case xdm.AttributeNode:
		// A standalone attribute in output is a serialization error in the
		// spec; we render name="value" as a pragmatic diagnostic form.
		s.str(n.NodeName().Local + `="`)
		s.str(escapeAttr(n.StringValue()))
		s.str(`"`)
	case xdm.TextNode:
		s.text(n.StringValue())
	case xdm.CommentNode:
		s.str("<!--" + n.StringValue() + "-->")
	case xdm.PINode:
		s.str("<?" + n.NodeName().Local + " " + n.StringValue() + "?>")
	}
}

func (s *Serializer) element(n xdm.Node, env *nsBinding, depth int) {
	name := n.NodeName()
	var decls []string // rendered xmlns attributes

	bind := func(prefix, uri string) {
		env = &nsBinding{parent: env, prefix: prefix, uri: uri}
		if prefix == "" {
			decls = append(decls, fmt.Sprintf(` xmlns="%s"`, escapeAttr(uri)))
		} else {
			decls = append(decls, fmt.Sprintf(` xmlns:%s="%s"`, prefix, escapeAttr(uri)))
		}
	}

	tag := name.Local
	if name.Space != "" {
		if p, ok := env.prefixFor(name.Space); ok {
			if p != "" {
				tag = p + ":" + name.Local
			}
		} else if _, bound := env.lookup(""); !bound {
			bind("", name.Space) // claim the default namespace
		} else {
			p := s.freshPrefix(env, name.Prefix)
			bind(p, name.Space)
			tag = p + ":" + name.Local
		}
	} else if uri, bound := env.lookup(""); bound && uri != "" {
		bind("", "") // undeclare the default namespace
	}

	var attrStrs []string
	for _, a := range n.AttributesOf() {
		an := a.NodeName()
		aname := an.Local
		if an.Space != "" {
			p, ok := env.prefixFor(an.Space)
			if !ok || p == "" {
				p = s.freshPrefix(env, an.Prefix)
				bind(p, an.Space)
			}
			aname = p + ":" + an.Local
		}
		attrStrs = append(attrStrs, fmt.Sprintf(` %s="%s"`, aname, escapeAttr(a.StringValue())))
	}

	s.indent(depth)
	s.str("<" + tag)
	for _, d := range decls {
		s.str(d)
	}
	for _, a := range attrStrs {
		s.str(a)
	}
	children := n.ChildrenOf()
	if len(children) == 0 {
		s.str("/>")
		s.nl()
		return
	}
	s.str(">")
	onlyText := true
	for _, c := range children {
		if c.Kind() != xdm.TextNode {
			onlyText = false
			break
		}
	}
	if !onlyText {
		s.nl()
	}
	for _, c := range children {
		s.node(c, env, depth+1)
	}
	if !onlyText {
		s.indent(depth)
	}
	s.str("</" + tag + ">")
	s.nl()
}

func (s *Serializer) freshPrefix(env *nsBinding, hint string) string {
	if hint != "" && hint != "xml" && hint != "xmlns" {
		if _, taken := env.lookup(hint); !taken {
			return hint
		}
	}
	for i := 1; ; i++ {
		p := fmt.Sprintf("ns%d", i)
		if _, taken := env.lookup(p); !taken {
			return p
		}
	}
}

func (s *Serializer) indent(depth int) {
	if s.opts.Indent != "" {
		s.str(strings.Repeat(s.opts.Indent, depth))
	}
}

func (s *Serializer) nl() {
	if s.opts.Indent != "" {
		s.str("\n")
	}
}

func (s *Serializer) str(t string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, t)
	}
}

func (s *Serializer) text(t string) { s.str(escapeText(t)) }

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;",
	"\n", "&#10;", "\t", "&#9;",
)

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
