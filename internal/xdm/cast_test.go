package xdm

import (
	"testing"
	"time"
)

func TestCastTable(t *testing.T) {
	cases := []struct {
		in   Atomic
		to   TypeCode
		want string // expected lexical of result; "" with fail=true means error
		fail bool
	}{
		// to string / untyped
		{NewInteger(42), TString, "42", false},
		{True, TString, "true", false},
		{NewDouble(1.5), TUntyped, "1.5", false},
		// to boolean
		{NewString("true"), TBoolean, "true", false},
		{NewString("1"), TBoolean, "true", false},
		{NewString("0"), TBoolean, "false", false},
		{NewString("yes"), TBoolean, "", true},
		{NewInteger(0), TBoolean, "false", false},
		{NewInteger(3), TBoolean, "true", false},
		{NewDouble(0), TBoolean, "false", false},
		// to numerics
		{NewString("42"), TInteger, "42", false},
		{NewString(" 42 "), TInteger, "42", false},
		{NewString("4.5"), TInteger, "", true},
		{NewString("4.5"), TDecimal, "4.5", false},
		{NewString("4.5e1"), TDouble, "45", false},
		{NewString("INF"), TDouble, "INF", false},
		{NewString("INF"), TDecimal, "", true},
		{NewDouble(3.99), TInteger, "3", false},
		{NewDecimal(99, 1), TInteger, "9", false},
		{True, TInteger, "1", false},
		{False, TDouble, "0", false},
		{NewUntyped("17"), TInteger, "17", false},
		// to anyURI
		{NewString(" http://x "), TAnyURI, "http://x", false},
		{NewInteger(1), TAnyURI, "", true},
		// to QName
		{NewString("p:local"), TQName, "p:local", false},
		// calendar
		{NewString("2003-08-19"), TDate, "2003-08-19", false},
		{NewString("not-a-date"), TDate, "", true},
		{NewString("2003-08-19T10:00:00"), TDateTime, "2003-08-19T10:00:00", false},
		{NewString("10:30:00"), TTime, "10:30:00", false},
		// durations
		{NewString("P1Y2M"), TYearMonthDuration, "P1Y2M", false},
		{NewString("P1DT2H"), TDayTimeDuration, "P1DT2H", false},
		{NewString("P1Y2M"), TDayTimeDuration, "", true},
		{NewString("P1DT2H"), TYearMonthDuration, "", true},
		{NewString("P1Y1DT1H"), TDuration, "P1Y1DT1H", false},
		{NewString("PX"), TDuration, "", true},
		// same type is identity
		{NewInteger(5), TInteger, "5", false},
	}
	for _, c := range cases {
		got, err := Cast(c.in, c.to)
		if c.fail {
			if err == nil {
				t.Errorf("Cast(%v (%v), %v) should fail, got %v", c.in.Lexical(), c.in.T, c.to, got.Lexical())
			}
			continue
		}
		if err != nil {
			t.Errorf("Cast(%v (%v), %v): %v", c.in.Lexical(), c.in.T, c.to, err)
			continue
		}
		if got.Lexical() != c.want {
			t.Errorf("Cast(%v, %v) = %q, want %q", c.in.Lexical(), c.to, got.Lexical(), c.want)
		}
		if got.T.BaseType() != c.to.BaseType() && c.to != TAnyAtomic {
			t.Errorf("Cast(%v, %v) result has type %v", c.in.Lexical(), c.to, got.T)
		}
	}
}

func TestCastable(t *testing.T) {
	if !Castable(NewString("42"), TInteger) {
		t.Error(`"42" castable as xs:integer`)
	}
	if Castable(NewString("x42"), TInteger) {
		t.Error(`"x42" not castable as xs:integer`)
	}
	// The paper's example: (castable) guards a cast.
	if !Castable(NewUntyped("2"), TInteger) {
		t.Error("untyped 2 castable as integer")
	}
}

func TestCastDateTimeToDateAndTime(t *testing.T) {
	dt, err := Cast(NewString("2004-09-14T10:30:45"), TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Cast(dt, TDate)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lexical() != "2004-09-14" {
		t.Errorf("dateTime->date = %q", d.Lexical())
	}
	tm, err := Cast(dt, TTime)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Lexical() != "10:30:45" {
		t.Errorf("dateTime->time = %q", tm.Lexical())
	}
	back, err := Cast(d, TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	if time.Unix(0, back.I).UTC().Hour() != 0 {
		t.Error("date->dateTime should be midnight")
	}
}

func TestPromote(t *testing.T) {
	cases := []struct{ a, b, want TypeCode }{
		{TInteger, TInteger, TInteger},
		{TInteger, TDecimal, TDecimal},
		{TDecimal, TFloat, TFloat},
		{TFloat, TDouble, TDouble},
		{TInteger, TDouble, TDouble},
		{TDouble, TInteger, TDouble},
		{TAnyURI, TString, TString},
		{TString, TAnyURI, TString},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); got != c.want {
			t.Errorf("Promote(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDurationParsing(t *testing.T) {
	cases := []struct {
		in     string
		months int64
		ns     int64
		fail   bool
	}{
		{"P1Y", 12, 0, false},
		{"P1Y6M", 18, 0, false},
		{"-P2M", -2, 0, false},
		{"PT1H30M", 0, int64(90 * time.Minute), false},
		{"P1DT1S", 0, int64(24*time.Hour + time.Second), false},
		{"PT0.5S", 0, int64(500 * time.Millisecond), false},
		{"P", 0, 0, true},
		{"1Y", 0, 0, true},
		{"PY", 0, 0, true},
	}
	for _, c := range cases {
		m, ns, err := parseDurationLexical(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("parseDuration(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDuration(%q): %v", c.in, err)
			continue
		}
		if m != c.months || ns != c.ns {
			t.Errorf("parseDuration(%q) = %d months %d ns, want %d, %d", c.in, m, ns, c.months, c.ns)
		}
	}
}

func TestGregorianCasts(t *testing.T) {
	// Gregorian types accept lexical strings and extract from dates.
	g, err := Cast(NewString("2004-09"), TGYearMonth)
	if err != nil || g.Lexical() != "2004-09" {
		t.Errorf("gYearMonth = %v, %v", g.Lexical(), err)
	}
	d, _ := Cast(NewString("2004-09-14"), TDate)
	gy, err := Cast(d, TGYear)
	if err != nil || gy.T != TGYear {
		t.Errorf("date->gYear: %v %v", gy, err)
	}
	if _, err := Cast(NewInteger(1), TGMonth); err == nil {
		t.Error("integer to gMonth must fail")
	}
}

func TestBinaryCasts(t *testing.T) {
	h, err := Cast(NewString("CAFE"), THexBinary)
	if err != nil || h.T != THexBinary {
		t.Fatal(err)
	}
	b64, err := Cast(h, TBase64Binary)
	if err != nil || b64.T != TBase64Binary {
		t.Fatal(err)
	}
	if eq, err := ValueCompare(OpEq, h, h); err != nil || !eq {
		t.Error("hexBinary eq itself")
	}
	if _, err := ValueCompare(OpLt, h, h); err == nil {
		t.Error("hexBinary supports only eq/ne")
	}
}
