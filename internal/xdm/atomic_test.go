package xdm

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

func TestLexicalForms(t *testing.T) {
	cases := []struct {
		val  Atomic
		want string
	}{
		{NewString("hello"), "hello"},
		{NewUntyped("u"), "u"},
		{True, "true"},
		{False, "false"},
		{NewInteger(42), "42"},
		{NewInteger(-7), "-7"},
		{NewDecimal(12345, 2), "123.45"},
		{NewDecimal(-50, 1), "-5"},
		{NewDecimal(5, 0), "5"},
		{NewDecimal(5, 3), "0.005"},
		{NewDouble(1.5), "1.5"},
		{NewDouble(3), "3"},
		{NewDouble(math.Inf(1)), "INF"},
		{NewDouble(math.Inf(-1)), "-INF"},
		{NewDouble(math.NaN()), "NaN"},
		{NewAnyURI("http://x"), "http://x"},
		{NewQName(QName{Prefix: "p", Local: "n"}), "p:n"},
		{NewYearMonthDuration(14), "P1Y2M"},
		{NewYearMonthDuration(0), "P0M"},
		{NewYearMonthDuration(-25), "-P2Y1M"},
		{NewDayTimeDuration(90 * time.Minute), "PT1H30M"},
		{NewDayTimeDuration(0), "PT0S"},
		{NewDayTimeDuration(-26 * time.Hour), "-P1DT2H"},
		{NewDayTimeDuration(36*time.Hour + 15*time.Second), "P1DT12H15S"},
	}
	for _, c := range cases {
		if got := c.val.Lexical(); got != c.want {
			t.Errorf("Lexical(%v %v) = %q, want %q", c.val.T, c.val, got, c.want)
		}
	}
}

func TestDateLexical(t *testing.T) {
	d, err := Cast(NewString("2003-08-19"), TDate)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lexical() != "2003-08-19" {
		t.Errorf("date keeps its lexical form: %q", d.Lexical())
	}
	dt, err := Cast(NewString("2003-08-19T10:30:00"), TDateTime)
	if err != nil {
		t.Fatal(err)
	}
	// Derived form after dropping the original lexical.
	dt.S = ""
	if got := dt.Lexical(); got != "2003-08-19T10:30:00" {
		t.Errorf("derived dateTime lexical = %q", got)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if NewInteger(7).AsFloat() != 7 {
		t.Error("integer AsFloat")
	}
	if NewDecimal(150, 1).AsFloat() != 15 {
		t.Error("decimal AsFloat")
	}
	if NewDecimal(159, 1).AsInt() != 15 {
		t.Error("decimal AsInt truncates")
	}
	if NewDouble(2.9).AsInt() != 2 {
		t.Error("double AsInt truncates")
	}
	if NewDecimalFloat(2.5).AsFloat() != 2.5 {
		t.Error("float-backed decimal AsFloat")
	}
}

func TestIsNodeMarkers(t *testing.T) {
	if NewInteger(1).IsNode() {
		t.Error("atomic is not a node")
	}
}

// Property: ParseDecimal of a formatted decimal round-trips the value.
func TestDecimalRoundTripQuick(t *testing.T) {
	f := func(units int32, scale uint8) bool {
		s := scale % 6
		a := NewDecimal(int64(units), s)
		parsed, err := ParseDecimal(a.Lexical())
		if err != nil {
			return false
		}
		return parsed.AsFloat() == a.AsFloat()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer lexical form parses back to the same integer.
func TestIntegerLexicalQuick(t *testing.T) {
	f := func(v int64) bool {
		a, err := ParseNumericLexical(NewInteger(v).Lexical(), TInteger)
		return err == nil && a.I == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double lexical form parses back to the same double (except NaN).
func TestDoubleLexicalQuick(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		a, err := ParseNumericLexical(NewDouble(v).Lexical(), TDouble)
		if err != nil {
			return false
		}
		// Lexical formatting is shortest-roundtrip via strconv.
		want, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'G', -1, 64), 64)
		return a.F == v || a.F == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDecimalErrors(t *testing.T) {
	for _, bad := range []string{"", ".", "1.2.3", "abc", "1e5", "--3", "+-3"} {
		if _, err := ParseDecimal(bad); err == nil {
			t.Errorf("ParseDecimal(%q) should fail", bad)
		}
	}
	for _, good := range []struct {
		in   string
		want float64
	}{
		{"1.50", 1.5}, {"+3", 3}, {"-0.25", -0.25}, {".5", 0.5}, {"7.", 7},
		{"123456789012345678901234567890", 1.2345678901234568e29},
	} {
		a, err := ParseDecimal(good.in)
		if err != nil {
			t.Errorf("ParseDecimal(%q): %v", good.in, err)
			continue
		}
		if math.Abs(a.AsFloat()-good.want) > 1e-9*math.Abs(good.want) {
			t.Errorf("ParseDecimal(%q) = %v, want %v", good.in, a.AsFloat(), good.want)
		}
	}
}
