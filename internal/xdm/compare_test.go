package xdm

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperValueComparisons covers the "Value and general comparisons"
// slide of the paper (adapted for atomized operands):
//
//	<a>42</a> eq "42"    true      (untyped vs string: string comparison)
//	<a>42</a> = 42       true      (untyped vs numeric: cast to double)
//	<a>baz</a> eq 42     error
func TestPaperValueComparisons(t *testing.T) {
	u42 := NewUntyped("42")

	if ok, err := ValueCompare(OpEq, u42, NewString("42")); err != nil || !ok {
		t.Errorf(`untyped "42" eq "42" = %v, %v; want true`, ok, err)
	}
	// Value comparison between untyped and integer treats untyped as a
	// string — incomparable with a number.
	if _, err := ValueCompare(OpEq, u42, NewInteger(42)); err == nil {
		t.Error(`untyped "42" eq 42 should be a type error under value comparison`)
	}
	// General comparison casts untyped to double: true.
	if ok, err := GeneralCompareItems(OpEq, u42, NewInteger(42)); err != nil || !ok {
		t.Errorf(`untyped "42" = 42 under general comparison = %v, %v; want true`, ok, err)
	}
	if ok, err := GeneralCompareItems(OpEq, u42, NewDouble(42.0)); err != nil || !ok {
		t.Errorf(`untyped "42" = 42.0 = %v, %v; want true`, ok, err)
	}
	// <a>baz</a> = 42: cast of "baz" to double fails -> type error.
	if _, err := GeneralCompareItems(OpEq, NewUntyped("baz"), NewInteger(42)); err == nil {
		t.Error(`untyped "baz" = 42 should raise an error`)
	}
	// untyped vs untyped compares as strings.
	if ok, _ := GeneralCompareItems(OpEq, NewUntyped("007"), NewUntyped("7")); ok {
		t.Error(`untyped "007" = untyped "7" compares as strings: false`)
	}
}

func TestNumericComparisons(t *testing.T) {
	cases := []struct {
		op   CompOp
		a, b Atomic
		want bool
	}{
		{OpLt, NewInteger(1), NewInteger(2), true},
		{OpLt, NewInteger(2), NewInteger(1), false},
		{OpLe, NewInteger(2), NewInteger(2), true},
		{OpGt, NewDouble(2.5), NewInteger(2), true},
		{OpGe, NewDecimal(25, 1), NewDouble(2.5), true},
		{OpNe, NewInteger(1), NewDouble(1), false},
		{OpEq, NewDecimal(100, 2), NewInteger(1), true},
		{OpEq, NewFloat(0.5), NewDouble(0.5), true},
	}
	for _, c := range cases {
		got, err := ValueCompare(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%v %v %v: %v", c.a.Lexical(), c.op, c.b.Lexical(), err)
			continue
		}
		if got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a.Lexical(), c.op, c.b.Lexical(), got, c.want)
		}
	}
}

func TestNaNComparisons(t *testing.T) {
	nan := NewDouble(math.NaN())
	for _, op := range []CompOp{OpEq, OpLt, OpLe, OpGt, OpGe} {
		if ok, err := ValueCompare(op, nan, NewDouble(1)); err != nil || ok {
			t.Errorf("NaN %v 1 = %v, %v; want false", op, ok, err)
		}
	}
	if ok, err := ValueCompare(OpNe, nan, nan); err != nil || !ok {
		t.Errorf("NaN ne NaN = %v, %v; want true", ok, err)
	}
}

func TestStringAndBooleanComparisons(t *testing.T) {
	if ok, _ := ValueCompare(OpLt, NewString("abc"), NewString("abd")); !ok {
		t.Error(`"abc" lt "abd"`)
	}
	if ok, _ := ValueCompare(OpLt, False, True); !ok {
		t.Error("false lt true")
	}
	if ok, _ := ValueCompare(OpEq, NewAnyURI("u"), NewString("u")); !ok {
		t.Error("anyURI promotes to string for comparison")
	}
}

func TestQNameComparison(t *testing.T) {
	a := NewQName(Name("urn:x", "n"))
	b := NewQName(QName{Space: "urn:x", Local: "n", Prefix: "other"})
	if ok, err := ValueCompare(OpEq, a, b); err != nil || !ok {
		t.Errorf("QName eq ignoring prefix = %v, %v", ok, err)
	}
	if _, err := ValueCompare(OpLt, a, b); err == nil {
		t.Error("QName lt must be a type error")
	}
}

func TestDurationComparisons(t *testing.T) {
	if ok, _ := ValueCompare(OpLt, NewYearMonthDuration(11), NewYearMonthDuration(12)); !ok {
		t.Error("P11M lt P1Y")
	}
	if ok, _ := ValueCompare(OpLt, NewDayTimeDuration(1e9), NewDayTimeDuration(2e9)); !ok {
		t.Error("PT1S lt PT2S")
	}
	ym, _ := Cast(NewString("P12M"), TDuration)
	ym2, _ := Cast(NewString("P1Y"), TDuration)
	if ok, err := ValueCompare(OpEq, ym, ym2); err != nil || !ok {
		t.Errorf("P12M eq P1Y as xs:duration = %v, %v", ok, err)
	}
	if _, err := ValueCompare(OpLt, ym, ym2); err == nil {
		t.Error("xs:duration supports only eq/ne")
	}
}

func TestIncomparable(t *testing.T) {
	if _, err := ValueCompare(OpEq, NewInteger(1), True); err == nil {
		t.Error("integer vs boolean must be a type error")
	}
	if _, err := ValueCompare(OpLt, NewString("a"), NewInteger(1)); err == nil {
		t.Error("string vs integer must be a type error")
	}
}

func TestNegateOp(t *testing.T) {
	pairs := map[CompOp]CompOp{
		OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpGe: OpLt, OpGt: OpLe, OpLe: OpGt,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
	}
}

// Property: for comparable integers, exactly one of lt/eq/gt holds, and
// Negate gives the complement.
func TestComparisonTrichotomyQuick(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInteger(int64(a)), NewInteger(int64(b))
		lt, _ := ValueCompare(OpLt, x, y)
		eq, _ := ValueCompare(OpEq, x, y)
		gt, _ := ValueCompare(OpGt, x, y)
		count := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				count++
			}
		}
		ge, _ := ValueCompare(OpGe, x, y)
		return count == 1 && ge == !lt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string value comparison agrees with Go string ordering.
func TestStringCompareQuick(t *testing.T) {
	f := func(a, b string) bool {
		lt, err := ValueCompare(OpLt, NewString(a), NewString(b))
		return err == nil && lt == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeepEqualAtomic(t *testing.T) {
	if !DeepEqualAtomic(NewDouble(math.NaN()), NewDouble(math.NaN())) {
		t.Error("deep-equal treats NaN = NaN")
	}
	if !DeepEqualAtomic(NewInteger(1), NewDouble(1)) {
		t.Error("deep-equal promotes numerics")
	}
	if DeepEqualAtomic(NewString("a"), NewInteger(1)) {
		t.Error("incomparable values are not deep-equal")
	}
}
