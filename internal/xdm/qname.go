package xdm

import "strings"

// QName is an expanded XML name: namespace URI plus local part. The prefix is
// retained only for error messages and serialization; it does not participate
// in equality, matching the XQuery rule that names compare by (URI, local).
type QName struct {
	Space  string // namespace URI; empty for no namespace
	Local  string
	Prefix string // original lexical prefix, informational only
}

// Name constructs a QName in a namespace.
func Name(space, local string) QName { return QName{Space: space, Local: local} }

// LocalName constructs a QName with no namespace.
func LocalName(local string) QName { return QName{Local: local} }

// Equal reports whether two names have the same URI and local part.
func (q QName) Equal(o QName) bool { return q.Space == o.Space && q.Local == o.Local }

// IsZero reports whether the name is entirely empty.
func (q QName) IsZero() bool { return q.Space == "" && q.Local == "" }

// String renders the name with its prefix if one was recorded, otherwise in
// Clark notation "{uri}local" when a URI is present.
func (q QName) String() string {
	switch {
	case q.Prefix != "":
		return q.Prefix + ":" + q.Local
	case q.Space != "":
		return "{" + q.Space + "}" + q.Local
	default:
		return q.Local
	}
}

// Clark renders the name in Clark notation, the canonical unambiguous form.
func (q QName) Clark() string {
	if q.Space == "" {
		return q.Local
	}
	return "{" + q.Space + "}" + q.Local
}

// ParseClark parses Clark notation "{uri}local" or a bare local name.
func ParseClark(s string) QName {
	if strings.HasPrefix(s, "{") {
		if i := strings.IndexByte(s, '}'); i >= 0 {
			return QName{Space: s[1:i], Local: s[i+1:]}
		}
	}
	return QName{Local: s}
}

// SplitLexical splits a lexical QName "p:local" into prefix and local part.
// A name with no colon yields an empty prefix.
func SplitLexical(s string) (prefix, local string) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}
