package xdm

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// Atomic is an atomic value: a dynamic type code plus a payload. The payload
// field used depends on the type:
//
//	B — xs:boolean
//	I — xs:integer; the calendar types (epoch in ns, with a timezone flag in F);
//	    xdt:yearMonthDuration (months); xdt:dayTimeDuration (ns)
//	F — xs:double, xs:float, xs:decimal (see note); xs:duration seconds part
//	S — xs:string, xs:untypedAtomic, xs:anyURI, hex/base64 binary (raw bytes),
//	    and the original lexical form of calendar values
//	Q — xs:QName / xs:NOTATION
//
// Note on xs:decimal: values are kept as (I int64, scaled) when they fit and
// fall back to float64 otherwise; this preserves exact arithmetic for the
// money-style decimals that appear in practice while keeping the value one
// machine word. Dec reports whether I holds a scaled decimal.
type Atomic struct {
	T TypeCode
	B bool
	// Dec marks a decimal held exactly: value = I / 10^Scale.
	Dec   bool
	Scale uint8
	I     int64
	F     float64
	S     string
	Q     QName
}

// Item is a member of an XDM sequence: either an Atomic value or a Node.
type Item interface {
	// IsNode distinguishes the two kinds of item without reflection.
	IsNode() bool
}

// IsNode reports that an atomic value is not a node.
func (Atomic) IsNode() bool { return false }

// Sequence is a materialized XDM sequence. Nested sequences never occur; the
// data model flattens them on construction.
type Sequence []Item

// --- constructors ---

// NewString returns an xs:string value.
func NewString(s string) Atomic { return Atomic{T: TString, S: s} }

// NewUntyped returns an xs:untypedAtomic value (the typed value of
// schema-less nodes).
func NewUntyped(s string) Atomic { return Atomic{T: TUntyped, S: s} }

// NewBoolean returns an xs:boolean value.
func NewBoolean(b bool) Atomic { return Atomic{T: TBoolean, B: b} }

// True and False are the two boolean values.
var (
	True  = NewBoolean(true)
	False = NewBoolean(false)
)

// NewInteger returns an xs:integer value.
func NewInteger(i int64) Atomic { return Atomic{T: TInteger, I: i} }

// NewDouble returns an xs:double value.
func NewDouble(f float64) Atomic { return Atomic{T: TDouble, F: f} }

// NewFloat returns an xs:float value.
func NewFloat(f float64) Atomic { return Atomic{T: TFloat, F: float64(float32(f))} }

// NewDecimal returns an exact xs:decimal value i / 10^scale.
func NewDecimal(i int64, scale uint8) Atomic {
	return Atomic{T: TDecimal, Dec: true, I: i, Scale: scale}
}

// NewDecimalFloat returns an xs:decimal approximated by a float64, used when
// a computation leaves the exact int64-scaled range.
func NewDecimalFloat(f float64) Atomic { return Atomic{T: TDecimal, F: f} }

// NewAnyURI returns an xs:anyURI value.
func NewAnyURI(s string) Atomic { return Atomic{T: TAnyURI, S: s} }

// NewQName returns an xs:QName value.
func NewQName(q QName) Atomic { return Atomic{T: TQName, Q: q} }

// NewDateTime returns an xs:dateTime from a time.Time; lex is the original
// lexical form (may be empty, in which case one is derived on demand).
func NewDateTime(t time.Time, lex string) Atomic {
	return Atomic{T: TDateTime, I: t.UnixNano(), S: lex}
}

// NewDate returns an xs:date anchored at midnight UTC of the given day.
func NewDate(t time.Time, lex string) Atomic {
	return Atomic{T: TDate, I: t.UnixNano(), S: lex}
}

// NewTime returns an xs:time as nanoseconds since midnight.
func NewTime(ns int64, lex string) Atomic { return Atomic{T: TTime, I: ns, S: lex} }

// NewYearMonthDuration returns an xdt:yearMonthDuration of the given months.
func NewYearMonthDuration(months int64) Atomic {
	return Atomic{T: TYearMonthDuration, I: months}
}

// NewDayTimeDuration returns an xdt:dayTimeDuration of the given duration.
func NewDayTimeDuration(d time.Duration) Atomic {
	return Atomic{T: TDayTimeDuration, I: int64(d)}
}

// --- accessors ---

// AsFloat returns the numeric value as float64. Valid for numeric types.
func (a Atomic) AsFloat() float64 {
	switch a.T {
	case TInteger:
		return float64(a.I)
	case TDecimal:
		if a.Dec {
			return float64(a.I) / pow10f(a.Scale)
		}
		return a.F
	default:
		return a.F
	}
}

// AsInt returns the value as int64, truncating decimals/doubles toward zero.
func (a Atomic) AsInt() int64 {
	switch a.T {
	case TInteger:
		return a.I
	case TDecimal:
		if a.Dec {
			return a.I / pow10i(a.Scale)
		}
		return int64(a.F)
	default:
		return int64(a.F)
	}
}

func pow10f(n uint8) float64 {
	f := 1.0
	for ; n > 0; n-- {
		f *= 10
	}
	return f
}

func pow10i(n uint8) int64 {
	v := int64(1)
	for ; n > 0; n-- {
		v *= 10
	}
	return v
}

// Lexical returns the canonical lexical representation of the value, i.e.
// its fn:string() form.
func (a Atomic) Lexical() string {
	switch a.T {
	case TString, TUntyped, TAnyURI, THexBinary, TBase64Binary, TNotation:
		return a.S
	case TBoolean:
		if a.B {
			return "true"
		}
		return "false"
	case TInteger:
		return strconv.FormatInt(a.I, 10)
	case TDecimal:
		return a.decimalLexical()
	case TDouble, TFloat:
		return floatLexical(a.F, a.T == TFloat)
	case TQName:
		return a.Q.String()
	case TDateTime:
		if a.S != "" {
			return a.S
		}
		return time.Unix(0, a.I).UTC().Format("2006-01-02T15:04:05")
	case TDate:
		if a.S != "" {
			return a.S
		}
		return time.Unix(0, a.I).UTC().Format("2006-01-02")
	case TTime:
		if a.S != "" {
			return a.S
		}
		ns := a.I
		return time.Unix(0, ns).UTC().Format("15:04:05")
	case TGYearMonth, TGYear, TGMonthDay, TGDay, TGMonth:
		return a.S
	case TYearMonthDuration:
		return ymDurationLexical(a.I)
	case TDayTimeDuration:
		return dtDurationLexical(a.I)
	case TDuration:
		if a.S != "" {
			return a.S
		}
		return ymDurationLexical(a.I) // best effort
	default:
		return a.S
	}
}

func (a Atomic) decimalLexical() string {
	if !a.Dec {
		s := strconv.FormatFloat(a.F, 'f', -1, 64)
		return s
	}
	if a.Scale == 0 {
		return strconv.FormatInt(a.I, 10)
	}
	neg := a.I < 0
	u := a.I
	if neg {
		u = -u
	}
	s := strconv.FormatInt(u, 10)
	for len(s) <= int(a.Scale) {
		s = "0" + s
	}
	dot := len(s) - int(a.Scale)
	out := s[:dot] + "." + s[dot:]
	out = strings.TrimRight(out, "0")
	out = strings.TrimSuffix(out, ".")
	if out == "" || out == "-" {
		out = "0"
	}
	if neg {
		out = "-" + out
	}
	return out
}

// floatLexical renders double/float per the XQuery canonical-ish rules: NaN,
// INF, -INF; integral values without exponent when in a readable range.
func floatLexical(f float64, _ bool) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	s := strconv.FormatFloat(f, 'G', -1, 64)
	return strings.ReplaceAll(s, "E+0", "E") // tidy exponents like 1E+06
}

func ymDurationLexical(months int64) string {
	if months == 0 {
		return "P0M"
	}
	neg := months < 0
	if neg {
		months = -months
	}
	y, m := months/12, months%12
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteByte('P')
	if y > 0 {
		b.WriteString(strconv.FormatInt(y, 10))
		b.WriteByte('Y')
	}
	if m > 0 || y == 0 {
		b.WriteString(strconv.FormatInt(m, 10))
		b.WriteByte('M')
	}
	return b.String()
}

func dtDurationLexical(ns int64) string {
	if ns == 0 {
		return "PT0S"
	}
	neg := ns < 0
	if neg {
		ns = -ns
	}
	d := ns / int64(24*time.Hour)
	ns %= int64(24 * time.Hour)
	h := ns / int64(time.Hour)
	ns %= int64(time.Hour)
	m := ns / int64(time.Minute)
	ns %= int64(time.Minute)
	secs := float64(ns) / float64(time.Second)
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteByte('P')
	if d > 0 {
		b.WriteString(strconv.FormatInt(d, 10))
		b.WriteByte('D')
	}
	if h > 0 || m > 0 || secs > 0 {
		b.WriteByte('T')
		if h > 0 {
			b.WriteString(strconv.FormatInt(h, 10))
			b.WriteByte('H')
		}
		if m > 0 {
			b.WriteString(strconv.FormatInt(m, 10))
			b.WriteByte('M')
		}
		if secs > 0 {
			b.WriteString(strconv.FormatFloat(secs, 'f', -1, 64))
			b.WriteByte('S')
		}
	} else if d == 0 {
		b.WriteString("T0S")
	}
	return b.String()
}
