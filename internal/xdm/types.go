// Package xdm implements the XQuery 1.0 / XPath 2.0 Data Model (XDM): items,
// atomic values with their XML Schema types, sequences, and the node
// abstraction. It corresponds to the paper's "XML Data Model" layer: a data
// model instance is a flat sequence of items, where each item is either a
// node or an atomic value carrying its dynamic type.
package xdm

import "fmt"

// TypeCode identifies an atomic type. The 19 primitive XML Schema atomic
// types are present, plus xs:integer (the ubiquitous derived type),
// xs:untypedAtomic (values of schema-less data), and xs:anyAtomicType as the
// root of the atomic hierarchy.
type TypeCode uint8

const (
	TUntyped TypeCode = iota // xs:untypedAtomic
	TString
	TBoolean
	TDecimal
	TInteger // derived from xs:decimal
	TFloat
	TDouble
	TDuration
	TYearMonthDuration // xdt:yearMonthDuration
	TDayTimeDuration   // xdt:dayTimeDuration
	TDateTime
	TTime
	TDate
	TGYearMonth
	TGYear
	TGMonthDay
	TGDay
	TGMonth
	THexBinary
	TBase64Binary
	TAnyURI
	TQName
	TNotation
	TAnyAtomic // xs:anyAtomicType: matches every atomic value
	numTypes
)

var typeNames = [numTypes]string{
	TUntyped:           "xs:untypedAtomic",
	TString:            "xs:string",
	TBoolean:           "xs:boolean",
	TDecimal:           "xs:decimal",
	TInteger:           "xs:integer",
	TFloat:             "xs:float",
	TDouble:            "xs:double",
	TDuration:          "xs:duration",
	TYearMonthDuration: "xdt:yearMonthDuration",
	TDayTimeDuration:   "xdt:dayTimeDuration",
	TDateTime:          "xs:dateTime",
	TTime:              "xs:time",
	TDate:              "xs:date",
	TGYearMonth:        "xs:gYearMonth",
	TGYear:             "xs:gYear",
	TGMonthDay:         "xs:gMonthDay",
	TGDay:              "xs:gDay",
	TGMonth:            "xs:gMonth",
	THexBinary:         "xs:hexBinary",
	TBase64Binary:      "xs:base64Binary",
	TAnyURI:            "xs:anyURI",
	TQName:             "xs:QName",
	TNotation:          "xs:NOTATION",
	TAnyAtomic:         "xs:anyAtomicType",
}

// String returns the conventional prefixed name of the type, e.g. "xs:integer".
func (t TypeCode) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("xs:type(%d)", uint8(t))
}

// typesByName maps both "xs:integer" and bare "integer" spellings to codes.
var typesByName = func() map[string]TypeCode {
	m := make(map[string]TypeCode, 2*int(numTypes))
	for t := TypeCode(0); t < numTypes; t++ {
		name := typeNames[t]
		m[name] = t
		// Strip the "xs:" / "xdt:" prefix for unprefixed lookup.
		for i := 0; i < len(name); i++ {
			if name[i] == ':' {
				m[name[i+1:]] = t
				break
			}
		}
	}
	m["xdt:untypedAtomic"] = TUntyped
	// XQuery 1.0 hosts the duration subtypes in the xdt namespace, but later
	// drafts (and every practical query) spell them xs:; accept both so the
	// xs:yearMonthDuration("P1Y") constructor resolves.
	m["xs:yearMonthDuration"] = TYearMonthDuration
	m["xs:dayTimeDuration"] = TDayTimeDuration
	return m
}()

// TypeByName resolves a type name such as "xs:integer", "integer" or
// "xdt:untypedAtomic". The second result reports whether the name is known.
func TypeByName(name string) (TypeCode, bool) {
	t, ok := typesByName[name]
	return t, ok
}

// BaseType returns the primitive base of a derived atomic type
// (xs:integer -> xs:decimal, the duration subtypes -> xs:duration);
// primitive types return themselves.
func (t TypeCode) BaseType() TypeCode {
	switch t {
	case TInteger:
		return TDecimal
	case TYearMonthDuration, TDayTimeDuration:
		return TDuration
	default:
		return t
	}
}

// IsNumeric reports whether t is one of the four numeric types.
func (t TypeCode) IsNumeric() bool {
	switch t {
	case TDecimal, TInteger, TFloat, TDouble:
		return true
	}
	return false
}

// IsDuration reports whether t is xs:duration or one of its subtypes.
func (t TypeCode) IsDuration() bool {
	switch t {
	case TDuration, TYearMonthDuration, TDayTimeDuration:
		return true
	}
	return false
}

// IsCalendar reports whether t is one of the date/time/gregorian types.
func (t TypeCode) IsCalendar() bool {
	switch t {
	case TDateTime, TTime, TDate, TGYearMonth, TGYear, TGMonthDay, TGDay, TGMonth:
		return true
	}
	return false
}

// Derives reports whether type t is (or derives from) type base, per the
// atomic-type hierarchy. xs:anyAtomicType is the root; xs:untypedAtomic is a
// leaf directly under it.
func (t TypeCode) Derives(base TypeCode) bool {
	if base == TAnyAtomic || t == base {
		return true
	}
	return t.BaseType() == base
}
