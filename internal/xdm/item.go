package xdm

import (
	"math"
	"sort"
)

// Atomize extracts the typed value of an item ("fn:data"): nodes yield their
// typed value, atomic values pass through.
func Atomize(it Item) Atomic {
	if n, ok := it.(Node); ok {
		return n.TypedValue()
	}
	return it.(Atomic)
}

// AtomizeSequence atomizes every item of a materialized sequence.
func AtomizeSequence(seq Sequence) []Atomic {
	out := make([]Atomic, len(seq))
	for i, it := range seq {
		out[i] = Atomize(it)
	}
	return out
}

// EffectiveBoolean computes the Effective Boolean Value of a sequence per
// the paper's rules: () is false; a sequence whose first item is a node is
// true; a single boolean is itself; a single string/untyped/anyURI is true
// iff non-empty; a single numeric is true unless 0 or NaN; anything else is
// a type error.
func EffectiveBoolean(seq Sequence) (bool, error) {
	if len(seq) == 0 {
		return false, nil
	}
	if seq[0].IsNode() {
		return true, nil
	}
	if len(seq) > 1 {
		return false, ErrType("effective boolean value of a sequence of %d atomic values", len(seq))
	}
	return EffectiveBooleanItem(seq[0])
}

// EffectiveBooleanItem computes the EBV of a single item.
func EffectiveBooleanItem(it Item) (bool, error) {
	if it.IsNode() {
		return true, nil
	}
	a := it.(Atomic)
	switch a.T {
	case TBoolean:
		return a.B, nil
	case TString, TUntyped, TAnyURI:
		return a.S != "", nil
	case TInteger:
		return a.I != 0, nil
	case TDecimal, TDouble, TFloat:
		f := a.AsFloat()
		return f != 0 && !math.IsNaN(f), nil
	default:
		return false, ErrType("no effective boolean value for %s", a.T)
	}
}

// SortDocOrderDedup sorts a sequence of nodes into document order and
// removes duplicate nodes (by identity). This is the operation path
// expressions require — and the one the optimizer works hard to elide.
// Returns a type error if any item is not a node.
func SortDocOrderDedup(seq Sequence) (Sequence, error) {
	for _, it := range seq {
		if !it.IsNode() {
			return nil, ErrType("path/union operand contains a non-node item")
		}
	}
	if len(seq) < 2 {
		return seq, nil
	}
	sort.SliceStable(seq, func(i, j int) bool {
		return CompareOrder(seq[i].(Node), seq[j].(Node)) < 0
	})
	out := seq[:1]
	for _, it := range seq[1:] {
		if CompareOrder(out[len(out)-1].(Node), it.(Node)) != 0 {
			out = append(out, it)
		}
	}
	return out, nil
}

// Single returns the sole item of a sequence, or a type error if the
// sequence is empty or has more than one item.
func Single(seq Sequence) (Item, error) {
	if len(seq) != 1 {
		return nil, ErrType("expected a single item, got a sequence of %d", len(seq))
	}
	return seq[0], nil
}

// StringValue returns the fn:string() of an item.
func StringValue(it Item) string {
	if n, ok := it.(Node); ok {
		return n.StringValue()
	}
	return it.(Atomic).Lexical()
}
