package xdm

import (
	"math"
	"time"
)

// ArithOp is an arithmetic operator.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv  // div
	OpIDiv // idiv
	OpMod  // mod
)

var arithNames = [...]string{"+", "-", "*", "div", "idiv", "mod"}

func (op ArithOp) String() string { return arithNames[op] }

// Arith applies the paper's arithmetic rules to two already-atomized
// operands: untyped operands are cast to xs:double; numeric operands are
// promoted to a common type; date/duration combinations are dispatched to
// the temporal rules; anything else is a type error. (The empty-sequence
// rule — () as operand yields () — is handled by the evaluator before
// calling Arith.)
func Arith(op ArithOp, a, b Atomic) (Atomic, error) {
	var err error
	if a.T == TUntyped {
		if a, err = Cast(a, TDouble); err != nil {
			return Atomic{}, ErrCast("untyped operand %q is not a number", a.S)
		}
	}
	if b.T == TUntyped {
		if b, err = Cast(b, TDouble); err != nil {
			return Atomic{}, ErrCast("untyped operand %q is not a number", b.S)
		}
	}
	if a.T.IsNumeric() && b.T.IsNumeric() {
		return numericArith(op, a, b)
	}
	if r, ok, err := temporalArith(op, a, b); ok {
		return r, err
	}
	return Atomic{}, ErrType("operator %s not defined for %s and %s", op, a.T, b.T)
}

func numericArith(op ArithOp, a, b Atomic) (Atomic, error) {
	common := Promote(a.T, b.T)
	switch op {
	case OpIDiv:
		// idiv always yields xs:integer.
		if common == TDouble || common == TFloat {
			fa, fb := a.AsFloat(), b.AsFloat()
			if fb == 0 {
				return Atomic{}, ErrDivZero()
			}
			q := math.Trunc(fa / fb)
			if math.IsNaN(q) || math.IsInf(q, 0) {
				return Atomic{}, ErrOverflow()
			}
			return NewInteger(int64(q)), nil
		}
		ia, ib := a.AsInt(), b.AsInt()
		if common == TDecimal {
			fa, fb := a.AsFloat(), b.AsFloat()
			if fb == 0 {
				return Atomic{}, ErrDivZero()
			}
			return NewInteger(int64(math.Trunc(fa / fb))), nil
		}
		if ib == 0 {
			return Atomic{}, ErrDivZero()
		}
		return NewInteger(ia / ib), nil
	case OpDiv:
		// Integer div integer yields xs:decimal.
		if common == TInteger {
			common = TDecimal
		}
	}

	switch common {
	case TInteger:
		ia, ib := a.I, b.I
		switch op {
		case OpAdd:
			if r, ok := addI64(ia, ib); ok {
				return NewInteger(r), nil
			}
		case OpSub:
			if ib != math.MinInt64 {
				if r, ok := addI64(ia, -ib); ok {
					return NewInteger(r), nil
				}
			}
		case OpMul:
			if r, ok := mulI64(ia, ib); ok {
				return NewInteger(r), nil
			}
		case OpMod:
			if ib == 0 {
				return Atomic{}, ErrDivZero()
			}
			return NewInteger(ia % ib), nil
		}
		return Atomic{}, ErrOverflow()
	case TDecimal:
		// Exact path when both decimals are scaled int64s and the result fits.
		if r, ok := exactDecimalArith(op, a, b); ok {
			return r, nil
		}
		fa, fb := a.AsFloat(), b.AsFloat()
		r, err := floatArith(op, fa, fb, true)
		if err != nil {
			return Atomic{}, err
		}
		return NewDecimalFloat(r), nil
	case TFloat:
		r, err := floatArith(op, a.AsFloat(), b.AsFloat(), false)
		if err != nil {
			return Atomic{}, err
		}
		return NewFloat(r), nil
	default: // TDouble
		r, err := floatArith(op, a.AsFloat(), b.AsFloat(), false)
		if err != nil {
			return Atomic{}, err
		}
		return NewDouble(r), nil
	}
}

// exactDecimalArith performs add/sub/mul on scaled-int64 decimals when both
// operands and the result stay exact.
func exactDecimalArith(op ArithOp, a, b Atomic) (Atomic, bool) {
	da, oka := asScaledDecimal(a)
	db, okb := asScaledDecimal(b)
	if !oka || !okb {
		return Atomic{}, false
	}
	switch op {
	case OpAdd, OpSub:
		// Align scales.
		for da.Scale < db.Scale {
			v, ok := mulI64(da.I, 10)
			if !ok {
				return Atomic{}, false
			}
			da.I, da.Scale = v, da.Scale+1
		}
		for db.Scale < da.Scale {
			v, ok := mulI64(db.I, 10)
			if !ok {
				return Atomic{}, false
			}
			db.I, db.Scale = v, db.Scale+1
		}
		bi := db.I
		if op == OpSub {
			bi = -bi
		}
		r, ok := addI64(da.I, bi)
		if !ok {
			return Atomic{}, false
		}
		return NewDecimal(r, da.Scale), true
	case OpMul:
		r, ok := mulI64(da.I, db.I)
		if !ok || int(da.Scale)+int(db.Scale) > 18 {
			return Atomic{}, false
		}
		return NewDecimal(r, da.Scale+db.Scale), true
	}
	return Atomic{}, false
}

func asScaledDecimal(a Atomic) (Atomic, bool) {
	switch {
	case a.T == TDecimal && a.Dec:
		return a, true
	case a.T == TInteger:
		return NewDecimal(a.I, 0), true
	}
	return Atomic{}, false
}

func floatArith(op ArithOp, a, b float64, isDecimal bool) (float64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if isDecimal && b == 0 {
			return 0, ErrDivZero()
		}
		return a / b, nil
	case OpMod:
		if isDecimal && b == 0 {
			return 0, ErrDivZero()
		}
		return math.Mod(a, b), nil
	}
	return 0, ErrType("bad float op %s", op)
}

func addI64(a, b int64) (int64, bool) {
	r := a + b
	if (a > 0 && b > 0 && r < 0) || (a < 0 && b < 0 && r >= 0) {
		return 0, false
	}
	return r, true
}

func mulI64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	r := a * b
	if r/b != a {
		return 0, false
	}
	return r, true
}

// temporalArith handles date/time ± duration, duration ± duration,
// duration * number, and dateTime - dateTime. ok reports whether the type
// combination was temporal at all.
func temporalArith(op ArithOp, a, b Atomic) (Atomic, bool, error) {
	switch {
	// duration + duration, duration - duration (same subtype)
	case a.T == TYearMonthDuration && b.T == TYearMonthDuration && (op == OpAdd || op == OpSub):
		if op == OpAdd {
			return NewYearMonthDuration(a.I + b.I), true, nil
		}
		return NewYearMonthDuration(a.I - b.I), true, nil
	case a.T == TDayTimeDuration && b.T == TDayTimeDuration:
		switch op {
		case OpAdd:
			return NewDayTimeDuration(time.Duration(a.I + b.I)), true, nil
		case OpSub:
			return NewDayTimeDuration(time.Duration(a.I - b.I)), true, nil
		case OpDiv:
			if b.I == 0 {
				return Atomic{}, true, ErrDivZero()
			}
			return NewDecimalFloat(float64(a.I) / float64(b.I)), true, nil
		}
	// duration * number / number * duration
	case a.T.IsDuration() && b.T.IsNumeric() && (op == OpMul || op == OpDiv):
		f := b.AsFloat()
		if op == OpDiv {
			if f == 0 {
				return Atomic{}, true, ErrDivZero()
			}
			f = 1 / f
		}
		if a.T == TYearMonthDuration {
			return NewYearMonthDuration(int64(math.Round(float64(a.I) * f))), true, nil
		}
		return NewDayTimeDuration(time.Duration(float64(a.I) * f)), true, nil
	case a.T.IsNumeric() && b.T.IsDuration() && op == OpMul:
		return temporalArith(op, b, a)
	// dateTime/date/time ± dayTimeDuration
	case (a.T == TDateTime || a.T == TDate || a.T == TTime) && b.T == TDayTimeDuration && (op == OpAdd || op == OpSub):
		d := b.I
		if op == OpSub {
			d = -d
		}
		return Atomic{T: a.T, I: a.I + d}, true, nil
	// dateTime/date ± yearMonthDuration
	case (a.T == TDateTime || a.T == TDate) && b.T == TYearMonthDuration && (op == OpAdd || op == OpSub):
		m := b.I
		if op == OpSub {
			m = -m
		}
		t := time.Unix(0, a.I).UTC().AddDate(0, int(m), 0)
		return Atomic{T: a.T, I: t.UnixNano()}, true, nil
	// dateTime - dateTime (same type) yields dayTimeDuration
	case a.T == b.T && (a.T == TDateTime || a.T == TDate || a.T == TTime) && op == OpSub:
		return NewDayTimeDuration(time.Duration(a.I - b.I)), true, nil
	}
	return Atomic{}, false, nil
}

// Negate applies unary minus to a numeric or duration value.
func Negate(a Atomic) (Atomic, error) {
	var err error
	if a.T == TUntyped {
		if a, err = Cast(a, TDouble); err != nil {
			return Atomic{}, err
		}
	}
	switch a.T {
	case TInteger:
		return NewInteger(-a.I), nil
	case TDecimal:
		if a.Dec {
			return NewDecimal(-a.I, a.Scale), nil
		}
		return NewDecimalFloat(-a.F), nil
	case TDouble:
		return NewDouble(-a.F), nil
	case TFloat:
		return NewFloat(-a.F), nil
	case TYearMonthDuration:
		return NewYearMonthDuration(-a.I), nil
	case TDayTimeDuration:
		return NewDayTimeDuration(time.Duration(-a.I)), nil
	}
	return Atomic{}, ErrType("unary minus not defined for %s", a.T)
}
