package xdm

import (
	"math"
	"strings"
)

// CompOp is a comparison operator shared by value and general comparisons.
type CompOp uint8

const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var compOpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (op CompOp) String() string { return compOpNames[op] }

// Negate returns the operator giving the complementary truth value. Note the
// paper's warning that fn:not($x = $y) is NOT equivalent to $x != $y for
// general comparisons (existential semantics) — Negate is only valid for
// value comparisons on single items.
func (op CompOp) Negate() CompOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// ValueCompare implements the value comparisons (eq, ne, lt, ...) between two
// single atomic values. Untyped operands are treated as xs:string, per the
// value-comparison rule. Returns a type error for incomparable types.
func ValueCompare(op CompOp, a, b Atomic) (bool, error) {
	if a.T == TUntyped {
		a = NewString(a.S)
	}
	if b.T == TUntyped {
		b = NewString(b.S)
	}
	return typedCompare(op, a, b)
}

// GeneralCompareItems applies the general-comparison casting rules to a pair
// of atomized operands: untyped vs numeric casts untyped to xs:double;
// untyped vs untyped/string compares as strings; untyped vs anything else
// casts untyped to the other's type.
func GeneralCompareItems(op CompOp, a, b Atomic) (bool, error) {
	var err error
	switch {
	case a.T == TUntyped && b.T == TUntyped:
		a, b = NewString(a.S), NewString(b.S)
	case a.T == TUntyped:
		a, err = castUntypedFor(a, b.T)
		if err != nil {
			return false, err
		}
	case b.T == TUntyped:
		b, err = castUntypedFor(b, a.T)
		if err != nil {
			return false, err
		}
	}
	return typedCompare(op, a, b)
}

func castUntypedFor(u Atomic, other TypeCode) (Atomic, error) {
	switch {
	case other.IsNumeric():
		return Cast(u, TDouble)
	case other == TString || other == TAnyURI:
		return NewString(u.S), nil
	default:
		return Cast(u, other)
	}
}

// typedCompare compares two typed atomic values with op.
func typedCompare(op CompOp, a, b Atomic) (bool, error) {
	if op != OpEq && op != OpNe && !supportsOrder(a.T) {
		return false, ErrType("%s supports only eq/ne", a.T)
	}
	c, incomparable, err := orderCompare(a, b)
	if err != nil {
		return false, err
	}
	if incomparable { // NaN involved: all comparisons except ne are false
		return op == OpNe, nil
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	default:
		return c >= 0, nil
	}
}

// OrderCompare returns -1/0/+1 ordering two atomic values, for use by
// order-by and fn:min/max/index-of. Incomparable pairs yield a type error;
// NaN sorts as specified by the caller (this function reports NaN via the
// bool result).
func OrderCompare(a, b Atomic) (int, bool, error) { return orderCompare(a, b) }

func orderCompare(a, b Atomic) (cmp int, nan bool, err error) {
	// Numeric comparison with promotion.
	if a.T.IsNumeric() && b.T.IsNumeric() {
		// Exact integer/decimal fast paths.
		if a.T == TInteger && b.T == TInteger {
			return cmpI64(a.I, b.I), false, nil
		}
		fa, fb := a.AsFloat(), b.AsFloat()
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return 0, true, nil
		}
		return cmpF64(fa, fb), false, nil
	}
	ta, tb := a.T, b.T
	if ta == TAnyURI {
		ta = TString
	}
	if tb == TAnyURI {
		tb = TString
	}
	switch {
	case ta == TString && tb == TString:
		return strings.Compare(a.S, b.S), false, nil
	case ta == TBoolean && tb == TBoolean:
		switch {
		case a.B == b.B:
			return 0, false, nil
		case !a.B:
			return -1, false, nil
		default:
			return 1, false, nil
		}
	case ta == TQName && tb == TQName:
		if a.Q.Equal(b.Q) {
			return 0, false, nil
		}
		return 0, false, ErrType("xs:QName supports only eq/ne")
	case ta.IsCalendar() && ta == tb:
		return cmpI64(a.I, b.I), false, nil
	case ta == TYearMonthDuration && tb == TYearMonthDuration:
		return cmpI64(a.I, b.I), false, nil
	case ta == TDayTimeDuration && tb == TDayTimeDuration:
		return cmpI64(a.I, b.I), false, nil
	case ta.IsDuration() && tb.IsDuration():
		// Only equality is defined across general durations.
		am, as := durParts(a)
		bm, bs := durParts(b)
		if am == bm && as == bs {
			return 0, false, nil
		}
		return 0, false, ErrType("xs:duration supports only eq/ne")
	case (ta == THexBinary && tb == THexBinary) || (ta == TBase64Binary && tb == TBase64Binary):
		return strings.Compare(a.S, b.S), false, nil
	}
	return 0, false, ErrType("cannot compare %s with %s", a.T, b.T)
}

// supportsOrder reports whether a type admits the ordering operators
// (lt/le/gt/ge); xs:QName, xs:NOTATION, the binary types and the generic
// xs:duration admit only eq/ne.
func supportsOrder(t TypeCode) bool {
	switch t {
	case TQName, TNotation, THexBinary, TBase64Binary, TDuration:
		return false
	}
	return true
}

func durParts(a Atomic) (months int64, seconds float64) {
	switch a.T {
	case TYearMonthDuration:
		return a.I, 0
	case TDayTimeDuration:
		return 0, float64(a.I) / 1e9
	default:
		return a.I, a.F
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// DeepEqualAtomic implements fn:deep-equal's atomic rule: equal if eq is
// true, plus NaN = NaN.
func DeepEqualAtomic(a, b Atomic) bool {
	if a.T.IsNumeric() && b.T.IsNumeric() {
		fa, fb := a.AsFloat(), b.AsFloat()
		if math.IsNaN(fa) && math.IsNaN(fb) {
			return true
		}
	}
	ok, err := GeneralCompareItems(OpEq, a, b)
	return err == nil && ok
}
