package xdm

import "fmt"

// Error is an XQuery static or dynamic error, identified by the standard
// err: code (e.g. XPTY0004 for a type error, FOAR0001 for division by zero).
// Dynamic errors are ordinary Go errors that flow out of iterators, so lazy
// evaluation naturally gives the paper's "only one branch allowed to raise
// execution errors" behaviour: an error in a sub-expression that is never
// demanded is never raised.
type Error struct {
	Code string // e.g. "XPTY0004"
	Msg  string
}

func (e *Error) Error() string { return "err:" + e.Code + ": " + e.Msg }

// Errf creates an XQuery error with a formatted message.
func Errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Common error code constructors, named after their usual trigger.

// ErrType reports a type error (err:XPTY0004).
func ErrType(format string, args ...any) *Error { return Errf("XPTY0004", format, args...) }

// ErrCast reports a failed cast (err:FORG0001, invalid value for cast).
func ErrCast(format string, args ...any) *Error { return Errf("FORG0001", format, args...) }

// ErrDivZero reports integer/decimal division by zero (err:FOAR0001).
func ErrDivZero() *Error { return Errf("FOAR0001", "division by zero") }

// ErrOverflow reports numeric overflow (err:FOAR0002).
func ErrOverflow() *Error { return Errf("FOAR0002", "numeric overflow") }

// IsCode reports whether err is an xdm.Error carrying the given code.
func IsCode(err error, code string) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}
