package xdm

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestPaperArithmeticRules covers the "Arithmetic expressions" slide:
// atomize, untyped casts to xs:double, promotion to a common type, errors
// for inconsistent types.
func TestPaperArithmeticRules(t *testing.T) {
	// <a>42</a> + 1: untyped "42" casts to double -> 43.
	r, err := Arith(OpAdd, NewUntyped("42"), NewInteger(1))
	if err != nil {
		t.Fatalf("untyped 42 + 1: %v", err)
	}
	if r.T != TDouble || r.F != 43 {
		t.Errorf("untyped 42 + 1 = %v (%v), want double 43", r.Lexical(), r.T)
	}
	// <a>baz</a> + 1: error.
	if _, err := Arith(OpAdd, NewUntyped("baz"), NewInteger(1)); err == nil {
		t.Error("untyped baz + 1 should error")
	}
	// Typed integer + 1 stays integer.
	r, err = Arith(OpAdd, NewInteger(42), NewInteger(1))
	if err != nil || r.T != TInteger || r.I != 43 {
		t.Errorf("42 + 1 = %v (%v), %v", r.Lexical(), r.T, err)
	}
	// String + 1: type error.
	if _, err := Arith(OpAdd, NewString("42"), NewInteger(1)); err == nil {
		t.Error("string + integer should be a type error")
	}
}

func TestNumericPromotionInArith(t *testing.T) {
	cases := []struct {
		op       ArithOp
		a, b     Atomic
		wantType TypeCode
		want     float64
	}{
		{OpAdd, NewInteger(1), NewInteger(2), TInteger, 3},
		{OpAdd, NewInteger(1), NewDecimal(25, 1), TDecimal, 3.5},
		{OpMul, NewDecimal(15, 1), NewDouble(2), TDouble, 3},
		{OpSub, NewFloat(1.5), NewInteger(1), TFloat, 0.5},
		{OpDiv, NewInteger(1), NewInteger(2), TDecimal, 0.5}, // int div int -> decimal
		{OpDiv, NewDouble(1), NewDouble(0), TDouble, math.Inf(1)},
		{OpMod, NewInteger(7), NewInteger(3), TInteger, 1},
		{OpMul, NewDecimal(15, 1), NewDecimal(2, 0), TDecimal, 3},
	}
	for _, c := range cases {
		r, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%v %v %v: %v", c.a.Lexical(), c.op, c.b.Lexical(), err)
			continue
		}
		if r.T != c.wantType {
			t.Errorf("%v %v %v type = %v, want %v", c.a.Lexical(), c.op, c.b.Lexical(), r.T, c.wantType)
		}
		if !(math.IsInf(c.want, 1) && math.IsInf(r.AsFloat(), 1)) && r.AsFloat() != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a.Lexical(), c.op, c.b.Lexical(), r.AsFloat(), c.want)
		}
	}
}

func TestIDiv(t *testing.T) {
	cases := []struct {
		a, b Atomic
		want int64
		fail bool
	}{
		{NewInteger(7), NewInteger(2), 3, false},
		{NewInteger(-7), NewInteger(2), -3, false},
		{NewDouble(7.9), NewInteger(2), 3, false},
		{NewDecimal(75, 1), NewDecimal(25, 1), 3, false},
		{NewInteger(1), NewInteger(0), 0, true},
		{NewDouble(1), NewDouble(0), 0, true},
	}
	for _, c := range cases {
		r, err := Arith(OpIDiv, c.a, c.b)
		if c.fail {
			if err == nil {
				t.Errorf("%v idiv %v should fail", c.a.Lexical(), c.b.Lexical())
			}
			continue
		}
		if err != nil {
			t.Errorf("%v idiv %v: %v", c.a.Lexical(), c.b.Lexical(), err)
			continue
		}
		if r.T != TInteger || r.I != c.want {
			t.Errorf("%v idiv %v = %v (%v), want %d", c.a.Lexical(), c.b.Lexical(), r.Lexical(), r.T, c.want)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	if _, err := Arith(OpDiv, NewInteger(1), NewInteger(0)); err == nil {
		t.Error("integer 1 div 0 should error")
	}
	if _, err := Arith(OpMod, NewInteger(1), NewInteger(0)); err == nil {
		t.Error("1 mod 0 should error")
	}
	// Double division by zero yields INF, not an error.
	if r, err := Arith(OpDiv, NewDouble(-1), NewDouble(0)); err != nil || !math.IsInf(r.F, -1) {
		t.Errorf("-1e0 div 0e0 = %v, %v; want -INF", r.Lexical(), err)
	}
}

func TestIntegerOverflow(t *testing.T) {
	if _, err := Arith(OpAdd, NewInteger(math.MaxInt64), NewInteger(1)); err == nil {
		t.Error("MaxInt64 + 1 should overflow")
	}
	if _, err := Arith(OpMul, NewInteger(math.MaxInt64/2+1), NewInteger(2)); err == nil {
		t.Error("overflowing multiply should error")
	}
	if _, err := Arith(OpSub, NewInteger(math.MinInt64), NewInteger(1)); err == nil {
		t.Error("MinInt64 - 1 should overflow")
	}
}

func TestExactDecimalArithmetic(t *testing.T) {
	// 0.1 + 0.2 must be exactly 0.3 via scaled integers.
	a, _ := ParseDecimal("0.1")
	b, _ := ParseDecimal("0.2")
	r, err := Arith(OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lexical() != "0.3" {
		t.Errorf("0.1 + 0.2 = %q, want 0.3 exactly", r.Lexical())
	}
	// The paper's warning: decimals lose transitivity through float
	// fallback only — exact path must not engage floats.
	if !r.Dec {
		t.Error("0.1 + 0.2 should stay in the exact representation")
	}
}

func TestTemporalArith(t *testing.T) {
	d1 := NewDayTimeDuration(time.Hour)
	d2 := NewDayTimeDuration(30 * time.Minute)
	if r, err := Arith(OpAdd, d1, d2); err != nil || r.Lexical() != "PT1H30M" {
		t.Errorf("PT1H + PT30M = %v, %v", r.Lexical(), err)
	}
	if r, err := Arith(OpSub, d1, d2); err != nil || r.Lexical() != "PT30M" {
		t.Errorf("PT1H - PT30M = %v, %v", r.Lexical(), err)
	}
	if r, err := Arith(OpMul, d2, NewInteger(4)); err != nil || r.Lexical() != "PT2H" {
		t.Errorf("PT30M * 4 = %v, %v", r.Lexical(), err)
	}
	if r, err := Arith(OpDiv, d1, d2); err != nil || r.AsFloat() != 2 {
		t.Errorf("PT1H div PT30M = %v, %v", r.Lexical(), err)
	}
	ym := NewYearMonthDuration(18)
	if r, err := Arith(OpAdd, ym, NewYearMonthDuration(6)); err != nil || r.Lexical() != "P2Y" {
		t.Errorf("P1Y6M + P6M = %v, %v", r.Lexical(), err)
	}

	date, _ := Cast(NewString("2004-09-14"), TDate)
	if r, err := Arith(OpAdd, date, NewDayTimeDuration(48*time.Hour)); err != nil || time.Unix(0, r.I).UTC().Day() != 16 {
		t.Errorf("date + P2D = %v, %v", r.Lexical(), err)
	}
	if r, err := Arith(OpAdd, date, NewYearMonthDuration(3)); err != nil || time.Unix(0, r.I).UTC().Month() != time.December {
		t.Errorf("date + P3M = %v, %v", r.Lexical(), err)
	}
	d3, _ := Cast(NewString("2004-09-16"), TDate)
	if r, err := Arith(OpSub, d3, date); err != nil || r.Lexical() != "P2D" {
		t.Errorf("date - date = %v, %v", r.Lexical(), err)
	}
	// The paper's customer query: @ttl div 1000 (untyped div integer).
	if r, err := Arith(OpDiv, NewUntyped("33000"), NewInteger(1000)); err != nil || r.AsFloat() != 33 {
		t.Errorf("untyped 33000 div 1000 = %v, %v", r.Lexical(), err)
	}
}

func TestNegate(t *testing.T) {
	if r, _ := Negate(NewInteger(5)); r.I != -5 {
		t.Error("-5")
	}
	if r, _ := Negate(NewDouble(1.5)); r.F != -1.5 {
		t.Error("-1.5")
	}
	if r, _ := Negate(NewDecimal(25, 1)); r.Lexical() != "-2.5" {
		t.Error("-2.5")
	}
	if r, _ := Negate(NewUntyped("3")); r.T != TDouble || r.F != -3 {
		t.Error("unary minus casts untyped to double")
	}
	if _, err := Negate(NewString("x")); err == nil {
		t.Error("negating a string must fail")
	}
	if r, _ := Negate(NewDayTimeDuration(time.Hour)); r.Lexical() != "-PT1H" {
		t.Error("-PT1H")
	}
}

// Property: integer addition via Arith agrees with Go addition when no
// overflow occurs.
func TestIntegerArithQuick(t *testing.T) {
	f := func(a, b int32) bool {
		r, err := Arith(OpAdd, NewInteger(int64(a)), NewInteger(int64(b)))
		return err == nil && r.I == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: exact decimal add/sub round-trips against float arithmetic
// within the exact range.
func TestDecimalAddQuick(t *testing.T) {
	f := func(a, b int16) bool {
		x := NewDecimal(int64(a), 2)
		y := NewDecimal(int64(b), 2)
		r, err := Arith(OpAdd, x, y)
		if err != nil {
			return false
		}
		return math.Abs(r.AsFloat()-(float64(a)+float64(b))/100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
