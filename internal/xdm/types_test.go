package xdm

import "testing"

func TestTypeByName(t *testing.T) {
	cases := []struct {
		name string
		want TypeCode
		ok   bool
	}{
		{"xs:integer", TInteger, true},
		{"integer", TInteger, true},
		{"xs:string", TString, true},
		{"xs:untypedAtomic", TUntyped, true},
		{"xdt:untypedAtomic", TUntyped, true},
		{"xdt:yearMonthDuration", TYearMonthDuration, true},
		{"xdt:dayTimeDuration", TDayTimeDuration, true},
		{"xs:anyAtomicType", TAnyAtomic, true},
		{"xs:decimal", TDecimal, true},
		{"xs:gYearMonth", TGYearMonth, true},
		{"xs:NOTATION", TNotation, true},
		{"nosuch", 0, false},
		{"xs:nosuch", 0, false},
	}
	for _, c := range cases {
		got, ok := TypeByName(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("TypeByName(%q) = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for tc := TypeCode(0); tc < numTypes; tc++ {
		name := tc.String()
		got, ok := TypeByName(name)
		if !ok || got != tc {
			t.Errorf("TypeByName(%q) = %v, %v; want %v", name, got, ok, tc)
		}
	}
}

func TestBaseType(t *testing.T) {
	if TInteger.BaseType() != TDecimal {
		t.Error("xs:integer should derive from xs:decimal")
	}
	if TYearMonthDuration.BaseType() != TDuration {
		t.Error("yearMonthDuration should derive from xs:duration")
	}
	if TDayTimeDuration.BaseType() != TDuration {
		t.Error("dayTimeDuration should derive from xs:duration")
	}
	if TString.BaseType() != TString {
		t.Error("primitive types are their own base")
	}
}

func TestDerives(t *testing.T) {
	cases := []struct {
		t, base TypeCode
		want    bool
	}{
		{TInteger, TDecimal, true},
		{TInteger, TInteger, true},
		{TInteger, TAnyAtomic, true},
		{TDecimal, TInteger, false},
		{TString, TAnyAtomic, true},
		{TUntyped, TAnyAtomic, true},
		{TUntyped, TString, false},
		{TYearMonthDuration, TDuration, true},
		{TDuration, TYearMonthDuration, false},
	}
	for _, c := range cases {
		if got := c.t.Derives(c.base); got != c.want {
			t.Errorf("%v.Derives(%v) = %v, want %v", c.t, c.base, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	for _, tc := range []TypeCode{TDecimal, TInteger, TFloat, TDouble} {
		if !tc.IsNumeric() {
			t.Errorf("%v should be numeric", tc)
		}
	}
	for _, tc := range []TypeCode{TString, TBoolean, TDate, TDuration} {
		if tc.IsNumeric() {
			t.Errorf("%v should not be numeric", tc)
		}
	}
	for _, tc := range []TypeCode{TDuration, TYearMonthDuration, TDayTimeDuration} {
		if !tc.IsDuration() {
			t.Errorf("%v should be a duration", tc)
		}
	}
	for _, tc := range []TypeCode{TDateTime, TTime, TDate, TGYear, TGMonth, TGDay, TGYearMonth, TGMonthDay} {
		if !tc.IsCalendar() {
			t.Errorf("%v should be calendar", tc)
		}
	}
}

func TestQName(t *testing.T) {
	a := Name("urn:x", "local")
	b := QName{Space: "urn:x", Local: "local", Prefix: "p"}
	if !a.Equal(b) {
		t.Error("QName equality must ignore the prefix")
	}
	if a.Equal(LocalName("local")) {
		t.Error("different namespaces must not compare equal")
	}
	if got := b.String(); got != "p:local" {
		t.Errorf("String with prefix = %q", got)
	}
	if got := a.String(); got != "{urn:x}local" {
		t.Errorf("String without prefix = %q", got)
	}
	if got := LocalName("x").String(); got != "x" {
		t.Errorf("local-only String = %q", got)
	}
	if a.Clark() != "{urn:x}local" {
		t.Errorf("Clark = %q", a.Clark())
	}
	if got := ParseClark("{urn:x}local"); !got.Equal(a) {
		t.Errorf("ParseClark roundtrip = %v", got)
	}
	if got := ParseClark("plain"); !got.Equal(LocalName("plain")) {
		t.Errorf("ParseClark bare = %v", got)
	}
	if p, l := SplitLexical("ns:foo"); p != "ns" || l != "foo" {
		t.Errorf("SplitLexical = %q, %q", p, l)
	}
	if p, l := SplitLexical("foo"); p != "" || l != "foo" {
		t.Errorf("SplitLexical bare = %q, %q", p, l)
	}
	if !(QName{}).IsZero() {
		t.Error("zero QName should be IsZero")
	}
}

func TestErrors(t *testing.T) {
	err := ErrType("bad %s", "thing")
	if err.Code != "XPTY0004" {
		t.Errorf("ErrType code = %s", err.Code)
	}
	if got := err.Error(); got != "err:XPTY0004: bad thing" {
		t.Errorf("Error() = %q", got)
	}
	if !IsCode(err, "XPTY0004") || IsCode(err, "FOAR0001") {
		t.Error("IsCode mismatch")
	}
	if ErrDivZero().Code != "FOAR0001" {
		t.Error("div-zero code")
	}
	if ErrCast("x").Code != "FORG0001" {
		t.Error("cast code")
	}
	if ErrOverflow().Code != "FOAR0002" {
		t.Error("overflow code")
	}
}
