package xdm

import (
	"math"
	"testing"
)

// fakeNode is a minimal Node implementation for testing data-model helpers
// without importing the store (which would be an import cycle).
type fakeNode struct {
	kind NodeKind
	name QName
	sv   string
	doc  uint64
	pre  int64
}

func (f *fakeNode) IsNode() bool              { return true }
func (f *fakeNode) Kind() NodeKind            { return f.kind }
func (f *fakeNode) NodeName() QName           { return f.name }
func (f *fakeNode) StringValue() string       { return f.sv }
func (f *fakeNode) TypedValue() Atomic        { return NewUntyped(f.sv) }
func (f *fakeNode) Parent() Node              { return nil }
func (f *fakeNode) ChildrenOf() []Node        { return nil }
func (f *fakeNode) AttributesOf() []Node      { return nil }
func (f *fakeNode) BaseURI() string           { return "" }
func (f *fakeNode) SameNode(o Node) bool      { return o == Node(f) }
func (f *fakeNode) OrderKey() (uint64, int64) { return f.doc, f.pre }
func (f *fakeNode) Root() Node                { return f }

func elem(doc uint64, pre int64, sv string) *fakeNode {
	return &fakeNode{kind: ElementNode, name: LocalName("e"), sv: sv, doc: doc, pre: pre}
}

func TestAtomize(t *testing.T) {
	n := elem(1, 0, "42")
	a := Atomize(n)
	if a.T != TUntyped || a.S != "42" {
		t.Errorf("Atomize(node) = %v %q", a.T, a.S)
	}
	if got := Atomize(NewInteger(3)); got.I != 3 {
		t.Error("Atomize(atomic) passes through")
	}
	seq := AtomizeSequence(Sequence{n, NewInteger(1)})
	if len(seq) != 2 || seq[0].S != "42" || seq[1].I != 1 {
		t.Errorf("AtomizeSequence = %v", seq)
	}
}

// TestEffectiveBoolean covers the paper's BEV rules: (), "", NaN, 0 and
// zero-length strings are false; nodes are true; booleans are themselves.
func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		seq  Sequence
		want bool
		fail bool
	}{
		{Sequence{}, false, false},
		{Sequence{True}, true, false},
		{Sequence{False}, false, false},
		{Sequence{NewString("")}, false, false},
		{Sequence{NewString("x")}, true, false},
		{Sequence{NewUntyped("")}, false, false},
		{Sequence{NewInteger(0)}, false, false},
		{Sequence{NewInteger(5)}, true, false},
		{Sequence{NewDouble(math.NaN())}, false, false},
		{Sequence{NewDouble(0.1)}, true, false},
		{Sequence{NewAnyURI("")}, false, false},
		{Sequence{elem(1, 0, "")}, true, false},                // first item node -> true
		{Sequence{elem(1, 0, ""), NewInteger(0)}, true, false}, // still true
		{Sequence{NewInteger(1), NewInteger(2)}, false, true},  // multi-atomic -> error
		{Sequence{Atomic{T: TDate}}, false, true},              // no EBV for dates
	}
	for i, c := range cases {
		got, err := EffectiveBoolean(c.seq)
		if c.fail {
			if err == nil {
				t.Errorf("case %d: expected error", i)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: EBV = %v, want %v", i, got, c.want)
		}
	}
}

func TestSortDocOrderDedup(t *testing.T) {
	a := elem(1, 5, "a")
	b := elem(1, 2, "b")
	c := elem(2, 0, "c")
	seq, err := SortDocOrderDedup(Sequence{a, c, b, a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("dedup: got %d items", len(seq))
	}
	if seq[0] != Node(b) || seq[1] != Node(a) || seq[2] != Node(c) {
		t.Errorf("order: got %v", seq)
	}
	if _, err := SortDocOrderDedup(Sequence{a, NewInteger(1)}); err == nil {
		t.Error("atomic in node sort must be a type error")
	}
	// Empty and singleton pass through.
	if s, _ := SortDocOrderDedup(Sequence{}); len(s) != 0 {
		t.Error("empty")
	}
	if s, _ := SortDocOrderDedup(Sequence{a}); len(s) != 1 {
		t.Error("singleton")
	}
}

func TestCompareOrder(t *testing.T) {
	a := elem(1, 1, "")
	b := elem(1, 2, "")
	c := elem(2, 0, "")
	if CompareOrder(a, b) >= 0 || CompareOrder(b, a) <= 0 || CompareOrder(a, a) != 0 {
		t.Error("same-document ordering")
	}
	if CompareOrder(b, c) >= 0 {
		t.Error("cross-document ordering by sequence number")
	}
}

func TestSingleAndStringValue(t *testing.T) {
	if _, err := Single(Sequence{}); err == nil {
		t.Error("Single of empty must fail")
	}
	if _, err := Single(Sequence{True, False}); err == nil {
		t.Error("Single of pair must fail")
	}
	if it, err := Single(Sequence{NewInteger(9)}); err != nil || it.(Atomic).I != 9 {
		t.Error("Single of singleton")
	}
	if StringValue(elem(1, 0, "txt")) != "txt" {
		t.Error("StringValue of node")
	}
	if StringValue(NewInteger(12)) != "12" {
		t.Error("StringValue of atomic")
	}
}
