package xdm

// NodeKind enumerates the seven XDM node kinds.
type NodeKind uint8

const (
	DocumentNode NodeKind = iota
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	PINode
	NamespaceNode
)

var kindNames = [...]string{
	"document", "element", "attribute", "text", "comment",
	"processing-instruction", "namespace",
}

func (k NodeKind) String() string { return kindNames[k] }

// Node is the accessor interface of the data model ("Node accessors" in the
// paper): every node has an identity, a kind, an optional name, a string
// value, a typed value, and tree links. The single implementation lives in
// internal/store; the interface keeps the layering acyclic.
type Node interface {
	Item

	Kind() NodeKind
	// NodeName returns the node's name; zero QName for unnamed kinds.
	NodeName() QName
	// StringValue is the concatenated text content (elements/documents) or
	// the value (attributes, text, comments, PIs).
	StringValue() string
	// TypedValue returns the node's typed value. Without schema validation
	// this is a single xs:untypedAtomic holding the string value.
	TypedValue() Atomic
	// Parent returns the parent node, or nil at a tree root.
	Parent() Node
	// ChildrenOf returns the child nodes in document order (empty for
	// leaves). Attribute and namespace nodes are not children.
	ChildrenOf() []Node
	// AttributesOf returns the attribute nodes of an element.
	AttributesOf() []Node
	// BaseURI returns the document's base URI, if known.
	BaseURI() string

	// SameNode reports node identity (the "is" operator).
	SameNode(Node) bool
	// OrderKey returns a global document-order key: documents are ordered by
	// creation sequence, nodes within a document by pre-order position.
	// Attribute nodes order after their owner element and before its children.
	OrderKey() (doc uint64, pre int64)
	// Root returns the root of the tree containing the node.
	Root() Node
}

// IsNodeItem reports whether an item is a node (helper avoiding type asserts
// at call sites).
func IsNodeItem(it Item) bool { return it != nil && it.IsNode() }

// CompareOrder orders two nodes in global document order: -1, 0, +1.
func CompareOrder(a, b Node) int {
	da, pa := a.OrderKey()
	db, pb := b.OrderKey()
	switch {
	case da < db:
		return -1
	case da > db:
		return 1
	case pa < pb:
		return -1
	case pa > pb:
		return 1
	default:
		return 0
	}
}
