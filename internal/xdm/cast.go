package xdm

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// Cast converts an atomic value to the target type, following the XQuery
// casting table. Casting from xs:untypedAtomic and xs:string goes through the
// lexical space of the target; numeric casts convert values. An impossible or
// ill-formed cast returns an error (err:FORG0001 / err:XPTY0004).
func Cast(a Atomic, to TypeCode) (Atomic, error) {
	if a.T == to || to == TAnyAtomic {
		return a, nil
	}
	switch to {
	case TString:
		return NewString(a.Lexical()), nil
	case TUntyped:
		return NewUntyped(a.Lexical()), nil
	case TAnyURI:
		switch a.T {
		case TString, TUntyped:
			return NewAnyURI(strings.TrimSpace(a.S)), nil
		}
		return Atomic{}, ErrType("cannot cast %s to xs:anyURI", a.T)
	case TBoolean:
		return castToBoolean(a)
	case TInteger, TDecimal, TFloat, TDouble:
		return castToNumeric(a, to)
	case TDateTime, TDate, TTime:
		return castToCalendar(a, to)
	case TGYearMonth, TGYear, TGMonthDay, TGDay, TGMonth:
		switch a.T {
		case TString, TUntyped:
			return Atomic{T: to, S: strings.TrimSpace(a.S)}, nil
		case TDateTime, TDate:
			return Atomic{T: to, S: a.Lexical()}, nil
		}
		return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
	case TDuration, TYearMonthDuration, TDayTimeDuration:
		return castToDuration(a, to)
	case TQName:
		switch a.T {
		case TString, TUntyped:
			prefix, local := SplitLexical(strings.TrimSpace(a.S))
			return NewQName(QName{Prefix: prefix, Local: local}), nil
		}
		return Atomic{}, ErrType("cannot cast %s to xs:QName", a.T)
	case THexBinary, TBase64Binary:
		switch a.T {
		case TString, TUntyped, THexBinary, TBase64Binary:
			return Atomic{T: to, S: a.S}, nil
		}
		return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
	}
	return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
}

// Castable reports whether Cast would succeed.
func Castable(a Atomic, to TypeCode) bool {
	_, err := Cast(a, to)
	return err == nil
}

func castToBoolean(a Atomic) (Atomic, error) {
	switch a.T {
	case TString, TUntyped:
		switch strings.TrimSpace(a.S) {
		case "true", "1":
			return True, nil
		case "false", "0":
			return False, nil
		}
		return Atomic{}, ErrCast("invalid xs:boolean literal %q", a.S)
	case TInteger:
		return NewBoolean(a.I != 0), nil
	case TDecimal, TDouble, TFloat:
		f := a.AsFloat()
		return NewBoolean(f != 0 && !math.IsNaN(f)), nil
	}
	return Atomic{}, ErrType("cannot cast %s to xs:boolean", a.T)
}

func castToNumeric(a Atomic, to TypeCode) (Atomic, error) {
	switch a.T {
	case TString, TUntyped:
		return ParseNumericLexical(strings.TrimSpace(a.S), to)
	case TBoolean:
		var v int64
		if a.B {
			v = 1
		}
		switch to {
		case TInteger:
			return NewInteger(v), nil
		case TDecimal:
			return NewDecimal(v, 0), nil
		case TFloat:
			return NewFloat(float64(v)), nil
		case TDouble:
			return NewDouble(float64(v)), nil
		}
	case TInteger, TDecimal, TFloat, TDouble:
		return convertNumeric(a, to)
	}
	return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
}

// convertNumeric converts between the four numeric types.
func convertNumeric(a Atomic, to TypeCode) (Atomic, error) {
	switch to {
	case TInteger:
		f := a.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Atomic{}, ErrCast("cannot cast %s to xs:integer", a.Lexical())
		}
		if a.T == TDecimal && a.Dec {
			return NewInteger(a.I / pow10i(a.Scale)), nil
		}
		if f >= math.MaxInt64 || f <= math.MinInt64 {
			return Atomic{}, ErrOverflow()
		}
		return NewInteger(int64(math.Trunc(f))), nil
	case TDecimal:
		switch a.T {
		case TInteger:
			return NewDecimal(a.I, 0), nil
		case TDecimal:
			return a, nil
		default:
			f := a.AsFloat()
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return Atomic{}, ErrCast("cannot cast %s to xs:decimal", a.Lexical())
			}
			return NewDecimalFloat(f), nil
		}
	case TFloat:
		return NewFloat(a.AsFloat()), nil
	case TDouble:
		return NewDouble(a.AsFloat()), nil
	}
	return Atomic{}, ErrType("not numeric: %s", to)
}

// ParseNumericLexical parses a numeric literal in the lexical space of the
// target type.
func ParseNumericLexical(s string, to TypeCode) (Atomic, error) {
	if s == "" {
		return Atomic{}, ErrCast("empty string is not a valid %s", to)
	}
	switch to {
	case TInteger:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Atomic{}, ErrCast("invalid xs:integer literal %q", s)
		}
		return NewInteger(i), nil
	case TDecimal:
		return ParseDecimal(s)
	case TFloat, TDouble:
		switch s {
		case "INF", "+INF":
			return Atomic{T: to, F: math.Inf(1)}, nil
		case "-INF":
			return Atomic{T: to, F: math.Inf(-1)}, nil
		case "NaN":
			return Atomic{T: to, F: math.NaN()}, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Atomic{}, ErrCast("invalid %s literal %q", to, s)
		}
		if to == TFloat {
			return NewFloat(f), nil
		}
		return NewDouble(f), nil
	}
	return Atomic{}, ErrType("not numeric: %s", to)
}

// ParseDecimal parses the xs:decimal lexical space ([+-]?digits(.digits)?),
// producing an exact scaled-int64 decimal when it fits.
func ParseDecimal(s string) (Atomic, error) {
	t := s
	neg := false
	if strings.HasPrefix(t, "+") {
		t = t[1:]
	} else if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	}
	intPart, fracPart := t, ""
	if i := strings.IndexByte(t, '.'); i >= 0 {
		intPart, fracPart = t[:i], t[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return Atomic{}, ErrCast("invalid xs:decimal literal %q", s)
	}
	for _, r := range intPart + fracPart {
		if r < '0' || r > '9' {
			return Atomic{}, ErrCast("invalid xs:decimal literal %q", s)
		}
	}
	// Trim trailing zeros in the fraction to keep the scale small.
	fracPart = strings.TrimRight(fracPart, "0")
	digits := strings.TrimLeft(intPart, "0") + fracPart
	if len(digits) <= 18 {
		v, _ := strconv.ParseInt(intPart+fracPart, 10, 64)
		if neg {
			v = -v
		}
		return NewDecimal(v, uint8(len(fracPart))), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Atomic{}, ErrCast("invalid xs:decimal literal %q", s)
	}
	return NewDecimalFloat(f), nil
}

func castToCalendar(a Atomic, to TypeCode) (Atomic, error) {
	switch a.T {
	case TString, TUntyped:
		return ParseCalendarLexical(strings.TrimSpace(a.S), to)
	case TDateTime:
		t := time.Unix(0, a.I).UTC()
		switch to {
		case TDate:
			day := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
			return NewDate(day, ""), nil
		case TTime:
			midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
			return NewTime(t.Sub(midnight).Nanoseconds(), ""), nil
		}
	case TDate:
		if to == TDateTime {
			return NewDateTime(time.Unix(0, a.I).UTC(), ""), nil
		}
	}
	return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
}

// calendar layouts tried in order for each target type.
var calendarLayouts = map[TypeCode][]string{
	TDateTime: {
		"2006-01-02T15:04:05.999999999Z07:00",
		"2006-01-02T15:04:05.999999999",
	},
	TDate: {"2006-01-02Z07:00", "2006-01-02"},
	TTime: {"15:04:05.999999999Z07:00", "15:04:05.999999999"},
}

// ParseCalendarLexical parses xs:dateTime / xs:date / xs:time lexical forms.
func ParseCalendarLexical(s string, to TypeCode) (Atomic, error) {
	for _, layout := range calendarLayouts[to] {
		t, err := time.Parse(layout, s)
		if err != nil {
			continue
		}
		switch to {
		case TDateTime:
			return NewDateTime(t.UTC(), s), nil
		case TDate:
			return NewDate(t.UTC(), s), nil
		case TTime:
			midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
			return NewTime(t.Sub(midnight).Nanoseconds(), s), nil
		}
	}
	return Atomic{}, ErrCast("invalid %s literal %q", to, s)
}

func castToDuration(a Atomic, to TypeCode) (Atomic, error) {
	switch a.T {
	case TString, TUntyped:
		months, ns, err := parseDurationLexical(strings.TrimSpace(a.S))
		if err != nil {
			return Atomic{}, err
		}
		switch to {
		case TYearMonthDuration:
			if ns != 0 {
				return Atomic{}, ErrCast("%q has a day/time part; not a yearMonthDuration", a.S)
			}
			return NewYearMonthDuration(months), nil
		case TDayTimeDuration:
			if months != 0 {
				return Atomic{}, ErrCast("%q has a year/month part; not a dayTimeDuration", a.S)
			}
			return NewDayTimeDuration(time.Duration(ns)), nil
		default:
			return Atomic{T: TDuration, I: months, F: float64(ns) / float64(time.Second), S: a.S}, nil
		}
	case TDuration, TYearMonthDuration, TDayTimeDuration:
		// Inter-duration casts: keep the relevant component.
		switch to {
		case TYearMonthDuration:
			if a.T == TDayTimeDuration {
				return NewYearMonthDuration(0), nil
			}
			return NewYearMonthDuration(a.I), nil
		case TDayTimeDuration:
			if a.T == TYearMonthDuration {
				return NewDayTimeDuration(0), nil
			}
			if a.T == TDuration {
				return NewDayTimeDuration(time.Duration(a.F * float64(time.Second))), nil
			}
			return a, nil
		default:
			switch a.T {
			case TYearMonthDuration:
				return Atomic{T: TDuration, I: a.I}, nil
			default:
				return Atomic{T: TDuration, F: float64(a.I) / float64(time.Second)}, nil
			}
		}
	}
	return Atomic{}, ErrType("cannot cast %s to %s", a.T, to)
}

// parseDurationLexical parses the ISO 8601 duration form
// [-]PnYnMnDTnHnMnS into (months, nanoseconds).
func parseDurationLexical(s string) (months, ns int64, err error) {
	orig := s
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if !strings.HasPrefix(s, "P") {
		return 0, 0, ErrCast("invalid duration %q", orig)
	}
	s = s[1:]
	datePart, timePart := s, ""
	if i := strings.IndexByte(s, 'T'); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
	}
	if datePart == "" && timePart == "" {
		return 0, 0, ErrCast("invalid duration %q", orig)
	}
	var seenAny bool
	scan := func(part string, isTime bool) error {
		num := ""
		for i := 0; i < len(part); i++ {
			c := part[i]
			if (c >= '0' && c <= '9') || c == '.' {
				num += string(c)
				continue
			}
			if num == "" {
				return ErrCast("invalid duration %q", orig)
			}
			v, ferr := strconv.ParseFloat(num, 64)
			if ferr != nil {
				return ErrCast("invalid duration %q", orig)
			}
			seenAny = true
			switch {
			case !isTime && c == 'Y':
				months += int64(v) * 12
			case !isTime && c == 'M':
				months += int64(v)
			case !isTime && c == 'D':
				ns += int64(v * 24 * float64(time.Hour))
			case isTime && c == 'H':
				ns += int64(v * float64(time.Hour))
			case isTime && c == 'M':
				ns += int64(v * float64(time.Minute))
			case isTime && c == 'S':
				ns += int64(v * float64(time.Second))
			default:
				return ErrCast("invalid duration %q", orig)
			}
			num = ""
		}
		if num != "" {
			return ErrCast("invalid duration %q", orig)
		}
		return nil
	}
	if err := scan(datePart, false); err != nil {
		return 0, 0, err
	}
	if err := scan(timePart, true); err != nil {
		return 0, 0, err
	}
	if !seenAny {
		return 0, 0, ErrCast("invalid duration %q", orig)
	}
	if neg {
		months, ns = -months, -ns
	}
	return months, ns, nil
}

// Promote applies the numeric type-promotion rules: the "common type" for a
// pair of numeric operands (integer -> decimal -> float -> double). It also
// promotes xs:anyURI to xs:string for comparisons.
func Promote(t1, t2 TypeCode) TypeCode {
	rank := func(t TypeCode) int {
		switch t {
		case TInteger:
			return 1
		case TDecimal:
			return 2
		case TFloat:
			return 3
		case TDouble:
			return 4
		}
		return 0
	}
	if r1, r2 := rank(t1), rank(t2); r1 > 0 && r2 > 0 {
		if r1 >= r2 {
			return t1
		}
		return t2
	}
	if t1 == TAnyURI && t2 == TString || t2 == TAnyURI && t1 == TString {
		return TString
	}
	return t1
}
