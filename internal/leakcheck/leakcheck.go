// Package leakcheck asserts that tests do not leak engine goroutines,
// using only runtime.Stack snapshots — no external dependencies. A
// goroutine counts as ours when its stack mentions the module's packages
// (import path prefix "xqgo"), so unrelated runtime/netpoll goroutines
// never trip the check.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the current xqgo goroutine count and registers a
// cleanup that fails the test if more are still running at the end.
// Goroutines winding down get a grace window before the check fails.
func Check(t testing.TB) {
	t.Helper()
	base := Count()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if Count() <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d xqgo goroutines at start, %d still running\n%s",
			base, Count(), strings.Join(engineStacks(), "\n\n"))
	})
}

// Count returns the number of running goroutines attributable to xqgo
// code.
func Count() int { return len(engineStacks()) }

func engineStacks() []string {
	var out []string
	for _, s := range stacks() {
		if interesting(s) {
			out = append(out, s)
		}
	}
	return out
}

// interesting reports whether a goroutine stack belongs to the engine.
// The test harness's own goroutines (tRunner, fuzz workers) and this
// package's snapshots are excluded even though they may transitively
// mention xqgo frames.
func interesting(stack string) bool {
	if stack == "" ||
		strings.Contains(stack, "leakcheck.") ||
		strings.Contains(stack, "testing.tRunner") ||
		strings.Contains(stack, "testing.runFuzzing") ||
		strings.Contains(stack, "testing.(*F)") {
		return false
	}
	return strings.Contains(stack, "xqgo")
}

func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(string(buf), "\n\n")
}
