package xmlparse

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"

	"xqgo/internal/projection"
	"xqgo/internal/serializer"
	"xqgo/internal/store"
)

// bigBib renders a bibliography large enough that the decoder cannot slurp
// it in one buffered read.
func bigBib(books int) string {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&sb, `<book year="%d"><title>Book %d</title><author><last>L%d</last><first>F%d</first></author><price>%d.50</price></book>`,
			1980+i%25, i, i, i, 20+i%60)
	}
	sb.WriteString("</bib>")
	return sb.String()
}

// meteredReader counts bytes handed to the decoder.
type meteredReader struct {
	r io.Reader
	n atomic.Int64
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	m.n.Add(int64(n))
	return n, err
}

// TestIncrementalIsLazy: creating the incremental parser consumes nothing,
// touching the first child consumes a prefix, and Complete consumes the rest.
func TestIncrementalIsLazy(t *testing.T) {
	src := bigBib(5000)
	mr := &meteredReader{r: strings.NewReader(src)}
	p := ParseIncremental(mr, Options{URI: "bib.xml"})
	doc := p.Document()
	if !doc.Lazy() {
		t.Fatal("document should report Lazy before completion")
	}
	if got := mr.n.Load(); got != 0 {
		t.Fatalf("ParseIncremental consumed %d bytes before any demand", got)
	}
	// Navigate down the first spine only: ChildrenOf would force the whole
	// parse (the last-sibling check needs the parent closed), but first-child
	// hops stop at the frontier.
	bib := doc.FirstChildID(0)
	if doc.NameOf(bib).Local != "bib" {
		t.Fatalf("root element = %s", doc.NameOf(bib))
	}
	book := doc.FirstChildID(bib)
	if doc.NameOf(book).Local != "book" {
		t.Fatalf("first child = %s", doc.NameOf(book))
	}
	after := mr.n.Load()
	if after == 0 || after >= int64(len(src)) {
		t.Fatalf("reading the root element consumed %d of %d bytes; want a proper prefix", after, len(src))
	}
	if err := doc.Complete(); err != nil {
		t.Fatal(err)
	}
	if doc.Lazy() {
		t.Fatal("document still lazy after Complete")
	}
	if got := mr.n.Load(); got != int64(len(src)) {
		t.Fatalf("Complete consumed %d of %d bytes", got, len(src))
	}
}

// TestIncrementalAdvance drives the parse one token at a time to the end.
func TestIncrementalAdvance(t *testing.T) {
	p := ParseIncremental(strings.NewReader(bigBib(3)), Options{URI: "bib.xml"})
	steps := 0
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		steps++
	}
	if steps == 0 {
		t.Fatal("no advance steps")
	}
	if done, err := p.Advance(); !done || err != nil {
		t.Fatalf("Advance after completion = (%v, %v), want (true, nil)", done, err)
	}
	if p.Document().Lazy() {
		t.Fatal("document still lazy after exhausting Advance")
	}
}

// TestIncrementalParity: a lazily navigated document serializes identically
// to an eagerly parsed one, across the tricky constructs (namespaces, mixed
// content, comments/PIs, CDATA, whitespace modes).
func TestIncrementalParity(t *testing.T) {
	docs := []string{
		bigBib(50),
		`<a xmlns="urn:d" xmlns:p="urn:p"><p:b attr="1">x</p:b><c/></a>`,
		`<p>mixed <b>bold</b> tail<!--c--><?pi data?></p>`,
		`<r><![CDATA[<not-a-tag>]]>&amp;</r>`,
		"<w>\n  <x> keep me </x>\n</w>",
	}
	for _, src := range docs {
		for _, strip := range []bool{false, true} {
			opts := Options{URI: "t.xml", StripWhitespace: strip}
			eagerDoc, err := Parse(strings.NewReader(src), opts)
			if err != nil {
				t.Fatalf("eager parse: %v", err)
			}
			lazyDoc := ParseIncremental(strings.NewReader(src), opts).Document()
			want, err := serializer.NodeToString(eagerDoc.RootNode())
			if err != nil {
				t.Fatal(err)
			}
			// Serialization of the lazy document drives the parse itself.
			got, err := serializer.NodeToString(lazyDoc.RootNode())
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("strip=%v parity mismatch\n got %q\nwant %q", strip, got, want)
			}
			if eagerDoc.NumNodes() != lazyDoc.NumNodes() {
				t.Errorf("node count: eager %d lazy %d", eagerDoc.NumNodes(), lazyDoc.NumNodes())
			}
		}
	}
}

// TestIncrementalErrorParity: lazy completion reports the same error strings
// as the eager parser, and the error is sticky.
func TestIncrementalErrorParity(t *testing.T) {
	cases := []string{
		`<a></a><b></b>`,         // multiple roots
		`<a><b></a>`,             // mismatched tags
		`<a>`,                    // EOF inside element
		`text only`,              // chardata outside root
		``,                       // no root element
		`<a attr="x" attr="y"/>`, // duplicate attribute
	}
	for _, src := range cases {
		_, eagerErr := Parse(strings.NewReader(src), Options{URI: "t.xml"})
		if eagerErr == nil {
			t.Fatalf("eager parse of %q succeeded", src)
		}
		doc := ParseIncremental(strings.NewReader(src), Options{URI: "t.xml"}).Document()
		lazyErr := doc.Complete()
		if lazyErr == nil {
			t.Fatalf("lazy completion of %q succeeded", src)
		}
		if eagerErr.Error() != lazyErr.Error() {
			t.Errorf("error parity for %q:\n eager %q\n lazy  %q", src, eagerErr, lazyErr)
		}
		if again := doc.Complete(); again == nil || again.Error() != lazyErr.Error() {
			t.Errorf("error not sticky for %q: %v", src, again)
		}
	}
}

// TestIncrementalAbortPanic: navigating past a parse failure panics with
// store.Abort carrying the parse error (the engine converts it at its
// boundary).
func TestIncrementalAbortPanic(t *testing.T) {
	doc := ParseIncremental(strings.NewReader(`<a><b></a>`), Options{URI: "t.xml"}).Document()
	defer func() {
		r := recover()
		ab, ok := r.(store.Abort)
		if !ok {
			t.Fatalf("recovered %T (%v), want store.Abort", r, r)
		}
		if !strings.Contains(ab.Error(), "xmlparse") {
			t.Fatalf("abort error = %q", ab.Error())
		}
	}()
	_, _ = serializer.NodeToString(doc.RootNode())
	t.Fatal("navigation over a broken stream did not panic")
}

// titleOnly is the projection for /bib/book/title with the title subtree
// kept (what ExtractPaths emits for that query).
func titleOnly() *projection.Paths {
	p := projection.New()
	p.Add(projection.Path{Steps: []projection.Step{
		{Local: "bib"}, {Local: "book"}, {Local: "title"},
	}, KeepSubtree: true})
	return p
}

// TestProjectionSkipsSubtrees: under a /bib/book/title projection, authors
// and prices are never materialized but titles survive with full content.
func TestProjectionSkipsSubtrees(t *testing.T) {
	src := bigBib(200)
	var st tallyStats
	opts := Options{URI: "bib.xml", Projection: titleOnly(), Stats: &st}
	doc := ParseIncremental(strings.NewReader(src), opts).Document()
	if err := doc.Complete(); err != nil {
		t.Fatal(err)
	}
	full, err := Parse(strings.NewReader(src), Options{URI: "bib.xml"})
	if err != nil {
		t.Fatal(err)
	}
	if doc.NumNodes() >= full.NumNodes() {
		t.Fatalf("projection built %d nodes, full parse %d", doc.NumNodes(), full.NumNodes())
	}
	if st.skipped.Load() == 0 {
		t.Fatal("no skipped nodes recorded")
	}
	// The document node predates the first increment, so deltas cover all
	// nodes but that one.
	if st.built.Load() != int64(doc.NumNodes())-1 {
		t.Fatalf("stats built %d, store holds %d", st.built.Load(), doc.NumNodes())
	}
	// The kept subtrees are intact, the skipped ones are gone.
	out, err := serializer.NodeToString(doc.RootNode())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<title>Book 0</title>") || !strings.Contains(out, "<title>Book 199</title>") {
		t.Errorf("kept titles missing from %q...", out[:120])
	}
	if strings.Contains(out, "<author>") || strings.Contains(out, "<price>") {
		t.Error("skipped subtrees leaked into the projected document")
	}
}

// tallyStats accumulates parser increments.
type tallyStats struct {
	tokens, built, skipped, bytes atomic.Int64
}

func (s *tallyStats) OnParse(tokens, built, skipped, bytes int64) {
	s.tokens.Add(tokens)
	s.built.Add(built)
	s.skipped.Add(skipped)
	s.bytes.Add(bytes)
}

// TestProjectionKeepAllMatchesFull: a keep-everything projection behaves
// exactly like no projection.
func TestProjectionKeepAllMatchesFull(t *testing.T) {
	src := bigBib(30)
	keep := projection.KeepEverything()
	a := ParseIncremental(strings.NewReader(src), Options{URI: "b.xml", Projection: keep}).Document()
	if err := a.Complete(); err != nil {
		t.Fatal(err)
	}
	b, err := Parse(strings.NewReader(src), Options{URI: "b.xml"})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("keep-all projection built %d nodes, plain parse %d", a.NumNodes(), b.NumNodes())
	}
}

// TestProjectionSkippedStreamStillValidated: well-formedness errors inside a
// skipped subtree still surface (skipping saves building, not tokenizing).
func TestProjectionSkippedStreamStillValidated(t *testing.T) {
	src := `<bib><book><title>t</title><author><broken></author></book></bib>`
	doc := ParseIncremental(strings.NewReader(src), Options{URI: "b.xml", Projection: titleOnly()}).Document()
	if err := doc.Complete(); err == nil {
		t.Fatal("malformed skipped subtree went unreported")
	}
}
