package xmlparse

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus adds the repo's seed documents plus a few hand-picked edge
// cases to a fuzz target.
func seedCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "seed_*.xml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		``,
		`<a/>`,
		`<a>text</a>`,
		`<a><b k="v"/>tail</a>`,
		`<a xmlns:p="u"><p:b/></a>`,
		`<a><!-- c --><?pi d?><![CDATA[x]]></a>`,
		`<a>&lt;&amp;&#65;</a>`,
		`<a><b></a></b>`,  // mismatched tags
		`<a`,              // truncated
		`<a>&bogus;</a>`,  // undefined entity
		"<a>\xff\xfe</a>", // invalid UTF-8
	} {
		f.Add([]byte(s))
	}
}

// FuzzParseIncremental drives arbitrary bytes through the incremental
// parser, asserting it never panics and agrees with the eager entry point:
// both must accept or both must reject every input.
func FuzzParseIncremental(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		p := ParseIncremental(bytes.NewReader(data), Options{URI: "fuzz:doc"})
		var incErr error
		for {
			done, err := p.Advance()
			if err != nil {
				incErr = err
				break
			}
			if done {
				break
			}
		}
		eager, eagerErr := Parse(bytes.NewReader(data), Options{URI: "fuzz:doc"})
		if (incErr == nil) != (eagerErr == nil) {
			t.Fatalf("incremental err = %v, eager err = %v: the two entry points disagree", incErr, eagerErr)
		}
		if incErr != nil {
			return
		}
		// Both accepted: the stores must describe the same tree.
		if got, want := p.Document().NumNodes(), eager.NumNodes(); got != want {
			t.Fatalf("incremental built %d nodes, eager built %d", got, want)
		}
	})
}
