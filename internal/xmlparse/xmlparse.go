// Package xmlparse parses well-formed XML into store documents. It uses the
// standard library tokenizer (encoding/xml) for the lexical layer and builds
// the array representation in a single pass, so parsing is itself a
// streaming operation.
package xmlparse

import (
	"encoding/xml"
	"io"
	"strings"

	"xqgo/internal/projection"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// Options configure parsing.
type Options struct {
	// URI is recorded as the document/base URI.
	URI string
	// PoolText enables text-value pooling in the store.
	PoolText bool
	// Names optionally shares a name pool across documents.
	Names *store.NamePool
	// StripWhitespace drops text nodes that consist only of XML whitespace
	// and have element siblings ("ignorable whitespace"); off by default.
	StripWhitespace bool
	// Projection, when projectable, lets the parser skip subtrees no query
	// path can touch (see internal/projection). Skipped subtrees are
	// tokenized but never materialized.
	Projection *projection.Paths
	// Stats, when non-nil, receives ingestion counter deltas.
	Stats Stats
	// Tap, when non-nil, observes every decoded token in document order,
	// before whitespace stripping, projection skipping or materialization
	// (the streamexec event bus: one parse pass can feed the store builder
	// and any number of event-handler automata). A non-nil error aborts the
	// parse with it. Token payloads ([]byte of CharData etc.) are only valid
	// for the duration of the call.
	Tap func(xml.Token) error
	// Charge, when non-nil, is called with a byte estimate of the store
	// growth each increment retains (node records plus materialized input
	// bytes). A non-nil return aborts the parse with it — this is how a
	// per-query memory budget stops a hostile document before it OOMs the
	// process (see internal/limits).
	Charge func(bytes int64) error
}

// Parse reads one XML document from r, eagerly: the incremental machinery
// driven to completion in one shot.
func Parse(r io.Reader, opts Options) (*store.Document, error) {
	doc := ParseIncremental(r, opts).Document()
	if err := doc.Complete(); err != nil {
		return nil, err
	}
	return doc, nil
}

// ParseString parses a document held in a string.
func ParseString(s string, opts Options) (*store.Document, error) {
	return Parse(strings.NewReader(s), opts)
}

// convName converts an encoding/xml name (Space = resolved URI) to a QName.
// encoding/xml loses the original prefix; the serializer re-derives one from
// the namespace declarations.
func convName(n xml.Name) xdm.QName {
	return xdm.QName{Space: n.Space, Local: n.Local}
}
