// Package xmlparse parses well-formed XML into store documents. It uses the
// standard library tokenizer (encoding/xml) for the lexical layer and builds
// the array representation in a single pass, so parsing is itself a
// streaming operation.
package xmlparse

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// Options configure parsing.
type Options struct {
	// URI is recorded as the document/base URI.
	URI string
	// PoolText enables text-value pooling in the store.
	PoolText bool
	// Names optionally shares a name pool across documents.
	Names *store.NamePool
	// StripWhitespace drops text nodes that consist only of XML whitespace
	// and have element siblings ("ignorable whitespace"); off by default.
	StripWhitespace bool
}

// Parse reads one XML document from r.
func Parse(r io.Reader, opts Options) (*store.Document, error) {
	b := store.NewBuilder(store.BuilderOptions{
		PoolText: opts.PoolText,
		Names:    opts.Names,
		URI:      opts.URI,
	})
	b.StartDocument()

	dec := xml.NewDecoder(r)
	dec.Strict = true
	depth := 0
	seenRoot := false
	var pendingWS []string // whitespace-only runs, flushed if followed by non-ws

	flushWS := func() {
		for _, s := range pendingWS {
			b.Text(s)
		}
		pendingWS = pendingWS[:0]
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlparse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && seenRoot {
				return nil, fmt.Errorf("xmlparse: multiple root elements")
			}
			seenRoot = true
			if !opts.StripWhitespace {
				flushWS()
			} else {
				pendingWS = pendingWS[:0]
			}
			b.StartElement(convName(t.Name))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" {
					b.NSDecl(a.Name.Local, a.Value)
					continue
				}
				if a.Name.Space == "" && a.Name.Local == "xmlns" {
					b.NSDecl("", a.Value)
					continue
				}
				if err := b.Attr(convName(a.Name), a.Value); err != nil {
					return nil, fmt.Errorf("xmlparse: %w", err)
				}
			}
			depth++
		case xml.EndElement:
			if opts.StripWhitespace {
				pendingWS = pendingWS[:0]
			} else {
				flushWS()
			}
			b.EndElement()
			depth--
		case xml.CharData:
			if depth == 0 {
				if strings.TrimSpace(string(t)) != "" {
					return nil, fmt.Errorf("xmlparse: character data outside the root element")
				}
				continue
			}
			s := string(t)
			if opts.StripWhitespace && strings.TrimSpace(s) == "" {
				pendingWS = append(pendingWS, s)
				continue
			}
			flushWS()
			b.Text(s)
		case xml.Comment:
			if depth > 0 {
				flushWS()
				b.Comment(string(t))
			}
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // XML declaration
			}
			if depth > 0 {
				flushWS()
				b.PI(t.Target, string(t.Inst))
			}
		case xml.Directive:
			// DOCTYPE etc.: accepted and dropped.
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("xmlparse: unexpected EOF inside element")
	}
	if !seenRoot {
		return nil, fmt.Errorf("xmlparse: no root element")
	}
	return b.Done()
}

// ParseString parses a document held in a string.
func ParseString(s string, opts Options) (*store.Document, error) {
	return Parse(strings.NewReader(s), opts)
}

// convName converts an encoding/xml name (Space = resolved URI) to a QName.
// encoding/xml loses the original prefix; the serializer re-derives one from
// the namespace declarations.
func convName(n xml.Name) xdm.QName {
	return xdm.QName{Space: n.Space, Local: n.Local}
}
