package xmlparse

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"xqgo/internal/faultinject"
	"xqgo/internal/projection"
	"xqgo/internal/store"
)

// Stats receives ingestion counters as parsing progresses. All arguments are
// deltas for one parse increment. Calls happen on whichever goroutine drives
// the parse (under the document's frontier lock for lazy parses), one call
// per increment; implementations should be cheap.
type Stats interface {
	OnParse(tokens, nodesBuilt, nodesSkipped, bytes int64)
}

// countingReader counts bytes pulled from the underlying input, giving the
// bytes_parsed_on_demand counter (read-ahead by the tokenizer's internal
// buffer is included — it is demand all the same).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	if err := faultinject.Fire(faultinject.ParserRead); err != nil {
		return 0, err
	}
	if faultinject.Fire(faultinject.FeedTruncate) != nil {
		// Premature end of input: the tokenizer sees EOF mid-document
		// (typically mid-token) and must surface a structured parse error.
		return 0, io.EOF
	}
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Incremental is a resumable parse: tokens are consumed one increment at a
// time, appending to an under-construction store document. The document is
// usable immediately — its accessors drive the parse forward on demand (the
// paper's pull-based, parse-as-far-as-the-query-asks ingestion). With a
// projection in Options, subtrees no query path can touch are skipped:
// tokenized, counted, never materialized.
type Incremental struct {
	b      *store.Builder
	dec    *xml.Decoder
	cr     countingReader
	opts   Options
	doc    *store.Document
	runner *projection.Runner

	depth     int // open materialized elements
	skipDepth int // >0: inside a projection-skipped subtree
	seenRoot  bool
	pendingWS []string

	lastBytes int64 // cr.n at the previous stats flush
}

// ParseIncremental starts an incremental parse of one XML document. The
// returned parse's Document is valid immediately; it fills in as the
// document is navigated (or when Advance/Complete are called).
func ParseIncremental(r io.Reader, opts Options) *Incremental {
	p := &Incremental{
		b: store.NewBuilder(store.BuilderOptions{
			PoolText: opts.PoolText,
			Names:    opts.Names,
			URI:      opts.URI,
		}),
		cr:     countingReader{r: r},
		opts:   opts,
		runner: projection.NewRunner(opts.Projection),
	}
	p.dec = xml.NewDecoder(&p.cr)
	p.dec.Strict = true
	p.b.StartDocument()
	p.doc = store.BeginLazy(p.b, p.advance)
	return p
}

// Document returns the (possibly still in-progress) document.
func (p *Incremental) Document() *store.Document { return p.doc }

// Advance parses one increment; done reports end of input. Equivalent to
// letting an accessor pull, provided for explicit chunked driving.
func (p *Incremental) Advance() (done bool, err error) { return p.doc.Advance() }

// advance consumes one token. It runs under the document's frontier lock —
// it must never call the locking store.Document accessors.
func (p *Incremental) advance() (done bool, err error) {
	tok, err := p.dec.Token()
	if err == io.EOF {
		return true, p.finish()
	}
	if err != nil {
		p.flushStats(1, 0)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// A canceled input context is not a malformed document: pass
			// the cancellation through undressed so callers classify it
			// as such (504, not 422).
			return false, err
		}
		return false, fmt.Errorf("xmlparse: %w", err)
	}
	if ferr := faultinject.Fire(faultinject.StoreAbort); ferr != nil {
		p.flushStats(1, 0)
		return false, ferr
	}
	if p.opts.Tap != nil {
		if terr := p.opts.Tap(tok); terr != nil {
			p.flushStats(1, 0)
			return false, terr
		}
	}

	before := p.b.NodeCount()
	var skipped int64

	switch t := tok.(type) {
	case xml.StartElement:
		if p.skipDepth > 0 {
			p.skipDepth++
			skipped = 1 + int64(countAttrs(t.Attr))
			break
		}
		if p.depth == 0 && p.seenRoot {
			p.flushStats(1, 0)
			return false, fmt.Errorf("xmlparse: multiple root elements")
		}
		p.seenRoot = true
		if p.runner != nil {
			if p.runner.StartElement(t.Name.Space, t.Name.Local) == projection.Skip {
				p.skipDepth = 1
				p.pendingWS = p.pendingWS[:0]
				skipped = 1 + int64(countAttrs(t.Attr))
				break
			}
		}
		if !p.opts.StripWhitespace {
			p.flushWS()
		} else {
			p.pendingWS = p.pendingWS[:0]
		}
		p.b.StartElement(convName(t.Name))
		for _, a := range t.Attr {
			if a.Name.Space == "xmlns" {
				p.b.NSDecl(a.Name.Local, a.Value)
				continue
			}
			if a.Name.Space == "" && a.Name.Local == "xmlns" {
				p.b.NSDecl("", a.Value)
				continue
			}
			if err := p.b.Attr(convName(a.Name), a.Value); err != nil {
				p.flushStats(1, 0)
				return false, fmt.Errorf("xmlparse: %w", err)
			}
		}
		p.depth++

	case xml.EndElement:
		if p.skipDepth > 0 {
			p.skipDepth--
			break
		}
		if p.opts.StripWhitespace {
			p.pendingWS = p.pendingWS[:0]
		} else {
			p.flushWS()
		}
		p.b.EndElement()
		if p.runner != nil {
			p.runner.EndElement()
		}
		p.depth--

	case xml.CharData:
		if p.skipDepth > 0 {
			if strings.TrimSpace(string(t)) != "" {
				skipped = 1
			}
			break
		}
		if p.depth == 0 {
			if strings.TrimSpace(string(t)) != "" {
				p.flushStats(1, 0)
				return false, fmt.Errorf("xmlparse: character data outside the root element")
			}
			break
		}
		if p.runner != nil && !p.runner.KeepingContent() {
			// Traversal/empty-target element: its character content is
			// statically unobservable, drop it.
			if strings.TrimSpace(string(t)) != "" {
				skipped = 1
			}
			break
		}
		s := string(t)
		if p.opts.StripWhitespace && strings.TrimSpace(s) == "" {
			p.pendingWS = append(p.pendingWS, s)
			break
		}
		p.flushWS()
		p.b.Text(s)

	case xml.Comment:
		if p.skipDepth > 0 {
			skipped = 1
			break
		}
		if p.depth > 0 {
			if p.runner != nil && !p.runner.KeepingContent() {
				skipped = 1
				break
			}
			p.flushWS()
			p.b.Comment(string(t))
		}

	case xml.ProcInst:
		if t.Target == "xml" {
			break // XML declaration
		}
		if p.skipDepth > 0 {
			skipped = 1
			break
		}
		if p.depth > 0 {
			if p.runner != nil && !p.runner.KeepingContent() {
				skipped = 1
				break
			}
			p.flushWS()
			p.b.PI(t.Target, string(t.Inst))
		}

	case xml.Directive:
		// DOCTYPE etc.: accepted and dropped.
	}

	built := int64(p.b.NodeCount() - before)
	bytes := p.bytesDelta()
	if p.opts.Stats != nil {
		p.opts.Stats.OnParse(1, built, skipped, bytes)
	}
	if p.opts.Charge != nil && built > 0 {
		// Store growth this increment retains: node records plus the
		// materialized input bytes (values, names). Skipped subtrees build
		// nothing and are never charged.
		if cerr := p.opts.Charge(built*nodeEstBytes + bytes); cerr != nil {
			return false, cerr
		}
	}
	return false, nil
}

// nodeEstBytes is the charged overhead estimate per store node record
// (the pre-order array slots: kind, name, parent, sibling/child links,
// region labels); text payloads ride on the increment's input bytes.
const nodeEstBytes = 64

// finish validates and finalizes the document at end of input.
func (p *Incremental) finish() error {
	defer p.flushStats(0, 0)
	if p.depth != 0 || p.skipDepth != 0 {
		return fmt.Errorf("xmlparse: unexpected EOF inside element")
	}
	if !p.seenRoot {
		return fmt.Errorf("xmlparse: no root element")
	}
	before := p.b.NodeCount()
	if _, err := p.b.Done(); err != nil {
		return err
	}
	built := int64(p.b.NodeCount() - before)
	if p.opts.Stats != nil {
		p.opts.Stats.OnParse(0, built, 0, 0)
	}
	if p.opts.Charge != nil && built > 0 {
		if cerr := p.opts.Charge(built * nodeEstBytes); cerr != nil {
			return cerr
		}
	}
	return nil
}

func (p *Incremental) flushWS() {
	for _, s := range p.pendingWS {
		p.b.Text(s)
	}
	p.pendingWS = p.pendingWS[:0]
}

func (p *Incremental) flushStats(tokens, skipped int64) {
	if p.opts.Stats != nil {
		p.opts.Stats.OnParse(tokens, 0, skipped, p.bytesDelta())
	}
}

func (p *Incremental) bytesDelta() int64 {
	d := p.cr.n - p.lastBytes
	p.lastBytes = p.cr.n
	return d
}

// countAttrs counts real attributes (namespace declarations excluded — they
// never become nodes).
func countAttrs(attrs []xml.Attr) int {
	n := 0
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
			continue
		}
		n++
	}
	return n
}
