package xmlparse

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"testing"

	"xqgo/internal/serializer"
)

// boundaryDoc packs the constructs most sensitive to read-boundary handling
// into ~230 bytes: multi-byte runes in names, attributes and text, entity
// and character references, CDATA with markup-looking content, a comment, a
// processing instruction, and mixed content with ignorable whitespace.
const boundaryDoc = `<?xml version="1.0"?><α t="a&amp;b — ✓">héllo <b>日本語</b>&lt;tail&gt;
  <c/>
<!--ç–mt--><?pi déjà?><![CDATA[raw <tag> &stuff
line2]]>&#x1F600; fin</α>`

// chunkedReader hands out the input in fixed pieces, one Read per piece —
// the adversarial io.Reader for incremental parsing.
type chunkedReader struct {
	chunks [][]byte
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	for len(c.chunks) > 0 && len(c.chunks[0]) == 0 {
		c.chunks = c.chunks[1:]
	}
	if len(c.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.chunks[0])
	c.chunks[0] = c.chunks[0][n:]
	return n, nil
}

// tokenSignature renders a tapped token stream into a comparable string.
// Adjacent character data is coalesced, so the signature is independent of
// how the decoder slices text runs.
type tokenSignature struct {
	sb   strings.Builder
	text strings.Builder
}

func (s *tokenSignature) add(tok xml.Token) error {
	if cd, ok := tok.(xml.CharData); ok {
		s.text.Write(cd)
		return nil
	}
	if s.text.Len() > 0 {
		fmt.Fprintf(&s.sb, "text(%q)\n", s.text.String())
		s.text.Reset()
	}
	switch t := tok.(type) {
	case xml.StartElement:
		fmt.Fprintf(&s.sb, "start(%s:%s", t.Name.Space, t.Name.Local)
		for _, a := range t.Attr {
			fmt.Fprintf(&s.sb, " %s:%s=%q", a.Name.Space, a.Name.Local, a.Value)
		}
		s.sb.WriteString(")\n")
	case xml.EndElement:
		fmt.Fprintf(&s.sb, "end(%s:%s)\n", t.Name.Space, t.Name.Local)
	case xml.Comment:
		fmt.Fprintf(&s.sb, "comment(%q)\n", string(t))
	case xml.ProcInst:
		fmt.Fprintf(&s.sb, "pi(%s %q)\n", t.Target, string(t.Inst))
	case xml.Directive:
		fmt.Fprintf(&s.sb, "directive(%q)\n", string(t))
	}
	return nil
}

func (s *tokenSignature) String() string {
	if s.text.Len() > 0 {
		fmt.Fprintf(&s.sb, "text(%q)\n", s.text.String())
		s.text.Reset()
	}
	return s.sb.String()
}

// parseChunked drives a full incremental parse over the given chunks and
// returns the serialized document, node count and tapped token signature.
func parseChunked(t *testing.T, chunks [][]byte, strip bool) (string, int, string) {
	t.Helper()
	sig := &tokenSignature{}
	p := ParseIncremental(&chunkedReader{chunks: chunks}, Options{
		URI:             "boundary.xml",
		StripWhitespace: strip,
		Tap:             sig.add,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatalf("advance: %v", err)
		}
		if done {
			break
		}
	}
	out, err := serializer.NodeToString(p.Document().RootNode())
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return out, p.Document().NumNodes(), sig.String()
}

// TestChunkBoundaryParity splits boundaryDoc at every byte offset — through
// multi-byte runes, entity references and CDATA — and checks each split
// parses to the same document and the same tapped token stream as the
// one-shot parse, in both whitespace modes.
func TestChunkBoundaryParity(t *testing.T) {
	src := []byte(boundaryDoc)
	for _, strip := range []bool{false, true} {
		eager, err := Parse(strings.NewReader(boundaryDoc), Options{URI: "boundary.xml", StripWhitespace: strip})
		if err != nil {
			t.Fatalf("eager parse: %v", err)
		}
		want, err := serializer.NodeToString(eager.RootNode())
		if err != nil {
			t.Fatal(err)
		}
		wantNodes := eager.NumNodes()
		_, _, wantSig := parseChunked(t, [][]byte{src}, strip)

		for off := 1; off < len(src); off++ {
			got, nodes, sig := parseChunked(t,
				[][]byte{append([]byte(nil), src[:off]...), append([]byte(nil), src[off:]...)}, strip)
			if got != want {
				t.Fatalf("strip=%v split@%d: document mismatch\n got %q\nwant %q", strip, off, got, want)
			}
			if nodes != wantNodes {
				t.Fatalf("strip=%v split@%d: %d nodes, want %d", strip, off, nodes, wantNodes)
			}
			if sig != wantSig {
				t.Fatalf("strip=%v split@%d: token stream mismatch\n got %s\nwant %s", strip, off, sig, wantSig)
			}
		}

		// The pathological single-byte drip must agree too.
		drip := make([][]byte, len(src))
		for i := range src {
			drip[i] = src[i : i+1]
		}
		got, nodes, sig := parseChunked(t, drip, strip)
		if got != want || nodes != wantNodes || sig != wantSig {
			t.Fatalf("strip=%v byte drip: parity mismatch\n got %q\nwant %q", strip, got, want)
		}
	}
}
