package xmlparse

import (
	"strings"
	"testing"

	"xqgo/internal/serializer"
	"xqgo/internal/xdm"
)

func parse(t *testing.T, src string) *xdm.Node {
	t.Helper()
	doc, err := ParseString(src, Options{URI: "test.xml"})
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n := xdm.Node(doc.RootNode())
	return &n
}

func TestBasicParse(t *testing.T) {
	root := *parse(t, `<book year="1967"><title>The politics of experience</title><author>R.D. Laing</author></book>`)
	if root.Kind() != xdm.DocumentNode {
		t.Fatal("root is the document node")
	}
	book := root.ChildrenOf()[0]
	if book.NodeName().Local != "book" {
		t.Fatal("book element")
	}
	if got := book.AttributesOf()[0].StringValue(); got != "1967" {
		t.Errorf("@year = %q", got)
	}
	kids := book.ChildrenOf()
	if len(kids) != 2 {
		t.Fatalf("children = %d", len(kids))
	}
	if kids[1].StringValue() != "R.D. Laing" {
		t.Errorf("author = %q", kids[1].StringValue())
	}
}

func TestNamespaces(t *testing.T) {
	root := *parse(t, `<book xmlns="www.amazon.com" xmlns:amz="urn:amz">
	  <title>T</title><amz:ref amz:isbn="1341"/></book>`)
	book := root.ChildrenOf()[0]
	if book.NodeName().Space != "www.amazon.com" {
		t.Errorf("default namespace: %q", book.NodeName().Space)
	}
	var ref xdm.Node
	for _, c := range book.ChildrenOf() {
		if c.Kind() == xdm.ElementNode && c.NodeName().Local == "ref" {
			ref = c
		}
	}
	if ref == nil || ref.NodeName().Space != "urn:amz" {
		t.Fatalf("prefixed element: %v", ref)
	}
	attr := ref.AttributesOf()[0]
	if attr.NodeName().Space != "urn:amz" || attr.NodeName().Local != "isbn" {
		t.Errorf("prefixed attribute: %v", attr.NodeName())
	}
	// Unprefixed attributes have no namespace even under a default ns.
	root2 := *parse(t, `<a xmlns="u" x="1"/>`)
	a := root2.ChildrenOf()[0]
	if a.AttributesOf()[0].NodeName().Space != "" {
		t.Error("unprefixed attribute must have no namespace")
	}
}

func TestMixedContent(t *testing.T) {
	root := *parse(t, `<section>The great <title>Persons</title> Even facts...</section>`)
	sec := root.ChildrenOf()[0]
	kids := sec.ChildrenOf()
	if len(kids) != 3 {
		t.Fatalf("mixed content children = %d", len(kids))
	}
	if kids[0].Kind() != xdm.TextNode || kids[1].Kind() != xdm.ElementNode || kids[2].Kind() != xdm.TextNode {
		t.Error("mixed content kinds")
	}
	if sec.StringValue() != "The great Persons Even facts..." {
		t.Errorf("string value = %q", sec.StringValue())
	}
}

func TestCommentsAndPIs(t *testing.T) {
	root := *parse(t, `<a><!-- a comment --><?target data here?><b/></a>`)
	kids := root.ChildrenOf()[0].ChildrenOf()
	if len(kids) != 3 {
		t.Fatalf("children = %d", len(kids))
	}
	if kids[0].Kind() != xdm.CommentNode || kids[0].StringValue() != " a comment " {
		t.Errorf("comment = %q", kids[0].StringValue())
	}
	if kids[1].Kind() != xdm.PINode || kids[1].NodeName().Local != "target" || kids[1].StringValue() != "data here" {
		t.Errorf("pi = %v %q", kids[1].NodeName(), kids[1].StringValue())
	}
}

func TestEntitiesAndCDATA(t *testing.T) {
	root := *parse(t, `<a>&lt;tag&gt; &amp; more <![CDATA[<raw> & stuff]]></a>`)
	if got := root.StringValue(); got != "<tag> & more <raw> & stuff" {
		t.Errorf("decoded content = %q", got)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>x</b>\n  <c>y</c>\n</a>"
	keep, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	strip, err := ParseString(src, Options{StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	a1 := keep.RootNode().ChildrenOf()[0]
	a2 := strip.RootNode().ChildrenOf()[0]
	if len(a1.ChildrenOf()) != 5 { // ws, b, ws, c, ws
		t.Errorf("preserved children = %d, want 5", len(a1.ChildrenOf()))
	}
	if len(a2.ChildrenOf()) != 2 { // b, c
		t.Errorf("stripped children = %d, want 2", len(a2.ChildrenOf()))
	}
	// Whitespace inside mixed content survives stripping.
	m, err := ParseString("<a>hello <b>w</b> world</a>", Options{StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RootNode().StringValue(); got != "hello w world" {
		t.Errorf("mixed content after strip = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                 // no root
		`<a>`,              // unclosed
		`<a></b>`,          // mismatched
		`<a/><b/>`,         // multiple roots
		`text only`,        // no element
		`<a x="1" x="2"/>`, // duplicate attribute
		`<a><b></a></b>`,   // improper nesting
	}
	for _, src := range cases {
		if _, err := ParseString(src, Options{}); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestRoundTripThroughSerializer(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a b="1" c="2"/>`,
		`<a><b>text</b><c/></a>`,
		`<a>one<b/>two</a>`,
		`<a>&lt;escaped&gt; &amp; quoted</a>`,
		`<r><!--c--><?pi d?></r>`,
	}
	for _, src := range cases {
		doc, err := ParseString(src, Options{})
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		out, err := serializer.NodeToString(doc.RootNode())
		if err != nil {
			t.Errorf("serialize %q: %v", src, err)
			continue
		}
		doc2, err := ParseString(out, Options{})
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", src, out, err)
			continue
		}
		out2, _ := serializer.NodeToString(doc2.RootNode())
		if out != out2 {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, out, out2)
		}
	}
}

func TestNamespaceRoundTrip(t *testing.T) {
	src := `<p:a xmlns:p="urn:p" xmlns="urn:d"><b/><p:c attr="v"/></p:a>`
	doc, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := serializer.NodeToString(doc.RootNode())
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(out, Options{})
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	r1 := doc.RootNode().ChildrenOf()[0]
	r2 := doc2.RootNode().ChildrenOf()[0]
	if !r1.NodeName().Equal(r2.NodeName()) {
		t.Errorf("root name: %v vs %v", r1.NodeName(), r2.NodeName())
	}
	c1 := r1.ChildrenOf()
	c2 := r2.ChildrenOf()
	if len(c1) != len(c2) {
		t.Fatalf("children: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !c1[i].NodeName().Equal(c2[i].NodeName()) {
			t.Errorf("child %d: %v vs %v", i, c1[i].NodeName(), c2[i].NodeName())
		}
	}
}

func TestLargeDocument(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<list>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("<item id=\"x\">value</item>")
	}
	sb.WriteString("</list>")
	doc, err := ParseString(sb.String(), Options{PoolText: true})
	if err != nil {
		t.Fatal(err)
	}
	// list + 5000*(item + @id + text) + document
	if doc.NumNodes() != 2+3*5000 {
		t.Errorf("NumNodes = %d", doc.NumNodes())
	}
}
