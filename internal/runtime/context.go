package runtime

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"xqgo/internal/faultinject"
	"xqgo/internal/limits"
	"xqgo/internal/optimizer"
	"xqgo/internal/projection"
	"xqgo/internal/store"
	"xqgo/internal/structjoin"
	"xqgo/internal/trace"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
)

// Dynamic is the dynamic evaluation context shared by one execution:
// external variable values, the document resolver, and the stable current
// dateTime.
type Dynamic struct {
	// Vars maps external variable names (Clark notation) to values.
	Vars map[string]xdm.Sequence
	// ContextItem, when non-nil, is the initial context item.
	ContextItem xdm.Item
	// Resolver loads documents for fn:doc/fn:document. Nil installs the
	// default resolver (registry + filesystem).
	Resolver DocResolver
	// Collections maps collection URIs to sequences.
	Collections map[string]xdm.Sequence
	// Now is the stable current dateTime; zero means time.Now at first use.
	Now time.Time

	// Interrupt, when non-nil, is polled periodically while the engine
	// iterates (a step budget: every interruptStride productive iterator
	// steps). A non-nil return aborts the execution with that error. This is
	// the cancellation hook the service layer uses for per-request deadlines
	// and client disconnects; long-running queries observe it even in the
	// middle of an aggregate that never yields an item to the caller.
	Interrupt func() error

	// Stream, when non-nil, is a pending streaming XML input: it becomes
	// the context document (and resolves under its URI) and is parsed
	// incrementally as the query pulls, under the plan's projection.
	Stream *StreamState

	// Prof, when non-nil, collects execution statistics (see Profile). The
	// engine only ever nil-checks this pointer on the hot path, so leaving
	// it nil keeps profiling free.
	Prof *Profile

	// Trace, when non-nil, collects request-scoped spans (see
	// internal/trace). The engine itself never touches it on the hot path —
	// per-operator and ingestion spans are synthesized from Prof counters
	// after execution — so the per-item cost of tracing is zero; only
	// coarse-grained stages (streaming windows, delivery) record live spans.
	// TraceSpan is the parent span execution-stage spans hang under.
	Trace     *trace.Trace
	TraceSpan *trace.Span

	// Budget, when non-nil, is the execution's memory budget: hot
	// allocation sites charge the bytes they retain and overage surfaces
	// as a structured error (see internal/limits). Shared by value across
	// worker forks — Budget is internally atomic.
	Budget *limits.Budget

	// PlanHint, when not StrategyDefault, overrides the compiled-in join
	// strategy for this execution (Context.WithPlanHints): the per-request
	// escape hatch over the plan-level Options.Strategy policy.
	PlanHint optimizer.Strategy

	// Workers is the morsel-parallelism target for this execution: the
	// total number of workers (including the pulling goroutine) the
	// morsel-split loops may use per round (see morsel.go). Zero or one
	// keeps every loop sequential. Extra workers beyond the first are
	// leased per round from Limiter.
	Workers int
	// Limiter arbitrates extra morsel workers against a shared slot pool;
	// nil uses the process-wide GOMAXPROCS pool.
	Limiter WorkerLimiter

	// root, on a worker context created by fork, points at the execution's
	// base context owning the shared per-execution caches (indexes, memo,
	// stable dateTime, lazily installed resolver). Nil on the base itself.
	root *Dynamic
	// resolveMu guards the lazy Resolver install in resolver(); worker
	// goroutines hit it concurrently on their first fn:doc.
	resolveMu sync.Mutex

	once    sync.Once
	nowAtom xdm.Atomic
	indexes indexCache
	memo    memoCache
	steps   atomic.Uint64
	// plans caches the per-(operator, document) join-strategy decision for
	// this execution (see strategy.go); guarded by planMu, lives on base.
	planMu sync.Mutex
	plans  map[planKey]optimizer.Strategy
	// proj is the executing plan's static projection, installed by
	// newRootFrame for the streamed-input parse. Atomic because a shared
	// Context may back concurrent executions of the same plan (every
	// writer stores the same plan's projection, so any observed value is
	// correct for the stream's one-shot parse).
	proj atomic.Pointer[projection.Paths]

	// Batch buffer pool (see batch.go). Per-context: every morsel worker
	// forks its own Dynamic and with it a private pool, so workers recycle
	// buffers without touching each other's cache lines. The mutex remains
	// for code paths that still share one context across goroutines.
	bufMu   sync.Mutex
	bufFree [][]xdm.Item
}

// base returns the context owning the shared per-execution caches; a worker
// context created by fork delegates to the execution it was forked from.
func (d *Dynamic) base() *Dynamic {
	if d.root != nil {
		return d.root
	}
	return d
}

// fork creates a per-worker slice of the dynamic context: shared inputs are
// carried over by value, while every piece of mutable hot-path state — the
// interrupt step counter, the batch buffer pool, and the profile shard — is
// private to the returned context. Shared caches (structural-join indexes,
// the call memo, the stable dateTime, the lazily installed resolver) stay
// on the base and are reached through base(). Dynamic holds locks and
// atomics, so this is a deliberate field-by-field copy rather than a struct
// copy.
func (d *Dynamic) fork() *Dynamic {
	b := d.base()
	w := &Dynamic{
		Vars:        d.Vars,
		ContextItem: d.ContextItem,
		Resolver:    d.Resolver,
		Collections: d.Collections,
		Now:         d.Now,
		Interrupt:   d.Interrupt,
		Stream:      d.Stream,
		Prof:        d.Prof.shard(),
		Trace:       d.Trace,
		TraceSpan:   d.TraceSpan,
		Budget:      d.Budget,
		PlanHint:    d.PlanHint,
		Workers:     1, // workers never nest their own morsel rounds
		root:        b,
	}
	w.proj.Store(d.proj.Load())
	return w
}

// interruptStride bounds how often the Interrupt hook actually runs: once
// per this many CheckInterrupt calls. Checks are placed on the engine's
// unbounded loops (path steps, FLWOR tuples, ranges), so a runaway query
// polls its deadline every few thousand items at worst.
const interruptStride = 256

// CheckInterrupt polls the cancellation hook, rate-limited by the step
// budget. The counter is per-context: parallel workers run on forked
// contexts, so each has its own counter (no shared cache line in the
// hottest loop) while the deadline check itself — the Interrupt hook —
// stays shared, keeping every worker's poll latency bounded by one stride.
func (d *Dynamic) CheckInterrupt() error {
	if d.Interrupt == nil {
		return nil
	}
	if d.steps.Add(1)%interruptStride != 0 {
		return nil
	}
	d.Prof.addInterruptPoll()
	return d.Interrupt()
}

// SeedIndex pre-populates the per-execution structural-join index cache
// with an already built index. The service layer's document catalog builds
// one index per document and shares it across requests, so concurrent
// executions skip the per-Dynamic lazy build.
func (d *Dynamic) SeedIndex(doc *store.Document, idx *structjoin.Index) {
	d.base().indexes.seed(doc, idx)
}

// DocResolver resolves a document URI to its document node.
type DocResolver interface {
	Doc(uri string) (xdm.Node, error)
}

// DocRegistry is the default resolver: an in-memory URI->document map with
// optional filesystem fallback. Filesystem misses resolve outside the lock
// with single-flight per URI, so concurrent fn:doc calls for different
// documents proceed in parallel and concurrent calls for the same document
// share one parse instead of racing to duplicate it.
type DocRegistry struct {
	mu    sync.Mutex
	docs  map[string]xdm.Node
	loads map[string]*docLoad
	useFS bool
}

// docLoad is one in-flight filesystem load; waiters block on done and then
// read node/err. Failed loads are not cached — the next caller retries.
type docLoad struct {
	done chan struct{}
	node xdm.Node
	err  error
}

// NewDocRegistry creates a registry. When allowFS is set, unknown URIs are
// read from the local filesystem.
func NewDocRegistry(allowFS bool) *DocRegistry {
	return &DocRegistry{docs: make(map[string]xdm.Node), useFS: allowFS}
}

// Register adds a parsed document under a URI.
func (r *DocRegistry) Register(uri string, doc xdm.Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.docs[uri] = doc
}

// AllowFilesystem toggles the filesystem fallback for unknown URIs without
// discarding existing registrations.
func (r *DocRegistry) AllowFilesystem(allow bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.useFS = allow
}

// Doc implements DocResolver.
func (r *DocRegistry) Doc(uri string) (xdm.Node, error) {
	r.mu.Lock()
	if d, ok := r.docs[uri]; ok {
		r.mu.Unlock()
		return d, nil
	}
	if !r.useFS {
		r.mu.Unlock()
		return nil, xdm.Errf("FODC0002", "document %q not found", uri)
	}
	if l, ok := r.loads[uri]; ok {
		// Another goroutine is already loading this URI: wait for it.
		r.mu.Unlock()
		<-l.done
		return l.node, l.err
	}
	l := &docLoad{done: make(chan struct{})}
	if r.loads == nil {
		r.loads = make(map[string]*docLoad)
	}
	r.loads[uri] = l
	r.mu.Unlock()

	// Slow path outside the lock: unrelated URIs load concurrently. The
	// load runs under a recover boundary — a panicking parse must still
	// reach the close(l.done) below, or every waiter on this URI would
	// block forever.
	l.node, l.err = safeLoadDocFS(uri)

	r.mu.Lock()
	if l.err == nil {
		r.docs[uri] = l.node
	}
	delete(r.loads, uri)
	r.mu.Unlock()
	close(l.done)
	return l.node, l.err
}

// safeLoadDocFS is the single-flight load's recover boundary: panics in
// the loader (or injected by the chaos harness) become ordinary errors so
// waiters are always released.
func safeLoadDocFS(uri string) (n xdm.Node, err error) {
	defer recoverXQ(&err)
	faultinject.FirePanic(faultinject.DocLoadPanic)
	return loadDocFS(uri)
}

// loadDocFS reads and parses one document from the local filesystem.
func loadDocFS(uri string) (xdm.Node, error) {
	f, err := os.Open(uri)
	if err != nil {
		return nil, xdm.Errf("FODC0002", "cannot open document %q: %v", uri, err)
	}
	defer f.Close()
	doc, err := xmlparse.Parse(f, xmlparse.Options{URI: uri})
	if err != nil {
		return nil, xdm.Errf("FODC0002", "cannot parse document %q: %v", uri, err)
	}
	return doc.RootNode(), nil
}

func (d *Dynamic) resolver() DocResolver {
	b := d.base()
	b.resolveMu.Lock()
	defer b.resolveMu.Unlock()
	if b.Resolver == nil {
		b.Resolver = NewDocRegistry(true)
	}
	return b.Resolver
}

func (d *Dynamic) currentDateTime() xdm.Atomic {
	b := d.base()
	b.once.Do(func() {
		t := b.Now
		if t.IsZero() {
			t = time.Now()
		}
		b.nowAtom = xdm.NewDateTime(t.UTC(), "")
	})
	return b.nowAtom
}

// Frame is one link of the binding-environment chain: it either binds a
// variable (id >= 0) or establishes a focus (context item / position /
// size). Frames are immutable once created, so lazily-evaluated thunks can
// safely capture them.
type Frame struct {
	parent *Frame
	dyn    *Dynamic

	id  int // variable id bound here; -1 if none
	val *LazySeq

	hasFocus bool
	ctxItem  xdm.Item
	ctxPos   int64
	ctxLast  func() (int64, error) // lazy: materializes only if called

	// isBarrier blocks focus lookup: function bodies have no context item.
	isBarrier bool
}

// rootFrame creates the outermost frame.
func rootFrame(dyn *Dynamic) *Frame {
	f := &Frame{dyn: dyn, id: -1}
	if dyn.ContextItem != nil {
		f.hasFocus = true
		f.ctxItem = dyn.ContextItem
		f.ctxPos = 1
		f.ctxLast = func() (int64, error) { return 1, nil }
	}
	return f
}

// bind creates a child frame binding variable id to val.
func (f *Frame) bind(id int, val *LazySeq) *Frame {
	return &Frame{parent: f, dyn: f.dyn, id: id, val: val}
}

// withDyn re-roots a frame onto a worker context: a shallow head copy whose
// dyn is w. Parent frames keep the original dyn, but only the head frame's
// dyn is ever consulted during evaluation (bindings chain through parents,
// the context does not), so this is how a morsel worker evaluates under a
// caller-built binding environment.
func (f *Frame) withDyn(w *Dynamic) *Frame {
	cp := *f
	cp.dyn = w
	return &cp
}

// focus creates a child frame with a new focus.
func (f *Frame) focus(item xdm.Item, pos int64, last func() (int64, error)) *Frame {
	return &Frame{parent: f, dyn: f.dyn, id: -1,
		hasFocus: true, ctxItem: item, ctxPos: pos, ctxLast: last}
}

// lookup finds the value of variable id.
func (f *Frame) lookup(id int) *LazySeq {
	for p := f; p != nil; p = p.parent {
		if p.id == id {
			return p.val
		}
	}
	panic(fmt.Sprintf("runtime: unbound variable slot %d", id))
}

// focusFrame returns the innermost frame with a focus, or nil. Barrier
// frames (function-call boundaries) hide any outer focus.
func (f *Frame) focusFrame() *Frame {
	for p := f; p != nil; p = p.parent {
		if p.hasFocus {
			return p
		}
		if p.isBarrier {
			return nil
		}
	}
	return nil
}

// barrier creates a child frame that blocks focus lookup (the context item
// is undefined inside a function body).
func (f *Frame) barrier() *Frame {
	return &Frame{parent: f, dyn: f.dyn, id: -1, isBarrier: true}
}

// ---- functions.Context implementation ----

// ContextItem returns the focus item.
func (f *Frame) ContextItem() (xdm.Item, bool) {
	if ff := f.focusFrame(); ff != nil {
		return ff.ctxItem, true
	}
	return nil, false
}

// Position returns the focus position.
func (f *Frame) Position() int64 {
	if ff := f.focusFrame(); ff != nil {
		return ff.ctxPos
	}
	return 0
}

// Size returns the focus size, forcing materialization of the focus input
// if necessary.
func (f *Frame) Size() (int64, error) {
	ff := f.focusFrame()
	if ff == nil || ff.ctxLast == nil {
		return 0, xdm.Errf("XPDY0002", "fn:last(): no context")
	}
	return ff.ctxLast()
}

// Doc resolves a document URI. A pending streaming input resolves under its
// own URI (without consulting the registry); everything else goes through
// the resolver.
func (f *Frame) Doc(uri string) (xdm.Node, error) {
	if s := f.dyn.Stream; s != nil && uri == s.URI() {
		return s.docFor(f.dyn).RootNode(), nil
	}
	return f.dyn.resolver().Doc(uri)
}

// Collection resolves a collection URI.
func (f *Frame) Collection(uri string) (xdm.Sequence, error) {
	if seq, ok := f.dyn.Collections[uri]; ok {
		return seq, nil
	}
	return nil, xdm.Errf("FODC0004", "collection %q not found", uri)
}

// CurrentDateTime returns the stable evaluation dateTime.
func (f *Frame) CurrentDateTime() xdm.Atomic { return f.dyn.currentDateTime() }

// sortNodesDedup is a convenience wrapper over the data-model operation.
func sortNodesDedup(seq xdm.Sequence) (xdm.Sequence, error) {
	return xdm.SortDocOrderDedup(seq)
}

// mergeByDocOrder merges two sorted node sequences per the set operation.
func mergeByDocOrder(a, b xdm.Sequence, keepA, keepB, keepBoth bool) xdm.Sequence {
	var out xdm.Sequence
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := xdm.CompareOrder(a[i].(xdm.Node), b[j].(xdm.Node))
		switch {
		case c < 0:
			if keepA {
				out = append(out, a[i])
			}
			i++
		case c > 0:
			if keepB {
				out = append(out, b[j])
			}
			j++
		default:
			if keepBoth {
				out = append(out, a[i])
			}
			i++
			j++
		}
	}
	if keepA {
		out = append(out, a[i:]...)
	}
	if keepB {
		out = append(out, b[j:]...)
	}
	return out
}
