package runtime

import (
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// Node constructors. Construction is THE side-effecting operation of
// XQuery: every evaluation creates nodes with fresh identities. The default
// path materializes the constructed tree in a store document (ids
// assigned). When the optimizer marked a constructor NoNodeIDs — the result
// is serialized without ever being navigated — the constructor instead
// yields a StreamedNode whose tokens are generated on demand and never
// given identities (experiment E7). Any accessor use of a StreamedNode
// falls back to materializing it, so the optimization is always safe.

type compiledAttr struct {
	name  xdm.QName
	parts []seqFn // literal parts compiled too; joined per the AVT rules
	lits  []string
}

type compiledConstructor struct {
	kind    xdm.NodeKind
	name    xdm.QName
	nameFn  seqFn // computed name
	target  string
	ns      []expr.NSBinding
	attrs   []compiledAttr
	content []contentPiece
	noIDs   bool
	valueFn seqFn // text/comment/PI/doc value or content
}

// contentPiece is one content expression: literal text is distinguished so
// the "adjacent atomics joined by space" rule applies only to evaluated
// content.
type contentPiece struct {
	literalText string
	isLiteral   bool
	fn          seqFn
}

func (c *compiler) compileConstructor(e expr.Expr) (seqFn, error) {
	cc, err := c.buildConstructor(e)
	if err != nil {
		return nil, err
	}
	return func(fr *Frame) Iter {
		if cc.noIDs && !c.opts.Eager {
			return singleIter(&StreamedNode{cc: cc, fr: fr})
		}
		n, err := evalConstructor(cc, fr)
		if err != nil {
			return errIter(err)
		}
		return singleIter(n)
	}, nil
}

func (c *compiler) buildConstructor(e expr.Expr) (*compiledConstructor, error) {
	switch n := e.(type) {
	case *expr.ElemConstructor:
		cc := &compiledConstructor{kind: xdm.ElementNode, name: n.Name, ns: n.NS, noIDs: n.NoNodeIDs}
		if n.NameExpr != nil {
			fn, err := c.compile(n.NameExpr)
			if err != nil {
				return nil, err
			}
			cc.nameFn = fn
		}
		for _, a := range n.Attrs {
			ca := compiledAttr{name: a.Name}
			for _, part := range a.Parts {
				if lit, ok := part.(*expr.Literal); ok && lit.Val.T == xdm.TString {
					ca.parts = append(ca.parts, nil)
					ca.lits = append(ca.lits, lit.Val.S)
					continue
				}
				fn, err := c.compile(part)
				if err != nil {
					return nil, err
				}
				ca.parts = append(ca.parts, fn)
				ca.lits = append(ca.lits, "")
			}
			cc.attrs = append(cc.attrs, ca)
		}
		for _, ce := range n.Content {
			piece, err := c.compileContentPiece(ce)
			if err != nil {
				return nil, err
			}
			cc.content = append(cc.content, piece)
		}
		return cc, nil

	case *expr.AttrConstructor:
		cc := &compiledConstructor{kind: xdm.AttributeNode, name: n.Name}
		if n.NameExpr != nil {
			fn, err := c.compile(n.NameExpr)
			if err != nil {
				return nil, err
			}
			cc.nameFn = fn
		}
		ca := compiledAttr{name: n.Name}
		for _, part := range n.Value {
			fn, err := c.compile(part)
			if err != nil {
				return nil, err
			}
			ca.parts = append(ca.parts, fn)
			ca.lits = append(ca.lits, "")
		}
		cc.attrs = []compiledAttr{ca}
		return cc, nil

	case *expr.TextConstructor:
		fn, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return &compiledConstructor{kind: xdm.TextNode, valueFn: fn}, nil

	case *expr.CommentConstructor:
		fn, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return &compiledConstructor{kind: xdm.CommentNode, valueFn: fn}, nil

	case *expr.PIConstructor:
		fn, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return &compiledConstructor{kind: xdm.PINode, target: n.Target, valueFn: fn}, nil

	case *expr.DocConstructor:
		fn, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return &compiledConstructor{kind: xdm.DocumentNode, valueFn: fn}, nil
	}
	return nil, xdm.ErrType("not a constructor: %T", e)
}

func (c *compiler) compileContentPiece(ce expr.Expr) (contentPiece, error) {
	// Literal text inside a direct constructor arrives as
	// TextConstructor(Literal); keep it distinguishable.
	if tc, ok := ce.(*expr.TextConstructor); ok {
		if lit, ok := tc.X.(*expr.Literal); ok && lit.Val.T == xdm.TString {
			return contentPiece{literalText: lit.Val.S, isLiteral: true}, nil
		}
	}
	fn, err := c.compile(ce)
	if err != nil {
		return contentPiece{}, err
	}
	return contentPiece{fn: fn}, nil
}

// evalAttrValue computes an attribute's string value from its parts.
func evalAttrValue(ca *compiledAttr, fr *Frame) (string, error) {
	var b strings.Builder
	for i, part := range ca.parts {
		if part == nil {
			b.WriteString(ca.lits[i])
			continue
		}
		seq, err := drain(part(fr))
		if err != nil {
			return "", err
		}
		for j, it := range seq {
			if j > 0 {
				b.WriteString(" ")
			}
			b.WriteString(xdm.StringValue(it))
		}
	}
	return b.String(), nil
}

// constructorName resolves the (possibly computed) node name.
func constructorName(cc *compiledConstructor, fr *Frame) (xdm.QName, error) {
	if cc.nameFn == nil {
		return cc.name, nil
	}
	a, ok, err := atomizeSingle(cc.nameFn(fr))
	if err != nil {
		return xdm.QName{}, err
	}
	if !ok {
		return xdm.QName{}, xdm.ErrType("computed constructor name is the empty sequence")
	}
	switch a.T {
	case xdm.TQName:
		return a.Q, nil
	case xdm.TString, xdm.TUntyped:
		prefix, local := xdm.SplitLexical(a.S)
		return xdm.QName{Prefix: prefix, Local: local}, nil
	}
	return xdm.QName{}, xdm.ErrType("computed constructor name must be a QName or string, got %s", a.T)
}

// evalConstructor builds a constructed node in a fresh store document.
func evalConstructor(cc *compiledConstructor, fr *Frame) (xdm.Node, error) {
	b := store.NewBuilder(store.BuilderOptions{})
	if err := buildInto(b, cc, fr); err != nil {
		return nil, err
	}
	doc, err := b.Done()
	if err != nil {
		return nil, err
	}
	fr.dyn.Prof.addNodesMaterialized(1)
	return doc.RootNode(), nil
}

// buildInto emits a constructor into a builder.
func buildInto(b *store.Builder, cc *compiledConstructor, fr *Frame) error {
	switch cc.kind {
	case xdm.ElementNode:
		name, err := constructorName(cc, fr)
		if err != nil {
			return err
		}
		b.StartElement(name)
		for _, ns := range cc.ns {
			b.NSDecl(ns.Prefix, ns.URI)
		}
		for i := range cc.attrs {
			v, err := evalAttrValue(&cc.attrs[i], fr)
			if err != nil {
				return err
			}
			if err := b.Attr(cc.attrs[i].name, v); err != nil {
				return xdm.Errf("XQDY0025", "%v", err)
			}
		}
		if err := buildContent(b, cc.content, fr); err != nil {
			return err
		}
		b.EndElement()
		return nil

	case xdm.AttributeNode:
		name, err := constructorName(cc, fr)
		if err != nil {
			return err
		}
		v, err := evalAttrValue(&cc.attrs[0], fr)
		if err != nil {
			return err
		}
		return b.Attr(name, v)

	case xdm.TextNode, xdm.CommentNode, xdm.PINode:
		s, err := contentString(cc.valueFn, fr)
		if err != nil {
			return err
		}
		switch cc.kind {
		case xdm.TextNode:
			b.Text(s)
		case xdm.CommentNode:
			b.Comment(s)
		default:
			b.PI(cc.target, s)
		}
		return nil

	case xdm.DocumentNode:
		b.StartDocument()
		seq, err := drain(cc.valueFn(fr))
		if err != nil {
			return err
		}
		return copyContentSeq(b, seq)
	}
	return xdm.ErrType("cannot construct node kind %v", cc.kind)
}

// buildContent evaluates the content pieces of an element constructor into
// the builder, applying the content rules: literal text becomes text nodes
// verbatim; evaluated sequences copy nodes and join adjacent atomic values
// with single spaces.
func buildContent(b *store.Builder, content []contentPiece, fr *Frame) error {
	for _, piece := range content {
		if piece.isLiteral {
			b.Text(piece.literalText)
			continue
		}
		seq, err := drain(piece.fn(fr))
		if err != nil {
			return err
		}
		if err := copyContentSeq(b, seq); err != nil {
			return err
		}
	}
	return nil
}

// copyContentSeq copies an evaluated sequence into element/document content.
func copyContentSeq(b *store.Builder, seq xdm.Sequence) error {
	prevAtomic := false
	for _, it := range seq {
		if n, ok := it.(xdm.Node); ok {
			prevAtomic = false
			if sn, isStream := n.(*StreamedNode); isStream {
				m, err := sn.materialize()
				if err != nil {
					return err
				}
				n = m
			}
			if err := b.CopyNode(n); err != nil {
				return xdm.Errf("XQTY0024", "%v", err)
			}
			continue
		}
		s := it.(xdm.Atomic).Lexical()
		if prevAtomic {
			b.Text(" " + s)
		} else {
			b.Text(s)
		}
		prevAtomic = true
	}
	return nil
}

// contentString computes the joined string value for text/comment/PI
// constructors.
func contentString(fn seqFn, fr *Frame) (string, error) {
	seq, err := drain(fn(fr))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, it := range seq {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(xdm.StringValue(xdm.Atomize(it)))
	}
	return b.String(), nil
}
