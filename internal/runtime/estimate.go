package runtime

import (
	"xqgo/internal/expr"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Static cardinality estimation. Each tagged operator gets a compile-time
// estimate of how many items it will produce per instantiation, derived from
// the type system's occurrence indicator (the sound upper-bound inference in
// internal/expr/typing.go). Operator trace spans report this next to the
// observed item count, which is the feed-forward signal the ROADMAP's
// cost-based plan selection needs: persistent estimate/observed gaps mark
// exactly the operators where a uniform-fanout assumption breaks down.
//
// The scale is deliberately coarse:
//
//	empty-sequence()  → 0
//	T / T?            → 1 (the type system proves at most one item)
//	T* / T+           → estFanout, or the exact count when the expression
//	                    is a literal range / literal sequence
//
// estFanout is the uniform branching assumption traditional XML estimators
// (Markov tables, path synopses) refine per step; refining it is future
// cost-model work, not this layer's job.
const estFanout = 8

// estimate returns the static per-instantiation cardinality estimate for a
// tagged operator's expression.
func estimate(e expr.Expr) int64 {
	switch n := e.(type) {
	case *expr.Range:
		if lo, ok := literalInt(n.Lo); ok {
			if hi, ok := literalInt(n.Hi); ok {
				if hi < lo {
					return 0
				}
				return hi - lo + 1
			}
		}
	case *expr.Seq:
		var sum int64
		for _, item := range n.Items {
			sum += estimate(item)
		}
		return sum
	}
	switch expr.Infer(e, nil).Occ {
	case xtypes.OccEmpty:
		return 0
	case xtypes.OccOne, xtypes.OccOpt:
		return 1
	default:
		return estFanout
	}
}

func literalInt(e expr.Expr) (int64, bool) {
	lit, ok := e.(*expr.Literal)
	if !ok || lit.Val.T != xdm.TInteger {
		return 0, false
	}
	return lit.Val.AsInt(), true
}
