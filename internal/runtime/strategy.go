package runtime

import (
	"sync/atomic"

	"xqgo/internal/optimizer"
	"xqgo/internal/store"
)

// Cost-based join-strategy selection. A join-eligible path operator keeps
// both its navigation and its index-join compilations and decides at run
// time — per operator and per document, since the statistics that drive the
// decision (document size, tag selectivity, whether an index is cached) are
// only known then. Decisions are cached on the execution's base Dynamic so
// an operator instantiated once per FLWOR tuple prices its plan once, and
// each resolved choice is recorded on the profile exactly once per
// (operator, document).

// feedback is the per-plan cardinality-feedback cache: the output
// cardinality each join-eligible path operator produced on a prior
// execution, keyed by the operator's stable profile id. A Prepared shares
// one feedback across all its executions (atomically — concurrent
// executions may race to publish, any observed value is a real
// observation), closing the loop between profile estItems and observed
// items: the next Auto decision prices plans against reality instead of
// the static estimate.
type feedback struct {
	obs []atomic.Int64 // observed cardinality + 1; 0 = never observed
}

func (f *feedback) init(n int) { f.obs = make([]atomic.Int64, n) }

// observed returns the last recorded output cardinality for operator id,
// or -1 when none was recorded (unknown id, profiling off, never ran).
func (f *feedback) observed(id int) int64 {
	if f == nil || id < 0 || id >= len(f.obs) {
		return -1
	}
	if v := f.obs[id].Load(); v > 0 {
		return v - 1
	}
	return -1
}

// record stores an observed output cardinality for operator id.
func (f *feedback) record(id int, n int64) {
	if f != nil && id >= 0 && id < len(f.obs) && n >= 0 {
		f.obs[id].Store(n + 1)
	}
}

// planKey identifies one strategy decision: a join-eligible path operator
// (by its compiled joinPlan identity, which survives NoProfileHooks) over
// one document.
type planKey struct {
	jp  *joinPlan
	doc *store.Document
}

// resolvePathStrategy resolves the strategy policy for one instantiation:
// a per-execution plan hint wins, then the compiled-in option. The result
// may still be StrategyAuto, which pathDecision prices per document.
func resolvePathStrategy(dyn *Dynamic, compiled optimizer.Strategy) optimizer.Strategy {
	if dyn != nil && dyn.PlanHint != optimizer.StrategyDefault {
		return dyn.PlanHint
	}
	if compiled != optimizer.StrategyDefault {
		return compiled
	}
	return optimizer.StrategyAuto
}

// pathDecision returns the concrete execution strategy for one join-eligible
// path operator over one document, resolving StrategyAuto through the cost
// model. The decision is cached per execution; the first resolution is
// recorded on the profile (operator row + per-strategy totals).
func (d *Dynamic) pathDecision(jp *joinPlan, doc *store.Document, policy optimizer.Strategy, opID int, fb *feedback) optimizer.Strategy {
	b := d.base()
	key := planKey{jp: jp, doc: doc}
	b.planMu.Lock()
	if s, ok := b.plans[key]; ok {
		b.planMu.Unlock()
		return s
	}
	b.planMu.Unlock()

	// Price outside the lock: Stats() may drive a lazy parse to completion.
	s := policy
	if s == optimizer.StrategyAuto {
		s = chooseChainStrategy(jp, doc, b.indexes.ready(doc), fb.observed(opID))
	}

	b.planMu.Lock()
	if prev, ok := b.plans[key]; ok {
		b.planMu.Unlock()
		return prev
	}
	if b.plans == nil {
		b.plans = make(map[planKey]optimizer.Strategy)
	}
	b.plans[key] = s
	b.planMu.Unlock()
	d.Prof.notePlanChoice(opID, s)
	return s
}

// chooseChainStrategy runs the optimizer cost model over one chain and one
// document. Lazy (still-parsing) documents navigate: their statistics are
// unknown and an index build would force the whole parse.
func chooseChainStrategy(jp *joinPlan, doc *store.Document, indexReady bool, observed int64) optimizer.Strategy {
	if doc.Lazy() {
		return optimizer.StrategyNavigation
	}
	st := doc.Stats()
	cs := optimizer.ChainStats{
		DocNodes:   st.Nodes,
		AvgDepth:   st.AvgDepth,
		IndexReady: indexReady,
		Observed:   observed,
		Steps:      make([]optimizer.ChainStep, len(jp.chain)),
	}
	for i, s := range jp.chain {
		cs.Steps[i] = optimizer.ChainStep{
			Postings:  st.ElementCount(s.name),
			ChildEdge: s.childOnly,
		}
	}
	return optimizer.EstimateChain(cs).Choice
}
