package runtime

import (
	"xqgo/internal/expr"
	"xqgo/internal/optimizer"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Path evaluation: E1/E2 per the paper — evaluate E1, bind "." to each
// node, evaluate E2, concatenate, then eliminate duplicates and sort by
// document order. The final sort+dedup is skipped when the optimizer proved
// it unnecessary (Path.NoReorder, experiment E8); in that case the whole
// path is a fully streaming pipeline.

func (c *compiler) compilePath(n *expr.Path) (seqFn, error) {
	navFn, err := c.compileNavPath(n)
	if err != nil {
		return nil, err
	}
	jp := extractJoinPlan(n)
	if jp == nil {
		fn, id := c.tagID("path", n, navFn)
		if id >= 0 {
			c.ops[id].Strategy = optimizer.StrategyNavigation.String()
		}
		return fn, nil
	}
	// Join-eligible: both compilations are kept and one operator dispatches
	// at run time — policy (hint > compiled option) first, then the cost
	// model when the policy is Auto. The resolved choice lands on the
	// operator's profile row, so explain output shows which strategy ran.
	policy := c.opts.Strategy
	fb := c.fb
	opID := -1
	fn := func(fr *Frame) Iter {
		it, haveCtx := fr.ContextItem()
		if !haveCtx {
			return errIter(xdm.Errf("XPDY0002", "no context item for '/'"))
		}
		sn, isStore := it.(*store.Node)
		if !isStore {
			return navFn(fr) // non-store contexts always navigate
		}
		strat := fr.dyn.pathDecision(jp, sn.D, resolvePathStrategy(fr.dyn, policy), opID, fb)
		switch strat {
		case optimizer.StrategyBinaryJoin, optimizer.StrategyTwigJoin:
			return jp.run(fr, sn, strat, opID, fb)
		default:
			return navFn(fr)
		}
	}
	tagged, id := c.tagID("path", n, fn)
	opID = id
	if id >= 0 {
		c.ops[id].Strategy = policy.String()
	}
	return tagged, nil
}

// compileNavPath is the navigation implementation of a path expression.
func (c *compiler) compileNavPath(n *expr.Path) (seqFn, error) {
	lf, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	rf, err := c.compile(n.R)
	if err != nil {
		return nil, err
	}
	noReorder := n.NoReorder && !c.opts.Eager

	raw := func(fr *Frame) Iter {
		lseq := NewLazySeq(lf(fr))
		lastFn := func() (int64, error) {
			n, err := lseq.Len()
			return int64(n), err
		}
		return &pathIter{fr: fr, rf: rf, li: lseq.Iterator(), lastFn: lastFn}
	}

	if noReorder {
		return raw, nil
	}
	// Materializing tail: sort by document order + dedup when the result is
	// nodes; pass through when it is purely atomic (the $x/f(.) case).
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		seq, err := dr(fr, raw(fr))
		if err != nil {
			return errIter(err)
		}
		nodes, atomics := 0, 0
		for _, it := range seq {
			if it.IsNode() {
				nodes++
			} else {
				atomics++
			}
		}
		switch {
		case nodes > 0 && atomics > 0:
			return errIter(xdm.ErrType("path result mixes nodes and atomic values"))
		case atomics > 0:
			return newSliceIter(seq)
		default:
			sorted, err := sortNodesDedup(seq)
			if err != nil {
				return errIter(err)
			}
			return newSliceIter(sorted)
		}
	}, nil
}

// pathIter is the streaming core of E1/E2: one focused evaluation of the
// right side per left-hand node, outputs concatenated. Batch pulls forward
// the demand to the current right-side iterator, so chains of steps move
// chunks end to end.
type pathIter struct {
	fr     *Frame
	rf     seqFn
	li     Iter // cursor over the left input
	lastFn func() (int64, error)
	cur    Iter
	pos    int64

	// Batch-mode left prefetch. Like flworIter, a left-input error found
	// while prefetching is stashed until the outputs of the nodes fetched
	// before it have all been delivered, so errors surface in the same
	// order as item-at-a-time evaluation.
	pending []xdm.Item
	pi, pn  int
	stash   error
	ldone   bool
}

// nextLeft yields the next left-hand node. In batched mode it prefetches a
// chunk of the left input into a pooled buffer.
func (p *pathIter) nextLeft(batched bool) (xdm.Item, bool, error) {
	if p.pi < p.pn {
		it := p.pending[p.pi]
		p.pi++
		return it, true, nil
	}
	if p.stash != nil {
		err := p.stash
		p.stash = nil
		p.ldone = true
		p.releaseLeft()
		return nil, false, err
	}
	if p.ldone {
		p.releaseLeft()
		return nil, false, nil
	}
	if !batched {
		it, ok, err := p.li.Next()
		if err != nil || !ok {
			p.ldone = true
		}
		return it, ok, err
	}
	if p.pending == nil {
		p.pending = p.fr.dyn.getBuf()
	}
	n, err := nextBatch(p.li, p.pending)
	p.pi, p.pn = 0, n
	if err != nil {
		p.stash = err
	} else if n == 0 {
		p.ldone = true
	}
	if n == 0 {
		return p.nextLeft(batched) // deliver the stash or the end
	}
	p.pi = 1
	return p.pending[0], true, nil
}

func (p *pathIter) releaseLeft() {
	if p.pending != nil {
		p.fr.dyn.putBuf(p.pending)
		p.pending = nil
		p.pi, p.pn = 0, 0
	}
}

// advance focuses the right side on the next left-hand node; ok=false at
// the end of the left input.
func (p *pathIter) advance(batched bool) (bool, error) {
	it, ok, err := p.nextLeft(batched)
	if err != nil || !ok {
		return false, err
	}
	if !it.IsNode() {
		p.releaseLeft()
		return false, xdm.ErrType("path step applied to an atomic value")
	}
	p.pos++
	p.cur = p.rf(p.fr.focus(it, p.pos, p.lastFn))
	return true, nil
}

func (p *pathIter) Next() (xdm.Item, bool, error) {
	for {
		if err := p.fr.dyn.CheckInterrupt(); err != nil {
			return nil, false, err
		}
		if p.cur == nil {
			ok, err := p.advance(false)
			if err != nil || !ok {
				return nil, false, err
			}
		}
		it, ok, err := p.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return it, true, nil
		}
		p.cur = nil
	}
}

// NextBatch implements BatchIter. While a streamed input is still being
// parsed, demand drops to item granularity: left prefetch is disabled and
// the fill returns as soon as it holds anything, so a batch never forces
// input beyond the items it delivers (short batches mean "pull again", so
// this is invisible to consumers). Once ingestion completes — or when there
// is no streamed input at all — batches fill normally.
func (p *pathIter) NextBatch(buf []xdm.Item) (int, error) {
	lazy := p.fr.dyn.streamingLazy()
	n := 0
	for n < len(buf) {
		if p.cur == nil {
			ok, err := p.advance(!lazy)
			if err != nil || !ok {
				return n, err
			}
		}
		k, err := nextBatch(p.cur, buf[n:])
		n += k
		if err != nil {
			p.releaseLeft()
			return n, err
		}
		if k == 0 {
			p.cur = nil
			continue
		}
		if lazy {
			break
		}
	}
	if err := p.fr.dyn.CheckInterruptN(n); err != nil {
		return n, err
	}
	return n, nil
}

// compileStep compiles one axis step against the context item.
func (c *compiler) compileStep(n *expr.Step) (seqFn, error) {
	axis, test := n.Axis, n.Test
	return func(fr *Frame) Iter {
		it, ok := fr.ContextItem()
		if !ok {
			return errIter(xdm.Errf("XPDY0002", "no context item for axis step"))
		}
		node, isNode := it.(xdm.Node)
		if !isNode {
			return errIter(xdm.ErrType("axis step applied to an atomic value"))
		}
		return axisIter(fr.dyn, node, axis, test)
	}, nil
}

// axisIter returns the nodes of an axis from a context node, filtered by
// the node test, in axis order (reverse axes deliver reverse document
// order; the enclosing path restores document order when required). dyn
// enables the morsel upgrade of large descendant scans; nil keeps every
// axis sequential.
func axisIter(dyn *Dynamic, n xdm.Node, axis expr.Axis, test xtypes.NodeTest) Iter {
	principal := axis.Principal()
	switch axis {
	case expr.AxisSelf:
		if test.MatchesNode(n, principal) {
			return singleIter(n)
		}
		return emptyIter

	case expr.AxisChild:
		if sn, ok := n.(*store.Node); ok {
			return storeChildIter(sn, test, principal)
		}
		return filterNodes(n.ChildrenOf(), test, principal)

	case expr.AxisAttribute:
		return filterNodes(n.AttributesOf(), test, principal)

	case expr.AxisParent:
		p := n.Parent()
		if p != nil && test.MatchesNode(p, principal) {
			return singleIter(p)
		}
		return emptyIter

	case expr.AxisAncestor, expr.AxisAncestorOrSelf:
		cur := n
		if axis == expr.AxisAncestor {
			cur = n.Parent()
		}
		return iterFunc(func() (xdm.Item, bool, error) {
			for cur != nil {
				c := cur
				cur = cur.Parent()
				if test.MatchesNode(c, principal) {
					return c, true, nil
				}
			}
			return nil, false, nil
		})

	case expr.AxisDescendant, expr.AxisDescendantOrSelf:
		if sn, ok := n.(*store.Node); ok {
			return storeDescendantIter(dyn, sn, axis == expr.AxisDescendantOrSelf, test, principal)
		}
		return genericDescendantIter(n, axis == expr.AxisDescendantOrSelf, test, principal)

	case expr.AxisFollowingSibling, expr.AxisPrecedingSibling:
		p := n.Parent()
		if p == nil || n.Kind() == xdm.AttributeNode {
			return emptyIter
		}
		sibs := p.ChildrenOf()
		idx := -1
		for i, s := range sibs {
			if s.SameNode(n) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return emptyIter
		}
		var cand []xdm.Node
		if axis == expr.AxisFollowingSibling {
			cand = sibs[idx+1:]
		} else {
			// preceding-sibling in reverse document order
			for i := idx - 1; i >= 0; i-- {
				cand = append(cand, sibs[i])
			}
		}
		return filterNodes(cand, test, principal)
	}
	return emptyIter
}

// nodeSliceIter filters an already-listed node slice by the node test.
type nodeSliceIter struct {
	nodes     []xdm.Node
	test      xtypes.NodeTest
	principal xdm.NodeKind
	i         int
}

func (s *nodeSliceIter) Next() (xdm.Item, bool, error) {
	for s.i < len(s.nodes) {
		n := s.nodes[s.i]
		s.i++
		if s.test.MatchesNode(n, s.principal) {
			return n, true, nil
		}
	}
	return nil, false, nil
}

// NextBatch implements BatchIter.
func (s *nodeSliceIter) NextBatch(buf []xdm.Item) (int, error) {
	n := 0
	for n < len(buf) && s.i < len(s.nodes) {
		nd := s.nodes[s.i]
		s.i++
		if s.test.MatchesNode(nd, s.principal) {
			buf[n] = nd
			n++
		}
	}
	return n, nil
}

func filterNodes(nodes []xdm.Node, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	return &nodeSliceIter{nodes: nodes, test: test, principal: principal}
}

// storeChildScan walks first-child/next-sibling links without allocating
// the child slice. The next-sibling link of a delivered child is computed
// only when the next child is demanded: on a lazily ingested document that
// link may require parsing past the child (for the last child, to the
// parent's end tag), so eager lookahead would force input the caller never
// asked for — the document's only child would drain the stream to EOF
// before being returned at all.
type storeChildScan struct {
	d         *store.Document
	cur       int32 // next candidate child id, or -1 when exhausted
	yielded   bool  // cur was delivered; advance to its sibling before use
	test      xtypes.NodeTest
	principal xdm.NodeKind
}

func storeChildIter(n *store.Node, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	return &storeChildScan{d: n.D, cur: n.D.FirstChildID(n.ID), test: test, principal: principal}
}

// scan returns the next matching child, or nil at the end.
func (s *storeChildScan) scan() *store.Node {
	for {
		if s.yielded {
			s.cur = s.d.NextSiblingID(s.cur)
			s.yielded = false
		}
		if s.cur < 0 {
			return nil
		}
		child := &store.Node{D: s.d, ID: s.cur}
		s.yielded = true
		if s.test.MatchesNode(child, s.principal) {
			return child
		}
	}
}

func (s *storeChildScan) Next() (xdm.Item, bool, error) {
	if n := s.scan(); n != nil {
		return n, true, nil
	}
	return nil, false, nil
}

// NextBatch implements BatchIter. While the document is still being parsed
// the fill stops after each item: discovering whether another child exists
// can force arbitrary input, and a short batch legitimately means "pull
// again", so demand stays item-granular until ingestion completes.
func (s *storeChildScan) NextBatch(buf []xdm.Item) (int, error) {
	n := 0
	for n < len(buf) {
		nd := s.scan()
		if nd == nil {
			break
		}
		buf[n] = nd
		n++
		if s.d.Lazy() {
			break
		}
	}
	return n, nil
}

// storeDescScan exploits the array layout: the descendants of a node are
// exactly the id range (id, endID], minus attribute nodes — a linear scan
// with no tree navigation at all. The range structure is also what makes
// the scan morsel-parallel: contiguous id sub-ranges partition the work,
// and stitching their matches by sub-range order is document order.
type storeDescScan struct {
	d         *store.Document
	cur, end  int32
	first     bool
	test      xtypes.NodeTest
	principal xdm.NodeKind
	dyn       *Dynamic // morsel upgrade for batch pulls; nil stays sequential

	out []xdm.Item // pending stitched output of the last parallel round
	oi  int
}

func storeDescendantIter(dyn *Dynamic, n *store.Node, orSelf bool, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	cur := n.ID
	if !orSelf {
		cur++
	}
	return &storeDescScan{d: n.D, cur: cur, end: n.D.EndID(n.ID), first: orSelf,
		test: test, principal: principal, dyn: dyn}
}

// scan advances past skipped ids and returns the next matching node, or nil.
func (s *storeDescScan) scan() *store.Node {
	for s.cur <= s.end {
		id := s.cur
		s.cur++
		if !s.first && s.d.Kind(id) == xdm.AttributeNode {
			continue
		}
		s.first = false
		node := &store.Node{D: s.d, ID: id}
		if s.test.MatchesNode(node, s.principal) {
			return node
		}
	}
	return nil
}

func (s *storeDescScan) serve(buf []xdm.Item) int {
	n := copy(buf, s.out[s.oi:])
	s.oi += n
	if s.oi >= len(s.out) {
		s.out, s.oi = nil, 0
	}
	return n
}

func (s *storeDescScan) Next() (xdm.Item, bool, error) {
	if s.oi < len(s.out) {
		it := s.out[s.oi]
		s.oi++
		if s.oi >= len(s.out) {
			s.out, s.oi = nil, 0
		}
		return it, true, nil
	}
	if n := s.scan(); n != nil {
		return n, true, nil
	}
	return nil, false, nil
}

// NextBatch implements BatchIter: the inner scan loop runs without any
// per-item interface dispatch — the whole point of the fast path. On a
// large remaining id range with morsel workers configured, the fill
// upgrades to parallel rounds: contiguous sub-ranges are scanned by the
// worker pool and the matches stitched back in range order (= document
// order); leftover matches queue on s.out for subsequent pulls.
func (s *storeDescScan) NextBatch(buf []xdm.Item) (int, error) {
	for s.oi >= len(s.out) && s.morselReady() {
		ran, err := s.morselFill()
		if err != nil {
			return 0, err
		}
		if !ran {
			break
		}
	}
	if s.oi < len(s.out) {
		return s.serve(buf), nil
	}
	n := 0
	for n < len(buf) {
		nd := s.scan()
		if nd == nil {
			break
		}
		buf[n] = nd
		n++
	}
	return n, nil
}

// morselReady reports whether a parallel round is worth attempting: a pool
// is configured, the scan is past any self node, the document is fully
// materialized (a lazy scan must not force input out of order), and at
// least two morsels of ids remain.
func (s *storeDescScan) morselReady() bool {
	return s.dyn != nil && s.dyn.Workers > 1 && !s.first && !s.d.Lazy() &&
		int(s.end)-int(s.cur)+1 >= 2*descMorselIDs
}

// morselFill runs one parallel round over the next slice of the id range.
// ran=false (without error) means no extra workers were available; the
// caller falls back to the sequential fill for this pull.
func (s *storeDescScan) morselFill() (bool, error) {
	remaining := int(s.end) - int(s.cur) + 1
	chunks := (remaining + descMorselIDs - 1) / descMorselIDs
	extra, release := s.dyn.leaseExtra(chunks - 1)
	if extra == 0 {
		return false, nil
	}
	defer release()
	if max := (extra + 1) * descRoundChunks; chunks > max {
		chunks = max
	}
	base := s.cur
	parts, err := morselRound(s.dyn, extra, chunks, func(w *Dynamic, i int) ([]xdm.Item, error) {
		lo := base + int32(i*descMorselIDs)
		hi := lo + descMorselIDs - 1
		if hi > s.end {
			hi = s.end
		}
		var out []xdm.Item
		for id := lo; id <= hi; id++ {
			if id&1023 == 0 {
				if err := w.CheckInterruptN(1024); err != nil {
					return nil, err
				}
			}
			if s.d.Kind(id) == xdm.AttributeNode {
				continue
			}
			node := &store.Node{D: s.d, ID: id}
			if s.test.MatchesNode(node, s.principal) {
				out = append(out, node)
			}
		}
		return out, nil
	})
	// The round covered [base, base+chunks*descMorselIDs), clamped to end.
	if next := int(base) + chunks*descMorselIDs; next > int(s.end) {
		s.cur = s.end + 1
	} else {
		s.cur = int32(next)
	}
	if err != nil {
		return true, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]xdm.Item, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	s.out, s.oi = out, 0
	return true, nil
}

// genericDescendantIter is the interface-only fallback (used by non-store
// node implementations in tests).
func genericDescendantIter(n xdm.Node, orSelf bool, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	var stack []xdm.Node
	if orSelf {
		stack = append(stack, n)
	} else {
		kids := n.ChildrenOf()
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return iterFunc(func() (xdm.Item, bool, error) {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			kids := top.ChildrenOf()
			for i := len(kids) - 1; i >= 0; i-- {
				stack = append(stack, kids[i])
			}
			if test.MatchesNode(top, principal) {
				return top, true, nil
			}
		}
		return nil, false, nil
	})
}

// compileFilter compiles E[p1][p2]...: each predicate filters the result of
// the previous stage, with its own focus (item, position, size).
func (c *compiler) compileFilter(n *expr.Filter) (seqFn, error) {
	baseFn, err := c.compile(n.In)
	if err != nil {
		return nil, err
	}
	cur := baseFn
	for _, pred := range n.Preds {
		// Positional fast path: a literal integer predicate [k] selects one
		// item and stops pulling input — the item-level skip() of E3/E4.
		if lit, ok := pred.(*expr.Literal); ok && lit.Val.T == xdm.TInteger {
			k := lit.Val.I
			prev := cur
			cur = func(fr *Frame) Iter {
				if k < 1 {
					return emptyIter
				}
				src := prev(fr)
				done := false
				return iterFunc(func() (xdm.Item, bool, error) {
					if done {
						return nil, false, nil
					}
					done = true
					var it xdm.Item
					var ok bool
					var err error
					for i := int64(0); i < k; i++ {
						it, ok, err = src.Next()
						if err != nil || !ok {
							return nil, false, err
						}
					}
					return it, true, nil
				})
			}
			continue
		}
		predFn, err := c.compile(pred)
		if err != nil {
			return nil, err
		}
		prev := cur
		pf := predFn
		cur = func(fr *Frame) Iter {
			base := NewLazySeq(prev(fr))
			lastFn := func() (int64, error) {
				n, err := base.Len()
				return int64(n), err
			}
			return &filterIter{fr: fr, pf: pf, bi: base.Iterator(), lastFn: lastFn}
		}
	}
	return c.tag("filter", n, cur), nil
}

// filterIter applies one compiled predicate with its own focus per input
// item. Batch pulls stage the input in a pooled scratch buffer and compact
// the keepers in place.
type filterIter struct {
	fr      *Frame
	pf      seqFn
	bi      Iter
	lastFn  func() (int64, error)
	pos     int64
	scratch []xdm.Item // borrowed from the pool on first batch pull
	done    bool
}

func (f *filterIter) Next() (xdm.Item, bool, error) {
	for {
		it, ok, err := f.bi.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.pos++
		keep, err := evalPredicate(f.pf, f.fr.focus(it, f.pos, f.lastFn), f.pos)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return it, true, nil
		}
	}
}

func (f *filterIter) release() {
	if f.scratch != nil {
		f.fr.dyn.putBuf(f.scratch)
		f.scratch = nil
	}
}

// NextBatch implements BatchIter.
func (f *filterIter) NextBatch(buf []xdm.Item) (int, error) {
	if f.done {
		return 0, nil
	}
	if f.scratch == nil {
		f.scratch = f.fr.dyn.getBuf()
	}
	for {
		in := f.scratch
		if len(buf) < len(in) {
			in = in[:len(buf)] // keepers must fit the caller's buffer
		}
		k, err := nextBatch(f.bi, in)
		n := 0
		for i := 0; i < k; i++ {
			it := in[i]
			f.pos++
			keep, kerr := evalPredicate(f.pf, f.fr.focus(it, f.pos, f.lastFn), f.pos)
			if kerr != nil {
				f.done = true
				f.release()
				return n, kerr
			}
			if keep {
				buf[n] = it
				n++
			}
		}
		if err != nil || k == 0 {
			f.done = true
			f.release()
			return n, err
		}
		if n > 0 {
			return n, nil
		}
		// A full input batch with no keepers: pull again rather than
		// returning a misleading n == 0 (which would signal the end).
	}
}

// evalPredicate decides a predicate: a single numeric result is a position
// test, anything else is taken by effective boolean value.
func evalPredicate(pf seqFn, fr *Frame, pos int64) (bool, error) {
	it := pf(fr)
	first, ok, err := it.Next()
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if a, isAtomic := first.(xdm.Atomic); isAtomic && a.T.IsNumeric() {
		if _, extra, err := it.Next(); err != nil {
			return false, err
		} else if !extra {
			return a.AsFloat() == float64(pos), nil
		}
		// A multi-item numeric sequence: positional range semantics
		// (1 to 2): keep if any value equals the position.
		if a.AsFloat() == float64(pos) {
			return true, nil
		}
		for {
			nx, more, err := it.Next()
			if err != nil {
				return false, err
			}
			if !more {
				return false, nil
			}
			if na, isA := nx.(xdm.Atomic); isA && na.T.IsNumeric() && na.AsFloat() == float64(pos) {
				return true, nil
			}
		}
	}
	if first.IsNode() {
		return true, nil
	}
	// Single non-numeric atomic: EBV.
	if _, extra, err := it.Next(); err != nil {
		return false, err
	} else if extra {
		return false, xdm.ErrType("predicate yields a multi-item atomic sequence")
	}
	return xdm.EffectiveBooleanItem(first)
}
