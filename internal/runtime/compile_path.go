package runtime

import (
	"xqgo/internal/expr"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Path evaluation: E1/E2 per the paper — evaluate E1, bind "." to each
// node, evaluate E2, concatenate, then eliminate duplicates and sort by
// document order. The final sort+dedup is skipped when the optimizer proved
// it unnecessary (Path.NoReorder, experiment E8); in that case the whole
// path is a fully streaming pipeline.

func (c *compiler) compilePath(n *expr.Path) (seqFn, error) {
	navFn, err := c.compileNavPath(n)
	if err != nil {
		return nil, err
	}
	if joined, ok := c.compileIndexedPath(n); ok {
		// Tag the two strategies separately so a profile shows which one ran.
		joined = c.tag("path[struct-join]", n, joined)
		nav := c.tag("path", n, navFn)
		return func(fr *Frame) Iter {
			if it, haveCtx := fr.ContextItem(); haveCtx {
				if _, isStore := it.(*store.Node); isStore {
					return joined(fr)
				}
			}
			return nav(fr) // non-store contexts fall back to navigation
		}, nil
	}
	return c.tag("path", n, navFn), nil
}

// compileNavPath is the navigation implementation of a path expression.
func (c *compiler) compileNavPath(n *expr.Path) (seqFn, error) {
	lf, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	rf, err := c.compile(n.R)
	if err != nil {
		return nil, err
	}
	noReorder := n.NoReorder && !c.opts.Eager

	raw := func(fr *Frame) Iter {
		lseq := NewLazySeq(lf(fr))
		li := lseq.Iterator()
		lastFn := func() (int64, error) {
			n, err := lseq.Len()
			return int64(n), err
		}
		var cur Iter
		pos := int64(0)
		return iterFunc(func() (xdm.Item, bool, error) {
			for {
				if err := fr.dyn.CheckInterrupt(); err != nil {
					return nil, false, err
				}
				if cur == nil {
					it, ok, err := li.Next()
					if err != nil {
						return nil, false, err
					}
					if !ok {
						return nil, false, nil
					}
					if !it.IsNode() {
						return nil, false, xdm.ErrType("path step applied to an atomic value")
					}
					pos++
					cur = rf(fr.focus(it, pos, lastFn))
				}
				it, ok, err := cur.Next()
				if err != nil {
					return nil, false, err
				}
				if ok {
					return it, true, nil
				}
				cur = nil
			}
		})
	}

	if noReorder {
		return raw, nil
	}
	// Materializing tail: sort by document order + dedup when the result is
	// nodes; pass through when it is purely atomic (the $x/f(.) case).
	return func(fr *Frame) Iter {
		seq, err := drain(raw(fr))
		if err != nil {
			return errIter(err)
		}
		nodes, atomics := 0, 0
		for _, it := range seq {
			if it.IsNode() {
				nodes++
			} else {
				atomics++
			}
		}
		switch {
		case nodes > 0 && atomics > 0:
			return errIter(xdm.ErrType("path result mixes nodes and atomic values"))
		case atomics > 0:
			return newSliceIter(seq)
		default:
			sorted, err := sortNodesDedup(seq)
			if err != nil {
				return errIter(err)
			}
			return newSliceIter(sorted)
		}
	}, nil
}

// compileStep compiles one axis step against the context item.
func (c *compiler) compileStep(n *expr.Step) (seqFn, error) {
	axis, test := n.Axis, n.Test
	return func(fr *Frame) Iter {
		it, ok := fr.ContextItem()
		if !ok {
			return errIter(xdm.Errf("XPDY0002", "no context item for axis step"))
		}
		node, isNode := it.(xdm.Node)
		if !isNode {
			return errIter(xdm.ErrType("axis step applied to an atomic value"))
		}
		return axisIter(node, axis, test)
	}, nil
}

// axisIter returns the nodes of an axis from a context node, filtered by
// the node test, in axis order (reverse axes deliver reverse document
// order; the enclosing path restores document order when required).
func axisIter(n xdm.Node, axis expr.Axis, test xtypes.NodeTest) Iter {
	principal := axis.Principal()
	switch axis {
	case expr.AxisSelf:
		if test.MatchesNode(n, principal) {
			return singleIter(n)
		}
		return emptyIter

	case expr.AxisChild:
		if sn, ok := n.(*store.Node); ok {
			return storeChildIter(sn, test, principal)
		}
		return filterNodes(n.ChildrenOf(), test, principal)

	case expr.AxisAttribute:
		return filterNodes(n.AttributesOf(), test, principal)

	case expr.AxisParent:
		p := n.Parent()
		if p != nil && test.MatchesNode(p, principal) {
			return singleIter(p)
		}
		return emptyIter

	case expr.AxisAncestor, expr.AxisAncestorOrSelf:
		cur := n
		if axis == expr.AxisAncestor {
			cur = n.Parent()
		}
		return iterFunc(func() (xdm.Item, bool, error) {
			for cur != nil {
				c := cur
				cur = cur.Parent()
				if test.MatchesNode(c, principal) {
					return c, true, nil
				}
			}
			return nil, false, nil
		})

	case expr.AxisDescendant, expr.AxisDescendantOrSelf:
		if sn, ok := n.(*store.Node); ok {
			return storeDescendantIter(sn, axis == expr.AxisDescendantOrSelf, test, principal)
		}
		return genericDescendantIter(n, axis == expr.AxisDescendantOrSelf, test, principal)

	case expr.AxisFollowingSibling, expr.AxisPrecedingSibling:
		p := n.Parent()
		if p == nil || n.Kind() == xdm.AttributeNode {
			return emptyIter
		}
		sibs := p.ChildrenOf()
		idx := -1
		for i, s := range sibs {
			if s.SameNode(n) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return emptyIter
		}
		var cand []xdm.Node
		if axis == expr.AxisFollowingSibling {
			cand = sibs[idx+1:]
		} else {
			// preceding-sibling in reverse document order
			for i := idx - 1; i >= 0; i-- {
				cand = append(cand, sibs[i])
			}
		}
		return filterNodes(cand, test, principal)
	}
	return emptyIter
}

func filterNodes(nodes []xdm.Node, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	i := 0
	return iterFunc(func() (xdm.Item, bool, error) {
		for i < len(nodes) {
			n := nodes[i]
			i++
			if test.MatchesNode(n, principal) {
				return n, true, nil
			}
		}
		return nil, false, nil
	})
}

// storeChildIter walks first-child/next-sibling links without allocating
// the child slice.
func storeChildIter(n *store.Node, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	d := n.D
	cur := d.FirstChildID(n.ID)
	return iterFunc(func() (xdm.Item, bool, error) {
		for cur >= 0 {
			id := cur
			cur = d.NextSiblingID(id)
			child := &store.Node{D: d, ID: id}
			if test.MatchesNode(child, principal) {
				return child, true, nil
			}
		}
		return nil, false, nil
	})
}

// storeDescendantIter exploits the array layout: the descendants of a node
// are exactly the id range (id, endID], minus attribute nodes — a linear
// scan with no tree navigation at all.
func storeDescendantIter(n *store.Node, orSelf bool, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	d := n.D
	cur := n.ID
	if !orSelf {
		cur++
	}
	end := d.EndID(n.ID)
	first := orSelf
	return iterFunc(func() (xdm.Item, bool, error) {
		for cur <= end {
			id := cur
			cur++
			if !first && d.Kind(id) == xdm.AttributeNode {
				continue
			}
			first = false
			node := &store.Node{D: d, ID: id}
			if test.MatchesNode(node, principal) {
				return node, true, nil
			}
		}
		return nil, false, nil
	})
}

// genericDescendantIter is the interface-only fallback (used by non-store
// node implementations in tests).
func genericDescendantIter(n xdm.Node, orSelf bool, test xtypes.NodeTest, principal xdm.NodeKind) Iter {
	var stack []xdm.Node
	if orSelf {
		stack = append(stack, n)
	} else {
		kids := n.ChildrenOf()
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return iterFunc(func() (xdm.Item, bool, error) {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			kids := top.ChildrenOf()
			for i := len(kids) - 1; i >= 0; i-- {
				stack = append(stack, kids[i])
			}
			if test.MatchesNode(top, principal) {
				return top, true, nil
			}
		}
		return nil, false, nil
	})
}

// compileFilter compiles E[p1][p2]...: each predicate filters the result of
// the previous stage, with its own focus (item, position, size).
func (c *compiler) compileFilter(n *expr.Filter) (seqFn, error) {
	baseFn, err := c.compile(n.In)
	if err != nil {
		return nil, err
	}
	cur := baseFn
	for _, pred := range n.Preds {
		// Positional fast path: a literal integer predicate [k] selects one
		// item and stops pulling input — the item-level skip() of E3/E4.
		if lit, ok := pred.(*expr.Literal); ok && lit.Val.T == xdm.TInteger {
			k := lit.Val.I
			prev := cur
			cur = func(fr *Frame) Iter {
				if k < 1 {
					return emptyIter
				}
				src := prev(fr)
				done := false
				return iterFunc(func() (xdm.Item, bool, error) {
					if done {
						return nil, false, nil
					}
					done = true
					var it xdm.Item
					var ok bool
					var err error
					for i := int64(0); i < k; i++ {
						it, ok, err = src.Next()
						if err != nil || !ok {
							return nil, false, err
						}
					}
					return it, true, nil
				})
			}
			continue
		}
		predFn, err := c.compile(pred)
		if err != nil {
			return nil, err
		}
		prev := cur
		pf := predFn
		cur = func(fr *Frame) Iter {
			base := NewLazySeq(prev(fr))
			bi := base.Iterator()
			lastFn := func() (int64, error) {
				n, err := base.Len()
				return int64(n), err
			}
			pos := int64(0)
			return iterFunc(func() (xdm.Item, bool, error) {
				for {
					it, ok, err := bi.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					pos++
					keep, err := evalPredicate(pf, fr.focus(it, pos, lastFn), pos)
					if err != nil {
						return nil, false, err
					}
					if keep {
						return it, true, nil
					}
				}
			})
		}
	}
	return c.tag("filter", n, cur), nil
}

// evalPredicate decides a predicate: a single numeric result is a position
// test, anything else is taken by effective boolean value.
func evalPredicate(pf seqFn, fr *Frame, pos int64) (bool, error) {
	it := pf(fr)
	first, ok, err := it.Next()
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if a, isAtomic := first.(xdm.Atomic); isAtomic && a.T.IsNumeric() {
		if _, extra, err := it.Next(); err != nil {
			return false, err
		} else if !extra {
			return a.AsFloat() == float64(pos), nil
		}
		// A multi-item numeric sequence: positional range semantics
		// (1 to 2): keep if any value equals the position.
		if a.AsFloat() == float64(pos) {
			return true, nil
		}
		for {
			nx, more, err := it.Next()
			if err != nil {
				return false, err
			}
			if !more {
				return false, nil
			}
			if na, isA := nx.(xdm.Atomic); isA && na.T.IsNumeric() && na.AsFloat() == float64(pos) {
				return true, nil
			}
		}
	}
	if first.IsNode() {
		return true, nil
	}
	// Single non-numeric atomic: EBV.
	if _, extra, err := it.Next(); err != nil {
		return false, err
	} else if extra {
		return false, xdm.ErrType("predicate yields a multi-item atomic sequence")
	}
	return xdm.EffectiveBooleanItem(first)
}
