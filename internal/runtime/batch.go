package runtime

import "xqgo/internal/xdm"

// Batched pull execution. The item-granularity Iter contract pays one
// interface dispatch per item per operator; on deep pipelines that cost
// dominates (the per-call "get next" overhead the paper flags as the price
// of the fully lazy design). BatchIter is the vectorized fast path: an
// operator that can produce many items per call implements NextBatch, and
// consumers that want whole sequences pull through nextBatch, which falls
// back to an item-at-a-time fill for operators that only implement Next.
//
// Semantics are demand-driven: Next keeps its exact lazy, item-at-a-time
// behavior everywhere, and NextBatch demand propagates only downward from
// consumers that drain their whole input anyway (Eval, ExecuteToWriter,
// sort/dedup tails, argument materialization, fn:count, ...). Lazy
// consumers — effective boolean value, quantifiers, fn:exists, positional
// predicates — keep pulling single items, so errors or non-termination in
// parts of a query that item-at-a-time evaluation would never reach are
// still never reached.

// BatchIter is implemented by iterators with a vectorized fast path.
//
// NextBatch fills buf with up to len(buf) items and returns how many were
// written. n == 0 with a nil error means the sequence is exhausted; a short
// batch (0 < n < len(buf)) does NOT signal the end — callers must pull
// again. On error, buf[:n] holds items produced before the error and the
// iterator must not be pulled again.
type BatchIter interface {
	Iter
	NextBatch(buf []xdm.Item) (int, error)
}

// sizedIter is implemented by iterators that know how many items remain
// without producing them (ranges, materialized slices). fn:count uses it to
// skip production entirely; ok=false means the size is unknown. Only
// side-effect-free, error-free sources may report a size.
type sizedIter interface {
	remaining() (int64, bool)
}

// nextBatch is the generic adapter: a native batch pull when the iterator
// supports it, otherwise an item-at-a-time fill with identical semantics.
func nextBatch(it Iter, buf []xdm.Item) (int, error) {
	if b, ok := it.(BatchIter); ok {
		return b.NextBatch(buf)
	}
	n := 0
	for n < len(buf) {
		x, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		buf[n] = x
		n++
	}
	return n, nil
}

// drainBatched materializes an iterator into a sequence with batched pulls.
// Batches are pulled directly into the spare capacity of the output slice —
// a staging buffer would double every pointer write (and its GC barrier),
// which costs more than the dispatch the batching saves.
func drainBatched(dyn *Dynamic, it Iter) (xdm.Sequence, error) {
	out := make(xdm.Sequence, 0, batchSize)
	for {
		if len(out) == cap(out) {
			// Budget the doubling once a single drain grows past the floor:
			// large materializations are the OOM risk, while the many small
			// transient drains of ordinary evaluation stay free (charging
			// them would count total allocation, not retained bytes, and
			// false-trip long-running queries).
			if cap(out) >= budgetDrainFloor {
				if err := dyn.Budget.Charge(int64(cap(out)) * budgetItemBytes); err != nil {
					return nil, err
				}
			}
			grown := make(xdm.Sequence, len(out), 2*cap(out))
			copy(grown, out)
			out = grown
		}
		win := out[len(out):cap(out)]
		if len(win) > maxBatch {
			win = win[:maxBatch] // keep interrupt polls frequent
		}
		n, err := nextBatch(it, win)
		out = out[:len(out)+n]
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// batchSize is the number of items moved per vectorized pull. Large enough
// to amortize the per-call costs, small enough that prefetching a batch
// ahead of the consumer stays cheap.
const batchSize = 128

// maxBatch caps the window handed to a single NextBatch when draining into
// a large sequence, so interrupt polls stay reasonably frequent.
const maxBatch = 4096

// budgetItemBytes is the charged estimate per retained sequence slot: the
// two-word interface header. The items' own payloads are charged where
// they are built (store nodes at parse time, window buffers by byte).
const budgetItemBytes = 16

// budgetDrainFloor is the slice capacity (in items) above which a single
// materialization starts charging its growth against the memory budget.
const budgetDrainFloor = 4 * batchSize

// getBuf takes a batch buffer from the per-execution pool (allocating on
// first use). Buffers are plan-shaped scratch space: iterators and sinks
// borrow one for the duration of a drain or for their internal staging and
// return it with putBuf; an abandoned buffer is simply collected.
func (d *Dynamic) getBuf() []xdm.Item {
	d.bufMu.Lock()
	if n := len(d.bufFree); n > 0 {
		b := d.bufFree[n-1]
		d.bufFree = d.bufFree[:n-1]
		d.bufMu.Unlock()
		return b
	}
	d.bufMu.Unlock()
	// A fresh buffer stays resident in this execution's pool until the
	// query ends, so its footprint is charged once here. getBuf has no
	// error return: overage panics the *BudgetError through the engine's
	// recover boundaries.
	d.Budget.MustCharge(batchSize * budgetItemBytes)
	return make([]xdm.Item, batchSize)
}

// putBuf returns a buffer to the pool, clearing item references so the pool
// does not pin result trees.
func (d *Dynamic) putBuf(buf []xdm.Item) {
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = nil
	}
	d.bufMu.Lock()
	d.bufFree = append(d.bufFree, buf)
	d.bufMu.Unlock()
}

// CheckInterruptN is CheckInterrupt for a batch of n productive steps: the
// step budget advances by n at once and the hook runs when a stride
// boundary was crossed, so batched operators poll the deadline about as
// often per item as item-at-a-time ones.
func (d *Dynamic) CheckInterruptN(n int) error {
	if d.Interrupt == nil || n <= 0 {
		return nil
	}
	if s := d.steps.Add(uint64(n)); s%interruptStride >= uint64(n) {
		return nil
	}
	d.Prof.addInterruptPoll()
	return d.Interrupt()
}
