package runtime

// Unit tests for the NextBatch contract: the generic adapter over
// Next-only iterators, native batch producers (sliceIter, rangeIter,
// lazyCursor), partial-batch error delivery, and the per-execution
// buffer pool.

import (
	"errors"
	"testing"

	"xqgo/internal/xdm"
)

// stubIter yields the given items one at a time, then an optional error.
// It deliberately implements only Next, to exercise the generic adapter.
type stubIter struct {
	items []xdm.Item
	pos   int
	err   error
}

func (s *stubIter) Next() (xdm.Item, bool, error) {
	if s.pos < len(s.items) {
		it := s.items[s.pos]
		s.pos++
		return it, true, nil
	}
	if s.err != nil {
		e := s.err
		s.err = nil
		return nil, false, e
	}
	return nil, false, nil
}

func ints(vals ...int64) xdm.Sequence {
	out := make(xdm.Sequence, len(vals))
	for i, v := range vals {
		out[i] = xdm.NewInteger(v)
	}
	return out
}

func TestNextBatchAdapterFillsFromNext(t *testing.T) {
	it := &stubIter{items: ints(1, 2, 3, 4, 5)}
	buf := make([]xdm.Item, 3)

	n, err := nextBatch(it, buf)
	if err != nil || n != 3 {
		t.Fatalf("first batch: n=%d err=%v, want 3 items", n, err)
	}
	n, err = nextBatch(it, buf)
	if err != nil || n != 2 {
		t.Fatalf("second batch: n=%d err=%v, want short batch of 2", n, err)
	}
	// A short batch does not signal the end; the next pull must return 0.
	n, err = nextBatch(it, buf)
	if err != nil || n != 0 {
		t.Fatalf("final batch: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestNextBatchAdapterPartialBatchBeforeError(t *testing.T) {
	boom := errors.New("boom")
	it := &stubIter{items: ints(7, 8), err: boom}
	buf := make([]xdm.Item, 8)

	n, err := nextBatch(it, buf)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want the 2 items produced before the error", n)
	}
	if buf[0].(xdm.Atomic).AsInt() != 7 || buf[1].(xdm.Atomic).AsInt() != 8 {
		t.Fatalf("buf[:2] = %v, want items 7, 8", buf[:2])
	}
}

func TestNativeBatchProducers(t *testing.T) {
	dyn := &Dynamic{}
	cases := []struct {
		name string
		it   Iter
		want []int64
	}{
		{"sliceIter", newSliceIter(ints(1, 2, 3, 4, 5, 6, 7)), []int64{1, 2, 3, 4, 5, 6, 7}},
		{"rangeIter", &rangeIter{cur: 10, end: 14, dyn: dyn}, []int64{10, 11, 12, 13, 14}},
		{"lazyCursor", NewLazySeq(&stubIter{items: ints(3, 1, 4, 1, 5)}).Iterator(),
			[]int64{3, 1, 4, 1, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := tc.it.(BatchIter); !ok {
				t.Fatalf("%s does not implement BatchIter", tc.name)
			}
			// Pull through an odd-sized buffer so batch boundaries do not
			// line up with the sequence length.
			buf := make([]xdm.Item, 3)
			var got []int64
			for {
				n, err := nextBatch(tc.it, buf)
				if err != nil {
					t.Fatalf("NextBatch: %v", err)
				}
				for _, x := range buf[:n] {
					got = append(got, x.(xdm.Atomic).AsInt())
				}
				if n == 0 {
					break
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestLazyCursorMixedGranularity(t *testing.T) {
	// Two cursors over one LazySeq, one pulling items and one pulling
	// batches, must see the same sequence: batch pulls extend the shared
	// cache that item pulls replay.
	seq := NewLazySeq(&stubIter{items: ints(1, 2, 3, 4, 5, 6, 7, 8, 9)})
	a := seq.Iterator()
	b := seq.Iterator().(BatchIter)

	// a consumes two items first.
	for i := int64(1); i <= 2; i++ {
		x, ok, err := a.Next()
		if err != nil || !ok || x.(xdm.Atomic).AsInt() != i {
			t.Fatalf("item cursor: got %v ok=%v err=%v, want %d", x, ok, err, i)
		}
	}
	// b batch-pulls past a's position. Short batches are legal (the cursor
	// may return the already-cached prefix first), so pull until 6 arrive.
	buf := make([]xdm.Item, 6)
	var got []xdm.Item
	for len(got) < 6 {
		n, err := b.NextBatch(buf)
		if err != nil || n == 0 {
			t.Fatalf("batch cursor: n=%d err=%v after %d items, want 6 total", n, err, len(got))
		}
		got = append(got, buf[:n]...)
	}
	for i, x := range got {
		if x.(xdm.Atomic).AsInt() != int64(i+1) {
			t.Fatalf("batch cursor item %d = %v, want %d", i, x, i+1)
		}
	}
	// a continues from its own position over the now-cached prefix.
	x, ok, err := a.Next()
	if err != nil || !ok || x.(xdm.Atomic).AsInt() != 3 {
		t.Fatalf("item cursor after batch: got %v ok=%v err=%v, want 3", x, ok, err)
	}
}

func TestDrainBatched(t *testing.T) {
	dyn := &Dynamic{}
	want := batchSize*2 + 17 // force full batches, a short batch, and an end pull
	var items xdm.Sequence
	for i := 0; i < want; i++ {
		items = append(items, xdm.NewInteger(int64(i)))
	}
	out, err := drainBatched(dyn, &stubIter{items: items})
	if err != nil {
		t.Fatalf("drainBatched: %v", err)
	}
	if len(out) != want {
		t.Fatalf("len = %d, want %d", len(out), want)
	}
	for i, x := range out {
		if x.(xdm.Atomic).AsInt() != int64(i) {
			t.Fatalf("out[%d] = %v, want %d", i, x, i)
		}
	}

	boom := errors.New("boom")
	if _, err := drainBatched(dyn, &stubIter{items: ints(1, 2), err: boom}); !errors.Is(err, boom) {
		t.Fatalf("drainBatched error = %v, want boom", err)
	}
}

func TestBufferPoolReuseAndClearing(t *testing.T) {
	dyn := &Dynamic{}
	b1 := dyn.getBuf()
	if len(b1) != batchSize {
		t.Fatalf("len(buf) = %d, want %d", len(b1), batchSize)
	}
	b1[0] = xdm.NewInteger(42)
	dyn.putBuf(b1[:5]) // returned short; pool must restore capacity and clear refs

	b2 := dyn.getBuf()
	if &b1[:batchSize][0] != &b2[0] {
		t.Fatalf("pool did not reuse the returned buffer")
	}
	if len(b2) != batchSize {
		t.Fatalf("reused buffer len = %d, want %d", len(b2), batchSize)
	}
	for i, x := range b2 {
		if x != nil {
			t.Fatalf("buf[%d] = %v, want nil (refs must be cleared)", i, x)
		}
	}
}

func TestCheckInterruptNCountsSteps(t *testing.T) {
	polls := 0
	dyn := &Dynamic{Interrupt: func() error { polls++; return nil }}
	// Advance the step budget by batches summing to many strides: the hook
	// must run about once per stride, exactly as item-wise CheckInterrupt.
	const rounds = 100
	const perBatch = 100
	for i := 0; i < rounds; i++ {
		if err := dyn.CheckInterruptN(perBatch); err != nil {
			t.Fatalf("CheckInterruptN: %v", err)
		}
	}
	wantPolls := rounds * perBatch / int(interruptStride)
	if polls < wantPolls-1 || polls > wantPolls+1 {
		t.Fatalf("polls = %d, want about %d", polls, wantPolls)
	}

	interrupted := errors.New("deadline")
	dyn2 := &Dynamic{Interrupt: func() error { return interrupted }}
	var err error
	for i := 0; i < 2*int(interruptStride); i++ {
		if err = dyn2.CheckInterruptN(8); err != nil {
			break
		}
	}
	if !errors.Is(err, interrupted) {
		t.Fatalf("err = %v, want the interrupt error to surface", err)
	}
}
