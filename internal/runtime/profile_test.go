package runtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xqgo/internal/xmlparse"
	"xqgo/internal/xqparse"
)

func compileProf(t *testing.T, src string, opts Options) *Prepared {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := Compile(q, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return p
}

func TestProfileCountsOperators(t *testing.T) {
	p := compileProf(t, `for $b in /bib/book where $b/price > 10 return string($b/title)`, Options{})
	dyn := testDynamic(t)
	prof := p.NewProfile(true)
	dyn.Prof = prof
	if _, err := p.Eval(dyn); err != nil {
		t.Fatal(err)
	}
	rep := prof.Report()
	active := 0
	kinds := map[string]bool{}
	for _, op := range rep.Operators {
		if op.Starts == 0 {
			t.Errorf("reported operator %d (%s) never started", op.ID, op.Kind)
		}
		if op.Items > 0 {
			active++
		}
		kinds[op.Kind] = true
		if op.Line == 0 {
			t.Errorf("operator %d (%s) has no source position", op.ID, op.Kind)
		}
	}
	if active < 3 {
		t.Errorf("profile has %d operators with items, want >= 3:\n%+v", active, rep.Operators)
	}
	if !kinds["flwor"] || !kinds["path"] {
		t.Errorf("profile kinds = %v, want flwor and path", kinds)
	}
	// Timed mode records wall time for at least the outermost operator.
	total := int64(0)
	for _, op := range rep.Operators {
		total += op.Nanos
	}
	if !rep.Timed || total == 0 {
		t.Errorf("timed profile recorded no time (timed=%v, total=%d)", rep.Timed, total)
	}
}

func TestProfileUntouchedWhenOff(t *testing.T) {
	p := compileProf(t, `for $b in /bib/book return $b/title`, Options{})
	// No profile attached: the run must succeed and instrument nothing.
	if _, err := p.Eval(testDynamic(t)); err != nil {
		t.Fatal(err)
	}
	prof := p.NewProfile(false)
	if got := len(prof.Report().Operators); got != 0 {
		t.Errorf("unattached profile reports %d operators", got)
	}
}

func TestProfileNoHooksElidesOperators(t *testing.T) {
	p := compileProf(t, `for $b in /bib/book return $b/title`, Options{NoProfileHooks: true})
	if got := len(p.Operators()); got != 0 {
		t.Errorf("NoProfileHooks compile registered %d operators", got)
	}
	dyn := testDynamic(t)
	prof := p.NewProfile(true)
	dyn.Prof = prof
	if _, err := p.Eval(dyn); err != nil {
		t.Fatal(err)
	}
	if got := len(prof.Report().Operators); got != 0 {
		t.Errorf("NoProfileHooks run still profiled %d operators", got)
	}
}

// TestProfileConcurrentQueries shares one Profile across parallel executions;
// under -race this proves the per-operator and engine counters are safe, and
// the totals prove no update is lost.
func TestProfileConcurrentQueries(t *testing.T) {
	p := compileProf(t, `for $b in /bib/book return string($b/title)`, Options{})
	prof := p.NewProfile(false)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dyn := testDynamic(t)
			dyn.Prof = prof
			if _, err := p.Eval(dyn); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var flworItems int64
	for _, op := range prof.Report().Operators {
		if op.Kind == "flwor" {
			flworItems = op.Items
		}
	}
	// testBib has 3 books; every one of the 8 runs returns all of them.
	if want := int64(3 * workers); flworItems != want {
		t.Errorf("flwor items = %d, want %d", flworItems, want)
	}
}

// TestProfilingOffOverheadGuard asserts the tentpole's zero-cost-when-off
// claim: with hooks compiled in but no profile attached, the hot path may
// cost at most 3% over a NoProfileHooks build of the same query.
func TestProfilingOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive benchmark guard; skipped in -short")
	}
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "<book year=\"%d\"><title>t%d</title><price>%d</price></book>",
			1990+i%30, i, i%150)
	}
	sb.WriteString("</bib>")
	doc, err := xmlparse.ParseString(sb.String(), xmlparse.Options{URI: "guard.xml"})
	if err != nil {
		t.Fatal(err)
	}
	const src = `for $b in /bib/book where $b/price > 75 return $b/title`
	bare := compileProf(t, src, Options{NoProfileHooks: true})
	hooked := compileProf(t, src, Options{})

	run := func(p *Prepared) {
		if _, err := p.Eval(&Dynamic{ContextItem: doc.RootNode()}); err != nil {
			t.Fatal(err)
		}
	}
	measure := func(p *Prepared) time.Duration {
		const iters = 40
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 7; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				run(p)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	measure(bare) // warm-up
	measure(hooked)
	var tb, th time.Duration
	for attempt := 0; attempt < 5; attempt++ {
		tb = measure(bare)
		th = measure(hooked)
		if float64(th) <= float64(tb)*1.03 {
			return
		}
		t.Logf("attempt %d: hooks-on %v vs hooks-off %v", attempt, th, tb)
	}
	t.Errorf("profiling-off overhead above 3%%: hooks-on %v vs hooks-off %v", th, tb)
}
