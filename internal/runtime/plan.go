package runtime

import "xqgo/internal/expr"

// Structured plan introspection: the tagged-operator tree of a compiled
// query. Operator ids are the same stable ids profile rows and trace spans
// carry, so a caller can line up PlanTree output with explain profiles.

// PlanNode is one tagged operator with the tagged operators of its
// sub-expressions as children. Untagged glue expressions (literals,
// arithmetic, …) do not appear as nodes; their tagged descendants attach
// to the nearest tagged ancestor.
type PlanNode struct {
	OpInfo
	Children []*PlanNode `json:"children,omitempty"`
}

// PlanTree returns the operator tree of the compiled plan: global-variable
// initializers, then function bodies, then the query body. Empty when the
// plan was compiled with NoProfileHooks.
func (p *Prepared) PlanTree() []*PlanNode {
	if len(p.ops) == 0 || p.query == nil {
		return nil
	}
	byExpr := make(map[expr.Expr][]int, len(p.opExpr))
	for id, e := range p.opExpr {
		byExpr[e] = append(byExpr[e], id)
	}
	var build func(e expr.Expr, sink *[]*PlanNode)
	build = func(e expr.Expr, sink *[]*PlanNode) {
		if e == nil {
			return
		}
		if ids := byExpr[e]; len(ids) > 0 {
			// An expression tagged more than once (nested wrappers) chains
			// vertically, outermost first.
			node := &PlanNode{OpInfo: p.ops[ids[0]]}
			*sink = append(*sink, node)
			for _, id := range ids[1:] {
				child := &PlanNode{OpInfo: p.ops[id]}
				node.Children = append(node.Children, child)
				node = child
			}
			sink = &node.Children
		}
		for _, ch := range e.Children() {
			build(ch, sink)
		}
	}
	var roots []*PlanNode
	for i := range p.query.Vars {
		if !p.query.Vars[i].External {
			build(p.query.Vars[i].Init, &roots)
		}
	}
	for i := range p.query.Funcs {
		build(p.query.Funcs[i].Body, &roots)
	}
	build(p.query.Body, &roots)
	return roots
}
