package runtime

import (
	"fmt"

	"xqgo/internal/expr"
	"xqgo/internal/functions"
	"xqgo/internal/optimizer"
	"xqgo/internal/projection"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Options select the engine variant.
type Options struct {
	// Eager switches to the materializing baseline engine: every
	// sub-expression is fully evaluated before its consumer runs. This is
	// the comparator for the streaming-vs-materialized experiments.
	Eager bool
	// Strategy is the join-strategy policy for join-eligible path chains
	// (//a//b …): StrategyAuto (the resolved default) picks per branch and
	// per document with the cost model in internal/optimizer; the Force*
	// values pin one execution strategy. StrategyDefault resolves to Auto.
	// A per-execution Dynamic.PlanHint overrides this at run time.
	Strategy optimizer.Strategy
	// MemoizeFunctions caches calls to pure user functions per execution
	// (the paper's intra-query memoization).
	MemoizeFunctions bool
	// Parallel evaluates independent heavy branches of comma sequences
	// concurrently (the paper's horizontal parallelization).
	Parallel bool
	// NoProfileHooks compiles the plan without profiling tag wrappers.
	// Plans compiled this way cannot be profiled (NewProfile reports no
	// operators) but carry zero instrumentation code.
	NoProfileHooks bool
	// NoBatch disables the vectorized NextBatch fast path (see batch.go):
	// every materializing consumer in the plan pulls one item per call.
	// This is the item-at-a-time baseline for the batched-vs-item
	// benchmark rows and the differential test.
	NoBatch bool
	// Projection is the query's static path set (optimizer.ExtractPaths):
	// lazily ingested documents consult it to skip unreachable subtrees.
	// Nil keeps everything.
	Projection *projection.Paths
}

// seqFn is a compiled expression: evaluate against a frame, get an iterator.
type seqFn func(fr *Frame) Iter

// Prepared is a compiled query ready for execution.
type Prepared struct {
	opts    Options
	body    seqFn
	globals []globalDef
	query   *expr.Query
	ops     []OpInfo    // tagged operators, in compile order
	opExpr  []expr.Expr // source expression per tagged operator (plan tree)
	fb      *feedback   // observed output cardinalities, keyed by operator id
}

type globalDef struct {
	id       int
	name     xdm.QName
	typ      *xtypes.SequenceType
	init     seqFn // nil for external
	external bool
}

type userFunc struct {
	decl     expr.FuncDecl
	paramIDs []int
	body     seqFn // set after compilation (recursion-safe indirection)
}

// compiler compiles an expression tree.
type compiler struct {
	opts   Options
	scopes []map[string]int
	nextID int
	funcs  map[string]*userFunc // key: clark name + "/" + arity
	ops    []OpInfo             // operators tagged so far (profiling ids)
	opExpr []expr.Expr          // source expression per tagged operator
	fb     *feedback            // shared with the Prepared; sized after compile
}

// Compile compiles a parsed query for the given engine options.
func Compile(q *expr.Query, opts Options) (*Prepared, error) {
	if opts.Strategy == optimizer.StrategyDefault {
		opts.Strategy = optimizer.StrategyAuto
	}
	c := &compiler{opts: opts, funcs: map[string]*userFunc{}, fb: &feedback{}}
	c.pushScope()

	// Declare functions first (mutual recursion).
	for i := range q.Funcs {
		fd := &q.Funcs[i]
		key := funcKey(fd.Name, len(fd.Params))
		if _, dup := c.funcs[key]; dup {
			return nil, fmt.Errorf("duplicate function %s/%d", fd.Name, len(fd.Params))
		}
		c.funcs[key] = &userFunc{decl: *fd}
	}

	// Global variables, in declaration order; later globals see earlier ones.
	p := &Prepared{opts: opts, query: q}
	for i := range q.Vars {
		vd := &q.Vars[i]
		var initFn seqFn
		if !vd.External {
			fn, err := c.compile(vd.Init)
			if err != nil {
				return nil, err
			}
			initFn = fn
		}
		id := c.declare(vd.Name)
		p.globals = append(p.globals, globalDef{
			id: id, name: vd.Name, typ: vd.Type, init: initFn, external: vd.External,
		})
	}

	// Function bodies (they see globals declared before them — standard
	// XQuery allows any order; we compile bodies after all declarations).
	for _, uf := range c.funcs {
		c.pushScope()
		for _, prm := range uf.decl.Params {
			uf.paramIDs = append(uf.paramIDs, c.declare(prm.Name))
		}
		body, err := c.compile(uf.decl.Body)
		if err != nil {
			return nil, err
		}
		if uf.decl.Ret != nil {
			body = typeCheckFn(body, *uf.decl.Ret, "result of function "+uf.decl.Name.String())
		}
		uf.body = body
		c.popScope()
	}

	body, err := c.compile(q.Body)
	if err != nil {
		return nil, err
	}
	p.body = body
	p.ops = c.ops
	p.opExpr = c.opExpr
	c.fb.init(len(c.ops))
	p.fb = c.fb
	return p, nil
}

func funcKey(q xdm.QName, arity int) string {
	return q.Clark() + "/" + fmt.Sprint(arity)
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) declare(q xdm.QName) int {
	id := c.nextID
	c.nextID++
	c.scopes[len(c.scopes)-1][q.Clark()] = id
	return id
}

func (c *compiler) resolve(q xdm.QName) (int, bool) {
	key := q.Clark()
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if id, ok := c.scopes[i][key]; ok {
			return id, true
		}
	}
	return 0, false
}

// drainFor returns the materializing drain for this plan: batched pulls
// through the buffer pool unless the plan was compiled with NoBatch.
func (c *compiler) drainFor() func(fr *Frame, it Iter) (xdm.Sequence, error) {
	if c.opts.NoBatch {
		return func(_ *Frame, it Iter) (xdm.Sequence, error) { return drain(it) }
	}
	return func(fr *Frame, it Iter) (xdm.Sequence, error) { return drainBatched(fr.dyn, it) }
}

// wrap applies the eager-engine transformation: fully materialize.
func (c *compiler) wrap(fn seqFn) seqFn {
	if !c.opts.Eager {
		return fn
	}
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		seq, err := dr(fr, fn(fr))
		if err != nil {
			return errIter(err)
		}
		return newSliceIter(seq)
	}
}

// compile dispatches over the expression kinds.
func (c *compiler) compile(e expr.Expr) (seqFn, error) {
	fn, err := c.compileRaw(e)
	if err != nil {
		return nil, err
	}
	return c.wrap(fn), nil
}

func (c *compiler) compileRaw(e expr.Expr) (seqFn, error) {
	switch n := e.(type) {
	case *expr.Literal:
		v := n.Val
		return func(fr *Frame) Iter { return singleIter(v) }, nil

	case *expr.VarRef:
		id, ok := c.resolve(n.Name)
		if !ok {
			return nil, fmt.Errorf("%d:%d: undeclared variable $%s",
				n.Span().Line, n.Span().Col, n.Name)
		}
		return func(fr *Frame) Iter { return fr.lookup(id).Iterator() }, nil

	case *expr.ContextItem:
		return func(fr *Frame) Iter {
			it, ok := fr.ContextItem()
			if !ok {
				return errIter(xdm.Errf("XPDY0002", "context item is undefined"))
			}
			return singleIter(it)
		}, nil

	case *expr.Root:
		return func(fr *Frame) Iter {
			it, ok := fr.ContextItem()
			if !ok {
				return errIter(xdm.Errf("XPDY0002", "no context item for '/'"))
			}
			node, isNode := it.(xdm.Node)
			if !isNode {
				return errIter(xdm.ErrType("'/' requires a node context item"))
			}
			r := node
			for p := r.Parent(); p != nil; p = p.Parent() {
				r = p
			}
			return singleIter(r)
		}, nil

	case *expr.Seq:
		fns := make([]seqFn, len(n.Items))
		for i, item := range n.Items {
			fn, err := c.compile(item)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		if par, ok := c.compileParallelSeq(n, fns); ok {
			return par, nil
		}
		return func(fr *Frame) Iter { return newConcatIter(fr, fns) }, nil

	case *expr.Range:
		lo, err := c.compile(n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compile(n.Hi)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) Iter {
			a, okA, err := atomizeSingle(lo(fr))
			if err != nil {
				return errIter(err)
			}
			b, okB, err := atomizeSingle(hi(fr))
			if err != nil {
				return errIter(err)
			}
			if !okA || !okB {
				return emptyIter
			}
			ia, err := requireInteger(a, "range start")
			if err != nil {
				return errIter(err)
			}
			ib, err := requireInteger(b, "range end")
			if err != nil {
				return errIter(err)
			}
			return &rangeIter{cur: ia, end: ib, dyn: fr.dyn}
		}, nil

	case *expr.Arith:
		lf, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		rf, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(fr *Frame) Iter {
			a, okA, err := atomizeSingle(lf(fr))
			if err != nil {
				return errIter(err)
			}
			if !okA {
				return emptyIter
			}
			b, okB, err := atomizeSingle(rf(fr))
			if err != nil {
				return errIter(err)
			}
			if !okB {
				return emptyIter
			}
			r, err := xdm.Arith(op, a, b)
			if err != nil {
				return errIter(err)
			}
			return singleIter(r)
		}, nil

	case *expr.Neg:
		xf, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) Iter {
			a, ok, err := atomizeSingle(xf(fr))
			if err != nil {
				return errIter(err)
			}
			if !ok {
				return emptyIter
			}
			r, err := xdm.Negate(a)
			if err != nil {
				return errIter(err)
			}
			return singleIter(r)
		}, nil

	case *expr.Compare:
		return c.compileCompare(n)

	case *expr.NodeCompare:
		return c.compileNodeCompare(n)

	case *expr.Logic:
		lf, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		rf, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		and := n.And
		return func(fr *Frame) Iter {
			lb, err := ebvOf(lf(fr))
			if err != nil {
				return errIter(err)
			}
			// Short-circuit: the paper's "false and error => false".
			if and && !lb {
				return singleIter(xdm.False)
			}
			if !and && lb {
				return singleIter(xdm.True)
			}
			rb, err := ebvOf(rf(fr))
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewBoolean(rb))
		}, nil

	case *expr.If:
		cf, err := c.compile(n.Cond)
		if err != nil {
			return nil, err
		}
		tf, err := c.compile(n.Then)
		if err != nil {
			return nil, err
		}
		ef, err := c.compile(n.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) Iter {
			b, err := ebvOf(cf(fr))
			if err != nil {
				return errIter(err)
			}
			if b {
				return tf(fr)
			}
			return ef(fr)
		}, nil

	case *expr.InstanceOf:
		xf, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		t := n.T
		dr := c.drainFor()
		return func(fr *Frame) Iter {
			seq, err := dr(fr, xf(fr))
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewBoolean(t.Matches(seq)))
		}, nil

	case *expr.Treat:
		xf, err := c.compile(n.X)
		if err != nil {
			return nil, err
		}
		return typeCheckFn(xf, n.T, "treat as "+n.T.String()), nil

	case *expr.Cast:
		return c.compileCast(n)

	case *expr.Typeswitch:
		return c.compileTypeswitch(n)

	case *expr.SetOp:
		return c.compileSetOp(n)

	case *expr.Path:
		return c.compilePath(n)

	case *expr.Step:
		return c.compileStep(n)

	case *expr.Filter:
		return c.compileFilter(n)

	case *expr.Flwor:
		return c.compileFlwor(n)

	case *expr.Quantified:
		return c.compileQuantified(n)

	case *expr.TryCatch:
		return c.compileTryCatch(n)

	case *expr.Call:
		return c.compileCall(n)

	case *expr.ElemConstructor, *expr.AttrConstructor, *expr.TextConstructor,
		*expr.CommentConstructor, *expr.PIConstructor, *expr.DocConstructor:
		return c.compileConstructor(e)

	default:
		return nil, fmt.Errorf("runtime: cannot compile %T", e)
	}
}

// ---- helper evaluation pieces ----

// rangeIter counts through lo..hi, a whole chunk per batch pull.
type rangeIter struct {
	cur, end int64
	dyn      *Dynamic
}

func (r *rangeIter) Next() (xdm.Item, bool, error) {
	if r.cur > r.end {
		return nil, false, nil
	}
	if err := r.dyn.CheckInterrupt(); err != nil {
		return nil, false, err
	}
	v := xdm.NewInteger(r.cur)
	r.cur++
	return v, true, nil
}

// remaining implements sizedIter: a range knows its cardinality.
func (r *rangeIter) remaining() (int64, bool) {
	if r.cur > r.end {
		return 0, true
	}
	return r.end - r.cur + 1, true
}

// NextBatch implements BatchIter.
func (r *rangeIter) NextBatch(buf []xdm.Item) (int, error) {
	n := 0
	for n < len(buf) && r.cur <= r.end {
		buf[n] = xdm.NewInteger(r.cur)
		r.cur++
		n++
	}
	if err := r.dyn.CheckInterruptN(n); err != nil {
		return n, err
	}
	return n, nil
}

// concatIter concatenates the results of several compiled expressions.
type concatIter struct {
	fr  *Frame
	fns []seqFn
	idx int
	cur Iter
}

func newConcatIter(fr *Frame, fns []seqFn) Iter { return &concatIter{fr: fr, fns: fns} }

func (ci *concatIter) Next() (xdm.Item, bool, error) {
	for {
		if ci.cur == nil {
			if ci.idx >= len(ci.fns) {
				return nil, false, nil
			}
			ci.cur = ci.fns[ci.idx](ci.fr)
			ci.idx++
		}
		it, ok, err := ci.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return it, true, nil
		}
		ci.cur = nil
	}
}

// NextBatch implements BatchIter: the batch demand is forwarded to the
// current operand, so a whole chain of concatenations moves chunks.
func (ci *concatIter) NextBatch(buf []xdm.Item) (int, error) {
	for {
		if ci.cur == nil {
			if ci.idx >= len(ci.fns) {
				return 0, nil
			}
			ci.cur = ci.fns[ci.idx](ci.fr)
			ci.idx++
		}
		n, err := nextBatch(ci.cur, buf)
		if err != nil || n > 0 {
			return n, err
		}
		ci.cur = nil
	}
}

// atomizeSingle pulls at most one item and atomizes it; a second item is a
// type error, an empty input yields ok=false.
func atomizeSingle(it Iter) (xdm.Atomic, bool, error) {
	first, ok, err := it.Next()
	if err != nil {
		return xdm.Atomic{}, false, err
	}
	if !ok {
		return xdm.Atomic{}, false, nil
	}
	if _, extra, err := it.Next(); err != nil {
		return xdm.Atomic{}, false, err
	} else if extra {
		return xdm.Atomic{}, false, xdm.ErrType("a sequence of more than one item cannot be atomized to a single value")
	}
	return xdm.Atomize(first), true, nil
}

// ebvOf computes the effective boolean value of an iterator, pulling at
// most two items (lazy: a node first item decides immediately).
func ebvOf(it Iter) (bool, error) {
	first, ok, err := it.Next()
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if first.IsNode() {
		return true, nil
	}
	if _, extra, err := it.Next(); err != nil {
		return false, err
	} else if extra {
		return false, xdm.ErrType("effective boolean value of a multi-item atomic sequence")
	}
	return xdm.EffectiveBooleanItem(first)
}

func requireInteger(a xdm.Atomic, what string) (int64, error) {
	switch a.T {
	case xdm.TInteger:
		return a.I, nil
	case xdm.TUntyped:
		cast, err := xdm.Cast(a, xdm.TInteger)
		if err != nil {
			return 0, err
		}
		return cast.I, nil
	case xdm.TDecimal, xdm.TDouble, xdm.TFloat:
		f := a.AsFloat()
		if f == float64(int64(f)) {
			return int64(f), nil
		}
	}
	return 0, xdm.ErrType("%s must be an integer, got %s", what, a.T)
}

// typeCheckFn wraps a compiled expression with a lazy sequence-type check
// (item types checked as items stream by, cardinality at the boundaries).
func typeCheckFn(fn seqFn, t xtypes.SequenceType, what string) seqFn {
	return func(fr *Frame) Iter {
		src := fn(fr)
		count := 0
		done := false
		return iterFunc(func() (xdm.Item, bool, error) {
			if done {
				return nil, false, nil
			}
			it, ok, err := src.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				done = true
				if count == 0 && (t.Occ == xtypes.OccOne || t.Occ == xtypes.OccPlus) {
					return nil, false, xdm.ErrType("%s: empty sequence where %s required", what, t)
				}
				return nil, false, nil
			}
			count++
			if t.Occ == xtypes.OccEmpty ||
				(count > 1 && (t.Occ == xtypes.OccOne || t.Occ == xtypes.OccOpt)) {
				return nil, false, xdm.ErrType("%s: more items than %s allows", what, t)
			}
			if !t.Item.MatchesItem(it) {
				return nil, false, xdm.ErrType("%s: item does not match %s", what, t)
			}
			return it, true, nil
		})
	}
}

func (c *compiler) compileCompare(n *expr.Compare) (seqFn, error) {
	lf, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	rf, err := c.compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	if n.Kind == expr.CompValue {
		return func(fr *Frame) Iter {
			a, okA, err := atomizeSingle(lf(fr))
			if err != nil {
				return errIter(err)
			}
			if !okA {
				return emptyIter
			}
			b, okB, err := atomizeSingle(rf(fr))
			if err != nil {
				return errIter(err)
			}
			if !okB {
				return emptyIter
			}
			r, err := xdm.ValueCompare(op, a, b)
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewBoolean(r))
		}, nil
	}
	// General comparison: implicit existential quantification over both
	// sides. The right side is materialized once (memoized); the left side
	// streams, so a match can short-circuit without draining the left input.
	return func(fr *Frame) Iter {
		li := lf(fr)
		rseq := NewLazySeq(rf(fr))
		for {
			l, ok, err := li.Next()
			if err != nil {
				return errIter(err)
			}
			if !ok {
				return singleIter(xdm.False)
			}
			la := xdm.Atomize(l)
			ri := rseq.Iterator()
			for {
				r, rok, err := ri.Next()
				if err != nil {
					return errIter(err)
				}
				if !rok {
					break
				}
				match, err := xdm.GeneralCompareItems(op, la, xdm.Atomize(r))
				if err != nil {
					return errIter(err)
				}
				if match {
					return singleIter(xdm.True)
				}
			}
		}
	}, nil
}

func (c *compiler) compileNodeCompare(n *expr.NodeCompare) (seqFn, error) {
	lf, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	rf, err := c.compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	return func(fr *Frame) Iter {
		ln, okL, err := singleNode(lf(fr))
		if err != nil {
			return errIter(err)
		}
		rn, okR, err := singleNode(rf(fr))
		if err != nil {
			return errIter(err)
		}
		if !okL || !okR {
			return emptyIter
		}
		var res bool
		switch op {
		case expr.NodeIs:
			res = ln.SameNode(rn)
		case expr.NodePrecedes:
			res = xdm.CompareOrder(ln, rn) < 0
		default:
			res = xdm.CompareOrder(ln, rn) > 0
		}
		return singleIter(xdm.NewBoolean(res))
	}, nil
}

func singleNode(it Iter) (xdm.Node, bool, error) {
	first, ok, err := it.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	n, isNode := first.(xdm.Node)
	if !isNode {
		return nil, false, xdm.ErrType("node comparison requires nodes")
	}
	if _, extra, err := it.Next(); err != nil {
		return nil, false, err
	} else if extra {
		return nil, false, xdm.ErrType("node comparison requires single nodes")
	}
	return n, true, nil
}

func (c *compiler) compileCast(n *expr.Cast) (seqFn, error) {
	xf, err := c.compile(n.X)
	if err != nil {
		return nil, err
	}
	target, optional, castable := n.T, n.Optional, n.Castable
	return func(fr *Frame) Iter {
		a, ok, err := atomizeSingle(xf(fr))
		if err != nil {
			if castable {
				return singleIter(xdm.False)
			}
			return errIter(err)
		}
		if !ok {
			if castable {
				return singleIter(xdm.NewBoolean(optional))
			}
			if optional {
				return emptyIter
			}
			return errIter(xdm.ErrType("cast of an empty sequence to %s", target))
		}
		if castable {
			return singleIter(xdm.NewBoolean(xdm.Castable(a, target)))
		}
		r, err := xdm.Cast(a, target)
		if err != nil {
			return errIter(err)
		}
		return singleIter(r)
	}, nil
}

func (c *compiler) compileTypeswitch(n *expr.Typeswitch) (seqFn, error) {
	inFn, err := c.compile(n.Input)
	if err != nil {
		return nil, err
	}
	type tsCase struct {
		t     xtypes.SequenceType
		id    int
		bound bool
		body  seqFn
	}
	var cases []tsCase
	for _, cs := range n.Cases {
		c.pushScope()
		tc := tsCase{t: cs.Type}
		if !cs.Var.IsZero() {
			tc.id = c.declare(cs.Var)
			tc.bound = true
		}
		body, err := c.compile(cs.Body)
		c.popScope()
		if err != nil {
			return nil, err
		}
		tc.body = body
		cases = append(cases, tc)
	}
	c.pushScope()
	defID := -1
	if !n.DefaultVar.IsZero() {
		defID = c.declare(n.DefaultVar)
	}
	defFn, err := c.compile(n.Default)
	c.popScope()
	if err != nil {
		return nil, err
	}
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		seq, err := dr(fr, inFn(fr))
		if err != nil {
			return errIter(err)
		}
		for _, cs := range cases {
			if cs.t.Matches(seq) {
				f2 := fr
				if cs.bound {
					f2 = fr.bind(cs.id, MaterializedSeq(seq))
				}
				return cs.body(f2)
			}
		}
		f2 := fr
		if defID >= 0 {
			f2 = fr.bind(defID, MaterializedSeq(seq))
		}
		return defFn(f2)
	}, nil
}

func (c *compiler) compileSetOp(n *expr.SetOp) (seqFn, error) {
	lf, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	rf, err := c.compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	dr := c.drainFor()
	fn := func(fr *Frame) Iter {
		lseq, err := dr(fr, lf(fr))
		if err != nil {
			return errIter(err)
		}
		rseq, err := dr(fr, rf(fr))
		if err != nil {
			return errIter(err)
		}
		if lseq, err = sortNodesDedup(lseq); err != nil {
			return errIter(err)
		}
		if rseq, err = sortNodesDedup(rseq); err != nil {
			return errIter(err)
		}
		var out xdm.Sequence
		switch op {
		case expr.SetUnion:
			out = mergeByDocOrder(lseq, rseq, true, true, true)
		case expr.SetIntersect:
			out = mergeByDocOrder(lseq, rseq, false, false, true)
		default: // except
			out = mergeByDocOrder(lseq, rseq, true, false, false)
		}
		return newSliceIter(out)
	}
	return c.tag("set-op", n, fn), nil
}

// funcCreatesNodes resolves the paper's "can this call create new nodes?"
// question: built-ins answer from the property table, user functions from
// their bodies (recursion-aware: a cycle back into a function under
// analysis contributes nothing by itself).
func (c *compiler) funcCreatesNodes(call *expr.Call) bool {
	return c.funcCreatesNodesRec(call, map[string]bool{})
}

func (c *compiler) funcCreatesNodesRec(call *expr.Call, visiting map[string]bool) bool {
	if uf, ok := c.funcs[funcKey(call.Name, len(call.Args))]; ok {
		key := funcKey(call.Name, len(call.Args))
		if visiting[key] {
			return false
		}
		visiting[key] = true
		return expr.CreatesNodes(uf.decl.Body, func(c2 *expr.Call) bool {
			return c.funcCreatesNodesRec(c2, visiting)
		})
	}
	if f, _ := functions.Lookup(call.Name.Local, len(call.Args)); f != nil {
		return f.Props.CreatesNodes
	}
	return true
}
