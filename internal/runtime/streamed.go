package runtime

import (
	"xqgo/internal/store"
	"xqgo/internal/tokens"
	"xqgo/internal/xdm"
)

// StreamedNode is a constructed element whose tree is generated as tokens
// on demand instead of being materialized with node identifiers — the
// "decouple node construction from node id generation" optimization. It
// implements xdm.Node; any accessor call transparently materializes the
// tree (ids are then generated after all), so correctness never depends on
// how the optimizer marked the constructor.
type StreamedNode struct {
	cc  *compiledConstructor
	fr  *Frame
	mat xdm.Node // materialized fallback, built on first accessor use
}

var _ xdm.Node = (*StreamedNode)(nil)

// EmitTokens generates the constructed tree as a token stream without
// assigning node identifiers. emit is called once per token.
func (s *StreamedNode) EmitTokens(emit func(tokens.Token) error) error {
	return emitConstructor(s.cc, s.fr, emit)
}

func (s *StreamedNode) materialize() (xdm.Node, error) {
	if s.mat == nil {
		n, err := evalConstructor(s.cc, s.fr)
		if err != nil {
			return nil, err
		}
		s.mat = n
	}
	return s.mat, nil
}

func (s *StreamedNode) must() xdm.Node {
	n, err := s.materialize()
	if err != nil {
		// Accessors have no error channel; surface construction errors as
		// an empty inert node is unacceptable, so panic with the XQuery
		// error (recovered by the engine boundary).
		panic(err)
	}
	return n
}

// IsNode marks the item as a node.
func (s *StreamedNode) IsNode() bool { return true }

// Kind returns element (only elements are streamed).
func (s *StreamedNode) Kind() xdm.NodeKind { return xdm.ElementNode }

// NodeName resolves the constructor's name.
func (s *StreamedNode) NodeName() xdm.QName { return s.must().NodeName() }

// StringValue materializes and delegates.
func (s *StreamedNode) StringValue() string { return s.must().StringValue() }

// TypedValue materializes and delegates.
func (s *StreamedNode) TypedValue() xdm.Atomic { return s.must().TypedValue() }

// Parent of a constructed root is nil.
func (s *StreamedNode) Parent() xdm.Node { return nil }

// ChildrenOf materializes and delegates.
func (s *StreamedNode) ChildrenOf() []xdm.Node { return s.must().ChildrenOf() }

// AttributesOf materializes and delegates.
func (s *StreamedNode) AttributesOf() []xdm.Node { return s.must().AttributesOf() }

// BaseURI of a constructed node is empty.
func (s *StreamedNode) BaseURI() string { return "" }

// SameNode compares by materialized identity.
func (s *StreamedNode) SameNode(o xdm.Node) bool {
	if so, ok := o.(*StreamedNode); ok {
		return s == so
	}
	return s.must().SameNode(o)
}

// OrderKey materializes and delegates.
func (s *StreamedNode) OrderKey() (uint64, int64) { return s.must().OrderKey() }

// Root returns the node itself.
func (s *StreamedNode) Root() xdm.Node { return s }

// emitConstructor streams a compiled constructor as tokens.
func emitConstructor(cc *compiledConstructor, fr *Frame, emit func(tokens.Token) error) error {
	switch cc.kind {
	case xdm.ElementNode:
		name, err := constructorName(cc, fr)
		if err != nil {
			return err
		}
		if err := emit(tokens.Token{Kind: tokens.KindStartElement, Name: name}); err != nil {
			return err
		}
		for _, ns := range cc.ns {
			if err := emit(tokens.Token{Kind: tokens.KindNamespace,
				Name: xdm.LocalName(ns.Prefix), Value: ns.URI}); err != nil {
				return err
			}
		}
		for i := range cc.attrs {
			v, err := evalAttrValue(&cc.attrs[i], fr)
			if err != nil {
				return err
			}
			if err := emit(tokens.Token{Kind: tokens.KindAttribute,
				Name: cc.attrs[i].name, Value: v}); err != nil {
				return err
			}
		}
		for _, piece := range cc.content {
			if piece.isLiteral {
				if err := emit(tokens.Token{Kind: tokens.KindText, Value: piece.literalText}); err != nil {
					return err
				}
				continue
			}
			if err := emitContentSeq(piece.fn(fr), emit); err != nil {
				return err
			}
		}
		return emit(tokens.Token{Kind: tokens.KindEndElement, Name: name})

	case xdm.TextNode:
		s, err := contentString(cc.valueFn, fr)
		if err != nil {
			return err
		}
		return emit(tokens.Token{Kind: tokens.KindText, Value: s})

	case xdm.CommentNode:
		s, err := contentString(cc.valueFn, fr)
		if err != nil {
			return err
		}
		return emit(tokens.Token{Kind: tokens.KindComment, Value: s})

	case xdm.PINode:
		s, err := contentString(cc.valueFn, fr)
		if err != nil {
			return err
		}
		return emit(tokens.Token{Kind: tokens.KindPI, Name: xdm.LocalName(cc.target), Value: s})
	}
	// Attribute/document constructors are not streamed; materialize.
	n, err := evalConstructor(cc, fr)
	if err != nil {
		return err
	}
	return emitStoredNode(n, emit)
}

// emitContentSeq streams an evaluated content sequence as tokens, applying
// the atomic-joining rule and copying nodes tokenwise.
func emitContentSeq(it Iter, emit func(tokens.Token) error) error {
	prevAtomic := false
	for {
		x, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if n, isNode := x.(xdm.Node); isNode {
			prevAtomic = false
			if sn, isStream := n.(*StreamedNode); isStream {
				if err := sn.EmitTokens(emit); err != nil {
					return err
				}
				continue
			}
			if err := emitStoredNode(n, emit); err != nil {
				return err
			}
			continue
		}
		s := x.(xdm.Atomic).Lexical()
		if prevAtomic {
			s = " " + s
		}
		prevAtomic = true
		if err := emit(tokens.Token{Kind: tokens.KindText, Value: s}); err != nil {
			return err
		}
	}
}

// emitStoredNode copies an existing node into the output token stream.
func emitStoredNode(n xdm.Node, emit func(tokens.Token) error) error {
	if sn, ok := n.(*store.Node); ok {
		sc := tokens.NewDocScanner(sn.D, sn.ID)
		if err := sc.Open(); err != nil {
			return err
		}
		defer sc.Close()
		for {
			t, ok, err := sc.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := emit(t); err != nil {
				return err
			}
		}
	}
	// Generic fallback.
	switch n.Kind() {
	case xdm.DocumentNode:
		for _, c := range n.ChildrenOf() {
			if err := emitStoredNode(c, emit); err != nil {
				return err
			}
		}
		return nil
	case xdm.ElementNode:
		if err := emit(tokens.Token{Kind: tokens.KindStartElement, Name: n.NodeName()}); err != nil {
			return err
		}
		for _, a := range n.AttributesOf() {
			if err := emit(tokens.Token{Kind: tokens.KindAttribute,
				Name: a.NodeName(), Value: a.StringValue()}); err != nil {
				return err
			}
		}
		for _, c := range n.ChildrenOf() {
			if err := emitStoredNode(c, emit); err != nil {
				return err
			}
		}
		return emit(tokens.Token{Kind: tokens.KindEndElement, Name: n.NodeName()})
	case xdm.AttributeNode:
		return emit(tokens.Token{Kind: tokens.KindAttribute, Name: n.NodeName(), Value: n.StringValue()})
	case xdm.TextNode:
		return emit(tokens.Token{Kind: tokens.KindText, Value: n.StringValue()})
	case xdm.CommentNode:
		return emit(tokens.Token{Kind: tokens.KindComment, Value: n.StringValue()})
	case xdm.PINode:
		return emit(tokens.Token{Kind: tokens.KindPI, Name: n.NodeName(), Value: n.StringValue()})
	}
	return nil
}
