package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xqgo/internal/optimizer"
	"xqgo/internal/serializer"
	"xqgo/internal/xdm"
	"xqgo/internal/xqparse"
)

// evalQueryOn is evalQuery against a caller-supplied dynamic context.
func evalQueryOn(t *testing.T, src string, opts Options, d *Dynamic) (string, error) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := Compile(q, opts)
	if err != nil {
		return "", err
	}
	seq, err := p.Eval(d)
	if err != nil {
		return "", err
	}
	return serializer.SequenceToString(seq)
}

// ---- morsel rounds ----

func TestMorselRoundStitchOrder(t *testing.T) {
	d := &Dynamic{Workers: 8, Limiter: &procPool{}}
	const chunks = 32
	results, err := morselRound(d, 4, chunks, func(w *Dynamic, chunk int) (int, error) {
		if chunk%3 == 0 {
			time.Sleep(time.Millisecond) // force out-of-order completion
		}
		return chunk * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*10 {
			t.Fatalf("chunk %d stitched as %d, want %d", i, r, i*10)
		}
	}
}

func TestMorselRoundSequentialFallback(t *testing.T) {
	d := &Dynamic{} // Workers unset: extra = 0, pure sequential
	var order []int
	results, err := morselRound(d, 0, 5, func(w *Dynamic, chunk int) (int, error) {
		if w != d {
			t.Error("sequential round must run on the caller's context, not a fork")
		}
		order = append(order, chunk)
		return chunk, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != i || order[i] != i {
			t.Fatalf("sequential round out of order: results=%v order=%v", results, order)
		}
	}
}

func TestMorselRoundError(t *testing.T) {
	d := &Dynamic{Workers: 4, Limiter: &procPool{}}
	boom := xdm.Errf("FORG0001", "chunk failure")
	_, err := morselRound(d, 3, 16, func(w *Dynamic, chunk int) (int, error) {
		if chunk == 5 {
			return 0, boom
		}
		return chunk, nil
	})
	if err == nil || !strings.Contains(err.Error(), "FORG0001") {
		t.Fatalf("round error = %v, want the chunk-5 failure", err)
	}
}

func TestMorselRoundPanicBecomesError(t *testing.T) {
	d := &Dynamic{Workers: 4, Limiter: &procPool{}}
	_, err := morselRound(d, 3, 8, func(w *Dynamic, chunk int) (int, error) {
		if chunk == 2 {
			panic(xdm.Errf("XPDY0002", "typed panic"))
		}
		return chunk, nil
	})
	if err == nil || !strings.Contains(err.Error(), "XPDY0002") {
		t.Fatalf("panicked chunk surfaced as %v, want XPDY0002", err)
	}
}

// A failing chunk must cancel its sibling workers through the group hook
// within an interrupt stride — they must not run to completion.
func TestMorselRoundCancelsSiblings(t *testing.T) {
	d := &Dynamic{Workers: 4, Limiter: &procPool{}}
	boom := xdm.Errf("FOAR0001", "early failure")
	start := time.Now()
	_, err := morselRound(d, 3, 4, func(w *Dynamic, chunk int) (int, error) {
		if chunk == 0 {
			return 0, boom
		}
		// Spin like a long scan: poll the interrupt hook until canceled.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if err := w.CheckInterrupt(); err != nil {
				return 0, err
			}
		}
		return 0, fmt.Errorf("sibling chunk %d never observed the group error", chunk)
	})
	if err == nil || !strings.Contains(err.Error(), "FOAR0001") {
		t.Fatalf("round error = %v, want the chunk-0 failure", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("siblings ran %v after the group error; cancellation is broken", elapsed)
	}
}

func TestGroupErrFirstWins(t *testing.T) {
	var g groupErr
	if g.load() != nil {
		t.Fatal("fresh group has an error")
	}
	g.set(nil) // no-op
	e1 := xdm.Errf("FORG0001", "first")
	e2 := xdm.Errf("FORG0001", "second")
	g.set(e1)
	g.set(e2)
	if g.load() != e1 {
		t.Fatalf("group error = %v, want the first published error", g.load())
	}
}

// ---- per-worker interrupt counters (satellite: CheckInterrupt contention) ----

// Each forked worker owns a private step counter, so its poll latency is
// exactly one stride regardless of how skewed the parent's counter is or how
// many siblings are hammering theirs.
func TestForkInterruptLatencyBounded(t *testing.T) {
	var armed atomic.Bool
	parent := &Dynamic{Interrupt: func() error {
		if armed.Load() {
			return xdm.Errf("XQGO0001", "deadline")
		}
		return nil
	}}
	// Skew the parent's counter mid-stride; forks must not inherit the phase.
	for i := 0; i < interruptStride/2; i++ {
		if err := parent.CheckInterrupt(); err != nil {
			t.Fatal(err)
		}
	}
	armed.Store(true)

	const workers = 8
	var wg sync.WaitGroup
	calls := make([]int, workers)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			w := parent.fork()
			for {
				calls[k]++
				if err := w.CheckInterrupt(); err != nil {
					return
				}
				if calls[k] > 2*interruptStride {
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k, n := range calls {
		if n != interruptStride {
			t.Errorf("worker %d observed the deadline after %d calls, want exactly one stride (%d)",
				k, n, interruptStride)
		}
	}
}

func TestForkSharesDeadlineHook(t *testing.T) {
	var polls atomic.Int64
	parent := &Dynamic{Interrupt: func() error {
		polls.Add(1)
		return nil
	}}
	w := parent.fork()
	for i := 0; i < interruptStride; i++ {
		if err := w.CheckInterrupt(); err != nil {
			t.Fatal(err)
		}
	}
	if polls.Load() != 1 {
		t.Fatalf("fork polled the shared hook %d times over one stride, want 1", polls.Load())
	}
}

// ---- worker leasing ----

func TestProcPoolLease(t *testing.T) {
	// The limit is read per TryLease call, so pinning GOMAXPROCS here makes
	// the test deterministic on any machine.
	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(4))
	p := &procPool{}
	const limit = 3 // GOMAXPROCS - 1: the caller already owns a CPU
	got := p.TryLease(limit + 5)
	if got != limit {
		t.Fatalf("TryLease(%d) = %d, want the GOMAXPROCS-1 limit %d", limit+5, got, limit)
	}
	if extra := p.TryLease(1); extra != 0 {
		t.Fatalf("exhausted pool granted %d", extra)
	}
	p.Release(got)
	if again := p.TryLease(1); again != 1 {
		t.Fatalf("released pool granted %d, want 1", again)
	}
	p.Release(1)
	if p.TryLease(0) != 0 || p.TryLease(-3) != 0 {
		t.Fatal("non-positive lease request granted workers")
	}

	// On a single-CPU machine the default pool grants nothing: the morsel
	// loops must stay sequential where parallelism cannot pay.
	goruntime.GOMAXPROCS(1)
	if got := p.TryLease(4); got != 0 {
		t.Fatalf("single-CPU pool granted %d, want 0", got)
	}
}

// grantAll is a test limiter that always grants the full request, so tests
// exercise real parallel rounds regardless of the host's CPU count.
type grantAll struct{}

func (grantAll) TryLease(n int) int { return n }
func (grantAll) Release(int)        {}

type recordLimiter struct {
	granted  int
	leases   atomic.Int64
	releases atomic.Int64
}

func (l *recordLimiter) TryLease(n int) int {
	l.leases.Add(int64(n))
	if n > l.granted {
		n = l.granted
	}
	return n
}
func (l *recordLimiter) Release(n int) { l.releases.Add(int64(n)) }

func TestLeaseExtra(t *testing.T) {
	var nilD *Dynamic
	if n, release := nilD.leaseExtra(4); n != 0 {
		t.Fatalf("nil context leased %d", n)
	} else {
		release() // must be callable
	}
	if n, _ := (&Dynamic{Workers: 1}).leaseExtra(4); n != 0 {
		t.Fatalf("single-worker context leased %d", n)
	}

	lim := &recordLimiter{granted: 2}
	d := &Dynamic{Workers: 4, Limiter: lim}
	n, release := d.leaseExtra(10)
	if n != 2 {
		t.Fatalf("leaseExtra = %d, want the limiter's grant of 2", n)
	}
	if lim.leases.Load() != 3 {
		t.Fatalf("asked the limiter for %d, want Workers-1 = 3", lim.leases.Load())
	}
	release()
	if lim.releases.Load() != 2 {
		t.Fatalf("released %d, want exactly the grant of 2", lim.releases.Load())
	}

	// max caps the request below Workers-1.
	lim2 := &recordLimiter{granted: 8}
	d2 := &Dynamic{Workers: 8, Limiter: lim2}
	if n, release := d2.leaseExtra(2); n != 2 {
		t.Fatalf("leaseExtra capped = %d, want 2", n)
	} else {
		release()
	}
}

// ---- profile shards ----

func TestProfileShardFold(t *testing.T) {
	p := &Profile{infos: make([]OpInfo, 3), ops: make([]opCounters, 3)}
	p.ops[1].starts.Add(1)
	p.ops[1].items.Add(10)

	sh := p.shard()
	if sh == nil || len(sh.ops) != 3 {
		t.Fatal("shard must mirror the parent's operator table")
	}
	if sh.ops[1].starts.Load() != 0 {
		t.Fatal("shard must start with zeroed counters")
	}
	sh.ops[1].starts.Add(2)
	sh.ops[1].items.Add(5)
	sh.ops[2].items.Add(7)
	sh.addInterruptPoll()
	sh.addInterruptPoll()

	p.foldShard(sh)
	if got := p.ops[1].starts.Load(); got != 3 {
		t.Errorf("ops[1].starts = %d, want 3", got)
	}
	if got := p.ops[1].items.Load(); got != 15 {
		t.Errorf("ops[1].items = %d, want 15", got)
	}
	if got := p.ops[2].items.Load(); got != 7 {
		t.Errorf("ops[2].items = %d, want 7", got)
	}
	if got := p.Report().Counters.InterruptPolls; got != 2 {
		t.Errorf("engine counters after fold: interrupt polls = %d, want 2", got)
	}

	// Nil-safety both ways.
	var nilP *Profile
	if nilP.shard() != nil {
		t.Error("nil profile must shard to nil")
	}
	nilP.foldShard(sh)
	p.foldShard(nil)
}

// ---- DocRegistry single-flight (satellite: resolver lock across I/O) ----

func TestDocRegistrySingleFlight(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte(`<r><a/><a/></r>`), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewDocRegistry(true)
	const callers = 16
	nodes := make([]xdm.Node, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = reg.Doc(path)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if nodes[i] != nodes[0] {
			t.Fatalf("caller %d got a different document — the load was not single-flight", i)
		}
	}
}

func TestDocRegistryFailedLoadRetries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "late.xml")

	reg := NewDocRegistry(true)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Doc(path); err == nil {
				t.Error("missing document resolved without error")
			}
		}()
	}
	wg.Wait()

	// Failed loads are not cached: once the file exists, Doc succeeds.
	if err := os.WriteFile(path, []byte(`<ok/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Doc(path); err != nil {
		t.Fatalf("retry after failed load: %v", err)
	}
}

func TestDocRegistryDistinctURIsConcurrent(t *testing.T) {
	dir := t.TempDir()
	const docs = 8
	paths := make([]string, docs)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("d%d.xml", i))
		if err := os.WriteFile(paths[i], []byte(fmt.Sprintf(`<d n="%d"/>`, i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewDocRegistry(true)
	var wg sync.WaitGroup
	for i := 0; i < docs; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := reg.Doc(paths[i]); err != nil {
					t.Errorf("doc %d: %v", i, err)
				}
			}(i)
		}
	}
	wg.Wait()
}

// ---- parallel sequence fail-fast (satellite: sibling cancellation) ----

// A branch that fails immediately must cancel a slow sibling through the
// group hook instead of waiting for it to finish. The slow branch here
// would run for minutes sequentially; the whole evaluation must return the
// failing branch's error in seconds.
func TestParallelSeqFailFastCancelsSlowBranch(t *testing.T) {
	q := `(sum(for $i in 1 to 50000000000 return 0 + 0 + 0 + 0 + 0),
	      (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 1 idiv 0))`
	start := time.Now()
	_, err := evalQuery(t, q, Options{Parallel: true})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("failing branch's error did not propagate")
	}
	if !strings.Contains(err.Error(), "FOAR0001") {
		t.Fatalf("error = %v, want the division failure (FOAR0001)", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("evaluation took %v — the failing branch did not cancel its slow sibling", elapsed)
	}
}

// ---- morsel-parallel evaluation correctness on real queries ----

// evalWorkers evaluates a query with morsel workers enabled on the standard
// test document.
func evalWorkers(t *testing.T, src string, workers int, opts Options) (string, error) {
	t.Helper()
	d := testDynamic(t)
	d.Workers = workers
	d.Limiter = grantAll{}
	return evalQueryOn(t, src, opts, d)
}

func TestMorselWorkersAgreeWithSequential(t *testing.T) {
	queries := []string{
		`count(//author)`,
		`string-join(//title/string(), "|")`,
		`sum(for $p in //price return xs:decimal($p))`,
		`string-join(for $b in //book where count($b/author) > 1 return string($b/title), ",")`,
		`count(//book//last)`,
	}
	for _, q := range queries {
		seq, serr := evalQuery(t, q, Options{})
		for _, workers := range []int{2, 8} {
			par, perr := evalWorkers(t, q, workers, Options{})
			if (serr == nil) != (perr == nil) {
				t.Errorf("%s: workers=%d error disagreement: %v vs %v", q, workers, serr, perr)
				continue
			}
			if seq != par {
				t.Errorf("%s: workers=%d result disagreement:\n seq %q\n par %q", q, workers, seq, par)
			}
		}
		// Structural joins with workers.
		par, perr := evalWorkers(t, q, 8, Options{Strategy: optimizer.StrategyBinaryJoin})
		if perr != nil && serr == nil {
			t.Errorf("%s: structjoin workers error: %v", q, perr)
		} else if serr == nil && seq != par {
			t.Errorf("%s: structjoin workers disagreement:\n seq %q\n par %q", q, seq, par)
		}
	}
}

// Unreferenced let bindings must stay lazy under parallel FLWOR: forcing
// them would surface errors a sequential evaluation never hits.
func TestMorselFlworKeepsUnusedLetsLazy(t *testing.T) {
	q := `string-join(for $i in 1 to 200 let $dead := 1 idiv 0 return "x", "")`
	got, err := evalWorkers(t, q, 8, Options{})
	if err != nil {
		t.Fatalf("unused let was forced: %v", err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d items, want 200", len(got))
	}
}

// Errors inside a parallel FLWOR round must surface deterministically: the
// same error code at the same tuple, with all preceding outputs delivered.
func TestMorselFlworDeterministicError(t *testing.T) {
	q := `string-join(for $i in 1 to 500 return string(1 idiv (500 - $i)), "|")`
	_, serr := evalQuery(t, q, Options{})
	_, perr := evalWorkers(t, q, 8, Options{})
	if serr == nil || perr == nil {
		t.Fatalf("both evaluations must fail: seq=%v par=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error disagreement:\n seq %v\n par %v", serr, perr)
	}
}
