// Package runtime evaluates compiled expression trees with the paper's
// extended iterator model: every operator is a pull-based iterator over
// items, evaluation is lazy (compute only what is demanded), and variables
// are lazily memoized sequences — partial results are cached as a
// side-effect of lazy evaluation ("Lazy Memoization").
//
// The package provides two engines over the same compiled form: the
// streaming engine (lazy iterators end to end) and the eager baseline
// (every sub-expression fully materialized), which stands in for the
// tree-walking XSLT-style comparator of the paper's evaluation.
package runtime

import "xqgo/internal/xdm"

// Iter is the item-granularity pull iterator: Next returns the next item of
// the sequence, ok=false at the end. Errors are lazily surfaced — an error
// in a sub-expression that is never pulled is never raised, giving the
// paper's conditional/error semantics for free.
type Iter interface {
	Next() (xdm.Item, bool, error)
}

// iterFunc adapts a closure to Iter.
type iterFunc func() (xdm.Item, bool, error)

func (f iterFunc) Next() (xdm.Item, bool, error) { return f() }

// emptyIter is the empty sequence.
var emptyIter Iter = iterFunc(func() (xdm.Item, bool, error) { return nil, false, nil })

// errIter yields a single error.
func errIter(err error) Iter {
	return iterFunc(func() (xdm.Item, bool, error) { return nil, false, err })
}

// singleIter yields one item.
func singleIter(it xdm.Item) Iter {
	done := false
	return iterFunc(func() (xdm.Item, bool, error) {
		if done {
			return nil, false, nil
		}
		done = true
		return it, true, nil
	})
}

// sliceIter iterates a materialized sequence.
type sliceIter struct {
	seq xdm.Sequence
	pos int
}

func newSliceIter(seq xdm.Sequence) *sliceIter { return &sliceIter{seq: seq} }

func (s *sliceIter) Next() (xdm.Item, bool, error) {
	if s.pos >= len(s.seq) {
		return nil, false, nil
	}
	it := s.seq[s.pos]
	s.pos++
	return it, true, nil
}

// drain materializes an iterator into a sequence.
func drain(it Iter) (xdm.Sequence, error) {
	var out xdm.Sequence
	for {
		x, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, x)
	}
}

// LazySeq is a lazily-materialized, memoizing sequence: the value of a
// variable. Multiple consumers each get an independent cursor; items are
// pulled from the producer at most once and cached — the item-granularity
// equivalent of the paper's buffer-iterator factory.
type LazySeq struct {
	items xdm.Sequence
	src   Iter // nil once exhausted
	err   error
}

// NewLazySeq wraps a producer.
func NewLazySeq(src Iter) *LazySeq { return &LazySeq{src: src} }

// MaterializedSeq wraps an already-computed sequence.
func MaterializedSeq(seq xdm.Sequence) *LazySeq { return &LazySeq{items: seq} }

// at returns the i-th item (0-based), filling the cache as needed.
func (s *LazySeq) at(i int) (xdm.Item, bool, error) {
	for len(s.items) <= i {
		if s.err != nil {
			return nil, false, s.err
		}
		if s.src == nil {
			return nil, false, nil
		}
		it, ok, err := s.src.Next()
		if err != nil {
			s.err = err
			s.src = nil
			return nil, false, err
		}
		if !ok {
			s.src = nil
			return nil, false, nil
		}
		s.items = append(s.items, it)
	}
	return s.items[i], true, nil
}

// Iterator returns a fresh cursor over the sequence.
func (s *LazySeq) Iterator() Iter {
	i := 0
	return iterFunc(func() (xdm.Item, bool, error) {
		it, ok, err := s.at(i)
		if err != nil || !ok {
			return nil, false, err
		}
		i++
		return it, true, nil
	})
}

// All materializes the whole sequence.
func (s *LazySeq) All() (xdm.Sequence, error) {
	for s.src != nil {
		if _, ok, err := s.at(len(s.items)); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.items, nil
}

// Len materializes and returns the length.
func (s *LazySeq) Len() (int, error) {
	all, err := s.All()
	if err != nil {
		return 0, err
	}
	return len(all), nil
}
