// Package runtime evaluates compiled expression trees with the paper's
// extended iterator model: every operator is a pull-based iterator over
// items, evaluation is lazy (compute only what is demanded), and variables
// are lazily memoized sequences — partial results are cached as a
// side-effect of lazy evaluation ("Lazy Memoization").
//
// The package provides two engines over the same compiled form: the
// streaming engine (lazy iterators end to end) and the eager baseline
// (every sub-expression fully materialized), which stands in for the
// tree-walking XSLT-style comparator of the paper's evaluation.
package runtime

import "xqgo/internal/xdm"

// Iter is the item-granularity pull iterator: Next returns the next item of
// the sequence, ok=false at the end. Errors are lazily surfaced — an error
// in a sub-expression that is never pulled is never raised, giving the
// paper's conditional/error semantics for free.
type Iter interface {
	Next() (xdm.Item, bool, error)
}

// iterFunc adapts a closure to Iter.
type iterFunc func() (xdm.Item, bool, error)

func (f iterFunc) Next() (xdm.Item, bool, error) { return f() }

// emptyIter is the empty sequence.
var emptyIter Iter = iterFunc(func() (xdm.Item, bool, error) { return nil, false, nil })

// errIter yields a single error.
func errIter(err error) Iter {
	return iterFunc(func() (xdm.Item, bool, error) { return nil, false, err })
}

// singleIter yields one item.
func singleIter(it xdm.Item) Iter {
	done := false
	return iterFunc(func() (xdm.Item, bool, error) {
		if done {
			return nil, false, nil
		}
		done = true
		return it, true, nil
	})
}

// sliceIter iterates a materialized sequence.
type sliceIter struct {
	seq xdm.Sequence
	pos int
}

func newSliceIter(seq xdm.Sequence) *sliceIter { return &sliceIter{seq: seq} }

func (s *sliceIter) Next() (xdm.Item, bool, error) {
	if s.pos >= len(s.seq) {
		return nil, false, nil
	}
	it := s.seq[s.pos]
	s.pos++
	return it, true, nil
}

// NextBatch copies a chunk of the materialized sequence (BatchIter).
func (s *sliceIter) NextBatch(buf []xdm.Item) (int, error) {
	n := copy(buf, s.seq[s.pos:])
	s.pos += n
	return n, nil
}

// remaining implements sizedIter.
func (s *sliceIter) remaining() (int64, bool) { return int64(len(s.seq) - s.pos), true }

// drain materializes an iterator into a sequence.
func drain(it Iter) (xdm.Sequence, error) {
	var out xdm.Sequence
	for {
		x, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, x)
	}
}

// LazySeq is a lazily-materialized, memoizing sequence: the value of a
// variable. Multiple consumers each get an independent cursor; items are
// pulled from the producer at most once and cached — the item-granularity
// equivalent of the paper's buffer-iterator factory.
type LazySeq struct {
	items xdm.Sequence
	src   Iter // nil once exhausted
	err   error
}

// NewLazySeq wraps a producer.
func NewLazySeq(src Iter) *LazySeq { return &LazySeq{src: src} }

// MaterializedSeq wraps an already-computed sequence.
func MaterializedSeq(seq xdm.Sequence) *LazySeq { return &LazySeq{items: seq} }

// at returns the i-th item (0-based), filling the cache as needed.
func (s *LazySeq) at(i int) (xdm.Item, bool, error) {
	for len(s.items) <= i {
		if s.err != nil {
			return nil, false, s.err
		}
		if s.src == nil {
			return nil, false, nil
		}
		it, ok, err := s.src.Next()
		if err != nil {
			s.err = err
			s.src = nil
			return nil, false, err
		}
		if !ok {
			s.src = nil
			return nil, false, nil
		}
		s.items = append(s.items, it)
	}
	return s.items[i], true, nil
}

// Iterator returns a fresh cursor over the sequence.
func (s *LazySeq) Iterator() Iter { return &lazyCursor{seq: s} }

// lazyCursor is one consumer's position in a LazySeq. Batch pulls copy from
// the cache when possible and otherwise pull a whole batch from the
// producer, extending the cache for the other cursors.
type lazyCursor struct {
	seq *LazySeq
	i   int
}

func (c *lazyCursor) Next() (xdm.Item, bool, error) {
	it, ok, err := c.seq.at(c.i)
	if err != nil || !ok {
		return nil, false, err
	}
	c.i++
	return it, true, nil
}

// remaining implements sizedIter, but only once the underlying sequence is
// fully materialized without error — before that the count is unknown and
// producing the items (and surfacing their errors) is required.
func (c *lazyCursor) remaining() (int64, bool) {
	if c.seq.src == nil && c.seq.err == nil {
		return int64(len(c.seq.items) - c.i), true
	}
	return 0, false
}

// NextBatch implements BatchIter.
func (c *lazyCursor) NextBatch(buf []xdm.Item) (int, error) {
	s := c.seq
	if c.i < len(s.items) {
		n := copy(buf, s.items[c.i:])
		c.i += n
		return n, nil
	}
	if s.err != nil {
		return 0, s.err
	}
	if s.src == nil {
		return 0, nil
	}
	n, err := nextBatch(s.src, buf)
	s.items = append(s.items, buf[:n]...)
	c.i += n
	if err != nil {
		s.err = err
		s.src = nil
		return n, err
	}
	if n == 0 {
		s.src = nil
	}
	return n, nil
}

// All materializes the whole sequence (batched pulls from the producer,
// directly into the cache's spare capacity — see drainBatched).
func (s *LazySeq) All() (xdm.Sequence, error) {
	for s.src != nil {
		if len(s.items) == cap(s.items) {
			grown := make(xdm.Sequence, len(s.items), 2*cap(s.items)+batchSize)
			copy(grown, s.items)
			s.items = grown
		}
		win := s.items[len(s.items):cap(s.items)]
		if len(win) > maxBatch {
			win = win[:maxBatch]
		}
		n, err := nextBatch(s.src, win)
		s.items = s.items[:len(s.items)+n]
		if err != nil {
			s.err = err
			s.src = nil
			break
		}
		if n == 0 {
			s.src = nil
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.items, nil
}

// Len materializes and returns the length.
func (s *LazySeq) Len() (int, error) {
	all, err := s.All()
	if err != nil {
		return 0, err
	}
	return len(all), nil
}
