package runtime

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"xqgo/internal/faultinject"
)

// Morsel-driven intra-query parallelism. The three hottest iteration loops
// — pre-order path-step range scans (compile_path.go), structural-join
// postings work (indexpath.go), and FLWOR for/where tuple pipelines
// (compile_flwor.go) — split their input into small contiguous morsels and
// schedule them over a worker pool. Each worker owns a forked slice of the
// dynamic context (Dynamic.fork: private step counter, buffer pool, and
// profile shard), and results stitch back in morsel-index order, which is
// input order, which is document order for the loops that promise it.
//
// Activation is demand-driven and opt-in: Dynamic.Workers must be set above
// one, and a loop only upgrades on NextBatch (drain demand) — Next keeps
// its exact lazy, item-at-a-time behavior, and executions over a still-
// parsing streamed input never upgrade. Extra workers beyond the pulling
// goroutine (the guaranteed minimum of one) are leased per round from a
// WorkerLimiter, so an abandoned iterator can never hold pool slots.

// WorkerLimiter arbitrates extra morsel workers against a shared slot pool.
// TryLease grants between 0 and n extra workers without blocking; Release
// returns exactly what a TryLease granted. Implementations must be safe for
// concurrent use. The service layer implements this on its admission
// executor (a heavy query eats idle request slots but never starves the
// queue); standalone executions default to a process-wide GOMAXPROCS pool.
type WorkerLimiter interface {
	TryLease(n int) int
	Release(n int)
}

// procPool is the default process-wide limiter: at most GOMAXPROCS-1 extra
// workers outstanding across every execution in the process — the pulling
// goroutine already occupies a CPU, so on a single-core machine nothing is
// ever granted and every loop stays sequential (no goroutine overhead where
// parallelism cannot pay). The limit is read per call, so runtime GOMAXPROCS
// changes apply immediately.
type procPool struct{ used atomic.Int64 }

var processPool procPool

// TryLease implements WorkerLimiter.
func (p *procPool) TryLease(n int) int {
	if n <= 0 {
		return 0
	}
	limit := int64(goruntime.GOMAXPROCS(0)) - 1
	for {
		cur := p.used.Load()
		free := limit - cur
		if free <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > free {
			grant = free
		}
		if p.used.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

// Release implements WorkerLimiter.
func (p *procPool) Release(n int) {
	if n > 0 {
		p.used.Add(int64(-n))
	}
}

// leaseExtra grabs up to max extra workers for one morsel round; the
// calling goroutine is always the guaranteed minimum of one, so a grant of
// zero simply means "run this round sequentially". The release function
// must be called when the round completes — leases are scoped to a single
// round precisely so that an iterator the consumer abandons mid-stream can
// never leak pool slots.
func (d *Dynamic) leaseExtra(max int) (int, func()) {
	if d == nil || d.Workers <= 1 || max <= 0 {
		return 0, func() {}
	}
	want := d.Workers - 1
	if want > max {
		want = max
	}
	lim := d.Limiter
	if lim == nil {
		lim = &processPool
	}
	k := lim.TryLease(want)
	if k <= 0 {
		return 0, func() {}
	}
	return k, func() { lim.Release(k) }
}

// groupErr is the shared first-error slot of one parallel group. Workers
// publish their first failure and every sibling observes it through its
// forked interrupt hook, so a failed morsel (or parallel-sequence branch)
// cancels the rest of the group within one interrupt stride instead of
// letting them run to completion.
type groupErr struct {
	p atomic.Pointer[groupErrBox]
}

type groupErrBox struct{ err error }

// set publishes err as the group error if none is set yet.
func (g *groupErr) set(err error) {
	if err != nil {
		g.p.CompareAndSwap(nil, &groupErrBox{err: err})
	}
}

// load returns the group error, or nil.
func (g *groupErr) load() error {
	if b := g.p.Load(); b != nil {
		return b.err
	}
	return nil
}

// forkFor creates a per-worker context whose interrupt hook also observes
// the group's first error. The hook is installed even when the parent has
// none, so sibling cancellation is bounded by the interrupt stride
// regardless of deadlines.
func (d *Dynamic) forkFor(g *groupErr) *Dynamic {
	w := d.fork()
	parent := d.Interrupt
	w.Interrupt = func() error {
		if err := g.load(); err != nil {
			return err
		}
		if parent != nil {
			return parent()
		}
		return nil
	}
	return w
}

// Morsel sizing. Chunks are large enough to amortize scheduling and small
// enough that dynamic claiming balances skew; rounds are bounded so a
// parallel upgrade materializes a bounded slice ahead of the consumer.
const (
	// descMorselIDs is the pre-order id span of one path-scan morsel.
	descMorselIDs = 8192
	// descRoundChunks bounds a scan round to this many chunks per worker.
	descRoundChunks = 4
	// joinMorselPostings is the descendant-postings span of one join morsel.
	joinMorselPostings = 8192
	// feedMorselPostings is the postings span of one feed morsel.
	feedMorselPostings = 4096
	// feedRoundChunks bounds a feed round to this many chunks per worker.
	feedRoundChunks = 4
	// flworMorselTuples is the tuple span of one FLWOR morsel.
	flworMorselTuples = 64
	// flworRoundChunks bounds a FLWOR round to this many chunks per worker.
	flworRoundChunks = 2
	// flworTupleEstBytes is the budget estimate per gathered FLWOR tuple
	// frame (Frame header plus its binding's materialized-value headers).
	flworTupleEstBytes = 128
)

// morselRound evaluates chunks [0, chunks) of one parallel round: the
// caller plus extra leased workers claim chunk indexes from a shared
// cursor, each running on its own forked context, and results stitch back
// by chunk index — index-tagged stitching that restores input order (and
// hence document order) with no sorting. The first failing chunk by index
// decides the returned error; its siblings abort early through the group
// hook, and a panic in a chunk surfaces like an error (recoverXQ).
func morselRound[T any](d *Dynamic, extra, chunks int, fn func(w *Dynamic, chunk int) (T, error)) ([]T, error) {
	results := make([]T, chunks)
	if extra <= 0 {
		for i := 0; i < chunks; i++ {
			r, err := fn(d, i)
			if err != nil {
				return results, err
			}
			results[i] = r
		}
		return results, nil
	}
	if extra > chunks-1 {
		extra = chunks - 1
	}
	errs := make([]error, chunks)
	var g groupErr
	var next atomic.Int64
	work := func(w *Dynamic) {
		for g.load() == nil {
			i := int(next.Add(1)) - 1
			if i >= chunks {
				return
			}
			func() {
				defer func() { g.set(errs[i]) }()
				defer recoverXQ(&errs[i])
				faultinject.FirePanic(faultinject.MorselPanic)
				results[i], errs[i] = fn(w, i)
			}()
		}
	}
	var wg sync.WaitGroup
	for k := 0; k < extra; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := d.forkFor(&g)
			work(w)
			d.Prof.foldShard(w.Prof)
		}()
	}
	self := d.forkFor(&g)
	work(self)
	d.Prof.foldShard(self.Prof)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
