package runtime

import (
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// Grouping ("group by", the extension the paper lists under missing
// functionality) and try/catch evaluation.

// compileTryCatch evaluates the try clause with full materialization — a
// caught error must not escape through a lazily-consumed result — and
// switches to the catch clause on any dynamic error.
func (c *compiler) compileTryCatch(n *expr.TryCatch) (seqFn, error) {
	tryFn, err := c.compile(n.Try)
	if err != nil {
		return nil, err
	}
	catchFn, err := c.compile(n.Catch)
	if err != nil {
		return nil, err
	}
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		seq, err := func() (out xdm.Sequence, err error) {
			defer recoverXQ(&err) // StreamedNode materialization panics too
			return dr(fr, tryFn(fr))
		}()
		if err != nil {
			return catchFn(fr)
		}
		return newSliceIter(seq)
	}, nil
}

// groupKey canonicalizes a grouping key value: values that compare eq group
// together (numeric promotion included); the empty sequence forms its own
// group.
func groupKey(a xdm.Atomic, present bool) string {
	if !present {
		return "\x00empty"
	}
	switch {
	case a.T.IsNumeric():
		f := a.AsFloat()
		return "n\x00" + lexicalFloat(f)
	case a.T == xdm.TString || a.T == xdm.TUntyped || a.T == xdm.TAnyURI:
		return "s\x00" + a.S
	case a.T == xdm.TBoolean:
		if a.B {
			return "b\x001"
		}
		return "b\x000"
	default:
		return a.T.String() + "\x00" + a.Lexical()
	}
}

func lexicalFloat(f float64) string {
	// NaN keys group together; +0/-0 group together via formatting.
	s := xdm.NewDouble(f).Lexical()
	return strings.TrimPrefix(s, "+")
}

// groupSpec is a compiled group-by key.
type groupSpec struct {
	varID int
	key   seqFn
}

// applyGrouping materializes the incoming tuples, partitions them by the
// key values, and emits one tuple per group with (a) the group variables
// bound to their key values and (b) every clause-bound variable rebound to
// the concatenation of its values across the group's members, in order.
func applyGrouping(tuples tupleIter, base *Frame, specs []groupSpec, rebindIDs []int) tupleIter {
	type group struct {
		keys    []xdm.Sequence // one singleton-or-empty per spec
		members []*Frame
	}
	var groups []*group
	index := map[string]*group{}
	var gerr error

	for {
		t, ok, err := tuples()
		if err != nil {
			gerr = err
			break
		}
		if !ok {
			break
		}
		var keyParts []string
		keys := make([]xdm.Sequence, len(specs))
		for i, sp := range specs {
			a, present, err := atomizeSingle(sp.key(t))
			if err != nil {
				gerr = err
				break
			}
			if present {
				if a.T == xdm.TUntyped {
					a = xdm.NewString(a.S)
				}
				keys[i] = xdm.Sequence{a}
			}
			keyParts = append(keyParts, groupKey(a, present))
		}
		if gerr != nil {
			break
		}
		full := strings.Join(keyParts, "\x01")
		g, seen := index[full]
		if !seen {
			g = &group{keys: keys}
			index[full] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, t)
	}

	pos := 0
	return func() (*Frame, bool, error) {
		if gerr != nil {
			err := gerr
			gerr = nil
			return nil, false, err
		}
		if pos >= len(groups) {
			return nil, false, nil
		}
		g := groups[pos]
		pos++
		fr := base
		// Rebind clause variables to concatenations across the group.
		for _, id := range rebindIDs {
			var all xdm.Sequence
			for _, m := range g.members {
				vals, err := m.lookup(id).All()
				if err != nil {
					return nil, false, err
				}
				all = append(all, vals...)
			}
			fr = fr.bind(id, MaterializedSeq(all))
		}
		for i, sp := range specs {
			fr = fr.bind(sp.varID, MaterializedSeq(g.keys[i]))
		}
		return fr, true, nil
	}
}
