package runtime

import (
	"sync"

	"xqgo/internal/expr"
	"xqgo/internal/optimizer"
	"xqgo/internal/store"
	"xqgo/internal/structjoin"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Index-accelerated path evaluation: descendant-axis path chains over
// plain name tests (//a//b, /doc//a/b …) can be evaluated over a
// per-document name index instead of navigation — the "navigation- vs
// index-based processing" trade-off the paper surveys — either with
// stack-tree binary structural joins (one join per edge, materializing
// intermediate lists) or with the holistic PathStack twig join (one pass
// over all posting lists, no intermediates). Which of the three runs is
// decided per operator and per document by the cost model (strategy.go),
// unless forced by Options.Strategy or a plan hint. Indexes are built
// lazily per document and cached on the dynamic context.

// indexCache caches structjoin indexes per store document.
type indexCache struct {
	mu   sync.Mutex
	idxs map[*store.Document]*structjoin.Index
}

// seed installs an externally built (shared) index for a document.
func (c *indexCache) seed(d *store.Document, idx *structjoin.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	c.idxs[d] = idx
}

// indexFor returns the index for a document, building it on first use.
// built reports whether this call performed the build (vs a cache hit).
func (c *indexCache) indexFor(d *store.Document) (idx *structjoin.Index, built bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	if idx, ok := c.idxs[d]; ok {
		return idx, false
	}
	idx = structjoin.BuildIndex(d)
	c.idxs[d] = idx
	return idx, true
}

// ready reports whether an index for the document is already cached,
// without building one — the cost model charges the build to strategies
// that would have to perform it.
func (c *indexCache) ready(d *store.Document) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idxs[d]
	return ok
}

// joinStep is one step of an extracted join chain.
type joinStep struct {
	name      xdm.QName
	childOnly bool // parent/child edge rather than ancestor/descendant
}

// extractJoinChain recognizes Path trees of the form
//
//	Root [/descendant-or-self::node()/child::N | /child::N]+
//
// with simple element name tests and no predicates, returning the chain in
// outermost-first order. ok is false when the shape doesn't match.
func extractJoinChain(e expr.Expr) (steps []joinStep, ok bool) {
	p, isPath := e.(*expr.Path)
	if !isPath {
		return nil, false
	}
	// Recurse into the left spine first.
	switch l := p.L.(type) {
	case *expr.Root:
		// chain starts here
	case *expr.Path:
		inner, innerOK := extractJoinChain(l)
		if !innerOK {
			return nil, false
		}
		steps = inner
	default:
		return nil, false
	}

	// The RHS must be either child::name, or the dos step (in which case
	// the *next* path level supplies the name; handled by the caller shape:
	// Root/dos::node() appears as Path{L: Root, R: dosStep}).
	switch r := p.R.(type) {
	case *expr.Step:
		switch {
		case r.Axis == expr.AxisChild && isPlainNameTest(r.Test):
			// A child step: parent/child edge — but only meaningful when a
			// previous named step exists; a leading /name (from the
			// document root) is also fine (document node is the parent).
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: true})
			return steps, len(steps) > 0
		case (r.Axis == expr.AxisDescendantOrSelf && r.Test.Kind == xtypes.TestAnyKind):
			// the "//" marker: mark by appending a sentinel the caller's
			// next child step will consume.
			steps = append(steps, joinStep{childOnly: false})
			return steps, true
		case r.Axis == expr.AxisDescendant && isPlainNameTest(r.Test):
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: false})
			return steps, true
		}
	}
	return nil, false
}

func isPlainNameTest(t xtypes.NodeTest) bool {
	return t.Kind == xtypes.TestName && !t.AnyName && !t.WildLocal && !t.WildSpace
}

// normalizeChain merges "//" sentinels into the following named step.
// Returns ok=false when the chain is degenerate (sentinel at the end, or
// no named steps).
func normalizeChain(raw []joinStep) ([]joinStep, bool) {
	var out []joinStep
	pendingDesc := false
	for _, s := range raw {
		if s.name.IsZero() {
			pendingDesc = true
			continue
		}
		step := s
		if pendingDesc {
			step.childOnly = false
			pendingDesc = false
		}
		out = append(out, step)
	}
	if pendingDesc || len(out) == 0 {
		return nil, false
	}
	return out, true
}

// joinPlan is the index-join compilation of one join-eligible path: the
// extracted chain plus the machinery to run it as either a binary
// stack-tree pipeline or one holistic twig join. Its pointer identity keys
// the per-execution strategy-decision cache.
type joinPlan struct {
	chain []joinStep
}

// extractJoinPlan recognizes join-shaped paths. Returns nil when the
// pattern does not match (non-rooted, predicates, no descendant edge).
func extractJoinPlan(n *expr.Path) *joinPlan {
	raw, ok := extractJoinChain(n)
	if !ok {
		return nil
	}
	chain, ok := normalizeChain(raw)
	if !ok || len(chain) < 1 {
		return nil
	}
	// Only worthwhile when at least one edge is a descendant join.
	hasDesc := false
	for _, s := range chain[1:] {
		if !s.childOnly {
			hasDesc = true
		}
	}
	if len(chain) == 1 || !hasDesc {
		return nil
	}
	return &joinPlan{chain: chain}
}

// run executes the chain over the context node's document with the given
// concrete strategy (binary or twig), records the output cardinality in
// the plan's feedback cache, and feeds the result.
func (jp *joinPlan) run(fr *Frame, sn *store.Node, strat optimizer.Strategy, opID int, fb *feedback) Iter {
	idx, built := fr.dyn.base().indexes.indexFor(sn.D)
	if built {
		fr.dyn.Prof.addIndexBuild()
	} else {
		fr.dyn.Prof.addIndexHit()
	}

	var cur structjoin.List
	var err error
	if strat == optimizer.StrategyTwigJoin {
		fr.dyn.Prof.addTwigJoin()
		cur, err = jp.runTwig(fr.dyn, idx)
	} else {
		cur, err = jp.runBinary(fr.dyn, idx)
	}
	if err != nil {
		return errIter(err)
	}
	fb.record(opID, int64(len(cur)))
	return &postingsIter{d: sn.D, list: cur, dyn: fr.dyn}
}

// seed returns the postings of the first chain name; its edge from the
// root is checked only when childOnly (level 1 under the document node).
func (jp *joinPlan) seed(idx *structjoin.Index) structjoin.List {
	cur := idx.Elements(jp.chain[0].name)
	if jp.chain[0].childOnly {
		var filtered structjoin.List
		for _, p := range cur {
			if p.Region.Level == 1 {
				filtered = append(filtered, p)
			}
		}
		cur = filtered
	}
	return cur
}

// runBinary evaluates the chain as a pipeline of stack-tree binary joins,
// one per edge, each morsel-parallel over the descendant list.
func (jp *joinPlan) runBinary(dyn *Dynamic, idx *structjoin.Index) (structjoin.List, error) {
	cur := jp.seed(idx)
	for _, s := range jp.chain[1:] {
		dyn.Prof.addStructJoin()
		var err error
		cur, err = joinDescMorsel(dyn, cur, idx.Elements(s.name), s.childOnly)
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			break
		}
	}
	return cur, nil
}

// runTwig evaluates the whole chain with one holistic PathStack join: no
// intermediate pair lists, morsel-parallel over the leaf posting list with
// UpperBoundStart-pruned upper lists per chunk.
func (jp *joinPlan) runTwig(dyn *Dynamic, idx *structjoin.Index) (structjoin.List, error) {
	k := len(jp.chain)
	lists := make([]structjoin.List, k)
	childEdge := make([]bool, k)
	lists[0] = jp.seed(idx)
	for i := 1; i < k; i++ {
		lists[i] = idx.Elements(jp.chain[i].name)
		childEdge[i] = jp.chain[i].childOnly
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil, nil
		}
	}
	return twigMatchMorsel(dyn, lists, childEdge)
}

// joinDescMorsel runs one structural-join step, splitting a large
// descendant posting list into morsels joined by the worker pool. Each
// chunk joins against the prefix of the ancestor list that can pair with it
// (ancestors are Start-sorted; one starting after the chunk's last
// descendant cannot contain anything in the chunk — UpperBoundStart), and
// because the chunks partition a Start-sorted descendant list, the
// per-chunk DistinctDescendants outputs are disjoint, each internally
// sorted, and ordered across chunks: concatenating them by chunk index
// reproduces the global result in document order.
func joinDescMorsel(d *Dynamic, anc, desc structjoin.List, parentOnly bool) (structjoin.List, error) {
	chunks := (len(desc) + joinMorselPostings - 1) / joinMorselPostings
	if d == nil || d.Workers <= 1 || chunks < 2 {
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(anc, desc, parentOnly)), nil
	}
	extra, release := d.leaseExtra(chunks - 1)
	if extra == 0 {
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(anc, desc, parentOnly)), nil
	}
	defer release()
	parts, err := morselRound(d, extra, chunks, func(w *Dynamic, i int) (structjoin.List, error) {
		lo := i * joinMorselPostings
		hi := lo + joinMorselPostings
		if hi > len(desc) {
			hi = len(desc)
		}
		dchunk := desc[lo:hi]
		if err := w.CheckInterruptN(len(dchunk)); err != nil {
			return nil, err
		}
		achunk := anc[:structjoin.UpperBoundStart(anc, dchunk[len(dchunk)-1].Region.Start)]
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(achunk, dchunk, parentOnly)), nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(structjoin.List, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// twigMatchMorsel runs the holistic path join, splitting a large leaf
// posting list into morsels matched by the worker pool. Every non-leaf
// list is pruned per chunk to the prefix that can still contain the
// chunk's leaves (ancestors start before their descendants —
// UpperBoundStart, the same pruning the binary join uses), and because
// the chunks partition a Start-sorted leaf list, per-chunk outputs are
// disjoint, internally sorted, and ordered across chunks: concatenation
// by chunk index reproduces the global result in document order.
func twigMatchMorsel(d *Dynamic, lists []structjoin.List, childEdge []bool) (structjoin.List, error) {
	leaf := lists[len(lists)-1]
	chunks := (len(leaf) + joinMorselPostings - 1) / joinMorselPostings
	if d == nil || d.Workers <= 1 || chunks < 2 {
		return structjoin.PathMatchLeaf(lists, childEdge), nil
	}
	extra, release := d.leaseExtra(chunks - 1)
	if extra == 0 {
		return structjoin.PathMatchLeaf(lists, childEdge), nil
	}
	defer release()
	parts, err := morselRound(d, extra, chunks, func(w *Dynamic, i int) (structjoin.List, error) {
		lo := i * joinMorselPostings
		hi := lo + joinMorselPostings
		if hi > len(leaf) {
			hi = len(leaf)
		}
		lchunk := leaf[lo:hi]
		if err := w.CheckInterruptN(len(lchunk)); err != nil {
			return nil, err
		}
		pruned := make([]structjoin.List, len(lists))
		last := lchunk[len(lchunk)-1].Region.Start
		for j := 0; j < len(lists)-1; j++ {
			pruned[j] = lists[j][:structjoin.UpperBoundStart(lists[j], last)]
		}
		pruned[len(lists)-1] = lchunk
		return structjoin.PathMatchLeaf(pruned, childEdge), nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(structjoin.List, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// postingsIter feeds the nodes of a structural-join result list, a whole
// batch per pull. With morsel workers configured, batch pulls upgrade to
// parallel feed rounds: chunk i of a round fills its own sub-slice of one
// preallocated output — index-tagged stitching that needs no reordering.
// Deliberately no remaining() (sizedIter): materializing the feed is the
// work being measured, and an O(1) fn:count over it would misreport the
// join's cost.
type postingsIter struct {
	d    *store.Document
	list structjoin.List
	pos  int
	dyn  *Dynamic // morsel upgrade for batch pulls; nil stays sequential

	out []xdm.Item // pending stitched output of the last parallel round
	oi  int
}

func (p *postingsIter) serve(buf []xdm.Item) int {
	n := copy(buf, p.out[p.oi:])
	p.oi += n
	if p.oi >= len(p.out) {
		p.out, p.oi = nil, 0
	}
	return n
}

func (p *postingsIter) Next() (xdm.Item, bool, error) {
	if p.oi < len(p.out) {
		it := p.out[p.oi]
		p.oi++
		if p.oi >= len(p.out) {
			p.out, p.oi = nil, 0
		}
		return it, true, nil
	}
	if p.pos >= len(p.list) {
		return nil, false, nil
	}
	node := p.d.Node(p.list[p.pos].ID)
	p.pos++
	return node, true, nil
}

// NextBatch implements BatchIter.
func (p *postingsIter) NextBatch(buf []xdm.Item) (int, error) {
	if p.oi < len(p.out) {
		return p.serve(buf), nil
	}
	if ran, err := p.feedRound(); err != nil {
		return 0, err
	} else if ran && p.oi < len(p.out) {
		return p.serve(buf), nil
	}
	n := 0
	for n < len(buf) && p.pos < len(p.list) {
		buf[n] = p.d.Node(p.list[p.pos].ID)
		p.pos++
		n++
	}
	return n, nil
}

// feedRound materializes the next slice of the posting list with the worker
// pool, when a pool is configured and enough postings remain to matter.
func (p *postingsIter) feedRound() (bool, error) {
	rem := len(p.list) - p.pos
	chunks := (rem + feedMorselPostings - 1) / feedMorselPostings
	if p.dyn == nil || p.dyn.Workers <= 1 || chunks < 2 {
		return false, nil
	}
	extra, release := p.dyn.leaseExtra(chunks - 1)
	if extra == 0 {
		return false, nil
	}
	defer release()
	if max := (extra + 1) * feedRoundChunks; chunks > max {
		chunks = max
	}
	base := p.pos
	count := chunks * feedMorselPostings
	if count > rem {
		count = rem
	}
	out := make([]xdm.Item, count)
	_, err := morselRound(p.dyn, extra, chunks, func(w *Dynamic, i int) (struct{}, error) {
		lo := i * feedMorselPostings
		hi := lo + feedMorselPostings
		if hi > count {
			hi = count
		}
		for j := lo; j < hi; j++ {
			out[j] = p.d.Node(p.list[base+j].ID)
		}
		return struct{}{}, w.CheckInterruptN(hi - lo)
	})
	p.pos = base + count
	if err != nil {
		return true, err
	}
	p.out, p.oi = out, 0
	return true, nil
}
