package runtime

import (
	"sync"

	"xqgo/internal/expr"
	"xqgo/internal/store"
	"xqgo/internal/structjoin"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Index-accelerated path evaluation: when the engine is compiled with
// UseStructuralJoins, descendant-axis path chains over plain name tests
// (//a//b, /doc//a/b …) are evaluated with stack-tree structural joins over
// a per-document name index instead of navigation — the "navigation- vs
// index-based processing" trade-off the paper surveys. Indexes are built
// lazily per document and cached on the dynamic context.

// indexCache caches structjoin indexes per store document.
type indexCache struct {
	mu   sync.Mutex
	idxs map[*store.Document]*structjoin.Index
}

// seed installs an externally built (shared) index for a document.
func (c *indexCache) seed(d *store.Document, idx *structjoin.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	c.idxs[d] = idx
}

// indexFor returns the index for a document, building it on first use.
// built reports whether this call performed the build (vs a cache hit).
func (c *indexCache) indexFor(d *store.Document) (idx *structjoin.Index, built bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	if idx, ok := c.idxs[d]; ok {
		return idx, false
	}
	idx = structjoin.BuildIndex(d)
	c.idxs[d] = idx
	return idx, true
}

// joinStep is one step of an extracted join chain.
type joinStep struct {
	name      xdm.QName
	childOnly bool // parent/child edge rather than ancestor/descendant
}

// extractJoinChain recognizes Path trees of the form
//
//	Root [/descendant-or-self::node()/child::N | /child::N]+
//
// with simple element name tests and no predicates, returning the chain in
// outermost-first order. ok is false when the shape doesn't match.
func extractJoinChain(e expr.Expr) (steps []joinStep, ok bool) {
	p, isPath := e.(*expr.Path)
	if !isPath {
		return nil, false
	}
	// Recurse into the left spine first.
	switch l := p.L.(type) {
	case *expr.Root:
		// chain starts here
	case *expr.Path:
		inner, innerOK := extractJoinChain(l)
		if !innerOK {
			return nil, false
		}
		steps = inner
	default:
		return nil, false
	}

	// The RHS must be either child::name, or the dos step (in which case
	// the *next* path level supplies the name; handled by the caller shape:
	// Root/dos::node() appears as Path{L: Root, R: dosStep}).
	switch r := p.R.(type) {
	case *expr.Step:
		switch {
		case r.Axis == expr.AxisChild && isPlainNameTest(r.Test):
			// A child step: parent/child edge — but only meaningful when a
			// previous named step exists; a leading /name (from the
			// document root) is also fine (document node is the parent).
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: true})
			return steps, len(steps) > 0
		case (r.Axis == expr.AxisDescendantOrSelf && r.Test.Kind == xtypes.TestAnyKind):
			// the "//" marker: mark by appending a sentinel the caller's
			// next child step will consume.
			steps = append(steps, joinStep{childOnly: false})
			return steps, true
		case r.Axis == expr.AxisDescendant && isPlainNameTest(r.Test):
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: false})
			return steps, true
		}
	}
	return nil, false
}

func isPlainNameTest(t xtypes.NodeTest) bool {
	return t.Kind == xtypes.TestName && !t.AnyName && !t.WildLocal && !t.WildSpace
}

// normalizeChain merges "//" sentinels into the following named step.
// Returns ok=false when the chain is degenerate (sentinel at the end, or
// no named steps).
func normalizeChain(raw []joinStep) ([]joinStep, bool) {
	var out []joinStep
	pendingDesc := false
	for _, s := range raw {
		if s.name.IsZero() {
			pendingDesc = true
			continue
		}
		step := s
		if pendingDesc {
			step.childOnly = false
			pendingDesc = false
		}
		out = append(out, step)
	}
	if pendingDesc || len(out) == 0 {
		return nil, false
	}
	return out, true
}

// compileIndexedPath tries to compile a path into a structural-join plan.
// Returns (nil, false) when the pattern is not join-shaped.
func (c *compiler) compileIndexedPath(n *expr.Path) (seqFn, bool) {
	if !c.opts.UseStructuralJoins {
		return nil, false
	}
	raw, ok := extractJoinChain(n)
	if !ok {
		return nil, false
	}
	chain, ok := normalizeChain(raw)
	if !ok || len(chain) < 1 {
		return nil, false
	}
	// Only worthwhile when at least one edge is a descendant join.
	hasDesc := false
	for _, s := range chain[1:] {
		if !s.childOnly {
			hasDesc = true
		}
	}
	if len(chain) == 1 || !hasDesc {
		return nil, false
	}

	return func(fr *Frame) Iter {
		it, okCtx := fr.ContextItem()
		if !okCtx {
			return errIter(xdm.Errf("XPDY0002", "no context item for '/'"))
		}
		sn, isStore := it.(*store.Node)
		if !isStore {
			return nil // handled by caller fallback — should not happen
		}
		idx, built := fr.dyn.base().indexes.indexFor(sn.D)
		if built {
			fr.dyn.Prof.addIndexBuild()
		} else {
			fr.dyn.Prof.addIndexHit()
		}

		// Seed: postings of the first chain name (its edge from the root is
		// checked only when childOnly: level 1 under the document node).
		cur := idx.Elements(chain[0].name)
		if chain[0].childOnly {
			var filtered structjoin.List
			for _, p := range cur {
				if p.Region.Level == 1 {
					filtered = append(filtered, p)
				}
			}
			cur = filtered
		}
		for _, s := range chain[1:] {
			fr.dyn.Prof.addStructJoin()
			var err error
			cur, err = joinDescMorsel(fr.dyn, cur, idx.Elements(s.name), s.childOnly)
			if err != nil {
				return errIter(err)
			}
			if len(cur) == 0 {
				break
			}
		}
		return &postingsIter{d: sn.D, list: cur, dyn: fr.dyn}
	}, true
}

// joinDescMorsel runs one structural-join step, splitting a large
// descendant posting list into morsels joined by the worker pool. Each
// chunk joins against the prefix of the ancestor list that can pair with it
// (ancestors are Start-sorted; one starting after the chunk's last
// descendant cannot contain anything in the chunk — UpperBoundStart), and
// because the chunks partition a Start-sorted descendant list, the
// per-chunk DistinctDescendants outputs are disjoint, each internally
// sorted, and ordered across chunks: concatenating them by chunk index
// reproduces the global result in document order.
func joinDescMorsel(d *Dynamic, anc, desc structjoin.List, parentOnly bool) (structjoin.List, error) {
	chunks := (len(desc) + joinMorselPostings - 1) / joinMorselPostings
	if d == nil || d.Workers <= 1 || chunks < 2 {
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(anc, desc, parentOnly)), nil
	}
	extra, release := d.leaseExtra(chunks - 1)
	if extra == 0 {
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(anc, desc, parentOnly)), nil
	}
	defer release()
	parts, err := morselRound(d, extra, chunks, func(w *Dynamic, i int) (structjoin.List, error) {
		lo := i * joinMorselPostings
		hi := lo + joinMorselPostings
		if hi > len(desc) {
			hi = len(desc)
		}
		dchunk := desc[lo:hi]
		if err := w.CheckInterruptN(len(dchunk)); err != nil {
			return nil, err
		}
		achunk := anc[:structjoin.UpperBoundStart(anc, dchunk[len(dchunk)-1].Region.Start)]
		return structjoin.DistinctDescendants(structjoin.StackTreeDesc(achunk, dchunk, parentOnly)), nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(structjoin.List, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// postingsIter feeds the nodes of a structural-join result list, a whole
// batch per pull. With morsel workers configured, batch pulls upgrade to
// parallel feed rounds: chunk i of a round fills its own sub-slice of one
// preallocated output — index-tagged stitching that needs no reordering.
// Deliberately no remaining() (sizedIter): materializing the feed is the
// work being measured, and an O(1) fn:count over it would misreport the
// join's cost.
type postingsIter struct {
	d    *store.Document
	list structjoin.List
	pos  int
	dyn  *Dynamic // morsel upgrade for batch pulls; nil stays sequential

	out []xdm.Item // pending stitched output of the last parallel round
	oi  int
}

func (p *postingsIter) serve(buf []xdm.Item) int {
	n := copy(buf, p.out[p.oi:])
	p.oi += n
	if p.oi >= len(p.out) {
		p.out, p.oi = nil, 0
	}
	return n
}

func (p *postingsIter) Next() (xdm.Item, bool, error) {
	if p.oi < len(p.out) {
		it := p.out[p.oi]
		p.oi++
		if p.oi >= len(p.out) {
			p.out, p.oi = nil, 0
		}
		return it, true, nil
	}
	if p.pos >= len(p.list) {
		return nil, false, nil
	}
	node := p.d.Node(p.list[p.pos].ID)
	p.pos++
	return node, true, nil
}

// NextBatch implements BatchIter.
func (p *postingsIter) NextBatch(buf []xdm.Item) (int, error) {
	if p.oi < len(p.out) {
		return p.serve(buf), nil
	}
	if ran, err := p.feedRound(); err != nil {
		return 0, err
	} else if ran && p.oi < len(p.out) {
		return p.serve(buf), nil
	}
	n := 0
	for n < len(buf) && p.pos < len(p.list) {
		buf[n] = p.d.Node(p.list[p.pos].ID)
		p.pos++
		n++
	}
	return n, nil
}

// feedRound materializes the next slice of the posting list with the worker
// pool, when a pool is configured and enough postings remain to matter.
func (p *postingsIter) feedRound() (bool, error) {
	rem := len(p.list) - p.pos
	chunks := (rem + feedMorselPostings - 1) / feedMorselPostings
	if p.dyn == nil || p.dyn.Workers <= 1 || chunks < 2 {
		return false, nil
	}
	extra, release := p.dyn.leaseExtra(chunks - 1)
	if extra == 0 {
		return false, nil
	}
	defer release()
	if max := (extra + 1) * feedRoundChunks; chunks > max {
		chunks = max
	}
	base := p.pos
	count := chunks * feedMorselPostings
	if count > rem {
		count = rem
	}
	out := make([]xdm.Item, count)
	_, err := morselRound(p.dyn, extra, chunks, func(w *Dynamic, i int) (struct{}, error) {
		lo := i * feedMorselPostings
		hi := lo + feedMorselPostings
		if hi > count {
			hi = count
		}
		for j := lo; j < hi; j++ {
			out[j] = p.d.Node(p.list[base+j].ID)
		}
		return struct{}{}, w.CheckInterruptN(hi - lo)
	})
	p.pos = base + count
	if err != nil {
		return true, err
	}
	p.out, p.oi = out, 0
	return true, nil
}
