package runtime

import (
	"sync"

	"xqgo/internal/expr"
	"xqgo/internal/store"
	"xqgo/internal/structjoin"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Index-accelerated path evaluation: when the engine is compiled with
// UseStructuralJoins, descendant-axis path chains over plain name tests
// (//a//b, /doc//a/b …) are evaluated with stack-tree structural joins over
// a per-document name index instead of navigation — the "navigation- vs
// index-based processing" trade-off the paper surveys. Indexes are built
// lazily per document and cached on the dynamic context.

// indexCache caches structjoin indexes per store document.
type indexCache struct {
	mu   sync.Mutex
	idxs map[*store.Document]*structjoin.Index
}

// seed installs an externally built (shared) index for a document.
func (c *indexCache) seed(d *store.Document, idx *structjoin.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	c.idxs[d] = idx
}

// indexFor returns the index for a document, building it on first use.
// built reports whether this call performed the build (vs a cache hit).
func (c *indexCache) indexFor(d *store.Document) (idx *structjoin.Index, built bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idxs == nil {
		c.idxs = make(map[*store.Document]*structjoin.Index)
	}
	if idx, ok := c.idxs[d]; ok {
		return idx, false
	}
	idx = structjoin.BuildIndex(d)
	c.idxs[d] = idx
	return idx, true
}

// joinStep is one step of an extracted join chain.
type joinStep struct {
	name      xdm.QName
	childOnly bool // parent/child edge rather than ancestor/descendant
}

// extractJoinChain recognizes Path trees of the form
//
//	Root [/descendant-or-self::node()/child::N | /child::N]+
//
// with simple element name tests and no predicates, returning the chain in
// outermost-first order. ok is false when the shape doesn't match.
func extractJoinChain(e expr.Expr) (steps []joinStep, ok bool) {
	p, isPath := e.(*expr.Path)
	if !isPath {
		return nil, false
	}
	// Recurse into the left spine first.
	switch l := p.L.(type) {
	case *expr.Root:
		// chain starts here
	case *expr.Path:
		inner, innerOK := extractJoinChain(l)
		if !innerOK {
			return nil, false
		}
		steps = inner
	default:
		return nil, false
	}

	// The RHS must be either child::name, or the dos step (in which case
	// the *next* path level supplies the name; handled by the caller shape:
	// Root/dos::node() appears as Path{L: Root, R: dosStep}).
	switch r := p.R.(type) {
	case *expr.Step:
		switch {
		case r.Axis == expr.AxisChild && isPlainNameTest(r.Test):
			// A child step: parent/child edge — but only meaningful when a
			// previous named step exists; a leading /name (from the
			// document root) is also fine (document node is the parent).
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: true})
			return steps, len(steps) > 0
		case (r.Axis == expr.AxisDescendantOrSelf && r.Test.Kind == xtypes.TestAnyKind):
			// the "//" marker: mark by appending a sentinel the caller's
			// next child step will consume.
			steps = append(steps, joinStep{childOnly: false})
			return steps, true
		case r.Axis == expr.AxisDescendant && isPlainNameTest(r.Test):
			steps = append(steps, joinStep{name: r.Test.Name, childOnly: false})
			return steps, true
		}
	}
	return nil, false
}

func isPlainNameTest(t xtypes.NodeTest) bool {
	return t.Kind == xtypes.TestName && !t.AnyName && !t.WildLocal && !t.WildSpace
}

// normalizeChain merges "//" sentinels into the following named step.
// Returns ok=false when the chain is degenerate (sentinel at the end, or
// no named steps).
func normalizeChain(raw []joinStep) ([]joinStep, bool) {
	var out []joinStep
	pendingDesc := false
	for _, s := range raw {
		if s.name.IsZero() {
			pendingDesc = true
			continue
		}
		step := s
		if pendingDesc {
			step.childOnly = false
			pendingDesc = false
		}
		out = append(out, step)
	}
	if pendingDesc || len(out) == 0 {
		return nil, false
	}
	return out, true
}

// compileIndexedPath tries to compile a path into a structural-join plan.
// Returns (nil, false) when the pattern is not join-shaped.
func (c *compiler) compileIndexedPath(n *expr.Path) (seqFn, bool) {
	if !c.opts.UseStructuralJoins {
		return nil, false
	}
	raw, ok := extractJoinChain(n)
	if !ok {
		return nil, false
	}
	chain, ok := normalizeChain(raw)
	if !ok || len(chain) < 1 {
		return nil, false
	}
	// Only worthwhile when at least one edge is a descendant join.
	hasDesc := false
	for _, s := range chain[1:] {
		if !s.childOnly {
			hasDesc = true
		}
	}
	if len(chain) == 1 || !hasDesc {
		return nil, false
	}

	return func(fr *Frame) Iter {
		it, okCtx := fr.ContextItem()
		if !okCtx {
			return errIter(xdm.Errf("XPDY0002", "no context item for '/'"))
		}
		sn, isStore := it.(*store.Node)
		if !isStore {
			return nil // handled by caller fallback — should not happen
		}
		idx, built := fr.dyn.indexes.indexFor(sn.D)
		if built {
			fr.dyn.Prof.addIndexBuild()
		} else {
			fr.dyn.Prof.addIndexHit()
		}

		// Seed: postings of the first chain name (its edge from the root is
		// checked only when childOnly: level 1 under the document node).
		cur := idx.Elements(chain[0].name)
		if chain[0].childOnly {
			var filtered structjoin.List
			for _, p := range cur {
				if p.Region.Level == 1 {
					filtered = append(filtered, p)
				}
			}
			cur = filtered
		}
		for _, s := range chain[1:] {
			fr.dyn.Prof.addStructJoin()
			pairs := structjoin.StackTreeDesc(cur, idx.Elements(s.name), s.childOnly)
			cur = structjoin.DistinctDescendants(pairs)
			if len(cur) == 0 {
				break
			}
		}
		return &postingsIter{d: sn.D, list: cur}
	}, true
}

// postingsIter feeds the nodes of a structural-join result list, a whole
// batch per pull.
type postingsIter struct {
	d    *store.Document
	list structjoin.List
	pos  int
}

func (p *postingsIter) Next() (xdm.Item, bool, error) {
	if p.pos >= len(p.list) {
		return nil, false, nil
	}
	node := p.d.Node(p.list[p.pos].ID)
	p.pos++
	return node, true, nil
}

// NextBatch implements BatchIter.
func (p *postingsIter) NextBatch(buf []xdm.Item) (int, error) {
	n := 0
	for n < len(buf) && p.pos < len(p.list) {
		buf[n] = p.d.Node(p.list[p.pos].ID)
		p.pos++
		n++
	}
	return n, nil
}
