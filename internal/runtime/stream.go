package runtime

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
)

// StreamState is a one-shot streaming XML input attached to a Dynamic: the
// document is parsed incrementally, starting at the first demand, under the
// query's static projection. It backs the public WithStreamingInput API and
// the service's request-body ingestion.
type StreamState struct {
	mu   sync.Mutex
	r    io.Reader
	opts xmlparse.Options // URI, whitespace handling, pooling
	doc  *store.Document
	// docv mirrors doc for lock-free lazy checks on the batch hot path.
	docv atomic.Pointer[store.Document]
}

// NewStreamState wraps a reader as a pending streaming input. The input is
// consumed by at most one execution (it is a reader, not a file).
func NewStreamState(r io.Reader, opts xmlparse.Options) *StreamState {
	return &StreamState{r: r, opts: opts}
}

// URI returns the URI the streamed document resolves under.
func (s *StreamState) URI() string { return s.opts.URI }

// BindContext arranges for a read of the streamed input that is pending
// when ctx is canceled to unblock and surface the cancellation error
// (rather than hanging until the producer writes, or dressing the abort
// up as a parse error). Must be called before the parse starts; a no-op
// afterwards, on a nil/never-canceled context, or on repeat calls.
func (s *StreamState) BindContext(ctx context.Context) {
	if s == nil || ctx == nil || ctx.Done() == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc != nil {
		return
	}
	if _, ok := s.r.(*ctxReader); ok {
		return
	}
	s.r = &ctxReader{ctx: ctx, r: s.r}
}

// ctxReader runs each Read on a helper goroutine so a canceled context
// unblocks the caller immediately; the abandoned read hands its (late)
// result to the next call through res, keeping reads sequential.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
	res chan ctxRead
}

type ctxRead struct {
	n   int
	err error
	buf []byte
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	if c.res == nil {
		c.res = make(chan ctxRead, 1)
	} else {
		// A previous Read abandoned its in-flight call; collect the
		// leftover result first so underlying reads never interleave.
		select {
		case r := <-c.res:
			return copy(p, r.buf[:r.n]), r.err
		default:
		}
	}
	buf := make([]byte, len(p))
	go func() {
		n, err := c.r.Read(buf)
		c.res <- ctxRead{n: n, err: err, buf: buf}
	}()
	select {
	case r := <-c.res:
		return copy(p, r.buf[:r.n]), r.err
	case <-c.ctx.Done():
		return 0, c.ctx.Err()
	}
}

// Reader returns the stream's input reader — context-wrapped when
// BindContext ran — for callers that drive their own parse (the
// event-driven execute path).
func (s *StreamState) Reader() io.Reader {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r
}

// docFor returns the streamed document, starting the incremental parse on
// first use with the execution's projection, profile sink, and memory
// budget.
func (s *StreamState) docFor(d *Dynamic) *store.Document {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc == nil {
		o := s.opts
		o.Projection = d.proj.Load()
		o.Stats = ingestStats{d: d}
		if b := d.Budget; b != nil {
			o.Charge = b.Charge
		}
		s.doc = xmlparse.ParseIncremental(s.r, o).Document()
		s.docv.Store(s.doc)
	}
	return s.doc
}

// lazy reports whether the streamed document is still being parsed (true
// before the parse has even started). Batched operators use this to drop to
// item-granularity demand so a batch fill cannot force input past the items
// it returns.
func (s *StreamState) lazy() bool {
	d := s.docv.Load()
	return d == nil || d.Lazy()
}

// streamingLazy reports whether this execution reads a streamed input that
// has not been fully parsed yet. Always false without a streaming input, so
// the check costs one nil test on non-streaming executions.
func (d *Dynamic) streamingLazy() bool {
	return d.Stream != nil && d.Stream.lazy()
}

// ingestStats routes parser counters into the execution profile. The
// profile adders are nil-safe, so an unprofiled run pays four nil checks
// per parse increment.
type ingestStats struct{ d *Dynamic }

func (s ingestStats) OnParse(tokens, built, skipped, bytes int64) {
	p := s.d.Prof
	p.addXMLTokens(tokens)
	p.addDocNodesBuilt(built)
	p.addNodesSkipped(skipped)
	p.addBytesParsed(bytes)
}

// IngestStats returns the xmlparse.Stats sink routing parser counters into
// d's profile. The event-driven stream path drives its own parse (bypassing
// StreamState), so it needs the same sink StreamState installs internally.
func IngestStats(d *Dynamic) xmlparse.Stats { return ingestStats{d: d} }

// RunIter is a closable result iterator over one execution: the engine
// boundary for callers that pull items instead of materializing. Unlike the
// raw plan iterator it converts lazy-ingestion panics into errors and can
// release pooled batch buffers early via Close.
type RunIter struct {
	dyn  *Dynamic
	src  Iter
	done bool
}

// RunIterator starts an execution and returns its closable iterator.
func (p *Prepared) RunIterator(dyn *Dynamic) (it *RunIter, err error) {
	defer recoverXQ(&err)
	fr, err := p.newRootFrame(dyn)
	if err != nil {
		return nil, err
	}
	return &RunIter{dyn: fr.dyn, src: p.body(fr)}, nil
}

// Next produces the next result item; ok is false at the end.
func (r *RunIter) Next() (item xdm.Item, ok bool, err error) {
	if r.done || r.src == nil {
		return nil, false, nil
	}
	defer recoverXQ(&err)
	item, ok, err = r.src.Next()
	if err != nil || !ok {
		r.done = true
	}
	return item, ok, err
}

// Close releases the execution's pooled batch buffers and ends iteration.
// Safe to call multiple times; Next returns exhaustion afterwards.
func (r *RunIter) Close() {
	r.done = true
	r.src = nil
	if r.dyn != nil {
		r.dyn.bufMu.Lock()
		r.dyn.bufFree = nil
		r.dyn.bufMu.Unlock()
	}
}
