package runtime

import (
	"sync"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// Parallel execution — the paper's "Parallel execution" slide: independent
// sub-expressions of a sequence are evaluated concurrently ("only if there
// is no data dependency; only if the compiler guarantees that the given
// subexpressions are executed"). A comma sequence always evaluates every
// operand, satisfying the guarantee; independence is established by forcing
// the branches' shared variable bindings before spawning, after which each
// goroutine touches only immutable state (the store is read-only, documents
// and caches are mutex-guarded).
//
// Note the error-timing caveat the paper discusses for LET unfolding:
// forcing shared bindings may evaluate a variable an entirely lazy engine
// would have skipped. XQuery's non-deterministic error semantics permit
// this; Parallel is opt-in.
//
// Each branch runs on a forked Dynamic (private interrupt counter, buffer
// pool, profile shard — see morsel.go) whose interrupt hook also watches
// the group's first error, so one failed or panicked branch cancels its
// siblings within an interrupt stride instead of holding the request until
// every branch finishes on its own.

// parallelMinWeight is the minimum expression-tree size of a branch worth a
// goroutine.
const parallelMinWeight = 12

// compileParallelSeq builds a concurrent evaluator for a comma sequence, or
// returns ok=false when the shape doesn't profit (few/light branches,
// context-dependent branches).
func (c *compiler) compileParallelSeq(n *expr.Seq, fns []seqFn) (seqFn, bool) {
	if !c.opts.Parallel || len(n.Items) < 2 {
		return nil, false
	}
	heavy := 0
	for _, item := range n.Items {
		if expr.UsesContext(item) {
			// Focus plumbing (fn:last materialization) is not safe to share
			// across goroutines; keep such sequences sequential.
			return nil, false
		}
		if expr.Count(item) >= parallelMinWeight {
			heavy++
		}
	}
	if heavy < 2 {
		return nil, false
	}

	// The variable ids each branch reads; forced before spawning.
	var shared []int
	seen := map[int]bool{}
	for _, item := range n.Items {
		for name := range expr.FreeVars(item) {
			if id, ok := c.resolve(xdm.ParseClark(name)); ok && !seen[id] {
				seen[id] = true
				shared = append(shared, id)
			}
		}
	}

	dr := c.drainFor()
	return func(fr *Frame) Iter {
		// Force shared bindings so goroutines only read materialized data.
		for _, id := range shared {
			if _, err := fr.lookup(id).All(); err != nil {
				return errIter(err)
			}
		}
		results := make([]xdm.Sequence, len(fns))
		errs := make([]error, len(fns))
		var g groupErr
		var wg sync.WaitGroup
		for i, fn := range fns {
			wg.Add(1)
			go func(i int, fn seqFn) {
				defer wg.Done()
				// LIFO: recoverXQ converts a panic to errs[i] first, then the
				// error publishes to the group so siblings stop early.
				defer func() { g.set(errs[i]) }()
				defer recoverXQ(&errs[i])
				w := fr.dyn.forkFor(&g)
				wfr := fr.withDyn(w)
				results[i], errs[i] = dr(wfr, fn(wfr))
				fr.dyn.Prof.foldShard(w.Prof)
			}(i, fn)
		}
		wg.Wait()
		// Report the first published error: a branch aborted by sibling
		// cancellation carries the group error anyway, so this is the error
		// of the branch that actually failed.
		if err := g.load(); err != nil {
			return errIter(err)
		}
		var out xdm.Sequence
		for _, r := range results {
			out = append(out, r...)
		}
		return newSliceIter(out)
	}, true
}
