package runtime

import (
	"xqgo/internal/tokens"
	"xqgo/internal/xdm"
)

// EmitItemTokens renders one result item as output tokens — the same
// conversion ExecuteToWriter applies per item, exported for the streaming
// evaluator (internal/streamexec), which produces result items outside the
// iterator engine but must serialize byte-identically to it. Streamed
// constructor trees are token-piped without materialization, stored nodes
// are scanned, and atomic values become KindAtomic tokens (the StreamWriter
// applies the adjacent-atomic space-joining rule itself).
func EmitItemTokens(item xdm.Item, emit func(tokens.Token) error) error {
	switch n := item.(type) {
	case *StreamedNode:
		return n.EmitTokens(emit)
	case xdm.Node:
		return emitStoredNode(n, emit)
	default:
		return emit(tokens.Token{Kind: tokens.KindAtomic, Atom: item.(xdm.Atomic)})
	}
}
