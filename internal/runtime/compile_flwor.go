package runtime

import (
	"xqgo/internal/expr"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// FLWOR evaluation. Without order-by the whole expression is a lazy nested-
// loop pipeline over binding tuples (frames); with order-by the tuples are
// materialized, sorted by the key values, and the return clause streams per
// sorted tuple.

// tupleIter yields binding frames.
type tupleIter func() (*Frame, bool, error)

// tupleSrc is a tuple stream with both pull granularities: next yields one
// binding frame (the exact lazy semantics), batch fills a frame buffer
// under the same contract as BatchIter.NextBatch (0 with nil error = end,
// a short batch does not signal the end, frames before an error are valid).
// Only drain-everything consumers (a batch-pulled return clause, order-by
// materialization) use batch; quantifiers and item-driven FLWORs stay on
// next, preserving early exit.
type tupleSrc struct {
	next  tupleIter
	batch func(buf []*Frame) (int, error)
}

// tupleSrcFrom wraps an item-granularity tuple stream, deriving the batch
// side generically.
func tupleSrcFrom(next tupleIter) tupleSrc {
	return tupleSrc{next: next, batch: func(buf []*Frame) (int, error) {
		n := 0
		for n < len(buf) {
			t, ok, err := next()
			if err != nil {
				return n, err
			}
			if !ok {
				break
			}
			buf[n] = t
			n++
		}
		return n, nil
	}}
}

type compiledClause struct {
	kind  expr.ClauseKind
	varID int
	posID int // -1 when absent
	typ   *xtypes.SequenceType
	in    seqFn
}

func (c *compiler) compileFlwor(n *expr.Flwor) (seqFn, error) {
	c.pushScope()
	defer c.popScope()

	clauses := make([]compiledClause, 0, len(n.Clauses))
	for _, cl := range n.Clauses {
		in, err := c.compile(cl.In)
		if err != nil {
			return nil, err
		}
		cc := compiledClause{kind: cl.Kind, in: in, posID: -1, typ: cl.Type}
		cc.varID = c.declare(cl.Var)
		if !cl.PosVar.IsZero() {
			cc.posID = c.declare(cl.PosVar)
		}
		clauses = append(clauses, cc)
	}
	var whereFn seqFn
	if n.Where != nil {
		fn, err := c.compile(n.Where)
		if err != nil {
			return nil, err
		}
		whereFn = fn
	}
	// Group-by: keys see the clause variables; the group variables come
	// into scope for order-by and return. All clause-bound variables
	// (including positional ones) are rebound per group.
	var groupSpecs []groupSpec
	var rebindIDs []int
	if len(n.Group) > 0 {
		for _, cc := range clauses {
			rebindIDs = append(rebindIDs, cc.varID)
			if cc.posID >= 0 {
				rebindIDs = append(rebindIDs, cc.posID)
			}
		}
		for _, g := range n.Group {
			key, err := c.compile(g.Key)
			if err != nil {
				return nil, err
			}
			groupSpecs = append(groupSpecs, groupSpec{varID: c.declare(g.Var), key: key})
		}
	}
	type orderKey struct {
		key        seqFn
		descending bool
		emptyLeast bool
	}
	var orderKeys []orderKey
	for _, o := range n.Order {
		fn, err := c.compile(o.Key)
		if err != nil {
			return nil, err
		}
		orderKeys = append(orderKeys, orderKey{fn, o.Descending, o.EmptyLeast})
	}
	retFn, err := c.compile(n.Ret)
	if err != nil {
		return nil, err
	}

	noBatch := c.opts.NoBatch
	makeTuples := func(fr *Frame, withWhere bool) tupleSrc {
		tuples := baseTuple(fr)
		for i := range clauses {
			tuples = applyClause(tuples, &clauses[i])
		}
		if whereFn != nil && withWhere {
			tuples = filterTuples(tuples, whereFn)
		}
		if len(groupSpecs) > 0 {
			// Grouping materializes every tuple anyway, so it may consume
			// its input in batches.
			pull := tuples.next
			if !noBatch {
				pull = batchedTuplePull(tuples)
			}
			tuples = tupleSrcFrom(applyGrouping(pull, fr, groupSpecs, rebindIDs))
		}
		return tuples
	}

	if len(orderKeys) == 0 {
		// Morsel eligibility (see morsel.go): order-preserving for/where
		// pipelines whose where and return clauses are context-free and call
		// no user functions (a function body may lazily force a shared
		// global) can evaluate tuples on the worker pool. Referenced outer
		// and let bindings are forced on the pulling goroutine first — the
		// error-timing caveat of parallel.go applies. The where clause moves
		// out of the tuple source so workers apply it per tuple.
		parSafe := !noBatch && len(groupSpecs) == 0 &&
			!expr.UsesContext(n.Ret) && !c.hasUserCall(n.Ret) &&
			(n.Where == nil || (!expr.UsesContext(n.Where) && !c.hasUserCall(n.Where)))
		var outerForce, letForce []int
		if parSafe {
			outerForce, letForce = c.flworForceSets(n, clauses)
		}
		fn := func(fr *Frame) Iter {
			if parSafe && fr.dyn.Workers > 1 {
				return &flworIter{tuples: makeTuples(fr, false), retFn: retFn, noBatch: noBatch,
					whereFn: whereFn,
					par:     &flworMorsel{fr: fr, outerForce: outerForce, letForce: letForce}}
			}
			return &flworIter{tuples: makeTuples(fr, true), retFn: retFn, noBatch: noBatch}
		}
		return c.tag("flwor", n, fn), nil
	}

	// Order-by path: materialize tuples and their keys.
	fn := func(fr *Frame) Iter {
		tuples := makeTuples(fr, true)
		pull := tuples.next
		if !noBatch {
			pull = batchedTuplePull(tuples)
		}
		type sortable struct {
			frame *Frame
			keys  []*xdm.Atomic // nil pointer = empty key
		}
		var rows []sortable
		for {
			t, ok, err := pull()
			if err != nil {
				return errIter(err)
			}
			if !ok {
				break
			}
			row := sortable{frame: t}
			for _, ok := range orderKeys {
				a, present, err := atomizeSingle(ok.key(t))
				if err != nil {
					return errIter(err)
				}
				if present {
					if a.T == xdm.TUntyped {
						a = xdm.NewString(a.S)
					}
					av := a
					row.keys = append(row.keys, &av)
				} else {
					row.keys = append(row.keys, nil)
				}
			}
			rows = append(rows, row)
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		stableSortInts(idx, func(a, b int) bool {
			if sortErr != nil {
				return false
			}
			for k := range orderKeys {
				ka, kb := rows[a].keys[k], rows[b].keys[k]
				cmp, err := compareKeys(ka, kb, orderKeys[k].emptyLeast)
				if err != nil {
					sortErr = err
					return false
				}
				if cmp == 0 {
					continue
				}
				if orderKeys[k].descending {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if sortErr != nil {
			return errIter(sortErr)
		}
		// Stream the return clause per sorted tuple, reusing the dual-
		// granularity FLWOR iterator over the sorted row stream.
		pos := 0
		sorted := func() (*Frame, bool, error) {
			if pos >= len(idx) {
				return nil, false, nil
			}
			t := rows[idx[pos]].frame
			pos++
			return t, true, nil
		}
		return &flworIter{tuples: tupleSrcFrom(sorted), retFn: retFn, noBatch: noBatch}
	}
	return c.tag("flwor", n, fn), nil
}

// hasUserCall reports whether e contains a call to a user-declared
// function. Bodies of user functions may lazily force shared bindings
// (globals, memoized arguments), which morsel workers must not race on, so
// such expressions keep the FLWOR sequential.
func (c *compiler) hasUserCall(e expr.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	expr.Walk(e, func(x expr.Expr) bool {
		if found {
			return false
		}
		if call, ok := x.(*expr.Call); ok {
			if _, isUser := c.funcs[funcKey(call.Name, len(call.Args))]; isUser {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// flworForceSets classifies the variables the where/return clauses read,
// for a morsel-parallel FLWOR: letForce are this FLWOR's own let bindings
// (their shared LazySeq must be forced per tuple on the pulling goroutine —
// two workers forcing one lazily would race; anything the let's input reads
// is in turn forced inside that same caller-side evaluation, so no closure
// is needed), outerForce are bindings from outside the FLWOR, forced once
// before the first round. For-clause and positional variables are
// materialized per tuple already and need no forcing. Let bindings nothing
// references are never forced, preserving lazy skipping of erroring
// dead bindings.
func (c *compiler) flworForceSets(n *expr.Flwor, clauses []compiledClause) (outer, lets []int) {
	declared := map[int]bool{}
	isLet := map[int]bool{}
	for i, cc := range clauses {
		declared[cc.varID] = true
		if cc.posID >= 0 {
			declared[cc.posID] = true
		}
		if n.Clauses[i].Kind == expr.LetClause {
			isLet[cc.varID] = true
		}
	}
	refs := expr.FreeVars(n.Ret)
	if n.Where != nil {
		for name := range expr.FreeVars(n.Where) {
			refs[name] = true
		}
	}
	seen := map[int]bool{}
	for name := range refs {
		id, ok := c.resolve(xdm.ParseClark(name))
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		switch {
		case isLet[id]:
			lets = append(lets, id)
		case !declared[id]:
			outer = append(outer, id)
		}
	}
	return outer, lets
}

// flworIter streams the return clause over a tuple stream. Item pulls stay
// strictly lazy (one tuple advanced at a time); batch pulls prefetch a
// batch of tuples and forward the batch demand into the return clause. A
// tuple-stream error discovered while prefetching is held back until the
// return results of the already-prefetched tuples have been delivered, so
// the error surfaced matches item-at-a-time order.
type flworIter struct {
	tuples  tupleSrc
	retFn   seqFn
	noBatch bool

	// whereFn is set only on a morsel-parallel FLWOR: the filter moves out
	// of the tuple source so workers can apply it per tuple; item-granular
	// pulls apply it in nextTuple. par holds the parallel round state; nil
	// means fully sequential (whereFn is then inside tuples already).
	whereFn seqFn
	par     *flworMorsel

	cur     Iter
	pending []*Frame
	pi, pn  int
	stash   error
	tdone   bool
}

// nextTuple yields the next tuple that passes the where clause (when the
// filter lives at this level; see whereFn).
func (f *flworIter) nextTuple(batched bool) (*Frame, bool, error) {
	for {
		t, ok, err := f.rawTuple(batched)
		if err != nil || !ok {
			return nil, false, err
		}
		if f.whereFn != nil {
			keep, kerr := ebvOf(f.whereFn(t))
			if kerr != nil {
				return nil, false, kerr
			}
			if !keep {
				continue
			}
		}
		return t, true, nil
	}
}

// rawTuple yields the next tuple from the source, unfiltered.
func (f *flworIter) rawTuple(batched bool) (*Frame, bool, error) {
	for {
		if f.pi < f.pn {
			t := f.pending[f.pi]
			f.pending[f.pi] = nil
			f.pi++
			return t, true, nil
		}
		if f.stash != nil {
			err := f.stash
			f.stash = nil
			f.tdone = true
			return nil, false, err
		}
		if f.tdone {
			return nil, false, nil
		}
		if !batched || f.noBatch {
			t, ok, err := f.tuples.next()
			if err != nil || !ok {
				f.tdone = true
				return nil, false, err
			}
			return t, true, nil
		}
		if f.pending == nil {
			f.pending = make([]*Frame, batchSize)
		}
		n, err := f.tuples.batch(f.pending)
		f.pi, f.pn = 0, n
		if err != nil {
			f.stash = err
		} else if n == 0 {
			f.tdone = true
		}
	}
}

func (f *flworIter) Next() (xdm.Item, bool, error) {
	for {
		if f.cur == nil {
			t, ok, err := f.nextTuple(false)
			if err != nil || !ok {
				return nil, false, err
			}
			f.cur = f.retFn(t)
		}
		it, ok, err := f.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return it, true, nil
		}
		f.cur = nil
	}
}

// NextBatch implements BatchIter. With parallel round state attached, the
// fill first tries a morsel round; handled=false (no workers available, a
// return iterator already open, or a still-parsing streamed input) falls
// through to the sequential fill for this pull.
func (f *flworIter) NextBatch(buf []xdm.Item) (int, error) {
	if f.par != nil {
		if n, err, handled := f.par.nextBatch(f, buf); handled {
			return n, err
		}
	}
	n := 0
	for n < len(buf) {
		if f.cur == nil {
			t, ok, err := f.nextTuple(true)
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
			f.cur = f.retFn(t)
		}
		k, err := nextBatch(f.cur, buf[n:])
		n += k
		if err != nil {
			return n, err
		}
		if k == 0 {
			f.cur = nil
		}
	}
	return n, nil
}

// flworMorsel is the parallel-round state of a morsel-eligible FLWOR: the
// pulling goroutine gathers a round of raw tuples (forcing the let and
// outer bindings workers will read — see flworForceSets), worker forks
// evaluate where+return per tuple chunk, and chunk outputs stitch back in
// tuple order, preserving the sequential result order exactly.
type flworMorsel struct {
	fr         *Frame
	outerForce []int // bindings outside the FLWOR; forced once, first round
	letForce   []int // the FLWOR's own referenced lets; forced per tuple
	forced     bool

	out      []xdm.Item // pending stitched output of the last round
	oi       int
	roundErr error // held until the round's outputs have been delivered
	done     bool
}

// nextBatch serves the parallel side of flworIter.NextBatch; handled=false
// defers this pull to the sequential fill.
func (m *flworMorsel) nextBatch(f *flworIter, buf []xdm.Item) (int, error, bool) {
	for {
		if m.oi < len(m.out) {
			n := copy(buf, m.out[m.oi:])
			m.oi += n
			if m.oi >= len(m.out) {
				m.out, m.oi = nil, 0
			}
			return n, nil, true
		}
		if m.roundErr != nil {
			err := m.roundErr
			m.roundErr = nil
			m.done = true
			return 0, err, true
		}
		if m.done || f.cur != nil || m.fr.dyn.streamingLazy() {
			return 0, nil, false
		}
		ran, err := m.runRound(f)
		if err != nil {
			m.done = true
			return 0, err, true
		}
		if !ran {
			return 0, nil, false
		}
		// Loop: serve the round's output, or run another round if it
		// produced nothing (all tuples where-filtered).
	}
}

// runRound gathers and evaluates one parallel round. ran=false (without
// error) means no extra workers were available or the tuple source is
// exhausted; the caller falls back to the sequential fill.
func (m *flworMorsel) runRound(f *flworIter) (bool, error) {
	d := m.fr.dyn
	extra, release := d.leaseExtra(d.Workers - 1)
	if extra == 0 {
		return false, nil
	}
	defer release()
	if !m.forced {
		for _, id := range m.outerForce {
			if _, err := m.fr.lookup(id).All(); err != nil {
				return false, err
			}
		}
		m.forced = true
	}
	// Gather raw tuples on the puller, forcing referenced let bindings so
	// workers only read materialized values. A source or forcing error is
	// stashed until the outputs of the tuples gathered before it deliver,
	// matching item-at-a-time error order.
	roundTuples := (extra + 1) * flworRoundChunks * flworMorselTuples
	// A round's gathered tuple frames are retained only until its outputs
	// are stitched, so their footprint is bracketed: charged here, returned
	// when the round ends.
	roundBytes := int64(roundTuples) * flworTupleEstBytes
	if err := d.Budget.Charge(roundBytes); err != nil {
		return false, err
	}
	defer d.Budget.Discharge(roundBytes)
	round := make([]*Frame, 0, roundTuples)
	var terr error
gather:
	for len(round) < roundTuples {
		t, ok, err := f.rawTuple(true)
		if err != nil {
			terr = err
			break
		}
		if !ok {
			break
		}
		for _, id := range m.letForce {
			if _, err := t.lookup(id).All(); err != nil {
				terr = err
				break gather
			}
		}
		round = append(round, t)
	}
	if len(round) == 0 {
		if terr != nil {
			m.roundErr = terr
			return true, nil
		}
		m.done = true
		return true, nil
	}
	chunks := (len(round) + flworMorselTuples - 1) / flworMorselTuples
	parts, rerr := morselRound(d, extra, chunks, func(w *Dynamic, i int) (xdm.Sequence, error) {
		lo := i * flworMorselTuples
		hi := lo + flworMorselTuples
		if hi > len(round) {
			hi = len(round)
		}
		var out xdm.Sequence
		for _, t := range round[lo:hi] {
			seq, err := evalFlworTuple(w, f, t)
			if err != nil {
				return nil, err
			}
			out = append(out, seq...)
			if err := w.CheckInterruptN(len(seq) + 1); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if rerr != nil {
		// A chunk failed. Group cancellation may have replaced the error
		// sequential evaluation would surface first, so replay this round's
		// saved tuples on the puller: the outputs before the first failing
		// tuple deliver, then its error — deterministic, item-order exact.
		var replay xdm.Sequence
		m.roundErr = nil
		for _, t := range round {
			seq, err := evalFlworTuple(d, f, t)
			if err != nil {
				m.roundErr = err
				break
			}
			replay = append(replay, seq...)
		}
		if m.roundErr == nil {
			// The parallel failure did not reproduce sequentially (a
			// transient interrupt): keep the replayed outputs and continue
			// with any error the gather stashed.
			m.roundErr = terr
		}
		m.out, m.oi = replay, 0
		return true, nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]xdm.Item, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	m.out, m.oi = out, 0
	m.roundErr = terr
	return true, nil
}

// evalFlworTuple applies the where clause and drains the return clause for
// one tuple under a specific worker context.
func evalFlworTuple(w *Dynamic, f *flworIter, t *Frame) (xdm.Sequence, error) {
	t2 := t.withDyn(w)
	if f.whereFn != nil {
		keep, err := ebvOf(f.whereFn(t2))
		if err != nil || !keep {
			return nil, err
		}
	}
	return drainBatched(w, f.retFn(t2))
}

// batchedTuplePull adapts a tupleSrc's batch side to one-at-a-time
// delivery for materializing consumers (the order-by row loop): tuples are
// prefetched a batch at a time, with upstream errors held back until the
// prefetched tuples are consumed.
func batchedTuplePull(src tupleSrc) tupleIter {
	var pending []*Frame
	pi, pn := 0, 0
	var stash error
	done := false
	return func() (*Frame, bool, error) {
		for {
			if pi < pn {
				t := pending[pi]
				pending[pi] = nil
				pi++
				return t, true, nil
			}
			if stash != nil {
				err := stash
				stash = nil
				done = true
				return nil, false, err
			}
			if done {
				return nil, false, nil
			}
			if pending == nil {
				pending = make([]*Frame, batchSize)
			}
			n, err := src.batch(pending)
			pi, pn = 0, n
			if err != nil {
				stash = err
			} else if n == 0 {
				done = true
			}
		}
	}
}

// compareKeys orders two order-by keys; empty sequences order per
// empty-least/greatest.
func compareKeys(a, b *xdm.Atomic, emptyLeast bool) (int, error) {
	if a == nil && b == nil {
		return 0, nil
	}
	if a == nil {
		if emptyLeast {
			return -1, nil
		}
		return 1, nil
	}
	if b == nil {
		if emptyLeast {
			return 1, nil
		}
		return -1, nil
	}
	cmp, nan, err := xdm.OrderCompare(*a, *b)
	if err != nil {
		return 0, err
	}
	if nan {
		return 0, nil // NaN treated as equal for ordering stability
	}
	return cmp, nil
}

// stableSortInts is an insertion-based stable sort over an index slice
// (rows are typically modest; order-by over huge results materializes
// anyway). For large inputs it falls back to a merge sort.
func stableSortInts(idx []int, less func(a, b int) bool) {
	if len(idx) < 32 {
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return
	}
	mid := len(idx) / 2
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid:]...)
	stableSortInts(left, less)
	stableSortInts(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			idx[k] = right[j]
			j++
		} else {
			idx[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		idx[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		idx[k] = right[j]
		j++
		k++
	}
}

// baseTuple yields the initial single tuple (the enclosing frame).
func baseTuple(fr *Frame) tupleSrc {
	done := false
	return tupleSrcFrom(func() (*Frame, bool, error) {
		if done {
			return nil, false, nil
		}
		done = true
		return fr, true, nil
	})
}

// applyClause extends a tuple stream with one for/let clause.
func applyClause(tuples tupleSrc, cl *compiledClause) tupleSrc {
	if cl.kind == expr.LetClause {
		// Lazy binding: the clause input is not evaluated until the
		// variable is first used, and then memoized — in both granularities.
		bind := func(t *Frame) *Frame { return t.bind(cl.varID, NewLazySeq(cl.in(t))) }
		return tupleSrc{
			next: func() (*Frame, bool, error) {
				t, ok, err := tuples.next()
				if err != nil || !ok {
					return nil, false, err
				}
				return bind(t), true, nil
			},
			batch: func(buf []*Frame) (int, error) {
				n, err := tuples.batch(buf)
				for i := 0; i < n; i++ {
					buf[i] = bind(buf[i])
				}
				return n, err
			},
		}
	}
	// for-clause: one tuple per item of the input sequence. The item and
	// batch sides share the cursor state, so the granularities may be mixed
	// by a consumer without skipping or repeating tuples.
	f := &forClauseState{tuples: tuples, cl: cl}
	return tupleSrc{next: f.next, batch: f.batch}
}

// forClauseState is the shared cursor of one for-clause: the current outer
// tuple and the current position within its input sequence.
type forClauseState struct {
	tuples  tupleSrc
	cl      *compiledClause
	outer   *Frame
	inner   Iter
	pos     int64
	scratch []xdm.Item // staging for batch pulls of the clause input
}

// bindTuple builds the output tuple for one item of the clause input.
func (f *forClauseState) bindTuple(it xdm.Item) (*Frame, error) {
	f.pos++
	if f.cl.typ != nil && !f.cl.typ.Item.MatchesItem(it) {
		return nil, xdm.ErrType("for-variable item does not match %s", *f.cl.typ)
	}
	fr := f.outer.bind(f.cl.varID, MaterializedSeq(xdm.Sequence{it}))
	if f.cl.posID >= 0 {
		fr = fr.bind(f.cl.posID, MaterializedSeq(xdm.Sequence{xdm.NewInteger(f.pos)}))
	}
	return fr, nil
}

// advanceOuter moves to the next outer tuple; ok=false at the end.
func (f *forClauseState) advanceOuter() (bool, error) {
	t, ok, err := f.tuples.next()
	if err != nil || !ok {
		return false, err
	}
	f.outer = t
	f.inner = f.cl.in(t)
	f.pos = 0
	return true, nil
}

func (f *forClauseState) next() (*Frame, bool, error) {
	for {
		if f.inner == nil {
			ok, err := f.advanceOuter()
			if err != nil || !ok {
				return nil, false, err
			}
		}
		if err := f.outer.dyn.CheckInterrupt(); err != nil {
			return nil, false, err
		}
		it, ok, err := f.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			f.inner = nil
			continue
		}
		fr, err := f.bindTuple(it)
		if err != nil {
			return nil, false, err
		}
		return fr, true, nil
	}
}

func (f *forClauseState) batch(buf []*Frame) (int, error) {
	n := 0
	for n < len(buf) {
		if f.inner == nil {
			ok, err := f.advanceOuter()
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
		}
		if f.scratch == nil {
			f.scratch = f.outer.dyn.getBuf()
		}
		in := f.scratch
		if r := len(buf) - n; r < len(in) {
			in = in[:r]
		}
		k, err := nextBatch(f.inner, in)
		for i := 0; i < k; i++ {
			fr, berr := f.bindTuple(in[i])
			if berr != nil {
				return n, berr
			}
			buf[n] = fr
			n++
		}
		if err != nil {
			return n, err
		}
		if k == 0 {
			f.inner = nil
		}
	}
	if err := f.outer.dyn.CheckInterruptN(n); err != nil {
		return n, err
	}
	return n, nil
}

// filterTuples applies the where clause by effective boolean value.
func filterTuples(tuples tupleSrc, whereFn seqFn) tupleSrc {
	return tupleSrc{
		next: func() (*Frame, bool, error) {
			for {
				t, ok, err := tuples.next()
				if err != nil || !ok {
					return nil, false, err
				}
				keep, err := ebvOf(whereFn(t))
				if err != nil {
					return nil, false, err
				}
				if keep {
					return t, true, nil
				}
			}
		},
		batch: func(buf []*Frame) (int, error) {
			for {
				k, err := tuples.batch(buf)
				n := 0
				for i := 0; i < k; i++ {
					keep, kerr := ebvOf(whereFn(buf[i]))
					if kerr != nil {
						return n, kerr
					}
					if keep {
						buf[n] = buf[i]
						n++
					}
				}
				if err != nil || k == 0 || n > 0 {
					return n, err
				}
				// Whole batch filtered out: pull again (n == 0 would
				// wrongly signal the end).
			}
		},
	}
}

func (c *compiler) compileQuantified(n *expr.Quantified) (seqFn, error) {
	c.pushScope()
	defer c.popScope()

	type qbind struct {
		id int
		in seqFn
	}
	binds := make([]qbind, 0, len(n.Binds))
	for _, b := range n.Binds {
		in, err := c.compile(b.In)
		if err != nil {
			return nil, err
		}
		binds = append(binds, qbind{id: c.declare(b.Var), in: in})
	}
	satFn, err := c.compile(n.Satisfies)
	if err != nil {
		return nil, err
	}
	every := n.Every
	fn := func(fr *Frame) Iter {
		tuples := baseTuple(fr)
		for i := range binds {
			cl := compiledClause{kind: expr.ForClause, varID: binds[i].id, posID: -1, in: binds[i].in}
			tuples = applyClauseQ(tuples, cl)
		}
		// Quantifiers pull tuples one at a time on purpose: early exit is
		// the lazy-evaluation payoff, and batch prefetch would evaluate
		// bindings past the deciding one.
		for {
			t, ok, err := tuples.next()
			if err != nil {
				return errIter(err)
			}
			if !ok {
				// every: vacuously true; some: false
				return singleIter(xdm.NewBoolean(every))
			}
			sat, err := ebvOf(satFn(t))
			if err != nil {
				return errIter(err)
			}
			if sat && !every {
				return singleIter(xdm.True) // early exit: lazy evaluation win
			}
			if !sat && every {
				return singleIter(xdm.False)
			}
		}
	}
	return c.tag("quantified", n, fn), nil
}

// applyClauseQ is applyClause for a value clause (quantifiers have no
// positional variables or type checks).
func applyClauseQ(tuples tupleSrc, cl compiledClause) tupleSrc {
	clCopy := cl
	return applyClause(tuples, &clCopy)
}
