package runtime

import (
	"xqgo/internal/expr"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// FLWOR evaluation. Without order-by the whole expression is a lazy nested-
// loop pipeline over binding tuples (frames); with order-by the tuples are
// materialized, sorted by the key values, and the return clause streams per
// sorted tuple.

// tupleIter yields binding frames.
type tupleIter func() (*Frame, bool, error)

type compiledClause struct {
	kind  expr.ClauseKind
	varID int
	posID int // -1 when absent
	typ   *xtypes.SequenceType
	in    seqFn
}

func (c *compiler) compileFlwor(n *expr.Flwor) (seqFn, error) {
	c.pushScope()
	defer c.popScope()

	clauses := make([]compiledClause, 0, len(n.Clauses))
	for _, cl := range n.Clauses {
		in, err := c.compile(cl.In)
		if err != nil {
			return nil, err
		}
		cc := compiledClause{kind: cl.Kind, in: in, posID: -1, typ: cl.Type}
		cc.varID = c.declare(cl.Var)
		if !cl.PosVar.IsZero() {
			cc.posID = c.declare(cl.PosVar)
		}
		clauses = append(clauses, cc)
	}
	var whereFn seqFn
	if n.Where != nil {
		fn, err := c.compile(n.Where)
		if err != nil {
			return nil, err
		}
		whereFn = fn
	}
	// Group-by: keys see the clause variables; the group variables come
	// into scope for order-by and return. All clause-bound variables
	// (including positional ones) are rebound per group.
	var groupSpecs []groupSpec
	var rebindIDs []int
	if len(n.Group) > 0 {
		for _, cc := range clauses {
			rebindIDs = append(rebindIDs, cc.varID)
			if cc.posID >= 0 {
				rebindIDs = append(rebindIDs, cc.posID)
			}
		}
		for _, g := range n.Group {
			key, err := c.compile(g.Key)
			if err != nil {
				return nil, err
			}
			groupSpecs = append(groupSpecs, groupSpec{varID: c.declare(g.Var), key: key})
		}
	}
	type orderKey struct {
		key        seqFn
		descending bool
		emptyLeast bool
	}
	var orderKeys []orderKey
	for _, o := range n.Order {
		fn, err := c.compile(o.Key)
		if err != nil {
			return nil, err
		}
		orderKeys = append(orderKeys, orderKey{fn, o.Descending, o.EmptyLeast})
	}
	retFn, err := c.compile(n.Ret)
	if err != nil {
		return nil, err
	}

	makeTuples := func(fr *Frame) tupleIter {
		tuples := baseTuple(fr)
		for i := range clauses {
			tuples = applyClause(tuples, &clauses[i])
		}
		if whereFn != nil {
			tuples = filterTuples(tuples, whereFn)
		}
		if len(groupSpecs) > 0 {
			tuples = applyGrouping(tuples, fr, groupSpecs, rebindIDs)
		}
		return tuples
	}

	if len(orderKeys) == 0 {
		fn := func(fr *Frame) Iter {
			tuples := makeTuples(fr)
			var cur Iter
			return iterFunc(func() (xdm.Item, bool, error) {
				for {
					if cur == nil {
						t, ok, err := tuples()
						if err != nil {
							return nil, false, err
						}
						if !ok {
							return nil, false, nil
						}
						cur = retFn(t)
					}
					it, ok, err := cur.Next()
					if err != nil {
						return nil, false, err
					}
					if ok {
						return it, true, nil
					}
					cur = nil
				}
			})
		}
		return c.tag("flwor", n, fn), nil
	}

	// Order-by path: materialize tuples and their keys.
	fn := func(fr *Frame) Iter {
		tuples := makeTuples(fr)
		type sortable struct {
			frame *Frame
			keys  []*xdm.Atomic // nil pointer = empty key
		}
		var rows []sortable
		for {
			t, ok, err := tuples()
			if err != nil {
				return errIter(err)
			}
			if !ok {
				break
			}
			row := sortable{frame: t}
			for _, ok := range orderKeys {
				a, present, err := atomizeSingle(ok.key(t))
				if err != nil {
					return errIter(err)
				}
				if present {
					if a.T == xdm.TUntyped {
						a = xdm.NewString(a.S)
					}
					av := a
					row.keys = append(row.keys, &av)
				} else {
					row.keys = append(row.keys, nil)
				}
			}
			rows = append(rows, row)
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		stableSortInts(idx, func(a, b int) bool {
			if sortErr != nil {
				return false
			}
			for k := range orderKeys {
				ka, kb := rows[a].keys[k], rows[b].keys[k]
				cmp, err := compareKeys(ka, kb, orderKeys[k].emptyLeast)
				if err != nil {
					sortErr = err
					return false
				}
				if cmp == 0 {
					continue
				}
				if orderKeys[k].descending {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if sortErr != nil {
			return errIter(sortErr)
		}
		pos := 0
		var cur Iter
		return iterFunc(func() (xdm.Item, bool, error) {
			for {
				if cur == nil {
					if pos >= len(idx) {
						return nil, false, nil
					}
					cur = retFn(rows[idx[pos]].frame)
					pos++
				}
				it, ok, err := cur.Next()
				if err != nil {
					return nil, false, err
				}
				if ok {
					return it, true, nil
				}
				cur = nil
			}
		})
	}
	return c.tag("flwor", n, fn), nil
}

// compareKeys orders two order-by keys; empty sequences order per
// empty-least/greatest.
func compareKeys(a, b *xdm.Atomic, emptyLeast bool) (int, error) {
	if a == nil && b == nil {
		return 0, nil
	}
	if a == nil {
		if emptyLeast {
			return -1, nil
		}
		return 1, nil
	}
	if b == nil {
		if emptyLeast {
			return 1, nil
		}
		return -1, nil
	}
	cmp, nan, err := xdm.OrderCompare(*a, *b)
	if err != nil {
		return 0, err
	}
	if nan {
		return 0, nil // NaN treated as equal for ordering stability
	}
	return cmp, nil
}

// stableSortInts is an insertion-based stable sort over an index slice
// (rows are typically modest; order-by over huge results materializes
// anyway). For large inputs it falls back to a merge sort.
func stableSortInts(idx []int, less func(a, b int) bool) {
	if len(idx) < 32 {
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		return
	}
	mid := len(idx) / 2
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid:]...)
	stableSortInts(left, less)
	stableSortInts(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			idx[k] = right[j]
			j++
		} else {
			idx[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		idx[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		idx[k] = right[j]
		j++
		k++
	}
}

// baseTuple yields the initial single tuple (the enclosing frame).
func baseTuple(fr *Frame) tupleIter {
	done := false
	return func() (*Frame, bool, error) {
		if done {
			return nil, false, nil
		}
		done = true
		return fr, true, nil
	}
}

// applyClause extends a tuple stream with one for/let clause.
func applyClause(tuples tupleIter, cl *compiledClause) tupleIter {
	if cl.kind == expr.LetClause {
		return func() (*Frame, bool, error) {
			t, ok, err := tuples()
			if err != nil || !ok {
				return nil, false, err
			}
			// Lazy binding: the clause input is not evaluated until the
			// variable is first used, and then memoized.
			val := NewLazySeq(cl.in(t))
			return t.bind(cl.varID, val), true, nil
		}
	}
	// for-clause: one tuple per item of the input sequence.
	var outer *Frame
	var inner Iter
	var pos int64
	return func() (*Frame, bool, error) {
		for {
			if inner == nil {
				t, ok, err := tuples()
				if err != nil || !ok {
					return nil, false, err
				}
				outer = t
				inner = cl.in(t)
				pos = 0
			}
			if err := outer.dyn.CheckInterrupt(); err != nil {
				return nil, false, err
			}
			it, ok, err := inner.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				inner = nil
				continue
			}
			pos++
			if cl.typ != nil && !cl.typ.Item.MatchesItem(it) {
				return nil, false, xdm.ErrType("for-variable item does not match %s", *cl.typ)
			}
			fr := outer.bind(cl.varID, MaterializedSeq(xdm.Sequence{it}))
			if cl.posID >= 0 {
				fr = fr.bind(cl.posID, MaterializedSeq(xdm.Sequence{xdm.NewInteger(pos)}))
			}
			return fr, true, nil
		}
	}
}

// filterTuples applies the where clause by effective boolean value.
func filterTuples(tuples tupleIter, whereFn seqFn) tupleIter {
	return func() (*Frame, bool, error) {
		for {
			t, ok, err := tuples()
			if err != nil || !ok {
				return nil, false, err
			}
			keep, err := ebvOf(whereFn(t))
			if err != nil {
				return nil, false, err
			}
			if keep {
				return t, true, nil
			}
		}
	}
}

func (c *compiler) compileQuantified(n *expr.Quantified) (seqFn, error) {
	c.pushScope()
	defer c.popScope()

	type qbind struct {
		id int
		in seqFn
	}
	binds := make([]qbind, 0, len(n.Binds))
	for _, b := range n.Binds {
		in, err := c.compile(b.In)
		if err != nil {
			return nil, err
		}
		binds = append(binds, qbind{id: c.declare(b.Var), in: in})
	}
	satFn, err := c.compile(n.Satisfies)
	if err != nil {
		return nil, err
	}
	every := n.Every
	fn := func(fr *Frame) Iter {
		tuples := baseTuple(fr)
		for i := range binds {
			cl := compiledClause{kind: expr.ForClause, varID: binds[i].id, posID: -1, in: binds[i].in}
			tuples = applyClauseQ(tuples, cl)
		}
		for {
			t, ok, err := tuples()
			if err != nil {
				return errIter(err)
			}
			if !ok {
				// every: vacuously true; some: false
				return singleIter(xdm.NewBoolean(every))
			}
			sat, err := ebvOf(satFn(t))
			if err != nil {
				return errIter(err)
			}
			if sat && !every {
				return singleIter(xdm.True) // early exit: lazy evaluation win
			}
			if !sat && every {
				return singleIter(xdm.False)
			}
		}
	}
	return c.tag("quantified", n, fn), nil
}

// applyClauseQ is applyClause for a value clause (quantifiers have no
// positional variables or type checks).
func applyClauseQ(tuples tupleIter, cl compiledClause) tupleIter {
	clCopy := cl
	return applyClause(tuples, &clCopy)
}
