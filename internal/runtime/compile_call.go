package runtime

import (
	"fmt"

	"xqgo/internal/expr"
	"xqgo/internal/functions"
	"xqgo/internal/xdm"
)

// Function calls. Built-ins receive materialized arguments, except for a
// short list of sequence predicates that the compiler wires to the lazy
// iterator protocol directly (fn:empty pulls one item, fn:count never
// materializes, ...) — the lazy-evaluation payoffs of E3.

const (
	fnNS  = "http://www.w3.org/2005/xpath-functions"
	xsNS  = "http://www.w3.org/2001/XMLSchema"
	xdtNS = "http://www.w3.org/2005/xpath-datatypes"
)

func (c *compiler) compileCall(n *expr.Call) (seqFn, error) {
	fn, err := c.compileCallRaw(n)
	if err != nil {
		return nil, err
	}
	return c.tag("call "+n.Name.String(), n, fn), nil
}

func (c *compiler) compileCallRaw(n *expr.Call) (seqFn, error) {
	// User-declared function?
	if uf, ok := c.funcs[funcKey(n.Name, len(n.Args))]; ok {
		return c.compileUserCall(n, uf)
	}
	// Constructor functions: xs:integer("42") etc. behave as "cast as T?".
	if n.Name.Space == xsNS || n.Name.Space == xdtNS {
		prefix := "xs:"
		if n.Name.Space == xdtNS {
			prefix = "xdt:"
		}
		tc, known := xdm.TypeByName(prefix + n.Name.Local)
		if !known || len(n.Args) != 1 {
			return nil, fmt.Errorf("%d:%d: unknown constructor function %s/%d",
				n.Span().Line, n.Span().Col, n.Name, len(n.Args))
		}
		return c.compileRaw(&expr.Cast{
			Base: expr.Base{P: n.Span()}, X: n.Args[0], T: tc, Optional: true,
		})
	}
	if n.Name.Space != fnNS && n.Name.Space != "" {
		return nil, fmt.Errorf("%d:%d: unknown function %s/%d",
			n.Span().Line, n.Span().Col, n.Name, len(n.Args))
	}
	local := n.Name.Local

	argFns := make([]seqFn, len(n.Args))
	for i, a := range n.Args {
		fn, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}

	// Lazy special forms.
	if fn, handled, err := c.lazyBuiltin(local, argFns); handled {
		return fn, err
	}

	// fn:position and fn:last read the focus.
	switch local {
	case "position":
		if len(argFns) != 0 {
			return nil, fmt.Errorf("fn:position takes no arguments")
		}
		return func(fr *Frame) Iter {
			if _, ok := fr.ContextItem(); !ok {
				return errIter(xdm.Errf("XPDY0002", "fn:position(): no context"))
			}
			return singleIter(xdm.NewInteger(fr.Position()))
		}, nil
	case "last":
		if len(argFns) != 0 {
			return nil, fmt.Errorf("fn:last takes no arguments")
		}
		return func(fr *Frame) Iter {
			n, err := fr.Size()
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewInteger(n))
		}, nil
	}

	f, err := functions.Lookup(local, len(n.Args))
	if err != nil {
		return nil, fmt.Errorf("%d:%d: %v", n.Span().Line, n.Span().Col, err)
	}
	if f == nil {
		return nil, fmt.Errorf("%d:%d: unknown function fn:%s",
			n.Span().Line, n.Span().Col, local)
	}
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		args := make([]xdm.Sequence, len(argFns))
		for i, afn := range argFns {
			seq, err := dr(fr, afn(fr))
			if err != nil {
				return errIter(err)
			}
			args[i] = seq
		}
		out, err := f.Call(fr, args)
		if err != nil {
			return errIter(err)
		}
		return newSliceIter(out)
	}, nil
}

// lazyBuiltin wires the sequence predicates that benefit from lazy inputs.
func (c *compiler) lazyBuiltin(local string, argFns []seqFn) (seqFn, bool, error) {
	switch local {
	case "empty", "exists":
		if len(argFns) != 1 {
			return nil, true, fmt.Errorf("fn:%s expects 1 argument", local)
		}
		wantEmpty := local == "empty"
		return func(fr *Frame) Iter {
			_, ok, err := argFns[0](fr).Next() // pull exactly one item
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewBoolean(ok == !wantEmpty))
		}, true, nil
	case "count":
		if len(argFns) != 1 {
			return nil, true, fmt.Errorf("fn:count expects 1 argument")
		}
		if c.opts.NoBatch {
			return func(fr *Frame) Iter {
				it := argFns[0](fr)
				n := int64(0)
				for {
					_, ok, err := it.Next()
					if err != nil {
						return errIter(err)
					}
					if !ok {
						return singleIter(xdm.NewInteger(n))
					}
					n++
				}
			}, true, nil
		}
		// Batched counting: the input is drained a chunk at a time without
		// ever materializing it; a source that knows its cardinality
		// (range, materialized slice) skips production entirely.
		return func(fr *Frame) Iter {
			it := argFns[0](fr)
			if sz, ok := it.(sizedIter); ok {
				if n, known := sz.remaining(); known {
					return singleIter(xdm.NewInteger(n))
				}
			}
			buf := fr.dyn.getBuf()
			n := int64(0)
			for {
				k, err := nextBatch(it, buf)
				if err != nil {
					fr.dyn.putBuf(buf)
					return errIter(err)
				}
				if k == 0 {
					fr.dyn.putBuf(buf)
					return singleIter(xdm.NewInteger(n))
				}
				n += int64(k)
			}
		}, true, nil
	case "not", "boolean":
		if len(argFns) != 1 {
			return nil, true, fmt.Errorf("fn:%s expects 1 argument", local)
		}
		negate := local == "not"
		return func(fr *Frame) Iter {
			b, err := ebvOf(argFns[0](fr))
			if err != nil {
				return errIter(err)
			}
			return singleIter(xdm.NewBoolean(b != negate))
		}, true, nil
	case "subsequence":
		if len(argFns) < 2 || len(argFns) > 3 {
			return nil, true, fmt.Errorf("fn:subsequence expects 2..3 arguments")
		}
		return func(fr *Frame) Iter {
			start, okS, err := atomizeSingle(argFns[1](fr))
			if err != nil || !okS {
				return errIter(xdm.ErrType("fn:subsequence: start required"))
			}
			from := int64(start.AsFloat() + 0.5)
			to := int64(1<<62 - 1)
			if len(argFns) == 3 {
				length, okL, err := atomizeSingle(argFns[2](fr))
				if err != nil || !okL {
					return errIter(xdm.ErrType("fn:subsequence: bad length"))
				}
				to = from + int64(length.AsFloat()+0.5) - 1
			}
			src := argFns[0](fr)
			pos := int64(0)
			return iterFunc(func() (xdm.Item, bool, error) {
				for {
					it, ok, err := src.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					pos++
					if pos > to {
						return nil, false, nil // early exit
					}
					if pos >= from {
						return it, true, nil
					}
				}
			})
		}, true, nil
	case "unordered":
		if len(argFns) != 1 {
			return nil, true, fmt.Errorf("fn:unordered expects 1 argument")
		}
		fn := argFns[0]
		return func(fr *Frame) Iter { return fn(fr) }, true, nil
	}
	return nil, false, nil
}

func (c *compiler) compileUserCall(n *expr.Call, uf *userFunc) (seqFn, error) {
	argFns := make([]seqFn, len(n.Args))
	for i, a := range n.Args {
		fn, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}
	decl := uf.decl
	if c.opts.MemoizeFunctions && c.memoizable(uf) {
		return c.compileMemoizedCall(n, uf, argFns), nil
	}
	return func(fr *Frame) Iter {
		// Bind parameters lazily; clear the focus (the context item is
		// undefined inside a function body).
		f2 := fr.barrier()
		for i, afn := range argFns {
			val := NewLazySeq(afn(fr))
			if decl.Params[i].Type != nil {
				seq, err := val.All()
				if err != nil {
					return errIter(err)
				}
				if !decl.Params[i].Type.Matches(seq) {
					return errIter(xdm.ErrType("argument $%s of %s does not match %s",
						decl.Params[i].Name, decl.Name, *decl.Params[i].Type))
				}
				val = MaterializedSeq(seq)
			}
			f2 = f2.bind(uf.paramIDs[i], val)
		}
		if uf.body == nil {
			return errIter(fmt.Errorf("function %s used before its body was compiled", decl.Name))
		}
		return uf.body(f2)
	}, nil
}

// compileMemoizedCall evaluates a pure user function with per-execution
// result caching. Arguments are materialized to build the cache key; calls
// with node arguments bypass the cache.
func (c *compiler) compileMemoizedCall(n *expr.Call, uf *userFunc, argFns []seqFn) seqFn {
	fkey := funcKey(n.Name, len(n.Args))
	decl := uf.decl
	dr := c.drainFor()
	return func(fr *Frame) Iter {
		args := make([]xdm.Sequence, len(argFns))
		for i, afn := range argFns {
			seq, err := dr(fr, afn(fr))
			if err != nil {
				return errIter(err)
			}
			args[i] = seq
		}
		key, cachable := memoKey(fkey, args)
		if cachable {
			if hit, ok := fr.dyn.base().memo.get(key); ok {
				fr.dyn.Prof.addMemoHit()
				return newSliceIter(hit)
			}
			fr.dyn.Prof.addMemoMiss()
		}
		f2 := fr.barrier()
		for i := range args {
			if decl.Params[i].Type != nil && !decl.Params[i].Type.Matches(args[i]) {
				return errIter(xdm.ErrType("argument $%s of %s does not match %s",
					decl.Params[i].Name, decl.Name, *decl.Params[i].Type))
			}
			f2 = f2.bind(uf.paramIDs[i], MaterializedSeq(args[i]))
		}
		if uf.body == nil {
			return errIter(fmt.Errorf("function %s used before its body was compiled", decl.Name))
		}
		out, err := dr(fr, uf.body(f2))
		if err != nil {
			return errIter(err)
		}
		if cachable {
			fr.dyn.base().memo.put(key, out)
		}
		return newSliceIter(out)
	}
}
