package runtime

import (
	"strings"
	"sync/atomic"
	"time"

	"xqgo/internal/expr"
	"xqgo/internal/optimizer"
	"xqgo/internal/xdm"
)

// Execution profiling. Operators are tagged at compile time with stable ids
// and source positions; a Profile attached to a Dynamic collects per-operator
// counters plus engine-wide totals for one execution. The design is
// zero-cost-when-off at two levels:
//
//   - Options.NoProfileHooks elides the tag wrappers entirely at compile
//     time, so a plan compiled for pure throughput carries no profiling code
//     at all (the benchmark-guard baseline).
//   - With hooks compiled in but Dynamic.Prof == nil (the default), each
//     operator instantiation pays one closure call plus one nil pointer
//     check — nothing per pulled item.
//
// All counters are atomic: the Parallel engine shares one Dynamic (and hence
// one Profile) across branch goroutines.

// OpInfo identifies one tagged operator of a compiled plan. EstItems is the
// static per-instantiation cardinality estimate (see estimate.go) that trace
// spans report against the observed item count.
type OpInfo struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EstItems int64  `json:"estItems"`
	// Strategy is the compile-time join-strategy policy of a path operator
	// ("auto", "navigation", …); empty for non-path operators. The strategy
	// actually chosen at run time is reported per execution (OpReport).
	Strategy string `json:"strategy,omitempty"`
}

// opCounters are the per-operator statistics of one execution.
type opCounters struct {
	starts atomic.Int64 // iterator instantiations
	items  atomic.Int64 // items produced
	nanos  atomic.Int64 // cumulative wall time inside Next (timed mode only)
	strat  atomic.Int32 // join strategy chosen this execution (0 = none)
}

// engineCounters are execution-wide totals maintained by engine internals.
type engineCounters struct {
	xmlTokens         atomic.Int64
	nodesMaterialized atomic.Int64
	memoHits          atomic.Int64
	memoMisses        atomic.Int64
	indexHits         atomic.Int64
	indexBuilds       atomic.Int64
	structJoins       atomic.Int64
	twigJoins         atomic.Int64
	interruptPolls    atomic.Int64

	// Plan choices resolved by join-eligible path operators this execution,
	// by winning strategy (once per operator × document, not per tuple).
	planNavigation atomic.Int64
	planBinaryJoin atomic.Int64
	planTwigJoin   atomic.Int64

	// Ingestion counters (lazy/projected parsing, see internal/xmlparse).
	docNodesBuilt atomic.Int64
	nodesSkipped  atomic.Int64
	bytesParsed   atomic.Int64

	// Streaming-evaluator counters (internal/streamexec): windows opened by
	// the spine automaton, results emitted from windows, the buffer-byte
	// high-water mark across executions (a max, not a sum), and executions
	// that requested stream mode but fell back to the store engine.
	streamWindows    atomic.Int64
	streamResults    atomic.Int64
	streamBufferPeak atomic.Int64
	streamFallbacks  atomic.Int64
}

// Profile collects execution statistics for one execution of a Prepared
// query. Create one with Prepared.NewProfile and attach it to the Dynamic
// before executing; read it with Report afterwards. A Profile must not be
// reused across Prepared plans (operator ids are plan-specific), but may be
// shared by concurrent executions of the same plan to aggregate them.
type Profile struct {
	timed bool
	infos []OpInfo
	ops   []opCounters
	c     engineCounters
}

// NewProfile creates a profile sized for this plan's tagged operators. With
// timed set, every instrumented Next call is wall-clock timed (use for
// explain output); without, only counters are maintained (the cheap mode the
// service layer uses for always-on accounting). Per-operator times are
// inclusive: a FLWOR's time contains the time of the operators it pulls from.
func (p *Prepared) NewProfile(timed bool) *Profile {
	return &Profile{timed: timed, infos: p.ops, ops: make([]opCounters, len(p.ops))}
}

// instrument wraps an operator's iterator with counting (and, in timed mode,
// wall-clock timing). The wrapper forwards batch pulls, so a vectorized
// operator under profiling bumps its counters once per batch, not per item.
func (p *Profile) instrument(id int, src Iter) Iter {
	op := &p.ops[id]
	op.starts.Add(1)
	return &profIter{op: op, src: src, timed: p.timed}
}

// profIter is the profiling wrapper around one operator instantiation.
type profIter struct {
	op    *opCounters
	src   Iter
	timed bool
}

func (p *profIter) Next() (xdm.Item, bool, error) {
	if !p.timed {
		it, ok, err := p.src.Next()
		if ok {
			p.op.items.Add(1)
		}
		return it, ok, err
	}
	t0 := time.Now()
	it, ok, err := p.src.Next()
	p.op.nanos.Add(int64(time.Since(t0)))
	if ok {
		p.op.items.Add(1)
	}
	return it, ok, err
}

// NextBatch implements BatchIter: one counter update per batch.
func (p *profIter) NextBatch(buf []xdm.Item) (int, error) {
	if !p.timed {
		n, err := nextBatch(p.src, buf)
		if n > 0 {
			p.op.items.Add(int64(n))
		}
		return n, err
	}
	t0 := time.Now()
	n, err := nextBatch(p.src, buf)
	p.op.nanos.Add(int64(time.Since(t0)))
	if n > 0 {
		p.op.items.Add(int64(n))
	}
	return n, err
}

// The engine-counter adders below are nil-safe so call sites on the hot path
// stay a single method call guarding on the receiver.

func (p *Profile) addXMLTokens(n int64) {
	if p != nil {
		p.c.xmlTokens.Add(n)
	}
}

func (p *Profile) addNodesMaterialized(n int64) {
	if p != nil {
		p.c.nodesMaterialized.Add(n)
	}
}

func (p *Profile) addMemoHit() {
	if p != nil {
		p.c.memoHits.Add(1)
	}
}

func (p *Profile) addMemoMiss() {
	if p != nil {
		p.c.memoMisses.Add(1)
	}
}

func (p *Profile) addIndexHit() {
	if p != nil {
		p.c.indexHits.Add(1)
	}
}

func (p *Profile) addIndexBuild() {
	if p != nil {
		p.c.indexBuilds.Add(1)
	}
}

func (p *Profile) addStructJoin() {
	if p != nil {
		p.c.structJoins.Add(1)
	}
}

func (p *Profile) addTwigJoin() {
	if p != nil {
		p.c.twigJoins.Add(1)
	}
}

// notePlanChoice records the join strategy a path operator resolved to:
// once on the operator's row (for explain output) and once on the
// execution-wide per-strategy totals (for the /metrics counter).
func (p *Profile) notePlanChoice(id int, s optimizer.Strategy) {
	if p == nil {
		return
	}
	if id >= 0 && id < len(p.ops) {
		p.ops[id].strat.Store(int32(s))
	}
	switch s {
	case optimizer.StrategyNavigation:
		p.c.planNavigation.Add(1)
	case optimizer.StrategyBinaryJoin:
		p.c.planBinaryJoin.Add(1)
	case optimizer.StrategyTwigJoin:
		p.c.planTwigJoin.Add(1)
	}
}

func (p *Profile) addInterruptPoll() {
	if p != nil {
		p.c.interruptPolls.Add(1)
	}
}

func (p *Profile) addDocNodesBuilt(n int64) {
	if p != nil {
		p.c.docNodesBuilt.Add(n)
	}
}

func (p *Profile) addNodesSkipped(n int64) {
	if p != nil {
		p.c.nodesSkipped.Add(n)
	}
}

func (p *Profile) addBytesParsed(n int64) {
	if p != nil {
		p.c.bytesParsed.Add(n)
	}
}

// The stream-evaluator adders are exported: internal/streamexec maintains
// them from outside the package. All remain nil-safe.

// AddStreamWindows counts windows opened by the streaming evaluator.
func (p *Profile) AddStreamWindows(n int64) {
	if p != nil {
		p.c.streamWindows.Add(n)
	}
}

// AddStreamResults counts results emitted by the streaming evaluator.
func (p *Profile) AddStreamResults(n int64) {
	if p != nil {
		p.c.streamResults.Add(n)
	}
}

// NoteStreamBufferPeak raises the buffer-byte high-water mark (a max-merge:
// concurrent executions sharing a profile keep the largest peak).
func (p *Profile) NoteStreamBufferPeak(n int64) {
	if p == nil {
		return
	}
	for {
		cur := p.c.streamBufferPeak.Load()
		if n <= cur || p.c.streamBufferPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// AddStreamFallback counts a stream-mode execution that fell back to the
// store engine (store-required plan or unusable input).
func (p *Profile) AddStreamFallback() {
	if p != nil {
		p.c.streamFallbacks.Add(1)
	}
}

// AddXMLTokens counts serialized/parsed tokens from outside the package
// (streamexec batches its output-token accounting through this).
func (p *Profile) AddXMLTokens(n int64) { p.addXMLTokens(n) }

// shard creates a per-worker slice of this profile for morsel execution:
// the same operator table with private counter rows, so parallel workers
// never contend on the parent's cache lines. Fold the shard back with
// foldShard when the worker retires. Nil-safe: a nil profile shards to nil,
// keeping profiling free when off.
func (p *Profile) shard() *Profile {
	if p == nil {
		return nil
	}
	return &Profile{timed: p.timed, infos: p.infos, ops: make([]opCounters, len(p.ops))}
}

// foldShard folds a worker shard created by shard back into this profile.
// Unlike the cross-plan Merge, a shard shares this profile's plan and hence
// its operator ids, so operator rows add row-wise; engine-wide counters
// fold through Merge (which max-merges the stream buffer peak).
func (p *Profile) foldShard(sh *Profile) {
	if p == nil || sh == nil {
		return
	}
	for i := range sh.ops {
		o := &sh.ops[i]
		if v := o.starts.Load(); v != 0 {
			p.ops[i].starts.Add(v)
		}
		if v := o.items.Load(); v != 0 {
			p.ops[i].items.Add(v)
		}
		if v := o.nanos.Load(); v != 0 {
			p.ops[i].nanos.Add(v)
		}
		if v := o.strat.Load(); v != 0 {
			p.ops[i].strat.Store(v)
		}
	}
	p.Merge(sh.Report().Counters)
}

// Merge folds another execution's engine-wide counter totals into this
// profile. Operator rows cannot merge across profiles — operator ids are
// plan-specific — so only the CounterReport section transfers; the buffer
// peak is max-merged like NoteStreamBufferPeak. Use when a sub-execution
// (a streaming residual plan, a store-fallback subscription) profiled under
// its own plan-sized profile and its totals belong to the request's profile.
func (p *Profile) Merge(c CounterReport) {
	if p == nil {
		return
	}
	p.c.xmlTokens.Add(c.XMLTokens)
	p.c.nodesMaterialized.Add(c.NodesMaterialized)
	p.c.memoHits.Add(c.MemoHits)
	p.c.memoMisses.Add(c.MemoMisses)
	p.c.indexHits.Add(c.IndexHits)
	p.c.indexBuilds.Add(c.IndexBuilds)
	p.c.structJoins.Add(c.StructJoins)
	p.c.twigJoins.Add(c.TwigJoins)
	p.c.interruptPolls.Add(c.InterruptPolls)
	p.c.planNavigation.Add(c.PlanNavigation)
	p.c.planBinaryJoin.Add(c.PlanBinaryJoin)
	p.c.planTwigJoin.Add(c.PlanTwigJoin)
	p.c.docNodesBuilt.Add(c.DocNodesBuilt)
	p.c.nodesSkipped.Add(c.NodesSkipped)
	p.c.bytesParsed.Add(c.BytesParsedOnDemand)
	p.c.streamWindows.Add(c.StreamWindows)
	p.c.streamResults.Add(c.StreamResults)
	p.c.streamFallbacks.Add(c.StreamFallbacks)
	p.NoteStreamBufferPeak(c.StreamBufferPeakBytes)
}

// OpReport is the per-operator row of a profile report. EstItems is the
// static cardinality estimate per instantiation; compare against
// Items/Starts for the observed mean.
type OpReport struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Starts   int64  `json:"starts"`
	Items    int64  `json:"items"`
	Nanos    int64  `json:"nanos,omitempty"`
	EstItems int64  `json:"estItems"`
	// Strategy is the join strategy this path operator resolved to during
	// the execution ("navigation", "binary-join", "twig-join"); empty for
	// operators that made no such choice.
	Strategy string `json:"strategy,omitempty"`
}

// CounterReport is the engine-wide counter section of a profile report.
type CounterReport struct {
	XMLTokens         int64 `json:"xmlTokens"`
	NodesMaterialized int64 `json:"nodesMaterialized"`
	MemoHits          int64 `json:"memoHits"`
	MemoMisses        int64 `json:"memoMisses"`
	IndexHits         int64 `json:"indexHits"`
	IndexBuilds       int64 `json:"indexBuilds"`
	StructJoins       int64 `json:"structJoins"`
	TwigJoins         int64 `json:"twigJoins"`
	InterruptPolls    int64 `json:"interruptPolls"`
	// Plan choices resolved by join-eligible path operators, by winner.
	PlanNavigation int64 `json:"planNavigation"`
	PlanBinaryJoin int64 `json:"planBinaryJoin"`
	PlanTwigJoin   int64 `json:"planTwigJoin"`
	// Ingestion: nodes appended to lazily parsed documents, nodes skipped
	// by projection (tokenized but never built), and input bytes pulled on
	// demand.
	DocNodesBuilt       int64 `json:"docNodesBuilt"`
	NodesSkipped        int64 `json:"nodesSkipped"`
	BytesParsedOnDemand int64 `json:"bytesParsedOnDemand"`
	// Streaming evaluator (internal/streamexec). StreamBufferPeakBytes is a
	// high-water mark, not a running total.
	StreamWindows         int64 `json:"streamWindows"`
	StreamResults         int64 `json:"streamResults"`
	StreamBufferPeakBytes int64 `json:"streamBufferPeakBytes"`
	StreamFallbacks       int64 `json:"streamFallbacks"`
}

// Report is a point-in-time snapshot of a Profile.
type Report struct {
	Timed     bool          `json:"timed"`
	Operators []OpReport    `json:"operators"`
	Counters  CounterReport `json:"counters"`
}

// Report snapshots the profile. Only operators that actually started at
// least once are included; rows appear in compile (plan) order.
func (p *Profile) Report() Report {
	rep := Report{Timed: p.timed}
	for i := range p.ops {
		op := &p.ops[i]
		starts := op.starts.Load()
		if starts == 0 {
			continue
		}
		info := p.infos[i]
		row := OpReport{
			ID: info.ID, Kind: info.Kind, Detail: info.Detail,
			Line: info.Line, Col: info.Col,
			Starts: starts, Items: op.items.Load(), Nanos: op.nanos.Load(),
			EstItems: info.EstItems,
		}
		if s := op.strat.Load(); s != 0 {
			row.Strategy = optimizer.Strategy(s).String()
		}
		rep.Operators = append(rep.Operators, row)
	}
	rep.Counters = CounterReport{
		XMLTokens:             p.c.xmlTokens.Load(),
		NodesMaterialized:     p.c.nodesMaterialized.Load(),
		MemoHits:              p.c.memoHits.Load(),
		MemoMisses:            p.c.memoMisses.Load(),
		IndexHits:             p.c.indexHits.Load(),
		IndexBuilds:           p.c.indexBuilds.Load(),
		StructJoins:           p.c.structJoins.Load(),
		TwigJoins:             p.c.twigJoins.Load(),
		InterruptPolls:        p.c.interruptPolls.Load(),
		PlanNavigation:        p.c.planNavigation.Load(),
		PlanBinaryJoin:        p.c.planBinaryJoin.Load(),
		PlanTwigJoin:          p.c.planTwigJoin.Load(),
		DocNodesBuilt:         p.c.docNodesBuilt.Load(),
		NodesSkipped:          p.c.nodesSkipped.Load(),
		BytesParsedOnDemand:   p.c.bytesParsed.Load(),
		StreamWindows:         p.c.streamWindows.Load(),
		StreamResults:         p.c.streamResults.Load(),
		StreamBufferPeakBytes: p.c.streamBufferPeak.Load(),
		StreamFallbacks:       p.c.streamFallbacks.Load(),
	}
	return rep
}

// Operators returns the plan's tagged operator inventory (empty when the
// plan was compiled with NoProfileHooks).
func (p *Prepared) Operators() []OpInfo { return p.ops }

// tag registers an operator under a stable id and wraps its compiled form
// with the profiling hook. With NoProfileHooks the function is returned
// untouched and no id is allocated.
func (c *compiler) tag(kind string, e expr.Expr, fn seqFn) seqFn {
	fn, _ = c.tagID(kind, e, fn)
	return fn
}

// tagID is tag, additionally returning the allocated operator id (-1 when
// NoProfileHooks elides the wrapper). Path compilation uses the id to key
// the cardinality-feedback cache and to attribute plan choices to the row.
func (c *compiler) tagID(kind string, e expr.Expr, fn seqFn) (seqFn, int) {
	if c.opts.NoProfileHooks {
		return fn, -1
	}
	id := len(c.ops)
	pos := e.Span()
	c.ops = append(c.ops, OpInfo{
		ID: id, Kind: kind, Detail: exprSummary(e), Line: pos.Line, Col: pos.Col,
		EstItems: estimate(e),
	})
	c.opExpr = append(c.opExpr, e)
	return func(fr *Frame) Iter {
		p := fr.dyn.Prof
		if p == nil {
			return fn(fr)
		}
		return p.instrument(id, fn(fr))
	}, id
}

// exprSummary renders a compact single-line summary of an expression for
// operator rows and rewrite traces.
func exprSummary(e expr.Expr) string {
	s := strings.Join(strings.Fields(expr.String(e)), " ")
	if r := []rune(s); len(r) > 60 {
		s = string(r[:57]) + "..."
	}
	return s
}
