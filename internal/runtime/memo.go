package runtime

import (
	"strings"
	"sync"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// Function-call memoization — the paper's "Memoization: cache results of
// expressions" slide (intra-query caching; Diao et al. 2004) and open
// problem #4. When Options.MemoizeFunctions is set, calls to *cachable*
// user functions (deterministic bodies that construct no nodes) are cached
// per execution, keyed by the function and its atomized arguments. Calls
// whose arguments contain nodes are evaluated normally: node identity would
// make the cache key unsound across documents.

// memoCache lives on the dynamic context: one cache per execution.
type memoCache struct {
	mu sync.Mutex
	m  map[string]xdm.Sequence
}

func (c *memoCache) get(key string) (xdm.Sequence, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return nil, false
	}
	v, ok := c.m[key]
	return v, ok
}

func (c *memoCache) put(key string, v xdm.Sequence) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]xdm.Sequence)
	}
	c.m[key] = v
}

// nondeterministicCalls lists built-ins whose results vary between calls or
// have side effects; a function body touching one is never memoized.
var nondeterministicCalls = map[string]bool{
	"current-dateTime": true, "current-date": true, "current-time": true,
	"trace": true,
}

// memoizable reports whether a declared function's results may be cached:
// the body must not construct nodes (fresh identities every call) and must
// not call nondeterministic built-ins.
func (c *compiler) memoizable(uf *userFunc) bool {
	if expr.CreatesNodes(uf.decl.Body, func(call *expr.Call) bool {
		return c.funcCreatesNodes(call)
	}) {
		return false
	}
	impure := false
	expr.Walk(uf.decl.Body, func(x expr.Expr) bool {
		if call, ok := x.(*expr.Call); ok && nondeterministicCalls[call.Name.Local] {
			impure = true
			return false
		}
		return true
	})
	return !impure
}

// memoKey builds a cache key from materialized arguments; ok=false when any
// item is a node (uncachable).
func memoKey(fkey string, args []xdm.Sequence) (string, bool) {
	var b strings.Builder
	b.WriteString(fkey)
	for _, arg := range args {
		b.WriteByte('\x01')
		for _, it := range arg {
			a, isAtomic := it.(xdm.Atomic)
			if !isAtomic {
				return "", false
			}
			b.WriteByte('\x02')
			b.WriteString(a.T.String())
			b.WriteByte('|')
			b.WriteString(a.Lexical())
		}
	}
	return b.String(), true
}
