package runtime

import (
	"strings"
	"testing"

	"xqgo/internal/serializer"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
	"xqgo/internal/xqparse"
)

// evalQuery compiles and evaluates a query against the sample bib document
// bound as the context item, returning the serialized result.
func evalQuery(t *testing.T, src string, opts Options) (string, error) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := Compile(q, opts)
	if err != nil {
		return "", err
	}
	seq, err := p.Eval(testDynamic(t))
	if err != nil {
		return "", err
	}
	return serializer.SequenceToString(seq)
}

const testBib = `<bib><book year="1994"><title>TCP/IP Illustrated</title><author><last>Stevens</last><first>W.</first></author><price>65.95</price></book><book year="2000"><title>Data on the Web</title><author><last>Abiteboul</last><first>Serge</first></author><author><last>Buneman</last><first>Peter</first></author><price>39.95</price></book><book year="1999"><title>Economics</title><price>129.95</price></book></bib>`

func testDynamic(t *testing.T) *Dynamic {
	t.Helper()
	doc, err := xmlparse.ParseString(testBib, xmlparse.Options{URI: "bib.xml"})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewDocRegistry(false)
	reg.Register("bib.xml", doc.RootNode())
	return &Dynamic{
		ContextItem: doc.RootNode(),
		Resolver:    reg,
		Vars: map[string]xdm.Sequence{
			"three": {xdm.NewInteger(3)},
			"word":  {xdm.NewString("hello")},
		},
	}
}

// semanticsCases is the core language table; every case runs on both the
// streaming and the eager engine and must agree.
var semanticsCases = []struct {
	name string
	q    string
	want string
}{
	// sequences
	{"comma-flatten", `(1, 2, (3, 4))`, `1 2 3 4`},
	{"singleton-is-item", `(1)`, `1`},
	{"empty-parens", `()`, ``},
	{"range", `1 to 4`, `1 2 3 4`},
	{"range-empty", `3 to 1`, ``},
	{"range-single", `2 to 2`, `2`},
	{"range-empty-operand", `() to 3`, ``},

	// arithmetic (the paper's rules)
	{"add", `1 + 4`, `5`},
	{"div-decimal", `5 div 2`, `2.5`},
	{"idiv", `7 idiv 2`, `3`},
	{"mod", `7 mod 3`, `1`},
	{"precedence", `1 - 4 * 8.5`, `-33`},
	{"neg", `-(2 + 3)`, `-5`},
	{"empty-arith", `() + 1`, ``},
	{"untyped-arith", `<a>42</a> + 1`, `43`},
	{"decimal-exact", `0.1 + 0.2`, `0.3`},

	// comparisons
	{"value-eq", `1 eq 1`, `true`},
	{"value-lt-string", `"abc" lt "abd"`, `true`},
	{"general-existential", `(1, 3) = (3, 5)`, `true`},
	{"general-existential-false", `(1, 2) = (3, 5)`, `false`},
	{"general-lt-nontransitive", `(1, 3) = (1, 2)`, `true`},
	{"empty-value-comp", `() eq 42`, ``},
	{"empty-general-comp", `() = 42`, `false`},
	{"untyped-vs-number", `<a>42</a> = 42`, `true`},
	{"untyped-vs-string-eq", `<a>42</a> eq "42"`, `true`},
	{"two-elem-eq", `<a>42</a> eq <b>42</b>`, `true`},
	{"two-elem-eq-ws", `<a>42</a> eq <b> 42</b>`, `false`},
	{"node-is-self", `let $x := <a/> return $x is $x`, `true`},
	{"node-is-not", `<a/> is <a/>`, `false`},
	{"node-order", `let $d := <r><a/><b/></r> return ($d/a << $d/b, $d/b << $d/a)`, `true false`},

	// logic (2-valued, short-circuit)
	{"and", `1 eq 1 and 2 eq 2`, `true`},
	{"or", `1 eq 2 or 2 eq 2`, `true`},
	{"ebv-empty", `() or false()`, `false`},
	{"ebv-string", `"x" and true()`, `true`},
	{"ebv-zero", `0 or false()`, `false`},
	{"false-and-error", `1 eq 2 and (1 idiv 0 eq 1)`, `false`},
	{"true-or-error", `1 eq 1 or (1 idiv 0 eq 1)`, `true`},
	{"not", `fn:not(1 eq 2)`, `true`},

	// conditionals: only the taken branch may raise errors
	{"if-then", `if (1 eq 1) then "yes" else "no"`, `yes`},
	{"if-else", `if (1 eq 2) then "yes" else "no"`, `no`},
	{"if-error-untaken", `if (1 eq 1) then "safe" else 1 idiv 0`, `safe`},

	// paths over the bib document
	{"abs-path", `count(/bib/book)`, `3`},
	{"path-text", `string(/bib/book[1]/title)`, `TCP/IP Illustrated`},
	{"attr-step", `/bib/book[1]/@year/data(.)`, `1994`},
	{"descendant", `count(//author)`, `3`},
	{"descendant-named", `count(//last)`, `3`},
	{"wildcard", `count(/bib/book[2]/*)`, `4`},
	{"parent", `string((//last)[1]/../../title)`, `TCP/IP Illustrated`},
	{"pred-value", `count(/bib/book[price > 50])`, `2`},
	{"pred-position", `string(/bib/book[2]/title)`, `Data on the Web`},
	{"pred-last", `string(/bib/book[last()]/title)`, `Economics`},
	{"pred-position-fn", `string(/bib/book[position() ge 2][1]/title)`, `Data on the Web`},
	{"chained-preds", `count(/bib/book[price > 30][2])`, `1`},
	{"ancestor", `count((//first)[1]/ancestor::*)`, `3`},
	{"ancestor-or-self", `count((//first)[1]/ancestor-or-self::*)`, `4`},
	{"self-test", `count(/bib/book/self::book)`, `3`},
	{"following-sibling", `count(/bib/book[1]/following-sibling::book)`, `2`},
	{"preceding-sibling", `count(/bib/book[3]/preceding-sibling::book)`, `2`},
	{"path-doc-order", `for $n in (/bib/book[2], /bib/book[1])/title return string($n)`,
		`TCP/IP Illustrated Data on the Web`},
	{"path-dedup", `count((/bib/book, /bib/book)/title)`, `3`},
	{"kind-test-text", `count(/bib/book[1]/title/text())`, `1`},
	{"root-fn", `count(/)`, `1`},
	{"atomic-rhs-path", `/bib/book[1]/string(title)`, `TCP/IP Illustrated`},

	// FLWOR
	{"for-return", `for $i in (1 to 3) return $i * $i`, `1 4 9`},
	{"for-two-vars", `for $i in (1, 2), $j in (10, 20) return $i + $j`, `11 21 12 22`},
	{"let", `let $x := (1, 2, 3) return count($x)`, `3`},
	{"let-shadow", `let $x := 1 return (let $x := 2 return $x)`, `2`},
	{"where", `for $b in /bib/book where $b/@year = 2000 return string($b/title)`, `Data on the Web`},
	{"positional-var", `for $b at $i in /bib/book return concat($i, ":", $b/@year)`,
		`1:1994 2:2000 3:1999`},
	{"order-by", `for $b in /bib/book order by xs:decimal($b/price) return string($b/price)`,
		`39.95 65.95 129.95`},
	{"order-by-desc", `for $b in /bib/book order by xs:decimal($b/price) descending return string($b/price)`,
		`129.95 65.95 39.95`},
	{"order-by-string", `for $w in ("pear", "apple", "fig") order by $w return $w`,
		`apple fig pear`},
	{"order-by-two-keys", `for $b in /bib/book order by count($b/author), xs:decimal($b/price) return string($b/@year)`,
		`1999 1994 2000`},
	{"order-stable", `for $b at $i in /bib/book order by 1 return $i`, `1 2 3`},
	{"order-empty-least", `for $p in (1, 2, 3) order by (if ($p eq 2) then () else $p) empty least return $p`, `2 1 3`},
	{"order-empty-greatest", `for $p in (1, 2, 3) order by (if ($p eq 2) then () else $p) return $p`, `1 3 2`},
	{"nested-flwor", `for $x in (1,2) return for $y in (3,4) return $x*$y`, `3 4 6 8`},

	// quantifiers
	{"some-true", `some $x in (1, 2, 3) satisfies $x eq 2`, `true`},
	{"some-false", `some $x in (1, 2, 3) satisfies $x eq 9`, `false`},
	{"every-true", `every $x in (1, 2, 3) satisfies $x lt 10`, `true`},
	{"every-false", `every $x in (1, 2, 3) satisfies $x lt 3`, `false`},
	{"some-empty", `some $x in () satisfies $x eq 1`, `false`},
	{"every-empty", `every $x in () satisfies $x eq 1`, `true`},
	{"two-var-quantifier", `some $x in (1,2), $y in (2,3) satisfies $x eq $y`, `true`},

	// typeswitch / instance of / cast / treat
	{"instance-int", `3 instance of xs:integer`, `true`},
	{"instance-derived", `3 instance of xs:decimal`, `true`},
	{"instance-star", `(1, 2) instance of xs:integer*`, `true`},
	{"instance-card", `(1, 2) instance of xs:integer`, `false`},
	{"instance-node", `<a/> instance of element()`, `true`},
	{"instance-named", `<a/> instance of element(a)`, `true`},
	{"instance-named-no", `<a/> instance of element(b)`, `false`},
	{"instance-empty", `() instance of empty-sequence()`, `true`},
	{"typeswitch-case", `typeswitch (3) case xs:string return "s" case xs:integer return "i" default return "d"`, `i`},
	{"typeswitch-default", `typeswitch (<a/>) case xs:string return "s" default return "d"`, `d`},
	{"typeswitch-var", `typeswitch ((1,2)) case $v as xs:integer+ return count($v) default return 0`, `2`},
	{"cast", `"42" cast as xs:integer`, `42`},
	{"cast-optional-empty", `() cast as xs:integer?`, ``},
	{"castable", `"42" castable as xs:integer`, `true`},
	{"castable-no", `"x" castable as xs:integer`, `false`},
	{"treat-ok", `(3 treat as xs:integer) + 1`, `4`},
	{"constructor-fn", `xs:integer("17") + 1`, `18`},
	{"constructor-fn-decimal", `xs:decimal(/bib/book[2]/price) lt 50`, `true`},

	// set operations
	{"union-dedup-order", `let $d := <r><a/><b/></r> return count(($d/b, $d/a) union ($d/a))`, `2`},
	{"intersect", `let $d := <r><a/><b/></r> let $all := $d/* return count($all intersect $d/a)`, `1`},
	{"except", `let $d := <r><a/><b/></r> let $all := $d/* return count($all except $d/a)`, `1`},

	// constructors
	{"direct-elem", `<a x="1">t</a>`, `<a x="1">t</a>`},
	{"enclosed-content", `<a>{1 + 1}</a>`, `<a>2</a>`},
	{"adjacent-atomics-space", `<a>{1, 2, 3}</a>`, `<a>1 2 3</a>`},
	{"literal-no-space", `<a>x{1}{2}</a>`, `<a>x12</a>`},
	{"attr-template", `<a b="v{1+1}w"/>`, `<a b="v2w"/>`},
	{"computed-elem", `element foo { attribute bar {"b"}, "body" }`, `<foo bar="b">body</foo>`},
	{"computed-name", `element {concat("a","b")} {}`, `<ab/>`},
	{"text-ctor", `<a>{text {"T"}}</a>`, `<a>T</a>`},
	{"comment-ctor", `<a>{comment {"c"}}</a>`, `<a><!--c--></a>`},
	{"pi-ctor", `<a>{processing-instruction tgt {"d"}}</a>`, `<a><?tgt d?></a>`},
	{"copy-node", `<w>{/bib/book[1]/title}</w>`, `<w><title>TCP/IP Illustrated</title></w>`},
	{"copy-attribute", `<w>{/bib/book[1]/@year}</w>`, `<w year="1994"/>`},
	{"constructed-identity", `count(distinct-nodes((<a/>, <a/>)))`, `2`},
	{"construction-side-effect", `let $x := <a/> return count(distinct-nodes(($x, $x)))`, `1`},
	{"doc-ctor", `count(document { <a/> }/a)`, `1`},
	{"nested-constructors", `<o>{for $b in /bib/book return <t>{string($b/title)}</t>}</o>`,
		`<o><t>TCP/IP Illustrated</t><t>Data on the Web</t><t>Economics</t></o>`},

	// functions
	{"user-function", `declare function local:sq($x as xs:integer) as xs:integer { $x * $x }; local:sq(7)`, `49`},
	{"recursion", `declare function local:fact($n as xs:integer) as xs:integer { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)`, `720`},
	{"mutual-recursion", `
	  declare function local:even($n) { if ($n eq 0) then true() else local:odd($n - 1) };
	  declare function local:odd($n) { if ($n eq 0) then false() else local:even($n - 1) };
	  local:even(10)`, `true`},
	{"function-no-context", `declare function local:f() { 42 }; /bib/local:f()`, `42`},

	// external variables & prolog vars
	{"external-var", `declare variable $three external; $three + 1`, `4`},
	{"external-string", `declare variable $word external; concat($word, "!")`, `hello!`},
	{"global-var", `declare variable $g := 2 * 21; $g`, `42`},
	{"global-var-chain", `declare variable $a := 2; declare variable $b := $a * 3; $b`, `6`},

	// fn:doc
	{"doc-fn", `count(doc("bib.xml")//book)`, `3`},
	{"document-fn", `count(document("bib.xml")//book)`, `3`},

	// namespaces end to end
	{"ns-wildcard-local", `declare namespace n = "urn:n";
	  count(<r><n:a/><n:b/><c/></r>/n:*)`, `2`},
	{"ns-wildcard-space", `declare namespace n = "urn:n";
	  count(<r><n:a/><a/></r>/*:a)`, `2`},
	{"ns-exact", `declare namespace n = "urn:n";
	  count(<r><n:a/><a/></r>/n:a)`, `1`},
	{"ns-attr", `declare namespace n = "urn:n";
	  string(<e n:x="v"/>/@n:x)`, `v`},

	// kind tests and extra axes
	{"comment-nav", `string(<r><!--hello--></r>/comment())`, `hello`},
	{"pi-nav", `string(<r>{processing-instruction t {"data"}}</r>/processing-instruction())`, `data`},
	{"pi-nav-named", `count(<r>{processing-instruction t {"d"}}</r>/processing-instruction(other))`, `0`},
	{"attr-kind-test", `count(<e a="1" b="2"/>/@*)`, `2`},
	{"element-kind-test", `count(<r><a/>text<b/></r>/element())`, `2`},
	{"document-node-test", `count(document { <a/> }/self::document-node())`, `1`},

	// castable with occurrence
	{"castable-empty-opt", `() castable as xs:integer?`, `true`},
	{"castable-empty", `() castable as xs:integer`, `false`},

	// date arithmetic through queries
	{"date-sub", `string(xs:date("2004-09-16") - xs:date("2004-09-14"))`, `P2D`},
	{"duration-mul", `string(xdt:dayTimeDuration("PT30M") * 4)`, `PT2H`},
	{"date-component", `year-from-date(xs:date("1967-01-02"))`, `1967`},

	// deep-equal through queries
	{"deep-equal-trees", `deep-equal(<a x="1"><b>t</b></a>, <a x="1"><b>t</b></a>)`, `true`},
	{"deep-equal-differs", `deep-equal(<a><b>t</b></a>, <a><b>u</b></a>)`, `false`},

	// typeswitch over nodes
	{"typeswitch-elem", `typeswitch (<a/>) case element(b) return "b" case element(a) return "a" default return "d"`, `a`},
	{"typeswitch-attr", `typeswitch (<e x="1"/>/@x) case attribute() return "attr" default return "d"`, `attr`},

	// fn:root and tree membership
	{"fn-root", `let $d := <r><a><b/></a></r> return ($d/a/b/fn:root(.) is $d)`, `true`},

	// string-function pipeline
	{"string-pipeline", `upper-case(normalize-space("  mixed   Case "))`, `MIXED CASE`},
	{"tokenize-count", `count(tokenize("a,b,,c", ","))`, `4`},

	// nested predicate with arithmetic position
	{"computed-position", `(10 to 20)[. mod 3 eq 0]`, `12 15 18`},
	{"position-arith", `string-join(for $x in ("a","b","c","d")[position() gt 2] return $x, "")`, `cd`},
}

func TestSemantics(t *testing.T) {
	for _, engine := range []struct {
		name string
		opts Options
	}{
		{"streaming", Options{}},
		{"eager", Options{Eager: true}},
	} {
		engine := engine
		t.Run(engine.name, func(t *testing.T) {
			for _, c := range semanticsCases {
				c := c
				t.Run(c.name, func(t *testing.T) {
					got, err := evalQuery(t, c.q, engine.opts)
					if err != nil {
						t.Fatalf("eval: %v", err)
					}
					if got != c.want {
						t.Errorf("got %q, want %q", got, c.want)
					}
				})
			}
		})
	}
}

// errorCases must raise dynamic errors with the right err: codes.
func TestDynamicErrors(t *testing.T) {
	cases := []struct {
		name string
		q    string
		code string
	}{
		{"div-zero", `1 idiv 0`, "FOAR0001"},
		{"decimal-div-zero", `1.0 div 0.0`, "FOAR0001"},
		{"type-arith", `"x" + 1`, "XPTY0004"},
		{"untyped-arith", `<a>baz</a> + 1`, "FORG0001"},
		{"cast-empty", `() cast as xs:integer`, "XPTY0004"},
		{"cast-bad", `"x" cast as xs:integer`, "FORG0001"},
		{"treat-violation", `("a" treat as xs:integer) `, "XPTY0004"},
		{"ebv-multi", `(1, 2) and true()`, "XPTY0004"},
		{"value-comp-multi", `(1, 2) eq 1`, "XPTY0004"},
		{"step-on-atomic", `(1)/a`, "XPTY0004"},
		{"fn-error", `error("XQGO0001", "boom")`, "XQGO0001"},
		{"missing-doc", `doc("nope.xml")`, "FODC0002"},
		{"no-context-in-function", `declare function local:f() { . }; local:f()`, "XPDY0002"},
		{"untyped-general-comp", `<a>baz</a> = 42`, "FORG0001"},
		{"function-arg-type", `declare function local:f($x as xs:integer) { $x }; local:f("s")`, "XPTY0004"},
		{"function-result-type", `declare function local:f($x) as xs:integer { $x }; local:f("s")`, "XPTY0004"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := evalQuery(t, c.q, Options{})
			if err == nil {
				t.Fatal("expected an error")
			}
			if !xdm.IsCode(err, c.code) {
				t.Errorf("error = %v, want code %s", err, c.code)
			}
		})
	}
}

// TestLazyEvaluation reproduces the paper's lazy-evaluation examples: the
// endlessOnes recursion must terminate under "some ... satisfies", and
// positional access must not evaluate past its target.
func TestLazyEvaluation(t *testing.T) {
	got, err := evalQuery(t, `
	  declare function local:endlessOnes() { (1, local:endlessOnes()) };
	  some $x in local:endlessOnes() satisfies $x eq 1`, Options{})
	if err != nil {
		t.Fatalf("endlessOnes: %v", err)
	}
	if got != "true" {
		t.Errorf("endlessOnes = %q, want true", got)
	}

	// Positional access stops pulling: the error in the second item is
	// never evaluated by the streaming engine.
	got, err = evalQuery(t, `(1, 1 idiv 0, 3)[1]`, Options{})
	if err != nil {
		t.Fatalf("lazy positional: %v", err)
	}
	if got != "1" {
		t.Errorf("lazy positional = %q", got)
	}

	// An unused let binding is never evaluated.
	got, err = evalQuery(t, `let $dead := 1 idiv 0 return "alive"`, Options{})
	if err != nil {
		t.Fatalf("lazy let: %v", err)
	}
	if got != "alive" {
		t.Errorf("lazy let = %q", got)
	}

	// fn:exists pulls exactly one item of an infinite stream.
	got, err = evalQuery(t, `
	  declare function local:nat($n) { ($n, local:nat($n + 1)) };
	  exists(local:nat(0))`, Options{})
	if err != nil || got != "true" {
		t.Errorf("exists over infinite stream = %q, %v", got, err)
	}

	// Memoization: a let variable's producer runs once even with multiple
	// consumers (observable via construction identity).
	got, err = evalQuery(t, `let $n := <a/> return ($n is $n)`, Options{})
	if err != nil || got != "true" {
		t.Errorf("lazy memoization = %q, %v", got, err)
	}
}

// TestStreamedExecute checks ExecuteToWriter output equals Eval+serialize.
func TestStreamedExecute(t *testing.T) {
	for _, q := range []string{
		`for $b in /bib/book return <t y="{$b/@year}">{string($b/title)}</t>`,
		`<summary count="{count(//book)}"><first>{string((//title)[1])}</first></summary>`,
		`(1, 2, "x", <a/>, 4)`,
	} {
		parsed, err := xqparse.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(parsed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := p.Eval(testDynamic(t))
		if err != nil {
			t.Fatal(err)
		}
		want, err := serializer.SequenceToString(seq)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := p.ExecuteToWriter(testDynamic(t), &sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != want {
			t.Errorf("query %s:\n execute %q\n eval    %q", q, sb.String(), want)
		}
	}
}

// TestIteratorEarlyStop: pulling one item must not drain the input.
func TestIteratorEarlyStop(t *testing.T) {
	parsed, err := xqparse.Parse(`/bib/book/title`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(parsed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Iterator(testDynamic(t))
	if err != nil {
		t.Fatal(err)
	}
	first, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	n := first.(xdm.Node)
	if n.StringValue() != "TCP/IP Illustrated" {
		t.Errorf("first item = %q", n.StringValue())
	}
}

func TestMissingExternalVariable(t *testing.T) {
	parsed, err := xqparse.Parse(`declare variable $missing external; $missing`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(parsed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(&Dynamic{}); err == nil {
		t.Error("missing external variable must fail")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`$undeclared`,
		`fn:nosuchfunction(1)`,
		`concat("one")`, // arity
		`declare function local:f($x) { $x }; local:f(1, 2)`,
		`fn:position(1)`,
	}
	for _, src := range cases {
		parsed, err := xqparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(parsed, Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}
