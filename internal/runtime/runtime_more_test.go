package runtime

import (
	"testing"
	"time"

	"xqgo/internal/xdm"
	"xqgo/internal/xqparse"
)

// Additional runtime behaviors: focus semantics, namespaces end to end,
// LazySeq mechanics, frame scoping.

func TestLazySeqMemoization(t *testing.T) {
	pulls := 0
	src := iterFunc(func() (xdm.Item, bool, error) {
		if pulls >= 3 {
			return nil, false, nil
		}
		pulls++
		return xdm.NewInteger(int64(pulls)), true, nil
	})
	ls := NewLazySeq(src)

	it1 := ls.Iterator()
	first, ok, err := it1.Next()
	if err != nil || !ok || first.(xdm.Atomic).I != 1 {
		t.Fatal("first pull")
	}
	if pulls != 1 {
		t.Fatalf("producer pulled %d times, want 1 (lazy)", pulls)
	}

	// A second consumer re-reads the cache, not the producer.
	it2 := ls.Iterator()
	again, _, _ := it2.Next()
	if again.(xdm.Atomic).I != 1 || pulls != 1 {
		t.Fatalf("memoization failed: pulls=%d", pulls)
	}

	all, err := ls.All()
	if err != nil || len(all) != 3 || pulls != 3 {
		t.Fatalf("All: %v, pulls=%d", all, pulls)
	}
	// Repeated All is free.
	if _, err := ls.All(); err != nil || pulls != 3 {
		t.Fatal("re-materialization")
	}
	if n, _ := ls.Len(); n != 3 {
		t.Fatal("Len")
	}
}

func TestLazySeqErrorSticky(t *testing.T) {
	calls := 0
	src := iterFunc(func() (xdm.Item, bool, error) {
		calls++
		if calls > 1 {
			return nil, false, xdm.ErrDivZero()
		}
		return xdm.NewInteger(1), true, nil
	})
	ls := NewLazySeq(src)
	it := ls.Iterator()
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatal("first item ok")
	}
	if _, _, err := it.Next(); err == nil {
		t.Fatal("error expected")
	}
	// The error is cached; the producer is not re-pulled.
	it2 := ls.Iterator()
	it2.Next()
	if _, _, err := it2.Next(); err == nil {
		t.Fatal("cached error expected")
	}
	if calls != 2 {
		t.Fatalf("producer called %d times, want 2", calls)
	}
}

func TestFrameScoping(t *testing.T) {
	dyn := &Dynamic{}
	root := rootFrame(dyn)
	f1 := root.bind(1, MaterializedSeq(xdm.Sequence{xdm.NewInteger(10)}))
	f2 := f1.bind(2, MaterializedSeq(xdm.Sequence{xdm.NewInteger(20)}))
	f3 := f2.bind(1, MaterializedSeq(xdm.Sequence{xdm.NewInteger(99)})) // shadows id 1

	if v, _ := f3.lookup(1).All(); v[0].(xdm.Atomic).I != 99 {
		t.Error("innermost binding wins")
	}
	if v, _ := f3.lookup(2).All(); v[0].(xdm.Atomic).I != 20 {
		t.Error("outer binding visible")
	}
	if v, _ := f2.lookup(1).All(); v[0].(xdm.Atomic).I != 10 {
		t.Error("outer frame unaffected")
	}

	// Focus: nearest focus frame wins; barriers hide it.
	ff := f3.focus(xdm.NewInteger(7), 3, func() (int64, error) { return 9, nil })
	if it, ok := ff.ContextItem(); !ok || it.(xdm.Atomic).I != 7 {
		t.Error("focus item")
	}
	if ff.Position() != 3 {
		t.Error("focus position")
	}
	if n, err := ff.Size(); err != nil || n != 9 {
		t.Error("focus size")
	}
	bar := ff.barrier()
	if _, ok := bar.ContextItem(); ok {
		t.Error("barrier must hide the focus")
	}
	// Variables remain visible through the barrier.
	if v, _ := bar.lookup(2).All(); v[0].(xdm.Atomic).I != 20 {
		t.Error("barrier must not hide variables")
	}
}

func TestConstructorNamespaceOutput(t *testing.T) {
	got, err := evalQuery(t, `
	  declare namespace x = "urn:example";
	  <x:root><x:child/></x:root>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The serializer must emit a binding for urn:example.
	if !contains(got, "urn:example") {
		t.Errorf("namespace lost in output: %q", got)
	}
}

func TestDefaultElementNamespace(t *testing.T) {
	got, err := evalQuery(t, `
	  declare default element namespace "urn:d";
	  namespace-uri-from-QName(node-name(<e/>))`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "urn:d" {
		t.Errorf("default element namespace = %q", got)
	}
}

func TestPositionalVariableVsPositionFunction(t *testing.T) {
	// at $i counts binding tuples; position() in a predicate counts the
	// filtered-sequence position.
	got, err := evalQuery(t, `
	  string-join(
	    for $b at $i in /bib/book[position() ge 2]
	    return concat($i, "-", string($b/@year)), " ")`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "1-2000 2-1999" {
		t.Errorf("positional interplay = %q", got)
	}
}

func TestLastInNestedPredicates(t *testing.T) {
	got, err := evalQuery(t, `string(/bib/book[last()]/title)`, Options{})
	if err != nil || got != "Economics" {
		t.Errorf("last() = %q, %v", got, err)
	}
	got, err = evalQuery(t, `string((//author)[last()]/last)`, Options{})
	if err != nil || got != "Buneman" {
		t.Errorf("nested last() = %q, %v", got, err)
	}
}

func TestWhereOverEmptyBinding(t *testing.T) {
	got, err := evalQuery(t, `for $x in () where $x eq 1 return $x`, Options{})
	if err != nil || got != "" {
		t.Errorf("empty for = %q, %v", got, err)
	}
}

func TestDeepRecursionFunction(t *testing.T) {
	got, err := evalQuery(t, `
	  declare function local:sum($n as xs:integer) as xs:integer {
	    if ($n eq 0) then 0 else $n + local:sum($n - 1)
	  };
	  local:sum(2000)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "2001000" {
		t.Errorf("recursive sum = %q", got)
	}
}

func TestSequenceTypeOnGlobalAndLet(t *testing.T) {
	if _, err := evalQuery(t, `declare variable $v as xs:integer := "nope"; $v`, Options{}); err == nil {
		t.Error("global variable type violation must fail")
	}
	got, err := evalQuery(t, `declare variable $v as xs:integer := 5; $v * 2`, Options{})
	if err != nil || got != "10" {
		t.Errorf("typed global = %q, %v", got, err)
	}
}

func TestEagerEngineStillLazyOnErrorsInUntakenBranch(t *testing.T) {
	// Even the eager engine must not evaluate the untaken if branch (the
	// branch choice is control flow, not data flow).
	got, err := evalQuery(t, `if (1 eq 1) then "ok" else 1 idiv 0`, Options{Eager: true})
	if err != nil || got != "ok" {
		t.Errorf("eager untaken branch: %q, %v", got, err)
	}
}

func TestStringValueOfMixedContent(t *testing.T) {
	got, err := evalQuery(t, `string(<s>one <b>two</b> three</s>)`, Options{})
	if err != nil || got != "one two three" {
		t.Errorf("mixed string value = %q, %v", got, err)
	}
}

func TestCommentAndPIConstructorsInContent(t *testing.T) {
	got, err := evalQuery(t,
		`<r>{comment {"no", "tes"}}{processing-instruction p {"x"}}</r>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != `<r><!--no tes--><?p x?></r>` {
		t.Errorf("constructed comment/pi = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// ---- extensions: group by, try/catch ----

func TestGroupBy(t *testing.T) {
	got, err := evalQuery(t, `
	  for $b in /bib/book
	  let $n := count($b/author)
	  group by $k := $n
	  order by $k
	  return concat($k, ":", count($b))`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// books have 0, 1 and 2 authors -> groups 0:1, 1:1, 2:1
	if got != "0:1 1:1 2:1" {
		t.Errorf("group by author count = %q", got)
	}

	// Grouped variables concatenate across the group.
	got, err = evalQuery(t, `
	  for $x in (1, 2, 3, 4, 5, 6)
	  group by $parity := $x mod 2
	  order by $parity
	  return <g p="{$parity}">{$x}</g>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != `<g p="0">2 4 6</g><g p="1">1 3 5</g>` {
		t.Errorf("grouped concatenation = %q", got)
	}

	// Empty key forms its own group; multiple keys combine.
	got, err = evalQuery(t, `
	  for $x in (1, 2, 3)
	  group by $a := (if ($x eq 2) then () else "k"), $b := $x ge 2
	  order by string($b), count($x) descending
	  return count($x)`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "1 1 1" {
		t.Errorf("multi-key groups = %q", got)
	}

	// String vs untyped keys group together (eq semantics).
	got, err = evalQuery(t, `
	  for $v in (<a>x</a>/text(), "x")
	  group by $k := $v
	  return count($v)`, Options{})
	if err != nil || got != "2" {
		t.Errorf("untyped/string key unification = %q, %v", got, err)
	}
}

func TestGroupByBothEngines(t *testing.T) {
	q := `for $b in /bib/book
	      group by $p := count($b/author) ge 1
	      order by string($p)
	      return concat($p, "=", count($b))`
	a, err := evalQuery(t, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalQuery(t, q, Options{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("engines disagree on group by: %q vs %q", a, b)
	}
}

func TestTryCatch(t *testing.T) {
	cases := []struct{ q, want string }{
		{`try { 1 idiv 0 } catch * { "caught" }`, "caught"},
		{`try { 1 + 1 } catch * { "caught" }`, "2"},
		{`try { error("X", "boom") } catch * { "handled" }`, "handled"},
		// Errors inside lazily-consumed sequences are caught too (the try
		// clause materializes).
		{`try { for $i in (1, 2) return $i idiv ($i - 1) } catch * { "lazy-caught" }`, "lazy-caught"},
		// Nested: inner catch wins.
		{`try { try { 1 idiv 0 } catch * { "inner" } } catch * { "outer" }`, "inner"},
		// Errors in the catch clause propagate.
	}
	for _, c := range cases {
		got, err := evalQuery(t, c.q, Options{})
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %q, want %q", c.q, got, c.want)
		}
	}
	if _, err := evalQuery(t, `try { 1 idiv 0 } catch * { 2 idiv 0 }`, Options{}); err == nil {
		t.Error("catch-clause errors must propagate")
	}
}

// ---- memoization ----

func TestMemoizeFunctions(t *testing.T) {
	fib := `
	  declare function local:fib($n as xs:integer) as xs:integer {
	    if ($n le 1) then $n else local:fib($n - 1) + local:fib($n - 2)
	  };
	  local:fib(22)`
	plain, err := evalQuery(t, fib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	memo, err := evalQuery(t, fib, Options{MemoizeFunctions: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain != memo || memo != "17711" {
		t.Errorf("fib(22): plain %s, memoized %s, want 17711", plain, memo)
	}

	// Node-constructing functions are never memoized: each call must yield
	// a fresh identity.
	got, err := evalQuery(t, `
	  declare function local:mk() { <a/> };
	  count(distinct-nodes((local:mk(), local:mk())))`, Options{MemoizeFunctions: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "2" {
		t.Errorf("constructor function memoized: distinct = %s, want 2", got)
	}

	// Node arguments bypass the cache but still evaluate correctly.
	got, err = evalQuery(t, `
	  declare function local:titleOf($b) { string($b/title) };
	  string-join(for $b in /bib/book return local:titleOf($b), ";")`,
		Options{MemoizeFunctions: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "TCP/IP Illustrated;Data on the Web;Economics" {
		t.Errorf("node-arg calls = %q", got)
	}

	// Functions calling nondeterministic built-ins are not cached (two
	// different arguments must not collide either way; just check it runs).
	if _, err := evalQuery(t, `
	  declare function local:t($x) { string(current-date()) };
	  (local:t(1), local:t(2))`, Options{MemoizeFunctions: true}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoizationIsFaster(t *testing.T) {
	// fib(24) naive is ~75k calls; memoized is 25. The timing margin is so
	// large a factor-2 check is safe even on noisy machines.
	fib := `
	  declare function local:fib($n as xs:integer) as xs:integer {
	    if ($n le 1) then $n else local:fib($n - 1) + local:fib($n - 2)
	  };
	  local:fib(24)`
	timeOf := func(opts Options) int64 {
		q, err := xqparse.Parse(fib)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		start := nowNanos()
		if _, err := p.Eval(testDynamic(t)); err != nil {
			t.Fatal(err)
		}
		return nowNanos() - start
	}
	plain := timeOf(Options{})
	memo := timeOf(Options{MemoizeFunctions: true})
	if memo*2 > plain {
		t.Errorf("memoization not paying off: plain %dns, memo %dns", plain, memo)
	}
}

func nowNanos() int64 { return time.Now().UnixNano() }

// ---- parallel execution ----

func TestParallelSeq(t *testing.T) {
	q := `(count(//book[price > 10]),
	      count(//author),
	      sum(for $p in //price return xs:decimal($p)),
	      string-join(for $t in //title return string($t), "|"))`
	seq, err := evalQuery(t, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := evalQuery(t, q, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("parallel disagreement:\n seq %q\n par %q", seq, par)
	}

	// Errors propagate from any branch.
	if _, err := evalQuery(t, `(count(//book), 1 idiv 0, count(//author))`,
		Options{Parallel: true}); err == nil {
		t.Error("branch error must propagate")
	}

	// Shared variables are visible (forced before spawning).
	q2 := `let $all := //book return (count($all), count($all/author), count($all/title))`
	a, err := evalQuery(t, q2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalQuery(t, q2, Options{Parallel: true})
	if err != nil || a != b {
		t.Errorf("shared-var parallel: %q vs %q (%v)", a, b, err)
	}

	// Context-dependent sequences stay sequential but still work.
	q3 := `string-join(for $b in /bib/book return (string($b/title), string($b/@year)), ",")`
	a, _ = evalQuery(t, q3, Options{})
	b, err = evalQuery(t, q3, Options{Parallel: true})
	if err != nil || a != b {
		t.Errorf("context parallel fallback: %q vs %q (%v)", a, b, err)
	}
}

func TestParallelConstructionIdentity(t *testing.T) {
	// Parallel branches constructing nodes must still produce distinct
	// identities and correct output.
	got, err := evalQuery(t, `
	  count(distinct-nodes((
	    <a>{string-join(for $i in (1 to 200) return string($i), "")}</a>,
	    <a>{string-join(for $i in (1 to 200) return string($i), "")}</a>)))`,
		Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "2" {
		t.Errorf("parallel construction identity = %s", got)
	}
}
