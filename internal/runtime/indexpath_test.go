package runtime

import (
	"testing"

	"xqgo/internal/xdm"
	"xqgo/internal/xqparse"
)

func chainOf(t *testing.T, src string) ([]joinStep, bool) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := extractJoinChain(q.Body)
	if !ok {
		return nil, false
	}
	return normalizeChain(raw)
}

func TestExtractJoinChain(t *testing.T) {
	cases := []struct {
		src   string
		names []string // expected chain names; nil = not join-shaped
		child []bool
	}{
		{`//a//b`, []string{"a", "b"}, []bool{false, false}},
		{`//a/b`, []string{"a", "b"}, []bool{false, true}},
		{`/r//a/b//c`, []string{"r", "a", "b", "c"}, []bool{true, false, true, false}},
		{`//a`, []string{"a"}, []bool{false}},
		{`//a[b]//c`, nil, nil}, // predicate blocks
		{`//*//b`, nil, nil},    // wildcard blocks
		{`$x//a//b`, nil, nil},  // non-root base blocks
		{`//a//text()`, nil, nil},
	}
	for _, c := range cases {
		chain, ok := chainOf(t, c.src)
		if c.names == nil {
			if ok {
				t.Errorf("%s: should not be join-shaped, got %v", c.src, chain)
			}
			continue
		}
		if !ok {
			t.Errorf("%s: expected join chain", c.src)
			continue
		}
		if len(chain) != len(c.names) {
			t.Errorf("%s: chain length %d, want %d (%v)", c.src, len(chain), len(c.names), chain)
			continue
		}
		for i := range chain {
			if chain[i].name.Local != c.names[i] || chain[i].childOnly != c.child[i] {
				t.Errorf("%s step %d: %+v, want %s child=%v", c.src, i, chain[i], c.names[i], c.child[i])
			}
		}
	}
}

func TestMemoKey(t *testing.T) {
	args := []xdm.Sequence{{xdm.NewInteger(1)}, {xdm.NewString("a"), xdm.NewString("b")}}
	k1, ok := memoKey("f/2", args)
	if !ok {
		t.Fatal("atomic args must be cachable")
	}
	k2, _ := memoKey("f/2", args)
	if k1 != k2 {
		t.Error("same args, same key")
	}
	k3, _ := memoKey("f/2", []xdm.Sequence{{xdm.NewInteger(1)}, {xdm.NewString("ab")}})
	if k1 == k3 {
		t.Error("different arg shapes must not collide")
	}
	// Distinguish ("a","b") from ("a,b")-style merges.
	k4, _ := memoKey("f/2", []xdm.Sequence{{xdm.NewInteger(1), xdm.NewString("a")}, {xdm.NewString("b")}})
	if k1 == k4 {
		t.Error("argument boundaries must participate in the key")
	}
	// Node arguments: not cachable.
	dyn := testDynamic(t)
	if _, ok := memoKey("f/1", []xdm.Sequence{{dyn.ContextItem}}); ok {
		t.Error("node arguments must bypass the cache")
	}
	// Different types, same lexical.
	ki, _ := memoKey("f/1", []xdm.Sequence{{xdm.NewInteger(1)}})
	ks, _ := memoKey("f/1", []xdm.Sequence{{xdm.NewString("1")}})
	if ki == ks {
		t.Error("type participates in the key")
	}
}
