package runtime

import (
	"fmt"
	"io"

	"xqgo/internal/serializer"
	"xqgo/internal/tokens"
	"xqgo/internal/xdm"
)

// This file is the execution boundary of a Prepared query: materializing
// evaluation, streaming iteration, and direct-to-writer serialization (the
// path where node-id-free construction pays off).

// newRootFrame builds the evaluation frame chain: root frame + globals.
func (p *Prepared) newRootFrame(dyn *Dynamic) (*Frame, error) {
	if dyn == nil {
		dyn = &Dynamic{}
	}
	dyn.proj.Store(p.opts.Projection)
	if dyn.Stream != nil && dyn.ContextItem == nil {
		// The streamed input is the context document; parsing starts here
		// but only proceeds as far as the query pulls.
		dyn.ContextItem = dyn.Stream.docFor(dyn).RootNode()
	}
	fr := rootFrame(dyn)
	for _, g := range p.globals {
		var val *LazySeq
		switch {
		case g.external:
			seq, ok := dyn.Vars[g.name.Clark()]
			if !ok {
				return nil, xdm.Errf("XPDY0002", "no value for external variable $%s", g.name)
			}
			val = MaterializedSeq(seq)
		default:
			val = NewLazySeq(g.init(fr))
		}
		if g.typ != nil {
			seq, err := val.All()
			if err != nil {
				return nil, err
			}
			if !g.typ.Matches(seq) {
				return nil, xdm.ErrType("variable $%s does not match its declared type %s", g.name, *g.typ)
			}
			val = MaterializedSeq(seq)
		}
		fr = fr.bind(g.id, val)
	}
	return fr, nil
}

// recoverXQ converts panics back into errors at the engine boundary:
// StreamedNode accessor aborts, budget overages (limits.BudgetError), and
// — so no query can take the process down — any other panic value, which
// surfaces as an XQGO0002 internal error.
func recoverXQ(err *error) {
	if r := recover(); r != nil {
		*err = PanicError(r)
	}
}

// RecoverXQ is the exported recover boundary for sibling packages'
// goroutine and callback edges (streamexec windows, subscription
// delivery): `defer runtime.RecoverXQ(&err)`.
func RecoverXQ(err *error) {
	if r := recover(); r != nil {
		*err = PanicError(r)
	}
}

// PanicError converts a recovered panic value into an execution error.
func PanicError(r any) error {
	if e, ok := r.(error); ok {
		return e
	}
	return xdm.Errf("XQGO0002", "internal error: recovered panic: %v", r)
}

// Eval executes the query and materializes the whole result.
func (p *Prepared) Eval(dyn *Dynamic) (seq xdm.Sequence, err error) {
	defer recoverXQ(&err)
	fr, err := p.newRootFrame(dyn)
	if err != nil {
		return nil, err
	}
	var out xdm.Sequence
	if p.opts.NoBatch {
		out, err = drain(p.body(fr))
	} else {
		out, err = drainBatched(fr.dyn, p.body(fr))
	}
	if err != nil {
		return nil, err
	}
	// Materialize any streamed constructions escaping to the caller.
	for i, it := range out {
		if sn, ok := it.(*StreamedNode); ok {
			m, merr := sn.materialize()
			if merr != nil {
				return nil, merr
			}
			if dyn != nil {
				dyn.Prof.addNodesMaterialized(1)
			}
			out[i] = m
		}
	}
	return out, nil
}

// Iterator returns a lazy result iterator: items are produced on demand,
// the paper's "time to first answer" path. The returned cleanup func is
// currently a no-op but reserved for resource-holding plans.
func (p *Prepared) Iterator(dyn *Dynamic) (Iter, error) {
	fr, err := p.newRootFrame(dyn)
	if err != nil {
		return nil, err
	}
	return p.body(fr), nil
}

// ExecuteToWriter evaluates the query and serializes the result directly to
// w. Streamed constructor results are token-piped into the writer without
// node-id assignment or tree materialization (experiment E7); stored nodes
// are serialized conventionally.
func (p *Prepared) ExecuteToWriter(dyn *Dynamic, w io.Writer) (err error) {
	defer recoverXQ(&err)
	if dyn == nil {
		dyn = &Dynamic{}
	}
	it, err := p.Iterator(dyn)
	if err != nil {
		return err
	}
	sw := tokens.NewStreamWriter(w)
	// Token accounting is batched: the wrapper counts locally and the sink
	// flushes the count into the profile once per result batch.
	var batchTokens int64
	write := sw.WriteToken
	if dyn.Prof != nil {
		write = func(t tokens.Token) error {
			batchTokens++
			return sw.WriteToken(t)
		}
	}
	emit := func(item xdm.Item, prevAtomic bool) (bool, error) {
		switch n := item.(type) {
		case *StreamedNode:
			return false, n.EmitTokens(write)
		case xdm.Node:
			return false, emitStoredNode(n, write)
		default:
			a := item.(xdm.Atomic)
			if prevAtomic {
				if err := write(tokens.Token{Kind: tokens.KindText, Value: " "}); err != nil {
					return false, err
				}
			}
			return true, write(tokens.Token{Kind: tokens.KindAtomic, Atom: a})
		}
	}
	flushTokens := func() {
		if batchTokens > 0 {
			dyn.Prof.addXMLTokens(batchTokens)
			batchTokens = 0
		}
	}
	defer flushTokens()

	prevAtomic := false
	if p.opts.NoBatch {
		for {
			if err := dyn.CheckInterrupt(); err != nil {
				return err
			}
			item, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if prevAtomic, err = emit(item, prevAtomic); err != nil {
				return err
			}
			flushTokens()
		}
		return sw.Close()
	}

	// Batched serializer sink: drain whole result batches per tick.
	buf := dyn.getBuf()
	defer dyn.putBuf(buf)
	for {
		n, err := nextBatch(it, buf)
		for i := 0; i < n; i++ {
			var eerr error
			if prevAtomic, eerr = emit(buf[i], prevAtomic); eerr != nil {
				return eerr
			}
		}
		flushTokens()
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if err := dyn.CheckInterruptN(n); err != nil {
			return err
		}
	}
	return sw.Close()
}

// SerializeResult renders a materialized result with the tree serializer
// (used by the CLI and tests).
func SerializeResult(seq xdm.Sequence) (string, error) {
	return serializer.SequenceToString(seq)
}

// String renders a short description of the prepared query.
func (p *Prepared) String() string {
	mode := "streaming"
	if p.opts.Eager {
		mode = "eager"
	}
	return fmt.Sprintf("prepared query (%s engine, %d globals)", mode, len(p.globals))
}
