package streamexec

import (
	"encoding/xml"
	"sync"
	"sync/atomic"

	"xqgo/internal/runtime"
)

// Dispatcher fans one decoder token stream out to any number of runners
// (the pub/sub core: N continuous queries share a single parse pass over a
// live feed). A runner that errors is detached — its error is recorded on
// its handle and the feed keeps flowing to the others. Token delivery is
// single-threaded (the parse goroutine); Close is safe from any goroutine.
type Dispatcher struct {
	taps []*Tap
}

// Tap is one registered consumer of the dispatched stream.
type Tap struct {
	fn     func(xml.Token) error
	finish func() error

	closed atomic.Bool
	mu     sync.Mutex
	err    error
}

// Close detaches the tap from the feed. Idempotent, safe concurrently with
// dispatch.
func (t *Tap) Close() { t.closed.Store(true) }

// Err returns the error that detached the tap, if any.
func (t *Tap) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tap) fail(err error) {
	t.mu.Lock()
	t.err = err
	t.mu.Unlock()
	t.closed.Store(true)
}

// Add registers a consumer: fn receives every token, finish (optional) runs
// at end of input. For a Runner pass r.Token and r.Finish.
func (d *Dispatcher) Add(fn func(xml.Token) error, finish func() error) *Tap {
	t := &Tap{fn: fn, finish: finish}
	d.taps = append(d.taps, t)
	return t
}

// Token delivers one token to every live tap — install this as the parser's
// Tap. It never returns an error: per-tap failures (errors AND panics —
// one poisoned handler must never kill the feed's siblings) detach that
// tap only.
func (d *Dispatcher) Token(tok xml.Token) error {
	for _, t := range d.taps {
		if t.closed.Load() {
			continue
		}
		if err := t.call(tok); err != nil {
			t.fail(err)
		}
	}
	return nil
}

// call is the per-tap recover boundary for token delivery.
func (t *Tap) call(tok xml.Token) (err error) {
	defer runtime.RecoverXQ(&err)
	return t.fn(tok)
}

// Finish signals end of input to every live tap.
func (d *Dispatcher) Finish() {
	for _, t := range d.taps {
		if t.closed.Load() || t.finish == nil {
			continue
		}
		if err := t.callFinish(); err != nil {
			t.fail(err)
		}
	}
}

// callFinish is the per-tap recover boundary for end-of-input delivery.
func (t *Tap) callFinish() (err error) {
	defer runtime.RecoverXQ(&err)
	return t.finish()
}

// Live reports how many taps are still attached.
func (d *Dispatcher) Live() int {
	n := 0
	for _, t := range d.taps {
		if !t.closed.Load() {
			n++
		}
	}
	return n
}
