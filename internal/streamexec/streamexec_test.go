package streamexec

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xqgo/internal/expr"
	"xqgo/internal/optimizer"
	"xqgo/internal/projection"
	"xqgo/internal/runtime"
	"xqgo/internal/tokens"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
	"xqgo/internal/xqparse"
)

const bibDoc = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39.95</price></book>
  <book year="1994"><title>Advanced Unix</title><author>Stevens</author><price>55.48</price></book>
</bib>`

const sectionsDoc = `<doc><section id="a"><title>A</title><section id="a1"><title>A1</title></section></section><section id="b"><title>B</title></section></doc>`

// compileStream parses, optimizes and stream-compiles a query — the same
// pipeline the public API runs before handing the plan to this package.
func compileStream(t *testing.T, src string) (*Program, *expr.Query, runtime.Options) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q = optimizer.Optimize(q, optimizer.Options{})
	ro := runtime.Options{}
	return Compile(q, ro), q, ro
}

// storeEval runs the plan on the regular store engine (the differential
// oracle).
func storeEval(t *testing.T, q *expr.Query, ro runtime.Options, doc string, strip bool, vars map[string]xdm.Sequence) string {
	t.Helper()
	d, err := xmlparse.ParseString(doc, xmlparse.Options{StripWhitespace: strip, URI: "mem:doc"})
	if err != nil {
		t.Fatalf("parse doc: %v", err)
	}
	prep, err := runtime.Compile(q, ro)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if err := prep.ExecuteToWriter(&runtime.Dynamic{ContextItem: d.RootNode(), Vars: vars}, &buf); err != nil {
		t.Fatalf("store execute: %v", err)
	}
	return buf.String()
}

// streamEval runs the program over a live token stream in shared-writer
// mode and returns the serialized output.
func streamEval(t *testing.T, prog *Program, doc string, strip bool, vars map[string]xdm.Sequence) (string, Stats) {
	t.Helper()
	var buf bytes.Buffer
	sw := tokens.NewStreamWriter(&buf)
	r := NewWriterRunner(prog, Env{StripWhitespace: strip, Vars: vars}, sw)
	p := xmlparse.ParseIncremental(strings.NewReader(doc), xmlparse.Options{
		StripWhitespace: strip,
		Projection:      projection.New(),
		Tap:             r.Token,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatalf("advance: %v", err)
		}
		if done {
			break
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}
	return buf.String(), r.Stats()
}

func TestClassification(t *testing.T) {
	cases := []struct {
		query string
		want  Class
	}{
		{`/bib/book`, FullyStreamable},
		{`/bib/book/title`, FullyStreamable},
		{`//book`, BoundedBuffer},
		{`/bib//title`, BoundedBuffer},
		{`/bib/book[@year = "1994"]`, BoundedBuffer},
		{`/bib/book/title/text()`, BoundedBuffer},
		{`/bib/book[2]`, BoundedBuffer},
		{`for $b in /bib/book where $b/price > 50 return $b/title`, BoundedBuffer},
		{`for $b in /bib/book return <entry>{$b/title}</entry>`, BoundedBuffer},
		{`declare variable $y external; /bib/book[@year = $y]`, BoundedBuffer},

		{`count(/bib/book)`, StoreRequired},
		{`.`, StoreRequired},
		{`/`, StoreRequired},
		{`/bib/book/..`, StoreRequired},
		{`//book[@year = "1994"]`, StoreRequired},
		{`for $b in /bib/book return fn:string(.)`, StoreRequired},
		{`for $b in /bib/book return fn:doc("other.xml")`, StoreRequired},
		{`for $b in /bib/book order by $b/title return $b`, StoreRequired},
		{`declare variable $n := 3; /bib/book[$n]`, StoreRequired},
		{`for $b in /bib/book return $b/preceding-sibling::book`, StoreRequired},
	}
	for _, c := range cases {
		prog, _, _ := compileStream(t, c.query)
		if prog.Class() != c.want {
			t.Errorf("%s: class = %v (reason %q), want %v",
				c.query, prog.Class(), prog.Reason(), c.want)
		}
	}
}

func TestDifferentialAgainstStoreEngine(t *testing.T) {
	queries := []string{
		`/bib/book`,
		`/bib/book/title`,
		`/bib/book[@year = "1994"]`,
		`/bib/book[@year = "1994"]/title`,
		`/bib/book/title/text()`,
		`/bib/book[2]`,
		`for $b in /bib/book where $b/price > 50 return $b/title`,
		`for $b in /bib/book return <entry>{$b/title}</entry>`,
		`for $b in /bib/book where $b/author = "Stevens" return fn:string($b/title)`,
		`//title`,
		`/bib//author`,
	}
	for _, src := range queries {
		for _, strip := range []bool{false, true} {
			prog, q, ro := compileStream(t, src)
			if !prog.Streamable() {
				t.Errorf("%s: unexpectedly store-required (%s)", src, prog.Reason())
				continue
			}
			want := storeEval(t, q, ro, bibDoc, strip, nil)
			got, stats := streamEval(t, prog, bibDoc, strip, nil)
			if got != want {
				t.Errorf("%s (strip=%v):\n stream: %q\n store:  %q", src, strip, got, want)
			}
			if stats.Windows == 0 {
				t.Errorf("%s: no windows opened", src)
			}
		}
	}
}

func TestNestedWindowsKeepDocumentOrder(t *testing.T) {
	prog, q, ro := compileStream(t, `//section`)
	if prog.Class() != BoundedBuffer {
		t.Fatalf("class = %v (%s)", prog.Class(), prog.Reason())
	}
	want := storeEval(t, q, ro, sectionsDoc, false, nil)
	got, stats := streamEval(t, prog, sectionsDoc, false, nil)
	if got != want {
		t.Fatalf("nested windows:\n stream: %q\n store:  %q", got, want)
	}
	if stats.Windows != 3 || stats.Results != 3 {
		t.Fatalf("windows=%d results=%d, want 3/3", stats.Windows, stats.Results)
	}
	if stats.PeakBufferBytes == 0 {
		t.Fatalf("nested inner window should have buffered bytes")
	}
}

func TestExternalVariables(t *testing.T) {
	src := `declare variable $y external; /bib/book[@year = $y]/title`
	prog, q, ro := compileStream(t, src)
	if !prog.Streamable() {
		t.Fatalf("store-required: %s", prog.Reason())
	}
	vars := map[string]xdm.Sequence{"y": {xdm.NewString("1994")}}
	want := storeEval(t, q, ro, bibDoc, true, vars)
	got, _ := streamEval(t, prog, bibDoc, true, vars)
	if got != want || !strings.Contains(got, "TCP/IP") {
		t.Fatalf("external var:\n stream: %q\n store:  %q", got, want)
	}
}

func TestResultRunnerFraming(t *testing.T) {
	prog, _, _ := compileStream(t, `/bib/book/title`)
	var results []string
	r := NewResultRunner(prog, Env{StripWhitespace: true}, func(x []byte) error {
		results = append(results, string(x))
		return nil
	})
	p := xmlparse.ParseIncremental(strings.NewReader(bibDoc), xmlparse.Options{
		StripWhitespace: true, Projection: projection.New(), Tap: r.Token,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 (%q)", len(results), results)
	}
	for _, res := range results {
		if !strings.HasPrefix(res, "<title>") || !strings.HasSuffix(res, "</title>") {
			t.Fatalf("malformed framed result %q", res)
		}
	}
}

func TestResidualWindowBufferAccounting(t *testing.T) {
	prog, _, _ := compileStream(t, `/bib/book[@year = "1994"]/title`)
	prof := mustProfile(t)
	_, stats := func() (string, Stats) {
		var buf bytes.Buffer
		sw := tokens.NewStreamWriter(&buf)
		r := NewWriterRunner(prog, Env{StripWhitespace: true, Prof: prof}, sw)
		feedTokens(t, r, bibDoc, true)
		return buf.String(), r.Stats()
	}()
	if stats.Windows != 3 {
		t.Fatalf("windows = %d, want 3", stats.Windows)
	}
	if stats.PeakBufferBytes == 0 {
		t.Fatalf("residual windows must report buffered bytes")
	}
	rep := prof.Report()
	if rep.Counters.StreamWindows != 3 {
		t.Fatalf("profile streamWindows = %d", rep.Counters.StreamWindows)
	}
	if rep.Counters.StreamBufferPeakBytes != stats.PeakBufferBytes {
		t.Fatalf("profile peak %d != stats peak %d",
			rep.Counters.StreamBufferPeakBytes, stats.PeakBufferBytes)
	}
	if rep.Counters.StreamResults != stats.Results {
		t.Fatalf("profile results %d != stats results %d",
			rep.Counters.StreamResults, stats.Results)
	}
}

// mustProfile builds a counters profile detached from any particular plan
// (streamexec only touches the plan-agnostic engine counters).
func mustProfile(t *testing.T) *runtime.Profile {
	t.Helper()
	q, err := xqparse.Parse(`1`)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := runtime.Compile(q, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prep.NewProfile(false)
}

func feedTokens(t *testing.T, r *Runner, doc string, strip bool) {
	t.Helper()
	p := xmlparse.ParseIncremental(strings.NewReader(doc), xmlparse.Options{
		StripWhitespace: strip, Projection: projection.New(), Tap: r.Token,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherIsolatesFailingTap(t *testing.T) {
	progA, _, _ := compileStream(t, `/bib/book/title`)
	progB, _, _ := compileStream(t, `/bib/book`)
	var got []string
	boom := fmt.Errorf("subscriber gone")
	ra := NewResultRunner(progA, Env{StripWhitespace: true}, func(x []byte) error {
		got = append(got, string(x))
		return nil
	})
	rb := NewResultRunner(progB, Env{StripWhitespace: true}, func([]byte) error { return boom })
	d := &Dispatcher{}
	ta := d.Add(ra.Token, ra.Finish)
	tb := d.Add(rb.Token, rb.Finish)

	p := xmlparse.ParseIncremental(strings.NewReader(bibDoc), xmlparse.Options{
		StripWhitespace: true, Projection: projection.New(), Tap: d.Token,
	})
	for {
		done, err := p.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	d.Finish()

	if ta.Err() != nil {
		t.Fatalf("healthy tap errored: %v", ta.Err())
	}
	if tb.Err() != boom {
		t.Fatalf("failing tap err = %v, want %v", tb.Err(), boom)
	}
	if len(got) != 3 {
		t.Fatalf("healthy tap results = %d, want 3", len(got))
	}
	if d.Live() != 1 {
		t.Fatalf("live taps = %d, want 1", d.Live())
	}
}
