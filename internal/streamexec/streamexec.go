// Package streamexec is the event-driven streaming evaluator: a static
// streamability analysis over optimized plans plus a SAX-style event-handler
// automaton that evaluates streamable plans directly from the parser's token
// stream, without materializing a document store.
//
// The design follows the continuous-query line the paper surveys (XQRL's
// token-stream evaluation; Koch et al.'s buffer-minimizing FluXQuery): a plan
// is split into a SPINE of forward element steps — matched against live
// start/end-element events by a small NFA — and a per-window RESIDUAL
// evaluated over one buffered window subtree at a time. The analysis proves a
// buffer bound (one window) or refuses, in which case execution transparently
// falls back to the regular store engine; results are never wrong, only
// sometimes less incremental.
package streamexec

import (
	"time"

	"xqgo/internal/limits"
	"xqgo/internal/runtime"
	"xqgo/internal/trace"
	"xqgo/internal/xdm"
)

// Class is the streamability classification of a plan.
type Class uint8

const (
	// StoreRequired: the plan (or its input) needs random access to the
	// document; execution uses the regular store engine.
	StoreRequired Class = iota
	// BoundedBuffer: the plan streams with buffering bounded by one window
	// subtree (the matched spine element and its content).
	BoundedBuffer
	// FullyStreamable: the plan is an identity projection over disjoint
	// windows; tokens are forwarded as they arrive with O(depth) state.
	FullyStreamable
)

func (c Class) String() string {
	switch c {
	case FullyStreamable:
		return "fully-streamable"
	case BoundedBuffer:
		return "bounded-buffers"
	default:
		return "store-required"
	}
}

// Streamable reports whether plans of this class run on the event automaton.
func (c Class) Streamable() bool { return c != StoreRequired }

// Env carries the dynamic context a streaming execution shares with the
// store engine: external variable values (Clark-notation keys), the
// cancellation hook, the stable current dateTime, and the profile collecting
// window/buffer counters.
type Env struct {
	Vars      map[string]xdm.Sequence
	Interrupt func() error
	Now       time.Time
	Prof      *runtime.Profile
	// Trace, when non-nil, collects window open/close spans (under TraceSpan
	// when set). Only the first few windows get individual spans (see
	// maxWindowSpans) — totals always come from the profile counters.
	Trace     *trace.Trace
	TraceSpan *trace.Span
	// StripWhitespace mirrors the ingestion option of the same name so the
	// streamed view of the document matches what the store engine would have
	// materialized (whitespace-only text between elements dropped).
	StripWhitespace bool
	// Budget, when non-nil, is charged for window buffer growth (and
	// discharged as windows close); overage aborts the execution with a
	// structured budget error (see internal/limits).
	Budget *limits.Budget
}
