package streamexec

import (
	"fmt"

	"xqgo/internal/expr"
	"xqgo/internal/projection"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// The streamability analysis: an abstract interpretation over the optimized
// expression tree (the same style as optimizer.ExtractPaths) that splits a
// plan into a SPINE — a root-anchored prefix of forward element steps the
// event automaton can match against the raw token stream — and a RESIDUAL —
// the rest of the plan, rewritten to evaluate relative to one spine match
// ("window"). The residual, when present, runs over a window-sized
// mini-store, so the buffer bound is one window subtree (Koch et al.'s
// buffer-minimization argument specialized to this decomposition); an
// identity residual needs no store at all. Anything the analysis cannot
// prove window-local is classified store-required and falls back to the
// regular engine.

// decomp is the spine/residual split of a plan body.
type decomp struct {
	spine []projection.Step
	// pendingDesc: a trailing descendant-or-self::node() step whose depth
	// wildcard has not been attached to a following step yet.
	pendingDesc bool
	// residual is the per-window plan relative to the window element; nil
	// means identity (the window itself is the result).
	residual expr.Expr
}

// childOnly reports whether every spine step is a child step (windows at a
// fixed depth: they can never nest, so at most one is open at a time and
// results stay in global document order without cross-window bookkeeping).
func (d *decomp) childOnly() bool {
	for _, s := range d.spine {
		if s.AnyDepth {
			return false
		}
	}
	return true
}

// analyzeBody decomposes a query body. ok=false (with a reason) means the
// body has no streamable shape at all.
func analyzeBody(body expr.Expr) (decomp, bool, string) {
	if fl, isFlwor := body.(*expr.Flwor); isFlwor {
		return analyzeFlwor(fl)
	}
	d, ok, why := walkPath(body)
	if !ok {
		return d, false, why
	}
	d.finishPending(body)
	return d, true, ""
}

// analyzeFlwor decomposes a FLWOR whose first clause iterates an absolute
// path: the path's spine drives the windows and the whole FLWOR — with the
// first binding sequence replaced by the path's residual — becomes the
// per-window residual. order by / group by need the full tuple stream and
// an "at" position on the window clause would restart per window, so those
// forms stay on the store engine.
func analyzeFlwor(fl *expr.Flwor) (decomp, bool, string) {
	if len(fl.Group) > 0 {
		return decomp{}, false, "group by needs the full tuple stream"
	}
	if len(fl.Order) > 0 {
		return decomp{}, false, "order by needs the full tuple stream"
	}
	if len(fl.Clauses) == 0 || fl.Clauses[0].Kind != expr.ForClause {
		return decomp{}, false, "FLWOR does not start with a for clause"
	}
	if !fl.Clauses[0].PosVar.IsZero() {
		return decomp{}, false, "positional variable on the window clause counts across windows"
	}
	d, ok, why := walkPath(fl.Clauses[0].In)
	if !ok {
		return d, false, why
	}
	d.finishPending(fl.Clauses[0].In)
	in := d.residual
	if in == nil {
		in = &expr.ContextItem{Base: base(fl.Clauses[0].In)}
	}
	res := fl.WithChildren(fl.Children()).(*expr.Flwor) // deep-ish copy of clause slices
	res.Clauses[0].In = in
	d.residual = res
	return d, true, ""
}

// walkPath walks the leftmost chain of a path expression down to the
// leading "/" and folds each right-hand step into either the spine or the
// residual.
func walkPath(e expr.Expr) (decomp, bool, string) {
	switch t := e.(type) {
	case *expr.Root:
		return decomp{}, true, ""
	case *expr.Path:
		d, ok, why := walkPath(t.L)
		if !ok {
			return d, false, why
		}
		d.apply(t.R, t.NoReorder)
		return d, true, ""
	default:
		return decomp{}, false, fmt.Sprintf("result is not a path over the streamed document (%T)", e)
	}
}

// apply folds one path component into the decomposition.
func (d *decomp) apply(r expr.Expr, noReorder bool) {
	if d.residual != nil {
		d.residual = &expr.Path{Base: base(r), L: d.residual, R: r, NoReorder: noReorder}
		return
	}
	switch t := r.(type) {
	case *expr.Step:
		switch t.Axis {
		case expr.AxisChild:
			if s, ok := spineStepFromTest(t.Test, false); ok {
				if d.pendingDesc {
					s.AnyDepth = true
					d.pendingDesc = false
				}
				d.spine = append(d.spine, s)
				return
			}
		case expr.AxisDescendant:
			if s, ok := spineStepFromTest(t.Test, true); ok {
				d.pendingDesc = false
				d.spine = append(d.spine, s)
				return
			}
		case expr.AxisDescendantOrSelf:
			if t.Test.Kind == xtypes.TestAnyKind {
				// The classical // encoding: defer the depth wildcard onto
				// the next step.
				d.pendingDesc = true
				return
			}
		}
		d.beginResidual(r)

	case *expr.Filter:
		// A filtered step: with window-base-safe predicates the step still
		// extends the spine and the predicates become a filter on the
		// window itself. Otherwise the window stops one level up and the
		// whole filtered step evaluates inside it (this keeps positional
		// predicates correct: their sibling group is window-internal).
		if st, isStep := t.In.(*expr.Step); isStep && !d.pendingDesc && st.Axis == expr.AxisChild {
			if s, ok := spineStepFromTest(st.Test, false); ok && baseSafePreds(t.Preds) {
				d.spine = append(d.spine, s)
				d.residual = &expr.Filter{
					Base:  base(r),
					In:    &expr.ContextItem{Base: base(r)},
					Preds: t.Preds,
				}
				return
			}
		}
		d.beginResidual(r)

	default:
		d.beginResidual(r)
	}
}

// beginResidual ends the spine: r evaluates relative to the window. A
// pending depth wildcard re-materializes as descendant-or-self::node()
// under the window.
func (d *decomp) beginResidual(r expr.Expr) {
	if d.pendingDesc {
		d.pendingDesc = false
		d.residual = &expr.Path{
			Base: base(r),
			L:    &expr.Step{Base: base(r), Axis: expr.AxisDescendantOrSelf, Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind}},
			R:    r,
		}
		return
	}
	d.residual = r
}

// finishPending resolves a depth wildcard left dangling at the end of the
// path (".../descendant-or-self::node()"): the windows plus all their
// descendants are the result, which is exactly the step itself evaluated
// per window.
func (d *decomp) finishPending(at expr.Expr) {
	if d.pendingDesc && d.residual == nil {
		d.pendingDesc = false
		d.residual = &expr.Step{Base: base(at), Axis: expr.AxisDescendantOrSelf, Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind}}
	}
}

func base(e expr.Expr) expr.Base { return expr.Base{P: e.Span()} }

// spineStepFromTest converts an element name test into a spine step
// (ok=false for kind tests the token automaton cannot match by name).
func spineStepFromTest(t xtypes.NodeTest, anyDepth bool) (projection.Step, bool) {
	switch t.Kind {
	case xtypes.TestName, xtypes.TestElement:
	default:
		return projection.Step{}, false
	}
	s := projection.Step{AnyDepth: anyDepth}
	switch {
	case t.AnyName || (t.Kind == xtypes.TestElement && t.Name.IsZero()):
		s.Any = true
	case t.WildSpace:
		s.WildSpace, s.Local = true, t.Name.Local
	case t.WildLocal:
		s.WildLocal, s.Space = true, t.Name.Space
	default:
		s.Space, s.Local = t.Name.Space, t.Name.Local
	}
	return s, true
}

// baseSafePreds reports whether every predicate is statically boolean —
// never a number, so never positional. Window-base predicates see a
// singleton focus instead of the full sibling group, which is only
// equivalent for position-independent boolean predicates.
func baseSafePreds(preds []expr.Expr) bool {
	for _, p := range preds {
		if !baseSafePred(p) {
			return false
		}
	}
	return true
}

// booleanCalls are built-ins that always return xs:boolean.
var booleanCalls = map[string]bool{
	"not": true, "exists": true, "empty": true, "boolean": true,
	"contains": true, "starts-with": true, "ends-with": true,
	"true": true, "false": true,
}

func baseSafePred(p expr.Expr) bool {
	switch t := p.(type) {
	case *expr.Compare, *expr.Logic, *expr.Quantified, *expr.InstanceOf, *expr.NodeCompare:
		return true
	case *expr.Cast:
		return t.Castable
	case *expr.Step, *expr.Path, *expr.ContextItem:
		return true // node sequence: effective boolean value, never numeric
	case *expr.Filter:
		return baseSafePred(t.In)
	case *expr.Call:
		return (t.Name.Space == fnSpace || t.Name.Space == "") && booleanCalls[t.Name.Local]
	case *expr.Literal:
		return t.Val.T == xdm.TBoolean
	}
	return false
}

// ---- residual safety ----

// focusKind tracks what the focus means at a position of the residual tree.
type focusKind uint8

const (
	// focusWindow: the position is on the spine-replacement chain the
	// decomposition built; its focus is the window element, by construction.
	focusWindow focusKind = iota
	// focusLocal: the focus was rebound by an enclosing path step or
	// predicate to window-internal nodes.
	focusLocal
	// focusOuter: the focus is inherited from the query's top level — in the
	// original plan that was the document root, in the residual it would be
	// the window. Context-dependent expressions here would silently change
	// meaning, so they make the plan store-required.
	focusOuter
)

const fnSpace = "http://www.w3.org/2005/xpath-functions"

// escapingCalls are built-ins whose result depends on the document beyond
// the window subtree (or on registries the mini-store does not carry).
var escapingCalls = map[string]bool{
	"doc": true, "document": true, "doc-available": true, "collection": true,
	"root": true, "base-uri": true, "document-uri": true,
	"id": true, "idref": true, "lang": true,
}

// contextCalls are built-ins that consult the focus when called without an
// explicit argument.
var contextCalls = map[string]bool{
	"string": true, "number": true, "data": true, "name": true,
	"local-name": true, "namespace-uri": true, "normalize-space": true,
	"string-length": true, "position": true, "last": true,
}

// checkResidualRoot validates the residual built by the decomposition: the
// chain positions carry the intended window focus, everything hanging off
// them inherited the top-level focus in the original plan.
func checkResidualRoot(e expr.Expr) string {
	switch t := e.(type) {
	case *expr.ContextItem:
		return ""
	case *expr.Path:
		if why := checkResidualRoot(t.L); why != "" {
			return why
		}
		return checkResidual(t.R, focusLocal)
	case *expr.Filter:
		if why := checkResidualRoot(t.In); why != "" {
			return why
		}
		for _, p := range t.Preds {
			if why := checkResidual(p, focusLocal); why != "" {
				return why
			}
		}
		return ""
	case *expr.Step:
		return checkResidual(t, focusWindow)
	case *expr.Flwor:
		// The FLWOR residual: the first clause's In is the chain, the rest
		// of the FLWOR evaluated with the (unchanged) outer focus.
		if why := checkResidualRoot(t.Clauses[0].In); why != "" {
			return why
		}
		for i := 1; i < len(t.Clauses); i++ {
			if why := checkResidual(t.Clauses[i].In, focusOuter); why != "" {
				return why
			}
		}
		if t.Where != nil {
			if why := checkResidual(t.Where, focusOuter); why != "" {
				return why
			}
		}
		return checkResidual(t.Ret, focusOuter)
	default:
		return checkResidual(e, focusWindow)
	}
}

// checkResidual walks a residual subtree and reports (as a non-empty
// reason) any construct whose value could depend on document content
// outside the window, or whose meaning would shift when re-rooted.
func checkResidual(e expr.Expr, fk focusKind) string {
	switch t := e.(type) {
	case nil:
		return ""

	case *expr.Root:
		return "absolute path inside the per-window expression"

	case *expr.ContextItem:
		if fk == focusOuter {
			return "context item used outside the spine (refers to the document, not the window)"
		}
		return ""

	case *expr.Step:
		if fk == focusOuter {
			return "path step relative to the document root outside the spine"
		}
		switch t.Axis {
		case expr.AxisChild, expr.AxisDescendant, expr.AxisDescendantOrSelf,
			expr.AxisSelf, expr.AxisAttribute:
			return ""
		default:
			return fmt.Sprintf("%s axis can escape the window", t.Axis)
		}

	case *expr.Path:
		if why := checkResidual(t.L, fk); why != "" {
			return why
		}
		return checkResidual(t.R, focusLocal)

	case *expr.Filter:
		if why := checkResidual(t.In, fk); why != "" {
			return why
		}
		for _, p := range t.Preds {
			if why := checkResidual(p, focusLocal); why != "" {
				return why
			}
		}
		return ""

	case *expr.Call:
		if t.Name.Space == fnSpace || t.Name.Space == "" {
			if escapingCalls[t.Name.Local] {
				return fmt.Sprintf("fn:%s reaches outside the window", t.Name.Local)
			}
			if len(t.Args) == 0 && contextCalls[t.Name.Local] && fk == focusOuter {
				return fmt.Sprintf("fn:%s() consults the outer focus", t.Name.Local)
			}
		}
		for _, a := range t.Args {
			if why := checkResidual(a, fk); why != "" {
				return why
			}
		}
		return ""

	default:
		// Every other form — literals, variables, FLWOR, conditionals,
		// comparisons, constructors, type operators — passes the focus it
		// was given through to its children unchanged.
		for _, c := range e.Children() {
			if why := checkResidual(c, fk); why != "" {
				return why
			}
		}
		return ""
	}
}
