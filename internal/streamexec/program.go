package streamexec

import (
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/projection"
	"xqgo/internal/runtime"
)

// Program is the compiled streaming form of one query: the classification,
// the spine automaton's steps, and (for non-identity plans) the residual
// plan evaluated once per window. Compile always returns a Program — a
// store-required one simply records why, and executors fall back.
type Program struct {
	class  Class
	reason string

	spine     []projection.Step
	childOnly bool
	// residual is the per-window plan (nil for identity plans). Compiled
	// without profile hooks: stream counters are maintained by the Runner,
	// and plan-level operator ids must not clash with the main plan's.
	residual *runtime.Prepared
}

// Class returns the streamability classification.
func (p *Program) Class() Class { return p.class }

// Reason explains a store-required classification (empty when streamable).
func (p *Program) Reason() string { return p.reason }

// Streamable reports whether the program runs on the event automaton.
func (p *Program) Streamable() bool { return p.class.Streamable() }

// SpineString renders the spine for diagnostics ("/Order/OrderLine").
func (p *Program) SpineString() string {
	var b strings.Builder
	for _, s := range p.spine {
		b.WriteString(s.String())
	}
	return b.String()
}

// Compile analyzes an optimized query and, when streamable, compiles its
// residual. ro is the store engine's option set for the same query: the
// residual inherits its evaluation-strategy flags so per-window results
// match the fallback engine exactly.
func Compile(q *expr.Query, ro runtime.Options) *Program {
	if p := classify(q); p != nil {
		return p
	}
	d, ok, why := analyzeBody(q.Body)
	if !ok {
		return &Program{class: StoreRequired, reason: why}
	}
	if len(d.spine) == 0 {
		return &Program{class: StoreRequired, reason: "no spine: the whole document is one window"}
	}
	prog := &Program{spine: d.spine, childOnly: d.childOnly()}
	if d.residual == nil {
		// Identity plan: windows are the result. Disjoint (child-only)
		// windows forward tokens directly; descendant spines can nest
		// windows inside each other, so inner ones buffer until the
		// outermost closes.
		if prog.childOnly {
			prog.class = FullyStreamable
		} else {
			prog.class = BoundedBuffer
		}
		return prog
	}
	if !prog.childOnly {
		return &Program{class: StoreRequired,
			reason: "descendant spine with a per-window expression: windows can nest"}
	}
	if why := checkResidualRoot(d.residual); why != "" {
		return &Program{class: StoreRequired, reason: why}
	}
	rq := &expr.Query{
		Namespaces:    q.Namespaces,
		DefaultElemNS: q.DefaultElemNS,
		DefaultFuncNS: q.DefaultFuncNS,
		Body:          d.residual,
	}
	for _, v := range q.Vars {
		if v.Init == nil {
			rq.Vars = append(rq.Vars, v) // externals pass through via Env.Vars
		}
	}
	// The residual keeps its profile hooks: unprofiled windows pay one nil
	// check per operator instantiation, while profiled stream runs get real
	// per-operator rows (counted under a residual-sized profile — see
	// Runner.finishProfile — because operator ids are plan-specific).
	res, err := runtime.Compile(rq, runtime.Options{
		Eager:   ro.Eager,
		NoBatch: ro.NoBatch,
	})
	if err != nil {
		return &Program{class: StoreRequired, reason: "residual compile: " + err.Error()}
	}
	prog.class = BoundedBuffer
	prog.residual = res
	return prog
}

// ResidualProfile creates a counters profile sized for the residual plan's
// operators, or nil for identity plans (no residual to profile). Runners use
// it so residual executions never index a profile sized for a different plan.
func (p *Program) ResidualProfile() *runtime.Profile {
	if p.residual == nil {
		return nil
	}
	return p.residual.NewProfile(false)
}

// classify rejects prolog features the streaming evaluator does not model.
// nil means "keep analyzing".
func classify(q *expr.Query) *Program {
	if len(q.Funcs) > 0 {
		return &Program{class: StoreRequired, reason: "user-defined functions"}
	}
	for _, v := range q.Vars {
		if v.Init != nil {
			return &Program{class: StoreRequired,
				reason: "prolog variable initializer may scan the document"}
		}
	}
	return nil
}
