package streamexec

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"xqgo/internal/faultinject"
	"xqgo/internal/runtime"
	"xqgo/internal/store"
	"xqgo/internal/tokens"
	"xqgo/internal/trace"
	"xqgo/internal/xdm"
)

// Stats are one Runner's lifetime totals.
type Stats struct {
	// Windows opened by the spine automaton.
	Windows int64 `json:"windows"`
	// Results delivered (result items; for identity plans, one per window).
	Results int64 `json:"results"`
	// PeakBufferBytes is the high-water mark of bytes buffered at once
	// (estimated: window store content or queued window tokens).
	PeakBufferBytes int64 `json:"peakBufferBytes"`
	// OutputTokens serialized.
	OutputTokens int64 `json:"outputTokens"`
	// LastResultUnixNano is the wall clock of the most recent result
	// delivery (0 before the first): the /subscriptions lag gauge.
	LastResultUnixNano int64 `json:"lastResultUnixNano,omitempty"`
}

// maxWindowSpans bounds how many windows of one execution get individual
// trace spans: a long-lived feed opens unbounded windows, and exhausting the
// trace's span budget on them would crowd out the operator and summary spans
// synthesized at the end. Totals are always exact via the profile counters.
const maxWindowSpans = 64

// openWindow is one in-flight window of the nested (descendant-spine)
// identity mode.
type openWindow struct {
	seq   int64 // start order — results are delivered in this order
	depth int   // element depth of the window root
	buf   []tokens.Token
	bytes int64
	span  *trace.Span // nil past maxWindowSpans or without a trace
}

// Runner drives one streamable Program against a live decoder token stream.
// Feed it as the parser's Tap (Token), then call Finish at end of input. Not
// safe for concurrent use; one stream owns it.
type Runner struct {
	prog *Program
	env  Env

	emit      func(tokens.Token) error
	endResult func() error // result boundary; nil in shared-writer mode

	// dyn is the reused per-window dynamic context of the residual plan
	// (stable current-dateTime across windows, same interrupt hook as the
	// enclosing execution). When the execution is profiled, dyn carries
	// rprof — a profile sized for the residual plan — never env.Prof, whose
	// operator slots belong to the enclosing plan.
	dyn   *runtime.Dynamic
	rprof *runtime.Profile // residual-plan profile; folded back in Finish
	names *store.NamePool  // shared across window mini-stores

	// Spine NFA (single path): flat state-set stack, one mark per element
	// the automaton descended into. States are spine step indices.
	states []int32
	marks  []int32

	depth  int // element depth (nested mode)
	wDepth int // >0: inside a child-only window, nesting counted

	bld *store.Builder // residual mode: the window under construction

	// pendingWS replicates the ingestion whitespace policy (see
	// xmlparse.Incremental): with StripWhitespace, whitespace-only character
	// data is held back, dropped at element boundaries and flushed when
	// non-whitespace content follows in the same run.
	pendingWS []string

	open   []openWindow // nested mode: window stack (open[0] streams direct)
	queued []openWindow // nested mode: closed inner windows awaiting delivery
	seq    int64

	inToks   int64 // input tokens seen, for interrupt pacing
	outPend  int64 // output tokens not yet flushed to the profile
	curBytes int64

	wSpan      *trace.Span // child-only mode: the current window's span
	spansTaken int         // window spans created so far (maxWindowSpans cap)

	// Lifetime totals. Atomic because Stats() may be read live from another
	// goroutine (the /subscriptions introspection endpoint) while the feed
	// goroutine writes; the runner itself remains single-writer.
	windows      atomic.Int64
	results      atomic.Int64
	peakBuffer   atomic.Int64
	outputTokens atomic.Int64
	lastResult   atomic.Int64
}

func newRunner(p *Program, env Env) *Runner {
	if !p.Streamable() {
		panic("streamexec: program is not streamable")
	}
	r := &Runner{
		prog:   p,
		env:    env,
		names:  store.NewNamePool(),
		states: []int32{0},
		marks:  []int32{0},
		dyn: &runtime.Dynamic{
			Vars:      env.Vars,
			Now:       env.Now,
			Interrupt: env.Interrupt,
			Budget:    env.Budget,
		},
	}
	if env.Prof != nil {
		r.rprof = p.ResidualProfile()
		r.dyn.Prof = r.rprof
	}
	return r
}

// NewWriterRunner creates a runner serializing all results into one shared
// token writer (the Execute path: results concatenate exactly like the store
// engine's ExecuteToWriter, including the adjacent-atomic space rule).
func NewWriterRunner(p *Program, env Env, sw *tokens.StreamWriter) *Runner {
	r := newRunner(p, env)
	r.emit = sw.WriteToken
	return r
}

// NewResultRunner creates a runner delivering each result item as one
// serialized XML fragment (the subscription path). deliver owns the byte
// slice.
func NewResultRunner(p *Program, env Env, deliver func(xml []byte) error) *Runner {
	r := newRunner(p, env)
	rs := &resultSink{deliver: deliver}
	rs.sw = tokens.NewStreamWriter(&rs.buf)
	r.emit = func(t tokens.Token) error { return rs.sw.WriteToken(t) }
	r.endResult = rs.finish
	return r
}

// resultSink frames results: a fresh writer per result item.
type resultSink struct {
	buf     bytes.Buffer
	sw      *tokens.StreamWriter
	deliver func([]byte) error
}

func (rs *resultSink) finish() error {
	if err := rs.sw.Close(); err != nil {
		return err
	}
	out := append([]byte(nil), rs.buf.Bytes()...)
	rs.buf.Reset()
	rs.sw = tokens.NewStreamWriter(&rs.buf)
	return rs.deliver(out)
}

// Stats returns the runner's totals so far. Safe to call from any goroutine
// while the runner is live (the subscription introspection endpoint polls it
// mid-feed).
func (r *Runner) Stats() Stats {
	return Stats{
		Windows:            r.windows.Load(),
		Results:            r.results.Load(),
		PeakBufferBytes:    r.peakBuffer.Load(),
		OutputTokens:       r.outputTokens.Load(),
		LastResultUnixNano: r.lastResult.Load(),
	}
}

// windowSpan opens a live trace span for one window, if the execution is
// traced and the per-execution span budget allows.
func (r *Runner) windowSpan() *trace.Span {
	if r.env.Trace == nil || r.spansTaken >= maxWindowSpans {
		return nil
	}
	r.spansTaken++
	return r.env.Trace.StartSpan("window", r.env.TraceSpan).
		SetAttr("seq", r.windows.Load())
}

// interruptStride matches the store engine's polling granularity.
const interruptStride = 256

// Token consumes one decoder token — this is the method to install as the
// parser's Tap. Payload bytes are copied before the call returns.
func (r *Runner) Token(tok xml.Token) error {
	r.inToks++
	if r.env.Interrupt != nil && r.inToks%interruptStride == 0 {
		if err := r.env.Interrupt(); err != nil {
			return err
		}
	}
	switch t := tok.(type) {
	case xml.StartElement:
		return r.startElement(t)
	case xml.EndElement:
		return r.endElement()
	case xml.CharData:
		return r.charData(string(t))
	case xml.Comment:
		return r.content(tokens.Token{Kind: tokens.KindComment, Value: string(t)})
	case xml.ProcInst:
		if t.Target == "xml" {
			return nil // XML declaration
		}
		return r.content(tokens.Token{Kind: tokens.KindPI,
			Name: xdm.LocalName(t.Target), Value: string(t.Inst)})
	}
	return nil
}

// Finish validates balance at end of input and flushes counters.
func (r *Runner) Finish() error {
	if r.wDepth != 0 || len(r.open) != 0 {
		return fmt.Errorf("streamexec: input ended inside a window")
	}
	r.flushCounters()
	r.finishProfile()
	return nil
}

// finishProfile folds the residual plan's profile back into the enclosing
// execution's: engine counters merge into env.Prof, and when a trace is
// attached the residual's operator rows become op: spans under the execute
// span — the same per-operator cardinality view (observed items/starts vs.
// the static estimate) a store execution gets from post-run synthesis.
func (r *Runner) finishProfile() {
	if r.rprof == nil {
		return
	}
	rep := r.rprof.Report()
	r.rprof = nil
	r.env.Prof.Merge(rep.Counters)
	if r.env.Trace == nil {
		return
	}
	now := time.Now()
	for _, op := range rep.Operators {
		r.env.Trace.AddSpan("op:"+op.Kind, r.env.TraceSpan, now, now,
			trace.Attr{Key: "detail", Value: op.Detail},
			trace.Attr{Key: "line", Value: op.Line},
			trace.Attr{Key: "col", Value: op.Col},
			trace.Attr{Key: "starts", Value: op.Starts},
			trace.Attr{Key: "items", Value: op.Items},
			trace.Attr{Key: "estItems", Value: op.EstItems})
	}
}

func (r *Runner) flushCounters() {
	if r.outPend > 0 {
		r.env.Prof.AddXMLTokens(r.outPend)
		r.outPend = 0
	}
}

// ---- element events ----

func (r *Runner) startElement(t xml.StartElement) error {
	if r.prog.childOnly {
		if r.wDepth > 0 {
			r.wDepth++
			r.dropWS()
			return r.interiorStart(t)
		}
		if r.nfaStart(t.Name.Space, t.Name.Local) {
			// Window interiors bypass the automaton entirely, so pop the
			// speculative mark this element pushed: its end event will be
			// consumed by the window-depth counter, not nfaEnd.
			r.nfaEnd()
			r.wDepth = 1
			return r.openChildWindow(t)
		}
		return nil
	}

	// Nested (descendant-spine) identity mode: the automaton runs inside
	// windows too — deeper matches open nested windows of their own.
	r.depth++
	if r.nfaStart(t.Name.Space, t.Name.Local) {
		r.noteWindow()
		r.open = append(r.open, openWindow{seq: r.seq, depth: r.depth, span: r.windowSpan()})
		r.seq++
	}
	if len(r.open) > 0 {
		r.dropWS()
		if err := r.fanOut(tokens.Token{Kind: tokens.KindStartElement, Name: convName(t.Name)}); err != nil {
			return err
		}
		for _, a := range t.Attr {
			if isXmlns(a.Name) {
				continue
			}
			if err := r.fanOut(tokens.Token{Kind: tokens.KindAttribute,
				Name: convName(a.Name), Value: a.Value}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Runner) endElement() error {
	if r.prog.childOnly {
		if r.wDepth > 0 {
			r.dropWS()
			r.wDepth--
			if r.wDepth == 0 {
				return r.closeChildWindow()
			}
			return r.interiorEnd()
		}
		r.nfaEnd()
		return nil
	}

	if len(r.open) > 0 {
		r.dropWS()
		if err := r.fanOut(tokens.Token{Kind: tokens.KindEndElement}); err != nil {
			return err
		}
		if r.open[len(r.open)-1].depth == r.depth {
			if err := r.closeNestedWindow(); err != nil {
				return err
			}
		}
	}
	r.depth--
	r.nfaEnd()
	return nil
}

// ---- character/comment/PI content ----

func (r *Runner) charData(s string) error {
	if !r.inWindow() {
		return nil
	}
	if r.env.StripWhitespace && strings.TrimSpace(s) == "" {
		r.pendingWS = append(r.pendingWS, s)
		return nil
	}
	if err := r.flushWS(); err != nil {
		return err
	}
	return r.contentText(s)
}

func (r *Runner) content(t tokens.Token) error {
	if !r.inWindow() {
		return nil
	}
	if err := r.flushWS(); err != nil {
		return err
	}
	if r.prog.residual != nil {
		switch t.Kind {
		case tokens.KindComment:
			r.bld.Comment(t.Value)
		case tokens.KindPI:
			r.bld.PI(t.Name.Local, t.Value)
		}
		return r.addBuf(tokBytes(t))
	}
	return r.fanOut(t)
}

func (r *Runner) contentText(s string) error {
	if r.prog.residual != nil {
		r.bld.Text(s)
		return r.addBuf(int64(len(s)) + 16)
	}
	return r.fanOut(tokens.Token{Kind: tokens.KindText, Value: s})
}

func (r *Runner) inWindow() bool {
	if r.prog.childOnly {
		return r.wDepth > 0
	}
	return len(r.open) > 0
}

func (r *Runner) dropWS() { r.pendingWS = r.pendingWS[:0] }

func (r *Runner) flushWS() error {
	for _, s := range r.pendingWS {
		if err := r.contentText(s); err != nil {
			return err
		}
	}
	r.pendingWS = r.pendingWS[:0]
	return nil
}

// ---- child-only windows ----

func (r *Runner) openChildWindow(t xml.StartElement) error {
	r.noteWindow()
	r.wSpan = r.windowSpan()
	if r.prog.residual == nil {
		// Fully streamable: tokens go straight out.
		return r.interiorStart(t)
	}
	r.bld = store.NewBuilder(store.BuilderOptions{Names: r.names})
	r.bld.StartDocument()
	return r.interiorStart(t)
}

// interiorStart feeds a start-element (with attributes) into the current
// window: the mini-store builder in residual mode, the output stream in
// fully-streamable mode.
func (r *Runner) interiorStart(t xml.StartElement) error {
	if r.prog.residual != nil {
		r.bld.StartElement(convName(t.Name))
		est := int64(len(t.Name.Local)+len(t.Name.Space)) + 16
		for _, a := range t.Attr {
			if a.Name.Space == "xmlns" {
				r.bld.NSDecl(a.Name.Local, a.Value)
				continue
			}
			if a.Name.Space == "" && a.Name.Local == "xmlns" {
				r.bld.NSDecl("", a.Value)
				continue
			}
			if err := r.bld.Attr(convName(a.Name), a.Value); err != nil {
				return err
			}
			est += int64(len(a.Name.Local)+len(a.Name.Space)+len(a.Value)) + 16
		}
		return r.addBuf(est)
	}
	if err := r.emitTok(tokens.Token{Kind: tokens.KindStartElement, Name: convName(t.Name)}); err != nil {
		return err
	}
	for _, a := range t.Attr {
		if isXmlns(a.Name) {
			continue
		}
		if err := r.emitTok(tokens.Token{Kind: tokens.KindAttribute,
			Name: convName(a.Name), Value: a.Value}); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) interiorEnd() error {
	if r.prog.residual != nil {
		r.bld.EndElement()
		return nil
	}
	return r.emitTok(tokens.Token{Kind: tokens.KindEndElement})
}

func (r *Runner) closeChildWindow() error {
	if r.prog.residual == nil {
		if err := r.emitTok(tokens.Token{Kind: tokens.KindEndElement}); err != nil {
			return err
		}
		r.wSpan.End()
		r.wSpan = nil
		return r.finishResult()
	}
	r.bld.EndElement()
	doc, err := r.bld.Done()
	r.bld = nil
	if err != nil {
		return err
	}
	err = r.evalWindow(doc)
	r.wSpan.SetAttr("bufferBytes", r.curBytes).End()
	r.wSpan = nil
	r.dropBuf(r.curBytes)
	r.flushCounters()
	return err
}

// evalWindow runs the residual plan over one completed window mini-store.
func (r *Runner) evalWindow(doc *store.Document) (err error) {
	// StreamedNode accessors surface errors by panicking; convert at the
	// boundary like the store engine does. Non-error panics become XQGO0002
	// errors so a poisoned window detaches only its own subscription.
	defer runtime.RecoverXQ(&err)
	faultinject.FirePanic(faultinject.WindowPanic)
	r.dyn.ContextItem = doc.RootNode().ChildrenOf()[0]
	it, err := r.prog.residual.Iterator(r.dyn)
	if err != nil {
		return err
	}
	for {
		item, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := runtime.EmitItemTokens(item, r.emitTok); err != nil {
			return err
		}
		if err := r.finishResult(); err != nil {
			return err
		}
	}
}

// ---- nested identity windows ----

// fanOut delivers one content token to every open window: the outermost
// streams directly, inner windows buffer their own copy (each is a separate
// result whose subtree overlaps the outer one).
func (r *Runner) fanOut(t tokens.Token) error {
	if err := r.emitTok(t); err != nil {
		return err
	}
	for i := 1; i < len(r.open); i++ {
		w := &r.open[i]
		w.buf = append(w.buf, t)
		w.bytes += tokBytes(t)
		if err := r.addBuf(tokBytes(t)); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) closeNestedWindow() error {
	n := len(r.open) - 1
	w := r.open[n]
	r.open = r.open[:n]
	w.span.SetAttr("bufferBytes", w.bytes).End()
	if n > 0 {
		// An inner window completed: deliverable only after the outermost
		// closes (its direct stream is still in progress).
		r.queued = append(r.queued, w)
		return nil
	}
	// The outermost window's direct stream just ended; release the inner
	// windows it delayed, in start (document) order.
	if err := r.finishResult(); err != nil {
		return err
	}
	sort.Slice(r.queued, func(i, j int) bool { return r.queued[i].seq < r.queued[j].seq })
	for _, q := range r.queued {
		for _, t := range q.buf {
			if err := r.emitTok(t); err != nil {
				return err
			}
		}
		r.dropBuf(q.bytes)
		if err := r.finishResult(); err != nil {
			return err
		}
	}
	r.queued = r.queued[:0]
	r.flushCounters()
	return nil
}

// ---- accounting ----

func (r *Runner) noteWindow() {
	r.windows.Add(1)
	r.env.Prof.AddStreamWindows(1)
}

func (r *Runner) finishResult() error {
	r.results.Add(1)
	r.lastResult.Store(time.Now().UnixNano())
	r.env.Prof.AddStreamResults(1)
	if r.endResult != nil {
		return r.endResult()
	}
	return nil
}

func (r *Runner) emitTok(t tokens.Token) error {
	r.outputTokens.Add(1)
	r.outPend++
	return r.emit(t)
}

// addBuf grows the live buffer estimate and maintains the high-water mark
// (published to the profile as it rises, so /metrics stays current during
// long feeds). The runner is the only writer, so Load+Store suffices.
// Buffered bytes are charged against the execution's memory budget — these
// are exactly the retained bytes Koch et al.'s buffer bound is about — and
// discharged by dropBuf as windows deliver.
func (r *Runner) addBuf(n int64) error {
	r.curBytes += n
	if r.curBytes > r.peakBuffer.Load() {
		r.peakBuffer.Store(r.curBytes)
		r.env.Prof.NoteStreamBufferPeak(r.curBytes)
	}
	return r.env.Budget.Charge(n)
}

// dropBuf releases delivered window bytes from the live estimate and the
// budget.
func (r *Runner) dropBuf(n int64) {
	r.curBytes -= n
	r.env.Budget.Discharge(n)
}

// tokBytes estimates the retained size of one buffered token.
func tokBytes(t tokens.Token) int64 {
	return int64(len(t.Name.Space)+len(t.Name.Local)+len(t.Value)) + 16
}

// ---- spine NFA ----

// nfaStart advances the automaton into an element, reporting whether the
// element completes the spine. Mirrors projection.Runner's flat state-set
// stack, specialized to a single path.
func (r *Runner) nfaStart(space, local string) bool {
	top := r.marks[len(r.marks)-1]
	cur := r.states[top:len(r.states):len(r.states)]
	next := len(r.states)
	matched := false
	for _, si := range cur {
		st := r.prog.spine[si]
		if st.AnyDepth {
			r.states = append(r.states, si) // may still match deeper
		}
		if st.Match(space, local) {
			if int(si)+1 == len(r.prog.spine) {
				matched = true
			} else {
				r.states = append(r.states, si+1)
			}
		}
	}
	r.marks = append(r.marks, int32(next))
	return matched
}

func (r *Runner) nfaEnd() {
	top := r.marks[len(r.marks)-1]
	r.marks = r.marks[:len(r.marks)-1]
	r.states = r.states[:top]
}

// ---- helpers ----

func convName(n xml.Name) xdm.QName { return xdm.QName{Space: n.Space, Local: n.Local} }

func isXmlns(n xml.Name) bool {
	return n.Space == "xmlns" || (n.Space == "" && n.Local == "xmlns")
}
