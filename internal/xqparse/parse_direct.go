package xqparse

import (
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// Direct XML constructors are scanned character-by-character: XML content
// has its own lexical structure (tags, attribute value templates, enclosed
// {..} expressions, CDATA, entity references), so when the parser sees "<"
// where a primary expression is expected it drops to this raw mode, and
// re-enters the token stream inside every enclosed expression.

// rawAttr is an attribute collected before namespace resolution.
type rawAttr struct {
	lexical string
	parts   []expr.Expr
}

// parseDirectElement is entered with the current token "<" (already
// consumed from the lexer, whose cursor sits just past it).
func (p *parser) parseDirectElement() (expr.Expr, error) {
	if len(p.queue) != 0 {
		return nil, p.errf("internal: lookahead before direct constructor")
	}
	e, err := p.parseDirectInner()
	if err != nil {
		return nil, err
	}
	// Resume token scanning after the constructor.
	if err := p.advance(); err != nil {
		return nil, err
	}
	return e, nil
}

// skipXMLSpace skips XML whitespace in raw mode.
func (l *lexer) skipXMLSpace() {
	for {
		switch l.peekRune() {
		case ' ', '\t', '\n', '\r':
			l.readRune()
		default:
			return
		}
	}
}

// rawQName reads a lexical QName at the cursor.
func (l *lexer) rawQName() (string, error) {
	if !isNameStart(l.peekRune()) {
		return "", l.errf("expected a name in XML constructor")
	}
	name := l.scanNCName()
	if l.peekRune() == ':' {
		l.readRune()
		if !isNameStart(l.peekRune()) {
			return "", l.errf("expected a local name after %q:", name)
		}
		name += ":" + l.scanNCName()
	}
	return name, nil
}

// parseDirectInner parses an element whose "<" has been consumed.
func (p *parser) parseDirectInner() (expr.Expr, error) {
	l := p.lex
	pos := expr.Pos{Line: l.line, Col: l.col}
	tag, err := l.rawQName()
	if err != nil {
		return nil, err
	}
	p.pushNS()
	defer p.popNS()

	var nsBinds []expr.NSBinding
	var attrs []rawAttr
	selfClosing := false
	for {
		l.skipXMLSpace()
		switch l.peekRune() {
		case '/':
			l.readRune()
			if l.peekRune() != '>' {
				return nil, l.errf("expected '>' after '/'")
			}
			l.readRune()
			selfClosing = true
		case '>':
			l.readRune()
		case -1:
			return nil, l.errf("unterminated start tag <%s", tag)
		default:
			aname, err := l.rawQName()
			if err != nil {
				return nil, err
			}
			l.skipXMLSpace()
			if l.peekRune() != '=' {
				return nil, l.errf("expected '=' after attribute %s", aname)
			}
			l.readRune()
			l.skipXMLSpace()
			parts, err := p.parseAttrValue()
			if err != nil {
				return nil, err
			}
			if aname == "xmlns" || strings.HasPrefix(aname, "xmlns:") {
				uri, ok := literalConcat(parts)
				if !ok {
					return nil, l.errf("namespace declaration %s must be a literal", aname)
				}
				prefix := strings.TrimPrefix(strings.TrimPrefix(aname, "xmlns"), ":")
				p.bindNS(prefix, uri)
				nsBinds = append(nsBinds, expr.NSBinding{Prefix: prefix, URI: uri})
				continue
			}
			attrs = append(attrs, rawAttr{lexical: aname, parts: parts})
			continue
		}
		break
	}

	name, err := p.resolveQName(tag, "elem")
	if err != nil {
		return nil, err
	}
	elem := &expr.ElemConstructor{Base: expr.Base{P: pos}, Name: name, NS: nsBinds}
	for _, a := range attrs {
		aq, err := p.resolveQName(a.lexical, "")
		if err != nil {
			return nil, err
		}
		elem.Attrs = append(elem.Attrs, expr.DirAttr{Name: aq, Parts: a.parts})
	}
	if selfClosing {
		return elem, nil
	}

	content, err := p.parseElementContent(tag)
	if err != nil {
		return nil, err
	}
	elem.Content = content
	return elem, nil
}

// literalConcat concatenates parts if they are all string literals.
func literalConcat(parts []expr.Expr) (string, bool) {
	var b strings.Builder
	for _, pt := range parts {
		lit, ok := pt.(*expr.Literal)
		if !ok || lit.Val.T != xdm.TString {
			return "", false
		}
		b.WriteString(lit.Val.S)
	}
	return b.String(), true
}

// parseAttrValue parses a quoted attribute value template into literal and
// enclosed-expression parts.
func (p *parser) parseAttrValue() ([]expr.Expr, error) {
	l := p.lex
	quote := l.peekRune()
	if quote != '"' && quote != '\'' {
		return nil, l.errf("expected a quoted attribute value")
	}
	l.readRune()
	var parts []expr.Expr
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, expr.NewLiteral(expr.Pos{Line: l.line, Col: l.col},
				xdm.NewString(text.String())))
			text.Reset()
		}
	}
	for {
		r := l.readRune()
		switch r {
		case -1:
			return nil, l.errf("unterminated attribute value")
		case quote:
			if l.peekRune() == quote { // doubled quote escape
				l.readRune()
				text.WriteRune(quote)
				continue
			}
			flush()
			if parts == nil {
				parts = []expr.Expr{expr.NewLiteral(expr.Pos{Line: l.line, Col: l.col}, xdm.NewString(""))}
			}
			return parts, nil
		case '&':
			s, err := l.entityRef()
			if err != nil {
				return nil, err
			}
			text.WriteString(s)
		case '{':
			if l.peekRune() == '{' {
				l.readRune()
				text.WriteByte('{')
				continue
			}
			flush()
			e, err := p.enclosedExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case '}':
			if l.peekRune() == '}' {
				l.readRune()
				text.WriteByte('}')
				continue
			}
			return nil, l.errf(`single "}" in attribute value (use "}}")`)
		case '\n', '\t', '\r':
			text.WriteByte(' ') // attribute value normalization
		default:
			text.WriteRune(r)
		}
	}
}

// enclosedExpr re-enters token mode to parse "{ Expr }" with the "{"
// already consumed; on return the lexer cursor is just past "}".
func (p *parser) enclosedExpr() (expr.Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tRBrace || len(p.queue) != 0 {
		return nil, p.errf(`expected "}" to close the enclosed expression, found %s`, p.tok)
	}
	return e, nil
}

// parseElementContent parses element content up to and including the
// matching end tag.
func (p *parser) parseElementContent(tag string) ([]expr.Expr, error) {
	l := p.lex
	var content []expr.Expr
	var text strings.Builder
	sawEntity := false
	flush := func() {
		if text.Len() == 0 {
			return
		}
		s := text.String()
		text.Reset()
		ent := sawEntity
		sawEntity = false
		// Boundary-space handling: whitespace-only literal runs are dropped
		// unless "declare boundary-space preserve" (entity-born whitespace
		// is always kept).
		if !p.boundaryPres && !ent && strings.TrimSpace(s) == "" {
			return
		}
		content = append(content, &expr.TextConstructor{
			Base: expr.Base{P: expr.Pos{Line: l.line, Col: l.col}},
			X:    expr.NewLiteral(expr.Pos{Line: l.line, Col: l.col}, xdm.NewString(s)),
		})
	}
	for {
		r := l.readRune()
		switch r {
		case -1:
			return nil, l.errf("unterminated element <%s>", tag)
		case '{':
			if l.peekRune() == '{' {
				l.readRune()
				text.WriteByte('{')
				continue
			}
			flush()
			e, err := p.enclosedExpr()
			if err != nil {
				return nil, err
			}
			content = append(content, e)
		case '}':
			if l.peekRune() == '}' {
				l.readRune()
				text.WriteByte('}')
				continue
			}
			return nil, l.errf(`single "}" in element content (use "}}")`)
		case '&':
			s, err := l.entityRef()
			if err != nil {
				return nil, err
			}
			text.WriteString(s)
			sawEntity = true
		case '<':
			switch {
			case l.peekRune() == '/':
				flush()
				l.readRune()
				end, err := l.rawQName()
				if err != nil {
					return nil, err
				}
				if end != tag {
					return nil, l.errf("end tag </%s> does not match <%s>", end, tag)
				}
				l.skipXMLSpace()
				if l.peekRune() != '>' {
					return nil, l.errf("expected '>' in end tag")
				}
				l.readRune()
				return content, nil
			case strings.HasPrefix(l.src[l.pos:], "!--"):
				flush()
				l.advanceBy(3)
				idx := strings.Index(l.src[l.pos:], "-->")
				if idx < 0 {
					return nil, l.errf("unterminated comment")
				}
				comment := l.src[l.pos : l.pos+idx]
				l.advanceBy(idx + 3)
				content = append(content, &expr.CommentConstructor{
					Base: expr.Base{P: expr.Pos{Line: l.line, Col: l.col}},
					X:    expr.NewLiteral(expr.Pos{Line: l.line, Col: l.col}, xdm.NewString(comment)),
				})
			case strings.HasPrefix(l.src[l.pos:], "![CDATA["):
				l.advanceBy(8)
				idx := strings.Index(l.src[l.pos:], "]]>")
				if idx < 0 {
					return nil, l.errf("unterminated CDATA section")
				}
				text.WriteString(l.src[l.pos : l.pos+idx])
				sawEntity = true // CDATA content is never boundary space
				l.advanceBy(idx + 3)
			case l.peekRune() == '?':
				flush()
				l.readRune()
				target, err := l.rawQName()
				if err != nil {
					return nil, err
				}
				l.skipXMLSpace()
				idx := strings.Index(l.src[l.pos:], "?>")
				if idx < 0 {
					return nil, l.errf("unterminated processing instruction")
				}
				data := l.src[l.pos : l.pos+idx]
				l.advanceBy(idx + 2)
				content = append(content, &expr.PIConstructor{
					Base:   expr.Base{P: expr.Pos{Line: l.line, Col: l.col}},
					Target: target,
					X:      expr.NewLiteral(expr.Pos{Line: l.line, Col: l.col}, xdm.NewString(data)),
				})
			case isNameStart(l.peekRune()):
				flush()
				child, err := p.parseDirectInner()
				if err != nil {
					return nil, err
				}
				content = append(content, child)
			default:
				return nil, l.errf("unexpected '<' in element content")
			}
		default:
			text.WriteRune(r)
		}
	}
}

// advanceBy moves the raw cursor n bytes forward, maintaining line/col.
func (l *lexer) advanceBy(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos+i] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
	}
	l.pos += n
}
