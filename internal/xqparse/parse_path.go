package xqparse

import (
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// dosStep builds the descendant-or-self::node() step that "//" abbreviates.
func dosStep(pos expr.Pos) expr.Expr {
	return &expr.Step{
		Base: expr.Base{P: pos},
		Axis: expr.AxisDescendantOrSelf,
		Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind},
	}
}

// parsePath parses PathExpr: a leading "/", "//" or a relative path.
func (p *parser) parsePath() (expr.Expr, error) {
	pos := p.pos()
	switch p.tok.kind {
	case tSlash:
		if err := p.advance(); err != nil {
			return nil, err
		}
		root := &expr.Root{Base: expr.Base{P: pos}}
		if !p.startsStep() {
			return root, nil // "/" alone
		}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		return p.parseRelative(&expr.Path{Base: expr.Base{P: pos}, L: root, R: step})
	case tSlashSlash:
		if err := p.advance(); err != nil {
			return nil, err
		}
		root := &expr.Root{Base: expr.Base{P: pos}}
		lhs := &expr.Path{Base: expr.Base{P: pos}, L: root, R: dosStep(pos)}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		return p.parseRelative(&expr.Path{Base: expr.Base{P: pos}, L: lhs, R: step})
	}
	if !p.startsStep() {
		return nil, p.errf("expected an expression, found %s", p.tok)
	}
	first, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tSlash && p.tok.kind != tSlashSlash {
		return first, nil
	}
	return p.parseRelative(first)
}

// parseRelative continues a path after lhs: (("/"|"//") Step)*.
func (p *parser) parseRelative(lhs expr.Expr) (expr.Expr, error) {
	for {
		pos := p.pos()
		switch p.tok.kind {
		case tSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tSlashSlash:
			if err := p.advance(); err != nil {
				return nil, err
			}
			lhs = &expr.Path{Base: expr.Base{P: pos}, L: lhs, R: dosStep(pos)}
		default:
			return lhs, nil
		}
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		lhs = &expr.Path{Base: expr.Base{P: pos}, L: lhs, R: step}
	}
}

// startsStep reports whether the current token can begin a step or primary.
func (p *parser) startsStep() bool {
	switch p.tok.kind {
	case tName, tString, tInteger, tDecimal, tDouble, tDollar, tLParen,
		tDot, tDotDot, tAt, tStar, tLt:
		return true
	}
	return false
}

var axisByName = map[string]expr.Axis{
	"child":              expr.AxisChild,
	"descendant":         expr.AxisDescendant,
	"descendant-or-self": expr.AxisDescendantOrSelf,
	"self":               expr.AxisSelf,
	"attribute":          expr.AxisAttribute,
	"parent":             expr.AxisParent,
	"ancestor":           expr.AxisAncestor,
	"ancestor-or-self":   expr.AxisAncestorOrSelf,
	"following-sibling":  expr.AxisFollowingSibling,
	"preceding-sibling":  expr.AxisPrecedingSibling,
}

// unsupportedAxes are the optional XPath axes we reject explicitly.
var unsupportedAxes = map[string]bool{"following": true, "preceding": true, "namespace": true}

// parseStep parses one step expression (axis step or filter expression),
// including its predicate list.
func (p *parser) parseStep() (expr.Expr, error) {
	pos := p.pos()
	var base expr.Expr

	switch p.tok.kind {
	case tDotDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		base = &expr.Step{Base: expr.Base{P: pos}, Axis: expr.AxisParent,
			Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind}}
	case tAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		test, err := p.parseNodeTest(expr.AxisAttribute)
		if err != nil {
			return nil, err
		}
		base = &expr.Step{Base: expr.Base{P: pos}, Axis: expr.AxisAttribute, Test: test}
	case tStar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		base = &expr.Step{Base: expr.Base{P: pos}, Axis: expr.AxisChild,
			Test: xtypes.NodeTest{AnyName: true}}
	case tName:
		// axis::test?
		if ax, ok := axisByName[p.tok.val]; ok {
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tColonColon {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				test, err := p.parseNodeTest(ax)
				if err != nil {
					return nil, err
				}
				base = &expr.Step{Base: expr.Base{P: pos}, Axis: ax, Test: test}
				break
			}
		}
		if unsupportedAxes[p.tok.val] {
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tColonColon {
				return nil, p.errf("the %s axis is optional in the paper's list and not supported", p.tok.val)
			}
		}
		// kind test or name test in child axis, or a primary (function call
		// / keyword constructs are routed through parsePrimary).
		if isKindTestName(p.tok.val) {
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tLParen {
				test, err := p.parseNodeTest(expr.AxisChild)
				if err != nil {
					return nil, err
				}
				base = &expr.Step{Base: expr.Base{P: pos}, Axis: expr.AxisChild, Test: test}
				break
			}
		}
		// function call / computed constructor?
		prim, isPrim, err := p.tryParseNamePrimary()
		if err != nil {
			return nil, err
		}
		if isPrim {
			base = prim
			break
		}
		// plain name test on the child axis
		test, err := p.parseNodeTest(expr.AxisChild)
		if err != nil {
			return nil, err
		}
		base = &expr.Step{Base: expr.Base{P: pos}, Axis: expr.AxisChild, Test: test}
	default:
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		base = prim
	}

	// predicate list
	var preds []expr.Expr
	for p.tok.kind == tLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRBracket, `"]"`); err != nil {
			return nil, err
		}
		preds = append(preds, pr)
	}
	if len(preds) > 0 {
		return &expr.Filter{Base: expr.Base{P: pos}, In: base, Preds: preds}, nil
	}
	return base, nil
}

func isKindTestName(s string) bool {
	switch s {
	case "node", "text", "comment", "processing-instruction",
		"element", "attribute", "document-node":
		return true
	}
	return false
}

// parseNodeTest parses a node test for the given axis.
func (p *parser) parseNodeTest(axis expr.Axis) (xtypes.NodeTest, error) {
	if p.tok.kind == tStar {
		if err := p.advance(); err != nil {
			return xtypes.NodeTest{}, err
		}
		return xtypes.NodeTest{AnyName: true}, nil
	}
	if p.tok.kind != tName {
		return xtypes.NodeTest{}, p.errf("expected a node test, found %s", p.tok)
	}
	name := p.tok.val
	// kind tests
	if isKindTestName(name) {
		if t, err := p.peek(1); err != nil {
			return xtypes.NodeTest{}, err
		} else if t.kind == tLParen {
			return p.parseKindTest()
		}
	}
	if err := p.advance(); err != nil {
		return xtypes.NodeTest{}, err
	}
	switch {
	case strings.HasSuffix(name, ":*"):
		prefix := strings.TrimSuffix(name, ":*")
		uri, ok := p.lookupNS(prefix)
		if !ok {
			return xtypes.NodeTest{}, p.errf("undeclared namespace prefix %q", prefix)
		}
		return xtypes.NodeTest{WildLocal: true, Name: xdm.QName{Space: uri, Prefix: prefix}}, nil
	case strings.HasPrefix(name, "*:"):
		return xtypes.NodeTest{WildSpace: true, Name: xdm.LocalName(strings.TrimPrefix(name, "*:"))}, nil
	default:
		kind := ""
		if axis != expr.AxisAttribute {
			kind = "elem" // default element namespace applies
		}
		q, err := p.resolveQName(name, kind)
		if err != nil {
			return xtypes.NodeTest{}, err
		}
		return xtypes.NodeTest{Name: q}, nil
	}
}

// parseKindTest parses node()/text()/element(name)/... with the cursor at
// the keyword.
func (p *parser) parseKindTest() (xtypes.NodeTest, error) {
	kw := p.tok.val
	if err := p.advance(); err != nil {
		return xtypes.NodeTest{}, err
	}
	if err := p.expect(tLParen, `"("`); err != nil {
		return xtypes.NodeTest{}, err
	}
	t := xtypes.NodeTest{}
	switch kw {
	case "node":
		t.Kind = xtypes.TestAnyKind
	case "text":
		t.Kind = xtypes.TestText
	case "comment":
		t.Kind = xtypes.TestComment
	case "processing-instruction":
		t.Kind = xtypes.TestPI
		if p.tok.kind == tName || p.tok.kind == tString {
			t.Name = xdm.LocalName(p.tok.val)
			if err := p.advance(); err != nil {
				return xtypes.NodeTest{}, err
			}
		} else {
			t.AnyName = true
		}
	case "document-node":
		t.Kind = xtypes.TestDoc
		// Optional element(...) argument accepted and ignored.
		if p.tok.kind == tName && p.tok.val == "element" {
			if _, err := p.parseKindTest(); err != nil {
				return xtypes.NodeTest{}, err
			}
		}
	case "element", "attribute":
		if kw == "element" {
			t.Kind = xtypes.TestElement
		} else {
			t.Kind = xtypes.TestAttribute
		}
		switch p.tok.kind {
		case tStar:
			t.AnyName = true
			if err := p.advance(); err != nil {
				return xtypes.NodeTest{}, err
			}
		case tName:
			kindNS := "elem"
			if kw == "attribute" {
				kindNS = ""
			}
			q, err := p.resolveQName(p.tok.val, kindNS)
			if err != nil {
				return xtypes.NodeTest{}, err
			}
			t.Name = q
			if err := p.advance(); err != nil {
				return xtypes.NodeTest{}, err
			}
		default:
			t.AnyName = true
		}
		// Optional type annotation argument: parsed, then rejected since
		// schema types are unsupported beyond built-ins.
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return xtypes.NodeTest{}, err
			}
			if p.tok.kind != tName {
				return xtypes.NodeTest{}, p.errf("expected type name")
			}
			if err := p.advance(); err != nil {
				return xtypes.NodeTest{}, err
			}
			if p.tok.kind == tQuestion {
				if err := p.advance(); err != nil {
					return xtypes.NodeTest{}, err
				}
			}
		}
	default:
		return xtypes.NodeTest{}, p.errf("unknown kind test %q", kw)
	}
	if err := p.expect(tRParen, `")"`); err != nil {
		return xtypes.NodeTest{}, err
	}
	return t, nil
}

// tryParseNamePrimary handles the constructs that begin with a name in a
// step position: function calls and computed constructors. Returns
// isPrim=false when the name should be treated as a child-axis name test.
func (p *parser) tryParseNamePrimary() (expr.Expr, bool, error) {
	name := p.tok.val
	t1, err := p.peek(1)
	if err != nil {
		return nil, false, err
	}
	// computed constructors: element/attribute/text/comment/document/
	// processing-instruction followed by a name or '{'
	switch name {
	case "element", "attribute":
		if t1.kind == tLBrace {
			e, err := p.parseComputedElemAttr(name, true)
			return e, true, err
		}
		if t1.kind == tName {
			if t2, err := p.peek(2); err != nil {
				return nil, false, err
			} else if t2.kind == tLBrace {
				e, err := p.parseComputedElemAttr(name, false)
				return e, true, err
			}
		}
	case "text", "comment", "document":
		if t1.kind == tLBrace {
			e, err := p.parseComputedLeaf(name)
			return e, true, err
		}
	case "processing-instruction":
		if t1.kind == tName {
			if t2, err := p.peek(2); err != nil {
				return nil, false, err
			} else if t2.kind == tLBrace {
				e, err := p.parseComputedPI()
				return e, true, err
			}
		}
	case "ordered", "unordered":
		if t1.kind == tLBrace {
			pos := p.pos()
			unordered := name == "unordered"
			if err := p.advance(); err != nil {
				return nil, false, err
			}
			if err := p.advance(); err != nil { // '{'
				return nil, false, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, false, err
			}
			if err := p.expect(tRBrace, `"}"`); err != nil {
				return nil, false, err
			}
			if unordered {
				return &expr.Call{Base: expr.Base{P: pos},
					Name: xdm.QName{Space: NSFn, Local: "unordered", Prefix: "fn"},
					Args: []expr.Expr{inner}}, true, nil
			}
			return inner, true, nil
		}
	}
	// function call
	if t1.kind == tLParen && !reservedFuncNames[name] {
		pos := p.pos()
		fname, err := p.resolveQName(name, "func")
		if err != nil {
			return nil, false, err
		}
		if err := p.advance(); err != nil {
			return nil, false, err
		}
		if err := p.advance(); err != nil { // '('
			return nil, false, err
		}
		var args []expr.Expr
		for p.tok.kind != tRParen {
			if len(args) > 0 {
				if err := p.expect(tComma, `","`); err != nil {
					return nil, false, err
				}
			}
			a, err := p.parseExprSingle()
			if err != nil {
				return nil, false, err
			}
			args = append(args, a)
		}
		if err := p.advance(); err != nil { // ')'
			return nil, false, err
		}
		return &expr.Call{Base: expr.Base{P: pos}, Name: fname, Args: args}, true, nil
	}
	return nil, false, nil
}

// parseComputedElemAttr parses element/attribute computed constructors.
func (p *parser) parseComputedElemAttr(kw string, computedName bool) (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // kw
		return nil, err
	}
	var name xdm.QName
	var nameExpr expr.Expr
	if computedName {
		if err := p.advance(); err != nil { // '{'
			return nil, err
		}
		ne, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRBrace, `"}"`); err != nil {
			return nil, err
		}
		nameExpr = ne
	} else {
		kindNS := ""
		if kw == "element" {
			kindNS = "elem"
		}
		q, err := p.resolveQName(p.tok.val, kindNS)
		if err != nil {
			return nil, err
		}
		name = q
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tLBrace, `"{"`); err != nil {
		return nil, err
	}
	var content expr.Expr
	if p.tok.kind != tRBrace {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = c
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return nil, err
	}
	if kw == "attribute" {
		a := &expr.AttrConstructor{Base: expr.Base{P: pos}, Name: name, NameExpr: nameExpr}
		if content != nil {
			a.Value = []expr.Expr{content}
		}
		return a, nil
	}
	e := &expr.ElemConstructor{Base: expr.Base{P: pos}, Name: name, NameExpr: nameExpr}
	if content != nil {
		e.Content = []expr.Expr{content}
	}
	return e, nil
}

// parseComputedLeaf parses text{}/comment{}/document{}.
func (p *parser) parseComputedLeaf(kw string) (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // kw
		return nil, err
	}
	if err := p.advance(); err != nil { // '{'
		return nil, err
	}
	var content expr.Expr
	if p.tok.kind != tRBrace {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = c
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return nil, err
	}
	if content == nil {
		content = &expr.Seq{Base: expr.Base{P: pos}}
	}
	switch kw {
	case "text":
		return &expr.TextConstructor{Base: expr.Base{P: pos}, X: content}, nil
	case "comment":
		return &expr.CommentConstructor{Base: expr.Base{P: pos}, X: content}, nil
	default:
		return &expr.DocConstructor{Base: expr.Base{P: pos}, X: content}, nil
	}
}

func (p *parser) parseComputedPI() (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // kw
		return nil, err
	}
	target := p.tok.val
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tLBrace, `"{"`); err != nil {
		return nil, err
	}
	var content expr.Expr = &expr.Seq{Base: expr.Base{P: pos}}
	if p.tok.kind != tRBrace {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		content = c
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return nil, err
	}
	return &expr.PIConstructor{Base: expr.Base{P: pos}, Target: target, X: content}, nil
}

// parsePrimary parses primaries that do not begin with a name.
func (p *parser) parsePrimary() (expr.Expr, error) {
	pos := p.pos()
	switch p.tok.kind {
	case tString:
		v := xdm.NewString(p.tok.val)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.NewLiteral(pos, v), nil
	case tInteger:
		a, err := xdm.ParseNumericLexical(p.tok.val, xdm.TInteger)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.val)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.NewLiteral(pos, a), nil
	case tDecimal:
		a, err := xdm.ParseDecimal(p.tok.val)
		if err != nil {
			return nil, p.errf("bad decimal literal %q", p.tok.val)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.NewLiteral(pos, a), nil
	case tDouble:
		a, err := xdm.ParseNumericLexical(p.tok.val, xdm.TDouble)
		if err != nil {
			return nil, p.errf("bad double literal %q", p.tok.val)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.NewLiteral(pos, a), nil
	case tDollar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tName {
			return nil, p.errf("expected variable name after $")
		}
		q, err := p.resolveQName(p.tok.val, "")
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.VarRef{Base: expr.Base{P: pos}, Name: q}, nil
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tRParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &expr.Seq{Base: expr.Base{P: pos}}, nil // empty sequence
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, `")"`); err != nil {
			return nil, err
		}
		return e, nil
	case tDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.ContextItem{Base: expr.Base{P: pos}}, nil
	case tLt:
		return p.parseDirectElement()
	}
	return nil, p.errf("expected an expression, found %s", p.tok)
}

// ---- sequence types ----

// parseSequenceType parses SequenceType.
func (p *parser) parseSequenceType() (xtypes.SequenceType, error) {
	if p.tok.kind != tName {
		return xtypes.SequenceType{}, p.errf("expected a sequence type, found %s", p.tok)
	}
	name := p.tok.val
	if name == "empty-sequence" || name == "empty" {
		if t, err := p.peek(1); err != nil {
			return xtypes.SequenceType{}, err
		} else if t.kind == tLParen {
			if err := p.advance(); err != nil {
				return xtypes.SequenceType{}, err
			}
			if err := p.advance(); err != nil {
				return xtypes.SequenceType{}, err
			}
			if err := p.expect(tRParen, `")"`); err != nil {
				return xtypes.SequenceType{}, err
			}
			return xtypes.Empty, nil
		}
	}
	item, err := p.parseItemType()
	if err != nil {
		return xtypes.SequenceType{}, err
	}
	st := xtypes.SequenceType{Occ: xtypes.OccOne, Item: item}
	switch p.tok.kind {
	case tQuestion:
		st.Occ = xtypes.OccOpt
		if err := p.advance(); err != nil {
			return xtypes.SequenceType{}, err
		}
	case tStar:
		st.Occ = xtypes.OccStar
		if err := p.advance(); err != nil {
			return xtypes.SequenceType{}, err
		}
	case tPlus:
		st.Occ = xtypes.OccPlus
		if err := p.advance(); err != nil {
			return xtypes.SequenceType{}, err
		}
	}
	return st, nil
}

func (p *parser) parseItemType() (xtypes.ItemType, error) {
	name := p.tok.val
	if name == "item" {
		if t, err := p.peek(1); err != nil {
			return xtypes.ItemType{}, err
		} else if t.kind == tLParen {
			if err := p.advance(); err != nil {
				return xtypes.ItemType{}, err
			}
			if err := p.advance(); err != nil {
				return xtypes.ItemType{}, err
			}
			if err := p.expect(tRParen, `")"`); err != nil {
				return xtypes.ItemType{}, err
			}
			return xtypes.ItemType{Kind: xtypes.KAnyItem}, nil
		}
	}
	if isKindTestName(name) {
		if t, err := p.peek(1); err != nil {
			return xtypes.ItemType{}, err
		} else if t.kind == tLParen {
			nt, err := p.parseKindTest()
			if err != nil {
				return xtypes.ItemType{}, err
			}
			return nodeTestToItemType(nt), nil
		}
	}
	// atomic type
	tc, err := p.resolveTypeName(name)
	if err != nil {
		return xtypes.ItemType{}, err
	}
	if err := p.advance(); err != nil {
		return xtypes.ItemType{}, err
	}
	return xtypes.ItemType{Kind: xtypes.KAtomic, Type: tc}, nil
}

// parseSingleType parses SingleType for cast/castable: AtomicType "?"?.
func (p *parser) parseSingleType() (xdm.TypeCode, bool, error) {
	if p.tok.kind != tName {
		return 0, false, p.errf("expected an atomic type name")
	}
	tc, err := p.resolveTypeName(p.tok.val)
	if err != nil {
		return 0, false, err
	}
	if err := p.advance(); err != nil {
		return 0, false, err
	}
	opt := false
	if p.tok.kind == tQuestion {
		opt = true
		if err := p.advance(); err != nil {
			return 0, false, err
		}
	}
	return tc, opt, nil
}

// resolveTypeName maps a lexical type QName to a built-in atomic type code.
func (p *parser) resolveTypeName(lexical string) (xdm.TypeCode, error) {
	prefix, local := xdm.SplitLexical(lexical)
	if prefix != "" {
		uri, ok := p.lookupNS(prefix)
		if !ok {
			return 0, p.errf("undeclared namespace prefix %q", prefix)
		}
		switch uri {
		case NSXS:
			lexical = "xs:" + local
		case NSXDT:
			lexical = "xdt:" + local
		default:
			return 0, p.errf("unknown type %q (user-defined schema types are not supported)", lexical)
		}
	}
	tc, ok := xdm.TypeByName(lexical)
	if !ok {
		return 0, p.errf("unknown atomic type %q", lexical)
	}
	return tc, nil
}

func nodeTestToItemType(nt xtypes.NodeTest) xtypes.ItemType {
	it := xtypes.ItemType{Name: nt.Name, AnyName: nt.AnyName}
	switch nt.Kind {
	case xtypes.TestAnyKind:
		it.Kind = xtypes.KAnyNode
	case xtypes.TestDoc:
		it.Kind = xtypes.KDocument
	case xtypes.TestElement:
		it.Kind = xtypes.KElement
	case xtypes.TestAttribute:
		it.Kind = xtypes.KAttribute
	case xtypes.TestText:
		it.Kind = xtypes.KText
	case xtypes.TestComment:
		it.Kind = xtypes.KComment
	case xtypes.TestPI:
		it.Kind = xtypes.KPI
	}
	return it
}
