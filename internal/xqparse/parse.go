package xqparse

import (
	"fmt"
	"strings"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Well-known namespace URIs.
const (
	NSXML   = "http://www.w3.org/XML/1998/namespace"
	NSXS    = "http://www.w3.org/2001/XMLSchema"
	NSXSI   = "http://www.w3.org/2001/XMLSchema-instance"
	NSFn    = "http://www.w3.org/2005/xpath-functions"
	NSXDT   = "http://www.w3.org/2005/xpath-datatypes"
	NSLocal = "http://www.w3.org/2005/xquery-local-functions"
)

// reservedFuncNames may not be parsed as function calls.
var reservedFuncNames = map[string]bool{
	"if": true, "typeswitch": true, "switch": true,
	"node": true, "text": true, "comment": true,
	"processing-instruction": true, "element": true, "attribute": true,
	"document-node": true, "item": true, "empty-sequence": true,
}

// parser holds the parse state.
type parser struct {
	lex *lexer
	tok token
	// small lookahead queue (filled by peek)
	queue []token

	ns            []map[string]string // namespace scopes, innermost last
	defaultElemNS string
	defaultFuncNS string
	boundaryPres  bool

	q *expr.Query
}

// Parse parses a complete query (prolog + body).
func Parse(src string) (*expr.Query, error) {
	p := &parser{
		lex: newLexer(src),
		ns: []map[string]string{{
			"xml":   NSXML,
			"xs":    NSXS,
			"xsi":   NSXSI,
			"fn":    NSFn,
			"xf":    NSFn, // the paper's F&O prefix
			"xdt":   NSXDT,
			"local": NSLocal,
		}},
		defaultFuncNS: NSFn,
		q: &expr.Query{
			Namespaces: map[string]string{},
		},
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseProlog(); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("unexpected %s after end of query", p.tok)
	}
	p.q.Body = body
	return p.q, nil
}

// ParseExpr parses a standalone expression (no prolog), for tests and tools.
func ParseExpr(src string) (expr.Expr, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Body, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) pos() expr.Pos { return expr.Pos{Line: p.tok.line, Col: p.tok.col} }

// advance moves to the next token, draining the peek queue first.
func (p *parser) advance() error {
	if len(p.queue) > 0 {
		p.tok = p.queue[0]
		p.queue = p.queue[1:]
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peek returns the nth lookahead token (1-based) without consuming.
func (p *parser) peek(n int) (token, error) {
	for len(p.queue) < n {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.queue = append(p.queue, t)
	}
	return p.queue[n-1], nil
}

// is reports whether the current token is a name with the given value.
func (p *parser) is(name string) bool {
	return p.tok.kind == tName && p.tok.val == name
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %s", what, p.tok)
	}
	return p.advance()
}

// expectName consumes a specific keyword name.
func (p *parser) expectName(name string) error {
	if !p.is(name) {
		return p.errf("expected %q, found %s", name, p.tok)
	}
	return p.advance()
}

// ---- namespace environment ----

func (p *parser) pushNS() { p.ns = append(p.ns, map[string]string{}) }
func (p *parser) popNS()  { p.ns = p.ns[:len(p.ns)-1] }

func (p *parser) bindNS(prefix, uri string) { p.ns[len(p.ns)-1][prefix] = uri }

func (p *parser) lookupNS(prefix string) (string, bool) {
	for i := len(p.ns) - 1; i >= 0; i-- {
		if uri, ok := p.ns[i][prefix]; ok {
			return uri, true
		}
	}
	return "", false
}

// resolveQName resolves a lexical QName. kind selects the default namespace
// rule: "elem" uses the default element namespace, "func" the default
// function namespace, "" none (variables, attributes).
func (p *parser) resolveQName(lexical string, kind string) (xdm.QName, error) {
	prefix, local := xdm.SplitLexical(lexical)
	if prefix == "" {
		switch kind {
		case "elem":
			return xdm.QName{Space: p.defaultElemNS, Local: local}, nil
		case "func":
			q := xdm.QName{Space: p.defaultFuncNS, Local: local}
			if q.Space == NSFn {
				q.Prefix = "fn"
			}
			return q, nil
		default:
			return xdm.QName{Local: local}, nil
		}
	}
	uri, ok := p.lookupNS(prefix)
	if !ok {
		return xdm.QName{}, p.errf("undeclared namespace prefix %q", prefix)
	}
	return xdm.QName{Space: uri, Local: local, Prefix: prefix}, nil
}

// ---- prolog ----

func (p *parser) parseProlog() error {
	// optional version declaration
	if p.is("xquery") {
		if t, _ := p.peek(1); t.kind == tName && t.val == "version" {
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tString {
				return p.errf("expected version string")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if p.is("encoding") {
				if err := p.advance(); err != nil {
					return err
				}
				if p.tok.kind != tString {
					return p.errf("expected encoding string")
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expect(tSemicolon, `";"`); err != nil {
				return err
			}
		}
	}
	for {
		switch {
		case p.is("declare"):
			handled, err := p.parseDeclare()
			if err != nil {
				return err
			}
			if !handled {
				// "declare" here is an ordinary element name (XQuery has no
				// reserved words); the prolog is over.
				return nil
			}
		case p.is("import"):
			return p.errf("schema/module imports are not supported (see DESIGN.md)")
		case p.is("module"):
			return p.errf("library modules are not supported; only main modules")
		default:
			return nil
		}
	}
}

// parseDeclare parses one "declare ..." prolog entry. handled=false means
// the tokens were left untouched because "declare" does not begin a
// declaration here (it is an element name in the body).
func (p *parser) parseDeclare() (bool, error) {
	// To distinguish "declare namespace ..." from a path starting with the
	// element name "declare", require the next token to be a known
	// declaration keyword.
	t, err := p.peek(1)
	if err != nil {
		return false, err
	}
	if t.kind != tName {
		return false, nil
	}
	switch t.val {
	case "namespace", "default", "variable", "function", "boundary-space",
		"construction", "ordering", "copy-namespaces", "base-uri", "option":
	default:
		return false, nil // not a prolog declaration; leave for the body
	}
	if err := p.advance(); err != nil { // consume "declare"
		return false, err
	}
	switch {
	case p.is("namespace"):
		if err := p.advance(); err != nil {
			return true, err
		}
		if p.tok.kind != tName {
			return true, p.errf("expected namespace prefix")
		}
		prefix := p.tok.val
		if err := p.advance(); err != nil {
			return true, err
		}
		if err := p.expect(tEq, `"="`); err != nil {
			return true, err
		}
		if p.tok.kind != tString {
			return true, p.errf("expected namespace URI string")
		}
		p.bindNS(prefix, p.tok.val)
		p.q.Namespaces[prefix] = p.tok.val
		if err := p.advance(); err != nil {
			return true, err
		}
	case p.is("default"):
		if err := p.advance(); err != nil {
			return true, err
		}
		which := p.tok.val
		if which != "element" && which != "function" {
			return true, p.errf("expected 'element' or 'function' after 'declare default'")
		}
		if err := p.advance(); err != nil {
			return true, err
		}
		if err := p.expectName("namespace"); err != nil {
			return true, err
		}
		if p.tok.kind != tString {
			return true, p.errf("expected namespace URI string")
		}
		if which == "element" {
			p.defaultElemNS = p.tok.val
			p.q.DefaultElemNS = p.tok.val
		} else {
			p.defaultFuncNS = p.tok.val
			p.q.DefaultFuncNS = p.tok.val
		}
		if err := p.advance(); err != nil {
			return true, err
		}
	case p.is("boundary-space"):
		if err := p.advance(); err != nil {
			return true, err
		}
		switch p.tok.val {
		case "preserve":
			p.boundaryPres = true
		case "strip":
			p.boundaryPres = false
		default:
			return true, p.errf("expected 'preserve' or 'strip'")
		}
		if err := p.advance(); err != nil {
			return true, err
		}
	case p.is("construction"), p.is("ordering"), p.is("copy-namespaces"), p.is("option"):
		// Accepted and ignored: skip tokens to the semicolon.
		for p.tok.kind != tSemicolon && p.tok.kind != tEOF {
			if err := p.advance(); err != nil {
				return true, err
			}
		}
	case p.is("base-uri"):
		if err := p.advance(); err != nil {
			return true, err
		}
		if p.tok.kind != tString {
			return true, p.errf("expected base URI string")
		}
		if err := p.advance(); err != nil {
			return true, err
		}
	case p.is("variable"):
		if err := p.parseVarDecl(); err != nil {
			return true, err
		}
	case p.is("function"):
		if err := p.parseFuncDecl(); err != nil {
			return true, err
		}
	default:
		return true, p.errf("unsupported declaration %q", p.tok.val)
	}
	return true, p.expect(tSemicolon, `";"`)
}

func (p *parser) parseVarDecl() error {
	if err := p.advance(); err != nil { // "variable"
		return err
	}
	if err := p.expect(tDollar, `"$"`); err != nil {
		return err
	}
	if p.tok.kind != tName {
		return p.errf("expected variable name")
	}
	name, err := p.resolveQName(p.tok.val, "")
	if err != nil {
		return err
	}
	if err := p.advance(); err != nil {
		return err
	}
	var typ *xtypes.SequenceType
	if p.is("as") {
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseSequenceType()
		if err != nil {
			return err
		}
		typ = &t
	}
	vd := expr.VarDecl{Name: name, Type: typ}
	switch {
	case p.is("external"):
		vd.External = true
		if err := p.advance(); err != nil {
			return err
		}
	case p.tok.kind == tAssign:
		if err := p.advance(); err != nil {
			return err
		}
		init, err := p.parseExprSingle()
		if err != nil {
			return err
		}
		vd.Init = init
	case p.tok.kind == tLBrace: // older "{ expr }" form
		if err := p.advance(); err != nil {
			return err
		}
		init, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expect(tRBrace, `"}"`); err != nil {
			return err
		}
		vd.Init = init
	default:
		return p.errf(`expected ":=", "{" or "external" in variable declaration`)
	}
	p.q.Vars = append(p.q.Vars, vd)
	return nil
}

func (p *parser) parseFuncDecl() error {
	if err := p.advance(); err != nil { // "function"
		return err
	}
	if p.tok.kind != tName {
		return p.errf("expected function name")
	}
	// Unprefixed declared functions default to the local namespace.
	lexical := p.tok.val
	var name xdm.QName
	var err error
	if !strings.Contains(lexical, ":") {
		name = xdm.QName{Space: NSLocal, Local: lexical, Prefix: "local"}
	} else if name, err = p.resolveQName(lexical, ""); err != nil {
		return err
	}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect(tLParen, `"("`); err != nil {
		return err
	}
	var params []expr.Param
	for p.tok.kind != tRParen {
		if len(params) > 0 {
			if err := p.expect(tComma, `","`); err != nil {
				return err
			}
		}
		if err := p.expect(tDollar, `"$"`); err != nil {
			return err
		}
		if p.tok.kind != tName {
			return p.errf("expected parameter name")
		}
		pname, err := p.resolveQName(p.tok.val, "")
		if err != nil {
			return err
		}
		if err := p.advance(); err != nil {
			return err
		}
		var typ *xtypes.SequenceType
		if p.is("as") {
			if err := p.advance(); err != nil {
				return err
			}
			t, err := p.parseSequenceType()
			if err != nil {
				return err
			}
			typ = &t
		}
		params = append(params, expr.Param{Name: pname, Type: typ})
	}
	if err := p.advance(); err != nil { // ')'
		return err
	}
	var ret *xtypes.SequenceType
	if p.is("as") {
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseSequenceType()
		if err != nil {
			return err
		}
		ret = &t
	}
	if p.is("external") {
		return p.errf("external functions are not supported")
	}
	if err := p.expect(tLBrace, `"{"`); err != nil {
		return err
	}
	body, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return err
	}
	p.q.Funcs = append(p.q.Funcs, expr.FuncDecl{Name: name, Params: params, Ret: ret, Body: body})
	return nil
}

// ---- expressions ----

// parseExpr parses Expr: ExprSingle ("," ExprSingle)*.
func (p *parser) parseExpr() (expr.Expr, error) {
	pos := p.pos()
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tComma {
		return first, nil
	}
	items := []expr.Expr{first}
	for p.tok.kind == tComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &expr.Seq{Base: expr.Base{P: pos}, Items: items}, nil
}

// parseExprSingle dispatches on the leading keyword.
func (p *parser) parseExprSingle() (expr.Expr, error) {
	if p.tok.kind == tName {
		switch p.tok.val {
		case "for", "let":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tDollar {
				return p.parseFlwor()
			}
		case "some", "every":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tDollar {
				return p.parseQuantified()
			}
		case "if":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tLParen {
				return p.parseIf()
			}
		case "typeswitch":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tLParen {
				return p.parseTypeswitch()
			}
		case "try":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tLBrace {
				return p.parseTryCatch()
			}
		case "validate":
			if t, err := p.peek(1); err != nil {
				return nil, err
			} else if t.kind == tLBrace || (t.kind == tName && (t.val == "lax" || t.val == "strict")) {
				return nil, p.errf("validate{} requires schema support, which is not implemented (see DESIGN.md)")
			}
		}
	}
	return p.parseOr()
}

func (p *parser) parseFlwor() (expr.Expr, error) {
	pos := p.pos()
	f := &expr.Flwor{Base: expr.Base{P: pos}}
	for p.is("for") || p.is("let") {
		isFor := p.is("for")
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := p.expect(tDollar, `"$"`); err != nil {
				return nil, err
			}
			if p.tok.kind != tName {
				return nil, p.errf("expected variable name")
			}
			v, err := p.resolveQName(p.tok.val, "")
			if err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			cl := expr.Clause{Var: v}
			if isFor {
				cl.Kind = expr.ForClause
			} else {
				cl.Kind = expr.LetClause
			}
			if p.is("as") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				t, err := p.parseSequenceType()
				if err != nil {
					return nil, err
				}
				cl.Type = &t
			}
			if isFor && p.is("at") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expect(tDollar, `"$"`); err != nil {
					return nil, err
				}
				if p.tok.kind != tName {
					return nil, p.errf("expected positional variable name")
				}
				pv, err := p.resolveQName(p.tok.val, "")
				if err != nil {
					return nil, err
				}
				cl.PosVar = pv
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if isFor {
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
			} else if err := p.expect(tAssign, `":="`); err != nil {
				return nil, err
			}
			in, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.In = in
			f.Clauses = append(f.Clauses, cl)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if len(f.Clauses) == 0 {
		return nil, p.errf("FLWOR requires at least one for/let clause")
	}
	if p.is("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if p.is("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			if err := p.expect(tDollar, `"$"`); err != nil {
				return nil, err
			}
			if p.tok.kind != tName {
				return nil, p.errf("expected grouping variable name")
			}
			gv, err := p.resolveQName(p.tok.val, "")
			if err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tAssign, `":="`); err != nil {
				return nil, err
			}
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			f.Group = append(f.Group, expr.GroupSpec{Var: gv, Key: key})
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.is("stable") {
		f.Stable = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.is("order") {
			return nil, p.errf(`expected "order" after "stable"`)
		}
	}
	if p.is("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := expr.OrderSpec{Key: key}
			if p.is("ascending") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.is("descending") {
				spec.Descending = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.is("empty") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				switch {
				case p.is("greatest"):
				case p.is("least"):
					spec.EmptyLeast = true
				default:
					return nil, p.errf(`expected "greatest" or "least"`)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.is("collation") {
				return nil, p.errf("collations other than codepoint are not supported")
			}
			f.Order = append(f.Order, spec)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	f.Ret = ret
	return f, nil
}

func (p *parser) parseQuantified() (expr.Expr, error) {
	pos := p.pos()
	every := p.is("every")
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &expr.Quantified{Base: expr.Base{P: pos}, Every: every}
	for {
		if err := p.expect(tDollar, `"$"`); err != nil {
			return nil, err
		}
		if p.tok.kind != tName {
			return nil, p.errf("expected variable name")
		}
		v, err := p.resolveQName(p.tok.val, "")
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.is("as") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.parseSequenceType(); err != nil {
				return nil, err
			}
		}
		if err := p.expectName("in"); err != nil {
			return nil, err
		}
		in, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Binds = append(q.Binds, expr.QBind{Var: v, In: in})
		if p.tok.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = sat
	return q, nil
}

func (p *parser) parseIf() (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // "if"
		return nil, err
	}
	if err := p.expect(tLParen, `"("`); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRParen, `")"`); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &expr.If{Base: expr.Base{P: pos}, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseTypeswitch() (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // "typeswitch"
		return nil, err
	}
	if err := p.expect(tLParen, `"("`); err != nil {
		return nil, err
	}
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRParen, `")"`); err != nil {
		return nil, err
	}
	ts := &expr.Typeswitch{Base: expr.Base{P: pos}, Input: input}
	for p.is("case") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var c expr.TSCase
		if p.tok.kind == tDollar {
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.resolveQName(p.tok.val, "")
			if err != nil {
				return nil, err
			}
			c.Var = v
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectName("as"); err != nil {
				return nil, err
			}
		}
		t, err := p.parseSequenceType()
		if err != nil {
			return nil, err
		}
		c.Type = t
		if err := p.expectName("return"); err != nil {
			return nil, err
		}
		body, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		c.Body = body
		ts.Cases = append(ts.Cases, c)
	}
	if len(ts.Cases) == 0 {
		return nil, p.errf("typeswitch requires at least one case")
	}
	if err := p.expectName("default"); err != nil {
		return nil, err
	}
	if p.tok.kind == tDollar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.resolveQName(p.tok.val, "")
		if err != nil {
			return nil, err
		}
		ts.DefaultVar = v
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	def, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	ts.Default = def
	return ts, nil
}

// ---- operator precedence chain ----

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.is("or") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Logic{Base: expr.Base{P: pos}, And: false, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.is("and") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &expr.Logic{Base: expr.Base{P: pos}, And: true, L: l, R: r}
	}
	return l, nil
}

var valueCompOps = map[string]xdm.CompOp{
	"eq": xdm.OpEq, "ne": xdm.OpNe, "lt": xdm.OpLt,
	"le": xdm.OpLe, "gt": xdm.OpGt, "ge": xdm.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	pos := p.pos()
	// value comparisons
	if p.tok.kind == tName {
		if op, ok := valueCompOps[p.tok.val]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			return &expr.Compare{Base: expr.Base{P: pos}, Kind: expr.CompValue, Op: op, L: l, R: r}, nil
		}
		if p.tok.val == "is" || p.tok.val == "isnot" {
			neg := p.tok.val == "isnot"
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			nc := &expr.NodeCompare{Base: expr.Base{P: pos}, Op: expr.NodeIs, L: l, R: r}
			if neg {
				return &expr.Call{
					Base: expr.Base{P: pos},
					Name: xdm.QName{Space: NSFn, Local: "not", Prefix: "fn"},
					Args: []expr.Expr{nc},
				}, nil
			}
			return nc, nil
		}
	}
	// general and node-order comparisons
	var gop xdm.CompOp
	var isGeneral bool
	var nop expr.NodeCompOp
	var isNodeOrder bool
	switch p.tok.kind {
	case tEq:
		gop, isGeneral = xdm.OpEq, true
	case tNe:
		gop, isGeneral = xdm.OpNe, true
	case tLt:
		gop, isGeneral = xdm.OpLt, true
	case tLe:
		gop, isGeneral = xdm.OpLe, true
	case tGt:
		gop, isGeneral = xdm.OpGt, true
	case tGe:
		gop, isGeneral = xdm.OpGe, true
	case tLtLt:
		nop, isNodeOrder = expr.NodePrecedes, true
	case tGtGt:
		nop, isNodeOrder = expr.NodeFollows, true
	}
	if isGeneral {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		return &expr.Compare{Base: expr.Base{P: pos}, Kind: expr.CompGeneral, Op: gop, L: l, R: r}, nil
	}
	if isNodeOrder {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		return &expr.NodeCompare{Base: expr.Base{P: pos}, Op: nop, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseRange() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.is("to") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Range{Base: expr.Base{P: pos}, Lo: l, Hi: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		pos := p.pos()
		op := xdm.OpAdd
		if p.tok.kind == tMinus {
			op = xdm.OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Base: expr.Base{P: pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		var op xdm.ArithOp
		switch {
		case p.tok.kind == tStar:
			op = xdm.OpMul
		case p.is("div"):
			op = xdm.OpDiv
		case p.is("idiv"):
			op = xdm.OpIDiv
		case p.is("mod"):
			op = xdm.OpMod
		default:
			return l, nil
		}
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Base: expr.Base{P: pos}, Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnion() (expr.Expr, error) {
	l, err := p.parseIntersectExcept()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tBar || p.is("union") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseIntersectExcept()
		if err != nil {
			return nil, err
		}
		l = &expr.SetOp{Base: expr.Base{P: pos}, Op: expr.SetUnion, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseIntersectExcept() (expr.Expr, error) {
	l, err := p.parseInstanceOf()
	if err != nil {
		return nil, err
	}
	for p.is("intersect") || p.is("except") {
		pos := p.pos()
		op := expr.SetIntersect
		if p.is("except") {
			op = expr.SetExcept
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseInstanceOf()
		if err != nil {
			return nil, err
		}
		l = &expr.SetOp{Base: expr.Base{P: pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseInstanceOf() (expr.Expr, error) {
	l, err := p.parseTreat()
	if err != nil {
		return nil, err
	}
	if p.is("instance") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("of"); err != nil {
			return nil, err
		}
		t, err := p.parseSequenceType()
		if err != nil {
			return nil, err
		}
		return &expr.InstanceOf{Base: expr.Base{P: pos}, X: l, T: t}, nil
	}
	return l, nil
}

func (p *parser) parseTreat() (expr.Expr, error) {
	l, err := p.parseCastable()
	if err != nil {
		return nil, err
	}
	if p.is("treat") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("as"); err != nil {
			return nil, err
		}
		t, err := p.parseSequenceType()
		if err != nil {
			return nil, err
		}
		return &expr.Treat{Base: expr.Base{P: pos}, X: l, T: t}, nil
	}
	return l, nil
}

func (p *parser) parseCastable() (expr.Expr, error) {
	l, err := p.parseCast()
	if err != nil {
		return nil, err
	}
	if p.is("castable") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("as"); err != nil {
			return nil, err
		}
		t, opt, err := p.parseSingleType()
		if err != nil {
			return nil, err
		}
		return &expr.Cast{Base: expr.Base{P: pos}, X: l, T: t, Optional: opt, Castable: true}, nil
	}
	return l, nil
}

func (p *parser) parseCast() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.is("cast") {
		pos := p.pos()
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectName("as"); err != nil {
			return nil, err
		}
		t, opt, err := p.parseSingleType()
		if err != nil {
			return nil, err
		}
		return &expr.Cast{Base: expr.Base{P: pos}, X: l, T: t, Optional: opt}, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	neg := false
	pos := p.pos()
	for p.tok.kind == tMinus || p.tok.kind == tPlus {
		if p.tok.kind == tMinus {
			neg = !neg
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if neg {
		return &expr.Neg{Base: expr.Base{P: pos}, X: e}, nil
	}
	return e, nil
}

// parseTryCatch parses try { E } catch * { F } (the error-handling
// extension; wildcard catch only).
func (p *parser) parseTryCatch() (expr.Expr, error) {
	pos := p.pos()
	if err := p.advance(); err != nil { // "try"
		return nil, err
	}
	if err := p.expect(tLBrace, `"{"`); err != nil {
		return nil, err
	}
	tryE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return nil, err
	}
	if err := p.expectName("catch"); err != nil {
		return nil, err
	}
	if err := p.expect(tStar, `"*" (only wildcard catch clauses are supported)`); err != nil {
		return nil, err
	}
	if err := p.expect(tLBrace, `"{"`); err != nil {
		return nil, err
	}
	catchE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRBrace, `"}"`); err != nil {
		return nil, err
	}
	return &expr.TryCatch{Base: expr.Base{P: pos}, Try: tryE, Catch: catchE}, nil
}
