package xqparse

import (
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds mutated query fragments to the parser: every
// input must either parse or return a positioned error — never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`for $x in /a/b return <r>{$x}</r>`,
		`let $y := (1,2,3) return count($y)`,
		`<a b="{1+2}">text{$v}</a>`,
		`some $x in (1 to 10) satisfies $x eq 5`,
		`declare function local:f($n) { $n * 2 }; local:f(3)`,
		`typeswitch ($x) case xs:integer return 1 default return 2`,
		`1 + 2 * (3 - 4) div 5`,
		`//book[@year < 2000]/title/text()`,
	}
	mutate := func(s string, pos, op uint8) string {
		if len(s) == 0 {
			return s
		}
		i := int(pos) % len(s)
		chars := []byte(`<>{}()[]"'$/:*@,;=`)
		switch op % 4 {
		case 0: // delete a byte
			return s[:i] + s[i+1:]
		case 1: // insert a metacharacter
			return s[:i] + string(chars[int(op)%len(chars)]) + s[i:]
		case 2: // replace a byte
			return s[:i] + string(chars[int(pos)%len(chars)]) + s[i+1:]
		default: // truncate
			return s[:i]
		}
	}
	f := func(seedIdx, pos1, op1, pos2, op2 uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		src := seeds[int(seedIdx)%len(seeds)]
		src = mutate(src, pos1, op1)
		src = mutate(src, pos2, op2)
		_, _ = Parse(src) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("parser panicked: %v", err)
	}
}

// TestLexerNeverPanics runs the raw lexer over arbitrary byte strings.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		l := newLexer(src)
		for i := 0; i < 10000; i++ {
			tok, err := l.next()
			if err != nil || tok.kind == tEOF {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("lexer panicked: %v", err)
	}
}
