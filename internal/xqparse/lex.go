// Package xqparse parses XQuery source text into the internal expression
// tree (internal/expr). The grammar covered is the subset documented in
// DESIGN.md §3; unsupported constructs are rejected with positioned errors.
//
// XQuery has no reserved words, so the lexer produces generic name tokens
// and the parser recognizes keywords contextually; direct XML constructors
// are scanned in a character-level mode entered when the parser sees "<" in
// a position where a primary expression is expected.
package xqparse

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind is a lexical token kind.
type tokKind uint8

const (
	tEOF tokKind = iota
	tName
	tString  // string literal, decoded
	tInteger // numeric literals keep their lexical form in val
	tDecimal
	tDouble
	tDollar // $
	tLParen
	tRParen
	tLBracket
	tRBracket
	tLBrace
	tRBrace
	tComma
	tSemicolon
	tSlash      // /
	tSlashSlash // //
	tDot        // .
	tDotDot     // ..
	tAt         // @
	tColonColon // ::
	tColon      // : (only inside QNames; normally merged)
	tStar       // *
	tPlus       // +
	tMinus      // -
	tEq         // =
	tNe         // !=
	tLt         // <
	tLe         // <=
	tGt         // >
	tGe         // >=
	tLtLt       // <<
	tGtGt       // >>
	tBar        // |
	tAssign     // :=
	tQuestion   // ?
	tStarColon  // *: (wildcard namespace)
)

// token is one lexical token.
type token struct {
	kind tokKind
	val  string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tName, tInteger, tDecimal, tDouble:
		return fmt.Sprintf("%q", t.val)
	case tString:
		return fmt.Sprintf("string %q", t.val)
	default:
		return fmt.Sprintf("%q", t.val)
	}
}

// lexer scans XQuery source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a positioned parse error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// peekRune returns the rune at the cursor without consuming.
func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

// readRune consumes one rune.
func (l *lexer) readRune() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, n := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += n
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpaceAndComments skips whitespace and (: nested comments :).
func (l *lexer) skipSpaceAndComments() error {
	for {
		r := l.peekRune()
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			l.readRune()
			continue
		}
		if r == '(' && l.peekAt(1) == ':' {
			start := *l
			l.readRune()
			l.readRune()
			depth := 1
			for depth > 0 {
				c := l.readRune()
				switch {
				case c == -1:
					return start.errf("unterminated comment")
				case c == '(' && l.peekRune() == ':':
					l.readRune()
					depth++
				case c == ':' && l.peekRune() == ')':
					l.readRune()
					depth--
				}
			}
			continue
		}
		return nil
	}
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// scanNCName reads an NCName starting at the cursor.
func (l *lexer) scanNCName() string {
	start := l.pos
	for isNameChar(l.peekRune()) {
		l.readRune()
	}
	return l.src[start:l.pos]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	mk := func(k tokKind, v string) token { return token{kind: k, val: v, line: line, col: col} }
	r := l.peekRune()
	switch {
	case r == -1:
		return mk(tEOF, ""), nil
	case isNameStart(r):
		name := l.scanNCName()
		// QName: NCName ':' NCName with no intervening space. Exclude '::'
		// (axis) and ':=' (assign).
		if l.peekRune() == ':' && l.peekAt(1) != ':' && l.peekAt(1) != '=' {
			save := *l
			l.readRune() // ':'
			if l.peekRune() == '*' {
				l.readRune()
				return mk(tName, name+":*"), nil
			}
			if isNameStart(l.peekRune()) {
				local := l.scanNCName()
				return mk(tName, name+":"+local), nil
			}
			*l = save
		}
		return mk(tName, name), nil
	case r >= '0' && r <= '9', r == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9':
		return l.scanNumber(line, col)
	case r == '"' || r == '\'':
		s, err := l.scanString(byte(r))
		if err != nil {
			return token{}, err
		}
		return mk(tString, s), nil
	}
	l.readRune()
	switch r {
	case '$':
		return mk(tDollar, "$"), nil
	case '(':
		return mk(tLParen, "("), nil
	case ')':
		return mk(tRParen, ")"), nil
	case '[':
		return mk(tLBracket, "["), nil
	case ']':
		return mk(tRBracket, "]"), nil
	case '{':
		return mk(tLBrace, "{"), nil
	case '}':
		return mk(tRBrace, "}"), nil
	case ',':
		return mk(tComma, ","), nil
	case ';':
		return mk(tSemicolon, ";"), nil
	case '?':
		return mk(tQuestion, "?"), nil
	case '@':
		return mk(tAt, "@"), nil
	case '|':
		return mk(tBar, "|"), nil
	case '+':
		return mk(tPlus, "+"), nil
	case '-':
		return mk(tMinus, "-"), nil
	case '=':
		return mk(tEq, "="), nil
	case '!':
		if l.peekRune() == '=' {
			l.readRune()
			return mk(tNe, "!="), nil
		}
		return token{}, l.errf("unexpected character %q", "!")
	case '<':
		switch l.peekRune() {
		case '=':
			l.readRune()
			return mk(tLe, "<="), nil
		case '<':
			l.readRune()
			return mk(tLtLt, "<<"), nil
		}
		return mk(tLt, "<"), nil
	case '>':
		switch l.peekRune() {
		case '=':
			l.readRune()
			return mk(tGe, ">="), nil
		case '>':
			l.readRune()
			return mk(tGtGt, ">>"), nil
		}
		return mk(tGt, ">"), nil
	case '/':
		if l.peekRune() == '/' {
			l.readRune()
			return mk(tSlashSlash, "//"), nil
		}
		return mk(tSlash, "/"), nil
	case '.':
		if l.peekRune() == '.' {
			l.readRune()
			return mk(tDotDot, ".."), nil
		}
		return mk(tDot, "."), nil
	case ':':
		if l.peekRune() == ':' {
			l.readRune()
			return mk(tColonColon, "::"), nil
		}
		if l.peekRune() == '=' {
			l.readRune()
			return mk(tAssign, ":="), nil
		}
		return mk(tColon, ":"), nil
	case '*':
		if l.peekRune() == ':' && isNameStart(rune(l.peekAt(1))) {
			l.readRune()
			local := l.scanNCName()
			return mk(tName, "*:"+local), nil
		}
		return mk(tStar, "*"), nil
	}
	return token{}, l.errf("unexpected character %q", string(r))
}

// scanNumber reads an integer/decimal/double literal.
func (l *lexer) scanNumber(line, col int) (token, error) {
	start := l.pos
	kind := tInteger
	for r := l.peekRune(); r >= '0' && r <= '9'; r = l.peekRune() {
		l.readRune()
	}
	if l.peekRune() == '.' && !(l.peekAt(1) == '.') {
		kind = tDecimal
		l.readRune()
		for r := l.peekRune(); r >= '0' && r <= '9'; r = l.peekRune() {
			l.readRune()
		}
	}
	if r := l.peekRune(); r == 'e' || r == 'E' {
		save := *l
		l.readRune()
		if r := l.peekRune(); r == '+' || r == '-' {
			l.readRune()
		}
		if r := l.peekRune(); r >= '0' && r <= '9' {
			kind = tDouble
			for r := l.peekRune(); r >= '0' && r <= '9'; r = l.peekRune() {
				l.readRune()
			}
		} else {
			*l = save
		}
	}
	return token{kind: kind, val: l.src[start:l.pos], line: line, col: col}, nil
}

// scanString reads a string literal delimited by quote, handling doubled
// delimiters and predefined/character entity references.
func (l *lexer) scanString(quote byte) (string, error) {
	l.readRune() // opening quote
	var b strings.Builder
	for {
		r := l.readRune()
		switch {
		case r == -1:
			return "", l.errf("unterminated string literal")
		case r == rune(quote):
			if l.peekRune() == rune(quote) {
				l.readRune()
				b.WriteByte(quote)
				continue
			}
			return b.String(), nil
		case r == '&':
			s, err := l.entityRef()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteRune(r)
		}
	}
}

// entityRef decodes an entity reference after '&' has been consumed.
func (l *lexer) entityRef() (string, error) {
	start := l.pos
	for l.peekRune() != ';' {
		if l.peekRune() == -1 {
			return "", l.errf("unterminated entity reference")
		}
		l.readRune()
	}
	name := l.src[start:l.pos]
	l.readRune() // ';'
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(name, "#x") || strings.HasPrefix(name, "#X") {
		var cp int32
		if _, err := fmt.Sscanf(name[2:], "%x", &cp); err != nil {
			return "", l.errf("bad character reference &%s;", name)
		}
		return string(rune(cp)), nil
	}
	if strings.HasPrefix(name, "#") {
		var cp int32
		if _, err := fmt.Sscanf(name[1:], "%d", &cp); err != nil {
			return "", l.errf("bad character reference &%s;", name)
		}
		return string(rune(cp)), nil
	}
	return "", l.errf("unknown entity reference &%s;", name)
}
