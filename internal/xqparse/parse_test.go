package xqparse

import (
	"strings"
	"testing"

	"xqgo/internal/expr"
)

// parseOK parses a query body and returns its rendered expression tree.
func parseOK(t *testing.T, src string) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return expr.String(e)
}

func TestLiterals(t *testing.T) {
	cases := map[string]string{
		`42`:          `42`,
		`4.5`:         `4.5`,
		`1.25e2`:      `125`,
		`"str"`:       `"str"`,
		`'str'`:       `"str"`,
		`"a""b"`:      `"a\"b"`,
		`'a''b'`:      `"a'b"`,
		`"&lt;x&gt;"`: `"<x>"`,
		`"&#65;"`:     `"A"`,
		`"&#x41;"`:    `"A"`,
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q = %s, want %s", src, got, want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	cases := map[string]string{
		`1 + 2 * 3`:                   `(1 + (2 * 3))`,
		`(1 + 2) * 3`:                 `((1 + 2) * 3)`,
		`1 - 2 - 3`:                   `((1 - 2) - 3)`,
		`2 * 3 mod 4`:                 `((2 * 3) mod 4)`,
		`8 idiv 2 div 2`:              `((8 idiv 2) div 2)`,
		`1 < 2 + 3`:                   `(1 < (2 + 3))`,
		`1 eq 2 or 3 eq 4`:            `((1 eq 2) or (3 eq 4))`,
		`1 eq 1 and 2 eq 2 or 3 eq 3`: `(((1 eq 1) and (2 eq 2)) or (3 eq 3))`,
		`1 to 3`:                      `(1 to 3)`,
		`-3 + 2`:                      `(-3 + 2)`,
		`2 + -3`:                      `(2 + -3)`,
		`- 3 * 2`:                     `(-3 * 2)`, // unary binds the value expr
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q = %s, want %s", src, got, want)
		}
	}
}

func TestComparisonKinds(t *testing.T) {
	cases := map[string]string{
		`$a eq $b`: `($a eq $b)`,
		`$a ne $b`: `($a ne $b)`,
		`$a = $b`:  `($a = $b)`,
		`$a != $b`: `($a != $b)`,
		`$a <= $b`: `($a <= $b)`,
		`$a is $b`: `($a is $b)`,
		`$a << $b`: `($a << $b)`,
		`$a >> $b`: `($a >> $b)`,
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q = %s, want %s", src, got, want)
		}
	}
}

func TestPaths(t *testing.T) {
	cases := map[string]string{
		`/bib`:                                `fn:root(.)/child::bib`,
		`/bib/book`:                           `fn:root(.)/child::bib/child::book`,
		`//book`:                              `fn:root(.)/descendant-or-self::node()/child::book`,
		`$x/child::bib`:                       `$x/child::bib`,
		`$x/parent::*`:                        `$x/parent::*`,
		`$x/..`:                               `$x/parent::node()`,
		`$x/@year`:                            `$x/attribute::year`,
		`$x//comment()`:                       `$x/descendant-or-self::node()/child::comment()`,
		`$x/descendant::a`:                    `$x/descendant::a`,
		`$x/ancestor-or-self::a`:              `$x/ancestor-or-self::a`,
		`$x/following-sibling::b`:             `$x/following-sibling::b`,
		`$x/self::node()`:                     `$x/self::node()`,
		`book[3]`:                             `child::book[3]`,
		`book[3]/author[1]`:                   `child::book[3]/child::author[1]`,
		`book[@price < 25]`:                   `child::book[(attribute::price < 25)]`,
		`//book[author/firstname = "ronald"]`: `fn:root(.)/descendant-or-self::node()/child::book[(child::author/child::firstname = "ronald")]`,
		`book[3]/author[1 to 2]`:              `child::book[3]/child::author[(1 to 2)]`,
		`*`:                                   `child::*`,
		`$x/*`:                                `$x/child::*`,
		`$x/text()`:                           `$x/child::text()`,
		`.`:                                   `.`,
		`$x/element(a)`:                       `$x/child::element(a)`,
		`$x/attribute::attribute()`:           `$x/attribute::attribute()`,
		`document("b.xml")/bib`:               `fn:document("b.xml")/child::bib`,
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q =\n  %s\nwant\n  %s", src, got, want)
		}
	}
}

func TestWildcardNames(t *testing.T) {
	q, err := Parse(`declare namespace ns = "urn:n"; $x/ns:* , $x/*:local, $x/ns:a`)
	if err != nil {
		t.Fatal(err)
	}
	s := expr.String(q.Body)
	if !strings.Contains(s, "ns:*") {
		t.Errorf("ns:* wildcard lost: %s", s)
	}
	if !strings.Contains(s, "*:local") {
		t.Errorf("*:local wildcard lost: %s", s)
	}
}

func TestFLWOR(t *testing.T) {
	got := parseOK(t, `for $x at $i in (1,2), $y in (3,4) let $z := $x where $x eq $y order by $z descending return ($x, $i)`)
	want := `for $x at $i in (1, 2) for $y in (3, 4) let $z := $x where ($x eq $y) order by $z descending return ($x, $i)`
	if got != want {
		t.Errorf("flwor:\n got  %s\n want %s", got, want)
	}
}

func TestQuantified(t *testing.T) {
	got := parseOK(t, `some $x in (1,2,3) satisfies $x eq 2`)
	if got != `some $x in (1, 2, 3) satisfies ($x eq 2)` {
		t.Errorf("some: %s", got)
	}
	got = parseOK(t, `every $x in $s, $y in $t satisfies $x lt $y`)
	if got != `every $x in $s, $y in $t satisfies ($x lt $y)` {
		t.Errorf("every: %s", got)
	}
}

func TestConditionalsAndTypes(t *testing.T) {
	cases := map[string]string{
		`if ($x) then 1 else 2`:           `if ($x) then 1 else 2`,
		`$x instance of xs:integer`:       `($x instance of xs:integer)`,
		`$x instance of element()*`:       `($x instance of element()*)`,
		`$x instance of item()+`:          `($x instance of item()+)`,
		`$x instance of empty-sequence()`: `($x instance of empty-sequence())`,
		`$x cast as xs:date`:              `($x cast as xs:date)`,
		`$x cast as xs:integer?`:          `($x cast as xs:integer?)`,
		`$x castable as xs:double`:        `($x castable as xs:double)`,
		`$x treat as node()`:              `($x treat as node())`,
		`$a union $b`:                     `($a union $b)`,
		`$a | $b`:                         `($a union $b)`,
		`$a intersect $b`:                 `($a intersect $b)`,
		`$a except $b`:                    `($a except $b)`,
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q = %s, want %s", src, got, want)
		}
	}
}

func TestTypeswitch(t *testing.T) {
	got := parseOK(t, `typeswitch ($x) case xs:integer return 1 case $e as element() return 2 default $d return 3`)
	want := `typeswitch ($x) case xs:integer return 1 case element() return 2 default return 3`
	if got != want {
		t.Errorf("typeswitch: %s", got)
	}
}

func TestConstructors(t *testing.T) {
	cases := map[string]string{
		`<a/>`:                            `element a {}`,
		`<a b="1"/>`:                      `element a {}`,
		`<a>text</a>`:                     `element a {text {"text"}}`,
		`<a>{1 + 2}</a>`:                  `element a {(1 + 2)}`,
		`<a>x{$v}y</a>`:                   `element a {text {"x"}, $v, text {"y"}}`,
		`element {$n} {1}`:                `element {$n} {1}`,
		`element foo {}`:                  `element foo {}`,
		`attribute size {5}`:              `attribute size {5}`,
		`attribute {$n} {5}`:              `attribute {$n} {5}`,
		`text {"x"}`:                      `text {"x"}`,
		`comment { "c" }`:                 `comment {"c"}`,
		`document { <a/> }`:               `document {element a {}}`,
		`processing-instruction pi {"d"}`: `processing-instruction pi {"d"}`,
	}
	for src, want := range cases {
		if got := parseOK(t, src); got != want {
			t.Errorf("parse %q = %s, want %s", src, got, want)
		}
	}
}

func TestDirectConstructorDetails(t *testing.T) {
	// Attribute value templates.
	e, err := ParseExpr(`<a x="lit{1+2}tail" y='{""}'/>`)
	if err != nil {
		t.Fatal(err)
	}
	ec := e.(*expr.ElemConstructor)
	if len(ec.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(ec.Attrs))
	}
	if len(ec.Attrs[0].Parts) != 3 {
		t.Errorf("x parts = %d, want 3", len(ec.Attrs[0].Parts))
	}
	// Nested elements and escaped braces.
	got := parseOK(t, `<a><b>{{literal brace}}</b></a>`)
	if got != `element a {element b {text {"{literal brace}"}}}` {
		t.Errorf("escaped braces: %s", got)
	}
	// Boundary whitespace stripped by default.
	got = parseOK(t, "<a>\n  <b/>\n</a>")
	if got != `element a {element b {}}` {
		t.Errorf("boundary space: %s", got)
	}
	// CDATA preserved.
	got = parseOK(t, `<a><![CDATA[<raw>&]]></a>`)
	if got != `element a {text {"<raw>&"}}` {
		t.Errorf("cdata: %s", got)
	}
	// Comments and PIs in content.
	got = parseOK(t, `<a><!--c--><?t d?></a>`)
	if got != `element a {comment {"c"}, processing-instruction t {" d"}}` &&
		got != `element a {comment {"c"}, processing-instruction t {"d"}}` {
		t.Errorf("comment/pi content: %s", got)
	}
}

func TestBoundarySpacePreserve(t *testing.T) {
	q, err := Parse(`declare boundary-space preserve; <a> <b/> </a>`)
	if err != nil {
		t.Fatal(err)
	}
	s := expr.String(q.Body)
	if !strings.Contains(s, `text {" "}`) {
		t.Errorf("preserve should keep whitespace: %s", s)
	}
}

func TestNamespaceScopesInConstructors(t *testing.T) {
	// Namespace declared on the constructor applies to names inside it.
	q, err := Parse(`declare namespace ns = "uri1";
	  <b xmlns:ns="uri2">{ <ns:a/> }</b>`)
	if err != nil {
		t.Fatal(err)
	}
	elem := q.Body.(*expr.ElemConstructor)
	inner := elem.Content[0].(*expr.ElemConstructor)
	if inner.Name.Space != "uri2" {
		t.Errorf("inner ns:a resolved to %q, want uri2 (constructor scope wins)", inner.Name.Space)
	}
	// Outside the constructor, ns is uri1.
	q2, err := Parse(`declare namespace ns = "uri1"; (<b xmlns:ns="uri2"/>, <ns:c/>)`)
	if err != nil {
		t.Fatal(err)
	}
	seq := q2.Body.(*expr.Seq)
	c := seq.Items[1].(*expr.ElemConstructor)
	if c.Name.Space != "uri1" {
		t.Errorf("ns:c after the constructor = %q, want uri1", c.Name.Space)
	}
}

func TestProlog(t *testing.T) {
	q, err := Parse(`
	  xquery version "1.0";
	  declare namespace foo = "urn:foo";
	  declare default element namespace "urn:def";
	  declare variable $x as xs:integer := 3;
	  declare variable $ext external;
	  declare function local:double($n as xs:integer) as xs:integer { $n * 2 };
	  declare function triple($n) { $n * 3 };
	  local:double($x) + triple($x)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Namespaces["foo"] != "urn:foo" {
		t.Error("namespace decl")
	}
	if q.DefaultElemNS != "urn:def" {
		t.Error("default element namespace")
	}
	if len(q.Vars) != 2 || q.Vars[0].Name.Local != "x" || !q.Vars[1].External {
		t.Errorf("vars = %+v", q.Vars)
	}
	if q.Vars[0].Type == nil {
		t.Error("variable type")
	}
	if len(q.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(q.Funcs))
	}
	if q.Funcs[0].Name.Space != NSLocal || q.Funcs[1].Name.Space != NSLocal {
		t.Error("declared functions live in the local namespace")
	}
	if q.Funcs[0].Ret == nil || q.Funcs[0].Params[0].Type == nil {
		t.Error("function signature types")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`1 +`, "expected an expression"},
		{`(1, 2`, `expected ")"`},
		{`for $x in`, "expected an expression"},
		{`for $x return 1`, `expected "in"`},
		{`if (1) then 2`, `"else"`},
		{`$x instance of xs:nosuch`, "unknown atomic type"},
		{`<a>`, "unterminated element"},
		{`<a></b>`, "does not match"},
		{`<a x="{1}{" />`, "unterminated"},
		{`ns:foo()`, "undeclared namespace prefix"},
		{`$x/following::a`, "not supported"},
		{`validate { $x }`, "schema"},
		{`import schema "x";`, "not supported"},
		{`module namespace m = "x";`, "not supported"},
		{`declare function f($x) external;`, "external functions"},
		{`1; 2`, "unexpected"},
		{`"unterminated`, "unterminated string"},
		{`(: unclosed comment`, "unterminated comment"},
		{`<a>}</a>`, `single "}"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestCommentsNestAndSkip(t *testing.T) {
	got := parseOK(t, `1 (: outer (: inner :) still :) + 2`)
	if got != `(1 + 2)` {
		t.Errorf("comments: %s", got)
	}
}

func TestPositionPreserved(t *testing.T) {
	e, err := ParseExpr("\n\n  42")
	if err != nil {
		t.Fatal(err)
	}
	if p := e.Span(); p.Line != 3 || p.Col != 3 {
		t.Errorf("position = %+v, want 3:3", p)
	}
}

func TestKeywordsAreNotReserved(t *testing.T) {
	// "for", "if", "element" are legal element names in paths.
	for _, src := range []string{`$x/for`, `$x/if`, `$x/element`, `$x/return`, `$x/declare`} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
	// And computed constructors still work by lookahead.
	if _, err := ParseExpr(`element div { 3 }`); err != nil {
		t.Errorf("element div {}: %v", err)
	}
}

func TestDeclareAsElementName(t *testing.T) {
	// Regression: "declare" followed by a non-declaration keyword is an
	// ordinary path step, not a prolog entry (and must not hang the parser).
	for _, src := range []string{`$x/declare`, `declare/foo`, `declare`} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestGroupBySyntax(t *testing.T) {
	got := parseOK(t, `for $x in (1,2) group by $k := $x mod 2 return count($x)`)
	want := `for $x in (1, 2) group by $k := ($x mod 2) return fn:count($x)`
	if got != want {
		t.Errorf("group by:\n got  %s\n want %s", got, want)
	}
	// Multiple keys.
	if _, err := ParseExpr(`for $x in (1) group by $a := 1, $b := 2 return $x`); err != nil {
		t.Errorf("multi-key group by: %v", err)
	}
	// group by requires := form.
	if _, err := ParseExpr(`for $x in (1) group by $x return $x`); err == nil {
		t.Error(`bare "group by $x" should fail (":=" form required)`)
	}
}

func TestTryCatchSyntax(t *testing.T) {
	got := parseOK(t, `try { 1 idiv 0 } catch * { "e" }`)
	if got != `try {(1 idiv 0)} catch * {"e"}` {
		t.Errorf("try/catch: %s", got)
	}
	// Only wildcard catches are supported.
	if _, err := ParseExpr(`try { 1 } catch err:FOAR0001 { 2 }`); err == nil {
		t.Error("named catch clauses should be rejected")
	}
	// "try" as an element name still parses.
	if _, err := ParseExpr(`$x/try`); err != nil {
		t.Errorf("try as name test: %v", err)
	}
}

func TestIgnoredDeclarations(t *testing.T) {
	// Accepted-and-ignored prolog declarations must not break the body.
	srcs := []string{
		`declare construction strip; 1`,
		`declare ordering ordered; 1`,
		`declare copy-namespaces no-preserve, no-inherit; 1`,
		`declare option x:opt "v"; 1`,
		`declare base-uri "http://example.com/"; 1`,
		`declare boundary-space strip; 1`,
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}
