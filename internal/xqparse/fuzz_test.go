package xqparse

import "testing"

// FuzzQueryParse feeds arbitrary source text to the query parser. The parser
// must reject garbage with an error — never a panic — and accepting an input
// must be deterministic across parses.
func FuzzQueryParse(f *testing.F) {
	for _, s := range []string{
		``,
		`1+1`,
		`/bib/book/title`,
		`//a[@k = "v"]`,
		`count(/Order/OrderLine)`,
		`for $b in /bib/book where $b/price > 30 return $b/title`,
		`let $x := (1, 2, 3) return sum($x)`,
		`sum(for $l in /Order/OrderLine return count($l/Item))`,
		`if (empty(/a)) then "none" else string(/a)`,
		`document("file.xml")/r/v`,
		`<wrap>{/bib/book/title}</wrap>`,
		`some $x in (1, 2) satisfies $x > 1`,
		`/a[`,           // truncated predicate
		`for $ in x`,    // malformed variable
		`"unterminated`, // open string literal
		`1 ++ 2`,
		`((((((((`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		q, err := Parse(src)
		q2, err2 := Parse(src)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic parse: first err = %v, second err = %v", err, err2)
		}
		if err == nil && (q == nil || q2 == nil) {
			t.Fatal("nil query with nil error")
		}
	})
}
