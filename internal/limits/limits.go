// Package limits implements resource governance: a process-wide Governor
// tracking bytes charged by every live execution, and per-query Budgets
// that convert overage into a structured, catchable error instead of an
// OOM kill.
//
// Charging is cooperative and approximate: the engine's hot allocation
// sites (store node growth during lazy materialization, batch buffer
// pools, FLWOR gather rounds, streamexec window buffers, materialized
// result buffers) charge an estimate of the bytes they retain and
// discharge what they provably release (window closes, round ends).
// Sites whose allocations escape into query results charge without
// discharging — the budget is an upper bound on retained bytes, released
// wholesale when the query finishes (Budget.ReleaseAll). The point is not
// byte-exact accounting but a cheap, monotone signal that trips well
// before the process is in real memory trouble.
//
// All methods are nil-receiver safe so un-budgeted executions pay a single
// pointer test per charge site.
package limits

import (
	"fmt"
	"sync/atomic"
)

// ErrCode is the structured XQuery error code a budget overage surfaces
// as. It follows the engine's err:XXXXnnnn convention so clients and the
// service error classifier treat it like any other evaluation error.
const ErrCode = "XQGO0001"

// BudgetError reports a per-query memory budget overage. It formats like
// the engine's xdm errors ("err:XQGO0001: ...") and carries the trace id
// of the offending execution when one was attached.
type BudgetError struct {
	Limit     int64  // configured budget in bytes
	Requested int64  // size of the charge that tripped
	Used      int64  // tracked bytes at the time of the trip
	TraceID   string // execution trace id, "" when tracing is off
}

func (e *BudgetError) Error() string {
	msg := fmt.Sprintf("err:%s: memory budget exceeded: query holds %d tracked bytes (+%d requested) over the %d byte limit",
		ErrCode, e.Used, e.Requested, e.Limit)
	if e.TraceID != "" {
		msg += " [trace " + e.TraceID + "]"
	}
	return msg
}

// Code returns the structured error code, mirroring xdm.Error.
func (e *BudgetError) Code() string { return ErrCode }

// Governor is the process-wide ledger: every Budget created against it
// adds its charges here, so the admission path can compare live tracked
// bytes against the process soft cap and shed load before executing.
type Governor struct {
	soft atomic.Int64 // process soft cap in bytes; 0 = unlimited
	used atomic.Int64 // live tracked bytes across all attached budgets
	shed atomic.Int64 // admissions rejected because the cap was near
}

// NewGovernor returns a governor with the given process soft cap in bytes
// (0 = unlimited). The caller decides whether to also wire the cap into
// the Go runtime (debug.SetMemoryLimit) — the governor itself never
// touches process-global state, so tests can create as many as they like.
func NewGovernor(softLimitBytes int64) *Governor {
	g := &Governor{}
	g.soft.Store(softLimitBytes)
	return g
}

// SetSoftLimit replaces the process soft cap (0 = unlimited).
func (g *Governor) SetSoftLimit(n int64) {
	if g != nil {
		g.soft.Store(n)
	}
}

// SoftLimit returns the configured process soft cap, 0 when unlimited.
func (g *Governor) SoftLimit() int64 {
	if g == nil {
		return 0
	}
	return g.soft.Load()
}

// InUse returns live tracked bytes across all attached budgets.
func (g *Governor) InUse() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// shedNum/shedDen: admission sheds when tracked bytes exceed 4/5 of the
// soft cap, leaving headroom for the queries already running to finish.
const (
	shedNum = 4
	shedDen = 5
)

// Overloaded reports whether tracked bytes are near the soft cap —
// the admission path rejects new work (503) while this holds.
func (g *Governor) Overloaded() bool {
	if g == nil {
		return false
	}
	soft := g.soft.Load()
	return soft > 0 && g.used.Load() >= soft/shedDen*shedNum
}

// NoteShed counts one admission rejected by the overload check.
func (g *Governor) NoteShed() {
	if g != nil {
		g.shed.Add(1)
	}
}

// Sheds returns the number of admissions rejected by the overload check.
func (g *Governor) Sheds() int64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// Governed creates a budget with the given per-query cap charging against
// this governor.
func (g *Governor) Governed(maxBytes int64) *Budget { return NewBudget(maxBytes, g) }

// Budget tracks one execution's bytes against a per-query cap and, when
// attached to a Governor, against the process soft cap. Safe for
// concurrent use (morsel workers charge from many goroutines).
type Budget struct {
	max     int64 // per-query cap in bytes; 0 = unlimited (track only)
	gov     *Governor
	traceID atomic.Pointer[string]
	used    atomic.Int64
	peak    atomic.Int64
	trips   atomic.Int64
}

// NewBudget returns a budget with the given per-query cap in bytes
// (0 = track without enforcing) charging against gov (nil = standalone).
func NewBudget(maxBytes int64, gov *Governor) *Budget {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Budget{max: maxBytes, gov: gov}
}

// SetTraceID attaches the execution's trace id so budget errors carry it.
func (b *Budget) SetTraceID(id string) {
	if b != nil && id != "" {
		b.traceID.Store(&id)
	}
}

// Max returns the per-query cap, 0 when tracking only.
func (b *Budget) Max() int64 {
	if b == nil {
		return 0
	}
	return b.max
}

// Used returns live tracked bytes.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of tracked bytes.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Trips returns how many charges exceeded the cap.
func (b *Budget) Trips() int64 {
	if b == nil {
		return 0
	}
	return b.trips.Load()
}

// Charge adds n tracked bytes. When the total exceeds the per-query cap
// it returns a *BudgetError; the charge stays on the books (the allocation
// it describes typically already happened) until Discharge or ReleaseAll.
func (b *Budget) Charge(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	used := b.used.Add(n)
	for {
		p := b.peak.Load()
		if used <= p || b.peak.CompareAndSwap(p, used) {
			break
		}
	}
	if b.gov != nil {
		b.gov.used.Add(n)
	}
	if b.max > 0 && used > b.max {
		b.trips.Add(1)
		return b.err(n, used)
	}
	return nil
}

// MustCharge is Charge for call sites without an error return: overage
// panics with the *BudgetError, which the engine's recover boundaries
// (recoverXQ) convert back into an ordinary execution error.
func (b *Budget) MustCharge(n int64) {
	if err := b.Charge(n); err != nil {
		panic(err)
	}
}

// Discharge returns n tracked bytes — call when a charged allocation is
// provably released (window close, gather-round end).
func (b *Budget) Discharge(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(-n)
	if b.gov != nil {
		b.gov.used.Add(-n)
	}
}

// ReleaseAll returns every outstanding tracked byte to the governor —
// called exactly once when the execution finishes, however it finishes.
// The budget remains readable (Peak, Trips) but must not be charged again.
func (b *Budget) ReleaseAll() {
	if b == nil {
		return
	}
	used := b.used.Swap(0)
	if used != 0 && b.gov != nil {
		b.gov.used.Add(-used)
	}
}

func (b *Budget) err(requested, used int64) *BudgetError {
	e := &BudgetError{Limit: b.max, Requested: requested, Used: used}
	if p := b.traceID.Load(); p != nil {
		e.TraceID = *p
	}
	return e
}
