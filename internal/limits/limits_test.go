package limits

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestBudgetChargeWithinCap(t *testing.T) {
	b := NewBudget(100, nil)
	if err := b.Charge(60); err != nil {
		t.Fatalf("charge 60/100: %v", err)
	}
	if err := b.Charge(40); err != nil {
		t.Fatalf("charge 100/100: %v", err)
	}
	if got := b.Used(); got != 100 {
		t.Errorf("Used = %d, want 100", got)
	}
	if got := b.Peak(); got != 100 {
		t.Errorf("Peak = %d, want 100", got)
	}
	if got := b.Trips(); got != 0 {
		t.Errorf("Trips = %d, want 0", got)
	}
}

func TestBudgetOverageTripsStructuredError(t *testing.T) {
	b := NewBudget(100, nil)
	b.SetTraceID("t-123")
	if err := b.Charge(90); err != nil {
		t.Fatalf("charge 90: %v", err)
	}
	err := b.Charge(20)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("overage error = %v, want *BudgetError", err)
	}
	if be.Limit != 100 || be.Requested != 20 || be.Used != 110 {
		t.Errorf("BudgetError = %+v", be)
	}
	if be.Code() != ErrCode {
		t.Errorf("Code = %q, want %q", be.Code(), ErrCode)
	}
	msg := be.Error()
	if !strings.Contains(msg, "err:XQGO0001") || !strings.Contains(msg, "trace t-123") {
		t.Errorf("message %q missing code or trace id", msg)
	}
	// The charge stays on the books until released.
	if got := b.Used(); got != 110 {
		t.Errorf("Used after trip = %d, want 110", got)
	}
	if got := b.Trips(); got != 1 {
		t.Errorf("Trips = %d, want 1", got)
	}
}

func TestBudgetZeroCapTracksWithoutEnforcing(t *testing.T) {
	b := NewBudget(0, nil)
	if err := b.Charge(1 << 40); err != nil {
		t.Fatalf("uncapped charge: %v", err)
	}
	if got := b.Used(); got != 1<<40 {
		t.Errorf("Used = %d", got)
	}
}

func TestBudgetDischargeAndReleaseAll(t *testing.T) {
	g := NewGovernor(1000)
	b := g.Governed(500)
	b.MustCharge(300)
	b.Discharge(100)
	if got, want := b.Used(), int64(200); got != want {
		t.Errorf("Used = %d, want %d", got, want)
	}
	if got, want := g.InUse(), int64(200); got != want {
		t.Errorf("governor InUse = %d, want %d", got, want)
	}
	b.ReleaseAll()
	if got := b.Used(); got != 0 {
		t.Errorf("Used after ReleaseAll = %d", got)
	}
	if got := g.InUse(); got != 0 {
		t.Errorf("governor InUse after ReleaseAll = %d", got)
	}
	// Peak survives release for post-mortem accounting.
	if got := b.Peak(); got != 300 {
		t.Errorf("Peak after ReleaseAll = %d, want 300", got)
	}
}

func TestMustChargePanicsWithBudgetError(t *testing.T) {
	b := NewBudget(10, nil)
	defer func() {
		r := recover()
		var be *BudgetError
		if err, ok := r.(error); !ok || !errors.As(err, &be) {
			t.Fatalf("recovered %v, want *BudgetError", r)
		}
	}()
	b.MustCharge(11)
}

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	if err := b.Charge(100); err != nil {
		t.Errorf("nil Charge: %v", err)
	}
	b.MustCharge(100)
	b.Discharge(100)
	b.ReleaseAll()
	b.SetTraceID("x")
	if b.Used()|b.Peak()|b.Trips()|b.Max() != 0 {
		t.Error("nil budget accessors should all be zero")
	}
}

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	if g.Overloaded() {
		t.Error("nil governor overloaded")
	}
	g.NoteShed()
	g.SetSoftLimit(10)
	if g.InUse()|g.Sheds()|g.SoftLimit() != 0 {
		t.Error("nil governor accessors should all be zero")
	}
}

func TestGovernorOverloadThreshold(t *testing.T) {
	g := NewGovernor(1000)
	b := g.Governed(0)
	b.MustCharge(799)
	if g.Overloaded() {
		t.Errorf("overloaded at %d/1000", g.InUse())
	}
	b.MustCharge(1) // 800 = 4/5 of the cap
	if !g.Overloaded() {
		t.Errorf("not overloaded at %d/1000", g.InUse())
	}
	b.ReleaseAll()
	if g.Overloaded() {
		t.Error("overloaded after release")
	}
}

func TestBudgetConcurrentCharges(t *testing.T) {
	g := NewGovernor(0)
	b := g.Governed(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.MustCharge(3)
				b.Discharge(1)
			}
		}()
	}
	wg.Wait()
	want := int64(8 * 1000 * 2)
	if got := b.Used(); got != want {
		t.Errorf("Used = %d, want %d", got, want)
	}
	if got := g.InUse(); got != want {
		t.Errorf("governor InUse = %d, want %d", got, want)
	}
	b.ReleaseAll()
	if got := g.InUse(); got != 0 {
		t.Errorf("governor InUse after release = %d", got)
	}
}
