package workload

import (
	"fmt"
	"math/rand"

	"xqgo/internal/store"
)

// Trading-partner configuration documents: the shape of the paper's
// "fraction of a real customer query" input (WebLogic Integration ebXML /
// RosettaNet trading-partner management). Each trading partner carries
// identity attributes, addresses, certificates, delivery channels,
// document exchanges and transports; collaboration agreements join
// partners pairwise via delivery-channel names — feeding the three-way
// where-joins in the customer query.

// TPConfig sizes a trading-partner configuration.
type TPConfig struct {
	Partners   int
	Agreements int
	Seed       int64
}

var protocols = []string{"http", "https"}

// TradingPartners generates a wlc configuration document.
func TradingPartners(cfg TPConfig) *store.Document {
	if cfg.Agreements == 0 {
		cfg.Agreements = cfg.Partners / 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := store.NewBuilder(store.BuilderOptions{URI: fmt.Sprintf("wlc-%d.xml", cfg.Partners)})
	b.StartDocument()
	b.StartElement(q("wlc"))

	for i := 0; i < cfg.Partners; i++ {
		name := fmt.Sprintf("partner-%04d", i)
		b.StartElement(q("trading-partner"))
		must(b.Attr(q("name"), name))
		must(b.Attr(q("description"), "generated trading partner"))
		must(b.Attr(q("type"), pick(rng, "LOCAL", "REMOTE")))
		must(b.Attr(q("email"), name+"@example.com"))
		must(b.Attr(q("phone"), fmt.Sprintf("+1-555-%04d", rng.Intn(10000))))
		must(b.Attr(q("user-name"), name))

		b.StartElement(q("party-identifier"))
		must(b.Attr(q("business-id"), fmt.Sprintf("DUNS-%09d", rng.Intn(1_000_000_000))))
		b.EndElement()

		b.StartElement(q("address"))
		b.Text(fmt.Sprintf("%d Integration Way, Suite %d", 100+rng.Intn(900), rng.Intn(50)))
		b.EndElement()

		if rng.Intn(3) > 0 {
			b.StartElement(q("client-certificate"))
			must(b.Attr(q("name"), name+"-client-cert"))
			b.EndElement()
		}
		if rng.Intn(3) > 0 {
			b.StartElement(q("server-certificate"))
			must(b.Attr(q("name"), name+"-server-cert"))
			b.EndElement()
		}
		b.StartElement(q("signature-certificate"))
		must(b.Attr(q("name"), name+"-sig-cert"))
		b.EndElement()
		b.StartElement(q("encryption-certificate"))
		must(b.Attr(q("name"), name+"-enc-cert"))
		b.EndElement()

		// Delivery channel + document exchange + transport triples; the
		// customer query joins these three by name.
		channels := 1 + rng.Intn(2)
		for cch := 0; cch < channels; cch++ {
			proto := pick(rng, "ebXML", "RosettaNet")
			chName := fmt.Sprintf("%s-channel-%d", name, cch)
			deName := fmt.Sprintf("%s-exchange-%d", name, cch)
			tpName := fmt.Sprintf("%s-transport-%d", name, cch)

			b.StartElement(q("delivery-channel"))
			must(b.Attr(q("name"), chName))
			must(b.Attr(q("document-exchange-name"), deName))
			must(b.Attr(q("transport-name"), tpName))
			must(b.Attr(q("nonrepudiation-of-origin"), pick(rng, "true", "false")))
			must(b.Attr(q("nonrepudiation-of-receipt"), pick(rng, "true", "false")))
			b.EndElement()

			b.StartElement(q("document-exchange"))
			must(b.Attr(q("name"), deName))
			must(b.Attr(q("business-protocol-name"), proto))
			must(b.Attr(q("protocol-version"), pick(rng, "1.0", "2.0")))
			b.StartElement(q(proto + "-binding"))
			must(b.Attr(q("signature-certificate-name"), name+"-sig-cert"))
			if proto == "ebXML" {
				must(b.Attr(q("delivery-semantics"), pick(rng, "OnceAndOnlyOnce", "BestEffort")))
				if rng.Intn(2) == 0 {
					must(b.Attr(q("ttl"), fmt.Sprint((1+rng.Intn(60))*1000)))
				}
			} else {
				must(b.Attr(q("encryption-certificate-name"), name+"-enc-cert"))
				must(b.Attr(q("cipher-algorithm"), "RC5"))
				must(b.Attr(q("encryption-level"), fmt.Sprint(rng.Intn(3))))
				if rng.Intn(2) == 0 {
					must(b.Attr(q("time-out"), fmt.Sprint((1+rng.Intn(300))*1000)))
				}
			}
			if rng.Intn(2) == 0 {
				must(b.Attr(q("retries"), fmt.Sprint(1+rng.Intn(5))))
			}
			if rng.Intn(2) == 0 {
				must(b.Attr(q("retry-interval"), fmt.Sprint((1+rng.Intn(30))*1000)))
			}
			b.EndElement() // binding
			b.EndElement() // document-exchange

			b.StartElement(q("transport"))
			must(b.Attr(q("name"), tpName))
			must(b.Attr(q("protocol"), protocols[rng.Intn(len(protocols))]))
			must(b.Attr(q("protocol-version"), "1.1"))
			b.StartElement(q("endpoint"))
			must(b.Attr(q("uri"), fmt.Sprintf("https://%s.example.com/exchange", name)))
			b.EndElement()
			b.EndElement()
		}
		b.EndElement() // trading-partner
	}

	for i := 0; i < cfg.Agreements; i++ {
		p1 := rng.Intn(cfg.Partners)
		p2 := rng.Intn(cfg.Partners)
		b.StartElement(q("collaboration-agreement"))
		must(b.Attr(q("name"), fmt.Sprintf("agreement-%04d", i)))
		for _, pidx := range []int{p1, p2} {
			b.StartElement(q("party"))
			must(b.Attr(q("trading-partner-name"), fmt.Sprintf("partner-%04d", pidx)))
			must(b.Attr(q("delivery-channel-name"), fmt.Sprintf("partner-%04d-channel-0", pidx)))
			b.EndElement()
		}
		b.EndElement()
	}

	// Conversation definitions for the service-pair part of the query.
	for i := 0; i < cfg.Partners/2; i++ {
		b.StartElement(q("conversation-definition"))
		must(b.Attr(q("business-protocol-name"), pick(rng, "ebXML", "RosettaNet")))
		b.StartElement(q("role"))
		must(b.Attr(q("wlpi-template"), fmt.Sprintf("flow-%03d", i)))
		must(b.Attr(q("description"), "generated role"))
		b.EndElement()
		b.EndElement()
	}

	b.EndElement() // wlc
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}

// TradingPartnerQuery is a scaled-down version of the paper's customer
// transformation: one outer FOR over trading partners, nested FLWORs over
// certificates, and the three-way delivery-channel/document-exchange/
// transport join guarded by the business protocol.
const TradingPartnerQuery = `
declare variable $wlc external;
for $tp in $wlc/wlc/trading-partner
return
  <trading-partner
      name="{$tp/@name}"
      business-id="{$tp/party-identifier/@business-id}"
      type="{$tp/@type}"
      email="{$tp/@email}">
    { for $tp-ad in $tp/address return $tp-ad }
    { for $client-cert in $tp/client-certificate
      return <client-certificate name="{$client-cert/@name}"/> }
    { for $server-cert in $tp/server-certificate
      return <server-certificate name="{$server-cert/@name}"/> }
    { for $eb-dc in $tp/delivery-channel,
          $eb-de in $tp/document-exchange,
          $eb-tp in $tp/transport
      where $eb-dc/@document-exchange-name eq $eb-de/@name
        and $eb-dc/@transport-name eq $eb-tp/@name
        and $eb-de/@business-protocol-name eq "ebXML"
      return
        <ebxml-binding
            name="{$eb-dc/@name}"
            business-protocol-version="{$eb-de/@protocol-version}"
            is-signature-required="{$eb-dc/@nonrepudiation-of-origin}"
            delivery-semantics="{$eb-de/ebXML-binding/@delivery-semantics}">
          { if (empty($eb-de/ebXML-binding/@ttl)) then ()
            else attribute persist-duration
              { concat(($eb-de/ebXML-binding/@ttl div 1000), " seconds") } }
          <transport
              protocol="{$eb-tp/@protocol}"
              protocol-version="{$eb-tp/@protocol-version}"
              endpoint="{$eb-tp/endpoint[1]/@uri}"/>
        </ebxml-binding> }
  </trading-partner>
`
