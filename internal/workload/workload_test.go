package workload

import (
	"strings"
	"testing"

	"xqgo/internal/xdm"
)

func TestBibShape(t *testing.T) {
	doc := Bib(BibConfig{Books: 10, Seed: 1})
	bib := doc.RootNode().ChildrenOf()[0]
	if bib.NodeName().Local != "bib" {
		t.Fatal("root element")
	}
	books := bib.ChildrenOf()
	if len(books) != 10 {
		t.Fatalf("books = %d", len(books))
	}
	for _, b := range books {
		if b.NodeName().Local != "book" {
			t.Fatal("child kind")
		}
		if len(b.AttributesOf()) != 1 {
			t.Fatal("book must carry @year")
		}
		names := map[string]int{}
		for _, c := range b.ChildrenOf() {
			names[c.NodeName().Local]++
		}
		if names["title"] != 1 || names["publisher"] != 1 || names["price"] != 1 || names["author"] < 1 {
			t.Fatalf("book children = %v", names)
		}
	}
}

func TestOrdersShape(t *testing.T) {
	doc := Orders(OrdersConfig{Lines: 25, Sellers: 3, Seed: 2})
	order := doc.RootNode().ChildrenOf()[0]
	lines := 0
	sellers := map[string]bool{}
	for _, c := range order.ChildrenOf() {
		if c.NodeName().Local != "OrderLine" {
			continue
		}
		lines++
		for _, g := range c.ChildrenOf() {
			if g.NodeName().Local == "SellersID" {
				sellers[g.StringValue()] = true
			}
		}
	}
	if lines != 25 {
		t.Errorf("lines = %d", lines)
	}
	if len(sellers) > 3 {
		t.Errorf("sellers = %d, want <= 3", len(sellers))
	}
}

func TestTradingPartnersShape(t *testing.T) {
	doc := TradingPartners(TPConfig{Partners: 6, Seed: 3})
	wlc := doc.RootNode().ChildrenOf()[0]
	if wlc.NodeName().Local != "wlc" {
		t.Fatal("root")
	}
	partners, agreements, convs := 0, 0, 0
	for _, c := range wlc.ChildrenOf() {
		switch c.NodeName().Local {
		case "trading-partner":
			partners++
			// Every partner has the join triple the customer query needs.
			names := map[string]int{}
			for _, g := range c.ChildrenOf() {
				names[g.NodeName().Local]++
			}
			if names["delivery-channel"] == 0 || names["document-exchange"] == 0 || names["transport"] == 0 {
				t.Errorf("partner lacks join triple: %v", names)
			}
			if names["delivery-channel"] != names["document-exchange"] ||
				names["delivery-channel"] != names["transport"] {
				t.Errorf("triple counts differ: %v", names)
			}
		case "collaboration-agreement":
			agreements++
		case "conversation-definition":
			convs++
		}
	}
	if partners != 6 {
		t.Errorf("partners = %d", partners)
	}
	if agreements == 0 || convs == 0 {
		t.Errorf("agreements = %d, conversations = %d", agreements, convs)
	}
}

func TestDeepRespectsBudgetAndDepth(t *testing.T) {
	doc := Deep(DeepConfig{Nodes: 1000, MaxDepth: 4, Seed: 4})
	maxLevel := int32(0)
	elems := 0
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		if doc.Kind(id) == xdm.ElementNode {
			elems++
		}
		if doc.Level(id) > maxLevel {
			maxLevel = doc.Level(id)
		}
	}
	if elems < 1000 {
		t.Errorf("elements = %d, want >= 1000", elems)
	}
	if maxLevel > 5 { // document + root + MaxDepth levels
		t.Errorf("max level = %d exceeds depth bound", maxLevel)
	}
}

func TestRepetitiveIsRepetitive(t *testing.T) {
	doc := Repetitive(100, 5)
	if doc.Names.Len() > 10 {
		t.Errorf("distinct names = %d, want few", doc.Names.Len())
	}
	xml := DocToXML(doc)
	if strings.Count(xml, "<record ") != 100 {
		t.Errorf("records = %d", strings.Count(xml, "<record "))
	}
	if XMLSize(doc) != len(xml) {
		t.Error("XMLSize")
	}
}
