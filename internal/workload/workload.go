// Package workload generates the synthetic datasets the experiments run
// on: bibliography documents, Order/OrderLine messages (the paper's running
// Q1 example), WebLogic-style trading-partner configurations (the paper's
// "fraction of a real customer query" input), and deep recursive trees for
// the structural-join experiments. All generators are deterministic given a
// seed, and can emit either a store document directly (fast path for
// benchmarks) or XML text (for parser/end-to-end runs).
package workload

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"xqgo/internal/serializer"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// q is shorthand for a no-namespace QName.
func q(local string) xdm.QName { return xdm.LocalName(local) }

// DocToXML serializes a generated document to XML text.
func DocToXML(d *store.Document) string {
	s, err := serializer.NodeToString(d.RootNode())
	if err != nil {
		panic(err)
	}
	return s
}

// WriteXML writes a generated document as XML text.
func WriteXML(w io.Writer, d *store.Document) error {
	_, err := io.WriteString(w, DocToXML(d))
	return err
}

// ---- bibliography ----

// BibConfig sizes a bibliography document.
type BibConfig struct {
	Books int
	Seed  int64
}

var (
	titleWords = []string{
		"Data", "Web", "Advanced", "TCP/IP", "Streams", "Principles",
		"Modern", "Foundations", "Semistructured", "Query", "Processing",
		"XML", "Systems", "Internals", "Design",
	}
	firstNames = []string{"Serge", "Dan", "Mary", "Divesh", "Jennifer", "Michael", "Daniela", "Don", "Jerome", "Nick"}
	lastNames  = []string{"Abiteboul", "Suciu", "Fernandez", "Srivastava", "Widom", "Franklin", "Florescu", "Chamberlin", "Simeon", "Koudas"}
	publishers = []string{"Addison-Wesley", "Morgan Kaufmann", "Springer Verlag", "O'Reilly", "Prentice Hall"}
)

// Bib generates a bibliography document with n books.
func Bib(cfg BibConfig) *store.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := store.NewBuilder(store.BuilderOptions{URI: fmt.Sprintf("bib-%d.xml", cfg.Books)})
	b.StartDocument()
	b.StartElement(q("bib"))
	for i := 0; i < cfg.Books; i++ {
		b.StartElement(q("book"))
		must(b.Attr(q("year"), fmt.Sprint(1980+rng.Intn(25))))
		b.StartElement(q("title"))
		b.Text(titleWords[rng.Intn(len(titleWords))] + " " +
			titleWords[rng.Intn(len(titleWords))] + " " +
			titleWords[rng.Intn(len(titleWords))])
		b.EndElement()
		for a := 0; a <= rng.Intn(3); a++ {
			b.StartElement(q("author"))
			b.StartElement(q("last"))
			b.Text(lastNames[rng.Intn(len(lastNames))])
			b.EndElement()
			b.StartElement(q("first"))
			b.Text(firstNames[rng.Intn(len(firstNames))])
			b.EndElement()
			b.EndElement()
		}
		b.StartElement(q("publisher"))
		b.Text(publishers[rng.Intn(len(publishers))])
		b.EndElement()
		b.StartElement(q("price"))
		b.Text(fmt.Sprintf("%d.%02d", 20+rng.Intn(80), rng.Intn(100)))
		b.EndElement()
		b.EndElement()
	}
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// ---- orders (the Q1 message workload) ----

// OrdersConfig sizes an Order message document.
type OrdersConfig struct {
	Lines   int // OrderLine elements
	Sellers int // distinct SellersID values (selectivity control)
	Seed    int64
}

// Orders generates one Order document with cfg.Lines OrderLine children —
// the shape of the paper's example query Q1:
//
//	for $line in $doc/Order/OrderLine
//	where $line/SellersID eq 1
//	return <lineItem>{$line/Item/ID}</lineItem>
func Orders(cfg OrdersConfig) *store.Document {
	if cfg.Sellers <= 0 {
		cfg.Sellers = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := store.NewBuilder(store.BuilderOptions{URI: fmt.Sprintf("order-%d.xml", cfg.Lines)})
	b.StartDocument()
	b.StartElement(q("Order"))
	must(b.Attr(q("id"), fmt.Sprint(4711+cfg.Seed)))
	b.StartElement(q("date"))
	b.Text("2003-08-19")
	b.EndElement()
	for i := 0; i < cfg.Lines; i++ {
		b.StartElement(q("OrderLine"))
		b.StartElement(q("SellersID"))
		b.Text(fmt.Sprint(1 + rng.Intn(cfg.Sellers)))
		b.EndElement()
		b.StartElement(q("Item"))
		b.StartElement(q("ID"))
		b.Text(fmt.Sprintf("SKU-%06d", rng.Intn(1_000_000)))
		b.EndElement()
		b.StartElement(q("Quantity"))
		b.Text(fmt.Sprint(1 + rng.Intn(20)))
		b.EndElement()
		b.EndElement()
		b.StartElement(q("Note"))
		b.Text("deliver to dock " + fmt.Sprint(rng.Intn(40)))
		b.EndElement()
		b.EndElement()
	}
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// ---- deep trees for structural joins ----

// DeepConfig controls the recursive tree generator.
type DeepConfig struct {
	// Nodes is the approximate element count.
	Nodes int
	// MaxDepth bounds nesting.
	MaxDepth int
	// Names are the element names drawn from (weighted uniformly).
	Names []string
	// Fanout is the mean children per element.
	Fanout int
	Seed   int64
}

// Deep generates a recursive document where the Names elements nest freely,
// producing the ancestor/descendant distributions structural joins care
// about.
func Deep(cfg DeepConfig) *store.Document {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 12
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 4
	}
	if len(cfg.Names) == 0 {
		cfg.Names = []string{"a", "b", "c", "d"}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := store.NewBuilder(store.BuilderOptions{URI: fmt.Sprintf("deep-%d.xml", cfg.Nodes)})
	b.StartDocument()
	b.StartElement(q("root"))
	budget := cfg.Nodes
	var gen func(depth int)
	gen = func(depth int) {
		if budget <= 0 || depth >= cfg.MaxDepth {
			return
		}
		kids := 1 + rng.Intn(cfg.Fanout*2-1)
		for i := 0; i < kids && budget > 0; i++ {
			budget--
			name := cfg.Names[rng.Intn(len(cfg.Names))]
			b.StartElement(q(name))
			if rng.Intn(4) == 0 {
				b.Text(fmt.Sprint(rng.Intn(1000)))
			} else {
				gen(depth + 1)
			}
			b.EndElement()
		}
	}
	for budget > 0 {
		gen(1)
	}
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// ---- repetitive document for pooling experiments ----

// Repetitive generates a document with few distinct names and values —
// the best case for dictionary pooling (E9).
func Repetitive(records int, seed int64) *store.Document {
	rng := rand.New(rand.NewSource(seed))
	statuses := []string{"ACTIVE", "INACTIVE", "PENDING"}
	b := store.NewBuilder(store.BuilderOptions{URI: "repetitive.xml"})
	b.StartDocument()
	b.StartElement(q("records"))
	for i := 0; i < records; i++ {
		b.StartElement(q("record"))
		must(b.Attr(q("status"), statuses[rng.Intn(len(statuses))]))
		must(b.Attr(q("region"), fmt.Sprintf("region-%d", rng.Intn(5))))
		b.StartElement(q("kind"))
		b.Text("standard")
		b.EndElement()
		b.StartElement(q("owner"))
		b.Text(lastNames[rng.Intn(4)])
		b.EndElement()
		b.EndElement()
	}
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// XMLSize returns the serialized size in bytes (workload reporting).
func XMLSize(d *store.Document) int { return len(DocToXML(d)) }

// Names joins generator names for reporting.
func Names(names ...string) string { return strings.Join(names, ",") }
