package optimizer

import (
	"testing"

	"xqgo/internal/xqparse"
)

// extract parses and projects a query, returning the path-set rendering
// ("*keep-all*" when the analysis gave up entirely).
func extract(t *testing.T, src string) string {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return ExtractPaths(q).String()
}

func TestExtractPaths(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		// Serialized result: target subtrees kept.
		{`/bib/book/title`, `/bib/book/title#`},
		// EBV/count contexts need only the node.
		{`count(/bib/book)`, `/bib/book`},
		{`if (/bib/book) then 1 else 0`, `/bib/book`},
		{`empty(/site/regions)`, `/site/regions`},
		// Predicates on attributes materialize the owner; comparison on a
		// child keeps the child's subtree.
		{`/bib/book[@year = "1994"]/title`, `/bib/book /bib/book/title#`},
		{`/bib/book[price > 30]/title`, `/bib/book/price# /bib/book/title#`},
		// Descendant steps become any-depth steps; a bare // result keeps
		// the matched subtree.
		{`//title`, `//title#`},
		{`/site//item/name`, `/site//item/name#`},
		{`count(//book)`, `//book`},
		// FLWOR: for-binding cardinality is observed; returned content kept.
		{`for $b in /bib/book return $b/title`, `/bib/book /bib/book/title#`},
		{`for $b in /bib/book where $b/@year = "2000" return $b/author`,
			`/bib/book /bib/book/author#`},
		// Atomized targets keep subtrees.
		{`sum(/order/line/price)`, `/order/line/price#`},
		{`string(/a/b)`, `/a/b#`},
		// fn:doc anchors at the (projected) root too.
		{`doc("x.xml")/bib/book/title`, `/bib/book/title#`},
		// Constructors copy their content.
		{`<r>{/a/b}</r>`, `/a/b#`},
		// node()/text() steps force the parent subtree.
		{`/a/b/text()`, `/a/b#`},
		{`/a/node()`, `/a#`},
		// Wildcards.
		{`/a/*/c`, `/a/*/c#`},
		// Reverse axes defeat projection.
		{`/a/b/..`, `*keep-all*`},
		{`/a/b/parent::a`, `*keep-all*`},
		// The bare root / context item keeps the whole document (the "/#"
		// path set is not projectable).
		{`/`, `/#`},
		{`.`, `/#`},
		// External vars cannot hold projected-document nodes (the document
		// is created during execution), so their navigation adds no paths.
		{`declare variable $x external; count($x/a)`, ``},
		// Set operations union their sides.
		{`/a/b union /a/c`, `/a/b# /a/c#`},
		// User functions are analyzed through; recursion degrades safely.
		{`declare function local:t($x) { $x/title }; local:t(/bib/book)`,
			`/bib/book/title#`},
		{`declare function local:r($x) { local:r($x) }; local:r(/bib/book)`,
			`*keep-all*`},
	}
	for _, c := range cases {
		if got := extract(t, c.src); got != c.want {
			t.Errorf("ExtractPaths(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}
