// External test package: the equivalence harness needs internal/runtime,
// which now imports internal/optimizer for the join-strategy cost model —
// an in-package test file would be a test-only import cycle.
package optimizer_test

import (
	"strings"
	"testing"

	"xqgo/internal/expr"
	. "xqgo/internal/optimizer"
	"xqgo/internal/runtime"
	"xqgo/internal/serializer"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
	"xqgo/internal/xqparse"
)

// optimize parses a query and runs the optimizer with the given options.
func optimize(t *testing.T, src string, opts Options) *expr.Query {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Optimize(q, opts)
}

func planOf(t *testing.T, src string, opts Options) string {
	t.Helper()
	return expr.String(optimize(t, src, opts).Body)
}

func TestConstFold(t *testing.T) {
	cases := map[string]string{
		`1 + 2 * 3`:                      `7`,
		`-(2 + 3)`:                       `-5`,
		`1 eq 1`:                         `true`,
		`"a" lt "b"`:                     `true`,
		`if (1 eq 1) then "y" else "n"`:  `"y"`,
		`if (false()) then "y" else "n"`: `"n"`,
		`"42" cast as xs:integer`:        `42`,
		`concat("a", "b")`:               `"ab"`,
		`true() and false()`:             `false`,
		`1 eq 2 and $x`:                  `false`, // short-circuit fold
		`1 eq 1 or $x`:                   `true`,
	}
	for src, want := range cases {
		if got := planOf(t, src, Only(RuleConstFold)); got != want {
			t.Errorf("const-fold %q = %s, want %s", src, got, want)
		}
	}
	// Error-raising expressions must NOT fold.
	for _, src := range []string{`1 idiv 0`, `"x" cast as xs:integer`} {
		got := planOf(t, src, Only(RuleConstFold))
		if !strings.Contains(got, "idiv") && !strings.Contains(got, "cast") {
			t.Errorf("%q folded away a runtime error: %s", src, got)
		}
	}
}

func TestLetFold(t *testing.T) {
	// Single non-loop use: substituted.
	got := planOf(t, `let $x := 1 + $y return $x`, Only(RuleLetFold))
	if strings.Contains(got, "let") {
		t.Errorf("single-use let not folded: %s", got)
	}
	// Unused let: dropped.
	got = planOf(t, `let $dead := f($y) return 42`, Only(RuleLetFold))
	if strings.Contains(got, "dead") {
		t.Errorf("unused let not dropped: %s", got)
	}
	// Node-constructing let with multiple uses must NOT fold (the paper's
	// ($x, $x) identity example).
	got = planOf(t, `let $x := <a/> return ($x, $x)`, Only(RuleLetFold))
	if !strings.Contains(got, "let") {
		t.Errorf("constructor let with 2 uses folded: %s", got)
	}
	// Trivial binding folds regardless of use count.
	got = planOf(t, `let $x := $y return ($x, $x)`, Only(RuleLetFold))
	if strings.Contains(got, "let") {
		t.Errorf("trivial let not folded: %s", got)
	}
	// Use inside a loop must not fold an expensive binding.
	got = planOf(t, `let $x := f($y) return for $i in (1,2,3) return $x`, Only(RuleLetFold))
	if !strings.Contains(got, "let") {
		t.Errorf("loop-used let folded: %s", got)
	}
}

func TestFnInline(t *testing.T) {
	got := planOf(t, `declare function local:sq($x) { $x * $x }; local:sq(4)`,
		Only(RuleFnInline))
	if strings.Contains(got, "local:sq") || strings.Contains(got, "sq(") {
		t.Errorf("non-recursive function not inlined: %s", got)
	}
	// Recursive functions are never inlined.
	got = planOf(t, `declare function local:f($n) { if ($n le 0) then 0 else local:f($n - 1) }; local:f(3)`,
		Only(RuleFnInline))
	if !strings.Contains(got, "f(") {
		t.Errorf("recursive function was inlined: %s", got)
	}
	// Mutually recursive functions are never inlined.
	got = planOf(t, `
	  declare function local:a($n) { local:b($n) };
	  declare function local:b($n) { if ($n le 0) then 0 else local:a($n - 1) };
	  local:a(3)`, Only(RuleFnInline))
	if !strings.Contains(got, "a(") && !strings.Contains(got, "b(") {
		t.Errorf("mutually recursive functions inlined: %s", got)
	}
}

func TestFlworUnnest(t *testing.T) {
	src := `for $x in (for $y in $input where $y eq 3 return $y) return $x + 1`
	got := planOf(t, src, Only(RuleFlworUnnest))
	// The nested FLWOR in the for-clause input should be gone.
	if strings.Contains(got, "in (for") || strings.Contains(got, "in for") {
		t.Errorf("nested FLWOR not unnested: %s", got)
	}
	// Positional variables block unnesting.
	src2 := `for $x at $i in (for $y in $input return $y) return $i`
	got2 := planOf(t, src2, Only(RuleFlworUnnest))
	if !strings.Contains(got2, "at $i") {
		t.Errorf("positional unnest mangled the query: %s", got2)
	}
}

func TestPathOrderAnnotation(t *testing.T) {
	q := optimize(t, `/a/b/c`, Only(RulePathOrder))
	count := 0
	expr.Walk(q.Body, func(e expr.Expr) bool {
		if p, ok := e.(*expr.Path); ok && p.NoReorder {
			count++
		}
		return true
	})
	if count == 0 {
		t.Error("/a/b/c should have NoReorder paths")
	}
	// //a//b must keep its sort at the outermost path.
	q2 := optimize(t, `//a//b`, Only(RulePathOrder))
	outer := q2.Body.(*expr.Path)
	if outer.NoReorder {
		t.Error("//a//b outer path must keep the reorder step")
	}
	// for-variable paths: for $x in /r/a return $x/b — $x is one node, so
	// $x/b is sorted/distinct.
	q3 := optimize(t, `for $x in /r/a return $x/b`, Only(RulePathOrder))
	f := q3.Body.(*expr.Flwor)
	if p, ok := f.Ret.(*expr.Path); !ok || !p.NoReorder {
		t.Errorf("for-variable child path should elide reorder: %s", expr.String(q3.Body))
	}
}

func TestParentElim(t *testing.T) {
	got := planOf(t, `$x/a/..`, Only(RuleParentElim))
	if strings.Contains(got, "parent") {
		t.Errorf("$x/a/.. still navigates backwards: %s", got)
	}
	if !strings.Contains(got, "[") {
		t.Errorf("$x/a/.. should become a filter: %s", got)
	}
}

func TestNoNodeIDsMarking(t *testing.T) {
	q := optimize(t, `for $i in (1,2) return <r><nested/></r>`, Only(RuleNoNodeIDs))
	marked := 0
	expr.Walk(q.Body, func(e expr.Expr) bool {
		if c, ok := e.(*expr.ElemConstructor); ok && c.NoNodeIDs {
			marked++
		}
		return true
	})
	if marked != 2 {
		t.Errorf("marked %d constructors, want 2 (outer + nested)", marked)
	}
	// Constructors bound to variables are NOT in output position.
	q2 := optimize(t, `let $x := <a/> return count(($x, $x))`, Only(RuleNoNodeIDs))
	expr.Walk(q2.Body, func(e expr.Expr) bool {
		if c, ok := e.(*expr.ElemConstructor); ok && c.NoNodeIDs {
			t.Error("variable-bound constructor must not be marked")
		}
		return true
	})
}

func TestCSE(t *testing.T) {
	src := `for $b in $input/book return (count($b/title/text()) , count($b/title/text()))`
	got := planOf(t, src, Only(RuleCSE))
	if !strings.Contains(got, "cse") {
		t.Errorf("duplicate subtree not factored: %s", got)
	}
	// Node-creating expressions must not be factored.
	src2 := `for $b in $input return (<a/>, <a/>)`
	got2 := planOf(t, src2, Only(RuleCSE))
	if strings.Contains(got2, "cse") {
		t.Errorf("constructors must not be CSE'd: %s", got2)
	}
}

// TestOptimizerEquivalence is the differential harness: a corpus of queries
// is evaluated with the optimizer off and with every rule on (both
// engines); all four results must agree.
func TestOptimizerEquivalence(t *testing.T) {
	const doc = `<r><a id="1"><b>x</b><b>y</b></a><a id="2"><b>z</b></a><c>lone</c></r>`
	corpus := []string{
		`count(/r/a)`,
		`/r/a/b`,
		`//b`,
		`//a/b`,
		`string-join(for $b in //b return string($b), ",")`,
		`for $x in /r/a let $n := count($x/b) where $n ge 1 return concat($x/@id, ":", $n)`,
		`let $u := "unused" return 7`,
		`declare function local:f($v) { $v * 3 }; local:f(2) + local:f(3)`,
		`for $x in (for $y in /r/a return $y/b) return string($x)`,
		`<out>{for $a in /r/a return <copy id="{$a/@id}">{count($a/b)}</copy>}</out>`,
		`/r/a/..`,
		`(1 + 2) * (1 + 2)`,
		`some $b in //b satisfies string($b) eq "z"`,
		`for $a in /r/a order by string($a/@id) descending return string($a/@id)`,
		`(//b)[2]/string(.)`,
		`(count(//b) treat as xs:integer) + 1`,
		`for $a in /r/a group by $k := count($a/b) order by $k return concat($k, "=", count($a))`,
		`try { sum(for $b in //b return string-length($b)) } catch * { -1 }`,
		`element wrap { attribute n { count(//b) }, //c }`,
	}
	parsed, err := xmlparse.ParseString(doc, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dyn := func() *runtime.Dynamic {
		return &runtime.Dynamic{ContextItem: parsed.RootNode()}
	}
	for _, src := range corpus {
		src := src
		t.Run(src, func(t *testing.T) {
			var results []string
			for _, mode := range []struct {
				opt   bool
				eager bool
			}{
				{false, false}, {true, false}, {false, true}, {true, true},
			} {
				q, err := xqparse.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				if mode.opt {
					q = Optimize(q, Options{})
				}
				p, err := runtime.Compile(q, runtime.Options{Eager: mode.eager})
				if err != nil {
					t.Fatalf("compile (opt=%v eager=%v): %v", mode.opt, mode.eager, err)
				}
				seq, err := p.Eval(dyn())
				if err != nil {
					t.Fatalf("eval (opt=%v eager=%v): %v", mode.opt, mode.eager, err)
				}
				s, err := serializer.SequenceToString(seq)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, s)
			}
			for i := 1; i < len(results); i++ {
				if results[i] != results[0] {
					t.Errorf("mode %d disagrees:\n base %q\n got  %q", i, results[0], results[i])
				}
			}
		})
	}
}

// TestRuleContract checks the paper's rewriting-rule contract: free
// variables of the rewritten expression are a subset of the original's.
func TestRuleContract(t *testing.T) {
	corpus := []string{
		`let $x := $a + 1 return $x * $x`,
		`for $x in (for $y in $src return $y) return $x`,
		`declare function local:g($v) { $v + $w }; local:g($a)`,
	}
	for _, src := range corpus {
		orig, err := xqparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		before := expr.FreeVars(orig.Body)
		// Inlining can surface a function body's free variables in the
		// main expression; they were already free in the query as a whole.
		for i := range orig.Funcs {
			bodyFree := expr.FreeVars(orig.Funcs[i].Body)
			for v := range bodyFree {
				before[v] = true
			}
		}
		opt, err := xqparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		opt = Optimize(opt, Options{})
		after := expr.FreeVars(opt.Body)
		for v := range after {
			if !before[v] && !strings.Contains(v, "urn:xqgo") {
				t.Errorf("%q: rewrite introduced free variable %s", src, v)
			}
		}
	}
}

func TestDisableAndOnly(t *testing.T) {
	d := Disable(RuleConstFold)
	if !d.Disabled[RuleConstFold] || d.Disabled[RuleLetFold] {
		t.Error("Disable")
	}
	o := Only(RuleConstFold)
	if o.Disabled[RuleConstFold] || !o.Disabled[RuleLetFold] {
		t.Error("Only")
	}
	// NoOptimize equivalent: everything disabled leaves the tree unchanged.
	src := `1 + 2`
	got := planOf(t, src, Disable(AllRules...))
	if got != `(1 + 2)` {
		t.Errorf("all-disabled changed the tree: %s", got)
	}
}

func TestOptimizeIsIdempotentish(t *testing.T) {
	src := `declare function local:sq($x) { $x * $x };
	  for $b in $in/book let $t := $b/title where local:sq(2) eq 4 return ($t, $t)`
	q1 := optimize(t, src, Options{})
	s1 := expr.String(q1.Body)
	q2 := Optimize(q1, Options{})
	s2 := expr.String(q2.Body)
	if countRune(s2, '$') > countRune(s1, '$')+4 {
		t.Errorf("re-optimization keeps growing:\n1: %s\n2: %s", s1, s2)
	}
}

func countRune(s string, r rune) int {
	n := 0
	for _, c := range s {
		if c == r {
			n++
		}
	}
	return n
}

var _ = xdm.NewInteger // keep the import for helpers below if unused

func TestTypeRewrite(t *testing.T) {
	// treat over a statically known integer disappears.
	got := planOf(t, `(3 treat as xs:integer) + 1`, Only(RuleTypeRewrite))
	if strings.Contains(got, "treat") {
		t.Errorf("redundant treat kept: %s", got)
	}
	// instance-of folds to true when guaranteed.
	got = planOf(t, `count($x) instance of xs:integer`, Only(RuleTypeRewrite))
	if got != "true" {
		t.Errorf("guaranteed instance-of not folded: %s", got)
	}
	// Possibly-failing treats stay.
	got = planOf(t, `$x treat as xs:integer`, Only(RuleTypeRewrite))
	if !strings.Contains(got, "treat") {
		t.Errorf("needed treat removed: %s", got)
	}
	// Constructed element matches element(name).
	got = planOf(t, `<a/> instance of element(a)`, Only(RuleTypeRewrite))
	if got != "true" {
		t.Errorf("constructor instance-of not folded: %s", got)
	}
	// Not-guaranteed instance-of stays.
	got = planOf(t, `$x instance of element(a)`, Only(RuleTypeRewrite))
	if !strings.Contains(got, "instance of") {
		t.Errorf("uncertain instance-of folded: %s", got)
	}
}

func TestInferBasics(t *testing.T) {
	cases := map[string]string{
		`3`:                        "xs:integer",
		`"s"`:                      "xs:string",
		`(1, 2, 3)`:                "xs:integer+",
		`()`:                       "empty-sequence()",
		`1 to 5`:                   "xs:integer*",
		`1 + 2`:                    "xs:integer",
		`<a/>`:                     "element(a)",
		`attribute b {1}`:          "attribute(b)",
		`if (1) then 1 else ()`:    "xs:integer?",
		`count($x)`:                "xs:integer",
		`for $i in (1,2) return 3`: "xs:integer*",
	}
	for src, want := range cases {
		q, err := xqparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if got := expr.Infer(q.Body, nil).String(); got != want {
			t.Errorf("Infer(%q) = %s, want %s", src, got, want)
		}
	}
}
