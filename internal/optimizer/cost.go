package optimizer

// Cost-based strategy selection for rooted path chains (//a//b/c …): the
// planner chooses per branch between navigation, binary stack-tree
// structural joins, and the holistic twig (PathStack) join. Inputs are
// store-level statistics collected at parse time (document size, mean
// element depth, per-name posting-list lengths — tag selectivity), whether
// a structural index is already cached for the document, and the output
// cardinality observed on a prior run of the same operator (the profile
// feedback loop). The Demythization report's core finding motivates the
// model's shape: holistic and binary joins each win on different query
// shapes, so neither is hard-coded.

// Strategy selects how a join-eligible path chain is executed.
type Strategy int

const (
	// StrategyDefault is the zero value: "not specified". It resolves to
	// StrategyAuto unless a deprecated knob (UseStructuralJoins) overrides.
	StrategyDefault Strategy = iota
	// StrategyAuto picks per branch and per document with this cost model.
	StrategyAuto
	// StrategyNavigation forces tree navigation (the index-free baseline).
	StrategyNavigation
	// StrategyBinaryJoin forces stack-tree binary structural joins.
	StrategyBinaryJoin
	// StrategyTwigJoin forces the holistic twig (PathStack) join.
	StrategyTwigJoin
)

// String renders the strategy the way xqd surfaces and metrics label it.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNavigation:
		return "navigation"
	case StrategyBinaryJoin:
		return "binary-join"
	case StrategyTwigJoin:
		return "twig-join"
	default:
		return "default"
	}
}

// ChainStep is one step of a rooted path chain, as the cost model sees it.
type ChainStep struct {
	Postings  int64 // posting-list length of the step's name test
	ChildEdge bool  // parent/child edge from the previous step
}

// ChainStats carries everything the model knows about one chain over one
// document.
type ChainStats struct {
	DocNodes   int64       // total nodes in the document
	AvgDepth   float64     // mean element depth (region-label level)
	IndexReady bool        // a structural index is already cached
	Observed   int64       // output cardinality observed on a prior run; -1 unknown
	Steps      []ChainStep // outermost-first
}

// CostEstimate is the model's verdict: abstract per-strategy costs (posting
// visits, roughly), the output-cardinality estimate used, and the winner.
type CostEstimate struct {
	Navigation float64 `json:"navigation"`
	BinaryJoin float64 `json:"binaryJoin"`
	TwigJoin   float64 `json:"twigJoin"`
	Output     float64 `json:"output"`
	Choice     Strategy
}

// Model weights, in abstract "posting visit" units. They encode relative
// constants, not absolute times: navigation touches every node per step
// through the full axis-iterator machinery and pays a sort+dedup tail on
// its materialized output; an index build is one cheap append-only scan;
// binary joins materialize intermediate pair lists the holistic join never
// allocates.
const (
	costNavNode  = 2.0  // navigation work per document node per chain step
	costNavOut   = 2.5  // per output item: materialize + sort + dedup tail
	costBuild    = 1.0  // index build, per document node (skipped when cached)
	costJoinPost = 1.0  // binary join, per input posting per step
	costPair     = 1.5  // binary join, per intermediate pair materialized
	costTwigPost = 1.25 // holistic join, per posting (stack discipline)
	costJoinOut  = 1.0  // join feed, per output item (already in doc order)
	costSetup    = 256  // fixed index-plan overhead: keeps tiny docs on navigation

	// selFloor keeps the containment expectation from collapsing to zero on
	// sparse names; selCap bounds it by the tree depth (a descendant has at
	// most AvgDepth-ish stacked ancestors).
	selFloor = 0.25
)

// EstimateChain runs the model over one chain and returns per-strategy
// costs plus the winning strategy. Ties go to the cheaper-machinery order
// navigation < twig < binary.
func EstimateChain(cs ChainStats) CostEstimate {
	if len(cs.Steps) == 0 {
		return CostEstimate{Choice: StrategyNavigation}
	}
	n := float64(cs.DocNodes)
	if n < 1 {
		n = 1
	}
	depth := cs.AvgDepth
	if depth < 1 {
		depth = 1
	}

	// Walk the chain estimating intermediate cardinalities: out_i candidates
	// of step i survive containment under the out_{i-1} survivors of the
	// previous step. The expected number of stacked ancestors over a random
	// node is ~ depth * |A| / N, floored so sparse names keep a pulse and
	// capped by the depth itself.
	var sumPostings, pairTotal float64
	out := float64(cs.Steps[0].Postings)
	sumPostings = out
	for _, s := range cs.Steps[1:] {
		l := float64(s.Postings)
		sumPostings += l
		f := depth * out / n
		if f < selFloor {
			f = selFloor
		}
		if f > depth {
			f = depth
		}
		pairs := l * f
		pairTotal += pairs
		if pairs < l {
			out = pairs
		} else {
			out = l
		}
	}
	if cs.Observed >= 0 {
		// Feedback from a prior run replaces the static output estimate —
		// profile estItems vs observed items as a free replanning signal.
		out = float64(cs.Observed)
	}

	build := 0.0
	if !cs.IndexReady {
		build = costBuild * n
	}
	steps := float64(len(cs.Steps))
	est := CostEstimate{
		Navigation: costNavNode*n*steps + costNavOut*out,
		BinaryJoin: build + costSetup + costJoinPost*sumPostings + costPair*pairTotal + costJoinOut*out,
		TwigJoin:   build + costSetup + costTwigPost*sumPostings + costJoinOut*out,
		Output:     out,
	}
	est.Choice = StrategyNavigation
	best := est.Navigation
	if est.TwigJoin < best {
		est.Choice, best = StrategyTwigJoin, est.TwigJoin
	}
	if est.BinaryJoin < best {
		est.Choice, best = StrategyBinaryJoin, est.BinaryJoin
	}
	return est
}
