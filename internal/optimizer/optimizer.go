// Package optimizer implements the rewriting optimizer: a library of
// equivalence-preserving rules applied under a simple fixpoint strategy —
// the paper's "library of rewriting rules (~100), and a hard-coded
// strategy". Every rule obeys the paper's contract for expr1 -> expr2:
// the rewritten expression subsumes the original's type and free variables.
//
// Rules are individually switchable so the rewrite-ablation experiment
// (E10) can measure each one's contribution.
package optimizer

import (
	"fmt"

	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// Rule names, usable with Options.Disable.
const (
	RuleConstFold   = "const-fold"   // constant folding incl. literal conditionals
	RuleLetFold     = "let-fold"     // LET clause folding / unused-let elimination
	RuleFnInline    = "fn-inline"    // non-recursive user function inlining
	RuleFlworUnnest = "flwor-unnest" // FOR-clause FLWOR unnesting
	RuleForMin      = "for-min"      // FOR clause minimization (unused singleton loops)
	RuleCSE         = "cse"          // common sub-expression factorization
	RulePathOrder   = "path-order"   // doc-order sort / duplicate-elim elision (E8)
	RuleParentElim  = "parent-elim"  // backward-navigation elimination ($x/a/..)
	RuleTypeRewrite = "type-rewrite" // type-based rewritings (treat/instance-of elimination)
	RuleNoNodeIDs   = "no-node-ids"  // on-demand node identifiers for constructors (E7)
)

// AllRules lists every rule, in application order.
var AllRules = []string{
	RuleConstFold, RuleLetFold, RuleFnInline, RuleFlworUnnest, RuleForMin,
	RuleCSE, RuleParentElim, RulePathOrder, RuleTypeRewrite, RuleNoNodeIDs,
}

// Options configure an optimization run.
type Options struct {
	// Disabled rules (by name). Nil enables everything.
	Disabled map[string]bool
	// MaxPasses bounds the fixpoint iteration (default 4).
	MaxPasses int
	// Trace, when non-nil, records every rule application (fire counts and
	// bounded before/after summaries) for explain output.
	Trace *Trace
}

// Disable returns Options with the given rules off.
func Disable(rules ...string) Options {
	m := make(map[string]bool, len(rules))
	for _, r := range rules {
		m[r] = true
	}
	return Options{Disabled: m}
}

// Only returns Options with only the given rules on.
func Only(rules ...string) Options {
	on := make(map[string]bool, len(rules))
	for _, r := range rules {
		on[r] = true
	}
	m := map[string]bool{}
	for _, r := range AllRules {
		if !on[r] {
			m[r] = true
		}
	}
	return Options{Disabled: m}
}

type optimizer struct {
	opts  Options
	query *expr.Query
	// function bodies by key for inlining; recursive set excluded
	inlinable map[string]*expr.FuncDecl
	cseN      int
}

// Optimize rewrites a query in place (the Body and function bodies are
// replaced by optimized trees) and returns it.
func Optimize(q *expr.Query, opts Options) *expr.Query {
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 4
	}
	o := &optimizer{opts: opts, query: q}
	o.findInlinable()

	for i := range q.Funcs {
		q.Funcs[i].Body = o.optimizeExpr(q.Funcs[i].Body)
	}
	for i := range q.Vars {
		if q.Vars[i].Init != nil {
			q.Vars[i].Init = o.optimizeExpr(q.Vars[i].Init)
		}
	}
	q.Body = o.optimizeExpr(q.Body)

	if o.on(RulePathOrder) {
		q.Body = o.annotatePathOrder(q.Body, nil)
		for i := range q.Funcs {
			q.Funcs[i].Body = o.annotatePathOrder(q.Funcs[i].Body, nil)
		}
	}
	if o.on(RuleNoNodeIDs) {
		q.Body = o.markOutputConstructors(q.Body)
	}
	return q
}

func (o *optimizer) on(rule string) bool { return !o.opts.Disabled[rule] }

func (o *optimizer) optimizeExpr(e expr.Expr) expr.Expr {
	for pass := 0; pass < o.opts.MaxPasses; pass++ {
		before := expr.String(e)
		e = o.pass(e)
		if expr.String(e) == before {
			break
		}
	}
	return e
}

// pass applies one bottom-up sweep of the local rules.
func (o *optimizer) pass(e expr.Expr) expr.Expr {
	return expr.Rewrite(e, func(x expr.Expr) expr.Expr {
		if o.on(RuleConstFold) {
			if r := constFold(x); r != nil {
				o.opts.Trace.record(RuleConstFold, x, r)
				return r
			}
		}
		if o.on(RuleFnInline) {
			if r := o.inlineCall(x); r != nil {
				o.opts.Trace.record(RuleFnInline, x, r)
				return r
			}
		}
		if o.on(RuleFlworUnnest) {
			if r := unnestFlwor(x); r != nil {
				o.opts.Trace.record(RuleFlworUnnest, x, r)
				return r
			}
		}
		if o.on(RuleForMin) {
			if r := minimizeFor(x); r != nil {
				o.opts.Trace.record(RuleForMin, x, r)
				return r
			}
		}
		if o.on(RuleLetFold) {
			if r := o.foldLets(x); r != nil {
				o.opts.Trace.record(RuleLetFold, x, r)
				return r
			}
		}
		if o.on(RuleCSE) {
			if r := o.factorCSE(x); r != nil {
				o.opts.Trace.record(RuleCSE, x, r)
				return r
			}
		}
		if o.on(RuleParentElim) {
			if r := elimParent(x); r != nil {
				o.opts.Trace.record(RuleParentElim, x, r)
				return r
			}
		}
		if o.on(RuleTypeRewrite) {
			if r := typeRewrite(x); r != nil {
				o.opts.Trace.record(RuleTypeRewrite, x, r)
				return r
			}
		}
		return nil
	})
}

// findInlinable computes the non-recursive user functions small enough to
// inline.
func (o *optimizer) findInlinable() {
	o.inlinable = map[string]*expr.FuncDecl{}
	// Build call graph and find functions that (transitively) reach
	// themselves.
	calls := func(body expr.Expr) map[string]bool {
		out := map[string]bool{}
		expr.Walk(body, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Call); ok {
				out[c.Name.Clark()] = true
			}
			return true
		})
		return out
	}
	graph := map[string]map[string]bool{}
	decls := map[string]*expr.FuncDecl{}
	for i := range o.query.Funcs {
		fd := &o.query.Funcs[i]
		key := fd.Name.Clark()
		graph[key] = calls(fd.Body)
		decls[key] = fd
	}
	var reaches func(from, target string, seen map[string]bool) bool
	reaches = func(from, target string, seen map[string]bool) bool {
		if seen[from] {
			return false
		}
		seen[from] = true
		for callee := range graph[from] {
			if callee == target {
				return true
			}
			if _, isUser := graph[callee]; isUser && reaches(callee, target, seen) {
				return true
			}
		}
		return false
	}
	for key, fd := range decls {
		if reaches(key, key, map[string]bool{}) {
			continue // recursive
		}
		if expr.Count(fd.Body) > 60 {
			continue // too large to inline profitably
		}
		o.inlinable[key] = fd
	}
}

// inlineCall rewrites a call to an inlinable function into a let-FLWOR over
// its body ("Function inlining", with the paper's caveats handled: argument
// expressions are bound to lets so they evaluate exactly once; declared
// parameter types keep their checks via treat).
func (o *optimizer) inlineCall(x expr.Expr) expr.Expr {
	call, ok := x.(*expr.Call)
	if !ok {
		return nil
	}
	fd, ok := o.inlinable[call.Name.Clark()]
	if !ok || len(call.Args) != len(fd.Params) {
		return nil
	}
	body := fd.Body
	// Rename parameters to fresh names to avoid capture.
	var clauses []expr.Clause
	for i, prm := range fd.Params {
		fresh := xdm.QName{Space: "urn:xqgo:inline", Local: fmt.Sprintf("%s_%d", prm.Name.Local, o.cseN)}
		o.cseN++
		in := call.Args[i]
		if prm.Type != nil {
			in = &expr.Treat{Base: expr.Base{P: call.Span()}, X: in, T: *prm.Type}
		}
		clauses = append(clauses, expr.Clause{Kind: expr.LetClause, Var: fresh, In: in})
		body = replaceVar(body, prm.Name, &expr.VarRef{Base: expr.Base{P: call.Span()}, Name: fresh})
	}
	if fd.Ret != nil {
		body = &expr.Treat{Base: expr.Base{P: call.Span()}, X: body, T: *fd.Ret}
	}
	if len(clauses) == 0 {
		return body
	}
	return &expr.Flwor{Base: expr.Base{P: call.Span()}, Clauses: clauses, Ret: body}
}

// replaceVar substitutes references to name with repl, respecting shadowing.
func replaceVar(e expr.Expr, name xdm.QName, repl expr.Expr) expr.Expr {
	switch n := e.(type) {
	case *expr.VarRef:
		if n.Name.Equal(name) {
			return repl
		}
		return e
	case *expr.Flwor:
		out := *n
		out.Clauses = append([]expr.Clause(nil), n.Clauses...)
		shadowed := false
		for i := range out.Clauses {
			if !shadowed {
				out.Clauses[i].In = replaceVar(out.Clauses[i].In, name, repl)
			}
			if out.Clauses[i].Var.Equal(name) || out.Clauses[i].PosVar.Equal(name) {
				shadowed = true
			}
		}
		if !shadowed && out.Where != nil {
			out.Where = replaceVar(out.Where, name, repl)
		}
		out.Group = append([]expr.GroupSpec(nil), n.Group...)
		for i := range out.Group {
			if !shadowed {
				out.Group[i].Key = replaceVar(out.Group[i].Key, name, repl)
			}
			if out.Group[i].Var.Equal(name) {
				shadowed = true
			}
		}
		if !shadowed {
			out.Order = append([]expr.OrderSpec(nil), n.Order...)
			for i := range out.Order {
				out.Order[i].Key = replaceVar(out.Order[i].Key, name, repl)
			}
			out.Ret = replaceVar(out.Ret, name, repl)
		}
		return &out
	case *expr.Quantified:
		out := *n
		out.Binds = append([]expr.QBind(nil), n.Binds...)
		shadowed := false
		for i := range out.Binds {
			if !shadowed {
				out.Binds[i].In = replaceVar(out.Binds[i].In, name, repl)
			}
			if out.Binds[i].Var.Equal(name) {
				shadowed = true
			}
		}
		if !shadowed {
			out.Satisfies = replaceVar(out.Satisfies, name, repl)
		}
		return &out
	case *expr.Typeswitch:
		out := *n
		out.Input = replaceVar(n.Input, name, repl)
		out.Cases = append([]expr.TSCase(nil), n.Cases...)
		for i := range out.Cases {
			if !out.Cases[i].Var.Equal(name) {
				out.Cases[i].Body = replaceVar(out.Cases[i].Body, name, repl)
			}
		}
		if !n.DefaultVar.Equal(name) {
			out.Default = replaceVar(n.Default, name, repl)
		}
		return &out
	}
	children := e.Children()
	if len(children) == 0 {
		return e
	}
	newChildren := make([]expr.Expr, len(children))
	changed := false
	for i, c := range children {
		newChildren[i] = replaceVar(c, name, repl)
		if newChildren[i] != c {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return e.WithChildren(newChildren)
}
