package optimizer

import "testing"

// The decision table the runtime's pathDecision relies on: each entry is a
// document/chain shape with a known winner. Costs are abstract, so the test
// pins choices (the contract), not absolute numbers.
func TestEstimateChainDecisions(t *testing.T) {
	cases := []struct {
		name string
		cs   ChainStats
		want Strategy
	}{
		{
			// Deep 60k-node document, three well-populated steps: the binary
			// plan materializes large intermediate pair lists, navigation
			// touches every node per step — the holistic join wins.
			name: "deep chain picks twig",
			cs: ChainStats{
				DocNodes: 60000, AvgDepth: 12, Observed: -1,
				Steps: []ChainStep{{Postings: 15000}, {Postings: 15000}, {Postings: 15000}},
			},
			want: StrategyTwigJoin,
		},
		{
			// Tiny document: the fixed index-plan setup cost outweighs any
			// join advantage; stay on navigation.
			name: "tiny doc picks navigation",
			cs: ChainStats{
				DocNodes: 60, AvgDepth: 4, Observed: -1,
				Steps: []ChainStep{{Postings: 15}, {Postings: 15}},
			},
			want: StrategyNavigation,
		},
		{
			// Top-heavy chain: a huge first list joined against a small one
			// yields few pairs, so the binary plan's cheaper per-posting walk
			// beats the holistic stack discipline.
			name: "top-heavy chain picks binary",
			cs: ChainStats{
				DocNodes: 20000, AvgDepth: 4, Observed: -1,
				Steps: []ChainStep{{Postings: 10000}, {Postings: 100}},
			},
			want: StrategyBinaryJoin,
		},
		{
			name: "empty chain guards to navigation",
			cs:   ChainStats{DocNodes: 1000, AvgDepth: 4, Observed: -1},
			want: StrategyNavigation,
		},
	}
	for _, c := range cases {
		est := EstimateChain(c.cs)
		if est.Choice != c.want {
			t.Errorf("%s: chose %v (nav %.0f, binary %.0f, twig %.0f), want %v",
				c.name, est.Choice, est.Navigation, est.BinaryJoin, est.TwigJoin, c.want)
		}
	}
}

// Observed cardinality from a prior run replaces the static output estimate
// and can flip the choice: on a small document the static walk expects
// enough output to justify the index plan, but an observed-empty result
// makes navigation's higher per-item cost irrelevant.
func TestEstimateChainFeedbackFlip(t *testing.T) {
	cs := ChainStats{
		DocNodes: 100, AvgDepth: 3, Observed: -1,
		Steps: []ChainStep{{Postings: 20}, {Postings: 20}},
	}
	static := EstimateChain(cs)
	if static.Choice != StrategyTwigJoin {
		t.Fatalf("static choice = %v (nav %.0f, binary %.0f, twig %.0f), want twig",
			static.Choice, static.Navigation, static.BinaryJoin, static.TwigJoin)
	}
	cs.Observed = 0
	fed := EstimateChain(cs)
	if fed.Choice != StrategyNavigation {
		t.Errorf("observed-empty choice = %v (nav %.0f, twig %.0f), want navigation",
			fed.Choice, fed.Navigation, fed.TwigJoin)
	}
	if fed.Output != 0 {
		t.Errorf("Output = %.1f, want the observed cardinality 0", fed.Output)
	}
}

// A cached index removes exactly the build term from both join strategies
// and never changes navigation.
func TestEstimateChainIndexReady(t *testing.T) {
	cs := ChainStats{
		DocNodes: 5000, AvgDepth: 6, Observed: -1,
		Steps: []ChainStep{{Postings: 1000}, {Postings: 1000}},
	}
	cold := EstimateChain(cs)
	cs.IndexReady = true
	warm := EstimateChain(cs)
	if warm.Navigation != cold.Navigation {
		t.Errorf("navigation cost moved with index readiness: %.0f vs %.0f",
			warm.Navigation, cold.Navigation)
	}
	wantDelta := float64(cs.DocNodes) // costBuild per node
	if d := cold.TwigJoin - warm.TwigJoin; d != wantDelta {
		t.Errorf("twig build delta = %.0f, want %.0f", d, wantDelta)
	}
	if d := cold.BinaryJoin - warm.BinaryJoin; d != wantDelta {
		t.Errorf("binary build delta = %.0f, want %.0f", d, wantDelta)
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StrategyDefault:    "default",
		StrategyAuto:       "auto",
		StrategyNavigation: "navigation",
		StrategyBinaryJoin: "binary-join",
		StrategyTwigJoin:   "twig-join",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, got, w)
		}
	}
}
