package optimizer

import (
	"xqgo/internal/expr"
	"xqgo/internal/xdm"
)

// ---- doc-order / duplicate-elimination elision (E8) ----

// annotatePathOrder walks the tree maintaining an environment of variable
// order properties and sets Path.NoReorder wherever the step table proves
// the result is already in document order and duplicate-free:
//
//	$document/a/b/c   — sorted, distinct     -> elide
//	$document/a//b    — sorted, distinct     -> elide
//	$document//a/b    — not sorted           -> keep
//	$document/a/../b  — nothing guaranteed   -> keep
func (o *optimizer) annotatePathOrder(e expr.Expr, env map[string]expr.OrderProps) expr.Expr {
	if env == nil {
		env = map[string]expr.OrderProps{}
	}
	lookup := func(q xdm.QName) expr.OrderProps { return env[q.Clark()] }

	switch n := e.(type) {
	case *expr.Path:
		out := *n
		out.L = o.annotatePathOrder(n.L, env)
		out.R = o.annotatePathOrder(n.R, env)
		props := expr.Props(&out, lookup)
		if props.Sorted && props.Distinct {
			out.NoReorder = true
			if !n.NoReorder {
				o.opts.Trace.note(RulePathOrder, summarize(&out), "sort/dedup elided (NoReorder)")
			}
		}
		return &out

	case *expr.Flwor:
		out := *n
		out.Clauses = append([]expr.Clause(nil), n.Clauses...)
		// Child scopes extend the environment.
		child := map[string]expr.OrderProps{}
		for k, v := range env {
			child[k] = v
		}
		for i := range out.Clauses {
			out.Clauses[i].In = o.annotatePathOrder(out.Clauses[i].In, child)
			if out.Clauses[i].Kind == expr.ForClause {
				// A for-variable is a single item: trivially sorted,
				// distinct, and a single subtree root.
				child[out.Clauses[i].Var.Clark()] = expr.OrderProps{
					Sorted: true, Distinct: true, Disjoint: true,
				}
			} else {
				child[out.Clauses[i].Var.Clark()] =
					expr.Props(out.Clauses[i].In, func(q xdm.QName) expr.OrderProps { return child[q.Clark()] })
			}
			if !out.Clauses[i].PosVar.IsZero() {
				child[out.Clauses[i].PosVar.Clark()] = expr.OrderProps{Sorted: true, Distinct: true}
			}
		}
		if out.Where != nil {
			out.Where = o.annotatePathOrder(out.Where, child)
		}
		out.Group = append([]expr.GroupSpec(nil), n.Group...)
		for i := range out.Group {
			out.Group[i].Key = o.annotatePathOrder(out.Group[i].Key, child)
			child[out.Group[i].Var.Clark()] = expr.OrderProps{}
		}
		out.Order = append([]expr.OrderSpec(nil), n.Order...)
		for i := range out.Order {
			out.Order[i].Key = o.annotatePathOrder(out.Order[i].Key, child)
		}
		out.Ret = o.annotatePathOrder(out.Ret, child)
		return &out

	case *expr.Quantified:
		out := *n
		out.Binds = append([]expr.QBind(nil), n.Binds...)
		child := map[string]expr.OrderProps{}
		for k, v := range env {
			child[k] = v
		}
		for i := range out.Binds {
			out.Binds[i].In = o.annotatePathOrder(out.Binds[i].In, child)
			child[out.Binds[i].Var.Clark()] = expr.OrderProps{
				Sorted: true, Distinct: true, Disjoint: true,
			}
		}
		out.Satisfies = o.annotatePathOrder(out.Satisfies, child)
		return &out
	}

	children := e.Children()
	if len(children) == 0 {
		return e
	}
	newChildren := make([]expr.Expr, len(children))
	changed := false
	for i, c := range children {
		newChildren[i] = o.annotatePathOrder(c, env)
		if newChildren[i] != c {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return e.WithChildren(newChildren)
}

// ---- on-demand node identifiers (E7) ----

// markOutputConstructors marks element constructors sitting in "output
// position" — their value flows straight to the result — as NoNodeIDs:
// their trees can be emitted as tokens with no identity assignment. The
// runtime falls back to materializing when such a node is navigated after
// all, so the marking only needs to be plausible, not proven.
func (o *optimizer) markOutputConstructors(e expr.Expr) expr.Expr {
	switch n := e.(type) {
	case *expr.ElemConstructor:
		out := *n
		out.NoNodeIDs = true
		if !n.NoNodeIDs {
			o.opts.Trace.note(RuleNoNodeIDs, summarize(n), "constructor streams without node ids")
		}
		// Content expressions are emitted through the streaming path too;
		// mark nested constructors recursively.
		out.Content = append([]expr.Expr(nil), n.Content...)
		for i := range out.Content {
			out.Content[i] = o.markOutputConstructors(out.Content[i])
		}
		return &out
	case *expr.Seq:
		out := *n
		out.Items = append([]expr.Expr(nil), n.Items...)
		for i := range out.Items {
			out.Items[i] = o.markOutputConstructors(out.Items[i])
		}
		return &out
	case *expr.Flwor:
		out := *n
		out.Ret = o.markOutputConstructors(n.Ret)
		return &out
	case *expr.If:
		out := *n
		out.Then = o.markOutputConstructors(n.Then)
		out.Else = o.markOutputConstructors(n.Else)
		return &out
	case *expr.Typeswitch:
		out := *n
		out.Cases = append([]expr.TSCase(nil), n.Cases...)
		for i := range out.Cases {
			out.Cases[i].Body = o.markOutputConstructors(out.Cases[i].Body)
		}
		out.Default = o.markOutputConstructors(n.Default)
		return &out
	}
	return e
}
