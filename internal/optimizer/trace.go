package optimizer

import (
	"strings"

	"xqgo/internal/expr"
)

// A Trace records which rewrite rules fired during an optimization run:
// per-rule fire counts plus a bounded list of before/after expression
// summaries. Attach one via Options.Trace; a nil Trace records nothing and
// every recording method is nil-safe, so rule code never guards explicitly.

// TraceEvent is one recorded rule application.
type TraceEvent struct {
	Rule   string `json:"rule"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// maxTraceEvents bounds the per-run event list; fire counts keep counting
// past the cap (Dropped reports the overflow).
const maxTraceEvents = 128

// Trace accumulates rewrite events for one Optimize call. Not safe for
// concurrent use; optimization is single-threaded.
type Trace struct {
	events  []TraceEvent
	fires   map[string]int
	dropped int
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{fires: map[string]int{}} }

// record notes that rule rewrote before into after.
func (t *Trace) record(rule string, before, after expr.Expr) {
	t.note(rule, summarize(before), summarize(after))
}

// note is record with pre-rendered summaries (used by the annotation rules
// whose "after" is a flag set on the same expression).
func (t *Trace) note(rule, before, after string) {
	if t == nil {
		return
	}
	t.fires[rule]++
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{Rule: rule, Before: before, After: after})
}

// Events returns the recorded events in application order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Fires returns a copy of the per-rule fire counts (only fired rules appear).
func (t *Trace) Fires() map[string]int {
	if t == nil || len(t.fires) == 0 {
		return nil
	}
	out := make(map[string]int, len(t.fires))
	for k, v := range t.fires {
		out[k] = v
	}
	return out
}

// Dropped reports how many events were discarded after the cap was reached.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// summarize renders a compact single-line expression summary for trace
// events.
func summarize(e expr.Expr) string {
	s := strings.Join(strings.Fields(expr.String(e)), " ")
	if r := []rune(s); len(r) > 80 {
		s = string(r[:77]) + "..."
	}
	return s
}
