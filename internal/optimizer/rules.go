package optimizer

import (
	"fmt"

	"xqgo/internal/expr"
	"xqgo/internal/functions"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// ---- constant folding ----

// constFold evaluates constant sub-expressions at compile time: arithmetic,
// value comparisons and logic over literals, literal conditionals, and
// constant casts. Expressions that would raise errors are left alone (the
// error must be raised at run time, and only if evaluated).
func constFold(x expr.Expr) expr.Expr {
	switch n := x.(type) {
	case *expr.Arith:
		l, okL := literalOf(n.L)
		r, okR := literalOf(n.R)
		if !okL || !okR {
			return nil
		}
		v, err := xdm.Arith(n.Op, l, r)
		if err != nil {
			return nil // fold would hide a runtime error
		}
		return expr.NewLiteral(n.Span(), v)
	case *expr.Neg:
		l, ok := literalOf(n.X)
		if !ok {
			return nil
		}
		v, err := xdm.Negate(l)
		if err != nil {
			return nil
		}
		return expr.NewLiteral(n.Span(), v)
	case *expr.Compare:
		l, okL := literalOf(n.L)
		r, okR := literalOf(n.R)
		if !okL || !okR {
			return nil
		}
		var v bool
		var err error
		if n.Kind == expr.CompValue {
			v, err = xdm.ValueCompare(n.Op, l, r)
		} else {
			v, err = xdm.GeneralCompareItems(n.Op, l, r)
		}
		if err != nil {
			return nil
		}
		return expr.NewLiteral(n.Span(), xdm.NewBoolean(v))
	case *expr.Logic:
		l, okL := literalOf(n.L)
		if okL {
			lb, err := xdm.EffectiveBooleanItem(l)
			if err != nil {
				return nil
			}
			// Short-circuit folding is always safe; folding away the other
			// side is safe because and/or may skip errors
			// non-deterministically per the paper.
			if n.And && !lb {
				return expr.NewLiteral(n.Span(), xdm.False)
			}
			if !n.And && lb {
				return expr.NewLiteral(n.Span(), xdm.True)
			}
			// a and X == ebv(X) is not expressible without fn:boolean; keep.
		}
		r, okR := literalOf(n.R)
		if okL && okR {
			lb, err1 := xdm.EffectiveBooleanItem(l)
			rb, err2 := xdm.EffectiveBooleanItem(r)
			if err1 != nil || err2 != nil {
				return nil
			}
			if n.And {
				return expr.NewLiteral(n.Span(), xdm.NewBoolean(lb && rb))
			}
			return expr.NewLiteral(n.Span(), xdm.NewBoolean(lb || rb))
		}
		return nil
	case *expr.If:
		l, ok := literalOf(n.Cond)
		if !ok {
			return nil
		}
		b, err := xdm.EffectiveBooleanItem(l)
		if err != nil {
			return nil
		}
		if b {
			return n.Then
		}
		return n.Else
	case *expr.Cast:
		l, ok := literalOf(n.X)
		if !ok || n.T == xdm.TQName { // QName casts are context sensitive
			return nil
		}
		if n.Castable {
			return expr.NewLiteral(n.Span(), xdm.NewBoolean(xdm.Castable(l, n.T)))
		}
		v, err := xdm.Cast(l, n.T)
		if err != nil {
			return nil
		}
		return expr.NewLiteral(n.Span(), v)
	case *expr.Call:
		// Fold deterministic, error-free built-ins over literal arguments
		// (fn:true, fn:concat of literals, fn:not(fn:true()), ...).
		if n.Name.Space != "http://www.w3.org/2005/xpath-functions" && n.Name.Space != "" {
			return nil
		}
		f, err := functions.Lookup(n.Name.Local, len(n.Args))
		if f == nil || err != nil || !f.Props.Deterministic ||
			f.Props.UsesContext || f.Props.CanRaiseError {
			return nil
		}
		args := make([]xdm.Sequence, len(n.Args))
		for i, a := range n.Args {
			switch arg := a.(type) {
			case *expr.Literal:
				args[i] = xdm.Sequence{arg.Val}
			case *expr.Seq:
				if len(arg.Items) != 0 {
					return nil
				}
				args[i] = xdm.Sequence{}
			default:
				return nil
			}
		}
		out, err := f.Call(nil, args)
		if err != nil || len(out) != 1 {
			return nil
		}
		a, ok := out[0].(xdm.Atomic)
		if !ok {
			return nil
		}
		return expr.NewLiteral(n.Span(), a)
	}
	return nil
}

func literalOf(e expr.Expr) (xdm.Atomic, bool) {
	l, ok := e.(*expr.Literal)
	if !ok {
		return xdm.Atomic{}, false
	}
	return l.Val, true
}

// ---- LET folding ----

// foldLets applies the paper's LET-clause folding with its two safety
// conditions: (1) the bound expression never creates new nodes, OR the
// variable is used at most once and not inside a loop; (2) namespace
// context sensitivity does not arise because prefixes were resolved at
// parse time (the paper's "namespace resolution during query analysis" case
// — "(1) is not a problem"). Unused lets are dropped outright: the lazy
// runtime would never evaluate them anyway.
func (o *optimizer) foldLets(x expr.Expr) expr.Expr {
	f, ok := x.(*expr.Flwor)
	if !ok || len(f.Group) > 0 {
		return nil
	}
	for i, cl := range f.Clauses {
		if cl.Kind != expr.LetClause || cl.Type != nil {
			continue
		}
		// Scope of the variable: later clauses + where + order + return.
		rest := restOfFlwor(f, i+1)
		uses := expr.UsesOf(rest, cl.Var)
		shadowedLater := false
		for _, later := range f.Clauses[i+1:] {
			if later.Var.Equal(cl.Var) || later.PosVar.Equal(cl.Var) {
				shadowedLater = true
			}
		}
		if shadowedLater {
			continue
		}
		switch {
		case uses.Count == 0:
			return dropClause(f, i)
		case isTrivial(cl.In):
			return substituteClause(f, i, cl)
		case uses.Count == 1 && !uses.InLoop:
			return substituteClause(f, i, cl)
		case !expr.CreatesNodes(cl.In, callCreatesNodes) && !expr.CanRaiseError(cl.In) &&
			uses.Count == 1:
			return substituteClause(f, i, cl)
		}
	}
	return nil
}

// restOfFlwor packages the part of a FLWOR after clause index i as a single
// expression for analysis purposes.
func restOfFlwor(f *expr.Flwor, from int) expr.Expr {
	rest := &expr.Flwor{Base: expr.Base{P: f.Span()}, Ret: f.Ret, Where: f.Where}
	rest.Clauses = append([]expr.Clause(nil), f.Clauses[from:]...)
	rest.Order = f.Order
	if len(rest.Clauses) == 0 {
		// Analysis helpers need a syntactically valid FLWOR; add a dummy
		// let that binds nothing anyone references.
		rest.Clauses = []expr.Clause{{
			Kind: expr.LetClause,
			Var:  xdm.QName{Space: "urn:xqgo:opt", Local: "dummy"},
			In:   &expr.Seq{Base: expr.Base{P: f.Span()}},
		}}
	}
	return rest
}

func dropClause(f *expr.Flwor, i int) expr.Expr {
	out := *f
	out.Clauses = append(append([]expr.Clause(nil), f.Clauses[:i]...), f.Clauses[i+1:]...)
	if len(out.Clauses) == 0 {
		if out.Where == nil && len(out.Order) == 0 {
			return out.Ret
		}
		// Keep a trivial let to preserve FLWOR structure.
		out.Clauses = []expr.Clause{{
			Kind: expr.LetClause,
			Var:  xdm.QName{Space: "urn:xqgo:opt", Local: "unit"},
			In:   expr.NewLiteral(f.Span(), xdm.NewInteger(0)),
		}}
	}
	return &out
}

func substituteClause(f *expr.Flwor, i int, cl expr.Clause) expr.Expr {
	out := *f
	out.Clauses = append(append([]expr.Clause(nil), f.Clauses[:i]...), f.Clauses[i+1:]...)
	// Substitute in the remaining clauses/where/order/return.
	for j := i; j < len(out.Clauses); j++ {
		out.Clauses[j].In = replaceVar(out.Clauses[j].In, cl.Var, cl.In)
	}
	if out.Where != nil {
		out.Where = replaceVar(out.Where, cl.Var, cl.In)
	}
	out.Order = append([]expr.OrderSpec(nil), f.Order...)
	for j := range out.Order {
		out.Order[j].Key = replaceVar(out.Order[j].Key, cl.Var, cl.In)
	}
	out.Ret = replaceVar(out.Ret, cl.Var, cl.In)
	if len(out.Clauses) == 0 {
		if out.Where == nil && len(out.Order) == 0 {
			return out.Ret
		}
		out.Clauses = []expr.Clause{{
			Kind: expr.LetClause,
			Var:  xdm.QName{Space: "urn:xqgo:opt", Local: "unit"},
			In:   expr.NewLiteral(f.Span(), xdm.NewInteger(0)),
		}}
	}
	return &out
}

// isTrivial reports expressions whose duplication costs nothing and whose
// re-evaluation is observationally identical.
func isTrivial(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Literal, *expr.VarRef:
		return true
	}
	return false
}

// ---- FLWOR unnesting ----

// unnestFlwor merges "for $x in (for $y in E where C return R)" into a
// single FLWOR ("Problem relatively simpler than in OQL — no nested
// collections in XML"). Count variables and order-by block the rewrite,
// exactly the caveats the paper lists.
func unnestFlwor(x expr.Expr) expr.Expr {
	f, ok := x.(*expr.Flwor)
	if !ok || len(f.Group) > 0 {
		return nil
	}
	for i, cl := range f.Clauses {
		if cl.Kind != expr.ForClause || !cl.PosVar.IsZero() || cl.Type != nil {
			continue
		}
		inner, ok := cl.In.(*expr.Flwor)
		if !ok || len(inner.Order) > 0 || len(inner.Group) > 0 {
			continue
		}
		innerHasPos := false
		for _, icl := range inner.Clauses {
			if !icl.PosVar.IsZero() {
				innerHasPos = true
			}
		}
		if innerHasPos {
			continue
		}
		// Name capture: inner clause variables must not collide with outer
		// variables used later; rename them to fresh names.
		out := *f
		out.Clauses = append([]expr.Clause(nil), f.Clauses[:i]...)
		renamed := inner
		for _, icl := range inner.Clauses {
			fresh := xdm.QName{Space: "urn:xqgo:unnest", Local: icl.Var.Local + "_" + fmt.Sprint(len(out.Clauses))}
			renamed = renameFlworVar(renamed, icl.Var, fresh)
		}
		out.Clauses = append(out.Clauses, renamed.Clauses...)
		// inner where must hold per inner tuple: merge into a conditional
		// wrapping of the binding sequence — add as a where conjunct is
		// wrong if outer clauses follow, so guard the new for-binding:
		bindSeq := renamed.Ret
		if renamed.Where != nil {
			bindSeq = &expr.If{
				Base: expr.Base{P: f.Span()},
				Cond: renamed.Where,
				Then: bindSeq,
				Else: &expr.Seq{Base: expr.Base{P: f.Span()}},
			}
		}
		out.Clauses = append(out.Clauses, expr.Clause{
			Kind: expr.ForClause, Var: cl.Var, In: bindSeq,
		})
		out.Clauses = append(out.Clauses, f.Clauses[i+1:]...)
		return &out
	}
	return nil
}

// renameFlworVar renames a variable bound by a FLWOR's own clause.
func renameFlworVar(f *expr.Flwor, from, to xdm.QName) *expr.Flwor {
	out := *f
	out.Clauses = append([]expr.Clause(nil), f.Clauses...)
	seen := false
	for i := range out.Clauses {
		if seen {
			out.Clauses[i].In = replaceVar(out.Clauses[i].In, from,
				&expr.VarRef{Base: expr.Base{P: f.Span()}, Name: to})
		}
		if out.Clauses[i].Var.Equal(from) {
			out.Clauses[i].Var = to
			seen = true
		}
	}
	repl := &expr.VarRef{Base: expr.Base{P: f.Span()}, Name: to}
	if out.Where != nil {
		out.Where = replaceVar(out.Where, from, repl)
	}
	out.Ret = replaceVar(out.Ret, from, repl)
	return &out
}

// ---- FOR minimization ----

// minimizeFor drops a for clause whose variable is never used and whose
// binding sequence is statically a singleton (a literal or a constructor):
// the loop multiplies the result by exactly one.
func minimizeFor(x expr.Expr) expr.Expr {
	f, ok := x.(*expr.Flwor)
	if !ok || len(f.Group) > 0 {
		return nil
	}
	for i, cl := range f.Clauses {
		if cl.Kind != expr.ForClause || !cl.PosVar.IsZero() {
			continue
		}
		if !isStaticSingleton(cl.In) {
			continue
		}
		rest := restOfFlwor(f, i+1)
		if expr.UsesOf(rest, cl.Var).Count > 0 {
			continue
		}
		return dropClause(f, i)
	}
	return nil
}

func isStaticSingleton(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Literal, *expr.ElemConstructor, *expr.TextConstructor,
		*expr.CommentConstructor, *expr.DocConstructor:
		return true
	}
	return false
}

// ---- common sub-expression factorization ----

// factorCSE extracts duplicated pure sub-expressions of a FLWOR return
// clause into a let binding. Purity per the paper: no node construction, no
// context sensitivity; error-capable expressions are allowed because the
// introduced let is evaluated lazily, so an error surfaces exactly when a
// use is evaluated ("guaranteed only if runtime implements consistently
// lazy evaluation" — ours does).
func (o *optimizer) factorCSE(x expr.Expr) expr.Expr {
	f, ok := x.(*expr.Flwor)
	if !ok || len(f.Group) > 0 {
		return nil
	}
	// Count candidate subtrees of the return clause.
	counts := map[string]int{}
	reps := map[string]expr.Expr{}
	expr.Walk(f.Ret, func(e expr.Expr) bool {
		if !cseCandidate(e) {
			return true
		}
		key := expr.String(e)
		counts[key]++
		if _, ok := reps[key]; !ok {
			reps[key] = e
		}
		return true
	})
	for key, cnt := range counts {
		if cnt < 2 {
			continue
		}
		rep := reps[key]
		// The expression must be closed over variables bound by this FLWOR
		// only if we insert the let AFTER those clauses; simplest safe
		// placement: last clause position.
		fresh := xdm.QName{Space: "urn:xqgo:cse", Local: fmt.Sprintf("cse%d", o.cseN)}
		o.cseN++
		out := *f
		out.Clauses = append(append([]expr.Clause(nil), f.Clauses...), expr.Clause{
			Kind: expr.LetClause, Var: fresh, In: rep,
		})
		ref := &expr.VarRef{Base: expr.Base{P: rep.Span()}, Name: fresh}
		out.Ret = replaceSubtree(f.Ret, key, ref)
		return &out
	}
	return nil
}

// callCreatesNodes answers the node-creation question for calls using the
// declarative function-property table ("this information is given
// declaratively"): built-ins answer from their properties, anything
// unresolved is conservatively creating.
func callCreatesNodes(c *expr.Call) bool {
	if f, err := functions.Lookup(c.Name.Local, len(c.Args)); err == nil && f != nil {
		return f.Props.CreatesNodes
	}
	return true
}

// cseCandidate: non-trivial, deterministic, node-creation-free,
// context-free, and worth a binding — factoring is only profitable when
// the duplicated work dominates the cost of the introduced variable, so we
// require a reasonably sized expression that actually touches data (a path
// or a function call).
func cseCandidate(e expr.Expr) bool {
	if expr.Count(e) < 6 {
		return false
	}
	if expr.CreatesNodes(e, callCreatesNodes) {
		return false
	}
	if expr.UsesContext(e) {
		return false
	}
	// Expressions binding their own variables complicate substitution.
	switch e.(type) {
	case *expr.Flwor, *expr.Quantified, *expr.Typeswitch:
		return false
	}
	expensive := false
	expr.Walk(e, func(x expr.Expr) bool {
		switch x.(type) {
		case *expr.Path, *expr.Call, *expr.SetOp:
			expensive = true
			return false
		}
		return true
	})
	return expensive
}

// replaceSubtree replaces every subtree whose rendering equals key.
func replaceSubtree(e expr.Expr, key string, repl expr.Expr) expr.Expr {
	return expr.Rewrite(e, func(x expr.Expr) expr.Expr {
		if x == repl {
			return nil
		}
		if expr.String(x) == key {
			return repl
		}
		return nil
	})
}

// ---- backward navigation elimination ----

// elimParent rewrites E/child::T/parent::node() (the "$x/a/.." pattern)
// into E[child::T], removing the backward axis so the pipeline can stream
// ("Replace backwards navigation with forward navigation ... enables
// streaming").
func elimParent(x expr.Expr) expr.Expr {
	outer, ok := x.(*expr.Path)
	if !ok {
		return nil
	}
	parentStep, ok := outer.R.(*expr.Step)
	if !ok || parentStep.Axis != expr.AxisParent || parentStep.Test.Kind != xtypes.TestAnyKind {
		return nil
	}
	inner, ok := outer.L.(*expr.Path)
	if !ok {
		return nil
	}
	childStep, ok := inner.R.(*expr.Step)
	if !ok || childStep.Axis != expr.AxisChild {
		return nil
	}
	// E/child::T/parent::node() == E[child::T] when E yields elements
	// (each result parent is the E node itself; dedup preserved by filter).
	return &expr.Filter{
		Base:  expr.Base{P: x.Span()},
		In:    inner.L,
		Preds: []expr.Expr{childStep},
	}
}

// ---- type-based rewritings ----

// typeRewrite applies the paper's "Type-based rewritings": a treat-as whose
// operand's inferred static type is already a subtype of the target is a
// no-op and is removed; an instance-of that is statically guaranteed folds
// to true(). Inference is conservative, so false negatives just leave the
// runtime check in place.
func typeRewrite(x expr.Expr) expr.Expr {
	switch n := x.(type) {
	case *expr.Treat:
		if expr.Infer(n.X, nil).SubtypeOf(n.T) {
			return n.X
		}
	case *expr.InstanceOf:
		if expr.Infer(n.X, nil).SubtypeOf(n.T) {
			return expr.NewLiteral(n.Span(), xdm.True)
		}
	}
	return nil
}
