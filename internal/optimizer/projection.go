package optimizer

import (
	"strconv"

	"xqgo/internal/expr"
	"xqgo/internal/projection"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// ExtractPaths derives a query's static projection (Marian & Siméon): the
// set of root-anchored paths whose nodes the query can possibly touch,
// each marked with whether the node itself suffices or its whole subtree is
// needed. The parser uses the result to skip unreachable subtrees during
// ingestion. The analysis is conservative: anything it cannot bound
// statically — reverse or sibling axes, recursive user functions, unknown
// expression forms — degrades to "keep everything", never to a wrong skip.
//
// The context item is assumed to be (the root of) the projected document;
// external variables are assumed not to hold nodes of it. Both assumptions
// hold by construction for streamed ingestion: the document is created
// during execution, after all bindings, and is handed to the query as the
// context item (or via fn:doc of its URI).
func ExtractPaths(q *expr.Query) *projection.Paths {
	x := &extractor{
		out:    projection.New(),
		funcs:  map[string]*expr.FuncDecl{},
		active: map[string]bool{},
	}
	for i := range q.Funcs {
		f := &q.Funcs[i]
		x.funcs[funcSig(f.Name, len(f.Params))] = f
	}
	root := rootVal()
	globals := &env{vars: map[string]aval{}, focus: &root}
	for i := range q.Vars {
		vd := &q.Vars[i]
		v := aval{known: true} // external: cannot reference the projected doc
		if vd.Init != nil {
			v = x.analyze(vd.Init, globals)
		}
		globals.vars[vd.Name.String()] = v
	}
	x.globals = globals
	v := x.analyze(q.Body, globals)
	x.consume(v, useContent)
	if x.out.KeepAll {
		return projection.KeepEverything()
	}
	return x.out
}

// use describes how a consumer observes a value's nodes.
type use uint8

const (
	// useNone: existence, count, identity, order or name only — the node
	// itself (with attributes) is enough.
	useNone use = iota
	// useContent: atomization, string value, copy or serialization — the
	// node's whole subtree is needed.
	useContent
)

// apath is one abstract root-anchored location.
type apath struct {
	steps []projection.Step
	// pendingDesc: the value also includes every descendant (a trailing
	// descendant-or-self::node()); a following child step matches at any
	// depth.
	pendingDesc bool
}

// aval abstracts the node provenance of an expression's value. known=false
// means nodes of unknown origin may be present: navigating or atomizing
// them is unbounded.
type aval struct {
	known bool
	paths []apath
}

func rootVal() aval   { return aval{known: true, paths: []apath{{}}} }
func atomicVal() aval { return aval{known: true} }

func union(a, b aval) aval {
	out := aval{known: a.known && b.known}
	out.paths = append(out.paths, a.paths...)
	out.paths = append(out.paths, b.paths...)
	return out
}

type env struct {
	vars  map[string]aval
	focus *aval // nil inside function bodies (no focus)
}

func (e *env) child() *env {
	vars := make(map[string]aval, len(e.vars)+2)
	for k, v := range e.vars {
		vars[k] = v
	}
	return &env{vars: vars, focus: e.focus}
}

func (e *env) withFocus(f aval) *env { return &env{vars: e.vars, focus: &f} }

type extractor struct {
	out     *projection.Paths
	funcs   map[string]*expr.FuncDecl
	globals *env
	active  map[string]bool // user functions on the analysis stack
}

func funcSig(n xdm.QName, arity int) string { return n.String() + "/" + strconv.Itoa(arity) }

func (x *extractor) keepAll() { x.out.KeepAll = true }

// consume records that v's nodes are observed with usage u.
func (x *extractor) consume(v aval, u use) {
	if !v.known && u == useContent {
		x.keepAll()
	}
	for _, p := range v.paths {
		if p.pendingDesc {
			// Descendants at every depth are in the value: the whole
			// subtree is live regardless of usage.
			x.out.Add(projection.Path{Steps: p.steps, KeepSubtree: true})
			continue
		}
		x.out.Add(projection.Path{Steps: p.steps, KeepSubtree: u == useContent})
	}
}

// eat analyzes and immediately consumes a list of expressions.
func (x *extractor) eat(env *env, u use, es ...expr.Expr) {
	for _, e := range es {
		if e != nil {
			x.consume(x.analyze(e, env), u)
		}
	}
}

// analyze computes the abstract value of e, recording (via consume/keepAll)
// every demand its evaluation places on the projected document. The
// returned value is NOT yet consumed — the consumer decides its usage.
func (x *extractor) analyze(e expr.Expr, env *env) aval {
	switch t := e.(type) {
	case *expr.Literal:
		return atomicVal()

	case *expr.VarRef:
		if v, ok := env.vars[t.Name.String()]; ok {
			return v
		}
		return aval{} // unresolved: unknown provenance

	case *expr.ContextItem:
		if env.focus == nil {
			x.keepAll()
			return aval{}
		}
		return *env.focus

	case *expr.Root:
		return rootVal()

	case *expr.Seq:
		out := atomicVal()
		for _, c := range t.Items {
			out = union(out, x.analyze(c, env))
		}
		return out

	case *expr.Range:
		x.eat(env, useContent, t.Lo, t.Hi)
		return atomicVal()

	case *expr.Arith:
		x.eat(env, useContent, t.L, t.R)
		return atomicVal()

	case *expr.Neg:
		x.eat(env, useContent, t.X)
		return atomicVal()

	case *expr.Compare:
		x.eat(env, useContent, t.L, t.R)
		return atomicVal()

	case *expr.NodeCompare:
		x.eat(env, useNone, t.L, t.R) // identity/order only
		return atomicVal()

	case *expr.Logic:
		x.eat(env, useNone, t.L, t.R) // EBV only
		return atomicVal()

	case *expr.Step:
		if env.focus == nil {
			x.keepAll()
			return aval{}
		}
		return x.applyStep(*env.focus, t.Axis, t.Test)

	case *expr.Path:
		lv := x.analyze(t.L, env)
		return x.analyze(t.R, env.withFocus(lv))

	case *expr.Filter:
		in := x.analyze(t.In, env)
		penv := env.withFocus(in)
		for _, p := range t.Preds {
			x.eat(penv, useNone, p)
		}
		return in

	case *expr.Flwor:
		fe := env.child()
		for _, cl := range t.Clauses {
			v := x.analyze(cl.In, fe)
			if cl.Kind == expr.ForClause {
				// Iteration observes the binding sequence's cardinality
				// even when the variable is unused.
				x.consume(v, useNone)
			}
			fe.vars[cl.Var.String()] = v
			if !cl.PosVar.IsZero() {
				fe.vars[cl.PosVar.String()] = atomicVal()
			}
		}
		if t.Where != nil {
			x.eat(fe, useNone, t.Where)
		}
		for _, g := range t.Group {
			x.eat(fe, useContent, g.Key)
			fe.vars[g.Var.String()] = atomicVal()
		}
		for _, o := range t.Order {
			x.eat(fe, useContent, o.Key)
		}
		return x.analyze(t.Ret, fe)

	case *expr.Quantified:
		qe := env.child()
		for _, b := range t.Binds {
			v := x.analyze(b.In, qe)
			x.consume(v, useNone) // iterated: cardinality observable
			qe.vars[b.Var.String()] = v
		}
		x.eat(qe, useNone, t.Satisfies)
		return atomicVal()

	case *expr.If:
		x.eat(env, useNone, t.Cond)
		return union(x.analyze(t.Then, env), x.analyze(t.Else, env))

	case *expr.TryCatch:
		return union(x.analyze(t.Try, env), x.analyze(t.Catch, env))

	case *expr.Typeswitch:
		iv := x.analyze(t.Input, env)
		x.consume(iv, useNone) // type matching inspects kind and name only
		out := atomicVal()
		for _, c := range t.Cases {
			ce := env
			if !c.Var.IsZero() {
				ce = env.child()
				ce.vars[c.Var.String()] = iv
			}
			out = union(out, x.analyze(c.Body, ce))
		}
		de := env
		if !t.DefaultVar.IsZero() {
			de = env.child()
			de.vars[t.DefaultVar.String()] = iv
		}
		return union(out, x.analyze(t.Default, de))

	case *expr.InstanceOf:
		x.eat(env, useNone, t.X)
		return atomicVal()

	case *expr.Cast:
		x.eat(env, useContent, t.X) // atomizes
		return atomicVal()

	case *expr.Treat:
		v := x.analyze(t.X, env)
		x.consume(v, useNone) // dynamic type check
		return v

	case *expr.SetOp:
		return union(x.analyze(t.L, env), x.analyze(t.R, env))

	case *expr.Call:
		return x.analyzeCall(t, env)

	case *expr.ElemConstructor:
		if t.NameExpr != nil {
			x.eat(env, useContent, t.NameExpr)
		}
		for _, a := range t.Attrs {
			x.eat(env, useContent, a.Parts...)
		}
		x.eat(env, useContent, t.Content...)
		return atomicVal() // fresh tree: navigation stays off the input

	case *expr.AttrConstructor:
		if t.NameExpr != nil {
			x.eat(env, useContent, t.NameExpr)
		}
		x.eat(env, useContent, t.Value...)
		return atomicVal()

	case *expr.TextConstructor:
		x.eat(env, useContent, t.X)
		return atomicVal()

	case *expr.CommentConstructor:
		x.eat(env, useContent, t.X)
		return atomicVal()

	case *expr.PIConstructor:
		x.eat(env, useContent, t.X)
		return atomicVal()

	case *expr.DocConstructor:
		x.eat(env, useContent, t.X)
		return atomicVal()

	default:
		// Unknown expression form: no static bound.
		x.keepAll()
		return aval{}
	}
}

// applyStep extends a focus value by one axis step.
func (x *extractor) applyStep(v aval, axis expr.Axis, test xtypes.NodeTest) aval {
	if !v.known {
		x.keepAll()
		return aval{}
	}
	switch axis {
	case expr.AxisSelf:
		return v // a (possibly narrowing) filter on the same nodes

	case expr.AxisChild:
		if s, ok := stepFromTest(test, false); ok {
			return x.extend(v, s)
		}
		if test.Kind == xtypes.TestDoc {
			return atomicVal() // children are never document nodes
		}
		// text()/comment()/pi()/node(): character-level content of the
		// focus is selected — keep its whole subtree.
		x.consumeSubtrees(v)
		return atomicVal()

	case expr.AxisAttribute:
		// Attributes ride on materialized elements: materialize the owners.
		x.consume(v, useNone)
		return atomicVal()

	case expr.AxisDescendant:
		if s, ok := stepFromTest(test, true); ok {
			return x.extend(v, s)
		}
		x.consumeSubtrees(v)
		return atomicVal()

	case expr.AxisDescendantOrSelf:
		if test.Kind == xtypes.TestAnyKind {
			// The classical // encoding: defer the depth wildcard onto the
			// next step.
			out := aval{known: true, paths: make([]apath, len(v.paths))}
			for i, p := range v.paths {
				out.paths[i] = apath{steps: p.steps, pendingDesc: true}
			}
			return out
		}
		if s, ok := stepFromTest(test, true); ok {
			// self (name-filtered, over-approximated) plus descendants.
			return union(v, x.extend(v, s))
		}
		x.consumeSubtrees(v)
		return atomicVal()

	default:
		// Reverse and sibling axes escape the forward projection frame.
		x.keepAll()
		return aval{}
	}
}

// extend appends a step to every path of v.
func (x *extractor) extend(v aval, s projection.Step) aval {
	out := aval{known: true, paths: make([]apath, len(v.paths))}
	for i, p := range v.paths {
		st := s
		if p.pendingDesc {
			st.AnyDepth = true
		}
		out.paths[i] = apath{steps: appendStep(p.steps, st)}
	}
	return out
}

// consumeSubtrees marks every path of v keep-subtree.
func (x *extractor) consumeSubtrees(v aval) { x.consume(v, useContent) }

func appendStep(steps []projection.Step, s projection.Step) []projection.Step {
	out := make([]projection.Step, len(steps)+1)
	copy(out, steps)
	out[len(steps)] = s
	return out
}

// stepFromTest converts an element name test into a projection step;
// ok=false for tests that select non-element kinds.
func stepFromTest(t xtypes.NodeTest, anyDepth bool) (projection.Step, bool) {
	switch t.Kind {
	case xtypes.TestName, xtypes.TestElement:
	default:
		return projection.Step{}, false
	}
	s := projection.Step{AnyDepth: anyDepth}
	switch {
	case t.AnyName || (t.Kind == xtypes.TestElement && t.Name.IsZero()):
		s.Any = true
	case t.WildSpace:
		s.WildSpace, s.Local = true, t.Name.Local
	case t.WildLocal:
		s.WildLocal, s.Space = true, t.Name.Space
	default:
		s.Space, s.Local = t.Name.Space, t.Name.Local
	}
	return s, true
}

// ---- function calls ----

const (
	fnSpace  = "http://www.w3.org/2005/xpath-functions"
	xsSpace  = "http://www.w3.org/2001/XMLSchema"
	xdtSpace = "http://www.w3.org/2005/xpath-datatypes"
)

// passthroughArgs: built-ins whose result may contain nodes of the listed
// argument positions, forwarded untouched; other arguments are atomized.
var passthroughArgs = map[string][]int{
	"subsequence":    {0},
	"reverse":        {0},
	"remove":         {0},
	"insert-before":  {0, 2},
	"unordered":      {0},
	"trace":          {0},
	"distinct-nodes": {0},
}

// cardinalityChecked: passthroughs that additionally observe the argument's
// cardinality (they can raise on it even when the result is discarded).
var cardinalityChecked = map[string][]int{
	"exactly-one": {0},
	"zero-or-one": {0},
	"one-or-more": {0},
}

// structuralFns observe only existence, count, identity or name of their
// node arguments.
var structuralFns = map[string]bool{
	"count": true, "empty": true, "exists": true, "not": true,
	"boolean": true, "name": true, "local-name": true, "node-name": true,
	"namespace-uri": true, "base-uri": true, "document-uri": true,
	"position": true, "last": true, "true": true, "false": true,
}

func (x *extractor) analyzeCall(c *expr.Call, env *env) aval {
	// User-declared function: analyze its body with the call's abstract
	// arguments (globals in scope, no focus).
	if f, ok := x.funcs[funcSig(c.Name, len(c.Args))]; ok {
		sig := funcSig(c.Name, len(c.Args))
		args := make([]aval, len(c.Args))
		for i, a := range c.Args {
			args[i] = x.analyze(a, env)
		}
		if x.active[sig] {
			// Recursion: no finite path bound.
			x.keepAll()
			return aval{}
		}
		x.active[sig] = true
		fe := funcEnv(x.globals)
		for i, p := range f.Params {
			fe.vars[p.Name.String()] = args[i]
		}
		rv := x.analyze(f.Body, fe)
		delete(x.active, sig)
		return rv
	}

	// Constructor functions xs:T(v): casts, which atomize.
	if c.Name.Space == xsSpace || c.Name.Space == xdtSpace {
		x.eat(env, useContent, c.Args...)
		return atomicVal()
	}
	if c.Name.Space != fnSpace && c.Name.Space != "" {
		x.keepAll()
		return aval{}
	}

	local := c.Name.Local
	switch {
	case local == "doc" || local == "document":
		x.eat(env, useContent, c.Args...)
		return rootVal()

	case local == "collection":
		// Collections resolve to eagerly-materialized catalog documents —
		// never the projected one.
		x.eat(env, useContent, c.Args...)
		return atomicVal()

	case local == "root":
		x.eat(env, useNone, c.Args...)
		return rootVal()

	case structuralFns[local]:
		x.eat(env, useNone, c.Args...)
		return atomicVal()

	default:
		if idxs, ok := passthroughArgs[local]; ok {
			return x.passthrough(c, env, idxs, false)
		}
		if idxs, ok := cardinalityChecked[local]; ok {
			return x.passthrough(c, env, idxs, true)
		}
		// Everything else — string/number/aggregation/comparison functions
		// and anything unknown — atomizes its arguments.
		x.eat(env, useContent, c.Args...)
		return atomicVal()
	}
}

func (x *extractor) passthrough(c *expr.Call, env *env, nodeArgs []int, checked bool) aval {
	isNodeArg := func(i int) bool {
		for _, j := range nodeArgs {
			if i == j {
				return true
			}
		}
		return false
	}
	out := atomicVal()
	for i, a := range c.Args {
		v := x.analyze(a, env)
		if isNodeArg(i) {
			if checked {
				x.consume(v, useNone)
			}
			out = union(out, v)
		} else {
			x.consume(v, useContent)
		}
	}
	return out
}

// funcEnv builds a function-body environment: globals only, focus
// undefined.
func funcEnv(globals *env) *env {
	vars := make(map[string]aval, len(globals.vars)+4)
	for k, v := range globals.vars {
		vars[k] = v
	}
	return &env{vars: vars, focus: nil}
}
