package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tid, sid := newTraceID(), newSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("zero id generated")
		}
		ts, ss := tid.String(), sid.String()
		if len(ts) != 32 || len(ss) != 16 {
			t.Fatalf("bad id lengths: %q %q", ts, ss)
		}
		if seen[ts] || seen[ss] {
			t.Fatalf("duplicate id in 64 draws: %q %q", ts, ss)
		}
		seen[ts], seen[ss] = true, true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New()
	root := tr.StartSpan("request", nil)
	hdr := tr.Traceparent()
	parts := strings.Split(hdr, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[3] != "01" {
		t.Fatalf("bad traceparent %q", hdr)
	}
	if parts[1] != tr.ID() || parts[2] != root.ID().String() {
		t.Fatalf("traceparent %q does not carry trace/root ids", hdr)
	}

	child, ok := FromTraceparent(hdr)
	if !ok {
		t.Fatalf("FromTraceparent rejected own output %q", hdr)
	}
	if child.ID() != tr.ID() {
		t.Fatalf("trace id not adopted: %s != %s", child.ID(), tr.ID())
	}
	croot := child.StartSpan("request", nil)
	data := child.Finish()
	if data.Remote != root.ID().String() {
		t.Fatalf("remote parent = %q, want %q", data.Remote, root.ID())
	}
	if data.Spans[0].Parent != root.ID().String() {
		t.Fatalf("adopted root span parent = %q, want remote %q", data.Spans[0].Parent, root.ID())
	}
	_ = croot
}

func TestFromTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, ok := FromTraceparent(h); ok {
			t.Errorf("FromTraceparent(%q) accepted", h)
		}
	}
	// Future versions with extra fields are accepted per spec.
	if _, ok := FromTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version traceparent with trailing fields rejected")
	}
}

func TestSpanTreeWellFormed(t *testing.T) {
	tr := New()
	root := tr.StartSpan("request", nil)
	exec := tr.StartSpan("execute", root)
	tr.AddSpan("op:path", exec, time.Time{}, time.Time{}, Attr{Key: "items", Value: 3})
	orphan := tr.StartSpan("queue", nil) // nil parent → under root
	orphan.End()
	exec.SetAttr("cached", true).End()
	root.End()

	d := tr.Finish()
	if len(d.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(d.Spans))
	}
	if d.Root != d.Spans[0].ID {
		t.Fatalf("root %q != first span %q", d.Root, d.Spans[0].ID)
	}
	ids := map[string]bool{}
	for _, s := range d.Spans {
		ids[s.ID] = true
	}
	for i, s := range d.Spans {
		if i == 0 {
			if s.Parent != "" {
				t.Fatalf("root span has parent %q", s.Parent)
			}
			continue
		}
		if !ids[s.Parent] {
			t.Fatalf("span %q parent %q not in trace", s.Name, s.Parent)
		}
	}
	if d.Spans[1].Attrs["cached"] != true {
		t.Fatalf("execute attrs = %v", d.Spans[1].Attrs)
	}
	if d.Spans[2].Attrs["items"] != 3 {
		t.Fatalf("op attrs = %v", d.Spans[2].Attrs)
	}
	if d.Spans[3].Parent != d.Root {
		t.Fatalf("nil-parent span should hang off root")
	}
}

func TestSpanCapAndNilSafety(t *testing.T) {
	tr := New()
	tr.maxSpans = 4
	for i := 0; i < 10; i++ {
		s := tr.StartSpan(fmt.Sprintf("s%d", i), nil)
		s.SetAttr("i", i) // nil-safe past the cap
		s.End()
	}
	d := tr.Finish()
	if len(d.Spans) != 4 || d.Dropped != 6 {
		t.Fatalf("spans=%d dropped=%d, want 4/6", len(d.Spans), d.Dropped)
	}

	// All methods must be nil-receiver safe.
	var nt *Trace
	var ns *Span
	if nt.StartSpan("x", nil) != nil || nt.ID() != "" || nt.Traceparent() != "" {
		t.Fatal("nil trace not inert")
	}
	nt.Finish()
	ns.SetAttr("k", "v")
	ns.End()
	if ns.ID() != (SpanID{}) {
		t.Fatal("nil span id not zero")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.StartSpan("request", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s := tr.StartSpan(fmt.Sprintf("w%d-%d", g, i), root)
				s.SetAttr("g", g)
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	d := tr.Finish()
	if len(d.Spans) != 161 {
		t.Fatalf("got %d spans, want 161", len(d.Spans))
	}
	for i, s := range d.Spans[1:] {
		if s.Parent != d.Root {
			t.Fatalf("span %d parent %q != root", i+1, s.Parent)
		}
		if s.Micros < 0 {
			t.Fatalf("negative duration on %s", s.Name)
		}
	}
}

func TestStoreRingEviction(t *testing.T) {
	st := NewStore(3)
	for i := 0; i < 5; i++ {
		tr := New()
		tr.StartSpan("request", nil).SetAttr("i", i)
		st.Add(tr.Finish())
	}
	if st.Len() != 3 || st.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", st.Len(), st.Total())
	}
	list := st.List()
	if len(list) != 3 {
		t.Fatalf("list len %d", len(list))
	}
	// Newest first: attrs i=4,3,2.
	for j, want := range []int{4, 3, 2} {
		if got := list[j].Spans[0].Attrs["i"]; got != want {
			t.Fatalf("list[%d] i=%v, want %d", j, got, want)
		}
	}
	if _, ok := st.Get(list[1].TraceID); !ok {
		t.Fatal("Get missed a retained trace")
	}
	if _, ok := st.Get("0000feed0000feed0000feed0000feed"); ok {
		t.Fatal("Get found a trace that was never added")
	}
}

func TestStoreConcurrent(t *testing.T) {
	st := NewStore(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := New()
				tr.StartSpan("request", nil)
				d := tr.Finish()
				st.Add(d)
				st.Get(d.TraceID)
				st.List()
			}
		}()
	}
	wg.Wait()
	if st.Total() != 400 || st.Len() != 16 {
		t.Fatalf("total=%d len=%d", st.Total(), st.Len())
	}
}
