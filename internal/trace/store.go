package trace

import "sync"

// DefaultStoreSize is the default capacity of the completed-trace ring.
const DefaultStoreSize = 256

// Store is a fixed-capacity ring of completed traces. Adding past capacity
// evicts the oldest; lookups by id scan the ring (capacity is small and
// lookups are operator-driven, so a map is not worth the bookkeeping).
type Store struct {
	mu    sync.Mutex
	ring  []Data
	pos   int
	n     int
	total uint64
}

// NewStore creates a store retaining the most recent size traces
// (DefaultStoreSize when size <= 0).
func NewStore(size int) *Store {
	if size <= 0 {
		size = DefaultStoreSize
	}
	return &Store{ring: make([]Data, size)}
}

// Add records a completed trace, evicting the oldest when full.
func (s *Store) Add(d Data) {
	if s == nil || d.TraceID == "" {
		return
	}
	s.mu.Lock()
	s.ring[s.pos] = d
	s.pos = (s.pos + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// Get returns the trace with the given id, if it is still in the ring.
func (s *Store) Get(id string) (Data, bool) {
	if s == nil {
		return Data{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		d := s.ring[(s.pos-1-i+len(s.ring))%len(s.ring)]
		if d.TraceID == id {
			return d, true
		}
	}
	return Data{}, false
}

// List returns retained traces, newest first.
func (s *Store) List() []Data {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Data, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.pos-1-i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Total returns the number of traces ever added (including evicted ones).
func (s *Store) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Len returns the number of traces currently retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
