// Package trace is a zero-dependency, W3C-traceparent-compatible span layer
// for request-scoped diagnostics: one Trace per request or subscription,
// spans for every pipeline stage (ingestion, projection, optimizer rewrites,
// per-operator execution, streaming windows, delivery), and a ring-buffered
// Store of completed traces served over HTTP.
//
// The design is deliberately lighter than OpenTelemetry: ids and the
// traceparent wire format follow the W3C Trace Context recommendation
// (https://www.w3.org/TR/trace-context/), so xqd traces correlate with any
// upstream proxy or caller that propagates the header, but spans live in
// process memory only — there is no exporter, no sampler, no external
// dependency. A Trace is safe for concurrent use (the parallel engine and
// SSE delivery share one per request); the off path is a nil check.
package trace

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace id (32 lowercase hex digits on the wire).
type TraceID [16]byte

// SpanID is the 8-byte W3C span id (16 lowercase hex digits on the wire).
type SpanID [8]byte

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the all-zero (invalid) id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the all-zero (invalid) id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// DefaultMaxSpans bounds the spans one trace retains. Span creation past the
// cap is counted (Data.Dropped) but records nothing, so a pathological
// request cannot grow a trace without bound. Engine stages that emit
// per-event spans (streaming windows, SSE results) apply their own smaller
// caps first so summary spans synthesized at request end still fit.
const DefaultMaxSpans = 512

// Attr is one key/value annotation on a span. Values should be JSON-encodable
// (strings, integers, floats, bools, string slices).
type Attr struct {
	Key   string
	Value any
}

// Span is one timed stage of a trace. Created by Trace.StartSpan, annotated
// with SetAttr, closed with End. Attribute writes and End are safe from the
// goroutine that owns the stage; concurrent SetAttr calls on the same span
// are serialized by the owning trace's lock.
type Span struct {
	t      *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
}

// ID returns the span's id.
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr annotates the span. Nil-safe (a span from an over-cap trace is nil).
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
	return s
}

// End closes the span at time.Now. Nil-safe and idempotent: only the first
// End sets the end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// Trace is one request's span collection. Create with New (or adopt an
// incoming context with FromTraceparent), add spans while the request runs,
// and call Finish once to snapshot it for the store.
type Trace struct {
	mu       sync.Mutex
	id       TraceID
	remote   SpanID // parent span id from an incoming traceparent header
	spans    []*Span
	root     *Span
	start    time.Time
	maxSpans int
	dropped  int
}

// New creates an empty trace with a fresh random trace id.
func New() *Trace {
	return &Trace{id: newTraceID(), start: time.Now(), maxSpans: DefaultMaxSpans}
}

// FromTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>") and returns a trace that continues the
// incoming trace id with the incoming span as remote parent. ok is false for
// malformed or all-zero values; callers should fall back to New.
func FromTraceparent(header string) (*Trace, bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return nil, false
	}
	if parts[0] == "ff" { // forbidden version
		return nil, false
	}
	var tid TraceID
	var sid SpanID
	if _, err := hex.Decode(tid[:], []byte(strings.ToLower(parts[1]))); err != nil {
		return nil, false
	}
	if _, err := hex.Decode(sid[:], []byte(strings.ToLower(parts[2]))); err != nil {
		return nil, false
	}
	if _, err := hex.DecodeString(strings.ToLower(parts[3])); err != nil {
		return nil, false
	}
	if tid.IsZero() || sid.IsZero() {
		return nil, false
	}
	t := New()
	t.id = tid
	t.remote = sid
	return t, true
}

// ID returns the trace id in wire form (32 lowercase hex digits).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id.String()
}

// Traceparent renders the outgoing W3C traceparent header for this trace:
// version 00, the trace id, the root span id (or the remote parent before a
// root span exists), sampled flag set.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	sid := t.remote
	if t.root != nil {
		sid = t.root.id
	}
	t.mu.Unlock()
	if sid.IsZero() {
		sid = newSpanID()
	}
	return fmt.Sprintf("00-%s-%s-01", t.id, sid)
}

// StartSpan opens a span. A nil parent parents the span under the trace's
// root span (the first span ever started becomes the root; its own parent is
// the remote traceparent span when one was adopted). Returns nil once the
// span cap is reached — all Span methods are nil-safe, so callers never
// guard.
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return nil
	}
	s := &Span{t: t, id: newSpanID(), name: name, start: time.Now()}
	switch {
	case parent != nil:
		s.parent = parent.id
	case t.root != nil:
		s.parent = t.root.id
	default:
		s.parent = t.remote
		t.root = s
	}
	t.spans = append(t.spans, s)
	return s
}

// AddSpan records an already-timed span in one call (used for stages whose
// timing is known only after the fact, like profile-derived operator spans).
// Zero start/end collapse to the call time.
func (t *Trace) AddSpan(name string, parent *Span, start, end time.Time, attrs ...Attr) *Span {
	s := t.StartSpan(name, parent)
	if s == nil {
		return nil
	}
	t.mu.Lock()
	if !start.IsZero() {
		s.start = start
	}
	if end.IsZero() {
		end = s.start
	}
	s.end = end
	s.attrs = append(s.attrs, attrs...)
	t.mu.Unlock()
	return s
}

// SpanCount returns the number of retained spans.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpanData is the JSON-ready form of one finished span.
type SpanData struct {
	ID       string         `json:"id"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartUTC time.Time      `json:"start"`
	Micros   int64          `json:"micros"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Data is the JSON-ready snapshot of one finished trace.
type Data struct {
	TraceID  string     `json:"traceId"`
	Remote   string     `json:"remoteParent,omitempty"`
	StartUTC time.Time  `json:"start"`
	Micros   int64      `json:"micros"`
	Root     string     `json:"root,omitempty"`
	Spans    []SpanData `json:"spans"`
	Dropped  int        `json:"droppedSpans,omitempty"`
}

// Finish snapshots the trace: open spans (including the root) are closed at
// now and every span is rendered JSON-ready, in start order. The trace should
// not be used after Finish.
func (t *Trace) Finish() Data {
	if t == nil {
		return Data{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	d := Data{
		TraceID:  t.id.String(),
		StartUTC: t.start.UTC(),
		Micros:   now.Sub(t.start).Microseconds(),
		Dropped:  t.dropped,
		Spans:    make([]SpanData, 0, len(t.spans)),
	}
	if !t.remote.IsZero() {
		d.Remote = t.remote.String()
	}
	if t.root != nil {
		d.Root = t.root.id.String()
	}
	for _, s := range t.spans {
		end := s.end
		if end.IsZero() {
			end = now
		}
		sd := SpanData{
			ID:       s.id.String(),
			Name:     s.name,
			StartUTC: s.start.UTC(),
			Micros:   end.Sub(s.start).Microseconds(),
		}
		if !s.parent.IsZero() {
			sd.Parent = s.parent.String()
		}
		if len(s.attrs) > 0 {
			sd.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				sd.Attrs[a.Key] = a.Value
			}
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}
