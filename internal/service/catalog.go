// Package service is the serving layer around the xqgo engine: a shared
// document catalog, a compiled-plan cache, and a bounded request executor
// with admission control — the pieces that turned the paper's XQRL
// processor into the query engine of a message-transformation server. The
// package is wired to HTTP by NewHTTPHandler and run as a daemon by
// cmd/xqd.
package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"xqgo"
	"xqgo/internal/structjoin"
)

// CatalogEntry is one registered document: the parsed tree plus accounting
// and a lazily built, shared structural-join name index.
type CatalogEntry struct {
	Name         string
	Doc          *xqgo.Document
	Bytes        int64 // size of the XML source text
	Nodes        int   // stored nodes (all kinds)
	RegisteredAt time.Time

	indexOnce  sync.Once
	index      *structjoin.Index
	indexBuilt chan struct{} // closed once index is available
}

func newEntry(name string, doc *xqgo.Document, bytes int64) *CatalogEntry {
	return &CatalogEntry{
		Name:         name,
		Doc:          doc,
		Bytes:        bytes,
		Nodes:        doc.NumNodes(),
		RegisteredAt: time.Now(),
		indexBuilt:   make(chan struct{}),
	}
}

// Index returns the structural-join name index for the document, building
// it on first use. The build happens at most once per catalog entry; every
// request thereafter shares the same index (seeded into each request's
// evaluation context), instead of each execution lazily building its own.
func (e *CatalogEntry) Index() *structjoin.Index {
	e.indexOnce.Do(func() {
		e.index = structjoin.BuildIndex(e.Doc.Store())
		close(e.indexBuilt)
	})
	return e.index
}

// builtIndex returns the shared index only if it has already been built —
// used to seed secondary documents into a request context without forcing
// eager index construction for documents the query may never touch.
func (e *CatalogEntry) builtIndex() (*structjoin.Index, bool) {
	select {
	case <-e.indexBuilt:
		return e.index, true
	default:
		return nil, false
	}
}

// DocInfo is the externally visible summary of a catalog entry.
type DocInfo struct {
	Name         string    `json:"name"`
	Bytes        int64     `json:"bytes"`
	Nodes        int       `json:"nodes"`
	RegisteredAt time.Time `json:"registeredAt"`
}

func (e *CatalogEntry) info() DocInfo {
	return DocInfo{Name: e.Name, Bytes: e.Bytes, Nodes: e.Nodes, RegisteredAt: e.RegisteredAt}
}

// Catalog is a thread-safe registry of named documents and collections
// shared by all requests. Registration parses the XML once; eviction drops
// the tree (and its index) for the garbage collector.
type Catalog struct {
	mu          sync.RWMutex
	docs        map[string]*CatalogEntry
	collections map[string][]string // collection name -> member document names
	totalBytes  int64
	totalNodes  int64
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		docs:        make(map[string]*CatalogEntry),
		collections: make(map[string][]string),
	}
}

// countingReader tracks how many bytes the parser consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Register parses r and stores the document under name, replacing any
// previous document with that name.
func (c *Catalog) Register(name string, r io.Reader, po xqgo.ParseOptions) (*CatalogEntry, error) {
	cr := &countingReader{r: r}
	doc, err := xqgo.ParseWith(cr, name, po)
	if err != nil {
		return nil, err
	}
	return c.RegisterParsed(name, doc, cr.n), nil
}

// RegisterParsed stores an already parsed document under name. srcBytes is
// the size of the source text (0 if unknown).
func (c *Catalog) RegisterParsed(name string, doc *xqgo.Document, srcBytes int64) *CatalogEntry {
	e := newEntry(name, doc, srcBytes)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.docs[name]; ok {
		c.totalBytes -= old.Bytes
		c.totalNodes -= int64(old.Nodes)
	}
	c.docs[name] = e
	c.totalBytes += e.Bytes
	c.totalNodes += int64(e.Nodes)
	return e
}

// Get looks up a document by name.
func (c *Catalog) Get(name string) (*CatalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.docs[name]
	return e, ok
}

// Evict removes a document; it reports whether the name was registered.
// In-flight requests that already resolved the entry keep their reference
// until they finish (no use-after-free hazard: the tree is immutable).
func (c *Catalog) Evict(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.docs[name]
	if !ok {
		return false
	}
	delete(c.docs, name)
	c.totalBytes -= e.Bytes
	c.totalNodes -= int64(e.Nodes)
	return true
}

// RegisterCollection names a list of catalog documents; queries see it via
// fn:collection(name). Members are resolved per request, so later
// re-registration of a member document is picked up.
func (c *Catalog) RegisterCollection(name string, members []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range members {
		if _, ok := c.docs[m]; !ok {
			return fmt.Errorf("collection %q: document %q not registered", name, m)
		}
	}
	c.collections[name] = append([]string(nil), members...)
	return nil
}

// Collection resolves a named collection to its current member entries.
func (c *Catalog) Collection(name string) ([]*CatalogEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	members, ok := c.collections[name]
	if !ok {
		return nil, false
	}
	out := make([]*CatalogEntry, 0, len(members))
	for _, m := range members {
		if e, ok := c.docs[m]; ok {
			out = append(out, e)
		}
	}
	return out, true
}

// collectionsAll resolves every named collection to its current members.
func (c *Catalog) collectionsAll() map[string][]*CatalogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.collections) == 0 {
		return nil
	}
	out := make(map[string][]*CatalogEntry, len(c.collections))
	for name, members := range c.collections {
		list := make([]*CatalogEntry, 0, len(members))
		for _, m := range members {
			if e, ok := c.docs[m]; ok {
				list = append(list, e)
			}
		}
		out[name] = list
	}
	return out
}

// List returns summaries of all registered documents, sorted by name.
func (c *Catalog) List() []DocInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DocInfo, 0, len(c.docs))
	for _, e := range c.docs {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot returns the per-request view: every entry plus the collection
// table, taken under one lock so a request sees a consistent catalog.
func (c *Catalog) snapshot() []*CatalogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*CatalogEntry, 0, len(c.docs))
	for _, e := range c.docs {
		out = append(out, e)
	}
	return out
}

// Totals returns the aggregate document count, source bytes and node count.
func (c *Catalog) Totals() (docs int, bytes int64, nodes int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs), c.totalBytes, c.totalNodes
}
