package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xqgo"
)

const bibXML = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title><price>129.95</price></book>
</bib>`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	if _, err := s.RegisterDocument("bib", strings.NewReader(bibXML)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCatalogAccounting(t *testing.T) {
	c := NewCatalog()
	e, err := c.Register("bib", strings.NewReader(bibXML), xqgo.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bytes != int64(len(bibXML)) {
		t.Errorf("Bytes = %d, want %d", e.Bytes, len(bibXML))
	}
	if e.Nodes == 0 {
		t.Error("Nodes = 0")
	}
	docs, bytes, nodes := c.Totals()
	if docs != 1 || bytes != e.Bytes || nodes != int64(e.Nodes) {
		t.Errorf("Totals = (%d,%d,%d), want (1,%d,%d)", docs, bytes, nodes, e.Bytes, e.Nodes)
	}

	// Re-registering replaces, not double-counts.
	if _, err := c.Register("bib", strings.NewReader(bibXML), xqgo.ParseOptions{}); err != nil {
		t.Fatal(err)
	}
	if docs, _, _ := c.Totals(); docs != 1 {
		t.Errorf("docs after re-register = %d", docs)
	}

	if !c.Evict("bib") {
		t.Error("Evict returned false for registered doc")
	}
	if c.Evict("bib") {
		t.Error("Evict returned true for missing doc")
	}
	if docs, bytes, nodes := c.Totals(); docs != 0 || bytes != 0 || nodes != 0 {
		t.Errorf("Totals after evict = (%d,%d,%d)", docs, bytes, nodes)
	}
}

func TestCatalogSharedIndex(t *testing.T) {
	c := NewCatalog()
	e, err := c.Register("bib", strings.NewReader(bibXML), xqgo.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.builtIndex(); ok {
		t.Fatal("index reported built before first use")
	}
	// Concurrent first access builds exactly one shared index.
	const n = 16
	got := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); got[i] = e.Index() }(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different index instance", i)
		}
	}
	if idx, ok := e.builtIndex(); !ok || idx == nil {
		t.Error("builtIndex not visible after Index()")
	}
}

func TestPlanCacheLRUAndCounters(t *testing.T) {
	p := NewPlanCache(2)
	for i, src := range []string{"1+1", "2+2", "1+1", "3+3", "2+2"} {
		if _, _, err := p.Get(src, nil); err != nil {
			t.Fatalf("Get %d (%q): %v", i, src, err)
		}
	}
	st := p.Stats()
	// 1+1 miss, 2+2 miss, 1+1 hit, 3+3 miss (evicts 2+2), 2+2 miss again.
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 || st.Size != 2 {
		t.Errorf("stats = %+v, want hits=1 misses=4 evictions=2 size=2", st)
	}

	// Different options are different keys.
	if _, cached, _ := p.Get("2+2", &xqgo.Options{NoOptimize: true}); cached {
		t.Error("options change should miss")
	}

	// Compile errors are not cached.
	if _, _, err := p.Get("1 +", nil); err == nil {
		t.Fatal("want compile error")
	}
	if _, _, err := p.Get("1 +", nil); err == nil {
		t.Fatal("want compile error on second lookup too")
	}
	if s := p.Stats(); s.Size != 2 {
		t.Errorf("failed compilations entered the cache: size=%d", s.Size)
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	p := NewPlanCache(8)
	const n = 50
	var wg sync.WaitGroup
	plans := make([]*xqgo.Query, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, _, err := p.Get("for $b in /bib/book return $b/title", nil)
			if err != nil {
				t.Error(err)
			}
			plans[i] = q
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan instance", i)
		}
	}
	if st := p.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", st.Misses)
	}
}

func TestExecutorAdmissionControl(t *testing.T) {
	e := NewExecutor(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup

	// Occupy the single worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Do(context.Background(), func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started

	// Fill the single queue slot.
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- e.Do(context.Background(), func() error { return nil })
	}()
	// Wait until the queued request is visibly waiting.
	deadline := time.Now().Add(2 * time.Second)
	for e.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Now the pool is saturated: worker busy + queue full.
	if err := e.Do(context.Background(), func() error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Errorf("saturated Do = %v, want ErrSaturated", err)
	}

	// A queued request whose deadline expires is abandoned, not executed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// This one is rejected outright (queue still full).
	if err := e.Do(ctx, func() error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Errorf("Do = %v, want ErrSaturated", err)
	}

	close(release)
	wg.Wait()
	if err := <-queued; err != nil {
		t.Errorf("queued request failed: %v", err)
	}
	if e.InFlight() != 0 || e.Queued() != 0 {
		t.Errorf("pool not drained: inflight=%d queued=%d", e.InFlight(), e.Queued())
	}
}

func TestExecutorDeadlineWhileQueued(t *testing.T) {
	e := NewExecutor(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = e.Do(context.Background(), func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	err := e.Do(ctx, func() error { ran.Store(true); return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Do = %v, want DeadlineExceeded", err)
	}
	if ran.Load() {
		t.Error("expired request was executed")
	}
}

func TestExecutorWorkerLease(t *testing.T) {
	e := NewExecutor(4, 2)

	// Idle pool: leases grant up to every worker slot, accounted in Leased.
	if got := e.TryLease(10); got != 4 {
		t.Fatalf("idle TryLease(10) = %d, want 4", got)
	}
	if e.Leased() != 4 {
		t.Fatalf("Leased = %d, want 4", e.Leased())
	}
	if got := e.TryLease(1); got != 0 {
		t.Fatalf("exhausted TryLease = %d, want 0", got)
	}
	e.Release(4)
	if e.Leased() != 0 {
		t.Fatalf("Leased after release = %d, want 0", e.Leased())
	}

	// Requests in flight shrink what a lease can take.
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Do(context.Background(), func() error {
				started <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	<-started
	<-started
	if got := e.TryLease(10); got != 2 {
		t.Errorf("TryLease with 2 in flight = %d, want 2", got)
	} else {
		e.Release(got)
	}
	close(release)
	wg.Wait()
}

func TestExecutorLeaseRefusedWhileQueued(t *testing.T) {
	e := NewExecutor(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Do(context.Background(), func() error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Do(context.Background(), func() error { return nil })
	}()
	deadline := time.Now().Add(2 * time.Second)
	for e.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// With a request waiting, morsel leases get nothing — queued work wins.
	if got := e.TryLease(1); got != 0 {
		t.Errorf("TryLease while queued = %d, want 0", got)
	}
	close(release)
	wg.Wait()
}

func TestServiceQueryWorkers(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueryWorkers: 4})
	res, err := s.Query(context.Background(), Request{
		Query:      "count(//*)",
		ContextDoc: "bib",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.XML != "10" {
		t.Errorf("result = %q, want 10", res.XML)
	}
	st := s.Stats()
	if st.QueryWorkers != 4 {
		t.Errorf("stats queryWorkers = %d, want 4", st.QueryWorkers)
	}
	if st.LeasedWorkers != 0 {
		t.Errorf("stats leasedWorkers = %d after drain, want 0", st.LeasedWorkers)
	}

	// Negative QueryWorkers resolves to GOMAXPROCS.
	s2 := New(Config{QueryWorkers: -1})
	if s2.cfg.QueryWorkers < 1 {
		t.Errorf("QueryWorkers -1 resolved to %d, want >= 1", s2.cfg.QueryWorkers)
	}
}

func TestServiceQueryAndVars(t *testing.T) {
	s := newTestService(t, Config{})
	res, err := s.Query(context.Background(), Request{
		Query:      "count(/bib/book)",
		ContextDoc: "bib",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.XML != "3" {
		t.Errorf("result = %q, want 3", res.XML)
	}
	if res.Cached {
		t.Error("first request reported cached")
	}
	res, err = s.Query(context.Background(), Request{Query: "count(/bib/book)", ContextDoc: "bib"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("second request not cached")
	}

	// fn:doc by catalog name, plus typed slice variable binding.
	res, err = s.Query(context.Background(), Request{
		Query: `declare variable $years external;
			count(doc("bib")/bib/book[@year = $years])`,
		Vars: map[string]any{"years": []int64{1994, 1999}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.XML != "2" {
		t.Errorf("var-bound result = %q, want 2", res.XML)
	}

	// Unknown context document.
	if _, err := s.Query(context.Background(), Request{Query: "1", ContextDoc: "nope"}); !errors.Is(err, ErrUnknownDocument) {
		t.Errorf("err = %v, want ErrUnknownDocument", err)
	}

	// Compile errors are BadRequestError.
	var bad *BadRequestError
	if _, err := s.Query(context.Background(), Request{Query: "1 +"}); !errors.As(err, &bad) {
		t.Errorf("err = %v, want BadRequestError", err)
	}
}

func TestServiceCollections(t *testing.T) {
	s := newTestService(t, Config{})
	if _, err := s.RegisterDocument("bib2", strings.NewReader(bibXML)); err != nil {
		t.Fatal(err)
	}
	if err := s.Catalog.RegisterCollection("all", []string{"bib", "bib2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Catalog.RegisterCollection("broken", []string{"missing"}); err == nil {
		t.Error("collection with unregistered member should fail")
	}
	res, err := s.Query(context.Background(), Request{Query: `count(collection("all")//book)`})
	if err != nil {
		t.Fatal(err)
	}
	if res.XML != "6" {
		t.Errorf("collection count = %q, want 6", res.XML)
	}
}

func TestServiceDeadline(t *testing.T) {
	s := newTestService(t, Config{})
	// A query that would run for a very long time without the interrupt
	// hook: the deadline must abort it mid-evaluation.
	start := time.Now()
	_, err := s.Query(context.Background(), Request{
		Query:   "count(for $i in 1 to 2000000000 return $i)",
		Timeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline enforcement took %v", d)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", st.Timeouts)
	}
}

func TestServiceResultSizeLimit(t *testing.T) {
	s := newTestService(t, Config{})
	_, err := s.Query(context.Background(), Request{
		Query:          `for $i in 1 to 100000 return <x>{$i}</x>`,
		MaxResultBytes: 1024,
	})
	if !errors.Is(err, ErrResultTooLarge) {
		t.Errorf("err = %v, want ErrResultTooLarge", err)
	}
	// Unlimited override works.
	if _, err := s.Query(context.Background(), Request{
		Query:          `string-length(string-join(for $i in 1 to 100 return "x", ""))`,
		MaxResultBytes: -1,
	}); err != nil {
		t.Errorf("unlimited request failed: %v", err)
	}
}

func TestServiceStructuralJoinSharing(t *testing.T) {
	s := New(Config{Options: xqgo.Options{Strategy: xqgo.ForceBinaryJoin}})
	if _, err := s.RegisterDocument("bib", strings.NewReader(bibXML)); err != nil {
		t.Fatal(err)
	}
	const q = "count(/bib//book//title)"
	want := ""
	for i := 0; i < 8; i++ {
		res, err := s.Query(context.Background(), Request{Query: q, ContextDoc: "bib"})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.XML
			continue
		}
		if res.XML != want {
			t.Fatalf("request %d: %q != %q", i, res.XML, want)
		}
	}
	if want != "3" {
		t.Errorf("join count = %q, want 3", want)
	}
	e, _ := s.Catalog.Get("bib")
	if _, ok := e.builtIndex(); !ok {
		t.Error("shared index was never built despite ForceBinaryJoin")
	}
}

func TestStatsPercentiles(t *testing.T) {
	st := newStatsCore()
	for i := 1; i <= 100; i++ {
		st.observe(outcomeOK, time.Duration(i)*time.Millisecond)
	}
	p50, p90, p99, p999 := st.percentiles()
	// Nearest-rank over 1..100ms is exact: ceil(p*100) milliseconds.
	if p50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", p50)
	}
	if p90 != 90*time.Millisecond {
		t.Errorf("p90 = %v, want 90ms", p90)
	}
	if p99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", p99)
	}
	if p999 != 100*time.Millisecond {
		t.Errorf("p99.9 = %v, want 100ms", p999)
	}
}
