package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"xqgo"
)

// latWindow is the sliding window of recent request latencies kept for
// percentile estimation.
const latWindow = 2048

// latBuckets are the cumulative-histogram upper bounds (seconds) used by the
// Prometheus exposition: roughly logarithmic from 500µs to 10s, the range a
// query service actually spans. Observations above the last bound land in
// the implicit +Inf bucket.
var latBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// engineTotals aggregates the per-request engine profile counters across the
// service lifetime (mu-guarded; written once per request, not per item).
type engineTotals struct {
	XMLTokens         int64 `json:"xmlTokens"`
	NodesMaterialized int64 `json:"nodesMaterialized"`
	MemoHits          int64 `json:"memoHits"`
	MemoMisses        int64 `json:"memoMisses"`
	IndexHits         int64 `json:"indexHits"`
	IndexBuilds       int64 `json:"indexBuilds"`
	StructJoins       int64 `json:"structJoins"`
	TwigJoins         int64 `json:"twigJoins"`
	InterruptPolls    int64 `json:"interruptPolls"`
	// Plan choices resolved by join-eligible path operators, by winner.
	PlanNavigation int64 `json:"planNavigation"`
	PlanBinaryJoin int64 `json:"planBinaryJoin"`
	PlanTwigJoin   int64 `json:"planTwigJoin"`
	// Streaming-ingestion totals (lazy parse with path projection).
	DocNodesBuilt       int64 `json:"docNodesBuilt"`
	NodesSkipped        int64 `json:"nodesSkipped"`
	BytesParsedOnDemand int64 `json:"bytesParsedOnDemand"`
	// Event-driven streaming-evaluator totals (streamexec windows).
	StreamWindows   int64 `json:"streamWindows"`
	StreamResults   int64 `json:"streamResults"`
	StreamFallbacks int64 `json:"streamFallbacks"`
	// StreamBufferPeakBytes is max-merged across requests, not summed: it is
	// the largest window buffer any execution ever held.
	StreamBufferPeakBytes int64 `json:"streamBufferPeakBytes"`
}

// latSeries is one sliding latency window: the global one plus one per
// route (query vs. subscribe). Guarded by the owning statsCore's mutex.
type latSeries struct {
	lat []time.Duration
	pos int
}

func (l *latSeries) add(d time.Duration) {
	if len(l.lat) < latWindow {
		l.lat = append(l.lat, d)
		return
	}
	l.lat[l.pos] = d
	l.pos = (l.pos + 1) % latWindow
}

// exemplar links one histogram bucket to a recent trace that landed in it
// (OpenMetrics exemplar exposition: a trace id, the observed value, and when).
type exemplar struct {
	traceID string
	value   float64 // seconds
	ts      time.Time
}

// statsCore accumulates request outcomes. Latencies cover the whole
// service-level request — queue wait included — since that is what a
// client observes. Alongside the percentile window it maintains fixed
// histogram buckets (non-cumulative internally; cumulated at exposition
// time) so /metrics scrapes never sort.
type statsCore struct {
	mu       sync.Mutex
	served   uint64 // successful queries
	errors   uint64 // compile/eval/binding failures
	rejected uint64 // admission-control rejections
	timeouts uint64 // deadline exceeded / canceled
	lat      latSeries
	routes   map[string]*latSeries // per-route windows ("query", "subscribe")
	start    time.Time

	hist     []uint64   // per-bucket counts; len(latBuckets)+1, last = +Inf
	exes     []exemplar // most recent traced observation per bucket
	histSum  time.Duration
	histCnt  uint64
	engine   engineTotals
	profiled uint64 // requests that carried a profile

	// budgetTrips counts executions whose memory budget tripped, per route
	// class ("query", "subscribe").
	budgetTrips map[string]uint64
}

// noteBudgetTrip records one execution that exceeded its memory budget.
func (s *statsCore) noteBudgetTrip(route string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budgetTrips == nil {
		s.budgetTrips = make(map[string]uint64)
	}
	s.budgetTrips[route]++
}

// budgetTripTotals snapshots the per-route budget-trip counters.
func (s *statsCore) budgetTripTotals() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.budgetTrips))
	for k, v := range s.budgetTrips {
		out[k] = v
	}
	return out
}

func newStatsCore() *statsCore {
	return &statsCore{
		routes: make(map[string]*latSeries),
		hist:   make([]uint64, len(latBuckets)+1),
		exes:   make([]exemplar, len(latBuckets)+1),
		start:  time.Now(),
	}
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeRejected
	outcomeTimeout
)

func (o outcome) String() string {
	switch o {
	case outcomeOK:
		return "ok"
	case outcomeError:
		return "error"
	case outcomeRejected:
		return "rejected"
	default:
		return "timeout"
	}
}

// histBucket returns the index of the histogram bucket for a latency: the
// first bucket whose upper bound is not exceeded, or the +Inf slot.
func histBucket(d time.Duration) int {
	secs := d.Seconds()
	for i, ub := range latBuckets {
		if secs <= ub {
			return i
		}
	}
	return len(latBuckets)
}

func (s *statsCore) observe(o outcome, d time.Duration) {
	s.observeTraced(o, d, "")
}

// observeTraced is observe with a trace-id exemplar: the request's latency
// bucket remembers the most recent traced request that landed in it, giving
// /metrics scrapes (OpenMetrics format) a direct link from a latency spike
// to a reconstructable trace.
func (s *statsCore) observeTraced(o outcome, d time.Duration, traceID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch o {
	case outcomeOK:
		s.served++
	case outcomeError:
		s.errors++
	case outcomeRejected:
		s.rejected++
		return // rejections are instantaneous; keep them out of latency
	case outcomeTimeout:
		s.timeouts++
	}
	s.lat.add(d)
	s.routeSeries("query").add(d)
	b := histBucket(d)
	s.hist[b]++
	if traceID != "" {
		s.exes[b] = exemplar{traceID: traceID, value: d.Seconds(), ts: time.Now()}
	}
	s.histSum += d
	s.histCnt++
}

// observeFeed records one subscriber feed's total duration under the
// "subscribe" route window. Feeds stay out of the global request histogram —
// they are long-lived by design and would drown the query latency signal.
func (s *statsCore) observeFeed(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routeSeries("subscribe").add(d)
}

// routeSeries returns (creating on first use) the named route's window.
// Callers hold s.mu.
func (s *statsCore) routeSeries(route string) *latSeries {
	ls := s.routes[route]
	if ls == nil {
		ls = &latSeries{}
		s.routes[route] = ls
	}
	return ls
}

// exemplars snapshots the per-bucket exemplar table for OpenMetrics output.
func (s *statsCore) exemplars() []exemplar {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]exemplar(nil), s.exes...)
}

// addEngine folds one request's profile counters into the lifetime totals.
func (s *statsCore) addEngine(c xqgo.EngineCounters) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiled++
	s.engine.XMLTokens += c.XMLTokens
	s.engine.NodesMaterialized += c.NodesMaterialized
	s.engine.MemoHits += c.MemoHits
	s.engine.MemoMisses += c.MemoMisses
	s.engine.IndexHits += c.IndexHits
	s.engine.IndexBuilds += c.IndexBuilds
	s.engine.StructJoins += c.StructJoins
	s.engine.TwigJoins += c.TwigJoins
	s.engine.InterruptPolls += c.InterruptPolls
	s.engine.PlanNavigation += c.PlanNavigation
	s.engine.PlanBinaryJoin += c.PlanBinaryJoin
	s.engine.PlanTwigJoin += c.PlanTwigJoin
	s.engine.DocNodesBuilt += c.DocNodesBuilt
	s.engine.NodesSkipped += c.NodesSkipped
	s.engine.BytesParsedOnDemand += c.BytesParsedOnDemand
	s.engine.StreamWindows += c.StreamWindows
	s.engine.StreamResults += c.StreamResults
	s.engine.StreamFallbacks += c.StreamFallbacks
	if c.StreamBufferPeakBytes > s.engine.StreamBufferPeakBytes {
		s.engine.StreamBufferPeakBytes = c.StreamBufferPeakBytes
	}
}

// histogram snapshots the bucket counts (non-cumulative), sum and count.
func (s *statsCore) histogram() (buckets []uint64, sum time.Duration, count uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.hist...), s.histSum, s.histCnt
}

// percentiles returns p50, p90, p99 and p99.9 over the global window (0 when
// empty), using the nearest-rank definition: the smallest value with at least
// ceil(p*n) observations at or below it. (The previous int(p*(n-1))
// truncation biased every percentile toward p0 — e.g. p99 over 100 samples
// picked the 98th-smallest instead of the 99th.)
func (s *statsCore) percentiles() (p50, p90, p99, p999 time.Duration) {
	s.mu.Lock()
	buf := append([]time.Duration(nil), s.lat.lat...)
	s.mu.Unlock()
	return rankPercentiles(buf)
}

// routePercentiles snapshots one route window's percentiles plus its sample
// count (count 0 means the route has seen no traffic).
func (s *statsCore) routePercentiles(route string) (p50, p90, p99, p999 time.Duration, count int) {
	s.mu.Lock()
	var buf []time.Duration
	if ls := s.routes[route]; ls != nil {
		buf = append(buf, ls.lat...)
	}
	s.mu.Unlock()
	p50, p90, p99, p999 = rankPercentiles(buf)
	return p50, p90, p99, p999, len(buf)
}

func rankPercentiles(buf []time.Duration) (p50, p90, p99, p999 time.Duration) {
	if len(buf) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(p float64) int {
		i := int(math.Ceil(p*float64(len(buf)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(buf) {
			i = len(buf) - 1
		}
		return i
	}
	return buf[idx(0.50)], buf[idx(0.90)], buf[idx(0.99)], buf[idx(0.999)]
}

// DocTotals aggregates the catalog accounting.
type DocTotals struct {
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
	Nodes int64 `json:"nodes"`
}

// Snapshot is the service's stats surface: a plain struct that marshals to
// expvar-style JSON on GET /stats.
type Snapshot struct {
	Served     uint64 `json:"served"`
	Errors     uint64 `json:"errors"`
	Rejected   uint64 `json:"rejected"`
	Timeouts   uint64 `json:"timeouts"`
	InFlight   int64  `json:"inFlight"`
	Queued     int64  `json:"queued"`
	P50Micros  int64  `json:"p50Micros"`
	P90Micros  int64  `json:"p90Micros"`
	P99Micros  int64  `json:"p99Micros"`
	P999Micros int64  `json:"p999Micros"`
	// Routes breaks latency down per route class: "query" (one-shot request
	// latency, queue wait included) and "subscribe" (whole-feed lifetimes).
	Routes      map[string]RouteLatency `json:"routes"`
	PlanCache   PlanCacheStats          `json:"planCache"`
	Documents   DocTotals               `json:"documents"`
	UptimeSecs  float64                 `json:"uptimeSecs"`
	WorkerSlots int                     `json:"workerSlots"`
	// LeasedWorkers is the number of worker slots currently on loan to
	// morsel workers of running queries; QueryWorkers is the configured
	// per-query parallelism target (0 = intra-query parallelism off).
	LeasedWorkers int64        `json:"leasedWorkers"`
	QueryWorkers  int          `json:"queryWorkers"`
	Engine        engineTotals `json:"engine"`
	SlowQueries   uint64       `json:"slowQueries"`
	// Subscriptions aggregates the pub/sub layer (POST /subscribe).
	Subscriptions SubscriptionTotals `json:"subscriptions"`
	// Governance reports the resource governor: process soft cap, live
	// tracked bytes, load-shed rejections, and per-route budget trips.
	Governance GovernanceTotals `json:"governance"`
}

// GovernanceTotals is the resource-governance accounting surface.
type GovernanceTotals struct {
	// ProcessSoftLimitBytes is the configured process soft cap (0 = off).
	ProcessSoftLimitBytes int64 `json:"processSoftLimitBytes"`
	// MaxQueryBytes is the configured default per-query budget (0 = off).
	MaxQueryBytes int64 `json:"maxQueryBytes"`
	// GovernedBytes is the live tracked-byte total across running executions.
	GovernedBytes int64 `json:"governedBytes"`
	// LoadShed counts admissions rejected because the governor was near the
	// soft cap.
	LoadShed int64 `json:"loadShed"`
	// BudgetTrips counts executions that exceeded their memory budget, per
	// route class ("query", "subscribe").
	BudgetTrips map[string]uint64 `json:"budgetTrips"`
}

// RouteLatency is one route class's sliding-window percentile breakdown.
type RouteLatency struct {
	Count      int   `json:"count"`
	P50Micros  int64 `json:"p50Micros"`
	P90Micros  int64 `json:"p90Micros"`
	P99Micros  int64 `json:"p99Micros"`
	P999Micros int64 `json:"p999Micros"`
}

// SubscriptionTotals is the pub/sub layer's lifetime accounting.
type SubscriptionTotals struct {
	// ActiveFeeds is the number of subscriber connections streaming now.
	ActiveFeeds int64 `json:"activeFeeds"`
	// Feeds counts subscriber connections admitted since start.
	Feeds int64 `json:"feeds"`
	// Registered counts subscriptions registered across all feeds.
	Registered int64 `json:"registered"`
	// Results counts result events delivered to subscribers.
	Results int64 `json:"results"`
	// Fallbacks counts store-required subscriptions (evaluated at feed end).
	Fallbacks int64 `json:"fallbacks"`
	// PeakBufferBytes is the largest window buffer any subscription held.
	PeakBufferBytes int64 `json:"peakBufferBytes"`
}

// Stats snapshots every counter in the service.
func (s *Service) Stats() Snapshot {
	st := s.stats
	st.mu.Lock()
	served, errs, rej, to := st.served, st.errors, st.rejected, st.timeouts
	start := st.start
	engine := st.engine
	st.mu.Unlock()
	p50, p90, p99, p999 := st.percentiles()
	routes := make(map[string]RouteLatency, 2)
	for _, route := range []string{"query", "subscribe"} {
		r50, r90, r99, r999, n := st.routePercentiles(route)
		routes[route] = RouteLatency{
			Count:      n,
			P50Micros:  r50.Microseconds(),
			P90Micros:  r90.Microseconds(),
			P99Micros:  r99.Microseconds(),
			P999Micros: r999.Microseconds(),
		}
	}
	docs, bytes, nodes := s.Catalog.Totals()
	_, slowTotal := s.slow.snapshot()
	return Snapshot{
		Served:        served,
		Errors:        errs,
		Rejected:      rej,
		Timeouts:      to,
		InFlight:      s.exec.InFlight(),
		Queued:        s.exec.Queued(),
		P50Micros:     p50.Microseconds(),
		P90Micros:     p90.Microseconds(),
		P99Micros:     p99.Microseconds(),
		P999Micros:    p999.Microseconds(),
		Routes:        routes,
		PlanCache:     s.plans.Stats(),
		Documents:     DocTotals{Count: docs, Bytes: bytes, Nodes: nodes},
		UptimeSecs:    time.Since(start).Seconds(),
		WorkerSlots:   s.exec.Workers(),
		LeasedWorkers: s.exec.Leased(),
		QueryWorkers:  s.cfg.QueryWorkers,
		Engine:        engine,
		SlowQueries:   slowTotal,
		Subscriptions: SubscriptionTotals{
			ActiveFeeds:     s.subs.active.Load(),
			Feeds:           s.subs.feeds.Load(),
			Registered:      s.subs.registered.Load(),
			Results:         s.subs.results.Load(),
			Fallbacks:       s.subs.fallbacks.Load(),
			PeakBufferBytes: s.subs.peakBuffer.Load(),
		},
		Governance: GovernanceTotals{
			ProcessSoftLimitBytes: s.gov.SoftLimit(),
			MaxQueryBytes:         s.cfg.MaxQueryBytes,
			GovernedBytes:         s.gov.InUse(),
			LoadShed:              s.gov.Sheds(),
			BudgetTrips:           st.budgetTripTotals(),
		},
	}
}
