package service

import (
	"sort"
	"sync"
	"time"
)

// latWindow is the sliding window of recent request latencies kept for
// percentile estimation.
const latWindow = 2048

// statsCore accumulates request outcomes. Latencies cover the whole
// service-level request — queue wait included — since that is what a
// client observes.
type statsCore struct {
	mu       sync.Mutex
	served   uint64 // successful queries
	errors   uint64 // compile/eval/binding failures
	rejected uint64 // admission-control rejections
	timeouts uint64 // deadline exceeded / canceled
	lat      []time.Duration
	pos      int
	start    time.Time
}

func newStatsCore() *statsCore {
	return &statsCore{lat: make([]time.Duration, 0, latWindow), start: time.Now()}
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeRejected
	outcomeTimeout
)

func (s *statsCore) observe(o outcome, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch o {
	case outcomeOK:
		s.served++
	case outcomeError:
		s.errors++
	case outcomeRejected:
		s.rejected++
		return // rejections are instantaneous; keep them out of latency
	case outcomeTimeout:
		s.timeouts++
	}
	if len(s.lat) < latWindow {
		s.lat = append(s.lat, d)
	} else {
		s.lat[s.pos] = d
		s.pos = (s.pos + 1) % latWindow
	}
}

// percentiles returns p50 and p99 over the window (0 when empty).
func (s *statsCore) percentiles() (p50, p99 time.Duration) {
	s.mu.Lock()
	buf := append([]time.Duration(nil), s.lat...)
	s.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(p float64) int {
		i := int(p * float64(len(buf)-1))
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

// DocTotals aggregates the catalog accounting.
type DocTotals struct {
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
	Nodes int64 `json:"nodes"`
}

// Snapshot is the service's stats surface: a plain struct that marshals to
// expvar-style JSON on GET /stats.
type Snapshot struct {
	Served      uint64         `json:"served"`
	Errors      uint64         `json:"errors"`
	Rejected    uint64         `json:"rejected"`
	Timeouts    uint64         `json:"timeouts"`
	InFlight    int64          `json:"inFlight"`
	Queued      int64          `json:"queued"`
	P50Micros   int64          `json:"p50Micros"`
	P99Micros   int64          `json:"p99Micros"`
	PlanCache   PlanCacheStats `json:"planCache"`
	Documents   DocTotals      `json:"documents"`
	UptimeSecs  float64        `json:"uptimeSecs"`
	WorkerSlots int            `json:"workerSlots"`
}

// Stats snapshots every counter in the service.
func (s *Service) Stats() Snapshot {
	st := s.stats
	st.mu.Lock()
	served, errs, rej, to := st.served, st.errors, st.rejected, st.timeouts
	start := st.start
	st.mu.Unlock()
	p50, p99 := st.percentiles()
	docs, bytes, nodes := s.Catalog.Totals()
	return Snapshot{
		Served:      served,
		Errors:      errs,
		Rejected:    rej,
		Timeouts:    to,
		InFlight:    s.exec.InFlight(),
		Queued:      s.exec.Queued(),
		P50Micros:   p50.Microseconds(),
		P99Micros:   p99.Microseconds(),
		PlanCache:   s.plans.Stats(),
		Documents:   DocTotals{Count: docs, Bytes: bytes, Nodes: nodes},
		UptimeSecs:  time.Since(start).Seconds(),
		WorkerSlots: s.exec.Workers(),
	}
}
