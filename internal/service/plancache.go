package service

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"xqgo"
)

// PlanCache is an LRU cache of compiled queries keyed by (query text,
// Options fingerprint): hot queries skip parse + optimize + compile and go
// straight to execution, which is safe because a compiled *xqgo.Query is
// immutable and concurrency-safe. Concurrent first requests for the same
// key are collapsed into one compilation (single-flight); the waiters
// count as hits — they share the plan without compiling.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*planCall

	hits, misses, evictions uint64
}

type planEntry struct {
	key string
	q   *xqgo.Query
}

type planCall struct {
	done chan struct{}
	q    *xqgo.Query
	err  error
}

// NewPlanCache creates a cache holding at most capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*planCall),
	}
}

// Fingerprint canonicalizes the compile options and joins them with the
// query text into the cache key. DisableRules is order-insensitive.
func Fingerprint(src string, opts *xqgo.Options) string {
	var o xqgo.Options
	if opts != nil {
		o = *opts
	}
	rules := append([]string(nil), o.DisableRules...)
	sort.Strings(rules)
	return fmt.Sprintf("e%d|no%t|r%s|st%d|mm%t|pp%t\x00%s",
		o.Engine, o.NoOptimize, strings.Join(rules, ","),
		o.EffectiveStrategy(), o.MemoizeFunctions, o.Parallel, src)
}

// Get returns the compiled plan for (src, opts), compiling on a miss.
// cached reports whether the plan came from the cache (including waiting
// on another request's in-flight compilation). Failed compilations are not
// cached; every request for a bad query re-reports the compile error.
func (p *PlanCache) Get(src string, opts *xqgo.Options) (q *xqgo.Query, cached bool, err error) {
	key := Fingerprint(src, opts)

	p.mu.Lock()
	if el, ok := p.byKey[key]; ok {
		p.ll.MoveToFront(el)
		p.hits++
		q := el.Value.(*planEntry).q
		p.mu.Unlock()
		return q, true, nil
	}
	if call, ok := p.inflight[key]; ok {
		p.hits++
		p.mu.Unlock()
		<-call.done
		return call.q, true, call.err
	}
	call := &planCall{done: make(chan struct{})}
	p.inflight[key] = call
	p.misses++
	p.mu.Unlock()

	call.q, call.err = xqgo.Compile(src, opts)

	p.mu.Lock()
	delete(p.inflight, key)
	if call.err == nil {
		el := p.ll.PushFront(&planEntry{key: key, q: call.q})
		p.byKey[key] = el
		for p.ll.Len() > p.capacity {
			back := p.ll.Back()
			p.ll.Remove(back)
			delete(p.byKey, back.Value.(*planEntry).key)
			p.evictions++
		}
	}
	p.mu.Unlock()
	close(call.done)
	return call.q, false, call.err
}

// PlanCacheStats is a point-in-time view of the cache counters.
type PlanCacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRatio  float64 `json:"hitRatio"`
}

// Stats snapshots the counters.
func (p *PlanCache) Stats() PlanCacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PlanCacheStats{
		Size:      p.ll.Len(),
		Capacity:  p.capacity,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
