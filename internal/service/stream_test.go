package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServiceStreamedBody: a Request with a Body streams the XML input
// through the engine — it becomes the context item, resolves under
// request:body, and its ingestion counters land in /stats and /metrics.
func TestServiceStreamedBody(t *testing.T) {
	s := newTestService(t, Config{})

	var out strings.Builder
	if _, _, err := s.Execute(context.Background(), Request{
		Query: `/bib/book[@year = "1994"]/title`,
		Body:  strings.NewReader(bibXML),
	}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<title>TCP/IP Illustrated</title>" {
		t.Errorf("streamed result = %q", out.String())
	}

	// The streamed document also resolves under the well-known URI.
	out.Reset()
	if _, _, err := s.Execute(context.Background(), Request{
		Query: `count(doc("` + StreamBodyURI + `")//book)`,
		Body:  strings.NewReader(bibXML),
	}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "3" {
		t.Errorf("doc(%q) count = %q, want 3", StreamBodyURI, out.String())
	}

	// Ingestion counters reach the aggregated stats.
	st := s.Stats()
	if st.Engine.DocNodesBuilt == 0 {
		t.Error("stats report no doc nodes built after streamed ingestion")
	}
	if st.Engine.NodesSkipped == 0 {
		t.Error("stats report no skipped nodes despite a selective projected query")
	}
	if st.Engine.BytesParsedOnDemand == 0 {
		t.Error("stats report no bytes parsed on demand")
	}
}

// TestHTTPStreamedQuery: POST /query with an XML content type switches to
// streamed ingestion — the body is the input document, the query comes from
// the URL, and the result streams back as XML.
func TestHTTPStreamedQuery(t *testing.T) {
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)

	req := httptest.NewRequest("POST", "/query?query=/bib/book/title", strings.NewReader(bibXML))
	req.Header.Set("Content-Type", "application/xml")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /query (xml body) = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/xml") {
		t.Errorf("Content-Type = %q, want application/xml", ct)
	}
	if got := strings.Count(rec.Body.String(), "<title>"); got != 3 {
		t.Errorf("result has %d titles, want 3: %q", got, rec.Body.String())
	}

	// Missing ?query= is a 400, not a hung read of the body.
	req = httptest.NewRequest("POST", "/query", strings.NewReader(bibXML))
	req.Header.Set("Content-Type", "text/xml")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("POST /query without ?query= = %d, want 400", rec.Code)
	}

	// The ingestion counters show up in the Prometheus exposition.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	validatePromText(t, body)
	for _, name := range []string{
		"xqd_engine_doc_nodes_built_total",
		"xqd_engine_nodes_skipped_total",
		"xqd_engine_bytes_parsed_on_demand_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
