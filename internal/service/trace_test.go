package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"xqgo/internal/trace"
)

// The paper's running example (ICDE 2004 §2): a bounded-buffer streamable
// FLWOR that also fires optimizer rewrites — every span family the tracer
// knows shows up in one request.
const traceOrdersQuery = `for $line in /Order/OrderLine
where $line/SellersID eq "1"
return <lineItem>{fn:string($line/Item/ID)}</lineItem>`

func traceOrdersXML(lines int) string {
	var b strings.Builder
	b.WriteString("<Order>")
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "<OrderLine><SellersID>%d</SellersID><Item><ID>L%d</ID></Item></OrderLine>", i%3+1, i)
	}
	b.WriteString("</Order>")
	return b.String()
}

// spanTree indexes a trace.Data for structural assertions.
type spanTree struct {
	data    trace.Data
	byID    map[string]trace.SpanData
	byName  map[string][]trace.SpanData
	rootIDs []string
}

func newSpanTree(t *testing.T, d trace.Data) *spanTree {
	t.Helper()
	st := &spanTree{data: d, byID: map[string]trace.SpanData{}, byName: map[string][]trace.SpanData{}}
	for _, s := range d.Spans {
		if _, dup := st.byID[s.ID]; dup {
			t.Errorf("duplicate span id %s", s.ID)
		}
		st.byID[s.ID] = s
		st.byName[s.Name] = append(st.byName[s.Name], s)
	}
	// Well-formed tree: every parent is another retained span, the remote
	// parent, or absent; exactly one local root.
	for _, s := range d.Spans {
		switch {
		case s.Parent == "", s.Parent == d.Remote:
			st.rootIDs = append(st.rootIDs, s.ID)
		default:
			if _, ok := st.byID[s.Parent]; !ok {
				t.Errorf("span %s (%s): parent %s not in trace", s.ID, s.Name, s.Parent)
			}
		}
	}
	if len(st.rootIDs) != 1 {
		t.Errorf("trace has %d roots, want 1", len(st.rootIDs))
	}
	if d.Root != "" && len(st.rootIDs) == 1 && st.rootIDs[0] != d.Root {
		t.Errorf("root = %s, declared %s", st.rootIDs[0], d.Root)
	}
	return st
}

func (st *spanTree) one(t *testing.T, name string) trace.SpanData {
	t.Helper()
	spans := st.byName[name]
	if len(spans) == 0 {
		t.Fatalf("trace has no %q span (have %v)", name, names(st.data))
	}
	return spans[0]
}

func names(d trace.Data) []string {
	out := make([]string, len(d.Spans))
	for i, s := range d.Spans {
		out[i] = s.Name
	}
	return out
}

// TestSlowTraceReconstruction is the acceptance path end to end: a slow
// stream-mode request's /slow entry links a trace id whose GET /traces/{id}
// span tree reconstructs every stage offline — queue, plan, rewrite,
// projection, ingestion, per-operator rows with observed vs. estimated
// cardinality, and the streaming evaluator's live window spans.
func TestSlowTraceReconstruction(t *testing.T) {
	s := New(Config{SlowQueryThreshold: time.Nanosecond})
	h := NewHTTPHandler(s)

	req := httptest.NewRequest("POST",
		"/query?query="+url.QueryEscape(traceOrdersQuery),
		strings.NewReader(traceOrdersXML(12)))
	req.Header.Set("Content-Type", "application/xml")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream query = %d: %s", rec.Code, rec.Body)
	}
	if got := strings.Count(rec.Body.String(), "<lineItem>"); got != 4 {
		t.Fatalf("result has %d lineItems, want 4: %s", got, rec.Body)
	}
	headerID := rec.Header().Get("X-Trace-Id")
	if len(headerID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex digits", headerID)
	}
	if tp := rec.Header().Get("Traceparent"); !strings.Contains(tp, headerID) {
		t.Errorf("Traceparent %q does not carry trace id %s", tp, headerID)
	}

	// The slow log links the same trace id.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	var slow slowLogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Entries) == 0 {
		t.Fatal("slow log is empty despite 1ns threshold")
	}
	if slow.Entries[0].TraceID != headerID {
		t.Fatalf("slow entry trace id %q != response header %q", slow.Entries[0].TraceID, headerID)
	}

	// The linked trace reconstructs the request stage by stage.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/"+headerID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /traces/%s = %d: %s", headerID, rec.Code, rec.Body)
	}
	var d trace.Data
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.TraceID != headerID {
		t.Fatalf("trace id %q != %q", d.TraceID, headerID)
	}
	st := newSpanTree(t, d)

	root := st.one(t, "request")
	if root.Attrs["route"] != "query" || root.Attrs["outcome"] != "ok" {
		t.Errorf("request span attrs = %v", root.Attrs)
	}
	st.one(t, "queue")
	st.one(t, "plan")
	st.one(t, "build-context")
	exec := st.one(t, "execute")
	if exec.Parent != root.ID {
		t.Errorf("execute parent = %s, want request %s", exec.Parent, root.ID)
	}

	opt := st.one(t, "optimize")
	if opt.Attrs["ruleFires"] == nil {
		t.Error("optimize span has no ruleFires")
	}
	foundRewrite := false
	for name := range st.byName {
		if strings.HasPrefix(name, "rewrite:") {
			foundRewrite = true
		}
	}
	if !foundRewrite {
		t.Errorf("no rewrite: spans (have %v)", names(d))
	}

	proj := st.one(t, "projection")
	if proj.Attrs["projectable"] == nil {
		t.Error("projection span has no projectable attr")
	}
	ing := st.one(t, "ingest")
	if v, ok := ing.Attrs["xmlTokens"].(float64); !ok || v <= 0 {
		t.Errorf("ingest xmlTokens = %v, want > 0", ing.Attrs["xmlTokens"])
	}

	// Per-operator spans carry observed vs. estimated cardinality.
	ops := 0
	for name, spans := range st.byName {
		if !strings.HasPrefix(name, "op:") {
			continue
		}
		ops++
		for _, sp := range spans {
			if _, ok := sp.Attrs["items"]; !ok {
				t.Errorf("%s has no observed items attr", name)
			}
			if _, ok := sp.Attrs["estItems"]; !ok {
				t.Errorf("%s has no estimated items attr", name)
			}
		}
	}
	if ops < 3 {
		t.Errorf("trace has %d op: spans, want >= 3", ops)
	}

	// The streaming evaluator recorded live window spans (one per matching
	// OrderLine window), each under the execute span.
	windows := st.byName["window"]
	if len(windows) == 0 {
		t.Fatalf("no window spans (have %v)", names(d))
	}
	for _, wsp := range windows {
		if wsp.Parent != exec.ID {
			t.Errorf("window parent = %s, want execute %s", wsp.Parent, exec.ID)
		}
	}
	ws := st.one(t, "windows-summary")
	if v, ok := ws.Attrs["windows"].(float64); !ok || int(v) != len(windows) {
		t.Errorf("windows-summary windows = %v, live window spans = %d", ws.Attrs["windows"], len(windows))
	}

	// And the trace list sees it too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	var list tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total == 0 || len(list.Traces) == 0 {
		t.Errorf("GET /traces = total %d, %d traces", list.Total, len(list.Traces))
	}
}

// TestTraceparentAdoption: an incoming W3C traceparent header continues the
// caller's trace id; malformed ones fall back to a fresh id; unknown trace
// lookups 404.
func TestTraceparentAdoption(t *testing.T) {
	s := New(Config{})
	h := NewHTTPHandler(s)

	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	body := `{"query":"1+1"}`
	req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
	req.Header.Set("traceparent", upstream)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	if id := rec.Header().Get("X-Trace-Id"); id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("adopted trace id = %q", id)
	}
	var qr queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("response traceId = %q", qr.TraceID)
	}

	// The stored trace records the remote parent span.
	d, ok := s.TraceByID(qr.TraceID)
	if !ok {
		t.Fatal("adopted trace not in ring")
	}
	if d.Remote != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q", d.Remote)
	}

	// Malformed header: fresh id, request still served.
	req = httptest.NewRequest("POST", "/query", strings.NewReader(body))
	req.Header.Set("traceparent", "ff-bogus")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query with bad traceparent = %d", rec.Code)
	}
	if id := rec.Header().Get("X-Trace-Id"); len(id) != 32 || id == qr.TraceID {
		t.Errorf("fallback trace id = %q", id)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/doesnotexist", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}
}

// TestTracingDisabled: with DisableTracing no ids are minted — but an
// explicit upstream traceparent is still honored.
func TestTracingDisabled(t *testing.T) {
	s := New(Config{DisableTracing: true})
	h := NewHTTPHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(`{"query":"1+1"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	if id := rec.Header().Get("X-Trace-Id"); id != "" {
		t.Errorf("X-Trace-Id = %q with tracing disabled", id)
	}
	if traces, total := s.Traces(); total != 0 || len(traces) != 0 {
		t.Errorf("trace ring has %d entries with tracing disabled", total)
	}

	req := httptest.NewRequest("POST", "/query", strings.NewReader(`{"query":"1+1"}`))
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Trace-Id"); id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("upstream traceparent ignored under DisableTracing: %q", id)
	}
}

// TestSubscriptionsLiveIntrospection runs a real SSE feed against a real
// listener and polls GET /subscriptions while windows stream through it:
// the per-handle gauges (windows, results, buffer, lag, uptime) must be
// visible mid-feed and disappear once the feed ends.
func TestSubscriptionsLiveIntrospection(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(NewHTTPHandler(s))
	defer srv.Close()

	pr, pw := io.Pipe()
	subURL := srv.URL + "/subscribe?query=" + url.QueryEscape(traceOrdersQuery) +
		"&query=" + url.QueryEscape("count(/Order/OrderLine)")
	req, err := http.NewRequest("POST", subURL, pr)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); len(id) != 32 {
		t.Errorf("subscribe X-Trace-Id = %q", id)
	}

	// Drain SSE frames on a helper goroutine, signaling each result event.
	results := make(chan string, 64)
	go func() {
		defer close(results)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				results <- data
			}
		}
	}()
	if _, ok := <-results; !ok { // "subscribed" event
		t.Fatal("feed closed before subscribed event")
	}

	// Stream two matching windows, then hold the feed open and introspect.
	if _, err := io.WriteString(pw, "<Order><OrderLine><SellersID>1</SellersID><Item><ID>A</ID></Item></OrderLine><OrderLine><SellersID>1</SellersID><Item><ID>B</ID></Item></OrderLine>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-results:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for streamed results")
		}
	}

	feeds := s.Subscriptions()
	if len(feeds) != 1 {
		t.Fatalf("live feeds = %d, want 1", len(feeds))
	}
	f := feeds[0]
	if f.UptimeSecs <= 0 || len(f.TraceID) != 32 || f.Remote == "" {
		t.Errorf("feed = %+v", f)
	}
	if len(f.Handles) != 2 {
		t.Fatalf("handles = %d, want 2", len(f.Handles))
	}
	h0 := f.Handles[0]
	if h0.Class != "bounded-buffers" || h0.Windows < 2 || h0.Results != 2 {
		t.Errorf("streamable handle = %+v", h0)
	}
	if h0.PeakBufferBytes == 0 {
		t.Errorf("bounded-buffer handle shows no peak buffer: %+v", h0)
	}
	if h0.LastResultUnixNano == 0 || h0.LagSecs < 0 {
		t.Errorf("lag gauges = %+v", h0)
	}
	h1 := f.Handles[1]
	if h1.Class != "store-required" || !h1.FellBack || h1.Results != 0 {
		t.Errorf("fallback handle mid-feed = %+v", h1)
	}

	// The HTTP surface serves the same snapshot.
	var sr subscriptionsResponse
	hres, err := http.Get(srv.URL + "/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hres.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if sr.Active != 1 || len(sr.Feeds) != 1 || len(sr.Feeds[0].Handles) != 2 {
		t.Errorf("GET /subscriptions = %+v", sr)
	}

	// Feed end: registry empties, the fallback answers, the trace lands in
	// the ring with the feed span.
	if _, err := io.WriteString(pw, "</Order>"); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	for range results {
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Subscriptions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("feed still registered after end")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d, ok := s.TraceByID(f.TraceID)
	if !ok {
		t.Fatal("feed trace not stored")
	}
	st := newSpanTree(t, d)
	feed := st.one(t, "feed")
	if feed.Attrs["subscriptions"] == nil {
		t.Errorf("feed span attrs = %v", feed.Attrs)
	}
	if len(st.byName["window"]) == 0 {
		t.Errorf("feed trace has no window spans: %v", names(d))
	}
	if len(st.byName["sse:result"]) == 0 {
		t.Errorf("feed trace has no sse:result spans: %v", names(d))
	}
}

// TestHealthzReadiness: 200 JSON while serving, 503 when the admission
// queue is full, 503 once shutting down.
func TestHealthzReadiness(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1}) // negative = zero queue slots
	h := NewHTTPHandler(s)

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code != wantCode {
			t.Errorf("healthz = %d, want %d (%s)", rec.Code, wantCode, rec.Body)
		}
		var hs Health
		if err := json.Unmarshal(rec.Body.Bytes(), &hs); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		if hs.Status != wantStatus {
			t.Errorf("healthz status = %q, want %q", hs.Status, wantStatus)
		}
	}

	check(http.StatusOK, "ok")

	// Saturate the single worker slot.
	block := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.exec.Do(context.Background(), func() error {
			close(entered)
			<-block
			return nil
		})
	}()
	<-entered
	check(http.StatusServiceUnavailable, "saturated")
	close(block)
	wg.Wait()
	check(http.StatusOK, "ok")

	s.Shutdown()
	check(http.StatusServiceUnavailable, "shutting-down")
}

// TestOpenMetricsExemplars: the Accept-negotiated OpenMetrics exposition
// carries trace-id exemplars on the latency histogram and the terminal
// # EOF; the default 0.0.4 exposition carries neither but gains the
// build-info gauge and trace counters.
func TestOpenMetricsExemplars(t *testing.T) {
	s := New(Config{})
	h := NewHTTPHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(`{"query":"1+1"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	traceID := rec.Header().Get("X-Trace-Id")

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Errorf("OpenMetrics body does not end with # EOF")
	}
	want := fmt.Sprintf("# {trace_id=%q}", traceID)
	if !strings.Contains(body, want) {
		t.Errorf("OpenMetrics body has no exemplar %s", want)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body = rec.Body.String()
	if strings.Contains(body, "trace_id=") || strings.Contains(body, "# EOF") {
		t.Error("default exposition leaked OpenMetrics syntax")
	}
	for _, wantLine := range []string{"xqgo_build_info{", "xqd_traces_total 1"} {
		if !strings.Contains(body, wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}
	validatePromText(t, body)
}

// TestStatsRoutes: /stats breaks latency down per route with p99.9.
func TestStatsRoutes(t *testing.T) {
	s := New(Config{})
	if _, err := s.Query(context.Background(), Request{Query: "1+1"}); err != nil {
		t.Fatal(err)
	}
	s.stats.observeFeed(80 * time.Millisecond)

	snap := s.Stats()
	q := snap.Routes["query"]
	if q.Count != 1 || q.P999Micros < q.P50Micros {
		t.Errorf("query route = %+v", q)
	}
	sub := snap.Routes["subscribe"]
	if sub.Count != 1 || sub.P50Micros != 80_000 {
		t.Errorf("subscribe route = %+v", sub)
	}
	if snap.P999Micros < snap.P99Micros {
		t.Errorf("p99.9 %d < p99 %d", snap.P999Micros, snap.P99Micros)
	}
}
