package service

import (
	"sync"
	"time"
)

// The slow-query log: a fixed-capacity ring of the most recent requests
// whose total latency exceeded Config.SlowQueryThreshold, each carrying the
// full execution profile captured for that request. Served at GET /slow.

// SlowEntry is one recorded slow request.
type SlowEntry struct {
	// Time is when the request completed.
	Time time.Time `json:"time"`
	// Query is the request's XQuery source text.
	Query string `json:"query"`
	// Doc is the context document, when one was named.
	Doc string `json:"doc,omitempty"`
	// Micros is the total service-side latency (queue wait included).
	Micros int64 `json:"micros"`
	// Outcome is ok, error or timeout (rejections are never logged: they
	// carry no execution).
	Outcome string `json:"outcome"`
	// Cached reports whether the plan came from the plan cache.
	Cached bool `json:"cached"`
	// Profile is the execution profile, when profiling was enabled.
	Profile *ExplainProfile `json:"profile,omitempty"`
	// Strategy is the join strategy the execution's path operators resolved
	// to (see ExplainProfile.Strategy); surfaced here so /slow is scannable
	// for plan-choice regressions without expanding each profile.
	Strategy string `json:"strategy,omitempty"`
	// CardinalityError is the execution's worst estimate-vs-observed
	// relative cardinality error (see ExplainProfile.CardinalityError).
	CardinalityError float64 `json:"cardinalityError,omitempty"`
	// TraceID links the entry to its captured span tree in GET /traces/{id},
	// letting a slow request be reconstructed stage by stage offline.
	TraceID string `json:"traceId,omitempty"`
}

// slowLog is the mutex-guarded ring buffer behind GET /slow.
type slowLog struct {
	mu    sync.Mutex
	cap   int
	buf   []SlowEntry
	next  int    // overwrite position once the ring is full
	total uint64 // slow requests ever observed (eviction-independent)
}

func newSlowLog(capacity int) *slowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &slowLog{cap: capacity}
}

// add records a slow request, evicting the oldest entry once full.
func (l *slowLog) add(e SlowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// snapshot returns the retained entries newest-first plus the lifetime
// total. Nil-safe so Stats can be called on a zero service in tests.
func (l *slowLog) snapshot() ([]SlowEntry, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.buf))
	// The ring holds entries in insertion order starting at next (once
	// full); walk backward from the most recent insertion.
	for i := 0; i < len(l.buf); i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out, l.total
}
