package service

import (
	"fmt"
	"io"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Prometheus text exposition (stdlib only) for GET /metrics. The histogram
// is computed from statsCore's fixed buckets — no sorting, no window scan —
// so scraping stays O(buckets) regardless of traffic.

// openMetricsContentType is the OpenMetrics media type GET /metrics answers
// with when the scraper asks for it (Accept negotiation).
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition (which adds trace-id exemplars to the latency
// histogram). Plain prefix scan over the comma list; q-values are ignored —
// a scraper listing the media type at all gets it.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// buildInfoLabels resolves the xqgo_build_info label set once: the main
// module's version ("(devel)" for source builds) and the Go toolchain.
var buildInfoLabels = sync.OnceValue(func() string {
	version, goVersion := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	return fmt.Sprintf("{goversion=%q,version=%q}", goVersion, version)
})

// WriteMetrics renders every service metric in Prometheus text format
// (version 0.0.4).
func (s *Service) WriteMetrics(w io.Writer) {
	s.writeMetrics(w, false)
}

// WriteOpenMetrics renders the same metrics in OpenMetrics text format:
// histogram buckets carry trace-id exemplars linking latency spikes to
// GET /traces/{id}, and the exposition ends with the mandatory # EOF.
func (s *Service) WriteOpenMetrics(w io.Writer) {
	s.writeMetrics(w, true)
	fmt.Fprintf(w, "# EOF\n")
}

func (s *Service) writeMetrics(w io.Writer, exemplars bool) {
	st := s.stats
	st.mu.Lock()
	served, errs, rej, to := st.served, st.errors, st.rejected, st.timeouts
	start := st.start
	engine := st.engine
	profiled := st.profiled
	st.mu.Unlock()
	buckets, sum, count := st.histogram()
	docs, bytes, nodes := s.Catalog.Totals()
	pc := s.plans.Stats()
	_, slowTotal := s.slow.snapshot()

	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("xqd_requests_total", "Completed requests by outcome.")
	fmt.Fprintf(w, "xqd_requests_total{outcome=\"ok\"} %d\n", served)
	fmt.Fprintf(w, "xqd_requests_total{outcome=\"error\"} %d\n", errs)
	fmt.Fprintf(w, "xqd_requests_total{outcome=\"rejected\"} %d\n", rej)
	fmt.Fprintf(w, "xqd_requests_total{outcome=\"timeout\"} %d\n", to)

	fmt.Fprintf(w, "# HELP xqd_request_duration_seconds Service-side request latency (queue wait included; rejections excluded).\n")
	fmt.Fprintf(w, "# TYPE xqd_request_duration_seconds histogram\n")
	var exes []exemplar
	if exemplars {
		exes = st.exemplars()
	}
	bucketExemplar := func(i int) string {
		if i >= len(exes) || exes[i].traceID == "" {
			return ""
		}
		e := exes[i]
		return fmt.Sprintf(" # {trace_id=%q} %s %s", e.traceID,
			strconv.FormatFloat(e.value, 'g', -1, 64),
			strconv.FormatFloat(float64(e.ts.UnixNano())/1e9, 'f', 3, 64))
	}
	cum := uint64(0)
	for i, ub := range latBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "xqd_request_duration_seconds_bucket{le=\"%s\"} %d%s\n",
			strconv.FormatFloat(ub, 'g', -1, 64), cum, bucketExemplar(i))
	}
	cum += buckets[len(latBuckets)]
	fmt.Fprintf(w, "xqd_request_duration_seconds_bucket{le=\"+Inf\"} %d%s\n",
		cum, bucketExemplar(len(latBuckets)))
	fmt.Fprintf(w, "xqd_request_duration_seconds_sum %s\n",
		strconv.FormatFloat(sum.Seconds(), 'g', -1, 64))
	fmt.Fprintf(w, "xqd_request_duration_seconds_count %d\n", count)

	gauge("xqd_in_flight_requests", "Queries currently executing.")
	fmt.Fprintf(w, "xqd_in_flight_requests %d\n", s.exec.InFlight())
	gauge("xqd_queued_requests", "Requests waiting for a worker slot.")
	fmt.Fprintf(w, "xqd_queued_requests %d\n", s.exec.Queued())
	gauge("xqd_worker_slots", "Configured executor worker slots.")
	fmt.Fprintf(w, "xqd_worker_slots %d\n", s.exec.Workers())
	gauge("xqd_leased_workers", "Worker slots on loan to morsel workers of running queries.")
	fmt.Fprintf(w, "xqd_leased_workers %d\n", s.exec.Leased())
	gauge("xqd_query_workers", "Configured per-query morsel-parallelism target (0 = off).")
	fmt.Fprintf(w, "xqd_query_workers %d\n", s.cfg.QueryWorkers)

	gauge("xqd_plan_cache_size", "Compiled plans currently cached.")
	fmt.Fprintf(w, "xqd_plan_cache_size %d\n", pc.Size)
	gauge("xqd_plan_cache_capacity", "Plan cache LRU capacity.")
	fmt.Fprintf(w, "xqd_plan_cache_capacity %d\n", pc.Capacity)
	counter("xqd_plan_cache_hits_total", "Plan cache hits.")
	fmt.Fprintf(w, "xqd_plan_cache_hits_total %d\n", pc.Hits)
	counter("xqd_plan_cache_misses_total", "Plan cache misses (compilations).")
	fmt.Fprintf(w, "xqd_plan_cache_misses_total %d\n", pc.Misses)
	counter("xqd_plan_cache_evictions_total", "Plan cache LRU evictions.")
	fmt.Fprintf(w, "xqd_plan_cache_evictions_total %d\n", pc.Evictions)

	gauge("xqd_catalog_documents", "Documents registered in the catalog.")
	fmt.Fprintf(w, "xqd_catalog_documents %d\n", docs)
	gauge("xqd_catalog_bytes", "Total source bytes of registered documents.")
	fmt.Fprintf(w, "xqd_catalog_bytes %d\n", bytes)
	gauge("xqd_catalog_nodes", "Total stored nodes of registered documents.")
	fmt.Fprintf(w, "xqd_catalog_nodes %d\n", nodes)

	counter("xqd_slow_queries_total", "Requests exceeding the slow-query threshold.")
	fmt.Fprintf(w, "xqd_slow_queries_total %d\n", slowTotal)
	counter("xqd_profiled_requests_total", "Requests that carried an execution profile.")
	fmt.Fprintf(w, "xqd_profiled_requests_total %d\n", profiled)

	engineCounter := func(name, help string, v int64) {
		full := "xqd_engine_" + name
		counter(full, help)
		fmt.Fprintf(w, "%s %d\n", full, v)
	}
	engineCounter("xml_tokens_total", "XML tokens written by result serialization.", engine.XMLTokens)
	engineCounter("nodes_materialized_total", "Constructed trees materialized by the engine.", engine.NodesMaterialized)
	engineCounter("memo_hits_total", "Function memoization cache hits.", engine.MemoHits)
	engineCounter("memo_misses_total", "Function memoization cache misses.", engine.MemoMisses)
	engineCounter("index_hits_total", "Structural-join index cache hits.", engine.IndexHits)
	engineCounter("index_builds_total", "Structural-join index builds.", engine.IndexBuilds)
	engineCounter("struct_joins_total", "Stack-tree structural joins executed.", engine.StructJoins)
	engineCounter("twig_joins_total", "Holistic twig (path-stack) joins executed.", engine.TwigJoins)
	engineCounter("interrupt_polls_total", "Engine interrupt-hook polls.", engine.InterruptPolls)
	engineCounter("doc_nodes_built_total", "Nodes appended to lazily parsed streaming documents.", engine.DocNodesBuilt)
	engineCounter("nodes_skipped_total", "Nodes skipped by static path projection (tokenized, never built).", engine.NodesSkipped)
	engineCounter("bytes_parsed_on_demand_total", "Streaming-input bytes pulled by on-demand parsing.", engine.BytesParsedOnDemand)
	engineCounter("stream_windows_total", "Windows opened by the event-driven streaming evaluator.", engine.StreamWindows)
	engineCounter("stream_results_total", "Results emitted by the event-driven streaming evaluator.", engine.StreamResults)
	engineCounter("stream_fallbacks_total", "Stream-mode executions that fell back to the store engine.", engine.StreamFallbacks)
	gauge("xqd_engine_stream_buffer_peak_bytes", "Largest window buffer any streaming execution held.")
	fmt.Fprintf(w, "xqd_engine_stream_buffer_peak_bytes %d\n", engine.StreamBufferPeakBytes)

	sc := s.subs
	gauge("xqd_subscriber_feeds_active", "Subscriber feeds (POST /subscribe) currently streaming.")
	fmt.Fprintf(w, "xqd_subscriber_feeds_active %d\n", sc.active.Load())
	counter("xqd_subscriber_feeds_total", "Subscriber feeds admitted.")
	fmt.Fprintf(w, "xqd_subscriber_feeds_total %d\n", sc.feeds.Load())
	counter("xqd_subscriptions_total", "Continuous queries registered across all feeds.")
	fmt.Fprintf(w, "xqd_subscriptions_total %d\n", sc.registered.Load())
	counter("xqd_subscription_results_total", "Result events delivered to subscribers.")
	fmt.Fprintf(w, "xqd_subscription_results_total %d\n", sc.results.Load())
	counter("xqd_subscription_fallbacks_total", "Store-required subscriptions (evaluated at feed end).")
	fmt.Fprintf(w, "xqd_subscription_fallbacks_total %d\n", sc.fallbacks.Load())
	gauge("xqd_subscription_buffer_peak_bytes", "Largest window buffer any subscription held.")
	fmt.Fprintf(w, "xqd_subscription_buffer_peak_bytes %d\n", sc.peakBuffer.Load())

	gauge("xqd_governed_bytes", "Live tracked bytes across running executions (resource governor).")
	fmt.Fprintf(w, "xqd_governed_bytes %d\n", s.gov.InUse())
	gauge("xqd_process_soft_limit_bytes", "Configured process memory soft cap (0 = off).")
	fmt.Fprintf(w, "xqd_process_soft_limit_bytes %d\n", s.gov.SoftLimit())
	counter("xqd_load_shed_total", "Admissions rejected because the governor was near the soft cap.")
	fmt.Fprintf(w, "xqd_load_shed_total %d\n", s.gov.Sheds())
	counter("xqd_budget_trips_total", "Executions that exceeded their memory budget, by route.")
	trips := st.budgetTripTotals()
	for _, route := range []string{"query", "subscribe"} {
		fmt.Fprintf(w, "xqd_budget_trips_total{route=%q} %d\n", route, trips[route])
	}
	counter("xqd_plan_choice_total", "Join strategies chosen by the cost-based planner, by strategy.")
	for _, pc := range []struct {
		strategy string
		v        int64
	}{
		{"navigation", engine.PlanNavigation},
		{"binary-join", engine.PlanBinaryJoin},
		{"twig-join", engine.PlanTwigJoin},
	} {
		fmt.Fprintf(w, "xqd_plan_choice_total{strategy=%q} %d\n", pc.strategy, pc.v)
	}

	gauge("xqgo_build_info", "Build metadata of the serving binary (value is always 1).")
	fmt.Fprintf(w, "xqgo_build_info%s 1\n", buildInfoLabels())

	counter("xqd_traces_total", "Request traces captured.")
	fmt.Fprintf(w, "xqd_traces_total %d\n", s.traces.Total())
	gauge("xqd_trace_ring_size", "Completed traces retained for GET /traces.")
	fmt.Fprintf(w, "xqd_trace_ring_size %d\n", s.traces.Len())

	gauge("xqd_uptime_seconds", "Seconds since service start.")
	fmt.Fprintf(w, "xqd_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(start).Seconds(), 'g', -1, 64))
}
