package service

// Resource-governance tests: per-request memory budgets, load shedding near
// the process soft cap, the governance stats/metrics surface, and SSE fault
// injection on the subscription path.

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"xqgo/internal/faultinject"
	"xqgo/internal/leakcheck"
	"xqgo/internal/limits"
)

// bigOrdersXML builds a feed large enough that lazy materialization charges
// far beyond a few-KiB budget.
func bigOrdersXML(lines int) string {
	var b strings.Builder
	b.WriteString("<Order>")
	for i := 0; i < lines; i++ {
		b.WriteString("<OrderLine><SellersID>1</SellersID><Item><ID>widget</ID></Item></OrderLine>")
	}
	b.WriteString("</Order>")
	return b.String()
}

func TestQueryBudgetTripCountsAndReleases(t *testing.T) {
	leakcheck.Check(t)
	s := newTestService(t, Config{MaxQueryBytes: 8 << 10})
	_, err := s.Query(context.Background(), Request{
		Query: `count(/Order/OrderLine)`,
		Body:  strings.NewReader(bigOrdersXML(3000)),
	})
	if err == nil {
		t.Fatal("8KiB budget over a large streamed body did not trip")
	}
	var be *limits.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v, want *limits.BudgetError", err)
	}
	if got := statusForError(err); got != 422 {
		t.Errorf("budget error status = %d, want 422", got)
	}
	if got := s.gov.InUse(); got != 0 {
		t.Errorf("governor holds %d bytes after the request", got)
	}
	st := s.Stats()
	if got := st.Governance.BudgetTrips["query"]; got != 1 {
		t.Errorf("budgetTrips[query] = %d, want 1", got)
	}
	if st.Governance.MaxQueryBytes != 8<<10 {
		t.Errorf("Governance.MaxQueryBytes = %d", st.Governance.MaxQueryBytes)
	}

	// An untripped request right after is unaffected.
	res, err := s.Query(context.Background(), Request{Query: `1+1`})
	if err != nil || res.XML != "2" {
		t.Fatalf("follow-up query = %q, %v", res.XML, err)
	}
}

func TestRequestMaxQueryBytesOverride(t *testing.T) {
	s := newTestService(t, Config{}) // no config-level cap
	_, err := s.Query(context.Background(), Request{
		Query:         `count(/Order/OrderLine)`,
		Body:          strings.NewReader(bigOrdersXML(3000)),
		MaxQueryBytes: 8 << 10,
	})
	var be *limits.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("per-request cap: error %v, want budget error", err)
	}
	// Negative override disables the cap even with one configured.
	s2 := newTestService(t, Config{MaxQueryBytes: 8 << 10})
	res, err := s2.Query(context.Background(), Request{
		Query:         `count(/Order/OrderLine)`,
		Body:          strings.NewReader(bigOrdersXML(3000)),
		MaxQueryBytes: -1,
	})
	if err != nil {
		t.Fatalf("disabled cap still tripped: %v", err)
	}
	if res.XML != "3000" {
		t.Fatalf("result = %q", res.XML)
	}
}

func TestGovernorOverloadShedsWith503(t *testing.T) {
	s := newTestService(t, Config{ProcessSoftLimitBytes: 1 << 20})
	// Saturate the governor past the 4/5 shed threshold, as running queries
	// holding live tracked bytes would.
	hog := s.gov.Governed(0)
	hog.MustCharge(900 << 10)
	defer hog.ReleaseAll()

	_, err := s.Query(context.Background(), Request{Query: `1+1`})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query under overload = %v, want ErrOverloaded", err)
	}
	if got := statusForError(err); got != 503 {
		t.Errorf("overload status = %d, want 503", got)
	}
	st := s.Stats()
	if st.Governance.LoadShed != 1 {
		t.Errorf("LoadShed = %d, want 1", st.Governance.LoadShed)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Governance.GovernedBytes != 900<<10 {
		t.Errorf("GovernedBytes = %d", st.Governance.GovernedBytes)
	}

	// The subscribe admission path sheds too.
	h := NewHTTPHandler(s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/subscribe?query=%2Fbib%2Fbook", strings.NewReader(bibXML)))
	if rec.Code != 503 {
		t.Errorf("POST /subscribe under overload = %d, want 503", rec.Code)
	}

	// Releasing the hog reopens admission.
	hog.ReleaseAll()
	res, err := s.Query(context.Background(), Request{Query: `1+1`})
	if err != nil || res.XML != "2" {
		t.Fatalf("query after release = %q, %v", res.XML, err)
	}
}

func TestMetricsGovernanceExposition(t *testing.T) {
	s := newTestService(t, Config{MaxQueryBytes: 4 << 10, ProcessSoftLimitBytes: 64 << 20})
	// One tripped query so the counter is non-zero.
	if _, err := s.Query(context.Background(), Request{
		Query: `count(/Order/OrderLine)`,
		Body:  strings.NewReader(bigOrdersXML(2000)),
	}); err == nil {
		t.Fatal("expected budget trip")
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		"xqd_governed_bytes 0",
		"xqd_process_soft_limit_bytes 67108864",
		"xqd_load_shed_total 0",
		`xqd_budget_trips_total{route="query"} 1`,
		`xqd_budget_trips_total{route="subscribe"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSubscribeSSEWriteFaultIsolatesSubscription(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)

	// Skip the "subscribed" frame, then fail exactly one result write: the
	// afflicted subscription errors out, the feed and its sibling continue.
	faultinject.Enable(faultinject.SSEWrite, faultinject.Fault{After: 1, Count: 1})
	req := httptest.NewRequest("POST",
		"/subscribe?query=%2Fbib%2Fbook%2Ftitle&query=%2Fbib%2Fbook%2Fprice",
		strings.NewReader(bibXML))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	faultinject.Reset()
	if rec.Code != 200 {
		t.Fatalf("POST /subscribe = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "event: error") {
		t.Errorf("no error event for the failed subscription:\n%s", body)
	}
	if !strings.Contains(body, "event: result") {
		t.Errorf("sibling delivered no results:\n%s", body)
	}
	// The feed itself survived to its final frame.
	if !strings.Contains(body, "event: end") && !strings.Contains(body, "event: goodbye") {
		t.Errorf("feed did not reach a terminal event:\n%s", body)
	}
}

func TestSubscribeSlowConsumerStallStillCompletes(t *testing.T) {
	defer faultinject.Reset()
	leakcheck.Check(t)
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)

	faultinject.Enable(faultinject.SSESlow, faultinject.Fault{Delay: 2_000_000 /* 2ms */, Count: 3})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST",
		"/subscribe?query=%2Fbib%2Fbook%2Ftitle", strings.NewReader(bibXML)))
	faultinject.Reset()
	if rec.Code != 200 {
		t.Fatalf("POST /subscribe = %d", rec.Code)
	}
	body := rec.Body.String()
	if got := strings.Count(body, "event: result"); got != 3 {
		t.Errorf("delivered %d results under a stalling consumer, want 3:\n%s", got, body)
	}
	if !strings.Contains(body, "event: end") {
		t.Errorf("feed did not end cleanly:\n%s", body)
	}
}

func TestSubscribeFeedBudgetTrip(t *testing.T) {
	leakcheck.Check(t)
	s := newTestService(t, Config{MaxQueryBytes: 4 << 10})
	h := NewHTTPHandler(s)

	// A store-required subscription materializes the feed, charging the
	// per-feed budget past its cap.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST",
		"/subscribe?query=count(%2FOrder%2FOrderLine)", strings.NewReader(bigOrdersXML(3000))))
	if rec.Code != 200 {
		t.Fatalf("POST /subscribe = %d (SSE feeds report errors in-band)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "XQGO0001") {
		t.Errorf("feed did not surface the budget error:\n%s", rec.Body.String())
	}
	if got := s.Stats().Governance.BudgetTrips["subscribe"]; got != 1 {
		t.Errorf("budgetTrips[subscribe] = %d, want 1", got)
	}
	if got := s.gov.InUse(); got != 0 {
		t.Errorf("governor holds %d bytes after the feed", got)
	}
}

func TestGovernanceStatsDefaultsOff(t *testing.T) {
	s := newTestService(t, Config{})
	st := s.Stats()
	if st.Governance.ProcessSoftLimitBytes != 0 || st.Governance.MaxQueryBytes != 0 {
		t.Errorf("governance caps should default off: %+v", st.Governance)
	}
	res, err := s.Query(context.Background(), Request{Query: `count(/bib/book)`, ContextDoc: "bib"})
	if err != nil || res.XML != "3" {
		t.Fatalf("ungoverned query = %q, %v", res.XML, err)
	}
	if got := s.Stats().Governance.GovernedBytes; got != 0 {
		t.Errorf("GovernedBytes with governance off = %d", got)
	}
}
