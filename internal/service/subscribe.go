package service

// POST /subscribe: the pub/sub face of the event-driven streaming evaluator.
// One request registers N compiled queries as continuous queries against its
// own body, treated as a live XML feed. A single shared parse pass fans every
// token out to all subscriptions (xqgo.Subscriber); each result item streams
// back to the client as a Server-Sent Events frame the moment its window of
// the input completes. Store-required queries transparently fall back: the
// feed is materialized once under the union of their projections and they
// answer when the feed ends.
//
// Event protocol (all data payloads are single-line JSON):
//
//	event: subscribed   [{"id":0,"query":"...","class":"fully-streamable"}, ...]
//	event: result       {"sub":0,"seq":1,"xml":"<title>...</title>"}
//	event: error        {"sub":0,"error":"..."}        (sub -1 = the feed)
//	event: end          [{"id":0,"class":...,"results":N,...}, ...]
//	event: goodbye      {"reason":"server shutting down"}
//
// Subscriber feeds are long-lived, so they are admitted by their own cap
// (Config.MaxSubscribers) and never occupy executor worker slots.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xqgo"
	"xqgo/internal/faultinject"
	"xqgo/internal/limits"
)

// subCore aggregates subscription accounting across the service lifetime and
// tracks the feeds streaming right now (the GET /subscriptions registry).
type subCore struct {
	active     atomic.Int64 // subscriber feeds currently streaming
	feeds      atomic.Int64 // lifetime subscriber feeds admitted
	registered atomic.Int64 // lifetime subscriptions registered
	results    atomic.Int64 // result events delivered
	fallbacks  atomic.Int64 // store-required subscriptions admitted
	peakBuffer atomic.Int64 // high-water mark over all subscriptions' buffers

	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*liveFeed
}

// liveFeed is one in-flight subscriber connection in the live registry.
// Immutable after registration; the per-handle gauges are read through
// Subscription.Stats, which is safe while the feed runs.
type liveFeed struct {
	id      uint64
	started time.Time
	remote  string
	traceID string
	queries []string
	handles []*xqgo.Subscription
}

func (c *subCore) register(f *liveFeed) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	f.id = c.nextID
	if c.live == nil {
		c.live = make(map[uint64]*liveFeed)
	}
	c.live[f.id] = f
	return f.id
}

func (c *subCore) unregister(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.live, id)
}

// FeedStatus is one live subscriber feed on GET /subscriptions.
type FeedStatus struct {
	ID         uint64       `json:"id"`
	Remote     string       `json:"remote,omitempty"`
	TraceID    string       `json:"traceId,omitempty"`
	UptimeSecs float64      `json:"uptimeSecs"`
	Handles    []HandleInfo `json:"handles"`
}

// HandleInfo is one subscription's live gauges within a feed.
type HandleInfo struct {
	ID    int    `json:"id"`
	Query string `json:"query"`
	Class string `json:"class"`
	// FellBack marks a store-required subscription (answers at feed end).
	FellBack bool `json:"fellBack"`
	// Windows opened so far by the spine automaton.
	Windows int64 `json:"windows"`
	// Results delivered so far.
	Results int64 `json:"results"`
	// PeakBufferBytes is the buffer high-water mark so far.
	PeakBufferBytes int64 `json:"peakBufferBytes"`
	// LastResultUnixNano is the wall clock of the most recent delivery
	// (0 before the first).
	LastResultUnixNano int64 `json:"lastResultUnixNano,omitempty"`
	// LagSecs is seconds since the most recent delivery — the per-handle
	// staleness gauge (absent before the first result).
	LagSecs float64 `json:"lagSecs,omitempty"`
}

// Subscriptions snapshots every live subscriber feed with per-handle window,
// result, buffer and lag gauges. Safe to call while feeds stream.
func (s *Service) Subscriptions() []FeedStatus {
	s.subs.mu.Lock()
	feeds := make([]*liveFeed, 0, len(s.subs.live))
	for _, f := range s.subs.live {
		feeds = append(feeds, f)
	}
	s.subs.mu.Unlock()
	sort.Slice(feeds, func(i, j int) bool { return feeds[i].id < feeds[j].id })

	now := time.Now()
	out := make([]FeedStatus, 0, len(feeds))
	for _, f := range feeds {
		fs := FeedStatus{
			ID: f.id, Remote: f.remote, TraceID: f.traceID,
			UptimeSecs: now.Sub(f.started).Seconds(),
			Handles:    make([]HandleInfo, 0, len(f.handles)),
		}
		for i, h := range f.handles {
			st := h.Stats()
			hi := HandleInfo{
				ID: i, Query: f.queries[i], Class: st.Class, FellBack: st.FellBack,
				Windows: st.Windows, Results: st.Results,
				PeakBufferBytes:    st.PeakBufferBytes,
				LastResultUnixNano: st.LastResultUnixNano,
			}
			if st.LastResultUnixNano > 0 {
				hi.LagSecs = now.Sub(time.Unix(0, st.LastResultUnixNano)).Seconds()
			}
			fs.Handles = append(fs.Handles, hi)
		}
		out = append(out, fs)
	}
	return out
}

func (c *subCore) notePeak(v int64) {
	for {
		cur := c.peakBuffer.Load()
		if v <= cur || c.peakBuffer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// maxSSESpans caps per-delivery "sse:result" spans recorded on a feed's
// trace, so a long feed cannot exhaust the span budget.
const maxSSESpans = 32

// subInfo is one entry of the "subscribed" event.
type subInfo struct {
	ID     int    `json:"id"`
	Query  string `json:"query"`
	Class  string `json:"class"`
	Reason string `json:"reason,omitempty"`
}

// subResult is the "result" event payload. XML is JSON-escaped, so raw
// newlines in the fragment can never break SSE line framing.
type subResult struct {
	Sub int    `json:"sub"`
	Seq int64  `json:"seq"`
	XML string `json:"xml"`
}

// subError is the "error" event payload; Sub -1 means the feed itself.
type subError struct {
	Sub   int    `json:"sub"`
	Error string `json:"error"`
}

// subEnd is one entry of the "end" event: the subscription's lifetime stats.
type subEnd struct {
	ID int `json:"id"`
	xqgo.SubscriptionStats
}

// sseEvent writes one Server-Sent Events frame and flushes it to the client.
// data must be a single line (JSON marshaling guarantees that).
func sseEvent(w io.Writer, f http.Flusher, event string, data []byte) error {
	// Chaos injection points: a slow consumer (delay-only fault) stalls the
	// write; a write error simulates the client connection breaking mid-frame.
	if err := faultinject.Fire(faultinject.SSESlow); err != nil {
		return err
	}
	if err := faultinject.Fire(faultinject.SSEWrite); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	if f != nil {
		f.Flush()
	}
	return nil
}

func (s *Service) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.ShuttingDown() {
		writeError(w, ErrShuttingDown)
		return
	}
	if s.gov.Overloaded() {
		s.gov.NoteShed()
		writeError(w, ErrOverloaded)
		return
	}
	queries := r.URL.Query()["query"]
	if len(queries) == 0 {
		writeError(w, &BadRequestError{Err: errors.New("missing \"query\" parameter")})
		return
	}
	if len(queries) > s.cfg.MaxSubscriptions {
		writeError(w, &BadRequestError{Err: fmt.Errorf(
			"%d subscriptions exceed the per-request limit of %d", len(queries), s.cfg.MaxSubscriptions)})
		return
	}
	if s.subs.active.Add(1) > int64(s.cfg.MaxSubscribers) {
		s.subs.active.Add(-1)
		writeError(w, fmt.Errorf("%w (subscriber cap %d reached)", ErrSaturated, s.cfg.MaxSubscribers))
		return
	}
	defer s.subs.active.Add(-1)

	// Compile (or fetch from the shared plan cache) before committing to the
	// SSE response, so malformed queries still get a clean 400.
	plans := make([]*xqgo.Query, len(queries))
	for i, src := range queries {
		opts := s.cfg.Options
		plan, _, err := s.plans.Get(src, &opts)
		if err != nil {
			writeError(w, &BadRequestError{Err: fmt.Errorf("query %d: %v", i, err)})
			return
		}
		plans[i] = plan
	}
	s.subs.feeds.Add(1)
	s.subs.registered.Add(int64(len(plans)))

	// The client going away cancels r.Context(); Service.Shutdown must also
	// end the feed even though http.Server.Shutdown leaves in-flight
	// requests running.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var shuttingDown atomic.Bool
	go func() {
		select {
		case <-s.shutdown:
			shuttingDown.Store(true)
			cancel()
		case <-ctx.Done():
		}
	}()

	var prof *xqgo.Profile
	if !s.cfg.DisableProfiling {
		prof = plans[0].NewCountersProfile()
	}
	tr := requestTrace(r, s.cfg.DisableTracing)
	var traceID string
	if tr != nil {
		traceID = tr.ID()
	}
	feedStart := time.Now()
	flusher, _ := w.(http.Flusher)
	sub := xqgo.NewSubscriber().WithProfile(prof).WithTrace(tr)

	// Per-feed memory budget: window buffers and any fallback materialization
	// of the feed charge against the same cap a one-shot query gets, and the
	// governor sees the feed's retained bytes for admission decisions.
	var budget *limits.Budget
	if s.cfg.MaxQueryBytes > 0 || s.gov.SoftLimit() > 0 {
		budget = limits.NewBudget(s.cfg.MaxQueryBytes, s.gov)
		budget.SetTraceID(traceID)
		defer budget.ReleaseAll()
		sub.WithBudget(budget)
	}

	infos := make([]subInfo, len(plans))
	handles := make([]*xqgo.Subscription, len(plans))
	for i, plan := range plans {
		i := i
		var seq int64
		handles[i] = sub.Subscribe(plan, func(xml []byte) error {
			seq++
			s.subs.results.Add(1)
			data, err := json.Marshal(subResult{Sub: i, Seq: seq, XML: string(xml)})
			if err != nil {
				return err
			}
			wstart := time.Now()
			werr := sseEvent(w, flusher, "result", data)
			if tr != nil && seq <= maxSSESpans {
				tr.AddSpan("sse:result", nil, wstart, time.Now()).
					SetAttr("sub", i).SetAttr("seq", seq).SetAttr("bytes", len(data))
			}
			return werr
		})
		class, reason := plan.Streamability()
		infos[i] = subInfo{ID: i, Query: queries[i], Class: class.String(), Reason: reason}
		if class == xqgo.StreamStoreRequired {
			s.subs.fallbacks.Add(1)
		}
	}

	// Without full duplex, HTTP/1.x servers block the first response write
	// on draining the remaining request body — a deadlock against a live
	// feed — and close the body afterwards. Not every ResponseWriter
	// supports it (test recorders, HTTP/2 is duplex natively); best effort.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	traceHeaders(w, tr)
	w.WriteHeader(http.StatusOK)
	if data, err := json.Marshal(infos); err == nil {
		if sseEvent(w, flusher, "subscribed", data) != nil {
			return
		}
	}

	// The feed is now live: expose it to GET /subscriptions until it ends.
	feedID := s.subs.register(&liveFeed{
		started: feedStart, remote: r.RemoteAddr, traceID: traceID,
		queries: queries, handles: handles,
	})
	runErr := sub.Run(ctx, &cancelReader{ctx: ctx, r: r.Body}, StreamBodyURI)
	s.subs.unregister(feedID)
	s.stats.observeFeed(time.Since(feedStart))
	if budget != nil && budget.Trips() > 0 {
		s.stats.noteBudgetTrip("subscribe")
	}
	if tr != nil {
		s.traces.Add(tr.Finish())
	}

	for i, h := range handles {
		s.subs.notePeak(h.Stats().PeakBufferBytes)
		if err := h.Err(); err != nil {
			data, _ := json.Marshal(subError{Sub: i, Error: err.Error()})
			_ = sseEvent(w, flusher, "error", data)
		}
	}
	if prof != nil {
		s.stats.addEngine(prof.Report().Counters)
	}

	switch {
	case shuttingDown.Load():
		_ = sseEvent(w, flusher, "goodbye", []byte(`{"reason":"server shutting down"}`))
	case ctx.Err() != nil:
		// Client went away mid-feed; nobody is listening.
	case runErr != nil:
		data, _ := json.Marshal(subError{Sub: -1, Error: runErr.Error()})
		_ = sseEvent(w, flusher, "error", data)
	default:
		ends := make([]subEnd, len(handles))
		for i, h := range handles {
			ends[i] = subEnd{ID: i, SubscriptionStats: h.Stats()}
		}
		data, _ := json.Marshal(ends)
		_ = sseEvent(w, flusher, "end", data)
	}
}

// cancelReader makes a blocking feed read abort when ctx is cancelled:
// reads run on a helper goroutine, so Service.Shutdown ends an idle feed
// whose client is sending nothing. After cancellation the pending read's
// result is discarded — the server tears the connection down right after.
type cancelReader struct {
	ctx     context.Context
	r       io.Reader
	ch      chan readChunk
	rem     []byte
	err     error
	started bool
}

type readChunk struct {
	data []byte
	err  error
}

func (c *cancelReader) Read(p []byte) (int, error) {
	for len(c.rem) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if !c.started {
			c.started = true
			c.ch = make(chan readChunk)
			go func() {
				for {
					buf := make([]byte, 32<<10)
					n, err := c.r.Read(buf)
					select {
					case c.ch <- readChunk{data: buf[:n], err: err}:
						if err != nil {
							return
						}
					case <-c.ctx.Done():
						return
					}
				}
			}()
		}
		select {
		case chunk := <-c.ch:
			c.rem, c.err = chunk.data, chunk.err
		case <-c.ctx.Done():
			c.err = c.ctx.Err()
			return 0, c.err
		}
	}
	n := copy(p, c.rem)
	c.rem = c.rem[n:]
	return n, nil
}
